// hpcrun: an HPC job with a phase structure that defeats static
// placement.
//
// The phase-shift workload streams a large initialization region once
// (which fills the fast tier under first-touch) and then hammers
// Zipf-hot working sets allocated later, alternating the hot half
// periodically. First-touch strands the fast tier on the dead init
// pages; TMP's profiling plus the History policy migrates the live hot
// set in, epoch by epoch. The run also demonstrates the BadgerTrap
// emulation cost model from the paper's §VI-C.
//
//	go run ./examples/hpcrun
package main

import (
	"fmt"
	"log"

	"tieredmem/internal/core"
	"tieredmem/internal/emul"
	"tieredmem/internal/policy"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

func main() {
	const (
		refs   = 6_000_000
		ratio  = 8
		period = 4096
	)
	mk := func() workload.Workload {
		return workload.MustNew("phase-shift", workload.Config{Seed: 9, FirstPID: 300})
	}

	run := func(p policy.Policy, costs *emul.Costs) sim.PlacementResult {
		cfg := sim.DefaultPlacementConfig(mk(), period, refs, ratio, p, core.MethodCombined)
		cfg.EmulCosts = costs
		res, err := sim.RunPlacement(cfg, mk())
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("== native NVM latencies ==")
	base := run(nil, nil)
	tmp := run(policy.History{}, nil)
	fmt.Printf("first-touch:  %.2fms, hitrate %.3f\n", float64(base.DurationNS)/1e6, base.Hitrate())
	fmt.Printf("tmp+history:  %.2fms, hitrate %.3f, %d promotions\n",
		float64(tmp.DurationNS)/1e6, tmp.Hitrate(), tmp.Promotions)
	fmt.Printf("speedup: %.3fx\n\n", float64(base.DurationNS)/float64(tmp.DurationNS))

	fmt.Println("== BadgerTrap emulation (10us fault, +13us hot, 50us migration) ==")
	costs := emul.PaperCosts(0)
	ebase := run(nil, &costs)
	etmp := run(policy.History{}, &costs)
	fmt.Printf("first-touch:  %.2fms, %d slow-page faults\n",
		float64(ebase.DurationNS)/1e6, ebase.EmulFaults)
	fmt.Printf("tmp+history:  %.2fms, %d slow-page faults\n",
		float64(etmp.DurationNS)/1e6, etmp.EmulFaults)
	fmt.Printf("speedup: %.3fx\n", float64(ebase.DurationNS)/float64(etmp.DurationNS))
}
