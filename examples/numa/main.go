// numa: run TMP on a two-socket machine with NVM exposed as a CPU-less
// NUMA node — the configuration the Linux community proposals the
// paper cites (§II-A) converge on. The example compares local-first
// and interleaved allocation, breaking memory traffic down by serving
// node, and shows that the profiler's view is unchanged: hot pages are
// hot regardless of which node holds them.
//
//	go run ./examples/numa
package main

import (
	"fmt"
	"log"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/numa"
	"tieredmem/internal/sim"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

func main() {
	for _, pol := range []struct {
		name string
		p    numa.AllocPolicy
	}{{"local-first", numa.LocalFirst}, {"interleave", numa.Interleave}} {
		w := workload.MustNew("data-caching", workload.Config{Seed: 4, FirstPID: 100})
		footPages := int(w.FootprintBytes() >> mem.PageShift)

		topo := numa.Topology{
			Sockets:             2,
			CoresPerSocket:      3,
			RemoteFactor:        1.6,
			DRAMFramesPerSocket: footPages/3 + 1,
			NVMFrames:           footPages,
		}
		cfg := sim.DefaultConfig(w, 4096, 4_000_000)
		cfg.Tiers = topo.Tiers()
		runner, err := sim.New(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		if err := topo.Attach(runner.Machine, pol.p); err != nil {
			log.Fatal(err)
		}

		perTier := map[mem.TierID]uint64{}
		res, err := runner.Run(sim.Hooks{OnOutcome: func(o *trace.Outcome) {
			if o.Source.IsMemory() {
				perTier[runner.Machine.Phys.TierOf(mem.PFNOf(o.PAddr))]++
			}
		}})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", pol.name)
		fmt.Printf("duration %.1fms, %d epochs\n", float64(res.DurationNS)/1e6, len(res.Epochs))
		var total uint64
		for _, n := range perTier {
			total += n
		}
		for t := mem.TierID(0); int(t) <= topo.Sockets; t++ {
			name := fmt.Sprintf("dram-node%d", t)
			if t == topo.NVMTier() {
				name = "nvm-node"
			}
			fmt.Printf("  %-11s %6.1f%% of memory accesses\n", name,
				float64(perTier[t])/float64(total)*100)
		}

		// The profiler is oblivious to the topology: hottest pages
		// rank the same way.
		if len(res.Epochs) > 1 {
			ranked := core.RankedPages(res.Epochs[len(res.Epochs)-2], core.MethodCombined)
			n := 3
			if len(ranked) < n {
				n = len(ranked)
			}
			fmt.Printf("  hottest pages: ")
			for i := 0; i < n; i++ {
				fmt.Printf("pid=%d vpn=%#x rank=%d  ",
					ranked[i].Key.PID, uint64(ranked[i].Key.VPN), ranked[i].Rank(core.MethodCombined))
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
