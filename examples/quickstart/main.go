// Quickstart: profile a GUPS-style workload with TMP and print the
// ten hottest pages.
//
// This is the smallest end-to-end use of the library: build a
// workload, assemble a simulated machine with the profiler attached,
// run a few million references, and read the ranked-pages interface
// that placement policies consume.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tieredmem/internal/core"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

func main() {
	// 1. A workload: eight GUPS processes doing random read-modify-
	//    writes over THP-backed tables.
	w := workload.MustNew("gups", workload.Config{Seed: 1, FirstPID: 100})

	// 2. A machine + TMP profiler. 4096 is the IBS op period (the
	//    "4x" rate at laptop scale); 4M references ≈ 25 scaled
	//    seconds of virtual time.
	cfg := sim.DefaultConfig(w, 4096, 4_000_000)
	runner, err := sim.New(cfg, w)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run. Epochs are harvested every scaled second.
	res, err := runner.Run(sim.Hooks{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d refs in %.1f virtual ms across %d epochs\n",
		res.Refs, float64(res.DurationNS)/1e6, len(res.Epochs))
	fmt.Printf("profiling overhead: %.2f%% of CPU time\n", res.OverheadFraction()*100)

	// 4. Ask the profiler-policy interface for the hottest pages of
	//    the last full epoch (the final entry may be a short partial
	//    epoch with no A-bit scan in it), under TMP's combined rank.
	last := res.Epochs[len(res.Epochs)-1]
	if len(res.Epochs) > 1 {
		last = res.Epochs[len(res.Epochs)-2]
	}
	ranked := core.RankedPages(last, core.MethodCombined)
	fmt.Println("\nhottest pages (last epoch):")
	fmt.Println("rank  pid   vpn            abit  ibs  true-mem-accesses")
	for i := 0; i < len(ranked) && i < 10; i++ {
		ps := ranked[i]
		fmt.Printf("%4d  %4d  %#-12x  %4d  %3d  %d\n",
			i+1, ps.Key.PID, uint64(ps.Key.VPN), ps.Abit, ps.Trace, ps.True)
	}
}
