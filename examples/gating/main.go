// gating: watch the HWPC activity monitor switch the expensive
// profilers on and off as a workload moves between memory-quiet and
// memory-intensive phases (the paper's §III-B4 first optimization).
//
// LULESH's stencil phases are cache-friendly (LLC misses collapse
// between sweeps) while GUPS is permanently memory-bound; running
// LULESH shows the trace engine being gated off and on, while the
// A-bit scanner follows the TLB-miss gauge.
//
//	go run ./examples/gating
package main

import (
	"fmt"
	"log"

	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

func main() {
	for _, name := range []string{"lulesh", "gups"} {
		w := workload.MustNew(name, workload.Config{Seed: 3, FirstPID: 100})
		cfg := sim.DefaultConfig(w, 4096, 3_000_000)
		cfg.TMP.Gating = true
		runner, err := sim.New(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		res, err := runner.Run(sim.Hooks{})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s ==\n", name)
		fmt.Printf("duration %.1fms, %d epochs\n", float64(res.DurationNS)/1e6, len(res.Epochs))
		for _, g := range runner.Profiler.Monitor.States() {
			fmt.Printf("gauge %-10s active=%-5v peak-window=%-8d toggles=%d\n",
				g.Event, g.Active, g.MaxDelta, g.Toggles)
		}
		ibsStats := runner.Profiler.IBS.Stats()
		abitStats := runner.Profiler.Abit.Stats()
		fmt.Printf("ibs: %d samples delivered (engine enabled=%v)\n",
			ibsStats.Delivered, runner.Profiler.IBS.Enabled())
		fmt.Printf("abit: %d scans, %d pages observed (scanner enabled=%v)\n\n",
			abitStats.Scans, abitStats.PagesAccessed, runner.Profiler.Abit.Enabled())
	}
}
