// kvstore: a Data-Caching (memcached-style) service on tiered memory.
//
// The fast tier holds 1/16 of the footprint — the paper's 4 GB DRAM /
// 60 GB NVM shape. The example runs the same request stream twice:
// once under first-come-first-allocate (the NUMA-like baseline) and
// once with TMP profiling driving the History policy's epoch-batched
// page migrations, then compares tier-1 hitrates and end-to-end
// virtual runtimes.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"tieredmem/internal/core"
	"tieredmem/internal/policy"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

func main() {
	const (
		refs   = 6_000_000
		ratio  = 16   // footprint : fast tier
		period = 4096 // IBS op period (4x rate)
	)
	mk := func() workload.Workload {
		// 4 memcached-style servers, Zipf-popular keys over big slab
		// arenas plus hot hash tables.
		return workload.MustNew("data-caching", workload.Config{Seed: 7, FirstPID: 200})
	}

	fmt.Println("arm                duration    tier1-hitrate  promotions")
	baseline, err := sim.RunPlacement(
		sim.DefaultPlacementConfig(mk(), period, refs, ratio, nil, core.MethodCombined), mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8.2fms  %12.3f  %10d\n",
		baseline.Arm, float64(baseline.DurationNS)/1e6, baseline.Hitrate(), baseline.Promotions)

	placed, err := sim.RunPlacement(
		sim.DefaultPlacementConfig(mk(), period, refs, ratio, policy.History{}, core.MethodCombined), mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8.2fms  %12.3f  %10d\n",
		placed.Arm, float64(placed.DurationNS)/1e6, placed.Hitrate(), placed.Promotions)

	fmt.Printf("\nspeedup over first-touch: %.3fx\n",
		float64(baseline.DurationNS)/float64(placed.DurationNS))
	fmt.Println("(hot keys are touched early, so first-touch already places most of")
	fmt.Println(" the hot set well here — the paper's own end-to-end average is 1.04x;")
	fmt.Println(" run examples/hpcrun for a workload where adaptive placement is decisive)")
}
