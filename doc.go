// Package tieredmem is a from-scratch reproduction of "Dancing in the
// Dark: Profiling for Tiered Memory" (Choi, Blagodurov, Tseng — IPDPS
// 2021): the TMP tiered-memory profiler, every hardware substrate it
// depends on (cores, TLBs, caches, page tables with A/D bits and THP,
// PMU counters, IBS/PEBS sampling), the Oracle/History placement
// policies with an epoch-batched page mover, the BadgerTrap-style
// latency-injection emulator, and deterministic generators for the
// paper's eight evaluation workloads.
//
// The root package holds the benchmark harness (bench_test.go) that
// regenerates every table and figure of the paper; the implementation
// lives under internal/ (see DESIGN.md for the system inventory) and
// runnable entry points under cmd/ and examples/.
package tieredmem
