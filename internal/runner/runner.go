// Package runner executes independent, self-contained simulation jobs
// on a bounded worker pool while preserving sequential semantics: the
// result slice is reassembled in submission order, so callers that
// render rows from it produce byte-identical output at any worker
// count. This is the concurrency step the ROADMAP anticipated, built
// against the PR-1 invariant machinery: jobs communicate only through
// their return values (no shared maps), errors surface in submission
// order (the same job a sequential loop would have failed on), and the
// pool itself holds no state beyond pre-sized slices indexed by job.
//
// Each job must be a pure function of its own inputs — it builds its
// own workload, sim.Config, and RNG from an explicit seed — because
// jobs run on arbitrary workers in arbitrary real-time order. The
// determinism contract (same seed, same output) is what makes the
// parallelism invisible: internal/experiments proves parallel ==
// sequential byte-for-byte in its regression tests.
package runner

import (
	"runtime"
	"sync"
)

// Job is one named, self-contained unit of work producing a T.
type Job[T any] struct {
	// Name labels the job in Stats (e.g. "methods/gups").
	Name string
	// Run computes the job's result. It must not share mutable state
	// with any other job; everything it needs is captured at
	// declaration time or rebuilt from a seed inside the call.
	Run func() (T, error)
}

// Config bounds a Run call.
type Config struct {
	// Workers caps concurrently running jobs. 0 means
	// runtime.GOMAXPROCS(0); 1 runs every job inline on the caller's
	// goroutine, which is exactly the historical sequential path.
	Workers int
	// NowNS is an optional monotonic clock used only to fill Stats.
	// The simulator's own time is virtual cycles and internal/
	// packages must not read the wall clock (tmplint's wallclock
	// analyzer), so mains inject one (cmd/tmpbench passes a
	// time.Since closure). Nil leaves all Stats timings zero.
	NowNS func() int64
}

func (c Config) workers(jobs int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c Config) clock() func() int64 {
	if c.NowNS != nil {
		return c.NowNS
	}
	return func() int64 { return 0 }
}

// JobStat times one job's trip through the pool.
type JobStat struct {
	Name string
	// Worker indexes the worker goroutine that ran the job
	// (0..Workers-1; always 0 on the sequential path).
	Worker int
	// QueueNS is how long the job waited between submission and
	// start — all jobs are submitted when Run is called.
	QueueNS int64
	// WallNS is the job's own run duration.
	WallNS int64
}

// Stats summarizes one Run call so the speedup is measurable.
type Stats struct {
	Jobs    int
	Workers int
	// WallNS is the whole call's elapsed time.
	WallNS int64
	// BusyNS sums per-job wall times: the sequential-equivalent cost.
	BusyNS int64
	// QueueNS sums per-job queue delays.
	QueueNS int64
	// PerJob holds one entry per job, in submission order.
	PerJob []JobStat
}

// Speedup is the parallel efficiency of the call: total job work over
// elapsed wall time (1.0 on the sequential path, up to Workers when
// the pool is saturated). 0 when no clock was injected. Note this is
// busy-time over wall-time, not a host-core count: on a box whose
// GOMAXPROCS is smaller than Workers, goroutine interleaving inflates
// per-job wall times, so the ratio reports pool concurrency rather
// than real CPU speedup (BENCH_runner.json records the latter).
func (s Stats) Speedup() float64 {
	if s.WallNS <= 0 {
		return 0
	}
	return float64(s.BusyNS) / float64(s.WallNS)
}

// Run executes jobs on the configured pool and returns results in
// submission order. On error it returns the failure from the
// lowest-indexed failing job (the one a sequential loop would have
// stopped at); later jobs may or may not have run, but since jobs are
// self-contained their results are simply discarded.
func Run[T any](cfg Config, jobs []Job[T]) ([]T, Stats, error) {
	now := cfg.clock()
	stats := Stats{
		Jobs:    len(jobs),
		Workers: cfg.workers(len(jobs)),
		PerJob:  make([]JobStat, len(jobs)),
	}
	if len(jobs) == 0 {
		return nil, stats, nil
	}
	results := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	start := now()

	if stats.Workers == 1 {
		// Sequential path: inline on the caller's goroutine, stopping
		// at the first error exactly as the pre-runner loops did.
		for i := range jobs {
			js := &stats.PerJob[i]
			js.Name = jobs[i].Name
			js.QueueNS = now() - start
			t0 := now()
			results[i], errs[i] = jobs[i].Run()
			js.WallNS = now() - t0
			if errs[i] != nil {
				finish(&stats, now()-start)
				return results, stats, errs[i]
			}
		}
		finish(&stats, now()-start)
		return results, stats, nil
	}

	// Parallel path: workers pull indices from a channel and write
	// results only at their own index — no shared maps, no locks on
	// the data path. A failed job flips the stop flag so the pool
	// drains quickly, mirroring sequential fail-fast cost.
	idx := make(chan int)
	var stop sync.Once
	stopped := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < stats.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				js := &stats.PerJob[i]
				js.Name = jobs[i].Name
				js.Worker = worker
				js.QueueNS = now() - start
				t0 := now()
				results[i], errs[i] = jobs[i].Run()
				js.WallNS = now() - t0
				if errs[i] != nil {
					stop.Do(func() { close(stopped) })
				}
			}
		}(w)
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-stopped:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	finish(&stats, now()-start)
	for i := range errs {
		if errs[i] != nil {
			return results, stats, errs[i]
		}
	}
	return results, stats, nil
}

// finish fills the aggregate fields once per-job stats are final.
func finish(s *Stats, wall int64) {
	s.WallNS = wall
	for i := range s.PerJob {
		s.BusyNS += s.PerJob[i].WallNS
		s.QueueNS += s.PerJob[i].QueueNS
	}
}
