package runner

import (
	"errors"
	"fmt"
	"testing"
)

// TestShardGroupOrder pins the fork-join contract: results are indexed
// by shard regardless of worker width, and names default sensibly.
func TestShardGroupOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 16} {
		got, stats, err := ShardGroup(Config{Workers: workers}, 8, nil, func(shard int) (int, error) {
			return shard * shard, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d shard %d: got %d want %d", workers, i, v, i*i)
			}
		}
		if stats.Jobs != 8 {
			t.Fatalf("workers=%d: stats.Jobs=%d", workers, stats.Jobs)
		}
		if stats.PerJob[3].Name != "shard/3" {
			t.Fatalf("default name: %q", stats.PerJob[3].Name)
		}
	}
}

// TestShardGroupError pins lowest-shard error selection — the same
// failure a sequential loop over shards would surface.
func TestShardGroupError(t *testing.T) {
	wantErr := errors.New("shard 2 broke")
	_, _, err := ShardGroup(Config{Workers: 4}, 6, func(i int) string { return fmt.Sprintf("cell/%d", i) }, func(shard int) (string, error) {
		if shard >= 2 {
			return "", fmt.Errorf("shard %d broke", shard)
		}
		return "ok", nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("got error %v, want %v", err, wantErr)
	}
}
