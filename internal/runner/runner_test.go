package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// job builds a trivial job returning its own index.
func job(i int) Job[int] {
	return Job[int]{Name: fmt.Sprintf("job/%d", i), Run: func() (int, error) { return i, nil }}
}

// TestResultsInSubmissionOrder is the runner's core contract: results
// come back in submission order no matter how many workers raced.
func TestResultsInSubmissionOrder(t *testing.T) {
	const n = 64
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = job(i)
	}
	for _, workers := range []int{1, 2, 8, n + 5} {
		out, st, err := Run(Config{Workers: workers}, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		if st.Jobs != n {
			t.Errorf("workers=%d: stats.Jobs = %d", workers, st.Jobs)
		}
		if workers > n && st.Workers != n {
			t.Errorf("workers=%d: pool not capped at job count: %d", workers, st.Workers)
		}
	}
}

// TestSequentialAndParallelIdentical runs an order-sensitive
// accumulation through both paths: because results are reassembled by
// index, the fold over them is identical.
func TestSequentialAndParallelIdentical(t *testing.T) {
	jobs := make([]Job[string], 20)
	for i := range jobs {
		jobs[i] = Job[string]{
			Name: fmt.Sprintf("cell/%d", i),
			Run:  func() (string, error) { return fmt.Sprintf("<%d>", i), nil },
		}
	}
	fold := func(workers int) string {
		out, _, err := Run(Config{Workers: workers}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, v := range out {
			s += v
		}
		return s
	}
	seq := fold(1)
	for _, w := range []int{2, 4, 16} {
		if got := fold(w); got != seq {
			t.Fatalf("workers=%d: %q != sequential %q", w, got, seq)
		}
	}
}

// TestErrorReturnsLowestIndex: the error reported is the one the
// sequential loop would have stopped at, regardless of which worker
// hit an error first in real time.
func TestErrorReturnsLowestIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	jobs := []Job[int]{
		job(0),
		{Name: "fail/1", Run: func() (int, error) { return 0, errLow }},
		job(2),
		{Name: "fail/3", Run: func() (int, error) { return 0, errHigh }},
	}
	for _, workers := range []int{1, 4} {
		_, _, err := Run(Config{Workers: workers}, jobs)
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

// TestSequentialFailFast: workers=1 must not run jobs past the first
// failure (the historical loop semantics).
func TestSequentialFailFast(t *testing.T) {
	ran := 0
	boom := errors.New("boom")
	jobs := []Job[int]{
		{Name: "a", Run: func() (int, error) { ran++; return 0, nil }},
		{Name: "b", Run: func() (int, error) { ran++; return 0, boom }},
		{Name: "c", Run: func() (int, error) { ran++; return 0, nil }},
	}
	if _, _, err := Run(Config{Workers: 1}, jobs); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 2 {
		t.Errorf("ran %d jobs, want 2", ran)
	}
}

// TestParallelStopsFeeding: after a failure the feeder stops handing
// out new jobs (drain, don't start fresh work).
func TestParallelStopsFeeding(t *testing.T) {
	const n = 1000
	var ran atomic.Int64
	boom := errors.New("boom")
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func() (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, boom
			}
			return i, nil
		}}
	}
	_, _, err := Run(Config{Workers: 2}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got == n {
		t.Errorf("all %d jobs ran despite early failure", got)
	}
}

// TestWorkerBound: no more than Workers jobs run concurrently.
func TestWorkerBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	jobs := make([]Job[int], 24)
	for i := range jobs {
		jobs[i] = Job[int]{Name: "j", Run: func() (int, error) {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			runtime.Gosched()
			cur.Add(-1)
			return i, nil
		}}
	}
	if _, _, err := Run(Config{Workers: workers}, jobs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestStatsWithInjectedClock: a deterministic fake clock must fill
// wall, busy, and queue stats consistently.
func TestStatsWithInjectedClock(t *testing.T) {
	var tick atomic.Int64
	clock := func() int64 { return tick.Add(1) }
	jobs := []Job[int]{job(0), job(1), job(2)}
	out, st, err := Run(Config{Workers: 1, NowNS: clock}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("%d results", len(out))
	}
	if st.WallNS <= 0 {
		t.Errorf("WallNS = %d, want > 0", st.WallNS)
	}
	if st.BusyNS <= 0 {
		t.Errorf("BusyNS = %d, want > 0", st.BusyNS)
	}
	if len(st.PerJob) != 3 {
		t.Fatalf("PerJob = %d entries", len(st.PerJob))
	}
	for i, js := range st.PerJob {
		if js.Name != jobs[i].Name {
			t.Errorf("PerJob[%d].Name = %q", i, js.Name)
		}
		if js.WallNS <= 0 {
			t.Errorf("PerJob[%d].WallNS = %d", i, js.WallNS)
		}
	}
	if st.Speedup() <= 0 {
		t.Errorf("Speedup = %v with a clock injected", st.Speedup())
	}
}

// TestNoClockLeavesStatsZero: without an injected clock the runner
// must not time anything (internal/ code cannot read the wall clock).
func TestNoClockLeavesStatsZero(t *testing.T) {
	_, st, err := Run(Config{Workers: 2}, []Job[int]{job(0), job(1)})
	if err != nil {
		t.Fatal(err)
	}
	if st.WallNS != 0 || st.BusyNS != 0 || st.QueueNS != 0 {
		t.Errorf("timings nonzero without a clock: %+v", st)
	}
	if st.Speedup() != 0 {
		t.Errorf("Speedup = %v without a clock", st.Speedup())
	}
}

// TestEmptyJobs: zero jobs is a no-op, not a hang.
func TestEmptyJobs(t *testing.T) {
	out, st, err := Run[int](Config{Workers: 4}, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if st.Jobs != 0 {
		t.Errorf("Jobs = %d", st.Jobs)
	}
}

// TestDefaultWorkers: Workers=0 resolves to GOMAXPROCS.
func TestDefaultWorkers(t *testing.T) {
	jobs := make([]Job[int], 2*runtime.GOMAXPROCS(0)+1)
	for i := range jobs {
		jobs[i] = job(i)
	}
	_, st, err := Run(Config{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers = %d, want GOMAXPROCS %d", st.Workers, runtime.GOMAXPROCS(0))
	}
}
