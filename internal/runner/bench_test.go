package runner_test

// Benchmarks the worker pool end-to-end on real experiment cells
// (not synthetic sleeps): the methods comparison over four Table III
// workloads, sequential vs parallel. This is an external test package
// so it may import internal/experiments, which itself imports
// internal/runner.
//
// CI runs BenchmarkRunner and the env-gated TestEmitRunnerBenchJSON
// below to record the sequential-vs-parallel wall time in
// BENCH_runner.json (see .github/workflows/ci.yml). Wall-clock reads
// are fine here: tmplint's wallclock rule exempts _test.go files.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"tieredmem/internal/core"
	"tieredmem/internal/experiments"
	"tieredmem/internal/mem"
	"tieredmem/internal/sim"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// benchWorkloads is the fixed cell set: one job per workload.
var benchWorkloads = []string{"gups", "web-serving", "data-caching", "lulesh"}

func benchOptions(parallel int) experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Refs = 400_000 // small cells: the benchmark measures the pool, not the sim
	opts.Workloads = benchWorkloads
	opts.Parallel = parallel
	return opts
}

func runCells(tb testing.TB, parallel int) string {
	rows, err := experiments.MethodsComparison(benchOptions(parallel))
	if err != nil {
		tb.Fatalf("methods comparison (parallel=%d): %v", parallel, err)
	}
	return experiments.RenderMethods(rows)
}

// harvestAllocsPerOp measures the steady-state allocation count of the
// recycled-scratch epoch harvest (the same loop BenchmarkHarvestSteadyState
// at the repo root times). The contract is 0: the placement loop's
// per-epoch work reuses its buffers once they have grown to the
// working set. Recording it here makes BENCH_runner.json self-checking
// rather than relying on a benchmark log.
func harvestAllocsPerOp(t *testing.T) float64 {
	w := workload.MustNew("gups", workload.Config{Seed: 2, FirstPID: 100})
	r, err := sim.New(sim.DefaultConfig(w, 4096, 1), w)
	if err != nil {
		t.Fatalf("harvest allocs probe: %v", err)
	}
	buf := make([]trace.Ref, 4096)
	w.Fill(buf)
	for j := range buf {
		if _, err := r.Machine.Execute(buf[j]); err != nil {
			t.Fatalf("harvest allocs probe: %v", err)
		}
	}
	var ep core.EpochStats
	r.Profiler.HarvestEpochInto(&ep) // grow the scratch once
	return testing.AllocsPerRun(100, func() {
		r.Machine.Phys.ForEachAllocated(func(pd *mem.PageDescriptor) { pd.AbitEpoch = 1 })
		r.Profiler.HarvestEpochInto(&ep)
	})
}

func BenchmarkRunner(b *testing.B) {
	modes := []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0}, // 0 = runtime.GOMAXPROCS(0)
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCells(b, m.workers)
			}
		})
	}
}

// TestEmitRunnerBenchJSON times one sequential and one parallel run of
// the benchmark cell set and writes the comparison to the path in
// BENCH_RUNNER_JSON (skipped when unset). CI uploads the file as the
// BENCH_runner.json artifact; the committed copy at the repo root is a
// reference measurement from this test.
func TestEmitRunnerBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_RUNNER_JSON")
	if path == "" {
		t.Skip("BENCH_RUNNER_JSON not set")
	}

	start := time.Now()
	seqOut := runCells(t, 1)
	seqNS := time.Since(start).Nanoseconds()

	workers := runtime.GOMAXPROCS(0)
	start = time.Now()
	parOut := runCells(t, 0)
	parNS := time.Since(start).Nanoseconds()

	// The benchmark doubles as a determinism check: both modes must
	// render byte-identical tables.
	if seqOut != parOut {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}

	// The artifact is self-describing: a speedup below 1 with
	// gomaxprocs/num_cpu of 1 documents a single-core run where the
	// pool cannot pay for itself, not a regression. The committed copy
	// at the repo root records whatever machine last regenerated it;
	// the bench-runner CI job uploads the multi-core measurement.
	report := struct {
		Benchmark          string   `json:"benchmark"`
		Experiment         string   `json:"experiment"`
		Workloads          []string `json:"workloads"`
		RefsPerCell        int      `json:"refs_per_cell"`
		Workers            int      `json:"workers"`
		GOMAXPROCS         int      `json:"gomaxprocs"`
		NumCPU             int      `json:"num_cpu"`
		SequentialNS       int64    `json:"sequential_ns"`
		ParallelNS         int64    `json:"parallel_ns"`
		Speedup            float64  `json:"speedup"`
		HarvestAllocsPerOp float64  `json:"harvest_allocs_per_op"`
		Identical          bool     `json:"output_identical"`
	}{
		Benchmark:          "BenchmarkRunner",
		Experiment:         "methods",
		Workloads:          benchWorkloads,
		RefsPerCell:        benchOptions(0).Refs,
		Workers:            workers,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		SequentialNS:       seqNS,
		ParallelNS:         parNS,
		Speedup:            float64(seqNS) / float64(parNS),
		HarvestAllocsPerOp: harvestAllocsPerOp(t),
		Identical:          true,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential=%s parallel=%s speedup=%.2fx (workers=%d) -> %s",
		time.Duration(seqNS), time.Duration(parNS), report.Speedup, workers, path)
}
