package runner_test

// Benchmarks the worker pool end-to-end on real experiment cells
// (not synthetic sleeps): the methods comparison over four Table III
// workloads, sequential vs parallel. This is an external test package
// so it may import internal/experiments, which itself imports
// internal/runner.
//
// CI runs BenchmarkRunner and the env-gated TestEmitRunnerBenchJSON
// below to record the sequential-vs-parallel wall time in
// BENCH_runner.json (see .github/workflows/ci.yml). Wall-clock reads
// are fine here: tmplint's wallclock rule exempts _test.go files.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"tieredmem/internal/core"
	"tieredmem/internal/experiments"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
	"tieredmem/internal/sim"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// benchWorkloads is the fixed cell set: one job per workload.
var benchWorkloads = []string{"gups", "web-serving", "data-caching", "lulesh"}

func benchOptions(parallel int) experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Refs = 400_000 // small cells: the benchmark measures the pool, not the sim
	opts.Workloads = benchWorkloads
	opts.Parallel = parallel
	return opts
}

func runCells(tb testing.TB, parallel int) string {
	rows, err := experiments.MethodsComparison(benchOptions(parallel))
	if err != nil {
		tb.Fatalf("methods comparison (parallel=%d): %v", parallel, err)
	}
	return experiments.RenderMethods(rows)
}

// harvestAllocsPerOp measures the steady-state allocation count of the
// recycled-scratch epoch harvest (the same loop BenchmarkHarvestSteadyState
// at the repo root times). The contract is 0: the placement loop's
// per-epoch work reuses its buffers once they have grown to the
// working set. Recording it here makes BENCH_runner.json self-checking
// rather than relying on a benchmark log.
func harvestAllocsPerOp(t *testing.T) float64 {
	w := workload.MustNew("gups", workload.Config{Seed: 2, FirstPID: 100})
	r, err := sim.New(sim.DefaultConfig(w, 4096, 1), w)
	if err != nil {
		t.Fatalf("harvest allocs probe: %v", err)
	}
	buf := make([]trace.Ref, 4096)
	w.Fill(buf)
	for j := range buf {
		if _, err := r.Machine.Execute(buf[j]); err != nil {
			t.Fatalf("harvest allocs probe: %v", err)
		}
	}
	var ep core.EpochStats
	r.Profiler.HarvestEpochInto(&ep) // grow the scratch once
	return testing.AllocsPerRun(100, func() {
		r.Machine.Phys.ForEachAllocated(func(pd *mem.PageDescriptor) { pd.AbitEpoch = 1 })
		r.Profiler.HarvestEpochInto(&ep)
	})
}

// Sharded-series parameters: one gups placement machine with 8
// simulated cores (8 per-core cells), History on the combined rank.
// Small enough for CI, big enough that the shard pool's speedup is
// measurable on a multi-core host.
const (
	shardCellRefs  = 4_000_000
	shardCellCores = 8
)

// shardedCell runs the reference cell on the intra-cell sharded
// pipeline at the given shard-pool width and returns the wall time
// plus a dump of the fused counters (the identity check across
// widths).
func shardedCell(tb testing.TB, shards int) (int64, string) {
	mk := func() workload.Workload {
		return workload.MustNew("gups", workload.Config{Seed: 42, FirstPID: 100})
	}
	cfg := sim.DefaultPlacementConfig(mk(), 16384, shardCellRefs, 16, nil, core.MethodCombined)
	cfg.CPU.Cores = shardCellCores
	start := time.Now()
	res, err := sim.RunShardedPlacement(sim.ShardedPlacementConfig{
		Base:     cfg,
		Shards:   shards,
		MkPolicy: func() policy.Policy { return policy.History{} },
	}, mk)
	if err != nil {
		tb.Fatalf("sharded cell (shards=%d): %v", shards, err)
	}
	if res.Cells != shardCellCores {
		tb.Fatalf("sharded cell (shards=%d): %d cells, want %d", shards, res.Cells, shardCellCores)
	}
	return time.Since(start).Nanoseconds(), fmt.Sprintf("%+v", res.PlacementResult)
}

func BenchmarkRunner(b *testing.B) {
	modes := []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0}, // 0 = runtime.GOMAXPROCS(0)
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCells(b, m.workers)
			}
		})
	}
}

// TestEmitRunnerBenchJSON times one sequential and one parallel run of
// the benchmark cell set and writes the comparison to the path in
// BENCH_RUNNER_JSON (skipped when unset). CI uploads the file as the
// BENCH_runner.json artifact; the committed copy at the repo root is a
// reference measurement from this test.
func TestEmitRunnerBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_RUNNER_JSON")
	if path == "" {
		t.Skip("BENCH_RUNNER_JSON not set")
	}

	start := time.Now()
	seqOut := runCells(t, 1)
	seqNS := time.Since(start).Nanoseconds()

	workers := runtime.GOMAXPROCS(0)
	start = time.Now()
	parOut := runCells(t, 0)
	parNS := time.Since(start).Nanoseconds()

	// The benchmark doubles as a determinism check: both modes must
	// render byte-identical tables.
	if seqOut != parOut {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqOut, parOut)
	}

	// Intra-cell sharded series: the same 8-cell machine at shard-pool
	// width 1 vs GOMAXPROCS, with the fused counters as the identity
	// check. refs/sec here is per machine, not per pool — the number
	// PERFORMANCE.md quotes.
	shardWorkers := workers
	shardSeqNS, shardSeqOut := shardedCell(t, 1)
	shardParNS, shardParOut := shardedCell(t, shardWorkers)
	if shardSeqOut != shardParOut {
		t.Fatalf("sharded output differs across widths 1 and %d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
			shardWorkers, shardSeqOut, shardWorkers, shardParOut)
	}

	// The artifact is self-describing: a speedup below 1 with
	// gomaxprocs/num_cpu of 1 documents a single-core run where the
	// pool cannot pay for itself, not a regression. The committed copy
	// at the repo root records whatever machine last regenerated it;
	// the bench-runner CI job uploads the multi-core measurement.
	report := struct {
		Benchmark          string   `json:"benchmark"`
		Experiment         string   `json:"experiment"`
		Workloads          []string `json:"workloads"`
		RefsPerCell        int      `json:"refs_per_cell"`
		Workers            int      `json:"workers"`
		GOMAXPROCS         int      `json:"gomaxprocs"`
		NumCPU             int      `json:"num_cpu"`
		SequentialNS       int64    `json:"sequential_ns"`
		ParallelNS         int64    `json:"parallel_ns"`
		Speedup            float64  `json:"speedup"`
		HarvestAllocsPerOp float64  `json:"harvest_allocs_per_op"`
		Identical          bool     `json:"output_identical"`
		// Intra-cell sharded pipeline series (one 8-cell machine).
		Shards             int     `json:"shards"`
		ShardCells         int     `json:"shard_cells"`
		ShardRefs          int     `json:"shard_refs_per_machine"`
		ShardSeqNS         int64   `json:"shard_sequential_ns"`
		ShardParNS         int64   `json:"shard_parallel_ns"`
		ShardSeqRefsPerSec float64 `json:"shard_sequential_refs_per_sec"`
		ShardParRefsPerSec float64 `json:"shard_parallel_refs_per_sec"`
		ShardSpeedup       float64 `json:"shard_speedup"`
		ShardIdentical     bool    `json:"shard_output_identical"`
	}{
		Benchmark:          "BenchmarkRunner",
		Experiment:         "methods",
		Workloads:          benchWorkloads,
		RefsPerCell:        benchOptions(0).Refs,
		Workers:            workers,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
		SequentialNS:       seqNS,
		ParallelNS:         parNS,
		Speedup:            float64(seqNS) / float64(parNS),
		HarvestAllocsPerOp: harvestAllocsPerOp(t),
		Identical:          true,
		Shards:             shardWorkers,
		ShardCells:         shardCellCores,
		ShardRefs:          shardCellRefs,
		ShardSeqNS:         shardSeqNS,
		ShardParNS:         shardParNS,
		ShardSeqRefsPerSec: float64(shardCellRefs) / (float64(shardSeqNS) / 1e9),
		ShardParRefsPerSec: float64(shardCellRefs) / (float64(shardParNS) / 1e9),
		ShardSpeedup:       float64(shardSeqNS) / float64(shardParNS),
		ShardIdentical:     true,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential=%s parallel=%s speedup=%.2fx (workers=%d) -> %s",
		time.Duration(seqNS), time.Duration(parNS), report.Speedup, workers, path)
	t.Logf("sharded cell: shards=1 %s (%.0f refs/s) shards=%d %s (%.0f refs/s) speedup=%.2fx",
		time.Duration(shardSeqNS), report.ShardSeqRefsPerSec,
		shardWorkers, time.Duration(shardParNS), report.ShardParRefsPerSec, report.ShardSpeedup)
}
