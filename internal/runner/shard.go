package runner

import "fmt"

// ShardGroup is the fork-join primitive behind the intra-cell sharded
// epoch pipeline: it runs fn(0..shards-1) on the bounded pool and
// returns the results indexed by shard, never by completion order.
// cfg.Workers is the pool width (the tmpsim/tmpbench -shards value);
// the shard count itself is fixed by the simulated machine (one shard
// per per-core cell), so changing the worker width changes wall-clock
// only, never which shard computes what. Each fn call must be a pure
// function of its shard index — private workload slice, private
// accumulators, private RNGs — exactly the Job contract, which is why
// this is a thin veneer over Run rather than a second pool: the
// goroutine surface of the repo stays confined to this package.
//
// name labels shards in Stats; nil gets "shard/<i>".
func ShardGroup[T any](cfg Config, shards int, name func(int) string, fn func(shard int) (T, error)) ([]T, Stats, error) {
	jobs := make([]Job[T], shards)
	for i := range jobs {
		n := fmt.Sprintf("shard/%d", i)
		if name != nil {
			n = name(i)
		}
		shard := i
		jobs[i] = Job[T]{Name: n, Run: func() (T, error) { return fn(shard) }}
	}
	return Run(cfg, jobs)
}
