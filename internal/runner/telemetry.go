package runner

import (
	"tieredmem/internal/telemetry"
)

// RecordStats publishes one Run call's pool statistics into a
// telemetry registry under "runner/<name>/...". These are host-side
// wall-clock measurements (queue delays, real run times) and are
// inherently nondeterministic — which is why they go into a registry
// the caller keeps SEPARATE from any virtual-time tracer: merging them
// into the deterministic event stream would break the parallel
// byte-identity contract. cmd/tmpbench surfaces this registry behind
// -metrics. Names route through telemetry.Name so a run or job name
// with out-of-alphabet bytes still yields a greppable
// <subsystem>/<metric> counter name.
func RecordStats(reg *telemetry.Registry, name string, s Stats) {
	if reg == nil {
		return
	}
	reg.Counter(telemetry.Name("runner", name, "jobs")).Set(uint64(s.Jobs))
	reg.Counter(telemetry.Name("runner", name, "workers")).Set(uint64(s.Workers))
	reg.Counter(telemetry.Name("runner", name, "wall_ns")).Set(uint64(s.WallNS))
	reg.Counter(telemetry.Name("runner", name, "busy_ns")).Set(uint64(s.BusyNS))
	reg.Counter(telemetry.Name("runner", name, "queue_ns")).Set(uint64(s.QueueNS))
	for i := range s.PerJob {
		js := &s.PerJob[i]
		reg.Counter(telemetry.Name("runner", name, "job", js.Name, "wall_ns")).Set(uint64(js.WallNS))
		reg.Counter(telemetry.Name("runner", name, "job", js.Name, "queue_ns")).Set(uint64(js.QueueNS))
	}
}
