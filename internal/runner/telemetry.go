package runner

import (
	"fmt"

	"tieredmem/internal/telemetry"
)

// RecordStats publishes one Run call's pool statistics into a
// telemetry registry under "runner/<name>/...". These are host-side
// wall-clock measurements (queue delays, real run times) and are
// inherently nondeterministic — which is why they go into a registry
// the caller keeps SEPARATE from any virtual-time tracer: merging them
// into the deterministic event stream would break the parallel
// byte-identity contract. cmd/tmpbench surfaces this registry behind
// -metrics.
func RecordStats(reg *telemetry.Registry, name string, s Stats) {
	if reg == nil {
		return
	}
	prefix := "runner/" + name
	reg.Counter(prefix + "/jobs").Set(uint64(s.Jobs))
	reg.Counter(prefix + "/workers").Set(uint64(s.Workers))
	reg.Counter(prefix + "/wall_ns").Set(uint64(s.WallNS))
	reg.Counter(prefix + "/busy_ns").Set(uint64(s.BusyNS))
	reg.Counter(prefix + "/queue_ns").Set(uint64(s.QueueNS))
	for i := range s.PerJob {
		js := &s.PerJob[i]
		jp := fmt.Sprintf("%s/job/%s", prefix, js.Name)
		reg.Counter(jp + "/wall_ns").Set(uint64(js.WallNS))
		reg.Counter(jp + "/queue_ns").Set(uint64(js.QueueNS))
	}
}
