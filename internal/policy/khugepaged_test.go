package policy

import (
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

func TestCollapserRebuildsSplitHugePage(t *testing.T) {
	m := moverMachine(t, 4*mem.HugePages, 4*mem.HugePages)
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 0, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
	// Split via the mover by migrating one subpage out and back.
	mv := NewMover(m)
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 7}, mem.SlowTier); err != nil {
		t.Fatal(err)
	}
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 7}, mem.FastTier); err != nil {
		t.Fatal(err)
	}
	if m.Table(1).HugeLeaves() != 0 {
		t.Fatalf("precondition: mapping not split")
	}

	// Mark some profiling state to verify preservation.
	pfn3, _ := m.Table(1).Frame(3)
	m.Phys.Page(pfn3).AbitEpoch = 7

	kc := NewCollapser(m)
	n := kc.Collapse([]int{1}, 10)
	if n != 1 || kc.Collapses != 1 {
		t.Fatalf("collapsed %d chunks, want 1", n)
	}
	if m.Table(1).HugeLeaves() != 1 {
		t.Errorf("huge leaf not re-established")
	}
	// Frames are contiguous again and state survived.
	base, _ := m.Table(1).Frame(0)
	if uint64(base)%mem.HugePages != 0 {
		t.Errorf("collapsed base PFN %d not aligned", base)
	}
	for i := 0; i < mem.HugePages; i++ {
		pfn, ok := m.Table(1).Frame(mem.VPN(i))
		if !ok || pfn != base+mem.PFN(i) {
			t.Fatalf("subpage %d not contiguous after collapse", i)
		}
	}
	newPFN3, _ := m.Table(1).Frame(3)
	if m.Phys.Page(newPFN3).AbitEpoch != 7 {
		t.Errorf("profiling state lost in collapse")
	}
	// The chunk must still be usable.
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 7 * 4096, Kind: trace.Store}); err != nil {
		t.Fatalf("access after collapse: %v", err)
	}
	if kc.OverheadNS == 0 {
		t.Errorf("collapse cost not recorded")
	}
}

func TestCollapserSkipsTierStraddlingChunks(t *testing.T) {
	m := moverMachine(t, 4*mem.HugePages, 4*mem.HugePages)
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	m.Execute(trace.Ref{PID: 1, VAddr: 0, Kind: trace.Load})
	mv := NewMover(m)
	// Leave subpage 7 in the slow tier: the chunk straddles tiers.
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 7}, mem.SlowTier); err != nil {
		t.Fatal(err)
	}
	kc := NewCollapser(m)
	if n := kc.Collapse([]int{1}, 10); n != 0 {
		t.Errorf("collapsed %d tier-straddling chunks, want 0", n)
	}
}

func TestCollapserSkipsPartialChunks(t *testing.T) {
	m := moverMachine(t, 4*mem.HugePages, 4*mem.HugePages)
	// 4 KiB pages only, not chunk-aligned coverage.
	for i := uint64(0); i < 100; i++ {
		m.Execute(trace.Ref{PID: 1, VAddr: i * 4096, Kind: trace.Load})
	}
	kc := NewCollapser(m)
	if n := kc.Collapse([]int{1}, 10); n != 0 {
		t.Errorf("collapsed %d partial chunks, want 0", n)
	}
}

func TestCollapserRateLimit(t *testing.T) {
	m := moverMachine(t, 8*mem.HugePages, 8*mem.HugePages)
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	// Two huge chunks, both split.
	m.Execute(trace.Ref{PID: 1, VAddr: 0, Kind: trace.Load})
	m.Execute(trace.Ref{PID: 1, VAddr: uint64(mem.HugePages) * 4096, Kind: trace.Load})
	for _, base := range []mem.VPN{0, mem.HugePages} {
		if !m.Table(1).SplitHuge(base) {
			t.Fatal("split failed")
		}
	}
	kc := NewCollapser(m)
	if n := kc.Collapse([]int{1}, 1); n != 1 {
		t.Fatalf("rate-limited collapse did %d, want 1", n)
	}
	if n := kc.Collapse([]int{1}, 10); n != 1 {
		t.Fatalf("second pass collapsed %d, want the remaining 1", n)
	}
}
