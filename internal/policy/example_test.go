package policy_test

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
)

// ExampleEvaluateHitrate replays two epochs through the Oracle and
// History policies offline, the way Fig. 6 is computed.
func ExampleEvaluateHitrate() {
	page := func(vpn uint64, rank, truth uint32) core.PageStat {
		return core.PageStat{
			Key:  core.PageKey{PID: 1, VPN: mem.VPN(vpn)},
			Abit: rank, True: truth,
		}
	}
	epochs := []core.EpochStats{
		{Epoch: 0, Pages: []core.PageStat{page(1, 9, 10), page(2, 1, 2)}},
		{Epoch: 1, Pages: []core.PageStat{page(1, 1, 2), page(2, 9, 10)}},
	}
	oracle := policy.EvaluateHitrate(policy.Oracle{}, epochs, core.MethodAbit, 1)
	history := policy.EvaluateHitrate(policy.History{}, epochs, core.MethodAbit, 1)
	fmt.Printf("oracle  %d/%d = %.3f\n", oracle.Hits, oracle.Total, oracle.Hitrate())
	fmt.Printf("history %d/%d = %.3f\n", history.Hits, history.Total, history.Hitrate())
	// Output:
	// oracle  20/24 = 0.833
	// history 2/24 = 0.083
}

// ExampleCapacityForRatio converts Fig. 6's tier ratios into page
// capacities.
func ExampleCapacityForRatio() {
	for _, ratio := range policy.Fig6Ratios {
		fmt.Printf("1/%d -> %d pages\n", ratio, policy.CapacityForRatio(4096, ratio))
	}
	// Output:
	// 1/8 -> 512 pages
	// 1/16 -> 256 pages
	// 1/32 -> 128 pages
	// 1/64 -> 64 pages
	// 1/128 -> 32 pages
}
