package policy

import "tieredmem/internal/core"

// HitrateResult is one policy arm's outcome over a run: the paper's
// Fig. 6 metric — tier-1 memory accesses relative to total memory
// accesses, computed per epoch from ground truth and averaged over the
// run weighted by access volume.
type HitrateResult struct {
	Policy   string
	Method   core.Method
	Ratio    int // denominator of the tier-1:total capacity ratio (8..128)
	Hits     uint64
	Total    uint64
	Epochs   int
	Migrated uint64 // pages that entered/left the selection across epochs
}

// Hitrate returns the fraction of memory accesses served by tier 1.
func (r HitrateResult) Hitrate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// EvaluateHitrate replays a sequence of per-epoch harvests through a
// policy arm offline, exactly as the paper computed Fig. 6 from
// profiling data collected on real hardware: at each epoch horizon the
// policy picks tier-1 residents using the chosen method's evidence,
// and the epoch's ground-truth memory accesses score hits and misses.
// capacity is the tier-1 size in pages.
//
// Epoch e's selection is made from prev=epochs[e-1] and
// next=epochs[e]; the first epoch has an empty prev, so reactive
// policies start cold, as they do in reality.
func EvaluateHitrate(p Policy, epochs []core.EpochStats, method core.Method, capacity int) HitrateResult {
	res := HitrateResult{Policy: p.Name(), Method: method, Epochs: len(epochs)}
	var prevSel Selection
	var prev core.EpochStats
	for i, ep := range epochs {
		sel := p.Select(prev, ep, method, capacity)
		for _, ps := range ep.Pages {
			if ps.True == 0 {
				continue
			}
			res.Total += uint64(ps.True)
			if _, ok := sel[ps.Key]; ok {
				res.Hits += uint64(ps.True)
			}
		}
		if i > 0 {
			res.Migrated += uint64(selectionDelta(prevSel, sel))
		}
		prevSel = sel
		prev = ep
	}
	return res
}

// selectionDelta counts pages that entered the selection (promotions;
// demotions are symmetric when capacity is constant).
func selectionDelta(old, new Selection) int {
	n := 0
	for k := range new {
		if _, ok := old[k]; !ok {
			n++
		}
	}
	return n
}

// CapacityForRatio converts a 1/ratio tier-1 share of a footprint into
// a page capacity (minimum one page). Fig. 6 sweeps ratio over
// {8, 16, 32, 64, 128}.
func CapacityForRatio(footprintPages, ratio int) int {
	if ratio <= 0 {
		ratio = 1
	}
	c := footprintPages / ratio
	if c < 1 {
		c = 1
	}
	return c
}

// Fig6Ratios are the tier-1:total capacity ratios the paper sweeps.
var Fig6Ratios = []int{8, 16, 32, 64, 128}
