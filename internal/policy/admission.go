package policy

// Admission control for the migration stream (the TierBPF model,
// "Page Migration Admission Control for Tiered Memory via eBPF"):
// migration traffic shares the memory bus with the workload, so an
// epoch gets a bounded simulated-bandwidth budget and migrations past
// it wait instead of thrashing the bus. The budget and every cost are
// pure functions of the tier chain's latency points and the epoch's
// candidate order — no clocks, no global state — so admission
// decisions replay byte-identically at any parallel or shard width.
//
// The mover prices each proposed migration with migrationCostNS and
// charges it against AdmissionBudgetNS via admit. Denied migrations
// are deferred into the deferred-retry queue for the next epoch
// (verdict "deferred:admission", no retry attempt burned) or, when the
// queue is full, rejected outright (verdict "rejected:admission").
// Shadow-hit demotions copy nothing, cost zero, and are always
// admitted — the cheapest migration is the one whose bytes are already
// there.

import (
	"tieredmem/internal/core"
	"tieredmem/internal/mem"
)

// pageLines is how many cache-line transfers one page copy issues.
const pageLines = mem.PageSize / 64

// PageCopyCostNS prices one page copy between two tiers from the
// chain's latency points: every line is read from the source tier and
// written to the target.
func PageCopyCostNS(src, dst mem.TierSpec) int64 {
	return pageLines * (src.ReadLatency + dst.WriteLatency)
}

// AdmissionBudgetNS derives a per-epoch migration budget from an
// epoch length and a bandwidth fraction: frac of the epoch's wall of
// simulated time may go to migration line traffic. frac <= 0 disables
// admission control (an unlimited budget).
func AdmissionBudgetNS(epochNS int64, frac float64) int64 {
	if frac <= 0 {
		return 0
	}
	return int64(frac * float64(epochNS))
}

// admissionGated reports whether the admission controller is active.
func (mv *Mover) admissionGated() bool { return mv.AdmissionBudgetNS > 0 }

// migrationCostNS prices one proposed migration. A page already in the
// target tier, or one whose demotion can adopt a valid shadow copy, is
// free; a vanished mapping is also free (the migrate attempt will
// classify the vanish without copying anything).
func (mv *Mover) migrationCostNS(key core.PageKey, target mem.TierID) int64 {
	phys := mv.machine.Phys
	table, ok := mv.machine.Tables()[key.PID]
	if !ok {
		return 0
	}
	pfn, ok := table.Frame(key.VPN)
	if !ok {
		return 0
	}
	pd := phys.Page(pfn)
	if pd.Tier == target {
		return 0
	}
	if mv.Transactional && target > pd.Tier {
		if _, hit := phys.ShadowFor(pfn, target); hit {
			return 0
		}
	}
	return PageCopyCostNS(phys.TierSpecOf(pd.Tier), phys.TierSpecOf(target))
}

// admit charges one migration against the epoch's budget and reports
// whether it fits. Each direction owns half the budget: demotions run
// first in the epoch (and their deferrals replay first from the retry
// queue), so a shared pool would let a demotion backlog starve
// promotions — the demand-driven direction — indefinitely. Only called
// when admissionGated().
func (mv *Mover) admit(promote bool, cost int64) bool {
	half := mv.AdmissionBudgetNS / 2
	spent := &mv.admSpentDemote
	if promote {
		spent = &mv.admSpentPromote
	}
	if *spent+cost > half {
		return false
	}
	*spent += cost
	if promote {
		mv.AdmittedPromotions++
	} else {
		mv.AdmittedDemotions++
	}
	return true
}

// deferAdmission parks an admission-denied migration in the retry
// queue for the next epoch. Unlike a failure deferral it burns no
// retry attempt and backs off exactly one epoch: the page did nothing
// wrong, the bus was busy. A full queue rejects the migration
// outright — a contended epoch must not hoard an unbounded backlog.
func (mv *Mover) deferAdmission(key core.PageKey, promote bool, attempts int, firstFail uint64) {
	if len(mv.retries) >= mv.RetryQueueCap {
		if promote {
			mv.RejectedPromotions++
		} else {
			mv.RejectedDemotions++
		}
		mv.prov.NoteRejectedAdmission(key)
		return
	}
	mv.DeferredAdmission++
	mv.retries = append(mv.retries, retryEntry{
		key:       key,
		promote:   promote,
		attempts:  attempts,
		due:       mv.epoch + 1,
		firstFail: firstFail,
	})
	mv.prov.NoteDeferredAdmission(key)
}
