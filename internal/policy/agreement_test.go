package policy

import (
	"fmt"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/order"
)

// agreementStats builds a tie-heavy harvest with every page in the
// slow tier, so the fast-tier tie preference is neutral and policies
// that track residency (History via statLess) and policies that do not
// (Decay, Predictor) are comparable.
func agreementStats(n int) core.EpochStats {
	stats := core.EpochStats{Pages: make([]core.PageStat, 0, n)}
	for i := 0; i < n; i++ {
		stats.Pages = append(stats.Pages, core.PageStat{
			Key:   core.PageKey{PID: 1 + i%3, VPN: mem.VPN(i / 3)},
			Tier:  mem.SlowTier,
			Abit:  uint32(i % 4), // heavy tie groups, some zero-rank
			Trace: uint32(i % 6),
		})
	}
	return stats
}

func selectionKeys(sel Selection) map[core.PageKey]bool {
	out := make(map[core.PageKey]bool, len(sel))
	for k := range sel {
		out[k] = true
	}
	return out
}

// TestSelectorsAgreeOnSharedComparator is the cross-package drift
// guard the shared comparator exists for: with residency and writes
// neutralized and fresh per-policy state, History, Oracle, Decay
// (alpha=1 degrades to History), Predictor (first epoch: score is
// monotone in rank), and WriteBiased (zero writes: score equals rank)
// must all pick exactly the keys of the full RankedPages prefix.
func TestSelectorsAgreeOnSharedComparator(t *testing.T) {
	stats := agreementStats(60)
	for _, method := range []core.Method{core.MethodAbit, core.MethodTrace, core.MethodCombined} {
		ranked := core.RankedPages(stats, method)
		for _, capacity := range []int{1, 3, len(ranked) / 2, len(ranked), len(ranked) + 10} {
			want := make(map[core.PageKey]bool, capacity)
			for i, ps := range ranked {
				if i >= capacity {
					break
				}
				want[ps.Key] = true
			}
			policies := []Policy{
				History{},
				Oracle{},
				NewDecay(1.0),
				NewPredictor(),
				WriteBiased{Bias: 2},
			}
			for _, p := range policies {
				// Oracle reads next; everything else reads prev.
				sel := p.Select(stats, stats, method, capacity)
				got := selectionKeys(sel)
				if len(got) != len(want) {
					t.Errorf("%s method=%v capacity=%d: selected %d pages, want %d",
						p.Name(), method, capacity, len(got), len(want))
					continue
				}
				for _, k := range order.SortedKeysFunc(want, core.PageKeyLess) {
					if !got[k] {
						t.Errorf("%s method=%v capacity=%d: page %v missing from selection",
							p.Name(), method, capacity, k)
					}
				}
			}
		}
	}
}

// TestBoundedSelectionSweepsCapacity sweeps capacity over a tie-heavy
// harvest and checks the bounded takeTop prefix is always exactly the
// full-sort prefix — the policy-side view of the core differential
// test.
func TestBoundedSelectionSweepsCapacity(t *testing.T) {
	stats := agreementStats(45)
	method := core.MethodCombined
	ranked := core.RankedPages(stats, method)
	for capacity := 0; capacity <= len(ranked)+2; capacity++ {
		sel := takeTop(stats, method, capacity)
		wantLen := capacity
		if wantLen > len(ranked) {
			wantLen = len(ranked)
		}
		if len(sel) != wantLen {
			t.Fatalf("capacity %d: |selection| = %d, want %d", capacity, len(sel), wantLen)
		}
		for i := 0; i < wantLen; i++ {
			if _, ok := sel[ranked[i].Key]; !ok {
				t.Fatalf("capacity %d: ranked[%d]=%v not selected", capacity, i, ranked[i].Key)
			}
		}
	}
}

// TestSelectionDeterminism re-runs a stateful policy from fresh state
// and requires byte-identical selections — the same-seed-same-ranks
// contract at the policy layer.
func TestSelectionDeterminism(t *testing.T) {
	stats := agreementStats(60)
	run := func() string {
		p := NewPredictor()
		var out string
		for epoch := 0; epoch < 3; epoch++ {
			sel := p.Select(stats, core.EpochStats{}, core.MethodCombined, 10)
			for _, ps := range core.RankedPages(stats, core.MethodCombined) {
				if _, ok := sel[ps.Key]; ok {
					out += fmt.Sprintf("%d:%d;", ps.Key.PID, uint64(ps.Key.VPN))
				}
			}
			out += "|"
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Errorf("stateful selection not reproducible:\n%s\n%s", a, b)
	}
}
