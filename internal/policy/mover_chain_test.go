package policy

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/tlb"
)

// chainMachine builds a machine over an arbitrary tier chain.
func chainMachine(t *testing.T, chainSpec string) *cpu.Machine {
	t.Helper()
	chain, err := mem.ParseTierChain(chainSpec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, chain)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// selectKeys builds a Selection over (pid 1, vpns).
func selectKeys(vpns ...mem.VPN) Selection {
	sel := make(Selection, len(vpns))
	for _, v := range vpns {
		sel[core.PageKey{PID: 1, VPN: v}] = struct{}{}
	}
	return sel
}

// TestChainPromoteClimbsOneTierPerEpoch pins the adjacency rule: a
// selected page at the bottom of a 3-tier chain reaches the top in two
// epochs, pausing in the middle tier, with the middle tier spilling one
// of its own pages down to make room.
func TestChainPromoteClimbsOneTierPerEpoch(t *testing.T) {
	m := chainMachine(t, "dram:4/cxl:8/nvm:16")
	touchPages(t, m, 1, 16) // 0..3 dram, 4..11 cxl, 12..15 nvm
	mv := NewMover(m)
	sel := selectKeys(13)

	promoted, demoted := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 1 || demoted != 1 {
		t.Fatalf("epoch 1: promoted, demoted = %d, %d; want 1, 1", promoted, demoted)
	}
	if got := tierOf(t, m, 1, 13); got != 1 {
		t.Fatalf("epoch 1: page climbed to tier %d, want middle tier 1", got)
	}

	// Epoch 2 cascades: a dram page spills into the (full) middle
	// tier, which first spills one of its own down — two demotions
	// for the one promotion.
	promoted, demoted = mv.ApplySelection(sel, core.Ranks{})
	if promoted != 1 || demoted != 2 {
		t.Fatalf("epoch 2: promoted, demoted = %d, %d; want 1, 2", promoted, demoted)
	}
	if got := tierOf(t, m, 1, 13); got != mem.FastTier {
		t.Fatalf("epoch 2: page in tier %d, want top tier", got)
	}
	if mv.Shootdowns != 2 {
		t.Errorf("Shootdowns = %d, want one per epoch with movement", mv.Shootdowns)
	}
}

// TestChainPromotionPastFullMiddleTier pins the backpressure path: when
// the middle tier is full and offers no demotion candidates, a deep
// promotion fails with a capacity error and queues for retry rather
// than skipping a tier or evicting protected pages.
func TestChainPromotionPastFullMiddleTier(t *testing.T) {
	m := chainMachine(t, "dram:4/cxl:8/nvm:16")
	touchPages(t, m, 1, 16)
	mv := NewMover(m)
	// Everything resident in dram and cxl is selected (protected);
	// page 13 wants to climb out of nvm with nowhere to go.
	sel := selectKeys(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 13)

	promoted, _ := mv.ApplySelection(sel, core.Ranks{})
	if got := tierOf(t, m, 1, 13); got != 2 {
		t.Fatalf("page moved to tier %d despite full middle tier", got)
	}
	if promoted != 0 {
		t.Fatalf("promoted = %d, want 0", promoted)
	}
	if mv.FailedCapacity == 0 {
		t.Fatal("no capacity failure recorded for the blocked climb")
	}
	if mv.RetryQueueLen() == 0 {
		t.Fatal("blocked climb not queued for retry")
	}

	// Deselect one middle-tier page: it becomes spillable, and over
	// the following epochs the blocked climb completes (via retry or
	// a fresh pass once the retry budget drains — either way the page
	// must land without skipping a tier).
	sel2 := selectKeys(0, 1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 13)
	var reached bool
	for epoch := 0; epoch < 6; epoch++ {
		mv.ApplySelection(sel2, core.Ranks{})
		if tierOf(t, m, 1, 13) == 1 {
			reached = true
			break
		}
	}
	if !reached {
		t.Fatal("climb never completed after room appeared")
	}
	if mv.Retried == 0 {
		t.Fatal("deferred retries were never replayed")
	}
}

// TestChainNoDemotionOffChainEnd pins the chain-end rule: pages in the
// last tier are never demotion candidates, even when the tier above
// spills into their tier under promotion pressure.
func TestChainNoDemotionOffChainEnd(t *testing.T) {
	m := chainMachine(t, "dram:4/cxl:4/nvm:16")
	touchPages(t, m, 1, 12) // 0..3 dram, 4..7 cxl, 8..11 nvm
	mv := NewMover(m)
	// Promote two nvm pages; the full middle tier must spill its own
	// (unselected) pages down, and the nvm residents must stay put.
	sel := selectKeys(8, 9)
	promoted, demoted := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 2 || demoted != 2 {
		t.Fatalf("promoted, demoted = %d, %d; want 2, 2", promoted, demoted)
	}
	for _, vpn := range []mem.VPN{10, 11} {
		if got := tierOf(t, m, 1, vpn); got != 2 {
			t.Errorf("unselected last-tier page %d moved to tier %d", vpn, got)
		}
	}
	// The spilled middle-tier pages landed in the last tier, not off
	// its end.
	inLast := 0
	for _, vpn := range []mem.VPN{4, 5, 6, 7} {
		if tierOf(t, m, 1, vpn) == 2 {
			inLast++
		}
	}
	if inLast != 2 {
		t.Errorf("middle-tier spills in last tier = %d, want 2", inLast)
	}
}

// TestChainPinnedPageMidChain pins the non-migratable rule in the
// middle of the chain: a pinned page is neither promoted when selected
// nor demoted to make room, and its exclusion is silent (skipped, not
// a failure).
func TestChainPinnedPageMidChain(t *testing.T) {
	m := chainMachine(t, "dram:4/cxl:8/nvm:16")
	touchPages(t, m, 1, 16)
	pfn, ok := m.Table(1).Frame(5) // resident mid-chain
	if !ok {
		t.Fatal("vpn 5 not mapped")
	}
	m.Phys.Page(pfn).Flags |= mem.FlagNonMigratable

	mv := NewMover(m)
	// Selected: the pinned page must not climb.
	mv.ApplySelection(selectKeys(5), core.Ranks{})
	if got := tierOf(t, m, 1, 5); got != 1 {
		t.Fatalf("pinned page promoted to tier %d", got)
	}
	// Unselected under heavy promotion pressure into its tier: the
	// pinned page must not be the spill victim. Rank every other
	// middle-tier page hotter so the pinned page would be the coldest
	// candidate if it were eligible.
	ranks := core.RanksFromMap(map[core.PageKey]uint64{
		{PID: 1, VPN: 4}:  9,
		{PID: 1, VPN: 6}:  9,
		{PID: 1, VPN: 7}:  9,
		{PID: 1, VPN: 8}:  9,
		{PID: 1, VPN: 9}:  9,
		{PID: 1, VPN: 10}: 9,
		{PID: 1, VPN: 11}: 9,
	})
	mv.ApplySelection(selectKeys(13), ranks)
	if got := tierOf(t, m, 1, 5); got != 1 {
		t.Fatalf("pinned page demoted to tier %d", got)
	}
	if mv.Failed != 0 {
		t.Fatalf("pinned exclusion counted as failure: %d", mv.Failed)
	}
	if got := tierOf(t, m, 1, 13); got != 1 {
		t.Fatalf("promotion around pinned page failed: tier %d", got)
	}
}

// TestChainCascadeMakesRoomBottomUp drives a promotion wave large
// enough to cascade within one epoch: promotions into the full top
// tier force dram spills into the full middle tier, which must first
// spill its own cold pages down to the last tier to receive them —
// all under a single batched shootdown.
func TestChainCascadeMakesRoomBottomUp(t *testing.T) {
	m := chainMachine(t, "dram:4/cxl:4/nvm:16")
	touchPages(t, m, 1, 8) // 0..3 dram, 4..7 cxl (both full)
	mv := NewMover(m)
	// Two middle-tier pages climb; the other two are cold ballast the
	// middle tier can spill to make room for the dram displacements.
	sel := selectKeys(4, 5)
	ranks := core.RanksFromMap(map[core.PageKey]uint64{
		{PID: 1, VPN: 2}: 9, // hot dram residents survive
		{PID: 1, VPN: 3}: 9,
	})
	promoted, demoted := mv.ApplySelection(sel, ranks)
	if promoted != 2 {
		t.Fatalf("promoted = %d, want 2", promoted)
	}
	if demoted != 4 {
		t.Fatalf("demoted = %d, want 4 (2 dram spills + 2 middle spills)", demoted)
	}
	for _, vpn := range []mem.VPN{4, 5} {
		if got := tierOf(t, m, 1, vpn); got != mem.FastTier {
			t.Errorf("selected page %d in tier %d, want top", vpn, got)
		}
	}
	// The cold dram pages landed in the middle tier, and the middle
	// tier's cold ballast sank to the bottom, in the same epoch.
	for _, vpn := range []mem.VPN{0, 1} {
		if got := tierOf(t, m, 1, vpn); got != 1 {
			t.Errorf("displaced dram page %d in tier %d, want middle", vpn, got)
		}
	}
	for _, vpn := range []mem.VPN{6, 7} {
		if got := tierOf(t, m, 1, vpn); got != 2 {
			t.Errorf("middle ballast page %d in tier %d, want bottom", vpn, got)
		}
	}
	if mv.Shootdowns != 1 {
		t.Errorf("Shootdowns = %d, want exactly 1 for the whole cascade", mv.Shootdowns)
	}
}
