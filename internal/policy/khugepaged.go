package policy

import (
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
)

// Collapser is the simulator's khugepaged: page migration splits THP
// mappings into base pages (see Mover.migrate), and over time a
// tiered system would degrade to 4 KiB translations everywhere —
// inflating TLB pressure and A-bit walk costs. Linux's khugepaged
// daemon walks address spaces looking for 2 MiB-aligned ranges that
// are fully mapped with base pages, copies them into a freshly
// allocated huge frame, and installs a PMD mapping. The collapser
// does the same, restricted to chunks that are tier-homogeneous (a
// chunk straddling tiers is exactly the one the mover just split and
// should stay split).
type Collapser struct {
	machine *cpu.Machine
	// CostPerPageNS is the per-subpage copy cost charged for a
	// collapse (one 2 MiB collapse copies 512 pages).
	CostPerPageNS int64
	// CollapserCore pays the costs.
	CollapserCore int

	// Stats.
	Collapses  uint64 // huge mappings re-established
	Scanned    uint64 // candidate chunks examined
	OverheadNS int64

	charged int64 // portion of OverheadNS already charged
}

// NewCollapser builds a collapser with a 2 us per-subpage copy cost
// (khugepaged copies through the kernel map).
func NewCollapser(m *cpu.Machine) *Collapser {
	return &Collapser{machine: m, CostPerPageNS: 2000}
}

// chunk is a collapse candidate.
type chunk struct {
	pid  int
	base mem.VPN
	tier mem.TierID
}

// Collapse scans the given processes for collapsible chunks and
// rebuilds up to maxCollapses huge mappings (khugepaged is
// rate-limited the same way). It returns how many chunks were
// collapsed.
func (c *Collapser) Collapse(pids []int, maxCollapses int) int {
	if maxCollapses <= 0 {
		return 0
	}
	var candidates []chunk
	for _, pid := range pids {
		table, ok := c.machine.Tables()[pid]
		if !ok {
			continue
		}
		candidates = append(candidates, c.findCandidates(pid, table)...)
	}
	done := 0
	for _, cand := range candidates {
		if done >= maxCollapses {
			break
		}
		if c.collapseOne(cand) {
			done++
		}
	}
	if c.OverheadNS > 0 {
		c.machine.Core(c.CollapserCore).AdvanceClock(c.chargeDelta())
	}
	return done
}

// findCandidates locates 2 MiB-aligned, fully base-mapped,
// tier-homogeneous chunks. WalkRange visits in ascending VPN order, so
// a chunk is complete exactly when 512 consecutive pages arrive from
// its aligned base in one tier.
func (c *Collapser) findCandidates(pid int, table *pagetable.Table) []chunk {
	phys := c.machine.Phys
	var out []chunk
	var cur chunk
	count := 0
	table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
		if huge {
			count = 0
			return true
		}
		tier := phys.TierOf(pte.PFN())
		switch {
		case uint64(vpn)%mem.HugePages == 0:
			cur = chunk{pid: pid, base: vpn, tier: tier}
			count = 1
		case count > 0 && vpn == cur.base+mem.VPN(count) && tier == cur.tier:
			count++
		default:
			count = 0
		}
		if count == mem.HugePages {
			out = append(out, cur)
			count = 0
		}
		return true
	})
	c.Scanned += uint64(len(out))
	return out
}

// collapseOne copies a chunk into a fresh contiguous huge frame and
// installs the PMD mapping.
func (c *Collapser) collapseOne(cand chunk) bool {
	phys := c.machine.Phys
	table, ok := c.machine.Tables()[cand.pid]
	if !ok {
		return false
	}
	// Re-validate under current state.
	for i := 0; i < mem.HugePages; i++ {
		pte, huge := table.Resolve(cand.base + mem.VPN(i))
		if pte == nil || huge || phys.TierOf(pte.PFN()) != cand.tier {
			return false
		}
	}
	newBase, err := phys.AllocHuge(cand.tier, cand.pid, cand.base)
	if err != nil {
		return false
	}
	// Copy state per subpage, free old frames, then remap as huge.
	var oldPFNs [mem.HugePages]mem.PFN
	for i := 0; i < mem.HugePages; i++ {
		vpn := cand.base + mem.VPN(i)
		old, _ := table.Frame(vpn)
		oldPFNs[i] = old
		oldPD := phys.Page(old)
		newPD := phys.Page(newBase + mem.PFN(i))
		newPD.AbitTotal, newPD.TraceTotal = oldPD.AbitTotal, oldPD.TraceTotal
		newPD.AbitEpoch, newPD.TraceEpoch = oldPD.AbitEpoch, oldPD.TraceEpoch
		newPD.WriteTotal, newPD.WriteEpoch = oldPD.WriteTotal, oldPD.WriteEpoch
		newPD.TrueTotal, newPD.TrueEpoch = oldPD.TrueTotal, oldPD.TrueEpoch
		table.Unmap(vpn)
	}
	table.MapHuge(cand.base, newBase, true)
	for _, old := range oldPFNs {
		phys.Free(old)
	}
	c.OverheadNS += c.machine.SoftCost(int64(mem.HugePages) * c.CostPerPageNS)
	c.OverheadNS += c.machine.FlushAllTLBs()
	c.Collapses++
	return true
}

// chargeDelta charges newly accumulated overhead exactly once.
func (c *Collapser) chargeDelta() int64 {
	d := c.OverheadNS - c.charged
	c.charged = c.OverheadNS
	return d
}
