package policy

import (
	"fmt"
	"sort"

	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
)

// Mover implements the paper's §IV step 3: it physically relocates
// pages across tiers at epoch horizons while processes run. Virtual
// addresses never change — the mover allocates a frame in the target
// tier, copies, remaps the PTE, frees the old frame, and issues one
// machine-wide TLB shootdown per epoch for the whole batch (the reason
// the paper chose epoch-based policies in the first place).
type Mover struct {
	machine *cpu.Machine
	// CostPerPageNS is the per-page migration expense (copy + fixups)
	// charged to the core running the mover; the paper's emulation
	// uses 50 us.
	CostPerPageNS int64
	// MinPromoteRank gates promotions: a slow-tier page is only
	// worth a migration when its evidence reaches this rank ("to
	// justify the migration cost, the hottest pages should be
	// migrated", §IV). Rank 2 means corroborated evidence — an A-bit
	// observation plus at least one trace sample, or repeated
	// samples. 0 disables the gate.
	MinPromoteRank uint64
	// MoverCore pays migration costs.
	MoverCore int

	// Stats.
	Promotions uint64
	Demotions  uint64
	Splits     uint64 // THP splits forced by partial-huge migrations
	Shootdowns uint64
	OverheadNS int64
	Failed     uint64 // migrations skipped (capacity or vanished mapping)

	charged int64 // portion of OverheadNS already charged to MoverCore

	// Telemetry (nil handles no-op when telemetry is off).
	tel          *telemetry.Tracer
	ctrPromote   *telemetry.Counter
	ctrDemote    *telemetry.Counter
	ctrSplits    *telemetry.Counter
	ctrShootdown *telemetry.Counter
	ctrFailed    *telemetry.Counter
	ctrOverhead  *telemetry.Counter
}

// SetTracer attaches the telemetry layer: each successful migration
// emits a KindMigration instant, the per-epoch batch shootdown a
// KindShootdown span, and the mover/* counters sync after every
// ApplySelection. Record-only — selection and migration order are
// unchanged.
func (mv *Mover) SetTracer(t *telemetry.Tracer) {
	mv.tel = t
	mv.ctrPromote = t.Counter("mover/promotions")
	mv.ctrDemote = t.Counter("mover/demotions")
	mv.ctrSplits = t.Counter("mover/splits")
	mv.ctrShootdown = t.Counter("mover/shootdowns")
	mv.ctrFailed = t.Counter("mover/failed")
	mv.ctrOverhead = t.Counter("mover/overhead_ns")
}

// NewMover builds a mover with the paper's 50 us per-page cost.
func NewMover(m *cpu.Machine) *Mover {
	return &Mover{machine: m, CostPerPageNS: 50_000}
}

// migrate moves one mapped page to the target tier, splitting a huge
// mapping first (Linux migrates THP by splitting unless the whole
// 2 MiB moves; hot subpages rarely cover a whole huge page, so the
// mover splits). The caller batches the shootdown.
func (mv *Mover) migrate(key core.PageKey, target mem.TierID) error {
	phys := mv.machine.Phys
	table, ok := mv.machine.Tables()[key.PID]
	if !ok {
		return fmt.Errorf("policy: pid %d has no page table", key.PID)
	}
	pte, huge := table.Resolve(key.VPN)
	if pte == nil {
		return fmt.Errorf("policy: page pid=%d vpn=%#x no longer mapped", key.PID, uint64(key.VPN))
	}
	if huge {
		table.SplitHuge(key.VPN)
		mv.Splits++
		// A split is roughly one page move of work.
		mv.OverheadNS += mv.machine.SoftCost(mv.CostPerPageNS)
	}
	oldPFN, ok := table.Frame(key.VPN)
	if !ok {
		return fmt.Errorf("policy: page pid=%d vpn=%#x vanished during split", key.PID, uint64(key.VPN))
	}
	oldPD := phys.Page(oldPFN)
	if oldPD.Tier == target {
		return nil
	}
	if oldPD.Flags&mem.FlagNonMigratable != 0 {
		return fmt.Errorf("policy: page pid=%d vpn=%#x is pinned", key.PID, uint64(key.VPN))
	}
	newPFN, err := phys.AllocIn(target, key.PID, key.VPN)
	if err != nil {
		return err
	}
	// Preserve accumulated profiling state across the move: hotness
	// belongs to the logical page, not the frame.
	newPD := phys.Page(newPFN)
	newPD.AbitTotal, newPD.TraceTotal = oldPD.AbitTotal, oldPD.TraceTotal
	newPD.AbitEpoch, newPD.TraceEpoch = oldPD.AbitEpoch, oldPD.TraceEpoch
	newPD.TrueTotal, newPD.TrueEpoch = oldPD.TrueTotal, oldPD.TrueEpoch
	newPD.Flags |= oldPD.Flags & mem.FlagPoisoned

	if !table.Remap(key.VPN, newPFN) {
		phys.Free(newPFN)
		return fmt.Errorf("policy: remap failed for pid=%d vpn=%#x", key.PID, uint64(key.VPN))
	}
	phys.Free(oldPFN)
	mv.OverheadNS += mv.machine.SoftCost(mv.CostPerPageNS)
	return nil
}

// demoteCand is one demotion candidate with its rank precomputed at
// walk time, so the coldest-first ordering does one ranks lookup per
// candidate instead of O(n log n) lookups inside a sort comparator.
type demoteCand struct {
	key  core.PageKey
	rank uint64
}

// ApplySelection reconciles physical placement with a policy's tier-1
// selection: demotes unselected fast-tier pages coldest-first (making
// room), then promotes selected slow-tier pages, then issues one
// shootdown for the whole batch. ranks supplies the epoch's hotness
// per page (missing keys count as zero, i.e. coldest); it protects
// hot-but-unsampled residents from being evicted to fit a handful of
// promotions. It returns (promoted, demoted).
func (mv *Mover) ApplySelection(sel Selection, ranks core.Ranks) (int, int) {
	phys := mv.machine.Phys
	var demote []demoteCand
	var promote []core.PageKey
	phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		if pd.Flags&mem.FlagNonMigratable != 0 {
			return
		}
		key := core.PageKey{PID: pd.PID, VPN: pd.VPage}
		_, selected := sel[key]
		switch {
		case pd.Tier == mem.FastTier && !selected:
			demote = append(demote, demoteCand{key: key, rank: ranks.Get(key)})
		case pd.Tier != mem.FastTier && selected:
			if ranks.Get(key) < mv.MinPromoteRank {
				break // not enough evidence to pay for the move
			}
			promote = append(promote, key)
		}
	})
	coldest := func(a, b demoteCand) bool {
		return core.ColdestLess(a.rank, b.rank, a.key, b.key)
	}
	// Only demote as many pages as needed to fit the promotions plus
	// any fast-tier overflow: that bound is known up front, so
	// bounded selection pulls just the needed coldest candidates out
	// of the (much larger) resident set instead of fully sorting it.
	// Every candidate past the bound is only ever consumed when a
	// migration fails (vanished mapping, full target tier); the
	// fallback below sorts the remainder lazily so the demotion
	// sequence stays exactly the coldest-first order a full sort
	// would have produced.
	need := len(promote) - phys.FreeFrames(mem.FastTier)
	if need < 0 {
		need = 0
	}
	if need > len(demote) {
		need = len(demote)
	}
	head := core.TopKFunc(demote, need, coldest)
	rest := demote[len(head):]
	restSorted := false

	demoted, promoted := 0, 0
	next := 0
	for {
		if phys.FreeFrames(mem.FastTier) >= len(promote)-promoted {
			break
		}
		var cand demoteCand
		if next < len(head) {
			cand = head[next]
		} else {
			if !restSorted {
				sort.Slice(rest, func(i, j int) bool { return coldest(rest[i], rest[j]) })
				restSorted = true
			}
			j := next - len(head)
			if j >= len(rest) {
				break
			}
			cand = rest[j]
		}
		next++
		if err := mv.migrate(cand.key, mem.SlowTier); err != nil {
			mv.Failed++
			continue
		}
		demoted++
		mv.tel.EmitMigration(mv.machine.Now(), cand.key.PID, uint64(cand.key.VPN), false)
	}
	for _, key := range promote {
		if phys.FreeFrames(mem.FastTier) == 0 {
			mv.Failed++
			continue
		}
		if err := mv.migrate(key, mem.FastTier); err != nil {
			mv.Failed++
			continue
		}
		promoted++
		mv.tel.EmitMigration(mv.machine.Now(), key.PID, uint64(key.VPN), true)
	}
	mv.Promotions += uint64(promoted)
	mv.Demotions += uint64(demoted)

	if promoted+demoted > 0 {
		// One shootdown covers the whole epoch's batch.
		cost := mv.machine.FlushAllTLBs()
		mv.Shootdowns++
		mv.OverheadNS += cost
		mv.tel.EmitShootdown(mv.machine.Now(), cost, promoted+demoted)
	}
	if mv.OverheadNS > 0 {
		mv.machine.Core(mv.MoverCore).AdvanceClock(mv.chargeDelta())
	}
	if mv.tel.Enabled() {
		mv.ctrPromote.Set(mv.Promotions)
		mv.ctrDemote.Set(mv.Demotions)
		mv.ctrSplits.Set(mv.Splits)
		mv.ctrShootdown.Set(mv.Shootdowns)
		mv.ctrFailed.Set(mv.Failed)
		mv.ctrOverhead.Set(uint64(mv.OverheadNS))
	}
	return promoted, demoted
}

// chargeDelta charges newly accumulated overhead exactly once.
func (mv *Mover) chargeDelta() int64 {
	d := mv.OverheadNS - mv.charged
	mv.charged = mv.OverheadNS
	return d
}
