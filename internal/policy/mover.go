package policy

import (
	"errors"
	"fmt"
	"sort"

	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/provenance"
	"tieredmem/internal/telemetry"
)

// ErrSplitFailed marks a migration that could not split the huge
// mapping covering its page (a THP split racing a refcount holder).
// Transient: the mover re-queues the page for a later epoch.
var ErrSplitFailed = errors.New("policy: THP split failed")

// Mover implements the paper's §IV step 3: it physically relocates
// pages across tiers at epoch horizons while processes run. Virtual
// addresses never change — the mover allocates a frame in the target
// tier, copies, remaps the PTE, frees the old frame, and issues one
// machine-wide TLB shootdown per epoch for the whole batch (the reason
// the paper chose epoch-based policies in the first place).
//
// Migrations fail — organically (tier full, mapping unmapped while the
// selection was in flight) and under fault injection (transient pins,
// allocation pressure, failed THP splits). The mover classifies every
// failure by its sentinel (mem.ErrTierFull, mem.ErrPinned,
// mem.ErrUnmapped, ErrSplitFailed): transient failures go to a
// bounded deferred-retry queue and are re-attempted in later epochs
// with exponential epoch backoff; permanent ones are dropped with a
// reason-coded counter. The queue cannot distinguish injected failures
// from organic ones — by design, so chaos runs exercise exactly the
// production response path.
type Mover struct {
	machine *cpu.Machine
	// CostPerPageNS is the per-page migration expense (copy + fixups)
	// charged to the core running the mover; the paper's emulation
	// uses 50 us.
	CostPerPageNS int64
	// MinPromoteRank gates promotions: a slow-tier page is only
	// worth a migration when its evidence reaches this rank ("to
	// justify the migration cost, the hottest pages should be
	// migrated", §IV). Rank 2 means corroborated evidence — an A-bit
	// observation plus at least one trace sample, or repeated
	// samples. 0 disables the gate.
	MinPromoteRank uint64
	// MoverCore pays migration costs.
	MoverCore int
	// MaxRetries caps how many times one page's transient failure is
	// attempted in total (initial try included) before the mover gives
	// up on it.
	MaxRetries int
	// RetryQueueCap bounds the deferred-retry queue; failures that
	// would overflow it are dropped (counted in RetryDropped), not
	// queued — a mover drowning in failures must not hoard memory.
	RetryQueueCap int
	// Transactional switches migrate to the multi-phase transaction
	// engine (claim → copy-while-mapped → verify-clean → remap), with
	// dirty-copy aborts re-queued through the retry queue and the
	// vacated frame of a promotion kept as a non-exclusive shadow copy
	// (see ROBUSTNESS.md "The migration transaction"). Off by default:
	// the legacy single-phase path is byte-identical to pre-engine
	// movers.
	Transactional bool
	// AdmissionBudgetNS, when positive, gates the migration stream: an
	// epoch may spend at most this much simulated migration bandwidth
	// (ns of line copies priced from the tier chain's latency points,
	// see PageCopyCostNS). Migrations past the budget are deferred into
	// the retry queue, or rejected outright when it is full. 0 admits
	// everything without drawing or counting.
	AdmissionBudgetNS int64

	// Stats.
	Promotions uint64
	Demotions  uint64
	Splits     uint64 // THP splits forced by partial-huge migrations
	Shootdowns uint64
	OverheadNS int64
	// Failed aggregates every migration failure; the per-reason
	// counters below partition it (Failed = Capacity + Pinned +
	// Vanished + Split + AbortedDirty).
	Failed         uint64
	FailedCapacity uint64 // target tier had no frame (mem.ErrTierFull)
	FailedPinned   uint64 // page transiently pinned (mem.ErrPinned)
	FailedVanished uint64 // mapping gone mid-flight (mem.ErrUnmapped)
	FailedSplit    uint64 // THP split failed (ErrSplitFailed)
	// Retry-queue accounting. Retried counts re-attempts drained from
	// the queue; RetrySucceeded the ones that completed;
	// RetrySuperseded entries dropped because the selection reversed
	// direction before the retry came due; RetryDropped entries
	// abandoned at the attempt cap or queue bound.
	Retried         uint64
	RetrySucceeded  uint64
	RetrySuperseded uint64
	RetryDropped    uint64
	// Transaction accounting (Transactional mode only). Every claimed
	// transaction resolves exactly one way:
	// TxStarted = TxCommitted + AbortedDirty + TxRemapFailed.
	TxStarted    uint64
	TxCommitted  uint64
	AbortedDirty uint64 // verify-clean found the page written mid-copy
	// TxRemapFailed: the mapping vanished between claim and remap;
	// counted under FailedVanished in the failure partition.
	TxRemapFailed uint64
	// Shadow-copy accounting: ShadowHits are demotions satisfied by
	// remapping to a still-valid shadow (zero copy work); ShadowStale
	// counts adoptions abandoned because the fault plane invalidated
	// the shadow at the last moment (the demotion then pays the full
	// copy path).
	ShadowHits  uint64
	ShadowStale uint64
	// Admission accounting (AdmissionBudgetNS > 0 only). Admitted* are
	// migrations charged against the epoch budget; DeferredAdmission
	// were pushed to the retry queue for the next epoch; Rejected* were
	// dropped because the queue was full too.
	AdmittedPromotions uint64
	AdmittedDemotions  uint64
	DeferredAdmission  uint64
	RejectedPromotions uint64
	RejectedDemotions  uint64

	epoch   uint64
	retries []retryEntry
	charged int64 // portion of OverheadNS already charged to MoverCore
	// Per-direction admission spend this epoch; each direction owns
	// half of AdmissionBudgetNS (see admit).
	admSpentPromote int64
	admSpentDemote  int64

	// faults, when non-nil, can pin pages and fail splits (AllocIn
	// pressure is injected inside mem.PhysMem).
	faults *fault.Plane

	// prov, when non-nil, receives per-page decision outcomes (moves,
	// failures, deferrals) for the flight recorder. Record-only.
	prov *provenance.Recorder
	// lastMigNS stamps the previous successful migration for the
	// inter-arrival histogram.
	lastMigNS int64

	// Telemetry (nil handles no-op when telemetry is off).
	tel          *telemetry.Tracer
	ctrPromote   *telemetry.Counter
	ctrDemote    *telemetry.Counter
	ctrSplits    *telemetry.Counter
	ctrShootdown *telemetry.Counter
	ctrFailed    *telemetry.Counter
	ctrFailCap   *telemetry.Counter
	ctrFailPin   *telemetry.Counter
	ctrFailVan   *telemetry.Counter
	ctrFailSplit *telemetry.Counter
	ctrRetried   *telemetry.Counter
	ctrRetryOK   *telemetry.Counter
	ctrRetryDrop *telemetry.Counter
	ctrOverhead  *telemetry.Counter
	ctrTxStart   *telemetry.Counter
	ctrTxCommit  *telemetry.Counter
	ctrTxAbort   *telemetry.Counter
	ctrShadowHit *telemetry.Counter
	ctrShadowSta *telemetry.Counter
	ctrAdmProm   *telemetry.Counter
	ctrAdmDem    *telemetry.Counter
	ctrAdmDefer  *telemetry.Counter
	ctrRejProm   *telemetry.Counter
	ctrRejDem    *telemetry.Counter
	histRetryLat *telemetry.Histogram
	histInter    *telemetry.Histogram
}

// retryEntry is one deferred migration: re-attempt moving key in the
// recorded direction once due arrives, unless the selection has
// reversed by then.
type retryEntry struct {
	key      core.PageKey
	promote  bool
	attempts int    // failed attempts so far
	due      uint64 // first epoch eligible for re-attempt
	// firstFail is the epoch of the original failure, so a retry that
	// finally lands can observe its end-to-end latency in epochs.
	firstFail uint64
}

// SetTracer attaches the telemetry layer: each successful migration
// emits a KindMigration instant, the per-epoch batch shootdown a
// KindShootdown span, and the mover/* counters sync after every
// ApplySelection. Record-only — selection and migration order are
// unchanged.
func (mv *Mover) SetTracer(t *telemetry.Tracer) {
	mv.tel = t
	mv.ctrPromote = t.Counter("mover/promotions")
	mv.ctrDemote = t.Counter("mover/demotions")
	mv.ctrSplits = t.Counter("mover/splits")
	mv.ctrShootdown = t.Counter("mover/shootdowns")
	mv.ctrFailed = t.Counter("mover/failed")
	mv.ctrFailCap = t.Counter("mover/failed_capacity")
	mv.ctrFailPin = t.Counter("mover/failed_pinned")
	mv.ctrFailVan = t.Counter("mover/failed_vanished")
	mv.ctrFailSplit = t.Counter("mover/failed_split")
	mv.ctrRetried = t.Counter("mover/retries")
	mv.ctrRetryOK = t.Counter("mover/retry_succeeded")
	mv.ctrRetryDrop = t.Counter("mover/retry_dropped")
	mv.ctrOverhead = t.Counter("mover/overhead_ns")
	mv.ctrTxStart = t.Counter("mover/tx_started")
	mv.ctrTxCommit = t.Counter("mover/tx_committed")
	mv.ctrTxAbort = t.Counter("mover/aborted_dirty")
	mv.ctrShadowHit = t.Counter("mover/shadow_hits")
	mv.ctrShadowSta = t.Counter("mover/shadow_stale")
	mv.ctrAdmProm = t.Counter("mover/admitted_promotions")
	mv.ctrAdmDem = t.Counter("mover/admitted_demotions")
	mv.ctrAdmDefer = t.Counter("mover/deferred_admission")
	mv.ctrRejProm = t.Counter("mover/rejected_promotions")
	mv.ctrRejDem = t.Counter("mover/rejected_demotions")
	mv.histRetryLat = t.Histogram("mover/retry_latency_epochs")
	mv.histInter = t.Histogram("mover/interarrival_ns")
}

// SetProvenance attaches the decision-provenance flight recorder. nil
// (the default) records nothing; the hooks are record-only either way.
func (mv *Mover) SetProvenance(r *provenance.Recorder) { mv.prov = r }

// SetFaultPlane attaches the fault-injection plane. nil (the default)
// injects nothing.
func (mv *Mover) SetFaultPlane(p *fault.Plane) { mv.faults = p }

// NewMover builds a mover with the paper's 50 us per-page cost.
func NewMover(m *cpu.Machine) *Mover {
	return &Mover{machine: m, CostPerPageNS: 50_000, MaxRetries: 3, RetryQueueCap: 256}
}

// RetryQueueLen returns the number of deferred migrations waiting.
func (mv *Mover) RetryQueueLen() int { return len(mv.retries) }

// migrate moves one mapped page to the target tier, splitting a huge
// mapping first (Linux migrates THP by splitting unless the whole
// 2 MiB moves; hot subpages rarely cover a whole huge page, so the
// mover splits). The caller batches the shootdown. Failures wrap the
// typed sentinels so callers can branch with errors.Is.
func (mv *Mover) migrate(key core.PageKey, target mem.TierID) error {
	phys := mv.machine.Phys
	table, ok := mv.machine.Tables()[key.PID]
	if !ok {
		return fmt.Errorf("policy: pid %d has no page table: %w", key.PID, mem.ErrUnmapped)
	}
	pte, huge := table.Resolve(key.VPN)
	if pte == nil {
		return fmt.Errorf("policy: page pid=%d vpn=%#x no longer mapped: %w", key.PID, uint64(key.VPN), mem.ErrUnmapped)
	}
	if huge {
		if mv.faults.FailSplit() {
			// The split raced something holding a reference to the
			// compound page; the whole migration bails before any
			// page-table mutation.
			return fmt.Errorf("policy: split of huge mapping at pid=%d vpn=%#x raced a refcount: %w", key.PID, uint64(key.VPN), ErrSplitFailed)
		}
		table.SplitHuge(key.VPN)
		mv.Splits++
		// A split is roughly one page move of work.
		mv.OverheadNS += mv.machine.SoftCost(mv.CostPerPageNS)
	}
	oldPFN, ok := table.Frame(key.VPN)
	if !ok {
		return fmt.Errorf("policy: page pid=%d vpn=%#x vanished during split: %w", key.PID, uint64(key.VPN), mem.ErrUnmapped)
	}
	oldPD := phys.Page(oldPFN)
	if oldPD.Tier == target {
		return nil
	}
	if oldPD.Flags&mem.FlagNonMigratable != 0 {
		return fmt.Errorf("policy: page pid=%d vpn=%#x is pinned: %w", key.PID, uint64(key.VPN), mem.ErrPinned)
	}
	if mv.faults.PinPage() {
		// Transient elevated refcount (DMA, gup) — the EBUSY case.
		return fmt.Errorf("policy: page pid=%d vpn=%#x transiently busy: %w", key.PID, uint64(key.VPN), mem.ErrPinned)
	}
	if mv.Transactional {
		return mv.migrateTx(table, key, target, oldPFN)
	}
	newPFN, err := phys.AllocIn(target, key.PID, key.VPN)
	if err != nil {
		return err
	}
	// Preserve accumulated profiling state across the move: hotness
	// belongs to the logical page, not the frame.
	newPD := phys.Page(newPFN)
	newPD.AbitTotal, newPD.TraceTotal = oldPD.AbitTotal, oldPD.TraceTotal
	newPD.AbitEpoch, newPD.TraceEpoch = oldPD.AbitEpoch, oldPD.TraceEpoch
	newPD.DevTotal, newPD.DevEpoch = oldPD.DevTotal, oldPD.DevEpoch
	newPD.TrueTotal, newPD.TrueEpoch = oldPD.TrueTotal, oldPD.TrueEpoch
	newPD.Flags |= oldPD.Flags & mem.FlagPoisoned

	if !table.Remap(key.VPN, newPFN) {
		phys.Free(newPFN)
		return fmt.Errorf("policy: remap failed for pid=%d vpn=%#x: %w", key.PID, uint64(key.VPN), mem.ErrUnmapped)
	}
	phys.Free(oldPFN)
	mv.OverheadNS += mv.machine.SoftCost(mv.CostPerPageNS)
	return nil
}

// migrateTx is the transactional migration engine (the Nomad model):
// the page stays mapped and accessible for the whole copy, and the
// transaction only publishes the new frame after verifying the copy is
// still clean. The phases are
//
//	claim      — allocate the target frame (abort: nothing happened)
//	copy       — copy content while the page stays mapped; this is
//	             the work the admission budget prices
//	verify     — deterministic dirty-check against the fault plane:
//	             a page written mid-copy aborts with ErrCopyAborted
//	             and the caller re-queues the transaction
//	remap      — publish the new frame (the batch shootdown makes it
//	             globally visible at epoch end)
//	release    — free the source frame; a promotion keeps it as a
//	             non-exclusive shadow copy instead, so demoting the
//	             still-clean page back is a remap with zero copy work
//
// A demotion whose page still has a valid shadow in the target tier
// skips the copy entirely and adopts the shadow (drawing the
// shadow-stale site first: an invalidated shadow degrades to the full
// transaction). The caller has already resolved the mapping, split any
// huge page, and cleared the pinned checks.
func (mv *Mover) migrateTx(table *pagetable.Table, key core.PageKey, target mem.TierID, oldPFN mem.PFN) error {
	phys := mv.machine.Phys
	oldPD := phys.Page(oldPFN)
	promote := target < oldPD.Tier
	if !promote {
		if spfn, ok := phys.ShadowFor(oldPFN, target); ok {
			if mv.faults.StaleShadow() {
				// The shadow went stale at the worst moment; pay the
				// full copy below.
				phys.InvalidateShadowOf(oldPFN)
				mv.ShadowStale++
			} else {
				if !table.Remap(key.VPN, spfn) {
					return fmt.Errorf("policy: remap failed for pid=%d vpn=%#x: %w", key.PID, uint64(key.VPN), mem.ErrUnmapped)
				}
				phys.AdoptShadow(oldPFN)
				phys.Free(oldPFN)
				mv.ShadowHits++
				// Zero copy work: no CostPerPageNS charge. The epoch's
				// batch shootdown covers the remap.
				return nil
			}
		}
	}
	newPFN, err := phys.AllocIn(target, key.PID, key.VPN)
	if err != nil {
		return err
	}
	mv.TxStarted++
	// The copy happens (and is paid for) before the dirty-check: an
	// aborted transaction has burned real bandwidth, which is exactly
	// why aborts hurt and admission budgets matter.
	mv.OverheadNS += mv.machine.SoftCost(mv.CostPerPageNS)
	if mv.faults.DirtyCopy() {
		phys.Free(newPFN)
		return fmt.Errorf("policy: page pid=%d vpn=%#x dirtied mid-copy: %w", key.PID, uint64(key.VPN), mem.ErrCopyAborted)
	}
	newPD := phys.Page(newPFN)
	newPD.AbitTotal, newPD.TraceTotal = oldPD.AbitTotal, oldPD.TraceTotal
	newPD.AbitEpoch, newPD.TraceEpoch = oldPD.AbitEpoch, oldPD.TraceEpoch
	newPD.DevTotal, newPD.DevEpoch = oldPD.DevTotal, oldPD.DevEpoch
	newPD.TrueTotal, newPD.TrueEpoch = oldPD.TrueTotal, oldPD.TrueEpoch
	newPD.Flags |= oldPD.Flags & mem.FlagPoisoned
	if !table.Remap(key.VPN, newPFN) {
		phys.Free(newPFN)
		mv.TxRemapFailed++
		return fmt.Errorf("policy: remap failed for pid=%d vpn=%#x: %w", key.PID, uint64(key.VPN), mem.ErrUnmapped)
	}
	mv.TxCommitted++
	if promote {
		phys.MakeShadow(oldPFN, newPFN)
	} else {
		phys.Free(oldPFN)
	}
	return nil
}

// noteFailure classifies a migration error into the per-reason
// counters and reports whether it is transient (worth a deferred
// retry) plus the provenance reason. Unrecognized errors count as
// vanished: a page we cannot reason about is not worth re-attempting.
func (mv *Mover) noteFailure(err error) (bool, provenance.FailReason) {
	mv.Failed++
	switch {
	case errors.Is(err, mem.ErrTierFull):
		mv.FailedCapacity++
		return true, provenance.FailCapacity
	case errors.Is(err, mem.ErrPinned):
		mv.FailedPinned++
		return true, provenance.FailPinned
	case errors.Is(err, ErrSplitFailed):
		mv.FailedSplit++
		return true, provenance.FailSplit
	case errors.Is(err, mem.ErrCopyAborted):
		mv.AbortedDirty++
		return true, provenance.FailCopyAbort
	default:
		mv.FailedVanished++
		return false, provenance.FailVanished
	}
}

// deferRetry queues a transiently failed migration for a later epoch
// and reports whether it was queued. attempts counts failures so far;
// backoff doubles per attempt (1, 2, 4, ... epochs), so a page failing
// repeatedly consumes geometrically less mover attention. Both caps
// drop deterministically into RetryDropped.
func (mv *Mover) deferRetry(key core.PageKey, promote bool, attempts int, firstFail uint64) bool {
	if attempts >= mv.MaxRetries || len(mv.retries) >= mv.RetryQueueCap {
		mv.RetryDropped++
		return false
	}
	mv.retries = append(mv.retries, retryEntry{
		key:       key,
		promote:   promote,
		attempts:  attempts,
		due:       mv.epoch + 1<<uint(attempts-1),
		firstFail: firstFail,
	})
	return true
}

// noteSuccess records one successful migration everywhere it is
// observable: the telemetry migration event (exactly where and how the
// pre-provenance mover emitted it), the inter-arrival histogram, and
// the flight recorder.
func (mv *Mover) noteSuccess(key core.PageKey, promote bool, to mem.TierID) {
	now := mv.machine.Now()
	if mv.lastMigNS > 0 && now >= mv.lastMigNS {
		mv.histInter.Observe(uint64(now - mv.lastMigNS))
	}
	mv.lastMigNS = now
	mv.tel.EmitMigration(now, key.PID, uint64(key.VPN), promote)
	mv.prov.NoteMove(key, promote, to)
}

// failAndMaybeRetry routes one failed migration through counter
// classification, the deferred-retry queue, and the flight recorder.
func (mv *Mover) failAndMaybeRetry(key core.PageKey, promote bool, err error, attempts int, firstFail uint64) {
	transient, reason := mv.noteFailure(err)
	mv.prov.NoteFail(key, reason)
	if transient && mv.deferRetry(key, promote, attempts, firstFail) {
		mv.prov.NoteDeferred(key)
	}
}

// demoteCand is one demotion candidate with its rank precomputed at
// walk time, so the coldest-first ordering does one ranks lookup per
// candidate instead of O(n log n) lookups inside a sort comparator.
type demoteCand struct {
	key  core.PageKey
	rank uint64
}

// retryTarget picks the adjacent tier a deferred migration aims for
// now: one tier toward the top of the chain for promotes, one toward
// the bottom for demotes, from wherever the page currently sits (it
// may have moved since the failure, in which case the clamp makes the
// retry a cheap already-there success). A page whose mapping is gone
// falls back to the chain ends and lets migrate classify the vanish.
// Read-only — no fault draws, so a two-tier machine reproduces the
// legacy fast/slow retry targets exactly.
func (mv *Mover) retryTarget(key core.PageKey, promote bool, last mem.TierID) mem.TierID {
	if table, ok := mv.machine.Tables()[key.PID]; ok {
		if pfn, ok := table.Frame(key.VPN); ok {
			t := mv.machine.Phys.Page(pfn).Tier
			if promote {
				if t == mem.FastTier {
					return mem.FastTier
				}
				return t - 1
			}
			if t >= last {
				return last
			}
			return t + 1
		}
	}
	if promote {
		return mem.FastTier
	}
	return last
}

// ApplySelection reconciles physical placement with a policy's tier-1
// selection across the whole tier chain: replays due deferred retries
// first, then demotes unselected pages coldest-first one tier down
// (making room, deepest tiers first so spilled frames land before
// they are claimed), then promotes selected pages one tier up, then
// issues one shootdown for the whole epoch's batch. All movement is
// between adjacent tiers: a selected page deep in the chain climbs one
// tier per epoch rather than teleporting to the top — the stepwise
// regime multi-tier managers use, which keeps every middle tier a
// useful staging ground and every migration's cost uniform. ranks
// supplies the epoch's hotness per page (missing keys count as zero,
// i.e. coldest); it protects hot-but-unsampled residents from being
// evicted to fit a handful of promotions. It returns (promoted,
// demoted), retries included.
func (mv *Mover) ApplySelection(sel Selection, ranks core.Ranks) (int, int) {
	mv.epoch++
	mv.admSpentPromote, mv.admSpentDemote = 0, 0 // the admission budget is per-epoch
	gated := mv.admissionGated()
	phys := mv.machine.Phys
	nt := phys.Tiers()
	last := mem.TierID(nt - 1)
	promoted, demoted := 0, 0

	// Replay the deferred-retry queue. Entries whose selection has
	// reversed direction are superseded (the fresh pass owns the page
	// again); entries not yet due stay queued and keep the page out of
	// the fresh pass, so one page is never attempted twice per epoch.
	// FIFO order within an epoch keeps replay deterministic. The whole
	// block is skipped — no allocation — when the queue is empty,
	// which is every epoch of a failure-free run.
	var queuedKeys map[core.PageKey]struct{}
	if len(mv.retries) > 0 {
		keep := mv.retries[:0]
		var due []retryEntry
		for _, e := range mv.retries {
			if _, selected := sel[e.key]; e.promote != selected {
				mv.RetrySuperseded++
				mv.prov.NoteSuperseded(e.key)
				continue
			}
			if e.due <= mv.epoch {
				due = append(due, e)
			} else {
				keep = append(keep, e)
				// Still waiting out its backoff: that is this epoch's
				// verdict for the page.
				mv.prov.NoteDeferred(e.key)
			}
		}
		mv.retries = keep
		if len(due)+len(keep) > 0 {
			queuedKeys = make(map[core.PageKey]struct{}, len(due)+len(keep))
			for _, e := range keep {
				queuedKeys[e.key] = struct{}{}
			}
		}
		for _, e := range due {
			queuedKeys[e.key] = struct{}{}
			target := mv.retryTarget(e.key, e.promote, last)
			if gated && !mv.admit(e.promote, mv.migrationCostNS(e.key, target)) {
				// Not an attempt — the bus was busy, the entry waits
				// another epoch with its attempt count intact.
				mv.deferAdmission(e.key, e.promote, e.attempts, e.firstFail)
				continue
			}
			mv.Retried++
			if err := mv.migrate(e.key, target); err != nil {
				mv.failAndMaybeRetry(e.key, e.promote, err, e.attempts+1, e.firstFail)
				continue
			}
			mv.RetrySucceeded++
			if e.promote {
				promoted++
			} else {
				demoted++
			}
			mv.histRetryLat.Observe(mv.epoch - e.firstFail)
			mv.noteSuccess(e.key, e.promote, target)
		}
	}

	// One walk classifies every migratable frame into per-tier
	// candidate columns: a selected page anywhere below the top tier
	// is a promotion candidate one tier up, an unselected page
	// anywhere above the bottom is demotable one tier down. On a
	// two-tier machine these columns are exactly the legacy fast-tier
	// demote list and slow-tier promote list.
	demoteByTier := make([][]demoteCand, nt)
	promoteByTier := make([][]core.PageKey, nt)
	phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		if pd.Flags&mem.FlagNonMigratable != 0 {
			return
		}
		key := core.PageKey{PID: pd.PID, VPN: pd.VPage}
		if queuedKeys != nil {
			if _, queued := queuedKeys[key]; queued {
				return
			}
		}
		_, selected := sel[key]
		switch {
		case !selected && pd.Tier < last:
			demoteByTier[pd.Tier] = append(demoteByTier[pd.Tier], demoteCand{key: key, rank: ranks.Get(key)})
		case selected && pd.Tier != mem.FastTier:
			if ranks.Get(key) < mv.MinPromoteRank {
				break // not enough evidence to pay for the move
			}
			promoteByTier[pd.Tier] = append(promoteByTier[pd.Tier], key)
		}
	})
	coldest := func(a, b demoteCand) bool {
		return core.ColdestLess(a.rank, b.rank, a.key, b.key)
	}

	// Plan demotion demand bottom-up: the room tier t must free is
	// the promotions arriving from t+1 plus the demotions spilling in
	// from t-1, less its free frames, clamped to the candidates it
	// actually has. The plan is optimistic — failed migrations leave
	// less room than planned and the shortfall surfaces as capacity
	// failures that retry next epoch, exactly the two-tier behavior.
	plan := make([]int, nt)
	for t := 0; t < nt-1; t++ {
		incoming := len(promoteByTier[t+1])
		if t > 0 {
			incoming += plan[t-1]
		}
		n := incoming - phys.FreeFrames(mem.TierID(t))
		if n < 0 {
			n = 0
		}
		if n > len(demoteByTier[t]) {
			n = len(demoteByTier[t])
		}
		plan[t] = n
	}

	// Deep demote pre-pass, deepest tier first (n-2 .. 1), so every
	// spilled frame lands in its lower tier before that tier's own
	// spill capacity is consumed. Empty on a two-tier machine.
	for t := nt - 2; t >= 1; t-- {
		if plan[t] == 0 {
			continue
		}
		for _, cand := range core.TopKFunc(demoteByTier[t], plan[t], coldest) {
			if gated && !mv.admit(false, mv.migrationCostNS(cand.key, mem.TierID(t)+1)) {
				mv.deferAdmission(cand.key, false, 0, mv.epoch)
				continue
			}
			if err := mv.migrate(cand.key, mem.TierID(t)+1); err != nil {
				mv.failAndMaybeRetry(cand.key, false, err, 1, mv.epoch)
				continue
			}
			demoted++
			mv.noteSuccess(cand.key, false, mem.TierID(t)+1)
		}
	}

	// Top-of-chain exchange (tiers 0 and 1), the legacy two-tier
	// hot path.
	demote := demoteByTier[0]
	promote := promoteByTier[1]
	// Only demote as many pages as needed to fit the promotions plus
	// any fast-tier overflow: that bound is known up front, so
	// bounded selection pulls just the needed coldest candidates out
	// of the (much larger) resident set instead of fully sorting it.
	// Every candidate past the bound is only ever consumed when a
	// migration fails (vanished mapping, full target tier); the
	// fallback below sorts the remainder lazily so the demotion
	// sequence stays exactly the coldest-first order a full sort
	// would have produced.
	head := core.TopKFunc(demote, plan[0], coldest)
	rest := demote[len(head):]
	restSorted := false

	demotedFresh, promotedFresh := 0, 0
	next := 0
	for {
		if phys.FreeFrames(mem.FastTier) >= len(promote)-promotedFresh {
			break
		}
		var cand demoteCand
		if next < len(head) {
			cand = head[next]
		} else {
			if !restSorted {
				sort.Slice(rest, func(i, j int) bool { return coldest(rest[i], rest[j]) })
				restSorted = true
			}
			j := next - len(head)
			if j >= len(rest) {
				break
			}
			cand = rest[j]
		}
		next++
		if gated && !mv.admit(false, mv.migrationCostNS(cand.key, mem.SlowTier)) {
			mv.deferAdmission(cand.key, false, 0, mv.epoch)
			continue
		}
		if err := mv.migrate(cand.key, mem.SlowTier); err != nil {
			mv.failAndMaybeRetry(cand.key, false, err, 1, mv.epoch)
			continue
		}
		demotedFresh++
		mv.noteSuccess(cand.key, false, mem.SlowTier)
	}
	for _, key := range promote {
		if gated && !mv.admit(true, mv.migrationCostNS(key, mem.FastTier)) {
			mv.deferAdmission(key, true, 0, mv.epoch)
			continue
		}
		if phys.FreeFrames(mem.FastTier) == 0 {
			mv.Failed++
			mv.FailedCapacity++
			mv.prov.NoteFail(key, provenance.FailCapacity)
			if mv.deferRetry(key, true, 1, mv.epoch) {
				mv.prov.NoteDeferred(key)
			}
			continue
		}
		if err := mv.migrate(key, mem.FastTier); err != nil {
			mv.failAndMaybeRetry(key, true, err, 1, mv.epoch)
			continue
		}
		promotedFresh++
		mv.noteSuccess(key, true, mem.FastTier)
	}
	promoted += promotedFresh
	demoted += demotedFresh

	// Deep promote pass (tiers 2 .. n-1), each column climbing one
	// tier. The pre-pass planned room in the destination tiers; when
	// it fell short the capacity failure defers the climb to the next
	// epoch, the same backpressure the top-of-chain exchange applies.
	// Empty on a two-tier machine.
	for t := mem.TierID(2); t <= last; t++ {
		for _, key := range promoteByTier[t] {
			if gated && !mv.admit(true, mv.migrationCostNS(key, t-1)) {
				mv.deferAdmission(key, true, 0, mv.epoch)
				continue
			}
			if phys.FreeFrames(t-1) == 0 {
				mv.Failed++
				mv.FailedCapacity++
				mv.prov.NoteFail(key, provenance.FailCapacity)
				if mv.deferRetry(key, true, 1, mv.epoch) {
					mv.prov.NoteDeferred(key)
				}
				continue
			}
			if err := mv.migrate(key, t-1); err != nil {
				mv.failAndMaybeRetry(key, true, err, 1, mv.epoch)
				continue
			}
			promoted++
			mv.noteSuccess(key, true, t-1)
		}
	}
	mv.Promotions += uint64(promoted)
	mv.Demotions += uint64(demoted)

	if promoted+demoted > 0 {
		// One shootdown covers the whole epoch's batch.
		cost := mv.machine.FlushAllTLBs()
		mv.Shootdowns++
		mv.OverheadNS += cost
		mv.tel.EmitShootdown(mv.machine.Now(), cost, promoted+demoted)
	}
	if mv.OverheadNS > 0 {
		mv.machine.Core(mv.MoverCore).AdvanceClock(mv.chargeDelta())
	}
	if mv.tel.Enabled() {
		mv.ctrPromote.Set(mv.Promotions)
		mv.ctrDemote.Set(mv.Demotions)
		mv.ctrSplits.Set(mv.Splits)
		mv.ctrShootdown.Set(mv.Shootdowns)
		mv.ctrFailed.Set(mv.Failed)
		mv.ctrFailCap.Set(mv.FailedCapacity)
		mv.ctrFailPin.Set(mv.FailedPinned)
		mv.ctrFailVan.Set(mv.FailedVanished)
		mv.ctrFailSplit.Set(mv.FailedSplit)
		mv.ctrRetried.Set(mv.Retried)
		mv.ctrRetryOK.Set(mv.RetrySucceeded)
		mv.ctrRetryDrop.Set(mv.RetryDropped)
		mv.ctrOverhead.Set(uint64(mv.OverheadNS))
		mv.ctrTxStart.Set(mv.TxStarted)
		mv.ctrTxCommit.Set(mv.TxCommitted)
		mv.ctrTxAbort.Set(mv.AbortedDirty)
		mv.ctrShadowHit.Set(mv.ShadowHits)
		mv.ctrShadowSta.Set(mv.ShadowStale)
		mv.ctrAdmProm.Set(mv.AdmittedPromotions)
		mv.ctrAdmDem.Set(mv.AdmittedDemotions)
		mv.ctrAdmDefer.Set(mv.DeferredAdmission)
		mv.ctrRejProm.Set(mv.RejectedPromotions)
		mv.ctrRejDem.Set(mv.RejectedDemotions)
	}
	return promoted, demoted
}

// chargeDelta charges newly accumulated overhead exactly once.
func (mv *Mover) chargeDelta() int64 {
	d := mv.OverheadNS - mv.charged
	mv.charged = mv.OverheadNS
	return d
}
