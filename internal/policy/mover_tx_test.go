package policy

import (
	"errors"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/provenance"
	"tieredmem/internal/trace"
)

// conserveTiers asserts used + free + shadow == capacity on every tier
// — the allocator-level half of the shadow-frame conservation law the
// epoch invariant checker enforces end to end.
func conserveTiers(t *testing.T, phys *mem.PhysMem) {
	t.Helper()
	for i := 0; i < phys.Tiers(); i++ {
		id := mem.TierID(i)
		used, free, shadow := phys.UsedFrames(id), phys.FreeFrames(id), phys.ShadowFrames(id)
		if cap := phys.TierSpecOf(id).Frames; used+free+shadow != cap {
			t.Fatalf("tier %d: used %d + free %d + shadow %d != cap %d", i, used, free, shadow, cap)
		}
	}
}

// txRanks keeps vpn 0..2 hot, vpn 3 coldest, vpn 4 warm: epoch-1
// promotions evict vpn 3 and epoch-2 demotion pressure picks vpn 4.
func txRanks() core.Ranks {
	return core.RanksFromMap(map[core.PageKey]uint64{
		{PID: 1, VPN: 0}: 10,
		{PID: 1, VPN: 1}: 10,
		{PID: 1, VPN: 2}: 10,
		{PID: 1, VPN: 3}: 0,
		{PID: 1, VPN: 4}: 5,
		{PID: 1, VPN: 5}: 7,
	})
}

// TestTxShadowZeroCopyDemotion pins the shadow fast path's central
// promise: demoting a clean page back to the tier that still holds its
// shadow is a remap — zero copy work, the page lands on its original
// frame, and no overhead is charged for it.
func TestTxShadowZeroCopyDemotion(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6) // 0..3 fast, 4..5 slow
	mv := NewMover(m)
	mv.Transactional = true

	// Epoch 1: promote vpn 4. Its vacated slow frame stays behind as a
	// shadow; making room demotes vpn 3 (coldest) with a full copy.
	oldSlowPFN, _ := m.Table(1).Frame(4)
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 4}: {}}, txRanks())
	if tierOf(t, m, 1, 4) != mem.FastTier {
		t.Fatal("vpn 4 not promoted")
	}
	if got := m.Phys.ShadowFrames(mem.SlowTier); got != 1 {
		t.Fatalf("ShadowFrames(slow) = %d, want 1 (the vacated promotion frame)", got)
	}
	fastPFN, _ := m.Table(1).Frame(4)
	if spfn, ok := m.Phys.ShadowFor(fastPFN, mem.SlowTier); !ok || spfn != oldSlowPFN {
		t.Fatalf("ShadowFor = (%d, %v), want the vacated frame %d", spfn, ok, oldSlowPFN)
	}
	epoch1 := mv.OverheadNS // two full copies: promote vpn 4 + demote vpn 3

	// Epoch 2: promoting vpn 5 pressures one demotion; vpn 4 is the
	// coldest fast resident and its shadow is still valid, so the
	// demotion adopts it copy-free.
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 5}: {}}, txRanks())
	if mv.ShadowHits != 1 {
		t.Fatalf("ShadowHits = %d, want 1", mv.ShadowHits)
	}
	if pfn, _ := m.Table(1).Frame(4); pfn != oldSlowPFN {
		t.Errorf("demoted vpn 4 landed on PFN %d, want its shadow frame %d", pfn, oldSlowPFN)
	}
	// Both epochs do one promote + one demote + one batch shootdown,
	// but epoch 2's demotion adopted the shadow: it must have charged
	// exactly one page-copy fee less than epoch 1.
	charge := m.SoftCost(mv.CostPerPageNS)
	if delta := mv.OverheadNS - epoch1; epoch1-delta != charge {
		t.Errorf("epoch 2 overhead %d vs epoch 1's %d: want exactly one copy charge (%d) saved", delta, epoch1, charge)
	}
	if mv.TxStarted != mv.TxCommitted+mv.AbortedDirty+mv.TxRemapFailed {
		t.Errorf("tx conservation broken: started=%d committed=%d aborted=%d remapfail=%d",
			mv.TxStarted, mv.TxCommitted, mv.AbortedDirty, mv.TxRemapFailed)
	}
	conserveTiers(t, m.Phys)
}

// TestTxShadowInvalidatedOnWrite pins the write half of the shadow
// lifecycle: the first dirtying store (a D-bit 0->1 walk) invalidates
// the shadow, so the later demotion pays the full copy.
func TestTxShadowInvalidatedOnWrite(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6)
	mv := NewMover(m)
	mv.Transactional = true
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 4}: {}}, txRanks())
	if m.Phys.ShadowFrames(mem.SlowTier) != 1 {
		t.Fatal("promotion left no shadow")
	}
	// Dirty the promoted page: its shadow no longer matches.
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 4 * 4096, Kind: trace.Store}); err != nil {
		t.Fatal(err)
	}
	if got := m.Phys.ShadowFrames(mem.SlowTier); got != 0 {
		t.Fatalf("ShadowFrames(slow) = %d after a dirtying store, want 0", got)
	}
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 5}: {}}, txRanks())
	if mv.ShadowHits != 0 {
		t.Errorf("ShadowHits = %d after invalidation, want 0 (full copy path)", mv.ShadowHits)
	}
	if tierOf(t, m, 1, 4) != mem.SlowTier {
		t.Errorf("vpn 4 not demoted after shadow invalidation")
	}
	conserveTiers(t, m.Phys)
}

// TestTxRetrySupersededRacesShadowInvalidation drives the three-way
// race the retry queue must absorb: a demotion fails transiently and
// queues, the page's shadow is invalidated by a store while the entry
// waits, and the policy re-selects the page before the retry is due.
// The queued demotion must be superseded — not replayed against the
// now-missing shadow — and the allocator must stay conserved.
func TestTxRetrySupersededRacesShadowInvalidation(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6)
	mv := NewMover(m)
	mv.Transactional = true

	// Epoch 1: promote vpn 4 (shadow made in the slow tier).
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 4}: {}}, txRanks())
	if m.Phys.ShadowFrames(mem.SlowTier) != 1 {
		t.Fatal("promotion left no shadow")
	}

	// Epoch 2: every migration is transiently pinned; the demotion of
	// vpn 4 (pressured by promoting vpn 5) fails and queues.
	spec, _ := fault.ParseSpec("mem.pinned=1")
	mv.SetFaultPlane(fault.New(spec, 1))
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 5}: {}}, txRanks())
	if mv.FailedPinned == 0 || mv.RetryQueueLen() == 0 {
		t.Fatalf("pinned epoch queued nothing: pinned=%d queue=%d", mv.FailedPinned, mv.RetryQueueLen())
	}

	// While the retry waits, a store invalidates the shadow.
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 4 * 4096, Kind: trace.Store}); err != nil {
		t.Fatal(err)
	}
	if m.Phys.ShadowFrames(mem.SlowTier) != 0 {
		t.Fatal("store did not invalidate the shadow")
	}

	// Epoch 3: the policy re-selects vpn 4 — the queued demotion has
	// reversed direction and must be superseded, never replayed.
	mv.SetFaultPlane(nil)
	mv.ApplySelection(Selection{
		core.PageKey{PID: 1, VPN: 4}: {},
		core.PageKey{PID: 1, VPN: 5}: {},
	}, txRanks())
	if mv.RetrySuperseded == 0 {
		t.Error("reversed queued demotion was not superseded")
	}
	if tierOf(t, m, 1, 4) != mem.FastTier {
		t.Error("superseded demotion still moved vpn 4 out of the fast tier")
	}
	if mv.ShadowHits != 0 {
		t.Errorf("ShadowHits = %d, want 0 (the shadow was gone)", mv.ShadowHits)
	}
	conserveTiers(t, m.Phys)
}

// TestTxAdmissionQueueOverflowRejects pins the controller's overflow
// behavior: with a budget too small to admit any copy and a tiny retry
// queue, the first denials defer (verdict deferred:admission) until
// the queue fills, and every later denial rejects outright (verdict
// rejected:admission) rather than hoarding an unbounded backlog.
func TestTxAdmissionQueueOverflowRejects(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 8) // 0..3 fast, 4..7 slow
	mv := NewMover(m)
	mv.Transactional = true
	mv.AdmissionBudgetNS = 1 // admits only zero-cost migrations
	mv.RetryQueueCap = 2
	rec := provenance.New()
	mv.SetProvenance(rec)

	rec.BeginEpoch(0, core.MethodCombined, core.MethodCombined, 0)
	sel := Selection{
		{PID: 1, VPN: 4}: {},
		{PID: 1, VPN: 5}: {},
		{PID: 1, VPN: 6}: {},
		{PID: 1, VPN: 7}: {},
	}
	promoted, demoted := mv.ApplySelection(sel, core.Ranks{})
	rec.FinishEpoch()

	if promoted != 0 || demoted != 0 {
		t.Fatalf("migrations ran under a 1ns budget: %d/%d", promoted, demoted)
	}
	if mv.DeferredAdmission != 2 || mv.RetryQueueLen() != 2 {
		t.Fatalf("deferred=%d queue=%d, want the queue cap 2/2", mv.DeferredAdmission, mv.RetryQueueLen())
	}
	if mv.RejectedPromotions+mv.RejectedDemotions == 0 {
		t.Fatal("queue overflow rejected nothing")
	}
	lg := rec.Snapshot("test")
	var sawDeferred, sawRejected bool
	for i := range lg.Pages {
		for _, r := range lg.Pages[i].Records {
			switch r.Verdict.Reason(r.Fail) {
			case "deferred:admission":
				sawDeferred = true
			case "rejected:admission":
				sawRejected = true
			}
		}
	}
	if !sawDeferred || !sawRejected {
		t.Errorf("provenance verdicts incomplete: deferred=%v rejected=%v", sawDeferred, sawRejected)
	}
}

// TestTxMaxRetriesExhaustionCopyAbort pins the abort-to-failure chain:
// with every copy dirtied mid-flight and one retry allowed, the
// transaction aborts, the retry budget exhausts, and the page's final
// provenance verdict is failed:mem.copyabort (NoteDeferred never
// overwrites it because deferRetry refused the entry).
func TestTxMaxRetriesExhaustionCopyAbort(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6)
	mv := NewMover(m)
	mv.Transactional = true
	mv.MaxRetries = 1
	spec, _ := fault.ParseSpec("mem.copyabort=1")
	mv.SetFaultPlane(fault.New(spec, 1))
	rec := provenance.New()
	mv.SetProvenance(rec)

	// The typed sentinel surfaces through errors.Is (probe on a
	// throwaway mover so the main mover's tx accounting stays exact).
	probe := NewMover(m)
	probe.Transactional = true
	probe.SetFaultPlane(fault.New(spec, 1))
	if err := probe.migrate(core.PageKey{PID: 1, VPN: 3}, mem.SlowTier); !errors.Is(err, mem.ErrCopyAborted) {
		t.Fatalf("rate-1 dirty copy: got %v, want ErrCopyAborted", err)
	}

	rec.BeginEpoch(0, core.MethodCombined, core.MethodCombined, 0)
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 4}: {}}, txRanks())
	rec.FinishEpoch()

	if mv.AbortedDirty == 0 || mv.RetryDropped == 0 {
		t.Fatalf("aborted=%d dropped=%d, want both > 0", mv.AbortedDirty, mv.RetryDropped)
	}
	if mv.TxStarted != mv.TxCommitted+mv.AbortedDirty+mv.TxRemapFailed {
		t.Errorf("tx conservation broken: started=%d committed=%d aborted=%d remapfail=%d",
			mv.TxStarted, mv.TxCommitted, mv.AbortedDirty, mv.TxRemapFailed)
	}
	if mv.Failed != mv.FailedCapacity+mv.FailedPinned+mv.FailedVanished+mv.FailedSplit+mv.AbortedDirty {
		t.Errorf("Failed=%d not partitioned by reason counters (+AbortedDirty)", mv.Failed)
	}
	lg := rec.Snapshot("test")
	found := false
	for i := range lg.Pages {
		for _, r := range lg.Pages[i].Records {
			if r.Verdict.Reason(r.Fail) == "failed:mem.copyabort" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no page carries the failed:mem.copyabort verdict after retry exhaustion")
	}
	conserveTiers(t, m.Phys)
}
