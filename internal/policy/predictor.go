package policy

import (
	"fmt"

	"tieredmem/internal/core"
)

// Predictor is a Kleio-inspired extension policy ([38] in the paper:
// "a hybrid memory page scheduler with machine intelligence"): instead
// of reacting to the last epoch (History) or smoothing all epochs
// (Decay), it keeps a tiny per-page online model — a confidence
// counter plus a short-term and long-term rate — and predicts the next
// epoch's rank as a blend weighted by how predictable the page has
// been. Pages whose heat is stable earn trust and their prediction
// follows the long-term rate; erratic pages are heavily discounted so
// a single spike cannot buy a migration (the same instinct as the
// paper's observation that "the hottest pages should be migrated" to
// justify the cost).
type Predictor struct {
	// MaxConfidence bounds the trust counter (default 8).
	MaxConfidence int
	state         map[core.PageKey]*predState
}

type predState struct {
	longTerm   float64 // EWMA over all epochs
	shortTerm  float64 // last epoch's rank
	confidence int     // grows when longTerm predicted well
}

// NewPredictor builds the policy.
func NewPredictor() *Predictor {
	return &Predictor{MaxConfidence: 8, state: make(map[core.PageKey]*predState)}
}

// Name implements Policy.
func (p *Predictor) Name() string { return "predictor" }

// Select implements Policy.
func (p *Predictor) Select(prev, next core.EpochStats, method core.Method, capacity int) Selection {
	maxConf := p.MaxConfidence
	if maxConf < 1 {
		maxConf = 8
	}
	seen := make(map[core.PageKey]struct{}, len(prev.Pages))
	for _, ps := range prev.Pages {
		r := float64(ps.Rank(method))
		seen[ps.Key] = struct{}{}
		st, ok := p.state[ps.Key]
		if !ok {
			p.state[ps.Key] = &predState{longTerm: r, shortTerm: r, confidence: 1}
			continue
		}
		// Was the long-term model a good predictor of this epoch?
		err := st.longTerm - r
		if err < 0 {
			err = -err
		}
		if err <= 0.25*st.longTerm+1 {
			if st.confidence < maxConf {
				st.confidence++
			}
		} else if st.confidence > 0 {
			st.confidence--
		}
		st.longTerm = st.longTerm*0.75 + r*0.25
		st.shortTerm = r
	}
	// Pages absent this epoch decay and lose trust.
	//tmplint:ordered per-key decay/delete is independent of visit order
	for key, st := range p.state {
		if _, ok := seen[key]; ok {
			continue
		}
		st.longTerm *= 0.75
		st.shortTerm = 0
		if st.confidence > 0 {
			st.confidence--
		}
		if st.longTerm < 0.01 && st.confidence == 0 {
			delete(p.state, key)
		}
	}

	type scored struct {
		key   core.PageKey
		score float64
	}
	ranked := make([]scored, 0, len(p.state))
	//tmplint:ordered TopKFunc's total-order comparator canonicalizes the result
	for key, st := range p.state {
		w := float64(st.confidence) / float64(maxConf)
		// Low-confidence observations are discounted: an erratic
		// page's latest spike contributes a quarter of its face
		// value, so only sustained heat accumulates a winning score.
		score := w*st.longTerm + (1-w)*0.25*st.shortTerm
		if score > 0 {
			ranked = append(ranked, scored{key, score})
		}
	}
	ranked = core.TopKFunc(ranked, capacity, func(a, b scored) bool {
		return core.RankLess(a.score, b.score, false, false, a.key, b.key)
	})
	sel := make(Selection, len(ranked))
	for _, e := range ranked {
		sel[e.key] = struct{}{}
	}
	return sel
}

// String aids debugging.
func (p *Predictor) String() string {
	return fmt.Sprintf("predictor(%d pages tracked)", len(p.state))
}
