package policy

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
)

// Predictor is a Kleio-inspired extension policy ([38] in the paper:
// "a hybrid memory page scheduler with machine intelligence"): instead
// of reacting to the last epoch (History) or smoothing all epochs
// (Decay), it keeps a tiny per-page online model — a confidence
// counter plus a short-term and long-term rate — and predicts the next
// epoch's rank as a blend weighted by how predictable the page has
// been. Pages whose heat is stable earn trust and their prediction
// follows the long-term rate; erratic pages are heavily discounted so
// a single spike cannot buy a migration (the same instinct as the
// paper's observation that "the hottest pages should be migrated" to
// justify the cost).
//
// Per-page model state is a dense predState column over pageidx
// interned ids (the densemap contract), with a live flag standing in
// for map membership: dropping a page clears the flag, and a page
// re-entering the working set reinitializes the same slot.
type Predictor struct {
	// MaxConfidence bounds the trust counter (default 8).
	MaxConfidence int
	tab           *pageidx.Table[core.PageKey]
	states        []predState
	live          []bool
	seen          []uint32 // epoch stamp: seen[id] == epoch means present this epoch
	epoch         uint32
}

type predState struct {
	longTerm   float64 // EWMA over all epochs
	shortTerm  float64 // last epoch's rank
	confidence int     // grows when longTerm predicted well
}

// NewPredictor builds the policy.
func NewPredictor() *Predictor {
	return &Predictor{MaxConfidence: 8, tab: pageidx.New(0, core.PageKeyHash)}
}

// Name implements Policy.
func (p *Predictor) Name() string { return "predictor" }

// intern returns the page's dense id, growing the columns with it.
func (p *Predictor) intern(k core.PageKey) uint32 {
	id := p.tab.Intern(k)
	for int(id) >= len(p.states) {
		p.states = append(p.states, predState{})
		p.live = append(p.live, false)
		p.seen = append(p.seen, 0)
	}
	return id
}

// Select implements Policy.
func (p *Predictor) Select(prev, next core.EpochStats, method core.Method, capacity int) Selection {
	maxConf := p.MaxConfidence
	if maxConf < 1 {
		maxConf = 8
	}
	p.epoch++
	for _, ps := range prev.Pages {
		r := float64(ps.Rank(method))
		id := p.intern(ps.Key)
		p.seen[id] = p.epoch
		st := &p.states[id]
		if !p.live[id] {
			*st = predState{longTerm: r, shortTerm: r, confidence: 1}
			p.live[id] = true
			continue
		}
		// Was the long-term model a good predictor of this epoch?
		err := st.longTerm - r
		if err < 0 {
			err = -err
		}
		if err <= 0.25*st.longTerm+1 {
			if st.confidence < maxConf {
				st.confidence++
			}
		} else if st.confidence > 0 {
			st.confidence--
		}
		st.longTerm = st.longTerm*0.75 + r*0.25
		st.shortTerm = r
	}
	// Pages absent this epoch decay and lose trust; a fully cooled
	// page frees its slot for reinitialization on return.
	for id := range p.states {
		if !p.live[id] || p.seen[id] == p.epoch {
			continue
		}
		st := &p.states[id]
		st.longTerm *= 0.75
		st.shortTerm = 0
		if st.confidence > 0 {
			st.confidence--
		}
		if st.longTerm < 0.01 && st.confidence == 0 {
			p.live[id] = false
		}
	}

	type scored struct {
		key   core.PageKey
		score float64
	}
	ranked := make([]scored, 0, len(p.states))
	for id := range p.states {
		if !p.live[id] {
			continue
		}
		st := &p.states[id]
		w := float64(st.confidence) / float64(maxConf)
		// Low-confidence observations are discounted: an erratic
		// page's latest spike contributes a quarter of its face
		// value, so only sustained heat accumulates a winning score.
		score := w*st.longTerm + (1-w)*0.25*st.shortTerm
		if score > 0 {
			ranked = append(ranked, scored{p.tab.Key(uint32(id)), score})
		}
	}
	ranked = core.TopKFunc(ranked, capacity, func(a, b scored) bool {
		return core.RankLess(a.score, b.score, false, false, a.key, b.key)
	})
	sel := make(Selection, len(ranked))
	for _, e := range ranked {
		sel[e.key] = struct{}{}
	}
	return sel
}

// Tracked returns the number of pages the model currently holds live
// state for (interned slots whose page has fully cooled do not count).
func (p *Predictor) Tracked() int {
	n := 0
	for _, ok := range p.live {
		if ok {
			n++
		}
	}
	return n
}

// String aids debugging.
func (p *Predictor) String() string {
	return fmt.Sprintf("predictor(%d pages tracked)", p.Tracked())
}
