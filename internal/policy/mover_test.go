package policy

import (
	"errors"
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func moverMachine(t *testing.T, fast, slow int) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(fast, slow))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func touchPages(t *testing.T, m *cpu.Machine, pid int, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := m.Execute(trace.Ref{PID: pid, VAddr: uint64(i) * 4096, Kind: trace.Load}); err != nil {
			t.Fatal(err)
		}
	}
}

func tierOf(t *testing.T, m *cpu.Machine, pid int, vpn mem.VPN) mem.TierID {
	t.Helper()
	pfn, ok := m.Table(pid).Frame(vpn)
	if !ok {
		t.Fatalf("vpn %d not mapped", vpn)
	}
	return m.Phys.TierOf(pfn)
}

func TestMoverPromotesSelected(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 8) // pages 4..7 spill to slow
	mv := NewMover(m)
	// Select two slow pages for tier 1.
	sel := Selection{
		core.PageKey{PID: 1, VPN: 5}: {},
		core.PageKey{PID: 1, VPN: 6}: {},
	}
	promoted, demoted := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 2 {
		t.Fatalf("promoted %d, want 2", promoted)
	}
	if demoted < 2 {
		t.Fatalf("demoted %d, want >= 2 to make room", demoted)
	}
	if tierOf(t, m, 1, 5) != mem.FastTier || tierOf(t, m, 1, 6) != mem.FastTier {
		t.Errorf("selected pages not in fast tier after ApplySelection")
	}
	if mv.Shootdowns != 1 {
		t.Errorf("Shootdowns = %d, want exactly 1 for the batch", mv.Shootdowns)
	}
}

func TestMoverDemotesColdestFirst(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6) // pages 0..3 fast, 4..5 slow
	mv := NewMover(m)
	sel := Selection{core.PageKey{PID: 1, VPN: 4}: {}}
	ranks := core.RanksFromMap(map[core.PageKey]uint64{
		{PID: 1, VPN: 0}: 10,
		{PID: 1, VPN: 1}: 10,
		{PID: 1, VPN: 2}: 10,
		{PID: 1, VPN: 3}: 0, // coldest: must be the demotion victim
		{PID: 1, VPN: 4}: 5,
	})
	mv.ApplySelection(sel, ranks)
	if tierOf(t, m, 1, 3) != mem.SlowTier {
		t.Errorf("coldest resident not demoted")
	}
	if tierOf(t, m, 1, 0) != mem.FastTier {
		t.Errorf("hot resident demoted despite cold candidates")
	}
}

func TestMoverPreservesVirtualAddressAndState(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6)
	oldPFN, _ := m.Table(1).Frame(4)
	pd := m.Phys.Page(oldPFN)
	pd.AbitEpoch, pd.TraceEpoch, pd.TrueTotal = 3, 4, 50

	mv := NewMover(m)
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 4}: {}}, core.Ranks{})

	newPFN, ok := m.Table(1).Frame(4)
	if !ok {
		t.Fatalf("virtual page vanished after migration")
	}
	if newPFN == oldPFN {
		t.Fatalf("page did not move")
	}
	npd := m.Phys.Page(newPFN)
	if npd.AbitEpoch != 3 || npd.TraceEpoch != 4 || npd.TrueTotal != 50 {
		t.Errorf("profiling state lost in migration: %+v", npd)
	}
	if m.Phys.Page(oldPFN).Allocated() {
		t.Errorf("old frame not freed")
	}
	// The page must still be usable after migration.
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 4 * 4096, Kind: trace.Store}); err != nil {
		t.Fatalf("access after migration failed: %v", err)
	}
}

func TestMoverSplitsHugeMapping(t *testing.T) {
	m := moverMachine(t, 2*mem.HugePages, 2*mem.HugePages)
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 0, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
	if m.Table(1).HugeLeaves() != 1 {
		t.Fatalf("precondition: no huge leaf")
	}
	mv := NewMover(m)
	// Demote one 4 KiB page out of the huge mapping: forces a split.
	// (Selection holds everything except vpn 7.)
	sel := Selection{}
	for i := 0; i < mem.HugePages; i++ {
		if i != 7 {
			sel[core.PageKey{PID: 1, VPN: mem.VPN(i)}] = struct{}{}
		}
	}
	// Make room pressure so the demotion actually happens: fill the
	// fast tier's free space.
	for m.Phys.FreeFrames(mem.FastTier) > 0 {
		if _, err := m.Phys.AllocIn(mem.FastTier, 9, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Demote vpn 7 directly (ApplySelection only demotes under
	// promotion pressure; the split path is what is under test).
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 7}, mem.SlowTier); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if m.Table(1).HugeLeaves() != 0 {
		t.Errorf("huge leaf survived a partial migration; THP split missing")
	}
	if mv.Splits != 1 {
		t.Errorf("Splits = %d, want 1", mv.Splits)
	}
	if tierOf(t, m, 1, 7) != mem.SlowTier {
		t.Errorf("migrated subpage not in slow tier")
	}
	// Neighbors still resolve to their original frames.
	if tierOf(t, m, 1, 8) != mem.FastTier {
		t.Errorf("neighbor subpage moved unexpectedly")
	}
}

func TestMoverFailsGracefullyOnUnmapped(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6)
	mv := NewMover(m)
	sel := Selection{core.PageKey{PID: 99, VPN: 1}: {}} // nonexistent process
	promoted, _ := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 0 {
		t.Errorf("promoted a page of a nonexistent process")
	}
}

func pinPage(t *testing.T, m *cpu.Machine, pid int, vpn mem.VPN) {
	t.Helper()
	pfn, ok := m.Table(pid).Frame(vpn)
	if !ok {
		t.Fatalf("vpn %d not mapped", vpn)
	}
	m.Phys.Page(pfn).Flags |= mem.FlagNonMigratable
}

func unpinPage(t *testing.T, m *cpu.Machine, pid int, vpn mem.VPN) {
	t.Helper()
	pfn, ok := m.Table(pid).Frame(vpn)
	if !ok {
		t.Fatalf("vpn %d not mapped", vpn)
	}
	m.Phys.Page(pfn).Flags &^= mem.FlagNonMigratable
}

func TestMigrateTypedErrors(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 5) // 0..3 fast, 4 slow
	mv := NewMover(m)

	if err := mv.migrate(core.PageKey{PID: 99, VPN: 1}, mem.FastTier); !errors.Is(err, mem.ErrUnmapped) {
		t.Errorf("missing process: got %v, want ErrUnmapped", err)
	}
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 77}, mem.FastTier); !errors.Is(err, mem.ErrUnmapped) {
		t.Errorf("unmapped vpn: got %v, want ErrUnmapped", err)
	}
	pinPage(t, m, 1, 0)
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 0}, mem.SlowTier); !errors.Is(err, mem.ErrPinned) {
		t.Errorf("pinned page: got %v, want ErrPinned", err)
	}
	// Fast tier is full: promotion hits allocation pressure.
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 4}, mem.FastTier); !errors.Is(err, mem.ErrTierFull) {
		t.Errorf("full tier: got %v, want ErrTierFull", err)
	}
}

// fullFastSetup maps five pages (four fill the fast tier, one spills)
// and pins the fast residents so no demotion can make room.
func fullFastSetup(t *testing.T) (*cpu.Machine, *Mover, Selection) {
	t.Helper()
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 5)
	for i := 0; i < 4; i++ {
		pinPage(t, m, 1, mem.VPN(i))
	}
	return m, NewMover(m), Selection{core.PageKey{PID: 1, VPN: 4}: {}}
}

func TestRetryQueueCarriesCapacityFailure(t *testing.T) {
	m, mv, sel := fullFastSetup(t)
	promoted, _ := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 0 {
		t.Fatalf("promoted %d into a full tier", promoted)
	}
	if mv.Failed != 1 || mv.FailedCapacity != 1 || mv.RetryQueueLen() != 1 {
		t.Fatalf("failed=%d capacity=%d queue=%d, want 1/1/1", mv.Failed, mv.FailedCapacity, mv.RetryQueueLen())
	}
	// Make room, then let the deferred retry land next epoch.
	unpinPage(t, m, 1, 0)
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 0}, mem.SlowTier); err != nil {
		t.Fatal(err)
	}
	promoted, _ = mv.ApplySelection(sel, core.Ranks{})
	if promoted != 1 || mv.RetrySucceeded != 1 || mv.Retried != 1 {
		t.Errorf("promoted=%d retrySucceeded=%d retried=%d, want 1/1/1", promoted, mv.RetrySucceeded, mv.Retried)
	}
	if tierOf(t, m, 1, 4) != mem.FastTier {
		t.Errorf("retried promotion did not land")
	}
	if mv.RetryQueueLen() != 0 {
		t.Errorf("queue not drained after success")
	}
}

func TestRetryBackoffAndAttemptCap(t *testing.T) {
	_, mv, sel := fullFastSetup(t)
	// Epoch 1: fresh failure queues the page (due epoch 2).
	mv.ApplySelection(sel, core.Ranks{})
	// Epoch 2: retry #1 fails, requeued with backoff 2 (due epoch 4).
	mv.ApplySelection(sel, core.Ranks{})
	if mv.Retried != 1 || mv.Failed != 2 {
		t.Fatalf("after epoch 2: retried=%d failed=%d, want 1/2", mv.Retried, mv.Failed)
	}
	// Epoch 3: nothing due; the queued page is also excluded from the
	// fresh pass, so no third attempt happens early.
	mv.ApplySelection(sel, core.Ranks{})
	if mv.Retried != 1 || mv.Failed != 2 {
		t.Fatalf("backoff not honored: retried=%d failed=%d", mv.Retried, mv.Failed)
	}
	// Epoch 4: retry #2 fails; the third failure hits MaxRetries and
	// the page is dropped from the queue.
	mv.ApplySelection(sel, core.Ranks{})
	if mv.Retried != 2 || mv.Failed != 3 || mv.RetryDropped != 1 || mv.RetryQueueLen() != 0 {
		t.Errorf("after cap: retried=%d failed=%d dropped=%d queue=%d, want 2/3/1/0",
			mv.Retried, mv.Failed, mv.RetryDropped, mv.RetryQueueLen())
	}
	// The aggregate stays the sum of the reasons.
	if mv.Failed != mv.FailedCapacity+mv.FailedPinned+mv.FailedVanished+mv.FailedSplit {
		t.Errorf("Failed=%d not partitioned by reason counters", mv.Failed)
	}
}

func TestRetrySuperseded(t *testing.T) {
	_, mv, sel := fullFastSetup(t)
	mv.ApplySelection(sel, core.Ranks{})
	if mv.RetryQueueLen() != 1 {
		t.Fatalf("queue=%d, want 1", mv.RetryQueueLen())
	}
	// Next epoch the policy no longer selects the page: the queued
	// promotion is stale and must be dropped, not replayed.
	mv.ApplySelection(Selection{}, core.Ranks{})
	if mv.RetrySuperseded != 1 || mv.RetryQueueLen() != 0 || mv.Retried != 0 {
		t.Errorf("superseded=%d queue=%d retried=%d, want 1/0/0",
			mv.RetrySuperseded, mv.RetryQueueLen(), mv.Retried)
	}
}

func TestFaultPinnedMigrationClassified(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 5)
	mv := NewMover(m)
	spec, _ := fault.ParseSpec("mem.pinned=1")
	mv.SetFaultPlane(fault.New(spec, 1))
	sel := Selection{core.PageKey{PID: 1, VPN: 4}: {}}
	promoted, demoted := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 0 || demoted != 0 {
		t.Fatalf("migrations succeeded under rate-1 pin: %d/%d", promoted, demoted)
	}
	if mv.FailedPinned == 0 {
		t.Errorf("no pinned failures classified")
	}
	if mv.Failed != mv.FailedCapacity+mv.FailedPinned+mv.FailedVanished+mv.FailedSplit {
		t.Errorf("Failed=%d not partitioned by reason counters", mv.Failed)
	}
	if mv.RetryQueueLen() == 0 {
		t.Errorf("transient pin failures not queued for retry")
	}
}

func TestFaultSplitFailure(t *testing.T) {
	m := moverMachine(t, 2*mem.HugePages, 2*mem.HugePages)
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 0, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
	mv := NewMover(m)
	spec, _ := fault.ParseSpec("mem.splitfail=1")
	mv.SetFaultPlane(fault.New(spec, 1))
	err := mv.migrate(core.PageKey{PID: 1, VPN: 7}, mem.SlowTier)
	if !errors.Is(err, ErrSplitFailed) {
		t.Fatalf("got %v, want ErrSplitFailed", err)
	}
	// The failed split must leave the huge mapping intact: the bail
	// happens before any page-table mutation.
	if m.Table(1).HugeLeaves() != 1 || mv.Splits != 0 {
		t.Errorf("failed split mutated the mapping: leaves=%d splits=%d",
			m.Table(1).HugeLeaves(), mv.Splits)
	}
}

func TestMoverZeroRatePlaneInert(t *testing.T) {
	run := func(p *fault.Plane) (*Mover, *cpu.Machine) {
		m := moverMachine(t, 4, 16)
		touchPages(t, m, 1, 8)
		mv := NewMover(m)
		mv.SetFaultPlane(p)
		sel := Selection{
			core.PageKey{PID: 1, VPN: 5}: {},
			core.PageKey{PID: 1, VPN: 6}: {},
		}
		mv.ApplySelection(sel, core.Ranks{})
		return mv, m
	}
	a, _ := run(nil)
	b, _ := run(fault.New(fault.Spec{}, 42))
	if a.Promotions != b.Promotions || a.Demotions != b.Demotions || a.Failed != b.Failed {
		t.Errorf("zero-rate plane perturbed the mover: %+v vs %+v", a, b)
	}
}
