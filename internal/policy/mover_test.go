package policy

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func moverMachine(t *testing.T, fast, slow int) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(fast, slow))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func touchPages(t *testing.T, m *cpu.Machine, pid int, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := m.Execute(trace.Ref{PID: pid, VAddr: uint64(i) * 4096, Kind: trace.Load}); err != nil {
			t.Fatal(err)
		}
	}
}

func tierOf(t *testing.T, m *cpu.Machine, pid int, vpn mem.VPN) mem.TierID {
	t.Helper()
	pfn, ok := m.Table(pid).Frame(vpn)
	if !ok {
		t.Fatalf("vpn %d not mapped", vpn)
	}
	return m.Phys.TierOf(pfn)
}

func TestMoverPromotesSelected(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 8) // pages 4..7 spill to slow
	mv := NewMover(m)
	// Select two slow pages for tier 1.
	sel := Selection{
		core.PageKey{PID: 1, VPN: 5}: {},
		core.PageKey{PID: 1, VPN: 6}: {},
	}
	promoted, demoted := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 2 {
		t.Fatalf("promoted %d, want 2", promoted)
	}
	if demoted < 2 {
		t.Fatalf("demoted %d, want >= 2 to make room", demoted)
	}
	if tierOf(t, m, 1, 5) != mem.FastTier || tierOf(t, m, 1, 6) != mem.FastTier {
		t.Errorf("selected pages not in fast tier after ApplySelection")
	}
	if mv.Shootdowns != 1 {
		t.Errorf("Shootdowns = %d, want exactly 1 for the batch", mv.Shootdowns)
	}
}

func TestMoverDemotesColdestFirst(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6) // pages 0..3 fast, 4..5 slow
	mv := NewMover(m)
	sel := Selection{core.PageKey{PID: 1, VPN: 4}: {}}
	ranks := core.RanksFromMap(map[core.PageKey]uint64{
		{PID: 1, VPN: 0}: 10,
		{PID: 1, VPN: 1}: 10,
		{PID: 1, VPN: 2}: 10,
		{PID: 1, VPN: 3}: 0, // coldest: must be the demotion victim
		{PID: 1, VPN: 4}: 5,
	})
	mv.ApplySelection(sel, ranks)
	if tierOf(t, m, 1, 3) != mem.SlowTier {
		t.Errorf("coldest resident not demoted")
	}
	if tierOf(t, m, 1, 0) != mem.FastTier {
		t.Errorf("hot resident demoted despite cold candidates")
	}
}

func TestMoverPreservesVirtualAddressAndState(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6)
	oldPFN, _ := m.Table(1).Frame(4)
	pd := m.Phys.Page(oldPFN)
	pd.AbitEpoch, pd.TraceEpoch, pd.TrueTotal = 3, 4, 50

	mv := NewMover(m)
	mv.ApplySelection(Selection{core.PageKey{PID: 1, VPN: 4}: {}}, core.Ranks{})

	newPFN, ok := m.Table(1).Frame(4)
	if !ok {
		t.Fatalf("virtual page vanished after migration")
	}
	if newPFN == oldPFN {
		t.Fatalf("page did not move")
	}
	npd := m.Phys.Page(newPFN)
	if npd.AbitEpoch != 3 || npd.TraceEpoch != 4 || npd.TrueTotal != 50 {
		t.Errorf("profiling state lost in migration: %+v", npd)
	}
	if m.Phys.Page(oldPFN).Allocated() {
		t.Errorf("old frame not freed")
	}
	// The page must still be usable after migration.
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 4 * 4096, Kind: trace.Store}); err != nil {
		t.Fatalf("access after migration failed: %v", err)
	}
}

func TestMoverSplitsHugeMapping(t *testing.T) {
	m := moverMachine(t, 2*mem.HugePages, 2*mem.HugePages)
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	if _, err := m.Execute(trace.Ref{PID: 1, VAddr: 0, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
	if m.Table(1).HugeLeaves() != 1 {
		t.Fatalf("precondition: no huge leaf")
	}
	mv := NewMover(m)
	// Demote one 4 KiB page out of the huge mapping: forces a split.
	// (Selection holds everything except vpn 7.)
	sel := Selection{}
	for i := 0; i < mem.HugePages; i++ {
		if i != 7 {
			sel[core.PageKey{PID: 1, VPN: mem.VPN(i)}] = struct{}{}
		}
	}
	// Make room pressure so the demotion actually happens: fill the
	// fast tier's free space.
	for m.Phys.FreeFrames(mem.FastTier) > 0 {
		if _, err := m.Phys.AllocIn(mem.FastTier, 9, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Demote vpn 7 directly (ApplySelection only demotes under
	// promotion pressure; the split path is what is under test).
	if err := mv.migrate(core.PageKey{PID: 1, VPN: 7}, mem.SlowTier); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if m.Table(1).HugeLeaves() != 0 {
		t.Errorf("huge leaf survived a partial migration; THP split missing")
	}
	if mv.Splits != 1 {
		t.Errorf("Splits = %d, want 1", mv.Splits)
	}
	if tierOf(t, m, 1, 7) != mem.SlowTier {
		t.Errorf("migrated subpage not in slow tier")
	}
	// Neighbors still resolve to their original frames.
	if tierOf(t, m, 1, 8) != mem.FastTier {
		t.Errorf("neighbor subpage moved unexpectedly")
	}
}

func TestMoverFailsGracefullyOnUnmapped(t *testing.T) {
	m := moverMachine(t, 4, 16)
	touchPages(t, m, 1, 6)
	mv := NewMover(m)
	sel := Selection{core.PageKey{PID: 99, VPN: 1}: {}} // nonexistent process
	promoted, _ := mv.ApplySelection(sel, core.Ranks{})
	if promoted != 0 {
		t.Errorf("promoted a page of a nonexistent process")
	}
}
