// Package policy implements the tiered-memory placement policies of
// the paper's §IV step 2 (Table II): the predictive Oracle upper bound
// and the practical History policy, plus the first-come-first-allocate
// baseline the end-to-end evaluation compares against and an
// EWMA-decayed extension. Policies are epoch-based: pages move in
// batch at epoch horizons so one TLB shootdown covers every migration.
//
// The package also provides the offline hitrate evaluator behind
// Fig. 6 (policies computed over profiling data, hitrate measured
// against ground truth) and the live page mover used by the
// end-to-end emulation (§IV step 3).
package policy

import (
	"fmt"
	"sort"

	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
)

// Selection is the set of pages a policy placed in tier 1 for an
// epoch.
type Selection map[core.PageKey]struct{}

// Policy chooses tier-1 residents at each epoch horizon.
type Policy interface {
	Name() string
	// Select returns the pages to hold in tier 1 during the epoch
	// that starts now. prev is the harvest of the epoch that just
	// ended; next is the harvest of the coming epoch (only the
	// Oracle may look at it — it "assumes knowledge of how many
	// times each page will be accessed in the coming epoch").
	// capacity is the tier-1 size in pages; method selects which
	// profiling evidence ranks pages.
	Select(prev, next core.EpochStats, method core.Method, capacity int) Selection
}

// takeTop picks the top-capacity pages of a harvest under a method.
// Selection is bounded: core.TopK heaps out the capacity hottest
// pages (the order core.RankLess pins) instead of sorting the whole
// harvest to throw most of it away.
func takeTop(stats core.EpochStats, method core.Method, capacity int) Selection {
	top := core.TopK(stats, method, capacity)
	sel := make(Selection, len(top))
	for i := range top {
		sel[top[i].Key] = struct{}{}
	}
	return sel
}

// Oracle brings the coming epoch's hottest pages (as the chosen
// profiling method will observe them) into tier 1 at the start of the
// epoch — the upper limit for policy design.
type Oracle struct{}

// Name implements Policy.
func (Oracle) Name() string { return "oracle" }

// Select implements Policy.
func (Oracle) Select(prev, next core.EpochStats, method core.Method, capacity int) Selection {
	return takeTop(next, method, capacity)
}

// History brings the previous epoch's hottest pages into tier 1: the
// simple yet practical reactive policy.
type History struct{}

// Name implements Policy.
func (History) Name() string { return "history" }

// Select implements Policy.
func (History) Select(prev, next core.EpochStats, method core.Method, capacity int) Selection {
	return takeTop(prev, method, capacity)
}

// FirstTouch is the NUMA-like first-come-first-allocate baseline: the
// first pages ever observed stay in tier 1 forever; nothing migrates.
type FirstTouch struct {
	resident Selection
	order    []core.PageKey
}

// NewFirstTouch returns an empty baseline.
func NewFirstTouch() *FirstTouch {
	return &FirstTouch{resident: make(Selection)}
}

// Name implements Policy.
func (f *FirstTouch) Name() string { return "first-touch" }

// Select implements Policy. It admits newly seen pages (in first-seen
// order, using ground truth: allocation order does not depend on any
// profiler) until capacity is reached.
func (f *FirstTouch) Select(prev, next core.EpochStats, method core.Method, capacity int) Selection {
	// Stabilize first-seen order within the epoch by key.
	keys := make([]core.PageKey, 0, len(prev.Pages))
	for _, ps := range prev.Pages {
		if ps.True == 0 {
			continue
		}
		if _, ok := f.resident[ps.Key]; !ok {
			keys = append(keys, ps.Key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return core.PageKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		if len(f.order) >= capacity {
			break
		}
		f.resident[k] = struct{}{}
		f.order = append(f.order, k)
	}
	out := make(Selection, len(f.resident))
	for k := range f.resident {
		out[k] = struct{}{}
	}
	return out
}

// Decay is an extension policy (not in the paper's Table II, listed in
// DESIGN.md as an ablation): it ranks pages by an exponentially
// weighted moving average of their per-epoch rank, smoothing the
// reactive History policy against Monte-Carlo access noise.
//
// Per-page state is a dense score column over pageidx interned ids
// (the densemap contract): a zero score is indistinguishable from an
// untracked page, exactly as a missing map key was, so dropping a page
// is writing 0 and the column never needs compaction.
type Decay struct {
	// Alpha in (0,1]: weight of the newest epoch. Alpha=1 degrades
	// to History.
	Alpha  float64
	tab    *pageidx.Table[core.PageKey]
	scores []float64
	seen   []uint32 // epoch stamp: seen[id] == epoch means present this epoch
	epoch  uint32
}

// NewDecay builds the EWMA policy.
func NewDecay(alpha float64) *Decay {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &Decay{Alpha: alpha, tab: pageidx.New(0, core.PageKeyHash)}
}

// Name implements Policy.
func (d *Decay) Name() string { return fmt.Sprintf("decay(%.2f)", d.Alpha) }

// intern returns the page's dense id, growing the columns with it.
func (d *Decay) intern(k core.PageKey) uint32 {
	id := d.tab.Intern(k)
	for int(id) >= len(d.scores) {
		d.scores = append(d.scores, 0)
		d.seen = append(d.seen, 0)
	}
	return id
}

// Select implements Policy.
func (d *Decay) Select(prev, next core.EpochStats, method core.Method, capacity int) Selection {
	d.epoch++
	for _, ps := range prev.Pages {
		id := d.intern(ps.Key)
		d.seen[id] = d.epoch
		d.scores[id] = d.scores[id]*(1-d.Alpha) + float64(ps.Rank(method))*d.Alpha
	}
	// Pages absent this epoch decay toward zero; below the floor the
	// score snaps to 0, which is the untracked state.
	for id := range d.scores {
		if d.seen[id] == d.epoch {
			continue
		}
		v := d.scores[id] * (1 - d.Alpha)
		if v < 1e-6 {
			v = 0
		}
		d.scores[id] = v
	}
	type kv struct {
		k core.PageKey
		v float64
	}
	ranked := make([]kv, 0, len(d.scores))
	for id := range d.scores {
		if v := d.scores[id]; v > 0 {
			ranked = append(ranked, kv{d.tab.Key(uint32(id)), v})
		}
	}
	ranked = core.TopKFunc(ranked, capacity, func(a, b kv) bool {
		return core.RankLess(a.v, b.v, false, false, a.k, b.k)
	})
	sel := make(Selection, len(ranked))
	for _, e := range ranked {
		sel[e.k] = struct{}{}
	}
	return sel
}
