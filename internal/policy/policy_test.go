package policy

import (
	"sort"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/order"
)

// mkEpoch builds an epoch where page i (PID 1, VPN i) has the given
// counts: counts[i] = {abit, trace, true}.
func mkEpoch(epoch int, counts [][3]uint32) core.EpochStats {
	ep := core.EpochStats{Epoch: epoch}
	for i, c := range counts {
		ep.Pages = append(ep.Pages, core.PageStat{
			Key:   core.PageKey{PID: 1, VPN: mem.VPN(i)},
			Tier:  mem.SlowTier,
			Abit:  c[0],
			Trace: c[1],
			True:  c[2],
		})
	}
	return ep
}

func keys(sel Selection) []uint64 {
	var out []uint64
	for k := range sel {
		out = append(out, uint64(k.VPN))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestOracleSelectsFromNextEpoch(t *testing.T) {
	prev := mkEpoch(0, [][3]uint32{{9, 9, 9}, {0, 0, 0}})
	next := mkEpoch(1, [][3]uint32{{0, 0, 0}, {5, 5, 5}})
	sel := Oracle{}.Select(prev, next, core.MethodCombined, 1)
	if _, ok := sel[core.PageKey{PID: 1, VPN: 1}]; !ok || len(sel) != 1 {
		t.Errorf("oracle selected %v, want page 1 (hot next epoch)", keys(sel))
	}
}

func TestHistorySelectsFromPrevEpoch(t *testing.T) {
	prev := mkEpoch(0, [][3]uint32{{9, 9, 9}, {0, 0, 0}})
	next := mkEpoch(1, [][3]uint32{{0, 0, 0}, {5, 5, 5}})
	sel := History{}.Select(prev, next, core.MethodCombined, 1)
	if _, ok := sel[core.PageKey{PID: 1, VPN: 0}]; !ok || len(sel) != 1 {
		t.Errorf("history selected %v, want page 0 (hot last epoch)", keys(sel))
	}
}

func TestSelectionRespectsCapacity(t *testing.T) {
	ep := mkEpoch(0, [][3]uint32{{1, 0, 1}, {2, 0, 1}, {3, 0, 1}, {4, 0, 1}})
	sel := History{}.Select(ep, core.EpochStats{}, core.MethodCombined, 2)
	if len(sel) != 2 {
		t.Fatalf("selection size %d, want 2", len(sel))
	}
	// The two hottest (VPN 3 and 2).
	for _, vpn := range []mem.VPN{3, 2} {
		if _, ok := sel[core.PageKey{PID: 1, VPN: vpn}]; !ok {
			t.Errorf("hot page %d missing from %v", vpn, keys(sel))
		}
	}
}

func TestMethodSelectsEvidence(t *testing.T) {
	// Page 0: A-bit only. Page 1: trace only.
	ep := mkEpoch(0, [][3]uint32{{5, 0, 1}, {0, 5, 1}})
	selA := History{}.Select(ep, core.EpochStats{}, core.MethodAbit, 1)
	if _, ok := selA[core.PageKey{PID: 1, VPN: 0}]; !ok {
		t.Errorf("abit method ignored A-bit evidence")
	}
	selT := History{}.Select(ep, core.EpochStats{}, core.MethodTrace, 1)
	if _, ok := selT[core.PageKey{PID: 1, VPN: 1}]; !ok {
		t.Errorf("trace method ignored trace evidence")
	}
}

func TestFirstTouchAdmitsInOrderAndSticks(t *testing.T) {
	ft := NewFirstTouch()
	ep0 := mkEpoch(0, [][3]uint32{{0, 0, 1}, {0, 0, 1}, {0, 0, 1}})
	sel := ft.Select(ep0, core.EpochStats{}, core.MethodCombined, 2)
	if len(sel) != 2 {
		t.Fatalf("first-touch admitted %d, want 2", len(sel))
	}
	// A hotter page arriving later must NOT displace residents.
	ep1 := mkEpoch(1, [][3]uint32{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}, {9, 9, 99}})
	sel2 := ft.Select(ep1, core.EpochStats{}, core.MethodCombined, 2)
	if len(sel2) != 2 {
		t.Fatalf("capacity violated: %d", len(sel2))
	}
	if _, ok := sel2[core.PageKey{PID: 1, VPN: 3}]; ok {
		t.Errorf("first-touch migrated a page; it must never migrate")
	}
}

func TestDecayConvergesAndForgets(t *testing.T) {
	d := NewDecay(0.5)
	hotThenCold := mkEpoch(0, [][3]uint32{{8, 8, 8}, {0, 0, 0}})
	for i := 0; i < 3; i++ {
		d.Select(hotThenCold, core.EpochStats{}, core.MethodCombined, 1)
	}
	// Page 0 hot: selected.
	sel := d.Select(hotThenCold, core.EpochStats{}, core.MethodCombined, 1)
	if _, ok := sel[core.PageKey{PID: 1, VPN: 0}]; !ok {
		t.Fatalf("decay did not select the hot page")
	}
	// Now page 0 goes silent and page 1 becomes hot; the EWMA must
	// eventually switch over.
	flipped := mkEpoch(1, [][3]uint32{{0, 0, 0}, {8, 8, 8}})
	var switched bool
	for i := 0; i < 10; i++ {
		sel = d.Select(flipped, core.EpochStats{}, core.MethodCombined, 1)
		if _, ok := sel[core.PageKey{PID: 1, VPN: 1}]; ok {
			switched = true
			break
		}
	}
	if !switched {
		t.Errorf("decay never adapted to the new hot page")
	}
}

func TestDecayAlphaOneBehavesLikeHistory(t *testing.T) {
	d := NewDecay(1.0)
	ep := mkEpoch(0, [][3]uint32{{1, 0, 1}, {7, 0, 1}})
	sel := d.Select(ep, core.EpochStats{}, core.MethodCombined, 1)
	hist := History{}.Select(ep, core.EpochStats{}, core.MethodCombined, 1)
	if len(sel) != len(hist) {
		t.Fatalf("sizes differ")
	}
	for _, k := range order.SortedKeysFunc(hist, core.PageKeyLess) {
		if _, ok := sel[k]; !ok {
			t.Errorf("alpha=1 decay diverges from history at %v", k)
		}
	}
}

func TestEvaluateHitrateHandComputed(t *testing.T) {
	// Two epochs, capacity 1.
	// Epoch 0: page 0 has 10 true accesses, page 1 has 2.
	// Epoch 1: page 1 has 10, page 0 has 2.
	e0 := mkEpoch(0, [][3]uint32{{1, 9, 10}, {1, 1, 2}})
	e1 := mkEpoch(1, [][3]uint32{{1, 1, 2}, {1, 9, 10}})
	epochs := []core.EpochStats{e0, e1}

	// Oracle: epoch 0 picks page 0 (10 hits of 12), epoch 1 picks
	// page 1 (10 of 12): hitrate 20/24.
	hr := EvaluateHitrate(Oracle{}, epochs, core.MethodCombined, 1)
	if hr.Hits != 20 || hr.Total != 24 {
		t.Errorf("oracle hits/total = %d/%d, want 20/24", hr.Hits, hr.Total)
	}

	// History: epoch 0 has no prior evidence (0 hits), epoch 1 uses
	// epoch 0's ranks -> picks page 0 -> 2 hits. 2/24.
	hr2 := EvaluateHitrate(History{}, epochs, core.MethodCombined, 1)
	if hr2.Hits != 2 || hr2.Total != 24 {
		t.Errorf("history hits/total = %d/%d, want 2/24", hr2.Hits, hr2.Total)
	}
	if hr2.Hitrate() >= hr.Hitrate() {
		t.Errorf("history should lag oracle on a shifting pattern")
	}
}

func TestEvaluateHitrateCountsMigrations(t *testing.T) {
	e0 := mkEpoch(0, [][3]uint32{{9, 0, 9}, {0, 0, 0}})
	e1 := mkEpoch(1, [][3]uint32{{0, 0, 0}, {9, 0, 9}})
	hr := EvaluateHitrate(Oracle{}, []core.EpochStats{e0, e1}, core.MethodCombined, 1)
	if hr.Migrated != 1 {
		t.Errorf("Migrated = %d, want 1 (selection flipped once)", hr.Migrated)
	}
}

func TestCapacityForRatio(t *testing.T) {
	if CapacityForRatio(1000, 8) != 125 {
		t.Errorf("CapacityForRatio(1000,8) = %d", CapacityForRatio(1000, 8))
	}
	if CapacityForRatio(3, 8) != 1 {
		t.Errorf("capacity floor broken")
	}
	if CapacityForRatio(100, 0) != 100 {
		t.Errorf("ratio 0 not treated as 1")
	}
}

func TestPredictorTrustsStablePages(t *testing.T) {
	p := NewPredictor()
	// Page 0: steady rank 8. Page 1: oscillates 0/16 (same mean).
	for i := 0; i < 6; i++ {
		var osc uint32
		if i%2 == 1 {
			osc = 16
		}
		ep := mkEpoch(i, [][3]uint32{{8, 0, 8}, {osc, 0, 8}})
		p.Select(ep, core.EpochStats{}, core.MethodCombined, 1)
	}
	// After an epoch where the oscillator read 0, History would pick
	// page 0 trivially; make the last observation favor the
	// oscillator (16 > 8) — the predictor should still prefer the
	// stable page because the oscillator has no confidence.
	ep := mkEpoch(6, [][3]uint32{{8, 0, 8}, {16, 0, 8}})
	sel := p.Select(ep, core.EpochStats{}, core.MethodCombined, 1)
	if _, ok := sel[core.PageKey{PID: 1, VPN: 0}]; !ok {
		t.Errorf("predictor chose the erratic page over the stable one: %v", keys(sel))
	}
}

func TestPredictorForgetsDeadPages(t *testing.T) {
	p := NewPredictor()
	hot := mkEpoch(0, [][3]uint32{{9, 0, 9}})
	for i := 0; i < 3; i++ {
		p.Select(hot, core.EpochStats{}, core.MethodCombined, 1)
	}
	empty := core.EpochStats{}
	for i := 0; i < 40; i++ {
		p.Select(empty, core.EpochStats{}, core.MethodCombined, 1)
	}
	if p.Tracked() != 0 {
		t.Errorf("dead page still tracked: %v", p)
	}
}

func TestPredictorColdStartMatchesHistoryDirection(t *testing.T) {
	p := NewPredictor()
	ep := mkEpoch(0, [][3]uint32{{1, 0, 1}, {7, 0, 1}})
	sel := p.Select(ep, core.EpochStats{}, core.MethodCombined, 1)
	if _, ok := sel[core.PageKey{PID: 1, VPN: 1}]; !ok {
		t.Errorf("cold-start predictor ignored the hotter page")
	}
}

func TestWriteBiasedPrefersDirtyPages(t *testing.T) {
	ep := core.EpochStats{Pages: []core.PageStat{
		{Key: core.PageKey{PID: 1, VPN: 0}, Abit: 2, Trace: 1, Write: 0, True: 5},
		{Key: core.PageKey{PID: 1, VPN: 1}, Abit: 1, Trace: 0, Write: 4, True: 5},
	}}
	// Read rank: page 0 = 3, page 1 = 1. With bias 2, page 1 scores
	// 1 + 8 = 9 and must win the single slot.
	sel := WriteBiased{Bias: 2}.Select(ep, core.EpochStats{}, core.MethodCombined, 1)
	if _, ok := sel[core.PageKey{PID: 1, VPN: 1}]; !ok {
		t.Errorf("write-biased policy ignored write heat: %v", keys(sel))
	}
	// With bias ~0 it must defer to the read rank... bias<=0 resets
	// to the default, so use a tiny positive bias.
	sel0 := WriteBiased{Bias: 0.1}.Select(ep, core.EpochStats{}, core.MethodCombined, 1)
	if _, ok := sel0[core.PageKey{PID: 1, VPN: 0}]; !ok {
		t.Errorf("near-zero bias did not defer to read rank: %v", keys(sel0))
	}
}
