package policy

import (
	"fmt"

	"tieredmem/internal/core"
)

// WriteBiased is a CLOCK-DWF-inspired extension policy ([32] in the
// paper): on media with asymmetric write cost (NVM writes are ~2x
// reads in our tier model, far worse on real PCM), write-heavy pages
// benefit disproportionately from living in DRAM. The policy scores a
// page as its read-side rank plus Bias times its PML write count, so
// dirty pages win ties against read-mostly pages of equal heat.
// It requires TMP's PML engine (core.Config.EnablePML).
type WriteBiased struct {
	// Bias is the weight of one logged write relative to one
	// read-side observation.
	Bias float64
}

// Name implements Policy.
func (w WriteBiased) Name() string { return fmt.Sprintf("write-biased(%.1f)", w.Bias) }

// Select implements Policy: History-style (previous epoch's evidence)
// with the write-biased score.
func (w WriteBiased) Select(prev, next core.EpochStats, method core.Method, capacity int) Selection {
	bias := w.Bias
	if bias <= 0 {
		bias = 2
	}
	type scored struct {
		key   core.PageKey
		score float64
		fast  bool
	}
	ranked := make([]scored, 0, len(prev.Pages))
	for _, ps := range prev.Pages {
		s := float64(ps.Rank(method)) + bias*float64(ps.Write)
		if s > 0 {
			ranked = append(ranked, scored{key: ps.Key, score: s, fast: ps.Tier == 0})
		}
	}
	ranked = core.TopKFunc(ranked, capacity, func(a, b scored) bool {
		return core.RankLess(a.score, b.score, a.fast, b.fast, a.key, b.key)
	})
	sel := make(Selection, len(ranked))
	for _, e := range ranked {
		sel[e.key] = struct{}{}
	}
	return sel
}
