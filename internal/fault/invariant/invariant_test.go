package invariant

import (
	"strings"
	"testing"

	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/policy"
)

// buildMapped returns a small machine state: n pages mapped for pid
// 100, half in each tier.
func buildMapped(t *testing.T, n int) (*mem.PhysMem, map[int]*pagetable.Table) {
	t.Helper()
	phys, err := mem.NewPhysMem(mem.DefaultTiers(n, n))
	if err != nil {
		t.Fatal(err)
	}
	table := pagetable.New(100)
	for i := 0; i < n; i++ {
		tier := mem.FastTier
		if i%2 == 1 {
			tier = mem.SlowTier
		}
		pfn, err := phys.AllocIn(tier, 100, mem.VPN(i))
		if err != nil {
			t.Fatal(err)
		}
		table.Map(mem.VPN(i), pfn, true)
	}
	return phys, map[int]*pagetable.Table{100: table}
}

func TestCheckCleanState(t *testing.T) {
	phys, tables := buildMapped(t, 64)
	c := New()
	if err := c.Check(phys, tables, nil); err != nil {
		t.Fatalf("clean state violates invariants: %v", err)
	}
	// Re-check with the same scratch: the epoch-stamp reuse must not
	// report stale ownership.
	if err := c.Check(phys, tables, nil); err != nil {
		t.Fatalf("second pass violates invariants: %v", err)
	}
}

func TestCheckCleanHugeState(t *testing.T) {
	phys, err := mem.NewPhysMem(mem.DefaultTiers(2*mem.HugePages, 2*mem.HugePages))
	if err != nil {
		t.Fatal(err)
	}
	table := pagetable.New(7)
	pfn, err := phys.AllocHuge(mem.FastTier, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	table.MapHuge(0, pfn, true)
	c := New()
	if err := c.Check(phys, map[int]*pagetable.Table{7: table}, nil); err != nil {
		t.Fatalf("huge mapping violates invariants: %v", err)
	}
}

// wantViolation asserts Check fails and the error names the rule.
func wantViolation(t *testing.T, err error, rule string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corrupted state passed the checker (want %s)", rule)
	}
	if !strings.Contains(err.Error(), rule) {
		t.Fatalf("violation %q missing from error: %v", rule, err)
	}
}

func TestCheckCatchesDanglingMapping(t *testing.T) {
	phys, tables := buildMapped(t, 16)
	pfn, _ := tables[100].Frame(4)
	phys.Free(pfn) // frame freed out from under a live mapping
	wantViolation(t, New().Check(phys, tables, nil), "dangling-mapping")
}

func TestCheckCatchesLeakedFrame(t *testing.T) {
	phys, tables := buildMapped(t, 16)
	if _, err := phys.AllocIn(mem.FastTier, 100, 999); err != nil {
		t.Fatal(err)
	} // allocated, never mapped: a lost page
	wantViolation(t, New().Check(phys, tables, nil), "leaked-frame")
}

func TestCheckCatchesDuplicateFrame(t *testing.T) {
	phys, tables := buildMapped(t, 16)
	pfn, _ := tables[100].Frame(2)
	other, _ := tables[100].Frame(3)
	tables[100].Remap(3, pfn) // vpn 2 and 3 now share a frame...
	phys.Free(other)          // ...and 3's old frame leaks-free cleanly
	wantViolation(t, New().Check(phys, tables, nil), "duplicate-frame")
}

func TestCheckCatchesTierMismatch(t *testing.T) {
	phys, tables := buildMapped(t, 16)
	pfn, _ := tables[100].Frame(6)
	pd := phys.Page(pfn)
	pd.Tier = pd.Tier ^ 1 // counters moved, frame did not
	// The per-tier used/free counters still balance — only the
	// identity rule can see this.
	wantViolation(t, New().Check(phys, tables, nil), "tier-mismatch")
}

func TestCheckCleanThreeTierChain(t *testing.T) {
	chain, err := mem.ParseTierChain("dram:8/cxl:8/nvm:16")
	if err != nil {
		t.Fatal(err)
	}
	phys, err := mem.NewPhysMem(chain)
	if err != nil {
		t.Fatal(err)
	}
	table := pagetable.New(9)
	for i := 0; i < 12; i++ {
		pfn, err := phys.AllocIn(mem.TierID(i%3), 9, mem.VPN(i))
		if err != nil {
			t.Fatal(err)
		}
		table.Map(mem.VPN(i), pfn, true)
	}
	if err := New().Check(phys, map[int]*pagetable.Table{9: table}, nil); err != nil {
		t.Fatalf("clean 3-tier state violates invariants: %v", err)
	}
}

func TestCheckCatchesDescriptorMismatch(t *testing.T) {
	phys, tables := buildMapped(t, 16)
	pfn, _ := tables[100].Frame(5)
	phys.Page(pfn).VPage = 555 // descriptor back-pointer corrupted
	wantViolation(t, New().Check(phys, tables, nil), "descriptor-mismatch")
}

func TestCheckCatchesMoverMiscount(t *testing.T) {
	phys, tables := buildMapped(t, 8)
	mv := &policy.Mover{Failed: 3, FailedPinned: 1} // 3 != 1
	wantViolation(t, New().Check(phys, tables, mv), "mover-accounting")
}

func TestCheckMoverCleanCounters(t *testing.T) {
	phys, tables := buildMapped(t, 8)
	mv := &policy.Mover{
		Failed: 4, FailedCapacity: 1, FailedPinned: 2, FailedSplit: 1,
		Retried: 3, RetrySucceeded: 2, RetryQueueCap: 8,
	}
	if err := New().Check(phys, tables, mv); err != nil {
		t.Fatalf("consistent mover counters flagged: %v", err)
	}
}
