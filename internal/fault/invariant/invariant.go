// Package invariant asserts the cross-layer conservation laws that
// must survive any epoch, faulted or not: physical frames are neither
// lost nor duplicated, every page-table mapping points at exactly one
// allocated frame whose descriptor points back, per-tier accounting
// conserves capacity, and the mover's failure counters partition its
// aggregate. The chaos suite runs a Checker after every epoch under
// fault injection — a fault plane is allowed to make migrations fail,
// never to corrupt placement state.
//
// The checker only reads; it never mutates simulator state, so a
// checked run is byte-identical to an unchecked one.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/policy"
)

// maxViolations bounds one Check's report; past this the epoch is
// thoroughly broken and more lines would not help.
const maxViolations = 8

// Checker verifies epoch invariants. It keeps per-PFN scratch between
// calls (epoch-stamped, so it is never cleared), making the per-epoch
// cost one pass over the mapped pages plus one over the frame arrays.
// Not safe for concurrent use; parallel cells each own one.
type Checker struct {
	stamp uint32
	owner []ownerMark
}

// ownerMark records which mapping claimed a frame during the current
// Check pass; stale stamps mean "unclaimed this pass".
type ownerMark struct {
	stamp uint32
	pid   int
	vpn   mem.VPN
}

// New builds a Checker.
func New() *Checker { return &Checker{} }

// Violation is one broken invariant; Error joins all of them, so a
// single failed epoch reports every law it broke at once.
type Violation struct {
	// Rule names the invariant ("tier-conservation", "tier-mismatch",
	// "duplicate-frame", "dangling-mapping", "descriptor-mismatch",
	// "leaked-frame", "mover-accounting").
	Rule string
	// Detail locates the breakage.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Error wraps the violations of one failed Check.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.String()
	}
	return "invariant: " + strings.Join(parts, "; ")
}

// Check asserts every epoch invariant against the machine's physical
// memory, the page tables, and (when non-nil) the mover's accounting.
// It returns nil when all hold, or an *Error listing up to
// maxViolations breakages. Tables are visited in ascending-PID order
// so the report for a given broken state is deterministic.
func (c *Checker) Check(phys *mem.PhysMem, tables map[int]*pagetable.Table, mv *policy.Mover) error {
	var e Error
	add := func(rule, format string, args ...interface{}) bool {
		if len(e.Violations) < maxViolations {
			e.Violations = append(e.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
		}
		return len(e.Violations) < maxViolations
	}

	total := phys.TotalFrames()
	if len(c.owner) < total {
		c.owner = make([]ownerMark, total)
		c.stamp = 0
	}
	c.stamp++
	stamp := c.stamp

	// 1. Tier conservation: used + free == capacity, per tier.
	totalUsed := 0
	for t := 0; t < phys.Tiers(); t++ {
		id := mem.TierID(t)
		used, free := phys.UsedFrames(id), phys.FreeFrames(id)
		cap := phys.TierSpecOf(id).Frames
		totalUsed += used
		if used+free != cap {
			add("tier-conservation", "tier %d (%s): used %d + free %d != capacity %d",
				t, phys.TierSpecOf(id).Name, used, free, cap)
		}
	}

	// 2. Tier identity: every allocated descriptor's Tier field agrees
	// with its frame's position in the chain's PFN carving. A mover
	// bug that moved counters without moving the frame (or vice versa)
	// breaks this before it breaks per-tier totals — each tier's
	// used+free can balance while two descriptors sit in each other's
	// tiers.
	phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		lo, hi := phys.TierRange(pd.Tier)
		if pd.Frame < lo || pd.Frame >= hi {
			add("tier-mismatch", "PFN %d (pid %d vpn %#x) claims tier %d which spans [%d, %d)",
				pd.Frame, pd.PID, uint64(pd.VPage), pd.Tier, lo, hi)
		}
	})

	// 3. Mapping -> frame: every present leaf resolves to allocated
	// frames whose descriptors point back, and no frame is mapped
	// twice (by one table or across tables).
	pids := make([]int, 0, len(tables))
	for pid := range tables {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	mapped := 0
	for _, pid := range pids {
		table := tables[pid]
		table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
			span := 1
			if huge {
				span = mem.HugePages
			}
			base := pte.PFN()
			for i := 0; i < span; i++ {
				pfn, pv := base+mem.PFN(i), vpn+mem.VPN(i)
				if int(pfn) >= total {
					return add("dangling-mapping", "pid %d vpn %#x -> PFN %d beyond physical memory (%d frames)",
						pid, uint64(pv), pfn, total)
				}
				mapped++
				own := &c.owner[pfn]
				if own.stamp == stamp {
					if !add("duplicate-frame", "PFN %d mapped by pid %d vpn %#x and pid %d vpn %#x",
						pfn, own.pid, uint64(own.vpn), pid, uint64(pv)) {
						return false
					}
					continue
				}
				*own = ownerMark{stamp: stamp, pid: pid, vpn: pv}
				pd := phys.Page(pfn)
				if !pd.Allocated() {
					if !add("dangling-mapping", "pid %d vpn %#x -> PFN %d which is free", pid, uint64(pv), pfn) {
						return false
					}
					continue
				}
				if pd.PID != pid || pd.VPage != pv || pd.Frame != pfn {
					if !add("descriptor-mismatch", "PFN %d descriptor says pid=%d vpn=%#x frame=%d, mapping says pid=%d vpn=%#x",
						pfn, pd.PID, uint64(pd.VPage), pd.Frame, pid, uint64(pv)) {
						return false
					}
				}
			}
			return true
		})
	}

	// 4. Frame -> mapping: an allocated frame no mapping claimed this
	// pass leaked (lost page). Counting both directions plus the
	// duplicate check above makes mapping <-> allocated-frame a
	// bijection.
	if mapped != totalUsed && len(e.Violations) < maxViolations {
		phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
			if c.owner[pd.Frame].stamp != stamp {
				add("leaked-frame", "PFN %d allocated (pid %d vpn %#x, tier %d) but mapped by no page table",
					pd.Frame, pd.PID, uint64(pd.VPage), pd.Tier)
			}
		})
	}

	// 5. Mover accounting: the per-reason counters partition the
	// aggregate, retry outcomes never exceed attempts, and the queue
	// respects its bound.
	if mv != nil {
		if sum := mv.FailedCapacity + mv.FailedPinned + mv.FailedVanished + mv.FailedSplit; sum != mv.Failed {
			add("mover-accounting", "Failed %d != capacity %d + pinned %d + vanished %d + split %d",
				mv.Failed, mv.FailedCapacity, mv.FailedPinned, mv.FailedVanished, mv.FailedSplit)
		}
		if mv.RetrySucceeded > mv.Retried {
			add("mover-accounting", "RetrySucceeded %d > Retried %d", mv.RetrySucceeded, mv.Retried)
		}
		if mv.RetryQueueLen() > mv.RetryQueueCap {
			add("mover-accounting", "retry queue length %d exceeds cap %d", mv.RetryQueueLen(), mv.RetryQueueCap)
		}
	}

	if len(e.Violations) > 0 {
		return &e
	}
	return nil
}
