// Package invariant asserts the cross-layer conservation laws that
// must survive any epoch, faulted or not: physical frames are neither
// lost nor duplicated, every page-table mapping points at exactly one
// allocated frame whose descriptor points back, per-tier accounting
// conserves capacity, and the mover's failure counters partition its
// aggregate. The chaos suite runs a Checker after every epoch under
// fault injection — a fault plane is allowed to make migrations fail,
// never to corrupt placement state.
//
// The checker only reads; it never mutates simulator state, so a
// checked run is byte-identical to an unchecked one.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/policy"
)

// maxViolations bounds one Check's report; past this the epoch is
// thoroughly broken and more lines would not help.
const maxViolations = 8

// Checker verifies epoch invariants. It keeps per-PFN scratch between
// calls (epoch-stamped, so it is never cleared), making the per-epoch
// cost one pass over the mapped pages plus one over the frame arrays.
// Not safe for concurrent use; parallel cells each own one.
type Checker struct {
	stamp uint32
	owner []ownerMark
}

// ownerMark records which mapping claimed a frame during the current
// Check pass; stale stamps mean "unclaimed this pass".
type ownerMark struct {
	stamp uint32
	pid   int
	vpn   mem.VPN
}

// New builds a Checker.
func New() *Checker { return &Checker{} }

// Violation is one broken invariant; Error joins all of them, so a
// single failed epoch reports every law it broke at once.
type Violation struct {
	// Rule names the invariant ("tier-conservation", "tier-mismatch",
	// "duplicate-frame", "dangling-mapping", "descriptor-mismatch",
	// "leaked-frame", "shadow-conservation", "mover-accounting").
	Rule string
	// Detail locates the breakage.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Error wraps the violations of one failed Check.
type Error struct {
	Violations []Violation
}

func (e *Error) Error() string {
	parts := make([]string, len(e.Violations))
	for i, v := range e.Violations {
		parts[i] = v.String()
	}
	return "invariant: " + strings.Join(parts, "; ")
}

// Check asserts every epoch invariant against the machine's physical
// memory, the page tables, and (when non-nil) the mover's accounting.
// It returns nil when all hold, or an *Error listing up to
// maxViolations breakages. Tables are visited in ascending-PID order
// so the report for a given broken state is deterministic.
func (c *Checker) Check(phys *mem.PhysMem, tables map[int]*pagetable.Table, mv *policy.Mover) error {
	var e Error
	add := func(rule, format string, args ...interface{}) bool {
		if len(e.Violations) < maxViolations {
			e.Violations = append(e.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
		}
		return len(e.Violations) < maxViolations
	}

	total := phys.TotalFrames()
	if len(c.owner) < total {
		c.owner = make([]ownerMark, total)
		c.stamp = 0
	}
	c.stamp++
	stamp := c.stamp

	// 1. Tier conservation: used + free + shadow == capacity, per tier.
	// Shadow frames are the transactional mover's third allocator
	// state — not free, not mapped — and must still be conserved.
	totalUsed := 0
	for t := 0; t < phys.Tiers(); t++ {
		id := mem.TierID(t)
		used, free, shadow := phys.UsedFrames(id), phys.FreeFrames(id), phys.ShadowFrames(id)
		cap := phys.TierSpecOf(id).Frames
		totalUsed += used
		if used+free+shadow != cap {
			add("tier-conservation", "tier %d (%s): used %d + free %d + shadow %d != capacity %d",
				t, phys.TierSpecOf(id).Name, used, free, shadow, cap)
		}
	}

	// 2. Tier identity: every allocated descriptor's Tier field agrees
	// with its frame's position in the chain's PFN carving. A mover
	// bug that moved counters without moving the frame (or vice versa)
	// breaks this before it breaks per-tier totals — each tier's
	// used+free can balance while two descriptors sit in each other's
	// tiers.
	phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		lo, hi := phys.TierRange(pd.Tier)
		if pd.Frame < lo || pd.Frame >= hi {
			add("tier-mismatch", "PFN %d (pid %d vpn %#x) claims tier %d which spans [%d, %d)",
				pd.Frame, pd.PID, uint64(pd.VPage), pd.Tier, lo, hi)
		}
	})

	// 3. Mapping -> frame: every present leaf resolves to allocated
	// frames whose descriptors point back, and no frame is mapped
	// twice (by one table or across tables).
	pids := make([]int, 0, len(tables))
	for pid := range tables {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	mapped := 0
	for _, pid := range pids {
		table := tables[pid]
		table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
			span := 1
			if huge {
				span = mem.HugePages
			}
			base := pte.PFN()
			for i := 0; i < span; i++ {
				pfn, pv := base+mem.PFN(i), vpn+mem.VPN(i)
				if int(pfn) >= total {
					return add("dangling-mapping", "pid %d vpn %#x -> PFN %d beyond physical memory (%d frames)",
						pid, uint64(pv), pfn, total)
				}
				mapped++
				own := &c.owner[pfn]
				if own.stamp == stamp {
					if !add("duplicate-frame", "PFN %d mapped by pid %d vpn %#x and pid %d vpn %#x",
						pfn, own.pid, uint64(own.vpn), pid, uint64(pv)) {
						return false
					}
					continue
				}
				*own = ownerMark{stamp: stamp, pid: pid, vpn: pv}
				pd := phys.Page(pfn)
				if !pd.Allocated() {
					if !add("dangling-mapping", "pid %d vpn %#x -> PFN %d which is free", pid, uint64(pv), pfn) {
						return false
					}
					continue
				}
				if pd.PID != pid || pd.VPage != pv || pd.Frame != pfn {
					if !add("descriptor-mismatch", "PFN %d descriptor says pid=%d vpn=%#x frame=%d, mapping says pid=%d vpn=%#x",
						pfn, pd.PID, uint64(pd.VPage), pd.Frame, pid, uint64(pv)) {
						return false
					}
				}
			}
			return true
		})
	}

	// 4. Frame -> mapping: an allocated frame no mapping claimed this
	// pass leaked (lost page). Counting both directions plus the
	// duplicate check above makes mapping <-> allocated-frame a
	// bijection.
	if mapped != totalUsed && len(e.Violations) < maxViolations {
		phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
			if c.owner[pd.Frame].stamp != stamp {
				add("leaked-frame", "PFN %d allocated (pid %d vpn %#x, tier %d) but mapped by no page table",
					pd.Frame, pd.PID, uint64(pd.VPage), pd.Tier)
			}
		})
	}

	// 5. Shadow conservation: shadow frames and shadowed primaries form
	// a bijection — every shadow's link names an allocated primary in a
	// faster tier that links back and agrees on page identity — and the
	// per-tier shadow counters match the flags. The pass walks the raw
	// frame array rather than ForEachShadow so a counter drifting to
	// zero cannot hide flagged frames from the check.
	shadowSeen := make(map[mem.TierID]int)
	for pfn := mem.PFN(0); int(pfn) < total; pfn++ {
		spd := phys.Page(pfn)
		if spd.Flags&mem.FlagShadow == 0 {
			continue
		}
		shadowSeen[spd.Tier]++
		if c.owner[pfn].stamp == stamp {
			add("shadow-conservation", "shadow PFN %d is mapped by pid %d vpn %#x",
				pfn, c.owner[pfn].pid, uint64(c.owner[pfn].vpn))
			continue
		}
		primary := phys.Page(spd.ShadowLink)
		switch {
		case !primary.Allocated() || primary.Flags&mem.FlagShadowed == 0:
			add("shadow-conservation", "shadow PFN %d links to PFN %d which is not a shadowed primary",
				pfn, spd.ShadowLink)
		case primary.ShadowLink != pfn:
			add("shadow-conservation", "shadow PFN %d links to PFN %d whose shadow link is PFN %d",
				pfn, spd.ShadowLink, primary.ShadowLink)
		case primary.PID != spd.PID || primary.VPage != spd.VPage:
			add("shadow-conservation", "shadow PFN %d (pid %d vpn %#x) disagrees with primary PFN %d (pid %d vpn %#x)",
				pfn, spd.PID, uint64(spd.VPage), primary.Frame, primary.PID, uint64(primary.VPage))
		case primary.Tier >= spd.Tier:
			add("shadow-conservation", "shadow PFN %d in tier %d is not slower than its primary PFN %d in tier %d",
				pfn, spd.Tier, primary.Frame, primary.Tier)
		}
	}
	phys.ForEachAllocated(func(pd *mem.PageDescriptor) {
		if pd.Flags&mem.FlagShadowed != 0 && phys.Page(pd.ShadowLink).Flags&mem.FlagShadow == 0 {
			add("shadow-conservation", "shadowed primary PFN %d links to PFN %d which holds no shadow",
				pd.Frame, pd.ShadowLink)
		}
	})
	for t := 0; t < phys.Tiers(); t++ {
		id := mem.TierID(t)
		if got := phys.ShadowFrames(id); got != shadowSeen[id] {
			add("shadow-conservation", "tier %d shadow counter says %d frames, flags say %d",
				t, got, shadowSeen[id])
		}
	}

	// 6. Mover accounting: the per-reason counters partition the
	// aggregate, transaction outcomes partition transaction starts,
	// retry outcomes never exceed attempts, and the queue respects its
	// bound.
	if mv != nil {
		if sum := mv.FailedCapacity + mv.FailedPinned + mv.FailedVanished + mv.FailedSplit + mv.AbortedDirty; sum != mv.Failed {
			add("mover-accounting", "Failed %d != capacity %d + pinned %d + vanished %d + split %d + aborted %d",
				mv.Failed, mv.FailedCapacity, mv.FailedPinned, mv.FailedVanished, mv.FailedSplit, mv.AbortedDirty)
		}
		if sum := mv.TxCommitted + mv.AbortedDirty + mv.TxRemapFailed; sum != mv.TxStarted {
			add("mover-accounting", "TxStarted %d != committed %d + aborted-dirty %d + remap-failed %d",
				mv.TxStarted, mv.TxCommitted, mv.AbortedDirty, mv.TxRemapFailed)
		}
		if mv.RetrySucceeded > mv.Retried {
			add("mover-accounting", "RetrySucceeded %d > Retried %d", mv.RetrySucceeded, mv.Retried)
		}
		if mv.RetryQueueLen() > mv.RetryQueueCap {
			add("mover-accounting", "retry queue length %d exceeds cap %d", mv.RetryQueueLen(), mv.RetryQueueCap)
		}
	}

	if len(e.Violations) > 0 {
		return &e
	}
	return nil
}
