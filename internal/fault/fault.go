// Package fault is the simulator's deterministic fault-injection
// plane. The paper's whole argument is that profiling mechanisms are
// individually unreliable — IBS samples get dropped, A-bit walks race
// with the workload, counters overflow, migrations fail under pressure
// — and that a profiler must degrade gracefully when they do. This
// package supplies the unreliability on demand: a Plane carries one
// independent, seed-derived random stream per injection site, and the
// hardware/OS layers (ibs, abit, hwpc, mem, policy) consult it at
// well-defined decision points.
//
// Two contracts govern the plane, mirroring the telemetry layer's:
//
//  1. Determinism. Same seed + same Spec ⇒ the same decision sequence
//     at every site, so a faulted run is byte-reproducible. Each site
//     owns a private splitmix64 stream derived from (seed, site), so
//     one mechanism's draw count never perturbs another's decisions.
//     The tmplint faultrand analyzer keeps math/rand, crypto/rand, and
//     wall-clock out of this package.
//
//  2. Inertness at rate zero. A nil *Plane and a Plane built from a
//     zero Spec are behaviourally identical to no plane at all: every
//     decision method on either returns false without drawing, so a
//     zero-rate run is byte-identical to an unfaulted one
//     (machine-checked by TestFaultPlaneInert).
//
// The plane decides; it never acts. Injection sites own the failure
// semantics (what a dropped sample or a failed AllocIn means), and the
// response machinery — the mover's retry queue, the profiler's
// quarantine — reacts to those failures exactly as it would to organic
// ones. See ROBUSTNESS.md for the spec grammar and the full site list.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tieredmem/internal/telemetry"
)

// Site identifies one injection point. Every site draws from its own
// seed-derived stream and counts its own injections.
type Site uint8

const (
	// SiteIBSDrop drops one delivered trace sample before it reaches
	// the ring (a lost IBS/PEBS record).
	SiteIBSDrop Site = iota
	// SiteIBSOverflow loses an entire drain batch (the interrupt
	// handler found the buffer overwritten).
	SiteIBSOverflow
	// SiteAbitAbort aborts an A-bit page-table walk partway through
	// (the walk raced with the workload and bailed).
	SiteAbitAbort
	// SiteHWPCWrap wraps a performance counter between two window
	// reads, making the observed value go backwards.
	SiteHWPCWrap
	// SiteENOMEM fails one AllocIn call with mem.ErrTierFull even
	// though frames are free (transient allocation pressure).
	SiteENOMEM
	// SitePinned fails one migration with mem.ErrPinned (the page is
	// transiently pinned, the EBUSY case).
	SitePinned
	// SiteSplitFail fails one THP split during migration.
	SiteSplitFail
	// SiteDevOverflow overflows the device tracker's bounded counter
	// table during a flush: the staged batch of device observations is
	// lost (the NeoMem hot-page queue wrapped before the host read it).
	SiteDevOverflow
	// SiteDevStale makes one device-tracker flush return stale data:
	// nothing is delivered this epoch and the counts carry over (the
	// host read raced the device's internal aggregation window).
	SiteDevStale
	// SiteCopyAbort dirties a page mid-copy during a transactional
	// migration: the verify-clean phase sees the write and the
	// transaction aborts with mem.ErrCopyAborted (consulted by
	// policy.Mover per transactional copy).
	SiteCopyAbort
	// SiteShadowStale invalidates a slow-tier shadow copy at the moment
	// a re-demotion tries to reuse it: the remap-only fast path is
	// abandoned and the demotion pays the full copy (consulted by
	// policy.Mover per shadow-hit attempt).
	SiteShadowStale

	numSites
)

// String names the site as used in counters and the spec grammar.
func (s Site) String() string {
	switch s {
	case SiteIBSDrop:
		return "ibs.drop"
	case SiteIBSOverflow:
		return "ibs.overflow"
	case SiteAbitAbort:
		return "abit.abort"
	case SiteHWPCWrap:
		return "hwpc.wrap"
	case SiteENOMEM:
		return "mem.enomem"
	case SitePinned:
		return "mem.pinned"
	case SiteSplitFail:
		return "mem.splitfail"
	case SiteDevOverflow:
		return "devprof.overflow"
	case SiteDevStale:
		return "devprof.stale"
	case SiteCopyAbort:
		return "mem.copyabort"
	case SiteShadowStale:
		return "mem.shadowstale"
	default:
		return "site?"
	}
}

// counterName maps a site to its telemetry counter.
func (s Site) counterName() string {
	switch s {
	case SiteIBSDrop:
		return "fault/ibs_drop"
	case SiteIBSOverflow:
		return "fault/ibs_overflow"
	case SiteAbitAbort:
		return "fault/abit_abort"
	case SiteHWPCWrap:
		return "fault/hwpc_wrap"
	case SiteENOMEM:
		return "fault/mem_enomem"
	case SitePinned:
		return "fault/mem_pinned"
	case SiteSplitFail:
		return "fault/mem_splitfail"
	case SiteDevOverflow:
		return "fault/devprof_overflow"
	case SiteDevStale:
		return "fault/devprof_stale"
	case SiteCopyAbort:
		return "fault/mem_copyabort"
	case SiteShadowStale:
		return "fault/mem_shadowstale"
	default:
		return "fault/unknown"
	}
}

// Spec is one fault configuration: a probability in [0,1] per site.
// The zero value injects nothing.
type Spec struct {
	// Rates holds the per-site injection probability, indexed by Site.
	Rates [numSites]float64
}

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	for _, r := range s.Rates {
		if r != 0 {
			return false
		}
	}
	return true
}

// Validate reports out-of-range rates.
func (s Spec) Validate() error {
	for site, r := range s.Rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", Site(site), r)
		}
	}
	return nil
}

// String renders the spec in canonical grammar form (sites in Site
// order, zero rates omitted); ParseSpec(s.String()) round-trips.
func (s Spec) String() string {
	var parts []string
	for site, r := range s.Rates {
		if r != 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", Site(site), r))
		}
	}
	return strings.Join(parts, ",")
}

// specSites maps grammar keys to sites, built once from Site.String.
var specSites = func() map[string]Site {
	m := make(map[string]Site, numSites)
	for s := Site(0); s < numSites; s++ {
		m[s.String()] = s
	}
	return m
}()

// ParseSpec parses the -faults grammar: a comma-separated list of
// site=rate pairs, e.g. "ibs.drop=0.05,mem.enomem=0.2,abit.abort=0.1".
// Sites are the Site.String names; rates are floats in [0,1]. The
// shorthand "all=R" sets every site to R. An empty string is the zero
// spec. Repeated keys: last one wins.
func ParseSpec(text string) (Spec, error) {
	var spec Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return spec, nil
	}
	for _, field := range strings.Split(text, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: bad spec field %q (want site=rate)", field)
		}
		key = strings.TrimSpace(key)
		rate, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("fault: bad rate in %q: %v", field, err)
		}
		if rate < 0 || rate > 1 {
			return Spec{}, fmt.Errorf("fault: rate in %q outside [0,1]", field)
		}
		if key == "all" {
			for s := range spec.Rates {
				spec.Rates[s] = rate
			}
			continue
		}
		site, ok := specSites[key]
		if !ok {
			known := make([]string, 0, numSites)
			for name := range specSites {
				known = append(known, name)
			}
			sort.Strings(known)
			return Spec{}, fmt.Errorf("fault: unknown site %q (known: %s, all)", key, strings.Join(known, ", "))
		}
		spec.Rates[site] = rate
	}
	return spec, nil
}

// Plane is one run's fault-injection state. A nil *Plane is the
// disabled state: every decision method returns false at the cost of
// one pointer test, so injection sites are wired unconditionally. A
// Plane belongs to exactly one simulation run (like a
// telemetry.Tracer) and is not safe for concurrent use — parallel
// experiment cells each build a private plane from the same spec and
// seed, which is what makes -parallel 1 and -parallel 8 byte-identical.
type Plane struct {
	spec     Spec
	rng      [numSites]uint64
	injected [numSites]uint64
	draws    [numSites]uint64

	// Telemetry counters; nil (free no-ops) when telemetry is off.
	ctr [numSites]*telemetry.Counter
}

// New derives a plane from a spec and the run's seed. Each site's
// stream is splitmix64-seeded from (seed, site), so sites draw
// independently: adding a new injection site, or one mechanism drawing
// more often, never shifts another site's decision sequence.
func New(spec Spec, seed int64) *Plane {
	p := &Plane{spec: spec}
	for s := range p.rng {
		// Distinct nonzero state per site even for seed 0.
		p.rng[s] = splitmix64(uint64(seed) ^ (0xA076_1D64_78BD_642F * uint64(s+1)))
	}
	return p
}

// SetTracer attaches per-site injection counters (fault/*). Counting
// only — decisions are unaffected, and the counters are bumped at
// decision time so they need no sync pass.
func (p *Plane) SetTracer(t *telemetry.Tracer) {
	if p == nil {
		return
	}
	for s := Site(0); s < numSites; s++ {
		p.ctr[s] = t.Counter(s.counterName())
	}
}

// Enabled reports whether the plane can inject anything.
func (p *Plane) Enabled() bool { return p != nil && !p.spec.Zero() }

// Spec returns the plane's configuration (zero for nil).
func (p *Plane) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// Injected returns how many times a site has fired.
func (p *Plane) Injected(s Site) uint64 {
	if p == nil {
		return 0
	}
	return p.injected[s]
}

// Draws returns how many decisions a site has made (fired or not).
func (p *Plane) Draws(s Site) uint64 {
	if p == nil {
		return 0
	}
	return p.draws[s]
}

// Sites lists every injection site in fixed order, for attribution
// reports that walk the plane's counters.
func Sites() []Site {
	out := make([]Site, numSites)
	for s := range out {
		out[s] = Site(s)
	}
	return out
}

// TotalInjected sums injections across all sites.
func (p *Plane) TotalInjected() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for _, v := range p.injected {
		n += v
	}
	return n
}

// splitmix64 is the SplitMix64 state transition + output finalizer;
// the plane's only randomness. Package-local on purpose: math/rand's
// generators are banned here (tmplint faultrand) so the stream can
// never drift across Go releases.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// decide draws one uniform in [0,1) from the site's stream and fires
// with the site's configured probability. Zero-rate sites return
// false without touching the stream, which is what makes a zero-rate
// plane byte-identical to a nil one.
func (p *Plane) decide(s Site) bool {
	if p == nil {
		return false
	}
	rate := p.spec.Rates[s]
	if rate <= 0 {
		return false
	}
	p.draws[s]++
	p.rng[s] = splitmix64(p.rng[s])
	u := float64(p.rng[s]>>11) / (1 << 53)
	if u >= rate {
		return false
	}
	p.injected[s]++
	p.ctr[s].Add(1)
	return true
}

// uniform draws one extra uniform in [0,1) from a site's stream, for
// sites whose injections carry a magnitude (how far into the walk the
// abort lands). Only called after decide(s) fired, so zero-rate
// streams stay untouched.
func (p *Plane) uniform(s Site) float64 {
	p.rng[s] = splitmix64(p.rng[s])
	return float64(p.rng[s]>>11) / (1 << 53)
}

// DropIBSSample reports whether to drop the sample about to be
// delivered (consulted by ibs.Engine per delivered sample).
func (p *Plane) DropIBSSample() bool { return p.decide(SiteIBSDrop) }

// OverflowIBSDrain reports whether the drain batch about to be
// processed was lost to a buffer overflow (consulted per drain with a
// non-empty batch).
func (p *Plane) OverflowIBSDrain() bool { return p.decide(SiteIBSOverflow) }

// AbortAbitScan reports whether the A-bit walk starting now aborts
// partway; when it does, frac in (0,1) is the fraction of the walk
// completed before the abort.
func (p *Plane) AbortAbitScan() (frac float64, abort bool) {
	if !p.decide(SiteAbitAbort) {
		return 0, false
	}
	return p.uniform(SiteAbitAbort), true
}

// WrapHWPC reports whether a performance-counter read observes a
// wrapped value (consulted per gauge per window).
func (p *Plane) WrapHWPC() bool { return p.decide(SiteHWPCWrap) }

// FailAllocIn reports whether an AllocIn call fails with transient
// tier-full pressure (consulted by mem.PhysMem.AllocIn).
func (p *Plane) FailAllocIn() bool { return p.decide(SiteENOMEM) }

// PinPage reports whether the page about to migrate is transiently
// pinned (the EBUSY case; consulted by policy.Mover per migration).
func (p *Plane) PinPage() bool { return p.decide(SitePinned) }

// FailSplit reports whether a THP split fails (consulted by
// policy.Mover before splitting a huge mapping).
func (p *Plane) FailSplit() bool { return p.decide(SiteSplitFail) }

// OverflowDevCounters reports whether the device tracker's bounded
// counter table overflowed before this flush, losing the staged batch
// (consulted by devprof.Tracker per flush with staged observations).
func (p *Plane) OverflowDevCounters() bool { return p.decide(SiteDevOverflow) }

// StaleDevFlush reports whether this device-tracker flush reads stale
// data — nothing delivered, counts carried to the next flush
// (consulted by devprof.Tracker per flush with staged observations).
func (p *Plane) StaleDevFlush() bool { return p.decide(SiteDevStale) }

// DirtyCopy reports whether the page being copied by a transactional
// migration was written mid-copy, forcing the transaction to abort
// (consulted by policy.Mover at the verify-clean phase, once per
// transactional copy).
func (p *Plane) DirtyCopy() bool { return p.decide(SiteCopyAbort) }

// StaleShadow reports whether the shadow copy a re-demotion is about
// to reuse went stale under it (consulted by policy.Mover once per
// shadow-hit attempt; legacy, non-transactional migrations never
// consult it).
func (p *Plane) StaleShadow() bool { return p.decide(SiteShadowStale) }
