package fault

import (
	"strings"
	"testing"

	"tieredmem/internal/telemetry"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("ibs.drop=0.05, mem.enomem=0.2 ,abit.abort=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if got := spec.Rates[SiteIBSDrop]; got != 0.05 {
		t.Errorf("ibs.drop = %v, want 0.05", got)
	}
	if got := spec.Rates[SiteENOMEM]; got != 0.2 {
		t.Errorf("mem.enomem = %v, want 0.2", got)
	}
	if got := spec.Rates[SiteAbitAbort]; got != 1 {
		t.Errorf("abit.abort = %v, want 1", got)
	}
	if spec.Zero() {
		t.Error("non-empty spec reports Zero")
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseSpecAll(t *testing.T) {
	spec, err := ParseSpec("all=0.1,ibs.drop=0.5")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	for s := Site(0); s < numSites; s++ {
		want := 0.1
		if s == SiteIBSDrop {
			want = 0.5
		}
		if got := spec.Rates[s]; got != want {
			t.Errorf("%s = %v, want %v", s, got, want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"ibs.drop",         // no rate
		"ibs.drop=x",       // non-numeric
		"ibs.drop=1.5",     // out of range
		"ibs.drop=-0.1",    // out of range
		"no.such.site=0.1", // unknown site
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestParseSpecEmpty(t *testing.T) {
	spec, err := ParseSpec("  ")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if !spec.Zero() {
		t.Error("empty spec is not Zero")
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	spec, err := ParseSpec("ibs.drop=0.05,mem.pinned=0.25,hwpc.wrap=0.001")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	back, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if back != spec {
		t.Errorf("round trip changed spec: %v -> %v", spec, back)
	}
}

// drain pulls n decisions from one site and returns the fire pattern.
func drain(p *Plane, s Site, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if p.decide(s) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func TestSameSeedSameDecisions(t *testing.T) {
	spec, _ := ParseSpec("all=0.3")
	a := New(spec, 42)
	b := New(spec, 42)
	for s := Site(0); s < numSites; s++ {
		if pa, pb := drain(a, s, 200), drain(b, s, 200); pa != pb {
			t.Errorf("site %s: same seed diverged:\n%s\n%s", s, pa, pb)
		}
	}
	c := New(spec, 43)
	diff := false
	for s := Site(0); s < numSites; s++ {
		if drain(New(spec, 42), s, 200) != drain(c, s, 200) {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical decisions at every site")
	}
}

// TestSiteIndependence pins the per-site stream contract: draws at one
// site never shift another site's decision sequence.
func TestSiteIndependence(t *testing.T) {
	spec, _ := ParseSpec("all=0.3")
	pure := New(spec, 7)
	want := drain(pure, SitePinned, 100)

	mixed := New(spec, 7)
	drain(mixed, SiteIBSDrop, 1000) // heavy traffic on another site
	drain(mixed, SiteENOMEM, 333)
	if got := drain(mixed, SitePinned, 100); got != want {
		t.Errorf("pinned decisions shifted by other sites' draws:\nwant %s\ngot  %s", want, got)
	}
}

func TestZeroRateNeverFiresNeverDraws(t *testing.T) {
	p := New(Spec{}, 42)
	for s := Site(0); s < numSites; s++ {
		for i := 0; i < 100; i++ {
			if p.decide(s) {
				t.Fatalf("zero-rate site %s fired", s)
			}
		}
		if p.Draws(s) != 0 {
			t.Errorf("zero-rate site %s drew from its stream %d times", s, p.Draws(s))
		}
	}
	if p.Enabled() {
		t.Error("zero-spec plane reports Enabled")
	}
}

func TestNilPlaneSafe(t *testing.T) {
	var p *Plane
	if p.DropIBSSample() || p.OverflowIBSDrain() || p.WrapHWPC() ||
		p.FailAllocIn() || p.PinPage() || p.FailSplit() {
		t.Error("nil plane fired")
	}
	if _, abort := p.AbortAbitScan(); abort {
		t.Error("nil plane aborted a scan")
	}
	if p.Enabled() || p.TotalInjected() != 0 || p.Injected(SiteIBSDrop) != 0 {
		t.Error("nil plane reports activity")
	}
	p.SetTracer(telemetry.New()) // must not panic
}

func TestRatesRespected(t *testing.T) {
	spec, _ := ParseSpec("ibs.drop=1,mem.enomem=0")
	p := New(spec, 1)
	for i := 0; i < 50; i++ {
		if !p.DropIBSSample() {
			t.Fatal("rate-1 site did not fire")
		}
		if p.FailAllocIn() {
			t.Fatal("rate-0 site fired")
		}
	}
	// A mid-range rate fires roughly that often.
	spec2, _ := ParseSpec("mem.pinned=0.5")
	p2 := New(spec2, 9)
	fired := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if p2.PinPage() {
			fired++
		}
	}
	if fired < n/3 || fired > 2*n/3 {
		t.Errorf("rate-0.5 site fired %d/%d times", fired, n)
	}
}

func TestAbortFraction(t *testing.T) {
	spec, _ := ParseSpec("abit.abort=1")
	p := New(spec, 3)
	for i := 0; i < 100; i++ {
		frac, abort := p.AbortAbitScan()
		if !abort {
			t.Fatal("rate-1 abort did not fire")
		}
		if frac < 0 || frac >= 1 {
			t.Fatalf("abort fraction %v outside [0,1)", frac)
		}
	}
}

func TestCounters(t *testing.T) {
	spec, _ := ParseSpec("ibs.drop=1")
	p := New(spec, 5)
	tr := telemetry.New()
	p.SetTracer(tr)
	for i := 0; i < 7; i++ {
		p.DropIBSSample()
	}
	if got := tr.Registry().Counter("fault/ibs_drop").Value(); got != 7 {
		t.Errorf("fault/ibs_drop = %d, want 7", got)
	}
	if p.Injected(SiteIBSDrop) != 7 || p.TotalInjected() != 7 {
		t.Errorf("Injected = %d, Total = %d, want 7", p.Injected(SiteIBSDrop), p.TotalInjected())
	}
}
