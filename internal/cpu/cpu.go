// Package cpu is the simulated processor: cores that execute memory
// references through TLB -> page walk -> cache hierarchy -> tiered
// memory, with hardware-faithful A/D-bit semantics, a per-core PMU,
// and retirement hooks that the IBS/PEBS sampling engine attaches to.
// All timing is virtual nanoseconds; nothing reads the wall clock.
package cpu

import (
	"fmt"

	"tieredmem/internal/cache"
	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/pmu"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

// Latency model (virtual ns). Memory latencies come from the tier
// specs; everything on-chip is fixed here.
const (
	LatBaseOp   = 1  // pipeline cost of any retired memory op
	LatL1       = 1  // L1D hit
	LatL2       = 5  // L2 hit
	LatLLC      = 14 // LLC hit
	LatL2TLB    = 2  // translation served by the STLB
	LatPageWalk = 30 // hardware page-table walk (PTW caches assumed warm)
	// LatMinorFault is the kernel cost of a first-touch page fault
	// (allocate + map).
	LatMinorFault = 2000
	// LatHugeFault is the kernel cost of a first-touch THP fault
	// (allocate + zero a 2 MiB region).
	LatHugeFault = 30000
	// LatIPI is the cost of one inter-processor interrupt, the unit
	// of TLB-shootdown expense the paper's §III-B4 optimization
	// avoids.
	LatIPI = 4000
	// LatCtxSwitch is the direct wall-clock cost of a context switch.
	LatCtxSwitch = 3000
)

// RetireObserver is notified after every retired memory reference.
// Implementations return extra virtual time to charge the executing
// core — that is how profiling overhead becomes visible in end-to-end
// run time. ops is the number of micro-ops the reference represents
// (one memory op plus its surrounding ALU ops). The Outcome pointer is
// only valid for the duration of the call.
type RetireObserver interface {
	ObserveRetire(o *trace.Outcome, ops int) int64
}

// FaultHandler allocates a frame for a faulting (pid, vpn). The
// default handler implements first-come-first-allocate into the fast
// tier with spill, the paper's baseline placement.
type FaultHandler func(pid int, vpn mem.VPN, write bool) (mem.PFN, error)

// HugeHint reports whether a faulting (pid, vpn) belongs to a region
// the kernel would back with transparent huge pages (HPC heaps in the
// evaluation). When it returns true the machine attempts a 2 MiB
// allocation and mapping, falling back to a base page when no
// contiguous run exists — THP's own fallback.
type HugeHint func(pid int, vpn mem.VPN) bool

// PoisonHandler is invoked when a page walk hits a PTE with the
// BadgerTrap reserved bit set. It returns the extra latency to inject
// and whether to unpoison the PTE (BadgerTrap's fault handler
// unpoisons, installs the translation, and repoisons later; the emul
// package models the latency-injection variant). The handler may be
// nil, in which case poisoned PTEs behave like normal present PTEs.
type PoisonHandler func(o *trace.Outcome, pd *mem.PageDescriptor) (extra int64, unpoison bool)

// HintFaultHandler is invoked when a page walk hits a PTE carrying the
// AutoNUMA PROT_NONE hint bit. The handler returns the fault-handling
// latency to inject; the walker always clears the hint (NUMA balancing
// restores the mapping once the faulting task is identified).
type HintFaultHandler func(o *trace.Outcome, pd *mem.PageDescriptor) int64

// Core is one simulated CPU core.
type Core struct {
	ID    int
	TLB   *tlb.TLB
	Cache *cache.Hierarchy
	PMU   *pmu.PMU

	clock      int64
	retired    uint64
	ops        uint64
	nextSwitch int64 // next context-switch time; 0 disables
	ctxPeriod  int64
	machine    *Machine
	outcome    trace.Outcome // reused across Execute calls

	// CtxSwitches counts context switches taken on this core.
	CtxSwitches uint64
}

// Now returns the core's virtual clock in ns.
func (c *Core) Now() int64 { return c.clock }

// Retired returns the count of retired memory references.
func (c *Core) Retired() uint64 { return c.retired }

// Ops returns the count of retired micro-ops.
func (c *Core) Ops() uint64 { return c.ops }

// AdvanceClock charges extra virtual time to the core (used by
// software components running on it: profiler daemons, page movers).
func (c *Core) AdvanceClock(ns int64) {
	if ns < 0 {
		panic("cpu: negative clock advance")
	}
	c.clock += ns
}

// Config assembles a Machine.
type Config struct {
	Cores     int
	OpsPerRef int // micro-ops represented by one memory reference (mem op + ALU ops)
	L1TLB     tlb.Config
	L2TLB     tlb.Config
	L1D       cache.Config
	L2        cache.Config
	LLC       cache.Config
	// PrefetchDegree of 0 disables the prefetcher.
	PrefetchDegree int
	PMURegisters   int
	PMUQuantum     int64
	// SoftCostDiv divides every software/OS cost (fault handling,
	// IPIs, context switches) to compensate for time compression:
	// scaled runs compress one testbed second into ScaledSecond of
	// virtual time, so wall-clock OS costs must compress by the same
	// factor to preserve cost-per-epoch ratios. 0 or 1 means real
	// time. Hardware latencies (caches, memory) never scale — they
	// are per-access, and the access count is what compression
	// reduces.
	SoftCostDiv int64
	// CtxSwitchNS is the per-core context-switch period in virtual
	// ns; each switch flushes the core's TLB (no PCID), which is what
	// eventually re-arms A bits cleared without a shootdown — the
	// kernel's own justification for skipping the flush
	// (ptep_clear_flush_young: "it will eventually be flushed by a
	// context switch ... anyway"). 0 disables switching (an ablation
	// arm: it exposes how A-bit profiling starves on TLB-resident hot
	// sets).
	CtxSwitchNS int64
}

// DefaultConfig models a scaled-down six-core Ryzen-3600X-class part.
func DefaultConfig() Config {
	return Config{
		Cores:          6,
		OpsPerRef:      3,
		L1TLB:          tlb.DefaultL1,
		L2TLB:          tlb.DefaultL2,
		L1D:            cache.DefaultL1,
		L2:             cache.DefaultL2,
		LLC:            cache.DefaultLLC,
		PrefetchDegree: 2,
		PMURegisters:   6,
		PMUQuantum:     1_000_000,
		CtxSwitchNS:    10_000, // 10 us virtual ≙ 10 ms real at 1000x compression
	}
}

// Machine is the whole simulated system: cores, shared LLC, physical
// memory, and per-process page tables.
type Machine struct {
	Phys  *mem.PhysMem
	LLC   *cache.SharedLLC
	cores []*Core

	softDiv int64

	tables    map[int]*pagetable.Table
	coreOf    map[int]int // pid -> core index
	nextCore  int
	opsPerRef int

	fault     FaultHandler
	hugeHint  HugeHint
	poison    PoisonHandler
	hintFault HintFaultHandler
	latAdjust func(coreID int, tier mem.TierID, base int64) int64
	observers []RetireObserver

	// MinorFaults counts demand (first-touch) page faults.
	MinorFaults uint64
	// HugeFaults counts THP-backed demand faults.
	HugeFaults uint64
	// PoisonFaults counts BadgerTrap protection faults taken.
	PoisonFaults uint64
	// HintFaults counts AutoNUMA PROT_NONE faults taken.
	HintFaults uint64
}

// NewMachine builds the system. tiers describes physical memory.
func NewMachine(cfg Config, tiers []mem.TierSpec) (*Machine, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cpu: core count %d must be positive", cfg.Cores)
	}
	if cfg.OpsPerRef <= 0 {
		cfg.OpsPerRef = 1
	}
	phys, err := mem.NewPhysMem(tiers)
	if err != nil {
		return nil, err
	}
	llc, err := cache.NewSharedLLC(cfg.LLC)
	if err != nil {
		return nil, err
	}
	softDiv := cfg.SoftCostDiv
	if softDiv < 1 {
		softDiv = 1
	}
	m := &Machine{
		Phys:      phys,
		LLC:       llc,
		tables:    make(map[int]*pagetable.Table),
		coreOf:    make(map[int]int),
		opsPerRef: cfg.OpsPerRef,
		softDiv:   softDiv,
	}
	m.fault = m.defaultFault
	for i := 0; i < cfg.Cores; i++ {
		var pf *cache.Prefetcher
		if cfg.PrefetchDegree > 0 {
			pf = cache.NewPrefetcher(1024, cfg.PrefetchDegree)
		}
		hier, err := cache.NewHierarchy(cfg.L1D, cfg.L2, llc, pf)
		if err != nil {
			return nil, err
		}
		t, err := tlb.New(cfg.L1TLB, cfg.L2TLB)
		if err != nil {
			return nil, err
		}
		core := &Core{
			ID:        i,
			TLB:       t,
			Cache:     hier,
			PMU:       pmu.New(cfg.PMURegisters, cfg.PMUQuantum),
			machine:   m,
			ctxPeriod: cfg.CtxSwitchNS,
		}
		if cfg.CtxSwitchNS > 0 {
			// Stagger switches across cores so they do not align.
			core.nextSwitch = cfg.CtxSwitchNS + int64(i)*cfg.CtxSwitchNS/int64(cfg.Cores)
		}
		m.cores = append(m.cores, core)
	}
	return m, nil
}

// Cores returns the machine's cores.
func (m *Machine) Cores() []*Core { return m.cores }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// OpsPerRef returns how many micro-ops one reference represents.
func (m *Machine) OpsPerRef() int { return m.opsPerRef }

// SoftCost compresses a wall-clock software cost into scaled virtual
// time (minimum 1 ns so no cost fully vanishes).
func (m *Machine) SoftCost(ns int64) int64 {
	scaled := ns / m.softDiv
	if scaled < 1 && ns > 0 {
		scaled = 1
	}
	return scaled
}

// Now returns machine-wide virtual time: the most advanced core clock
// (cores execute in parallel; the slowest path defines elapsed time,
// and the round-robin driver keeps clocks within one access of each
// other).
func (m *Machine) Now() int64 {
	var max int64
	for _, c := range m.cores {
		if c.clock > max {
			max = c.clock
		}
	}
	return max
}

// SetFaultHandler overrides demand-fault placement (nil restores the
// default first-touch handler).
func (m *Machine) SetFaultHandler(h FaultHandler) {
	if h == nil {
		m.fault = m.defaultFault
		return
	}
	m.fault = h
}

// SetPoisonHandler installs the BadgerTrap protection-fault handler.
func (m *Machine) SetPoisonHandler(h PoisonHandler) { m.poison = h }

// SetHugeHint installs the THP-region predicate.
func (m *Machine) SetHugeHint(h HugeHint) { m.hugeHint = h }

// SetHintFaultHandler installs the AutoNUMA hint-fault handler.
func (m *Machine) SetHintFaultHandler(h HintFaultHandler) { m.hintFault = h }

// SetLatencyAdjuster installs a per-access memory-latency hook: it
// receives the executing core, the tier serving the access, and the
// tier's base latency, and returns the adjusted value. The numa
// package uses it to charge remote-socket DRAM accesses their
// interconnect premium.
func (m *Machine) SetLatencyAdjuster(f func(coreID int, tier mem.TierID, base int64) int64) {
	m.latAdjust = f
}

// AddObserver attaches a retirement observer (e.g. an IBS engine).
func (m *Machine) AddObserver(o RetireObserver) {
	m.observers = append(m.observers, o)
}

// Table returns (creating on demand) the page table of a process.
func (m *Machine) Table(pid int) *pagetable.Table {
	t, ok := m.tables[pid]
	if !ok {
		t = pagetable.New(pid)
		m.tables[pid] = t
	}
	return t
}

// Tables returns all process page tables, keyed by PID.
func (m *Machine) Tables() map[int]*pagetable.Table { return m.tables }

// CoreFor returns the core that executes a PID's references,
// assigning one round-robin on first sight.
func (m *Machine) CoreFor(pid int) *Core {
	idx, ok := m.coreOf[pid]
	if !ok {
		idx = m.nextCore % len(m.cores)
		m.coreOf[pid] = idx
		m.nextCore++
	}
	return m.cores[idx]
}

// defaultFault implements first-come-first-allocate: fast tier first,
// spilling to slower tiers when full.
func (m *Machine) defaultFault(pid int, vpn mem.VPN, write bool) (mem.PFN, error) {
	return m.Phys.Alloc(mem.FastTier, pid, vpn)
}

// FlushAllTLBs invalidates every core's TLB and returns the IPI cost a
// caller should charge (one IPI per remote core). It models a full
// shootdown as used by the page mover at epoch horizons and by the
// A-bit driver when its optional shootdown mode is on.
func (m *Machine) FlushAllTLBs() int64 {
	for _, c := range m.cores {
		c.TLB.FlushAll()
	}
	return m.SoftCost(int64(len(m.cores)-1) * LatIPI)
}

// FlushPage invalidates one translation on every core (page-granular
// shootdown) and returns the IPI cost.
func (m *Machine) FlushPage(vpn mem.VPN) int64 {
	for _, c := range m.cores {
		c.TLB.FlushPage(vpn)
	}
	return m.SoftCost(int64(len(m.cores)-1) * LatIPI)
}

// Execute runs one memory reference to completion on the core that
// owns its PID and returns the outcome. The returned pointer is reused
// by the next Execute call on the same core.
func (m *Machine) Execute(r trace.Ref) (*trace.Outcome, error) {
	core := m.CoreFor(r.PID)
	return core.execute(r)
}

// execute performs translation, cache access, accounting, and
// observer notification for one reference.
func (c *Core) execute(r trace.Ref) (*trace.Outcome, error) {
	m := c.machine
	o := &c.outcome
	*o = trace.Outcome{Ref: r, CPU: c.ID}
	isStore := r.Kind == trace.Store
	lat := int64(LatBaseOp)

	// Periodic context switch: CR3 reload flushes this core's TLB,
	// eventually re-arming A bits that the scanner cleared without a
	// shootdown.
	if c.nextSwitch > 0 && c.clock >= c.nextSwitch {
		for c.nextSwitch <= c.clock {
			c.nextSwitch += c.ctxPeriod
		}
		c.TLB.FlushAll()
		c.CtxSwitches++
		lat += m.SoftCost(LatCtxSwitch)
	}

	vpn := mem.VPNOf(r.VAddr)
	table := m.Table(r.PID)

	var pfn mem.PFN
	entry, tlbLevel := c.TLB.Lookup(vpn)
	if tlbLevel != tlb.HitNone {
		if tlbLevel == tlb.HitL2 {
			lat += LatL2TLB
		}
		pfn = entry.PFN
		if isStore && !entry.Dirty {
			// x86 semantics: a store through a clean translation
			// forces a walk to set the PTE D bit even on a TLB hit
			// (the PTW sets A as well).
			lat += LatPageWalk
			c.PMU.Add(pmu.EvPageWalkCycles, LatPageWalk)
			pte, huge := table.Resolve(vpn)
			if pte == nil {
				return nil, fmt.Errorf("cpu: TLB maps unmapped page pid=%d vpn=%#x", r.PID, uint64(vpn))
			}
			pfn = leafFrame(pte, huge, vpn)
			extra := c.walkFixups(o, pte, pfn, true)
			lat += extra
			c.TLB.MarkDirty(vpn)
			o.PageWalk = true
		}
	} else {
		// Full TLB miss: hardware page walk.
		o.TLBMiss = true
		o.PageWalk = true
		c.PMU.Add(pmu.EvDTLBMiss, 1)
		c.PMU.Add(pmu.EvSTLBMiss, 1)
		lat += LatPageWalk
		c.PMU.Add(pmu.EvPageWalkCycles, LatPageWalk)

		pte, huge := table.Resolve(vpn)
		if pte == nil {
			// Demand fault: first touch of the page.
			faultLat, err := m.handleFault(table, r.PID, vpn, isStore)
			if err != nil {
				return nil, fmt.Errorf("cpu: pid %d fault at vpn %#x: %w", r.PID, uint64(vpn), err)
			}
			lat += faultLat
			pte, huge = table.Resolve(vpn)
			if pte == nil {
				return nil, fmt.Errorf("cpu: pid %d fault at vpn %#x left page unmapped", r.PID, uint64(vpn))
			}
		}
		pfn = leafFrame(pte, huge, vpn)
		extra := c.walkFixups(o, pte, pfn, isStore)
		lat += extra
		// Hardware TLBs fracture huge translations into base-page
		// entries when the huge arrays are full; we model base-page
		// entries throughout — the PMD A/D bits are what matter.
		c.TLB.Insert(tlb.Entry{
			VPN:      vpn,
			PFN:      pfn,
			Writable: pte.Writable(),
			Dirty:    pte.Dirty(),
		})
	}

	o.PAddr = pfn.PAddrOf() | (r.VAddr & mem.PageMask)

	// Cache hierarchy access with the physical address.
	res := c.Cache.Access(o.PAddr, r.IP, isStore)
	o.PrefetchHit = res.PrefetchHit
	pd := m.Phys.Page(pfn)
	switch res.Level {
	case cache.HitL1:
		lat += LatL1
		o.Source = trace.SrcL1
	case cache.HitL2:
		lat += LatL2
		o.Source = trace.SrcL2
		c.PMU.Add(pmu.EvL1Miss, 1)
	case cache.HitLLC:
		lat += LatLLC
		o.Source = trace.SrcLLC
		c.PMU.Add(pmu.EvL1Miss, 1)
		c.PMU.Add(pmu.EvL2Miss, 1)
	case cache.MissAll:
		spec := m.Phys.TierSpecOf(pd.Tier)
		memLat := spec.ReadLatency
		if isStore {
			memLat = spec.WriteLatency
		}
		if m.latAdjust != nil {
			memLat = m.latAdjust(c.ID, pd.Tier, memLat)
		}
		lat += memLat
		if pd.Tier == mem.FastTier {
			o.Source = trace.SrcTier1
		} else {
			o.Source = trace.SrcTier2
		}
		c.PMU.Add(pmu.EvL1Miss, 1)
		c.PMU.Add(pmu.EvL2Miss, 1)
		c.PMU.Add(pmu.EvLLCMiss, 1)
		// Ground truth for hitrate/Oracle: a demand access served
		// from memory.
		if pd.TrueEpoch != ^uint32(0) {
			pd.TrueEpoch++
		}
	}

	if isStore {
		c.PMU.Add(pmu.EvRetiredStores, 1)
	} else {
		c.PMU.Add(pmu.EvRetiredLoads, 1)
	}
	c.PMU.Add(pmu.EvRetiredOps, uint64(m.opsPerRef))

	c.retired++
	c.ops += uint64(m.opsPerRef)
	o.Latency = lat
	c.clock += lat
	o.Now = c.clock
	c.PMU.Tick(c.clock)

	// Retirement observers (IBS/PEBS engines) may add overhead.
	for _, obs := range m.observers {
		if extra := obs.ObserveRetire(o, m.opsPerRef); extra > 0 {
			c.clock += extra
			o.Now = c.clock
		}
	}
	return o, nil
}

// leafFrame computes the frame a leaf PTE maps for vpn, handling huge
// leaves.
func leafFrame(pte *pagetable.PTE, huge bool, vpn mem.VPN) mem.PFN {
	if huge {
		return pte.PFN() + mem.PFN(uint64(vpn)%mem.HugePages)
	}
	return pte.PFN()
}

// handleFault services a demand fault: THP-backed regions get a 2 MiB
// allocation and mapping (falling back to a base page when no
// contiguous run exists), everything else a base page via the fault
// handler.
func (m *Machine) handleFault(table *pagetable.Table, pid int, vpn mem.VPN, write bool) (int64, error) {
	base := vpn - mem.VPN(uint64(vpn)%mem.HugePages)
	if m.hugeHint != nil && m.hugeHint(pid, vpn) && table.CanMapHuge(base) {
		pfnBase, err := m.Phys.AllocHuge(mem.FastTier, pid, base)
		if err == nil {
			table.MapHuge(base, pfnBase, true)
			m.MinorFaults++
			m.HugeFaults++
			return m.SoftCost(LatHugeFault), nil
		}
		// THP falls back to a base page on any huge-allocation
		// failure (fragmentation or memory pressure); a genuine OOM
		// will surface from the base-page allocator below.
	}
	newPFN, err := m.fault(pid, vpn, write)
	if err != nil {
		return 0, err
	}
	table.Map(vpn, newPFN, true)
	m.MinorFaults++
	return m.SoftCost(LatMinorFault), nil
}

// walkFixups applies the PTW's architectural side effects for a walk
// that reached a present leaf PTE: poison check, A-bit set, D-bit set
// on stores. pfn is the exact frame the access targets (for poison
// latency injection on the right descriptor). It returns extra latency
// from poison handling.
func (c *Core) walkFixups(o *trace.Outcome, pte *pagetable.PTE, pfn mem.PFN, setDirty bool) int64 {
	m := c.machine
	var extra int64
	if pte.ProtNone() {
		m.HintFaults++
		if m.hintFault != nil {
			extra += m.hintFault(o, m.Phys.Page(pfn))
		}
		*pte &^= pagetable.BitProtNone
	}
	if pte.Poisoned() {
		m.PoisonFaults++
		if m.poison != nil {
			pd := m.Phys.Page(pfn)
			add, unpoison := m.poison(o, pd)
			extra += add
			if unpoison {
				*pte &^= pagetable.BitPoison
			}
		}
	}
	// The hardware walker sets A on every walk that installs a
	// translation, and D when the access is a store.
	*pte |= pagetable.BitAccessed
	if setDirty {
		if !pte.Dirty() {
			// A 0->1 D-bit transition: the event PML logs, and any
			// shadow copy of the page goes stale.
			o.DirtySet = true
			m.Phys.NoteWrite(pfn)
		}
		*pte |= pagetable.BitDirty
	}
	return extra
}
