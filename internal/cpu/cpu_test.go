package cpu

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/mem"
	"tieredmem/internal/pmu"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

// testConfig is a small deterministic machine without context
// switches (enabled per test when needed).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	return cfg
}

func testMachine(t *testing.T, fastFrames, slowFrames int) *Machine {
	t.Helper()
	m, err := NewMachine(testConfig(), mem.DefaultTiers(fastFrames, slowFrames))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func load(pid int, vaddr uint64) trace.Ref {
	return trace.Ref{PID: pid, IP: 0x400000, VAddr: vaddr, Kind: trace.Load}
}

func store(pid int, vaddr uint64) trace.Ref {
	return trace.Ref{PID: pid, IP: 0x400010, VAddr: vaddr, Kind: trace.Store}
}

func TestFirstTouchFaultsAndMaps(t *testing.T) {
	m := testMachine(t, 16, 16)
	o, err := m.Execute(load(1, 0x5000))
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if m.MinorFaults != 1 {
		t.Errorf("MinorFaults = %d, want 1", m.MinorFaults)
	}
	if !o.TLBMiss || !o.PageWalk {
		t.Errorf("first touch should miss TLB and walk: %+v", o)
	}
	pte, huge, ok := m.Table(1).Lookup(mem.VPNOf(0x5000))
	if !ok || huge {
		t.Fatalf("page not mapped after fault")
	}
	if !pte.Accessed() {
		t.Errorf("PTW did not set A bit on fault path")
	}
	if pte.Dirty() {
		t.Errorf("load set D bit")
	}
	if o.PAddr&mem.PageMask != 0x5000&mem.PageMask {
		t.Errorf("page offset not preserved: %#x", o.PAddr)
	}
}

func TestSecondAccessHitsTLB(t *testing.T) {
	m := testMachine(t, 16, 16)
	m.Execute(load(1, 0x5000))
	o, _ := m.Execute(load(1, 0x5008))
	if o.TLBMiss {
		t.Errorf("second access to same page missed TLB")
	}
	if m.MinorFaults != 1 {
		t.Errorf("MinorFaults = %d, want 1", m.MinorFaults)
	}
}

func TestStoreSetsDirtyEvenOnTLBHit(t *testing.T) {
	m := testMachine(t, 16, 16)
	m.Execute(load(1, 0x7000)) // map + TLB fill, D clear
	pte := m.Table(1).PTEPtr(mem.VPNOf(0x7000))
	if pte.Dirty() {
		t.Fatalf("precondition: D set by load")
	}
	o, _ := m.Execute(store(1, 0x7000))
	if o.TLBMiss {
		t.Fatalf("store should have hit the TLB")
	}
	if !o.PageWalk {
		t.Errorf("store through clean TLB entry must walk to set D (x86 semantics)")
	}
	if !pte.Dirty() {
		t.Errorf("D bit not set in PTE")
	}
	// Second store: the TLB entry is dirty now; no more walks.
	o2, _ := m.Execute(store(1, 0x7000))
	if o2.PageWalk {
		t.Errorf("second store walked despite dirty TLB entry")
	}
}

func TestAbitStaleUntilTLBEviction(t *testing.T) {
	// The paper's §III-B4 artifact: clearing A without a shootdown
	// delays the next A-bit set while the translation stays cached.
	m := testMachine(t, 16, 16)
	m.Execute(load(1, 0x9000))
	pte := m.Table(1).PTEPtr(mem.VPNOf(0x9000))
	*pte &^= 1 << 5 // clear A (what the scanner does), no flush
	m.Execute(load(1, 0x9000))
	if pte.Accessed() {
		t.Errorf("A bit set despite TLB-resident translation (no walk happened)")
	}
	// After an explicit flush the next access walks and re-sets A.
	m.FlushAllTLBs()
	m.Execute(load(1, 0x9000))
	if !pte.Accessed() {
		t.Errorf("A bit not re-set after TLB flush")
	}
}

func TestContextSwitchFlushesTLB(t *testing.T) {
	cfg := testConfig()
	cfg.CtxSwitchNS = 500
	m, err := NewMachine(cfg, mem.DefaultTiers(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	m.Execute(load(1, 0x9000))
	pte := m.Table(1).PTEPtr(mem.VPNOf(0x9000))
	*pte &^= 1 << 5
	// Keep the core busy past several switch periods; the periodic
	// flush must eventually force a re-walk that re-sets A.
	for i := 0; i < 200 && !pte.Accessed(); i++ {
		m.Execute(load(1, 0x9000))
	}
	if !pte.Accessed() {
		t.Errorf("context switches never re-armed the A bit")
	}
	if m.CoreFor(1).CtxSwitches == 0 {
		t.Errorf("no context switches recorded")
	}
}

func TestPIDToCoreAffinity(t *testing.T) {
	m := testMachine(t, 32, 32)
	c1 := m.CoreFor(10)
	c2 := m.CoreFor(11)
	if c1 == c2 {
		t.Errorf("two PIDs on a 2-core machine share a core immediately")
	}
	if m.CoreFor(10) != c1 {
		t.Errorf("PID 10 moved cores")
	}
	if m.CoreFor(12) != c1 {
		t.Errorf("third PID should wrap to core 0")
	}
}

func TestClockAdvancesMonotonically(t *testing.T) {
	m := testMachine(t, 64, 64)
	var last int64
	for i := 0; i < 100; i++ {
		o, err := m.Execute(load(1, uint64(i)*4096))
		if err != nil {
			t.Fatal(err)
		}
		if o.Now <= last {
			t.Fatalf("clock not monotone: %d after %d", o.Now, last)
		}
		last = o.Now
	}
}

func TestMemoryAccessChargesTierLatency(t *testing.T) {
	m := testMachine(t, 16, 16)
	o, _ := m.Execute(load(1, 0x1000))
	if o.Source != trace.SrcTier1 {
		t.Fatalf("cold access source = %v, want tier1", o.Source)
	}
	// Latency must include the fast tier's read latency (80) plus
	// fault and walk costs.
	if o.Latency < 80 {
		t.Errorf("latency %d below DRAM read latency", o.Latency)
	}
}

func TestSlowTierLatencyHigher(t *testing.T) {
	m := testMachine(t, 1, 64) // fast tier: one frame
	m.Execute(load(1, 0x0))    // takes the only fast frame
	o1, _ := m.Execute(load(1, 0x100000))
	if o1.Source != trace.SrcTier2 {
		t.Fatalf("spilled page source = %v, want tier2", o1.Source)
	}
	// Re-access after flushing caches is hard; instead compare fresh
	// misses: slow read (320) must exceed fast read (80).
	if o1.Latency <= 80 {
		t.Errorf("tier2 access latency %d not above DRAM", o1.Latency)
	}
}

func TestGroundTruthCountsMemoryAccessesOnly(t *testing.T) {
	m := testMachine(t, 16, 16)
	m.Execute(load(1, 0x3000))
	pd := m.Phys.PhysToPage(mustFrame(t, m, 1, 0x3000).PAddrOf())
	if pd.TrueEpoch != 1 {
		t.Fatalf("TrueEpoch = %d after cold miss, want 1", pd.TrueEpoch)
	}
	m.Execute(load(1, 0x3000)) // L1 hit: not a memory access
	if pd.TrueEpoch != 1 {
		t.Errorf("TrueEpoch = %d after cache hit, want still 1", pd.TrueEpoch)
	}
}

func mustFrame(t *testing.T, m *Machine, pid int, vaddr uint64) mem.PFN {
	t.Helper()
	pfn, ok := m.Table(pid).Frame(mem.VPNOf(vaddr))
	if !ok {
		t.Fatalf("page %#x not mapped", vaddr)
	}
	return pfn
}

func TestHugeFaultMapsChunk(t *testing.T) {
	cfg := testConfig()
	m, err := NewMachine(cfg, mem.DefaultTiers(2*mem.HugePages, mem.HugePages))
	if err != nil {
		t.Fatal(err)
	}
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	o, err := m.Execute(load(1, 0x0))
	if err != nil {
		t.Fatal(err)
	}
	if m.HugeFaults != 1 {
		t.Fatalf("HugeFaults = %d, want 1", m.HugeFaults)
	}
	if m.Table(1).HugeLeaves() != 1 {
		t.Errorf("no huge leaf mapped")
	}
	// Another page in the same chunk: no new fault.
	m.Execute(load(1, 511*4096))
	if m.MinorFaults != 1 {
		t.Errorf("MinorFaults = %d, want 1 (chunk already mapped)", m.MinorFaults)
	}
	_ = o
}

func TestHugeFallbackWhenNoContiguous(t *testing.T) {
	cfg := testConfig()
	// Fast tier big enough in frames but AllocHuge needs an aligned
	// free run; tiny tiers guarantee failure.
	m, err := NewMachine(cfg, mem.DefaultTiers(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	if _, err := m.Execute(load(1, 0x0)); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if m.HugeFaults != 0 {
		t.Errorf("huge fault succeeded in a 64-frame tier")
	}
	if m.MinorFaults != 1 {
		t.Errorf("THP fallback did not take a base-page fault")
	}
	if m.Table(1).Mapped() != 1 {
		t.Errorf("fallback did not map a base page")
	}
}

func TestPoisonHandlerInvoked(t *testing.T) {
	m := testMachine(t, 16, 16)
	m.Execute(load(1, 0x2000))
	var handled int
	m.SetPoisonHandler(func(o *trace.Outcome, pd *mem.PageDescriptor) (int64, bool) {
		handled++
		return 12345, true
	})
	m.Table(1).SetPoison(mem.VPNOf(0x2000), true)
	m.FlushAllTLBs() // force the next access to walk
	o, _ := m.Execute(load(1, 0x2000))
	if handled != 1 || m.PoisonFaults != 1 {
		t.Fatalf("poison handler calls = %d, faults = %d", handled, m.PoisonFaults)
	}
	if o.Latency < 12345 {
		t.Errorf("injected latency not charged: %d", o.Latency)
	}
	// Handler unpoisoned: next walk is clean.
	m.FlushAllTLBs()
	m.Execute(load(1, 0x2000))
	if handled != 1 {
		t.Errorf("PTE not unpoisoned by handler")
	}
}

func TestPMUCountsEvents(t *testing.T) {
	m := testMachine(t, 64, 64)
	c := m.CoreFor(1)
	for _, e := range []pmu.Event{pmu.EvRetiredLoads, pmu.EvLLCMiss, pmu.EvDTLBMiss} {
		c.PMU.Track(e)
	}
	for i := 0; i < 32; i++ {
		m.Execute(load(1, uint64(i)*4096))
	}
	if c.PMU.Raw(pmu.EvRetiredLoads) != 32 {
		t.Errorf("retired loads = %d, want 32", c.PMU.Raw(pmu.EvRetiredLoads))
	}
	if c.PMU.Raw(pmu.EvLLCMiss) != 32 {
		t.Errorf("LLC misses = %d, want 32 (all cold)", c.PMU.Raw(pmu.EvLLCMiss))
	}
	if c.PMU.Raw(pmu.EvDTLBMiss) != 32 {
		t.Errorf("dTLB misses = %d, want 32 (all cold)", c.PMU.Raw(pmu.EvDTLBMiss))
	}
}

func TestRetireObserverOverheadCharged(t *testing.T) {
	m := testMachine(t, 16, 16)
	m.AddObserver(observerFunc(func(o *trace.Outcome, ops int) int64 { return 1000 }))
	before := m.CoreFor(1).Now()
	o, _ := m.Execute(load(1, 0x1000))
	if o.Now-before < 1000 {
		t.Errorf("observer overhead not charged to the core clock")
	}
}

type observerFunc func(o *trace.Outcome, ops int) int64

func (f observerFunc) ObserveRetire(o *trace.Outcome, ops int) int64 { return f(o, ops) }

func TestSoftCostScaling(t *testing.T) {
	cfg := testConfig()
	cfg.SoftCostDiv = 1000
	m, err := NewMachine(cfg, mem.DefaultTiers(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SoftCost(2000); got != 2 {
		t.Errorf("SoftCost(2000) = %d, want 2", got)
	}
	if got := m.SoftCost(1); got != 1 {
		t.Errorf("SoftCost(1) = %d, want floor of 1", got)
	}
	if got := m.SoftCost(0); got != 0 {
		t.Errorf("SoftCost(0) = %d, want 0", got)
	}
}

func TestOutOfMemoryErrorSurfaces(t *testing.T) {
	m := testMachine(t, 1, 1)
	m.Execute(load(1, 0x0000))
	m.Execute(load(1, 0x1000))
	if _, err := m.Execute(load(1, 0x2000)); err == nil {
		t.Errorf("third page on a 2-frame machine did not error")
	}
}

func TestMachineNowIsMaxCoreClock(t *testing.T) {
	m := testMachine(t, 64, 64)
	m.Execute(load(1, 0x1000)) // core 0
	m.Execute(load(2, 0x1000)) // core 1
	m.Core(0).AdvanceClock(1_000_000)
	if m.Now() != m.Core(0).Now() {
		t.Errorf("Now() = %d, want core 0's %d", m.Now(), m.Core(0).Now())
	}
}

func TestHintAndPoisonBothFire(t *testing.T) {
	m := testMachine(t, 16, 16)
	m.Execute(load(1, 0x4000))
	var hints, poisons int
	m.SetHintFaultHandler(func(o *trace.Outcome, pd *mem.PageDescriptor) int64 {
		hints++
		return 100
	})
	m.SetPoisonHandler(func(o *trace.Outcome, pd *mem.PageDescriptor) (int64, bool) {
		poisons++
		return 200, true
	})
	tb := m.Table(1)
	tb.SetProtNone(mem.VPNOf(0x4000), true)
	tb.SetPoison(mem.VPNOf(0x4000), true)
	m.FlushAllTLBs()
	o, err := m.Execute(load(1, 0x4000))
	if err != nil {
		t.Fatal(err)
	}
	if hints != 1 || poisons != 1 {
		t.Errorf("handlers fired %d/%d, want 1/1", hints, poisons)
	}
	if o.Latency < 300 {
		t.Errorf("both handler latencies not charged: %d", o.Latency)
	}
	pte, _ := tb.Resolve(mem.VPNOf(0x4000))
	if pte.ProtNone() {
		t.Errorf("hint bit not consumed")
	}
	if pte.Poisoned() {
		t.Errorf("poison not cleared despite unpoison=true")
	}
}

func TestHugePageAccessesAcrossChunk(t *testing.T) {
	cfg := testConfig()
	cfg.CtxSwitchNS = 500
	m, err := NewMachine(cfg, mem.DefaultTiers(2*mem.HugePages, mem.HugePages))
	if err != nil {
		t.Fatal(err)
	}
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	// Touch every subpage; exactly one fault, consistent frames.
	base, _ := func() (mem.PFN, bool) {
		m.Execute(load(1, 0))
		return m.Table(1).Frame(0)
	}()
	for i := uint64(0); i < mem.HugePages; i++ {
		o, err := m.Execute(load(1, i*4096))
		if err != nil {
			t.Fatal(err)
		}
		if mem.PFNOf(o.PAddr) != base+mem.PFN(i) {
			t.Fatalf("subpage %d translated to frame %d, want %d", i, mem.PFNOf(o.PAddr), base+mem.PFN(i))
		}
	}
	if m.MinorFaults != 1 {
		t.Errorf("faults = %d, want 1 for the whole chunk", m.MinorFaults)
	}
	// The single PMD A bit covers the chunk.
	pte, huge := m.Table(1).Resolve(0)
	if !huge || !pte.Accessed() {
		t.Errorf("PMD leaf state wrong: huge=%v A=%v", huge, pte.Accessed())
	}
}

func TestObserverSeesDirtySetOnce(t *testing.T) {
	m := testMachine(t, 16, 16)
	var dirtySets int
	m.AddObserver(observerFunc(func(o *trace.Outcome, ops int) int64 {
		if o.DirtySet {
			dirtySets++
		}
		return 0
	}))
	m.Execute(store(1, 0x6000)) // fault + D set: one event
	m.Execute(store(1, 0x6000)) // D already set: no event
	m.FlushAllTLBs()
	m.Execute(store(1, 0x6000)) // walk sees D=1: no event
	if dirtySets != 1 {
		t.Errorf("DirtySet events = %d, want exactly 1", dirtySets)
	}
}
