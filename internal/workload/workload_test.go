package workload

import (
	"testing"

	"tieredmem/internal/mem"
	"tieredmem/internal/order"
	"tieredmem/internal/trace"
)

func TestAllNamesConstruct(t *testing.T) {
	for _, name := range append(append([]string{}, Names...), "phase-shift") {
		w, err := New(name, DefaultConfig())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("Name() = %q, want %q", w.Name(), name)
		}
		if len(w.Processes()) == 0 {
			t.Errorf("%s: no processes", name)
		}
		if w.FootprintBytes() == 0 {
			t.Errorf("%s: zero footprint", name)
		}
	}
}

func TestUnknownName(t *testing.T) {
	if _, err := New("no-such-workload", DefaultConfig()); err == nil {
		t.Errorf("unknown name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range Names {
		cfg := Config{Seed: 11, FirstPID: 100}
		w1 := MustNew(name, cfg)
		w2 := MustNew(name, cfg)
		a := make([]trace.Ref, 2048)
		b := make([]trace.Ref, 2048)
		w1.Fill(a)
		w2.Fill(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: streams diverge at ref %d: %+v vs %+v", name, i, a[i], b[i])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	w1 := MustNew("gups", Config{Seed: 1, FirstPID: 100})
	w2 := MustNew("gups", Config{Seed: 2, FirstPID: 100})
	a := make([]trace.Ref, 512)
	b := make([]trace.Ref, 512)
	w1.Fill(a)
	w2.Fill(b)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestRefsStayInProcessSpace(t *testing.T) {
	for _, name := range append(append([]string{}, Names...), "phase-shift") {
		w := MustNew(name, Config{Seed: 3, FirstPID: 40})
		pids := map[int]bool{}
		for _, p := range w.Processes() {
			pids[p] = true
		}
		buf := make([]trace.Ref, 8192)
		w.Fill(buf)
		for _, r := range buf {
			if !pids[r.PID] {
				t.Fatalf("%s: ref from unknown pid %d", name, r.PID)
			}
			base := uint64(r.PID) * procSpacing
			if r.VAddr < base || r.VAddr >= base+procSpacing {
				t.Fatalf("%s: pid %d vaddr %#x outside its space", name, r.PID, r.VAddr)
			}
		}
	}
}

func TestScaleShiftShrinksFootprint(t *testing.T) {
	big := MustNew("gups", Config{Seed: 1, FirstPID: 100})
	small := MustNew("gups", Config{Seed: 1, FirstPID: 100, ScaleShift: 2})
	if small.FootprintBytes() >= big.FootprintBytes() {
		t.Errorf("ScaleShift did not shrink: %d vs %d", small.FootprintBytes(), big.FootprintBytes())
	}
	grown := MustNew("gups", Config{Seed: 1, FirstPID: 100, ScaleShift: -1})
	if grown.FootprintBytes() <= big.FootprintBytes() {
		t.Errorf("negative ScaleShift did not grow")
	}
}

func TestHPCWorkloadsDeclareHugeRegions(t *testing.T) {
	for _, name := range []string{"gups", "xsbench", "graph500", "lulesh"} {
		w := MustNew(name, DefaultConfig())
		if len(w.HugeRegions()) == 0 {
			t.Errorf("%s: no THP-backed regions", name)
		}
	}
	for _, name := range []string{"data-caching", "web-serving", "data-analytics", "graph-analytics"} {
		w := MustNew(name, DefaultConfig())
		if len(w.HugeRegions()) != 0 {
			t.Errorf("%s: cloud workload unexpectedly THP-backed", name)
		}
	}
}

func TestHugeHintChunkContainment(t *testing.T) {
	w := MustNew("gups", DefaultConfig())
	hint := HugeHintFor(w)
	r := w.HugeRegions()[0]
	// A VPN in the middle of the region: hinted.
	mid := mem.VPNOf((r.Start + r.End) / 2)
	if !hint(r.PID, mid) {
		t.Errorf("mid-region page not hinted")
	}
	// A VPN from another process: not hinted.
	if hint(r.PID+999, mid) {
		t.Errorf("foreign process hinted")
	}
	// The chunk straddling the region start (if unaligned) must be
	// rejected; test with an address just below the region.
	if r.Start >= 1<<21 {
		below := mem.VPNOf(r.Start - 1)
		chunk := (uint64(below) << mem.PageShift) &^ ((uint64(mem.HugePages) << mem.PageShift) - 1)
		if chunk < r.Start && hint(r.PID, below) {
			t.Errorf("page outside the region hinted")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Data-caching must produce a skewed page-popularity profile:
	// the most popular page gets far more than the mean.
	w := MustNew("data-caching", DefaultConfig())
	counts := map[uint64]int{}
	buf := make([]trace.Ref, 1<<16)
	w.Fill(buf)
	for _, r := range buf {
		counts[r.VAddr>>mem.PageShift]++
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) < 8*mean {
		t.Errorf("page popularity not skewed: max %d vs mean %.1f", max, mean)
	}
}

func TestGUPSUniformity(t *testing.T) {
	// GUPS table accesses are uniform: the hottest table page must be
	// within a small factor of the mean (the idx region is hot by
	// design; restrict to table pages, which dominate).
	w := MustNew("gups", Config{Seed: 5, FirstPID: 100})
	counts := map[uint64]int{}
	buf := make([]trace.Ref, 1<<16)
	w.Fill(buf)
	for _, r := range buf {
		if r.Kind == trace.Store { // stores only hit the table
			counts[r.VAddr>>mem.PageShift]++
		}
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	mean := float64(total) / float64(len(counts))
	if float64(max) > 10*mean {
		t.Errorf("GUPS stores skewed: max %d vs mean %.2f", max, mean)
	}
}

func TestLULESHLocality(t *testing.T) {
	// LULESH sweeps sequentially: consecutive references from one
	// process should mostly be near each other.
	w := MustNew("lulesh", Config{Seed: 5, FirstPID: 100})
	buf := make([]trace.Ref, 1<<14)
	w.Fill(buf)
	// Locality is per access site: the same instruction's successive
	// references sweep sequentially even though sites alternate
	// between distant arrays.
	type site struct {
		pid int
		ip  uint64
	}
	lastBySite := map[site]uint64{}
	near, far := 0, 0
	for _, r := range buf {
		k := site{r.PID, r.IP}
		if last, ok := lastBySite[k]; ok {
			d := int64(r.VAddr) - int64(last)
			if d < 0 {
				d = -d
			}
			if d < 1<<16 {
				near++
			} else {
				far++
			}
		}
		lastBySite[k] = r.VAddr
	}
	if near < 2*far {
		t.Errorf("LULESH not local per site: near=%d far=%d", near, far)
	}
}

func TestPhaseShiftMovesHotSet(t *testing.T) {
	w := MustNew("phase-shift", Config{Seed: 5, FirstPID: 100, ScaleShift: 4})
	// Drain the init phase, then sample hot-page windows periodically:
	// the hot half flips every 500k per-process operations, so some
	// pair of windows must have little overlap.
	buf := make([]trace.Ref, 1<<16)
	for i := 0; i < 40; i++ {
		w.Fill(buf) // init phase plus warmup
	}
	var windows []map[uint64]bool
	for win := 0; win < 8; win++ {
		for i := 0; i < 10; i++ {
			w.Fill(buf)
		}
		pages := map[uint64]bool{}
		w.Fill(buf)
		for _, r := range buf {
			pages[r.VAddr>>mem.PageShift] = true
		}
		windows = append(windows, pages)
	}
	minOverlap := 1.0
	for i := 1; i < len(windows); i++ {
		overlap := 0
		for p := range windows[i] {
			if windows[0][p] {
				overlap++
			}
		}
		frac := float64(overlap) / float64(len(windows[i]))
		if frac < minOverlap {
			minOverlap = frac
		}
	}
	if minOverlap > 0.5 {
		t.Errorf("hot set never moved: min overlap with window 0 is %.2f", minOverlap)
	}
}

func TestAllAssignsDisjointPIDs(t *testing.T) {
	ws := All(DefaultConfig())
	if len(ws) != len(Names) {
		t.Fatalf("All built %d workloads", len(ws))
	}
	seen := map[int]string{}
	for _, w := range ws {
		for _, pid := range w.Processes() {
			if prev, ok := seen[pid]; ok {
				t.Fatalf("pid %d shared by %s and %s", pid, prev, w.Name())
			}
			seen[pid] = w.Name()
		}
	}
}

func TestFillExactLength(t *testing.T) {
	w := MustNew("web-serving", DefaultConfig())
	for _, n := range []int{1, 7, 1024} {
		buf := make([]trace.Ref, n)
		w.Fill(buf)
		for i, r := range buf {
			if r.PID == 0 && r.VAddr == 0 {
				t.Fatalf("ref %d of %d left zero", i, n)
			}
		}
	}
}

func TestCombineInterleavesByShare(t *testing.T) {
	a := MustNew("gups", Config{Seed: 1, FirstPID: 100})
	b := MustNew("web-serving", Config{Seed: 1, FirstPID: 300})
	w, err := CombineWeighted([]Workload{a, b}, []int{3, 1})
	if err != nil {
		t.Fatalf("CombineWeighted: %v", err)
	}
	buf := make([]trace.Ref, 4000)
	w.Fill(buf)
	var fromA, fromB int
	for _, r := range buf {
		if r.PID >= 300 {
			fromB++
		} else {
			fromA++
		}
	}
	ratio := float64(fromA) / float64(fromB)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("share ratio = %.2f, want ~3", ratio)
	}
}

func TestCombineAggregatesMetadata(t *testing.T) {
	a := MustNew("gups", Config{Seed: 1, FirstPID: 100})
	b := MustNew("web-serving", Config{Seed: 1, FirstPID: 300})
	w, err := Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "gups+web-serving" {
		t.Errorf("Name = %q", w.Name())
	}
	if len(w.Processes()) != len(a.Processes())+len(b.Processes()) {
		t.Errorf("process count wrong")
	}
	if w.FootprintBytes() != a.FootprintBytes()+b.FootprintBytes() {
		t.Errorf("footprint not summed")
	}
	if len(w.HugeRegions()) != len(a.HugeRegions())+len(b.HugeRegions()) {
		t.Errorf("huge regions not aggregated")
	}
}

func TestCombineRejectsPIDCollisions(t *testing.T) {
	a := MustNew("gups", Config{Seed: 1, FirstPID: 100})
	b := MustNew("web-serving", Config{Seed: 1, FirstPID: 100})
	if _, err := Combine(a, b); err == nil {
		t.Errorf("overlapping PIDs accepted")
	}
}

func TestCombineRejectsBadShares(t *testing.T) {
	a := MustNew("gups", Config{Seed: 1, FirstPID: 100})
	if _, err := CombineWeighted([]Workload{a}, []int{0}); err == nil {
		t.Errorf("zero share accepted")
	}
	if _, err := CombineWeighted([]Workload{a}, []int{1, 2}); err == nil {
		t.Errorf("share count mismatch accepted")
	}
	if _, err := CombineWeighted(nil, nil); err == nil {
		t.Errorf("empty combine accepted")
	}
}

func TestIdlersGoQuietAfterInit(t *testing.T) {
	w := NewIdlers(Config{Seed: 2, FirstPID: 700}, 2, 1<<20)
	// Init phase: 2 procs x 256 pages = 512 page-touch refs.
	buf := make([]trace.Ref, 600)
	w.Fill(buf)
	// After init every ref is the same hot page per process.
	quiet := make([]trace.Ref, 100)
	w.Fill(quiet)
	perPID := map[int]map[uint64]bool{}
	for _, r := range quiet {
		if perPID[r.PID] == nil {
			perPID[r.PID] = map[uint64]bool{}
		}
		perPID[r.PID][r.VAddr] = true
	}
	for _, pid := range order.SortedKeys(perPID) {
		if addrs := perPID[pid]; len(addrs) != 1 {
			t.Errorf("idler %d touches %d addresses when idle, want 1", pid, len(addrs))
		}
	}
}

func TestWriteSplitPhases(t *testing.T) {
	w := MustNew("write-split", Config{Seed: 2, FirstPID: 800, ScaleShift: 4})
	// Drain the cold streaming phase.
	buf := make([]trace.Ref, 1<<14)
	for i := 0; i < 4; i++ {
		w.Fill(buf)
	}
	w.Fill(buf)
	loads, stores := 0, 0
	for _, r := range buf {
		if r.Kind == trace.Store {
			stores++
		} else {
			loads++
		}
	}
	// Steady state alternates load/store.
	if loads == 0 || stores == 0 {
		t.Fatalf("steady state loads=%d stores=%d", loads, stores)
	}
	ratio := float64(loads) / float64(stores)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("load:store ratio %.2f, want ~1", ratio)
	}
}
