// Package workload provides deterministic memory-reference generators
// that reproduce the access-pattern shapes of the paper's Table III
// evaluation set: four CloudSuite services (Data-Analytics,
// Data-Caching, Graph-Analytics, Web-Serving) and four HPC codes
// (Graph500, GUPS, LULESH, XSBench). Each generator emits an infinite,
// seeded stream of trace.Refs from one or more simulated processes,
// interleaved round-robin the way concurrently running instances
// interleave on a real machine. Footprints are scaled from the paper's
// testbed (64 GB) to laptop scale; every experiment depends on access
// *shape* (skew, scan-vs-random, phase structure) rather than absolute
// bytes.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

// Workload is an infinite reference stream from one or more processes.
type Workload interface {
	// Name returns the Table III workload name.
	Name() string
	// Processes lists the PIDs the stream multiplexes.
	Processes() []int
	// FootprintBytes estimates the total distinct bytes touched.
	FootprintBytes() uint64
	// Fill writes exactly len(buf) references and never ends.
	Fill(buf []trace.Ref)
	// HugeRegions lists the virtual ranges the kernel would back
	// with transparent huge pages: the big anonymous heaps of the
	// HPC codes. Cloud services (many small allocations, page
	// cache) return none.
	HugeRegions() []VRange
}

// VRange is a per-process virtual address range [Start, End).
type VRange struct {
	PID        int
	Start, End uint64
}

// Contains reports whether the range covers (pid, vaddr).
func (r VRange) Contains(pid int, vaddr uint64) bool {
	return r.PID == pid && vaddr >= r.Start && vaddr < r.End
}

// HugeHintFor builds a (pid, vpn)->bool predicate over a workload's
// huge regions, in the shape cpu.Machine.SetHugeHint expects. A page
// is huge-backable only when its entire 2 MiB chunk lies inside one
// region — THP's VMA-coverage rule.
func HugeHintFor(w Workload) func(pid int, vpn mem.VPN) bool {
	ranges := w.HugeRegions()
	const hugeBytes = uint64(mem.HugePages) << mem.PageShift
	return func(pid int, vpn mem.VPN) bool {
		chunk := (uint64(vpn) << mem.PageShift) &^ (hugeBytes - 1)
		for _, r := range ranges {
			if r.Contains(pid, chunk) && r.Contains(pid, chunk+hugeBytes-1) {
				return true
			}
		}
		return false
	}
}

// Config tunes a generator.
type Config struct {
	// Seed drives all randomness; equal seeds give equal streams.
	Seed int64
	// ScaleShift shrinks footprints: region sizes are divided by
	// 1<<ScaleShift relative to the package defaults. Negative
	// values grow them.
	ScaleShift int
	// FirstPID numbers the workload's processes starting here.
	FirstPID int
}

// DefaultConfig seeds a workload deterministically.
func DefaultConfig() Config { return Config{Seed: 42, FirstPID: 100} }

// maxGrowShift bounds negative ScaleShift (footprint growth) so that
// no generator's region set can overflow a process's 16 GiB address
// budget (region() panics past it): the largest package-default region
// is 16 MiB and no generator allocates more than a handful per
// process, so x32 keeps every configuration — including fuzzed ones —
// comfortably inside procSpacing.
const maxGrowShift = 5

func (c Config) scaled(bytes uint64) uint64 {
	shift := c.ScaleShift
	if shift < -maxGrowShift {
		shift = -maxGrowShift
	}
	if shift > 63 {
		shift = 63
	}
	if shift > 0 {
		bytes >>= uint(shift)
	} else if shift < 0 {
		bytes <<= uint(-shift)
	}
	if bytes < mem.PageSize {
		bytes = mem.PageSize
	}
	return bytes
}

// proc is one simulated process: a private virtual address space plus
// its own PRNG and a pending-reference queue so generators can emit
// multi-access operations (e.g. a read-modify-write) atomically.
type proc struct {
	pid     int
	base    uint64
	nextVA  uint64
	rng     *rand.Rand
	pending []trace.Ref
}

// procSpacing keeps process address spaces disjoint (16 GiB apart)
// while staying inside the page table's 36-bit VPN space.
const procSpacing = uint64(16) << 30

func newProc(pid int, seed int64) *proc {
	base := uint64(pid) * procSpacing
	return &proc{
		pid:    pid,
		base:   base,
		nextVA: base,
		rng:    rand.New(rand.NewSource(seed ^ int64(uint64(pid)*0x9e3779b97f4a7c15))),
	}
}

// region reserves a contiguous virtual range of the given size,
// page-aligned.
func (p *proc) region(bytes uint64) region {
	start := p.nextVA
	size := (bytes + mem.PageMask) &^ uint64(mem.PageMask)
	p.nextVA += size
	if p.nextVA-p.base > procSpacing {
		panic(fmt.Sprintf("workload: pid %d exceeds its %d GiB address budget", p.pid, procSpacing>>30))
	}
	return region{start: start, size: size}
}

// region is a contiguous virtual address range.
type region struct {
	start, size uint64
}

// at returns the byte address at offset (wrapped into the region).
func (r region) at(off uint64) uint64 { return r.start + off%r.size }

// push queues a reference for delivery.
func (p *proc) push(ip uint64, vaddr uint64, k trace.Kind) {
	p.pending = append(p.pending, trace.Ref{PID: p.pid, IP: ip, VAddr: vaddr, Kind: k})
}

// pop delivers the oldest queued reference; gen is invoked to refill
// when the queue is empty.
func (p *proc) pop(gen func()) trace.Ref {
	for len(p.pending) == 0 {
		gen()
	}
	r := p.pending[0]
	copy(p.pending, p.pending[1:])
	p.pending = p.pending[:len(p.pending)-1]
	return r
}

// multiplex round-robins references across processes.
type multiplex struct {
	name   string
	procs  []*proc
	gens   []func() // per-proc refill functions
	bytes  uint64
	cursor int
	huge   []VRange
}

// markHuge records a region as THP-backed.
func (m *multiplex) markHuge(p *proc, r region) {
	m.huge = append(m.huge, VRange{PID: p.pid, Start: r.start, End: r.start + r.size})
}

// HugeRegions implements Workload.
func (m *multiplex) HugeRegions() []VRange { return m.huge }

func (m *multiplex) Name() string { return m.name }

func (m *multiplex) Processes() []int {
	out := make([]int, len(m.procs))
	for i, p := range m.procs {
		out[i] = p.pid
	}
	return out
}

func (m *multiplex) FootprintBytes() uint64 { return m.bytes }

func (m *multiplex) Fill(buf []trace.Ref) {
	for i := range buf {
		p := m.procs[m.cursor]
		buf[i] = p.pop(m.gens[m.cursor])
		m.cursor = (m.cursor + 1) % len(m.procs)
	}
}

// zipfGen wraps rand.Zipf with the skew CloudSuite-style key
// popularity follows. imax is inclusive of indices [0, imax].
func zipfGen(rng *rand.Rand, s float64, imax uint64) *rand.Zipf {
	if s <= 1.0 {
		s = 1.01
	}
	return rand.NewZipf(rng, s, 1, imax)
}

// Names lists the Table III workloads in presentation order.
var Names = []string{
	"data-analytics",
	"data-caching",
	"graph500",
	"graph-analytics",
	"gups",
	"lulesh",
	"web-serving",
	"xsbench",
}

// New builds a workload by Table III name.
func New(name string, cfg Config) (Workload, error) {
	switch name {
	case "data-analytics":
		return NewDataAnalytics(cfg), nil
	case "data-caching":
		return NewDataCaching(cfg), nil
	case "graph500":
		return NewGraph500(cfg), nil
	case "graph-analytics":
		return NewGraphAnalytics(cfg), nil
	case "gups":
		return NewGUPS(cfg), nil
	case "lulesh":
		return NewLULESH(cfg), nil
	case "web-serving":
		return NewWebServing(cfg), nil
	case "xsbench":
		return NewXSBench(cfg), nil
	case "phase-shift":
		return NewPhaseShift(cfg), nil
	case "write-split":
		return NewWriteSplit(cfg), nil
	default:
		return nil, fmt.Errorf("workload: unknown name %q (known: %v)", name, Names)
	}
}

// MustNew is New for known-good names.
func MustNew(name string, cfg Config) Workload {
	w, err := New(name, cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// All builds every Table III workload with the same config, in
// presentation order.
func All(cfg Config) []Workload {
	out := make([]Workload, 0, len(Names))
	first := cfg.FirstPID
	for i, n := range Names {
		c := cfg
		c.FirstPID = first + i*64 // keep PID ranges disjoint
		out = append(out, MustNew(n, c))
	}
	return out
}

// sortedCopy returns a sorted copy of xs (used by generators building
// lookup grids).
func sortedCopy(xs []uint64) []uint64 {
	out := make([]uint64, len(xs))
	copy(out, xs)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
