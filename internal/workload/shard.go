package workload

import "fmt"

// mux exposes the embedded multiplex so Slice can re-partition any
// generator built on the round-robin interleave (every Table III
// generator is). Promotion makes each concrete generator satisfy the
// sliceable interface below without per-type code.
func (m *multiplex) mux() *multiplex { return m }

// sliceable is the internal capability Slice needs: access to the
// round-robin process interleave. combined does not implement it —
// weighted interleaves have no per-core decomposition that preserves
// the global stream order.
type sliceable interface{ mux() *multiplex }

// Slice restricts a freshly built workload to the processes a single
// simulated core would run: with the workload's processes pinned
// round-robin across cores (process i on core i mod cores, the same
// rule cpu.Machine uses for scheduling), the returned workload emits
// exactly the global reference stream filtered to core `cell`'s
// processes, in the global order. This is the partitioning rule of the
// sharded epoch pipeline (PERFORMANCE.md): because the global Fill is
// itself a one-ref round-robin over processes in ascending index
// order, the kept processes (still in ascending index order, still
// round-robin) reproduce the restriction of the global stream without
// generating the refs the cell does not own.
//
// Slice mutates and returns w's own generator state (processes carry
// live RNGs), so the caller must pass a freshly constructed instance
// and must not use w afterwards. Workloads without a round-robin
// interleave (Combine/CombineWeighted) are rejected.
func Slice(w Workload, cell, cores int) (Workload, error) {
	if cores < 1 || cell < 0 || cell >= cores {
		return nil, fmt.Errorf("workload: bad slice cell %d of %d cores", cell, cores)
	}
	s, ok := w.(sliceable)
	if !ok {
		return nil, fmt.Errorf("workload: %q cannot be sliced per core (no round-robin interleave)", w.Name())
	}
	m := s.mux()
	if len(m.procs) == 0 {
		return nil, fmt.Errorf("workload: %q has no processes", w.Name())
	}
	out := &multiplex{name: fmt.Sprintf("%s/cell%d", m.name, cell)}
	kept := map[int]bool{}
	for i, p := range m.procs {
		if i%cores != cell {
			continue
		}
		out.procs = append(out.procs, p)
		out.gens = append(out.gens, m.gens[i])
		out.bytes += p.nextVA - p.base
		kept[p.pid] = true
	}
	if len(out.procs) == 0 {
		return nil, fmt.Errorf("workload: cell %d of %d cores owns none of %q's %d processes",
			cell, cores, m.name, len(m.procs))
	}
	for _, r := range m.huge {
		if kept[r.PID] {
			out.huge = append(out.huge, r)
		}
	}
	return out, nil
}

// SliceRefs returns how many of the first total references of the
// global round-robin stream belong to core `cell` when procs processes
// are pinned process i -> core i mod cores. Reference k of the global
// stream comes from process k mod procs, so process i contributes
// total/procs references plus one more when i < total mod procs; the
// cell's budget sums its processes' contributions. Budgets over all
// cells partition total exactly, which is what keeps sharded runs'
// total reference counts equal to the sequential run's.
func SliceRefs(total int64, procs, cell, cores int) int64 {
	if total <= 0 || procs <= 0 || cores < 1 || cell < 0 || cell >= cores {
		return 0
	}
	var refs int64
	for i := cell; i < procs; i += cores {
		refs += total / int64(procs)
		if int64(i) < total%int64(procs) {
			refs++
		}
	}
	return refs
}

// Cells returns the number of non-empty per-core partitions a
// workload decomposes into on a machine with the given core count:
// min(cores, processes). Cells beyond the process count would own no
// stream at all, so the sharded pipeline simply does not create them.
func Cells(w Workload, cores int) int {
	if n := len(w.Processes()); cores > n {
		return n
	}
	return cores
}

// Sliceable reports whether Slice can partition the workload.
func Sliceable(w Workload) bool {
	_, ok := w.(sliceable)
	return ok
}

// compile-time check: a slice of a multiplex is itself a Workload.
var _ Workload = (*multiplex)(nil)
