package workload

import (
	"fmt"
	"strings"

	"tieredmem/internal/trace"
)

// combined multiplexes several workloads onto one machine — the
// paper's datacenter setting ("VMs consolidated on individual cloud
// servers"), where the TMP daemon's resource filter earns its keep by
// excluding idle processes from A-bit walks. Shares weight the
// interleave: a workload with share 3 emits three references for every
// one from a share-1 workload.
type combined struct {
	name    string
	parts   []Workload
	shares  []int
	cursor  int
	credit  int
	procs   []int
	bytes   uint64
	hugeAgg []VRange
}

// Combine interleaves workloads with equal shares.
func Combine(parts ...Workload) (Workload, error) {
	shares := make([]int, len(parts))
	for i := range shares {
		shares[i] = 1
	}
	return CombineWeighted(parts, shares)
}

// CombineWeighted interleaves workloads with explicit shares. PID sets
// must be disjoint.
func CombineWeighted(parts []Workload, shares []int) (Workload, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("workload: Combine needs at least one workload")
	}
	if len(shares) != len(parts) {
		return nil, fmt.Errorf("workload: %d shares for %d workloads", len(shares), len(parts))
	}
	c := &combined{parts: parts, shares: shares}
	seen := map[int]string{}
	var names []string
	for i, p := range parts {
		if shares[i] <= 0 {
			return nil, fmt.Errorf("workload: share %d for %q must be positive", shares[i], p.Name())
		}
		names = append(names, p.Name())
		c.bytes += p.FootprintBytes()
		c.hugeAgg = append(c.hugeAgg, p.HugeRegions()...)
		for _, pid := range p.Processes() {
			if prev, ok := seen[pid]; ok {
				return nil, fmt.Errorf("workload: pid %d used by both %q and %q", pid, prev, p.Name())
			}
			seen[pid] = p.Name()
			c.procs = append(c.procs, pid)
		}
	}
	c.name = strings.Join(names, "+")
	c.credit = shares[0]
	return c, nil
}

// Name implements Workload.
func (c *combined) Name() string { return c.name }

// Processes implements Workload.
func (c *combined) Processes() []int { return c.procs }

// FootprintBytes implements Workload.
func (c *combined) FootprintBytes() uint64 { return c.bytes }

// HugeRegions implements Workload.
func (c *combined) HugeRegions() []VRange { return c.hugeAgg }

// Fill implements Workload: weighted round-robin over the parts, one
// reference at a time so interleaving stays fine-grained.
func (c *combined) Fill(buf []trace.Ref) {
	one := make([]trace.Ref, 1)
	for i := range buf {
		for c.credit == 0 {
			c.cursor = (c.cursor + 1) % len(c.parts)
			c.credit = c.shares[c.cursor]
		}
		c.parts[c.cursor].Fill(one)
		buf[i] = one[0]
		c.credit--
	}
}
