package workload

import "tieredmem/internal/trace"

// Synthetic (non-Table III) generators used by tests, examples, and
// ablation benchmarks.

// phaseShift is a workload designed to defeat first-touch placement:
// an initialization phase streams once over a large cold region
// (filling the fast tier with pages that will never be touched again),
// after which the main loop hammers a Zipf-hot working set allocated
// later. Adaptive placement (TMP + History) recovers; static
// first-touch cannot. It also alternates hot halves mid-run so
// reactive policies keep working.
type phaseShift struct {
	multiplex
}

// NewPhaseShift builds the synthetic phase-shift workload: 4
// processes, each with a cold init region (default 8 MiB) and two hot
// regions (default 2 MiB each) that trade places periodically.
func NewPhaseShift(cfg Config) Workload {
	const procs = 4
	initBytes := cfg.scaled(8 << 20)
	hotBytes := cfg.scaled(2 << 20)
	ps := &phaseShift{}
	ps.name = "phase-shift"
	for i := 0; i < procs; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		initRegion := p.region(initBytes)
		hotA := p.region(hotBytes)
		hotB := p.region(hotBytes)
		ps.bytes += initRegion.size + hotA.size + hotB.size
		zip := zipfGen(p.rng, 1.2, hotBytes/64-1)
		pp := p
		var initCur uint64
		var issued uint64
		ps.procs = append(ps.procs, p)
		ps.gens = append(ps.gens, func() {
			issued++
			if initCur < initRegion.size {
				// Init: stream the cold region once, 64 B at a time.
				pp.push(ip(80), initRegion.at(initCur), trace.Store)
				initCur += 64
				return
			}
			// Main loop: Zipf-hot region, switching halves every
			// 500k operations per process.
			hot := hotA
			if (issued/500_000)%2 == 1 {
				hot = hotB
			}
			off := zip.Uint64() * 64
			pp.push(ip(81), hot.at(off), trace.Load)
			if pp.rng.Intn(4) == 0 {
				pp.push(ip(82), hot.at(off), trace.Store)
			}
		})
	}
	return ps
}

// idlers models consolidation background noise: processes that faulted
// in a sizeable heap once (a cold cache, a parked VM) and then barely
// touch it. They inflate the machine's page-table population without
// contributing load — exactly what TMP's resource filter (>=5% CPU or
// >=10% memory) exists to exclude from A-bit walks.
type idlers struct {
	multiplex
}

// NewIdlers builds n near-idle processes, each with a heapBytes cold
// region streamed once at startup and a single hot page touched
// afterwards. Heaps are clamped to 1 GiB: the generator's point is
// page-table population, and anything larger would overflow the
// per-process address budget under footprint growth.
func NewIdlers(cfg Config, n int, heapBytes uint64) Workload {
	if n < 1 {
		n = 1
	}
	const maxIdlerHeap = 1 << 30
	heapBytes = cfg.scaled(heapBytes)
	if heapBytes > maxIdlerHeap {
		heapBytes = maxIdlerHeap
	}
	id := &idlers{}
	id.name = "idlers"
	for i := 0; i < n; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		heap := p.region(heapBytes)
		id.bytes += heap.size
		pp := p
		var cur uint64
		id.procs = append(id.procs, p)
		id.gens = append(id.gens, func() {
			if cur < heap.size {
				// Startup: fault the heap in, one touch per page.
				pp.push(ip(90), heap.at(cur), trace.Store)
				cur += 4096
				return
			}
			// Idle: poll one hot page.
			pp.push(ip(91), heap.at(0), trace.Load)
		})
	}
	return id
}

// writeSplit is a workload for write-aware placement studies: two
// regions of equal access frequency, one read-only (lookup tables) and
// one write-hot (an in-place log). On media with asymmetric write cost
// (NVM writes ~2x reads here, far worse on real PCM) a policy that
// biases dirty pages into DRAM outperforms a read-rank-only one at
// equal hitrates — the CLOCK-DWF argument ([32] in the paper).
type writeSplit struct {
	multiplex
}

// NewWriteSplit builds the workload: 4 processes, each with a
// read-hot region and a write-hot region (default 4 MiB each) plus a
// large cold filler that forces tier pressure.
func NewWriteSplit(cfg Config) Workload {
	const procs = 4
	hotBytes := cfg.scaled(4 << 20)
	coldBytes := cfg.scaled(16 << 20)
	ws := &writeSplit{}
	ws.name = "write-split"
	for i := 0; i < procs; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		readHot := p.region(hotBytes)
		writeHot := p.region(hotBytes)
		cold := p.region(coldBytes)
		ws.bytes += readHot.size + writeHot.size + cold.size
		zipR := zipfGen(p.rng, 1.1, hotBytes/64-1)
		zipW := zipfGen(p.rng, 1.1, hotBytes/64-1)
		pp := p
		var coldCur uint64
		ws.procs = append(ws.procs, p)
		ws.gens = append(ws.gens, func() {
			if coldCur < cold.size {
				// Stream the cold filler once so first-touch wastes
				// fast-tier capacity on it.
				pp.push(ip(95), cold.at(coldCur), trace.Store)
				coldCur += 4096
				return
			}
			pp.push(ip(96), readHot.at(zipR.Uint64()*64), trace.Load)
			pp.push(ip(97), writeHot.at(zipW.Uint64()*64), trace.Store)
		})
	}
	return ws
}
