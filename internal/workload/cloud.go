package workload

import "tieredmem/internal/trace"

// ---------------------------------------------------------------------------
// Data-Analytics (CloudSuite: Mahout over a wiki dump, 1 master + 32
// workers): each worker streams its input partition sequentially,
// probes a Zipf-hot in-memory dictionary, and appends to an output
// buffer. The master polls small coordination state. Streaming input
// means many pages touched once; the dictionary concentrates heat.

type dataAnalytics struct {
	multiplex
}

// NewDataAnalytics builds the workload: 1 master + 8 workers (the
// paper's 32 workers scaled with the footprint), ~4 MiB input
// partition and 1 MiB dictionary per worker before scaling.
func NewDataAnalytics(cfg Config) Workload {
	const workers = 8
	inputBytes := cfg.scaled(4 << 20)
	dictBytes := cfg.scaled(1 << 20)
	d := &dataAnalytics{}
	d.name = "data-analytics"

	// Master process: hot coordination state only.
	master := newProc(cfg.FirstPID, cfg.Seed)
	coord := master.region(256 << 10)
	d.bytes += coord.size
	d.procs = append(d.procs, master)
	d.gens = append(d.gens, func() {
		off := master.rng.Uint64()
		master.push(ip(40), coord.at(off), trace.Load)
		if master.rng.Intn(8) == 0 {
			master.push(ip(41), coord.at(off), trace.Store)
		}
	})

	for i := 0; i < workers; i++ {
		p := newProc(cfg.FirstPID+1+i, cfg.Seed)
		input := p.region(inputBytes)
		dict := p.region(dictBytes)
		output := p.region(inputBytes / 2)
		d.bytes += input.size + dict.size + output.size
		zip := zipfGen(p.rng, 1.2, dict.size/64)
		pp := p
		var inCur, outCur uint64
		d.procs = append(d.procs, p)
		d.gens = append(d.gens, func() {
			// Stream 64 B of input, two Zipf dictionary probes, one
			// sequential output append.
			pp.push(ip(42), input.at(inCur), trace.Load)
			inCur += 64
			pp.push(ip(43), dict.at(zip.Uint64()*64), trace.Load)
			pp.push(ip(44), dict.at(zip.Uint64()*64), trace.Load)
			pp.push(ip(45), output.at(outCur), trace.Store)
			outCur += 16
		})
	}
	return d
}

// ---------------------------------------------------------------------------
// Data-Caching (CloudSuite: memcached with a Twitter dataset, 4
// servers x 8 clients): a GET/SET stream with Zipf-popular keys hashed
// into a big slab arena. 90% GETs read a value (a few lines); 10% SETs
// rewrite it. The hot key set concentrates on few pages while the
// arena's tail is huge and cold.

type dataCaching struct {
	multiplex
}

// NewDataCaching builds the workload: 4 server processes, each with a
// slab arena (default 16 MiB before scaling).
func NewDataCaching(cfg Config) Workload {
	const servers = 4
	arenaBytes := cfg.scaled(16 << 20)
	d := &dataCaching{}
	d.name = "data-caching"
	for i := 0; i < servers; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		arena := p.region(arenaBytes)
		hash := p.region(1 << 20) // hash table: hot
		d.bytes += arena.size + hash.size
		keys := arena.size / 256 // 256 B objects
		zip := zipfGen(p.rng, 1.01, keys-1)
		pp := p
		d.procs = append(d.procs, p)
		d.gens = append(d.gens, func() {
			key := zip.Uint64()
			// Hash-bucket probe, then the object (2 lines).
			slot := key * 0x9e3779b97f4a7c15 % (hash.size / 8)
			pp.push(ip(50), hash.at(slot*8), trace.Load)
			obj := key * 256
			if pp.rng.Intn(10) == 0 { // SET
				pp.push(ip(51), arena.at(obj), trace.Store)
				pp.push(ip(52), arena.at(obj+64), trace.Store)
			} else { // GET
				pp.push(ip(53), arena.at(obj), trace.Load)
				pp.push(ip(54), arena.at(obj+64), trace.Load)
			}
		})
	}
	return d
}

// ---------------------------------------------------------------------------
// Graph-Analytics (CloudSuite: GraphX PageRank over a Twitter graph,
// 1 master + 16 workers): iterative edge sweeps — the edge list is
// scanned sequentially while source ranks are read and destination
// accumulators written at power-law-random vertex positions.

type graphAnalytics struct {
	multiplex
}

// NewGraphAnalytics builds the workload: 1 master + 8 workers; each
// worker owns an edge partition (default 8 MiB) and a rank array
// (default 2 MiB).
func NewGraphAnalytics(cfg Config) Workload {
	const workers = 8
	edgeBytes := cfg.scaled(8 << 20)
	rankBytes := cfg.scaled(2 << 20)
	g := &graphAnalytics{}
	g.name = "graph-analytics"

	master := newProc(cfg.FirstPID, cfg.Seed)
	agg := master.region(512 << 10)
	g.bytes += agg.size
	g.procs = append(g.procs, master)
	g.gens = append(g.gens, func() {
		off := master.rng.Uint64()
		master.push(ip(60), agg.at(off), trace.Load)
		master.push(ip(61), agg.at(off+8), trace.Store)
	})

	for i := 0; i < workers; i++ {
		p := newProc(cfg.FirstPID+1+i, cfg.Seed)
		edges := p.region(edgeBytes)
		ranks := p.region(rankBytes)
		next := p.region(rankBytes)
		g.bytes += edges.size + ranks.size + next.size
		vertices := ranks.size / 8
		zip := zipfGen(p.rng, 1.15, vertices-1)
		pp := p
		var cur uint64
		g.procs = append(g.procs, p)
		g.gens = append(g.gens, func() {
			// One edge: sequential edge read, Zipf source-rank read
			// (hubs are popular), random destination accumulate.
			pp.push(ip(62), edges.at(cur), trace.Load)
			cur += 8
			src := zip.Uint64()
			pp.push(ip(63), ranks.at(src*8), trace.Load)
			dst := uniform(pp.rng, vertices)
			pp.push(ip(64), next.at(dst*8), trace.Load)
			pp.push(ip(65), next.at(dst*8), trace.Store)
		})
	}
	return g
}

// ---------------------------------------------------------------------------
// Web-Serving (CloudSuite: Elgg + Faban, 3 servers x 100 clients):
// request loops touch a Zipf-popular static-content corpus, a session
// table at random positions, and hot interpreter/runtime state. Many
// processes, modest footprint, strong skew — A-bit profiling sees most
// of it (Table IV: A-bit detects ~8x more pages than IBS here because
// most accesses hit in cache and IBS memory samples are rare).

type webServing struct {
	multiplex
}

// NewWebServing builds the workload: 3 server processes, each with a
// content corpus (default 8 MiB), session table (default 2 MiB), and
// hot runtime state.
func NewWebServing(cfg Config) Workload {
	const servers = 3
	corpusBytes := cfg.scaled(8 << 20)
	sessionBytes := cfg.scaled(2 << 20)
	w := &webServing{}
	w.name = "web-serving"
	for i := 0; i < servers; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		corpus := p.region(corpusBytes)
		sessions := p.region(sessionBytes)
		runtime := p.region(512 << 10)
		w.bytes += corpus.size + sessions.size + runtime.size
		pages := corpus.size >> 12
		zip := zipfGen(p.rng, 1.1, pages-1)
		pp := p
		w.procs = append(w.procs, p)
		w.gens = append(w.gens, func() {
			// One request: runtime state (hot), session lookup +
			// update, then stream 4 lines of one popular page.
			pp.push(ip(70), runtime.at(pp.rng.Uint64()%4096*8), trace.Load)
			sess := uniform(pp.rng, sessions.size/128)
			pp.push(ip(71), sessions.at(sess*128), trace.Load)
			pp.push(ip(72), sessions.at(sess*128), trace.Store)
			page := zip.Uint64() << 12
			for j := uint64(0); j < 4; j++ {
				pp.push(ip(73), corpus.at(page+j*64), trace.Load)
			}
		})
	}
	return w
}
