package workload

import (
	"testing"

	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

// FuzzSyntheticWorkloads drives the synthetic.go generators
// (phase-shift, write-split, idlers) with arbitrary seeds, scale
// shifts, PID bases, and idler shapes — mirroring
// internal/trace's FuzzReaderRobustness contract: construction and
// generation must never panic, and every emitted reference must stay
// consistent with the workload's own metadata:
//
//   - Fill writes exactly len(buf) refs, all from declared PIDs;
//   - the distinct 4 KiB pages touched never exceed FootprintBytes()
//     (footprints sum page-aligned region reservations, so they bound
//     the reachable page population);
//   - the stream is a pure function of the seed: rebuilding the same
//     config must reproduce identical references.
func FuzzSyntheticWorkloads(f *testing.F) {
	f.Add(int64(42), 0, 100, uint8(0), uint16(4), uint32(4<<20))
	f.Add(int64(0), 31, 0, uint8(1), uint16(0), uint32(0))
	f.Add(int64(-1), -40, 1<<20, uint8(2), uint16(999), uint32(1<<31-1))
	f.Add(int64(7), 100, -5, uint8(3), uint16(1), uint32(4096))

	f.Fuzz(func(t *testing.T, seed int64, scale, firstPID int, pick uint8, idlers uint16, heapBytes uint32) {
		cfg := Config{Seed: seed, ScaleShift: scale, FirstPID: firstPID}
		var w Workload
		switch pick % 3 {
		case 0:
			w = NewPhaseShift(cfg)
		case 1:
			w = NewWriteSplit(cfg)
		case 2:
			// Bound the process count so a fuzz case stays cheap; the
			// heap size is arbitrary (NewIdlers clamps internally).
			w = NewIdlers(cfg, int(idlers%64)+1, uint64(heapBytes))
		}

		pids := make(map[int]bool)
		for _, pid := range w.Processes() {
			pids[pid] = true
		}
		if len(pids) == 0 {
			t.Fatal("workload declares no processes")
		}
		foot := w.FootprintBytes()
		if foot == 0 {
			t.Fatal("zero footprint")
		}

		fill := func() []trace.Ref {
			buf := make([]trace.Ref, 2048)
			w.Fill(buf)
			return buf
		}
		refs := fill()
		pages := make(map[[2]uint64]struct{})
		for i, r := range refs {
			if !pids[r.PID] {
				t.Fatalf("ref %d from undeclared PID %d", i, r.PID)
			}
			if r.Kind != trace.Load && r.Kind != trace.Store {
				t.Fatalf("ref %d has kind %v", i, r.Kind)
			}
			pages[[2]uint64{uint64(r.PID), r.VAddr >> mem.PageShift}] = struct{}{}
		}
		// Footprint consistency: regions are page-aligned reservations
		// and every generated address lies inside one, so the touched
		// page population is bounded by the declared footprint.
		if got := uint64(len(pages)) * mem.PageSize; got > foot {
			t.Fatalf("touched %d bytes of distinct pages, footprint claims %d", got, foot)
		}

		// Determinism: an identically configured instance must emit
		// the identical stream (the same-seed contract every
		// experiment cell depends on).
		var w2 Workload
		switch pick % 3 {
		case 0:
			w2 = NewPhaseShift(cfg)
		case 1:
			w2 = NewWriteSplit(cfg)
		case 2:
			w2 = NewIdlers(cfg, int(idlers%64)+1, uint64(heapBytes))
		}
		if w2.FootprintBytes() != foot {
			t.Fatalf("footprint not deterministic: %d vs %d", w2.FootprintBytes(), foot)
		}
		buf2 := make([]trace.Ref, 2048)
		w2.Fill(buf2)
		for i := range refs {
			if refs[i] != buf2[i] {
				t.Fatalf("ref %d not deterministic: %+v vs %+v", i, refs[i], buf2[i])
			}
		}
	})
}
