package workload

import (
	"math/rand"

	"tieredmem/internal/trace"
)

// Synthetic instruction addresses: one per logical access site so the
// stride prefetcher can train per-site like a real PC-indexed one.
const ipBase = 0x400000

func ip(site int) uint64 { return ipBase + uint64(site)*16 }

// ---------------------------------------------------------------------------
// GUPS (HPCC RandomAccess): uniform random read-modify-writes over a
// large table — the canonical worst case for locality. Paper config:
// 4 GB input, 8 processes.

type gups struct {
	multiplex
}

// NewGUPS builds the GUPS workload: 8 processes, each performing
// random 8-byte RMW updates over its private table (default 8 MiB per
// process before scaling).
func NewGUPS(cfg Config) Workload {
	const procs = 8
	tableBytes := cfg.scaled(8 << 20)
	g := &gups{}
	g.name = "gups"
	for i := 0; i < procs; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		table := p.region(tableBytes)
		idx := p.region(64 << 10) // small hot index/stride state
		g.markHuge(p, table)
		g.bytes += table.size + idx.size
		pp := p
		g.procs = append(g.procs, p)
		g.gens = append(g.gens, func() {
			// ran = table[random]; table[random] ^= ran — one load
			// and one store to the same random location, plus a hot
			// read of the little index state.
			off := pp.rng.Uint64()
			addr := table.at(off &^ 7)
			pp.push(ip(0), idx.at(off%idx.size), trace.Load)
			pp.push(ip(1), addr, trace.Load)
			pp.push(ip(2), addr, trace.Store)
		})
	}
	return g
}

// ---------------------------------------------------------------------------
// XSBench (OpenMC macroscopic-cross-section proxy): each lookup picks
// a material from tiny hot tables, binary-searches a huge sorted
// energy grid, then gathers a handful of nuclide rows at unrelated
// random offsets. Read-only, enormous footprint, low reuse — the
// workload where IBS finds far more hot pages than the A-bit (the
// paper's Table IV shows IBS detecting ~40x more pages here).

type xsbench struct {
	multiplex
}

// NewXSBench builds the XSBench workload: 8 processes, each with a
// large energy grid (default 16 MiB) and nuclide data (default 16 MiB).
func NewXSBench(cfg Config) Workload {
	const procs = 8
	gridBytes := cfg.scaled(16 << 20)
	nuclideBytes := cfg.scaled(16 << 20)
	x := &xsbench{}
	x.name = "xsbench"
	for i := 0; i < procs; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		grid := p.region(gridBytes)
		nuclides := p.region(nuclideBytes)
		materials := p.region(32 << 10) // hot material tables
		x.markHuge(p, grid)
		x.markHuge(p, nuclides)
		x.bytes += grid.size + nuclides.size + materials.size
		pp := p
		x.procs = append(x.procs, p)
		x.gens = append(x.gens, func() {
			// Material lookup: two hot reads.
			m := pp.rng.Uint64()
			pp.push(ip(10), materials.at(m), trace.Load)
			pp.push(ip(11), materials.at(m*31), trace.Load)
			// Binary search over the sorted energy grid: log2(n)
			// probes that converge on a random target.
			lo, hi := uint64(0), grid.size/8
			target := pp.rng.Uint64() % hi
			for lo < hi {
				mid := (lo + hi) / 2
				pp.push(ip(12), grid.at(mid*8), trace.Load)
				if mid < target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			// Gather 5 nuclide rows at unrelated random offsets.
			for j := 0; j < 5; j++ {
				pp.push(ip(13+j), nuclides.at(pp.rng.Uint64()&^63), trace.Load)
			}
		})
	}
	return x
}

// ---------------------------------------------------------------------------
// Graph500 (level-synchronous BFS): frontier vertices are read
// sequentially, their CSR edge lists scanned sequentially, and the
// visited/parent arrays hit at random vertex positions. Power-law
// degrees concentrate edge traffic on hub pages.

type graph500 struct {
	multiplex
}

// NewGraph500 builds the BFS workload: 8 processes, each over a
// private synthetic power-law graph (default ~6 MiB of CSR arrays per
// process before scaling).
func NewGraph500(cfg Config) Workload {
	const procs = 8
	vertexCount := int(cfg.scaled(256 << 10)) // default 256 Ki vertices
	edgesPerVertex := 8
	g := &graph500{}
	g.name = "graph500"
	for i := 0; i < procs; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		edgeCount := vertexCount * edgesPerVertex
		offsets := p.region(uint64(vertexCount+1) * 8)
		edges := p.region(uint64(edgeCount) * 4)
		visited := p.region(uint64(vertexCount) / 8)
		parents := p.region(uint64(vertexCount) * 4)
		g.markHuge(p, offsets)
		g.markHuge(p, edges)
		g.markHuge(p, parents)
		g.bytes += offsets.size + edges.size + visited.size + parents.size

		// Degree sequence: Zipf hubs. Precompute the CSR offset of
		// every vertex once (generator state, not simulated memory).
		degZipf := zipfGen(p.rng, 1.3, uint64(edgesPerVertex*64))
		vOffsets := make([]uint64, vertexCount+1)
		var acc uint64
		for v := 0; v < vertexCount; v++ {
			vOffsets[v] = acc
			acc += degZipf.Uint64() + 1
		}
		vOffsets[vertexCount] = acc

		pp := p
		state := struct {
			frontier []int
			next     []int
		}{frontier: []int{0}}
		g.procs = append(g.procs, p)
		g.gens = append(g.gens, func() {
			if len(state.frontier) == 0 {
				// BFS exhausted: restart from a new random root.
				state.frontier = append(state.frontier, int(pp.rng.Int63())%vertexCount)
			}
			v := state.frontier[0]
			state.frontier = state.frontier[1:]
			// Read the vertex's offset entry (mostly sequential).
			pp.push(ip(20), offsets.at(uint64(v)*8), trace.Load)
			start, end := vOffsets[v], vOffsets[v+1]
			if end-start > 64 {
				end = start + 64 // cap hub degree per visit
			}
			for e := start; e < end; e++ {
				// Sequential edge-list scan.
				pp.push(ip(21), edges.at(e*4), trace.Load)
				// Random neighbor: visited-bitmap probe + parent
				// write for a fraction of discoveries.
				n := int(pp.rng.Int63()) % vertexCount
				pp.push(ip(22), visited.at(uint64(n)/8), trace.Load)
				if pp.rng.Intn(4) == 0 {
					pp.push(ip(23), visited.at(uint64(n)/8), trace.Store)
					pp.push(ip(24), parents.at(uint64(n)*4), trace.Store)
					if len(state.next) < 1024 {
						state.next = append(state.next, n)
					}
				}
			}
			if len(state.frontier) == 0 {
				state.frontier, state.next = state.next, state.frontier[:0]
			}
		})
	}
	return g
}

// ---------------------------------------------------------------------------
// LULESH (DOE shock-hydro proxy): structured 3-D stencil sweeps over
// nodal and element arrays — highly local, phase-regular, almost
// entirely prefetchable. The paper's Table IV shows both methods
// seeing few distinct pages here.

type lulesh struct {
	multiplex
}

// NewLULESH builds the stencil workload: 8 processes, each sweeping a
// private structured grid (default ~12 MiB of arrays per process).
func NewLULESH(cfg Config) Workload {
	const procs = 8
	side := 1 << 5 // 32^3 elements by default (scaled via bytes below)
	arrayBytes := cfg.scaled(4 << 20)
	l := &lulesh{}
	l.name = "lulesh"
	for i := 0; i < procs; i++ {
		p := newProc(cfg.FirstPID+i, cfg.Seed)
		coords := p.region(arrayBytes)  // nodal coordinates
		fields := p.region(arrayBytes)  // element fields (energy, pressure)
		scratch := p.region(arrayBytes) // per-phase temporaries
		l.markHuge(p, coords)
		l.markHuge(p, fields)
		l.markHuge(p, scratch)
		l.bytes += coords.size + fields.size + scratch.size
		plane := uint64(side * side * 8)
		pp := p
		cursor := uint64(0)
		phase := 0
		l.procs = append(l.procs, p)
		l.gens = append(l.gens, func() {
			// One stencil element update: read the element and its
			// +/- plane neighbors, read nodal coords, write the
			// field and a scratch temporary. Cursor advances
			// sequentially and wraps per phase.
			e := cursor * 8
			cursor++
			if e+plane >= fields.size {
				cursor = 0
				phase = (phase + 1) % 3
			}
			switch phase {
			case 0: // CalcForceForNodes-like: coords + fields -> scratch
				pp.push(ip(30), coords.at(e), trace.Load)
				pp.push(ip(31), fields.at(e), trace.Load)
				pp.push(ip(32), fields.at(e+plane), trace.Load)
				// Indirect nodelist gather: element-to-node
				// indirection jumps around the nodal array, the part
				// of LULESH the prefetcher cannot cover.
				gather := (e*7 + uint64(pp.rng.Intn(64))*plane) % coords.size
				pp.push(ip(38), coords.at(gather), trace.Load)
				pp.push(ip(33), scratch.at(e), trace.Store)
			case 1: // CalcVelocity-like: scratch -> coords
				pp.push(ip(34), scratch.at(e), trace.Load)
				pp.push(ip(35), coords.at(e), trace.Store)
			default: // EOS-like: fields in place, plus a material
				// lookup through the indirection table.
				pp.push(ip(36), fields.at(e), trace.Load)
				gather := (e*13 + uint64(pp.rng.Intn(64))*plane) % fields.size
				pp.push(ip(39), fields.at(gather), trace.Load)
				pp.push(ip(37), fields.at(e), trace.Store)
			}
		})
	}
	return l
}

// reference the rand import in a helper used by cloud.go too.
func uniform(rng *rand.Rand, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return rng.Uint64() % n
}
