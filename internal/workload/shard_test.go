package workload

import (
	"testing"

	"tieredmem/internal/trace"
)

// TestSliceMatchesGlobalStream is the partitioning-correctness proof:
// for every cell, the sliced workload's stream must equal the global
// stream restricted to the cell's processes, ref for ref. This is what
// lets the sharded pipeline claim its fused epochs aggregate exactly
// the references the sequential run would have produced.
func TestSliceMatchesGlobalStream(t *testing.T) {
	const cores = 3
	const total = 9000
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.ScaleShift = 6
			global := MustNew(name, cfg)
			buf := make([]trace.Ref, total)
			global.Fill(buf)

			cells := Cells(MustNew(name, cfg), cores)
			for cell := 0; cell < cells; cell++ {
				sliced, err := Slice(MustNew(name, cfg), cell, cores)
				if err != nil {
					t.Fatalf("Slice(%s, %d, %d): %v", name, cell, cores, err)
				}
				owned := map[int]bool{}
				for _, pid := range sliced.Processes() {
					owned[pid] = true
				}
				var want []trace.Ref
				for _, r := range buf {
					if owned[r.PID] {
						want = append(want, r)
					}
				}
				got := make([]trace.Ref, len(want))
				sliced.Fill(got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("cell %d ref %d: got %+v want %+v", cell, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSlicePartitionsProcesses checks the cells cover every process
// exactly once and the per-cell footprints stay positive.
func TestSlicePartitionsProcesses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleShift = 6
	const cores = 4
	global := MustNew("web-serving", cfg)
	cells := Cells(global, cores)
	seen := map[int]int{}
	for cell := 0; cell < cells; cell++ {
		sliced, err := Slice(MustNew("web-serving", cfg), cell, cores)
		if err != nil {
			t.Fatal(err)
		}
		if sliced.FootprintBytes() == 0 {
			t.Fatalf("cell %d has zero footprint", cell)
		}
		for _, pid := range sliced.Processes() {
			seen[pid]++
		}
		for _, r := range sliced.HugeRegions() {
			found := false
			for _, pid := range sliced.Processes() {
				if r.PID == pid {
					found = true
				}
			}
			if !found {
				t.Fatalf("cell %d lists huge range for foreign pid %d", cell, r.PID)
			}
		}
	}
	for _, pid := range global.Processes() {
		if seen[pid] != 1 {
			t.Fatalf("pid %d owned by %d cells, want exactly 1", pid, seen[pid])
		}
	}
}

// TestSliceRefsPartitionsTotal checks per-cell ref budgets sum to the
// global total for awkward remainders.
func TestSliceRefsPartitionsTotal(t *testing.T) {
	for _, tc := range []struct {
		total        int64
		procs, cores int
	}{
		{1000, 8, 4}, {1001, 8, 4}, {1007, 8, 3}, {7, 8, 4},
		{999983, 3, 8}, {12, 1, 1}, {100, 5, 5},
	} {
		cells := tc.cores
		if tc.procs < cells {
			cells = tc.procs
		}
		var sum int64
		for cell := 0; cell < cells; cell++ {
			sum += SliceRefs(tc.total, tc.procs, cell, tc.cores)
		}
		if sum != tc.total {
			t.Errorf("SliceRefs(%d, %d procs, %d cores): budgets sum to %d", tc.total, tc.procs, tc.cores, sum)
		}
	}
}

// TestSliceRejectsCombined pins the error path: weighted interleaves
// have no per-core decomposition.
func TestSliceRejectsCombined(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScaleShift = 6
	a := MustNew("gups", cfg)
	cfg2 := cfg
	cfg2.FirstPID = cfg.FirstPID + 64
	b := MustNew("web-serving", cfg2)
	c, err := Combine(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if Sliceable(c) {
		t.Fatal("combined workload reports sliceable")
	}
	if _, err := Slice(c, 0, 2); err == nil {
		t.Fatal("Slice(combined) succeeded, want error")
	}
	if _, err := Slice(MustNew("gups", cfg), 2, 2); err == nil {
		t.Fatal("Slice with cell >= cores succeeded, want error")
	}
}
