package badgertrap

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func testMachine(t *testing.T) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 8, Ways: 2}
	cfg.L2TLB = tlb.Config{Entries: 16, Ways: 4}
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(256, 256))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func touch(t *testing.T, m *cpu.Machine, pid int, vaddr uint64) {
	t.Helper()
	if _, err := m.Execute(trace.Ref{PID: pid, VAddr: vaddr, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackCountsTLBMisses(t *testing.T) {
	m := testMachine(t)
	p, err := New(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	touch(t, m, 1, 0x1000)
	p.Track([]int{1})
	if p.Stats().Tracked != 1 {
		t.Fatalf("tracked %d PTEs, want 1", p.Stats().Tracked)
	}
	// First access after tracking: TLB was flushed -> walk -> fault.
	touch(t, m, 1, 0x1000)
	if p.Stats().Faults != 1 {
		t.Fatalf("faults = %d, want 1", p.Stats().Faults)
	}
	// TLB now holds the translation: accesses run free.
	touch(t, m, 1, 0x1000)
	touch(t, m, 1, 0x1000)
	if p.Stats().Faults != 1 {
		t.Errorf("TLB-resident accesses faulted")
	}
	// Evict the translation: the next walk faults again, because the
	// poison stayed set (repoison semantics).
	m.FlushAllTLBs()
	touch(t, m, 1, 0x1000)
	if p.Stats().Faults != 2 {
		t.Errorf("faults = %d after TLB eviction, want 2", p.Stats().Faults)
	}
}

func TestHarvestAndHotClassification(t *testing.T) {
	m := testMachine(t)
	cfg := DefaultConfig()
	cfg.HotThreshold = 2
	p, _ := New(cfg, m)
	touch(t, m, 1, 0x1000)
	touch(t, m, 1, 0x2000)
	p.Track([]int{1})
	// Page 1 faults twice (flush in between), page 2 once.
	touch(t, m, 1, 0x1000)
	m.FlushAllTLBs()
	touch(t, m, 1, 0x1000)
	touch(t, m, 1, 0x2000)
	hot := p.HotPages()
	if len(hot) != 1 || hot[0] != (core.PageKey{PID: 1, VPN: 1}) {
		t.Errorf("hot pages = %v, want page 1 only", hot)
	}
	ep := p.HarvestEpoch(0)
	if len(ep.Pages) != 2 {
		t.Fatalf("harvest has %d pages, want 2", len(ep.Pages))
	}
	if p.DistinctPages() != 0 {
		t.Errorf("harvest did not reset")
	}
}

func TestUntrackStopsCounting(t *testing.T) {
	m := testMachine(t)
	p, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x1000)
	p.Track([]int{1})
	p.Untrack([]int{1})
	touch(t, m, 1, 0x1000)
	if p.Stats().Faults != 0 {
		t.Errorf("untracked page faulted")
	}
}

func TestOverheadAccounted(t *testing.T) {
	m := testMachine(t)
	p, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x1000)
	p.Track([]int{1})
	before := p.Stats().OverheadNS
	touch(t, m, 1, 0x1000)
	if p.Stats().OverheadNS <= before {
		t.Errorf("fault overhead not recorded")
	}
}

func TestBadConfig(t *testing.T) {
	m := testMachine(t)
	if _, err := New(Config{FaultCost: -1}, m); err == nil {
		t.Errorf("negative cost accepted")
	}
}
