// Package badgertrap implements the BadgerTrap-based access profiler
// the paper describes in §II-B and that Thermostat builds on: chosen
// pages' PTEs are poisoned with a reserved bit and flushed from the
// TLB, so every subsequent hardware page walk to them raises a
// protection fault. The fault handler counts the event and leaves the
// poison in place while the translation lands in the TLB — the page
// then runs at full speed until its TLB entry is evicted, and the next
// walk faults again. The per-page fault count therefore estimates the
// page's TLB-miss count, which Thermostat uses as a proxy for access
// frequency.
//
// The approach is exact about which page faulted but, as the paper
// notes, is "prone to fault overhead and assumes that the number of
// TLB misses and the number of cache misses to a page are similar,
// which may not hold for hot pages" — the methods-comparison
// experiment quantifies both failure modes against TMP.
package badgertrap

import (
	"fmt"
	"sort"

	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/trace"
)

// Config parameterizes the profiler.
type Config struct {
	// FaultCost is the wall-clock cost of one BadgerTrap fault
	// (trap, unpoison, install, repoison).
	FaultCost int64
	// PerPTECost is the wall-clock cost of poisoning one PTE during
	// Track.
	PerPTECost int64
	// HotThreshold is the per-epoch fault count at which Thermostat
	// would classify a page hot.
	HotThreshold uint32
}

// DefaultConfig mirrors the BadgerTrap paper's measured ~1 us fault
// cost.
func DefaultConfig() Config {
	return Config{FaultCost: 1000, PerPTECost: 30, HotThreshold: 4}
}

// Stats counts profiler activity.
type Stats struct {
	Tracked    uint64 // PTEs poisoned by Track calls
	Faults     uint64
	OverheadNS int64
}

// Profiler drives BadgerTrap-style counting on one machine.
type Profiler struct {
	cfg     Config
	machine *cpu.Machine
	stats   Stats
	// Per-page fault counts for the current epoch, held dense: pages
	// intern to stable ids once (the table persists across epochs —
	// tracked footprints recur) and faults bump a slice slot. active
	// lists the ids touched this epoch so harvest zeroes only those
	// instead of reallocating a map every epoch.
	tab    *pageidx.Table[core.PageKey]
	counts []uint32
	active []uint32
}

// New installs the poison-fault handler and returns the profiler. It
// cannot be combined with the emul package's latency emulator — both
// own the machine's single poison handler.
func New(cfg Config, m *cpu.Machine) (*Profiler, error) {
	if cfg.FaultCost < 0 || cfg.PerPTECost < 0 {
		return nil, fmt.Errorf("badgertrap: costs must be non-negative")
	}
	p := &Profiler{
		cfg:     cfg,
		machine: m,
		tab:     pageidx.New(0, core.PageKeyHash),
	}
	m.SetPoisonHandler(p.onFault)
	return p, nil
}

// onFault counts the access; the poison stays set (unpoison=false), so
// the next page walk to this page faults again — TLB-miss counting.
// The fault cost is deliberately NOT time-compressed: fault volume
// scales with executed work (TLB misses), not with wall-clock
// intervals, so the per-event cost keeps its real magnitude. This is
// why full-footprint BadgerTrap tracking is brutally expensive on
// TLB-thrashing workloads (the BadgerTrap paper reports multi-x
// slowdowns; Thermostat samples ~0.5% of pages to stay usable).
func (p *Profiler) onFault(o *trace.Outcome, pd *mem.PageDescriptor) (int64, bool) {
	p.stats.Faults++
	p.bump(core.PageKey{PID: o.PID, VPN: mem.VPNOf(o.VAddr)})
	cost := p.cfg.FaultCost
	p.stats.OverheadNS += cost
	return cost, false
}

// bump counts one fault against a page's dense slot.
func (p *Profiler) bump(key core.PageKey) {
	id := p.tab.Intern(key)
	for int(id) >= len(p.counts) {
		p.counts = append(p.counts, 0)
	}
	if p.counts[id] == 0 {
		p.active = append(p.active, id)
	}
	p.counts[id]++
}

// sortActive orders the epoch's touched ids canonically by page key.
func (p *Profiler) sortActive() {
	sort.Slice(p.active, func(i, j int) bool {
		return core.PageKeyLess(p.tab.Key(p.active[i]), p.tab.Key(p.active[j]))
	})
}

// Track poisons every present leaf PTE of the given processes and
// flushes the TLBs so counting starts immediately. It returns the
// setup cost (already recorded), which the caller charges to the core
// running the tool.
func (p *Profiler) Track(pids []int) int64 {
	var marked int
	for _, pid := range pids {
		table, ok := p.machine.Tables()[pid]
		if !ok {
			continue
		}
		table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
			*pte |= pagetable.BitPoison
			marked++
			return true
		})
	}
	p.stats.Tracked += uint64(marked)
	cost := p.machine.SoftCost(int64(marked) * p.cfg.PerPTECost)
	cost += p.machine.FlushAllTLBs()
	p.stats.OverheadNS += cost
	return cost
}

// Untrack removes the poison from every leaf of the given processes.
func (p *Profiler) Untrack(pids []int) {
	for _, pid := range pids {
		table, ok := p.machine.Tables()[pid]
		if !ok {
			continue
		}
		table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
			*pte &^= pagetable.BitPoison
			return true
		})
	}
	p.machine.FlushAllTLBs()
}

// HarvestEpoch returns per-page fault counts as an EpochStats (counts
// in the Abit field for rank compatibility) and resets the
// accumulator.
func (p *Profiler) HarvestEpoch(epoch int) core.EpochStats {
	stats := core.EpochStats{Epoch: epoch}
	p.sortActive()
	stats.Pages = make([]core.PageStat, 0, len(p.active))
	for _, id := range p.active {
		stats.Pages = append(stats.Pages, core.PageStat{Key: p.tab.Key(id), Abit: p.counts[id]})
		p.counts[id] = 0
	}
	p.active = p.active[:0]
	return stats
}

// HotPages returns the pages whose current-epoch fault count reaches
// the Thermostat threshold.
func (p *Profiler) HotPages() []core.PageKey {
	var out []core.PageKey
	p.sortActive()
	for _, id := range p.active {
		if p.counts[id] >= p.cfg.HotThreshold {
			out = append(out, p.tab.Key(id))
		}
	}
	return out
}

// DistinctPages returns how many pages have faulted this epoch.
func (p *Profiler) DistinctPages() int { return len(p.active) }

// Stats returns a copy of the counters.
func (p *Profiler) Stats() Stats { return p.stats }
