package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RankPath enforces the single-comparator contract: any sort over
// rank-shaped data (anything carrying a core.PageKey) in the policy,
// mover, memory, and experiment packages must route its ordering
// through the canonical comparators in internal/core (RankCmp,
// RankLess, ColdestLess, PageKeyLess) or the bounded selectors built
// on them (TopK, TopKFunc). A hand-rolled tie-break that drifts from
// RankCmp silently diverges selections between packages — the exact
// bug class core/rank.go exists to end.
//
// The check is interprocedural: a package-level function whose every
// return delegates to a canonical comparator earns a "rankcmp" fact,
// so downstream packages may sort with it; local closures are resolved
// lexically through their defining assignment.
var RankPath = &Analyzer{
	Name: "rankpath",
	Doc:  "forbids hand-rolled comparators over rank-shaped data in policy/mem/experiments; route through core.RankCmp/core.TopK",
	Run:  runRankPath,
}

// rankCmpFact marks a function as a sanctioned comparator: its result
// is fully delegated to internal/core's canonical comparators.
type rankCmpFact struct{}

func (rankCmpFact) FactKind() string { return "rankcmp" }

// rankPathScope lists the import-path fragments the sort check applies
// to. Fact export runs everywhere so any package can publish a
// sanctioned comparator.
var rankPathScope = []string{"internal/policy", "internal/mem", "internal/experiments"}

func runRankPath(pass *Pass) {
	exportRankCmpFacts(pass)
	inScope := false
	for _, frag := range rankPathScope {
		if strings.Contains(pass.Path(), frag) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var cmp ast.Expr
			switch {
			case fn.Pkg().Path() == "sort" && (fn.Name() == "Slice" || fn.Name() == "SliceStable"):
				if len(call.Args) == 2 {
					cmp = call.Args[1]
				}
			case fn.Pkg().Path() == "sort" && (fn.Name() == "Sort" || fn.Name() == "Stable"):
				// sort.Interface hides the comparator entirely; the
				// canonical path is a slice plus a core comparator.
				pass.Reportf(call.Pos(), "sort.%s over an opaque sort.Interface in %s: sort a slice with core.RankLess/core.PageKeyLess so the order is auditable", fn.Name(), shortPath(pass.Path()))
				return true
			case fn.Pkg().Path() == "slices" && (fn.Name() == "SortFunc" || fn.Name() == "SortStableFunc"):
				if len(call.Args) == 2 {
					cmp = call.Args[1]
				}
			default:
				return true
			}
			if cmp == nil {
				return true
			}
			if !mentionsPageKey(pass, cmp) && !mentionsPageKey(pass, call.Args[0]) {
				return true
			}
			if sanctionedComparator(pass, cmp, 0) {
				return true
			}
			pass.Reportf(call.Pos(), "hand-rolled rank comparator over page data: route the order through core.RankCmp/core.RankLess (or select with core.TopKFunc) so the tie-break cannot drift")
			return true
		})
	}
}

// exportRankCmpFacts publishes a rankcmp fact for every package-level
// function whose every return delegates to a canonical comparator.
func exportRankCmpFacts(pass *Pass) {
	for _, file := range pass.Files() {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !comparatorResult(fd.Type) {
				continue
			}
			obj, _ := pass.Types().Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			delegated, returns := true, 0
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				returns++
				if len(ret.Results) != 1 || !callsCanonicalCmp(pass, ret.Results[0], 0) {
					delegated = false
				}
				return true
			})
			if delegated && returns > 0 {
				pass.ExportObjectFact(obj, rankCmpFact{})
			}
		}
	}
}

// comparatorResult reports whether the signature returns exactly one
// bool or int — the shape of a less/cmp function.
func comparatorResult(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) != 1 || len(ft.Results.List[0].Names) > 1 {
		return false
	}
	id, ok := ft.Results.List[0].Type.(*ast.Ident)
	return ok && (id.Name == "bool" || id.Name == "int")
}

// sanctionedComparator reports whether the comparator expression
// routes through a canonical core comparator: directly (a func literal
// or named function whose body delegates), via a rankcmp fact, or via
// a local closure variable resolved through its defining assignment.
func sanctionedComparator(pass *Pass, cmp ast.Expr, depth int) bool {
	if depth > 3 {
		return false
	}
	switch e := ast.Unparen(cmp).(type) {
	case *ast.FuncLit:
		return callsCanonicalCmp(pass, e.Body, depth)
	case *ast.Ident, *ast.SelectorExpr:
		var obj types.Object
		if id, ok := e.(*ast.Ident); ok {
			obj = pass.Types().ObjectOf(id)
		} else {
			obj = pass.Types().ObjectOf(e.(*ast.SelectorExpr).Sel)
		}
		if fn, ok := obj.(*types.Func); ok {
			return isCanonicalCmpFunc(fn) || pass.ObjectFact(fn, "rankcmp") != nil
		}
		if v, ok := obj.(*types.Var); ok {
			if lit := definingFuncLit(pass, v); lit != nil {
				return callsCanonicalCmp(pass, lit.Body, depth)
			}
		}
	}
	return false
}

// callsCanonicalCmp reports whether node lexically contains a call to
// a canonical comparator, a rankcmp-fact function, or a local closure
// that does.
func callsCanonicalCmp(pass *Pass, node ast.Node, depth int) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(pass, call); fn != nil {
			if isCanonicalCmpFunc(fn) || pass.ObjectFact(fn, "rankcmp") != nil {
				found = true
				return false
			}
		}
		if sanctionedComparator(pass, call.Fun, depth+1) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isCanonicalCmpFunc reports whether fn is one of internal/core's
// canonical comparators or bounded selectors.
func isCanonicalCmpFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/core") {
		return false
	}
	switch fn.Name() {
	case "RankCmp", "RankLess", "ColdestLess", "PageKeyLess", "TopK", "TopKFunc":
		return true
	}
	return false
}

// mentionsPageKey reports whether any expression under e has (or
// contains a selector on) type core.PageKey — the "rank-shaped" gate
// that keeps rankpath away from sorts over unrelated data.
func mentionsPageKey(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := pass.TypeOf(expr); t != nil && typeTouchesPageKey(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// typeTouchesPageKey reports whether t is core.PageKey, or a
// slice/array/pointer of, or a struct directly embedding one.
func typeTouchesPageKey(t types.Type) bool { return touchesPageKey(t, 0) }

func touchesPageKey(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	switch u := t.(type) {
	case *types.Named:
		if isPageKey(u) {
			return true
		}
		return touchesPageKey(u.Underlying(), depth+1)
	case *types.Slice:
		return touchesPageKey(u.Elem(), depth+1)
	case *types.Array:
		return touchesPageKey(u.Elem(), depth+1)
	case *types.Pointer:
		return touchesPageKey(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isPageKey(u.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// definingFuncLit resolves a local comparator variable to the func
// literal assigned to it, scanning the package's files for a
// `v := func(...) ... { ... }` definition.
func definingFuncLit(pass *Pass, v *types.Var) *ast.FuncLit {
	var lit *ast.FuncLit
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit != nil {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, l := range as.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || pass.Types().ObjectOf(id) != v {
					continue
				}
				if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
					lit = fl
					return false
				}
			}
			return true
		})
		if lit != nil {
			break
		}
	}
	return lit
}

// shortPath trims the module prefix off an import path for messages.
func shortPath(path string) string {
	if i := strings.Index(path, "internal/"); i >= 0 {
		return path[i:]
	}
	return path
}
