package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DenseMap enforces the dense-column contract: per-page state outside
// internal/core must be a column over core/pageidx interned ids, not a
// map keyed by page identity. The map form rebuilds hashes every
// epoch, invites order-sensitive iteration (maprange's whole beat),
// and is the allocation pattern PR 4 removed from the hot path. Any
// map type with a core.PageKey key and a non-empty value type is
// flagged wherever the type is written — struct fields, locals,
// make calls, signatures. Maps with struct{} values (page sets, e.g.
// policy.Selection) are exempt: sets are outputs, not per-page state
// columns.
var DenseMap = &Analyzer{
	Name: "densemap",
	Doc:  "forbids map[core.PageKey]… per-page state outside internal/core; use dense pageidx columns",
	Run:  runDenseMap,
}

func runDenseMap(pass *Pass) {
	path := pass.Path()
	if !strings.Contains(path, "internal/") {
		return
	}
	// internal/core (and core/pageidx beneath it) is where the dense
	// representation and its map-boundary adapters (RanksFromMap) live.
	if strings.HasSuffix(path, "internal/core") || strings.Contains(path, "internal/core/") {
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			mt, ok := n.(*ast.MapType)
			if !ok {
				return true
			}
			t := pass.TypeOf(mt)
			m, ok := t.(*types.Map)
			if !ok {
				return true
			}
			if !isPageKey(m.Key()) || isEmptyStruct(m.Elem()) {
				return true
			}
			pass.Reportf(mt.Pos(), "per-page state as map[core.PageKey]%s: use a dense column over core/pageidx interned ids", m.Elem())
			return true
		})
	}
}

// isPageKey reports whether t is core.PageKey.
func isPageKey(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "PageKey" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/core")
}

// isEmptyStruct reports whether t's underlying type is struct{}.
func isEmptyStruct(t types.Type) bool {
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}
