package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatSum flags floating-point accumulation inside map iteration.
// Float addition is not associative: summing in map order makes the
// last few bits of report and experiment output vary run to run even
// when every input is identical. Accumulate over order.SortedKeys (or
// justify with //tmplint:ordered) instead.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "flags float accumulation over map iteration (order-dependent rounding)",
	Run:  runFloatSum,
}

func runFloatSum(pass *Pass) {
	if !strings.Contains(pass.Path(), "internal/") {
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || mapTypeOf(pass, rs.X) == nil {
				return true
			}
			if pass.Suppressed(rs.Pos()) {
				return false
			}
			checkFloatAccum(pass, rs)
			return true
		})
	}
}

// checkFloatAccum reports float accumulators mutated in the range body
// but declared outside it.
func checkFloatAccum(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		accum := false
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			// x = x + e / x = e + x (and -, *, /).
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
				if bin, ok := st.Rhs[0].(*ast.BinaryExpr); ok {
					switch bin.Op {
					case token.ADD, token.SUB, token.MUL, token.QUO:
						accum = sameExpr(st.Lhs[0], bin.X) || sameExpr(st.Lhs[0], bin.Y)
					default:
					}
				}
			}
		default:
		}
		if !accum {
			return true
		}
		for _, lhs := range st.Lhs {
			if !isFloat(pass.TypeOf(lhs)) {
				continue
			}
			if localTo(pass, lhs, rs.Body) {
				continue
			}
			// A directive on the statement's own line is handled by the
			// engine's report filter; only the enclosing-range-line
			// suppression above needs analyzer cooperation.
			pass.Reportf(st.Pos(), "float accumulation into %s over map iteration: rounding depends on visit order; accumulate over order.SortedKeys", types.ExprString(lhs))
		}
		return true
	})
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// localTo reports whether expr is an identifier declared inside body
// (a per-iteration local whose rounding never escapes).
func localTo(pass *Pass, expr ast.Expr, body *ast.BlockStmt) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Types().ObjectOf(id)
	return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() < body.End()
}

// sameExpr reports whether two expressions are the same identifier or
// selector chain, textually.
func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(a) == types.ExprString(b)
}
