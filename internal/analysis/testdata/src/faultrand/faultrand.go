// Package fixture exercises the faultrand analyzer: the fault plane
// must be seeded from the run seed, never from the wall clock or a
// global rand draw — one nondeterministic seed and chaos runs stop
// being reproducible.
package fixture

import (
	"math/rand"
	"time"

	"tieredmem/internal/fault"
)

func wallClockSeed(spec fault.Spec) *fault.Plane {
	return fault.New(spec, time.Now().UnixNano()) // want `wall-clock time.Now flows into a fault-package call`
}

func elapsedSeed(spec fault.Spec, started time.Time) *fault.Plane {
	return fault.New(spec, int64(time.Since(started))) // want `wall-clock time.Since flows into a fault-package call`
}

func globalRandSeed(spec fault.Spec) *fault.Plane {
	return fault.New(spec, rand.Int63()) // want `global rand.Int63 flows into a fault-package call`
}

func runSeedOK(spec fault.Spec, seed int64) *fault.Plane {
	// The sanctioned path: the run seed handed down from the config.
	return fault.New(spec, seed)
}

func localRandOK(spec fault.Spec, seed int64) *fault.Plane {
	// A seeded local generator is deterministic, so deriving a plane
	// seed from one is fine; only global draws are banned.
	r := rand.New(rand.NewSource(seed))
	return fault.New(spec, r.Int63())
}

func wallClockElsewhereOK(seed int64) int64 {
	// Wall-clock use away from fault-package calls is the wallclock
	// analyzer's business, not this one's.
	host := time.Now().UnixNano()
	return host ^ seed
}
