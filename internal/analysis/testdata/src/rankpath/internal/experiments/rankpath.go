// Package fixture exercises the rankpath analyzer: every sort over
// rank-shaped data (anything carrying a core.PageKey) must route its
// order through internal/core's canonical comparators.
package fixture

import (
	"sort"

	"tieredmem/internal/core"
)

type pageCount struct {
	Key   core.PageKey
	Count uint64
}

func handRolled(keys []core.PageKey) {
	sort.Slice(keys, func(i, j int) bool { // want `hand-rolled rank comparator over page data`
		return keys[i].VPN < keys[j].VPN
	})
}

func handRolledStable(rows []pageCount) {
	sort.SliceStable(rows, func(i, j int) bool { // want `hand-rolled rank comparator over page data`
		return rows[i].Count > rows[j].Count
	})
}

func localBadClosure(keys []core.PageKey) {
	bad := func(a, b core.PageKey) bool { return a.PID < b.PID }
	sort.Slice(keys, func(i, j int) bool { return bad(keys[i], keys[j]) }) // want `hand-rolled rank comparator over page data`
}

type byVPN []core.PageKey

func (s byVPN) Len() int           { return len(s) }
func (s byVPN) Less(i, j int) bool { return s[i].VPN < s[j].VPN }
func (s byVPN) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

func opaqueInterface(keys []core.PageKey) {
	sort.Sort(byVPN(keys)) // want `sort.Sort over an opaque sort.Interface`
}

func canonicalOK(keys []core.PageKey) {
	sort.Slice(keys, func(i, j int) bool { return core.PageKeyLess(keys[i], keys[j]) })
}

func canonicalRankOK(rows []pageCount) {
	sort.Slice(rows, func(i, j int) bool {
		return core.RankLess(float64(rows[i].Count), float64(rows[j].Count), false, false, rows[i].Key, rows[j].Key)
	})
}

// pageLess delegates every return to a canonical comparator, earning a
// rankcmp fact that sanctions sorts routed through it.
func pageLess(a, b core.PageKey) bool {
	return core.PageKeyLess(a, b)
}

func factOK(keys []core.PageKey) {
	sort.Slice(keys, func(i, j int) bool { return pageLess(keys[i], keys[j]) })
}

func localClosureOK(keys []core.PageKey) {
	less := func(a, b core.PageKey) bool { return core.PageKeyLess(a, b) }
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
}

func topOK(rows []pageCount) []pageCount {
	return core.TopKFunc(rows, 8, func(a, b pageCount) bool {
		return core.RankLess(float64(a.Count), float64(b.Count), false, false, a.Key, b.Key)
	})
}

// Sorts over data with no page identity are out of scope.
func plainOK(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
