// Package fixture exercises the senterr analyzer: failures in the
// fault/mem/policy domains are classified with errors.Is against
// package-level sentinels, never by matching error text or comparing
// error values directly.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

// Package-level sentinels are the sanctioned shape. The transactional
// pair mirrors mem.ErrCopyAborted / mem.ErrShadowStale: new failure
// classes get sentinels, not strings.
var (
	ErrTierFull    = errors.New("fixture: tier full")
	ErrPinned      = errors.New("fixture: page pinned")
	ErrCopyAborted = errors.New("fixture: page dirtied mid-copy")
	ErrShadowStale = errors.New("fixture: shadow copy stale")
)

func textCompare(err error) bool {
	return err.Error() == "fixture: tier full" // want `comparing err.Error`
}

func textCompareNeq(err error) bool {
	return "fixture: page pinned" != err.Error() // want `comparing err.Error`
}

func textMatch(err error) bool {
	return strings.Contains(err.Error(), "tier full") // want `matching err.Error.. text with strings.Contains`
}

func textPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "fixture:") // want `matching err.Error.. text with strings.HasPrefix`
}

func directCompare(err error) bool {
	return err == ErrTierFull // want `direct == comparison of errors breaks under wrapping`
}

func directNotEqual(err error) bool {
	return err != ErrPinned // want `direct != comparison of errors breaks under wrapping`
}

func adHoc(full bool) error {
	if full {
		return errors.New("fixture: out of room") // want `errors.New inside a function body`
	}
	return nil
}

func abortTextCompare(err error) bool {
	return err.Error() == "fixture: page dirtied mid-copy" // want `comparing err.Error`
}

func abortDirectCompare(err error) bool {
	return err == ErrCopyAborted // want `direct == comparison of errors breaks under wrapping`
}

func staleTextMatch(err error) bool {
	return strings.Contains(err.Error(), "shadow copy stale") // want `matching err.Error.. text with strings.Contains`
}

func staleDirectNotEqual(err error) bool {
	return err != ErrShadowStale // want `direct != comparison of errors breaks under wrapping`
}

// Classification through errors.Is, nil checks, and %w wrapping are
// the sanctioned patterns.
func classifyOK(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrTierFull)
}

func wrapOK(err error) error {
	if err != nil {
		return fmt.Errorf("promote: %w", err)
	}
	return nil
}

func classifyTxOK(err error) bool {
	return errors.Is(err, ErrCopyAborted) || errors.Is(err, ErrShadowStale)
}
