// Package fixture exercises the epochaccount analyzer. The struct
// names shadow the real core.PageStat and mem.PageDescriptor; this
// package's import path is not a sanctioned accumulation path, so
// every counter write below is a finding.
package fixture

// PageStat mirrors core.PageStat's counter fields.
type PageStat struct {
	Abit  uint32
	Trace uint32
	Write uint32
	True  uint32
	Other int
}

// PageDescriptor mirrors mem.PageDescriptor's counter fields.
type PageDescriptor struct {
	AbitEpoch  uint32
	TraceEpoch uint32
	AbitTotal  uint64
	Flags      uint8
}

func directWrites(ps *PageStat) {
	ps.Abit = 3           // want `write to PageStat.Abit outside sanctioned`
	ps.Trace++            // want `write to PageStat.Trace outside sanctioned`
	ps.Write += 1         // want `write to PageStat.Write outside sanctioned`
	ps.True = ps.True + 1 // want `write to PageStat.True outside sanctioned`
	ps.Other = 7          // ok: not a protected counter
}

func descriptorWrites(pd *PageDescriptor) {
	pd.AbitEpoch++    // want `write to PageDescriptor.AbitEpoch outside sanctioned`
	pd.TraceEpoch = 0 // want `write to PageDescriptor.TraceEpoch outside sanctioned`
	pd.AbitTotal += 2 // want `write to PageDescriptor.AbitTotal outside sanctioned`
	pd.Flags |= 1     // ok: not a protected counter
}

func escapeHatch(pd *PageDescriptor) *uint32 {
	return &pd.TraceEpoch // want `write to PageDescriptor.TraceEpoch outside sanctioned`
}

func readsOK(ps *PageStat, pd *PageDescriptor) uint64 {
	return uint64(ps.Abit) + uint64(ps.Trace) + uint64(pd.AbitEpoch) // ok: reads never corrupt ranks
}
