// Package fixture exercises the goroutine analyzer: concurrency
// primitives are fenced into internal/runner and internal/telemetry;
// everywhere else they are a second scheduler in a deterministic
// simulator.
package fixture

import "sync"

func work() {}

func launch() {
	go work() // want `go statement outside internal/runner`
}

func pipe() {
	ch := make(chan int, 1) // want `channel outside internal/runner and internal/telemetry`
	ch <- 1                 // want `channel send outside internal/runner and internal/telemetry`
	select { // want `select outside internal/runner and internal/telemetry`
	case v := <-ch:
		_ = v
	default:
	}
}

func shared() {
	var m sync.Map // want `sync.Map outside internal/runner and internal/telemetry`
	m.Store("k", 1)
}

// Guarding shared state is fine; only schedule-dependent ordering is
// not.
func guardedOK() {
	var mu sync.Mutex
	mu.Lock()
	defer mu.Unlock()
}

func waitOK() {
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Wait()
}
