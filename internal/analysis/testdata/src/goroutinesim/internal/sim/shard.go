// Package sim fixture: the shard-group primitive does not loosen the
// concurrency fence. internal/sim drives the sharded pipeline by
// submitting pure per-cell jobs to runner.ShardGroup — an ordinary
// function call — so a literal `go` statement in sim is still a second
// scheduler and still flagged.
package sim

func cellJob() {}

// shardGroup stands in for runner.ShardGroup: calling into the
// runner-owned primitive is the sanctioned way to fan out, and a plain
// call draws no finding.
func shardGroup(shards int, fn func(int)) {
	for s := 0; s < shards; s++ {
		fn(s)
	}
}

func runCellsOK() {
	shardGroup(8, func(int) { cellJob() })
}

func runCellsBad() {
	go cellJob() // want `go statement outside internal/runner`
}
