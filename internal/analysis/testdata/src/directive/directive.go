// Package fixture exercises the suppression-directive grammar and the
// directive audit: one directive covering a line with findings from
// two analyzers, directives naming the wrong analyzer, stale
// directives, and malformed ones.
package fixture

// oneDirectiveTwoAnalyzers hits the multi-finding edge: the single
// line below carries both a maprange finding (unsorted drain) and a
// floatsum finding (float accumulation), and the one ordered
// directive suppresses both.
func oneDirectiveTwoAnalyzers(m map[string]float64) ([]string, float64) {
	var keys []string
	var sum float64
	//tmplint:ordered drain and sum feed a sorted report downstream
	for k, v := range m { keys = append(keys, k); sum += v }
	return keys, sum
}

// wrongAnalyzer names an analyzer that has no finding here, so the
// maprange finding survives and the allow directive is reported
// unused.
func wrongAnalyzer(m map[string]int) []int {
	var out []int
	/* want `unused tmplint:allow wallclock directive` */ //tmplint:allow wallclock misdirected suppression
	for _, v := range m { // want `appends to a slice that is never sorted`
		out = append(out, v)
	}
	return out
}

// stale sits above code that stopped ranging over a map; the audit
// demands its deletion.
func stale(xs []float64) float64 {
	var sum float64
	/* want `unused tmplint:ordered directive` */ //tmplint:ordered slice order is fixed by the caller
	for _, v := range xs {
		sum += v
	}
	return sum
}

// unjustified suppresses a real finding but gives reviewers nothing,
// which is itself a finding.
func unjustified(m map[string]float64) float64 {
	var sum float64
	/* want `without a justification` */ //tmplint:ordered
	for _, v := range m {
		sum += v
	}
	return sum
}

// unknownVerb is a typo silently doing nothing without the audit.
func unknownVerb(m map[string]int) int {
	n := 0
	/* want `unknown tmplint directive` */ //tmplint:frobnicate cleanup later
	for range m {
		n++
	}
	return n
}

// unknownAnalyzer names a check that does not exist.
func unknownAnalyzer(m map[string]int) int {
	n := 0
	/* want `names unknown analyzer` */ //tmplint:allow nosuchcheck typo for maprange
	for range m {
		n++
	}
	return n
}

// namedAllowOK is the sanctioned generalized form: the right analyzer,
// with a justification, on a line with a real finding.
func namedAllowOK(m map[string]int) []int {
	var out []int
	//tmplint:allow maprange order is rinsed by the deterministic consumer
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
