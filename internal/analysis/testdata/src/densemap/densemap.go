// Package fixture exercises the densemap analyzer: per-page state in
// internal/ packages must be a dense column over pageidx interned ids,
// not a map keyed by core.PageKey.
package fixture

import (
	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
)

type perPageState struct {
	counts map[core.PageKey]uint64 // want `use a dense column over core/pageidx interned ids`
	// A page set is an output, not a per-page state column.
	selected map[core.PageKey]struct{}
}

func accumulate(keys []core.PageKey) map[core.PageKey]float64 { // want `use a dense column over core/pageidx interned ids`
	scores := make(map[core.PageKey]float64) // want `use a dense column over core/pageidx interned ids`
	for _, k := range keys {
		scores[k] += 1
	}
	return scores
}

// denseOK is the sanctioned shape: interned ids index plain slices.
type denseOK struct {
	tab    *pageidx.Table[core.PageKey]
	counts []uint64
}

func (d *denseOK) add(k core.PageKey) {
	id := d.tab.Intern(k)
	if int(id) == len(d.counts) {
		d.counts = append(d.counts, 0)
	}
	d.counts[id]++
}

// Maps keyed by anything else are not this analyzer's business.
func byName(names []string) map[string]int {
	out := make(map[string]int, len(names))
	for _, n := range names {
		out[n]++
	}
	return out
}
