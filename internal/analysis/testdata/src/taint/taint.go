// Package fixture proves the engine's cross-package fact propagation:
// the taint sources live in tieredmem/testdata/taintsrc/ext (outside
// internal/, where the wallclock analyzer never looks), yet the
// findings land here, at the internal/ call sites that consume the
// laundered results.
package fixture

import (
	"tieredmem/internal/fault"
	"tieredmem/internal/policy"
	"tieredmem/internal/telemetry"
	"tieredmem/testdata/taintsrc/ext"
)

func launderedStamp(t *telemetry.Tracer) {
	t.EmitDaemonTick(ext.Stamp(), 1) // want `wall-clock-derived value flows into a telemetry call` `launders wall-clock time into internal/ code`
}

func launderedTwoHops(t *telemetry.Tracer) {
	t.EmitDaemonTick(ext.Indirect(), 1) // want `wall-clock-derived value flows into a telemetry call` `launders wall-clock time into internal/ code`
}

func launderedSeed() *fault.Plane {
	return fault.New(fault.Spec{}, ext.Roll()) // want `global-rand-derived value flows into a fault-package call` `launders global randomness into internal/ code`
}

// An admission budget set from the host clock would make every
// admit/defer/reject decision wall-clock-dependent — exactly the
// laundering path the analyzer must catch.
func launderedAdmissionBudget(mv *policy.Mover) {
	mv.AdmissionBudgetNS = ext.Stamp() // want `launders wall-clock time into internal/ code`
}

func pureOK(t *telemetry.Tracer) {
	t.EmitDaemonTick(ext.Pure(42), 1)
}
