// Package fixture exercises the floatsum analyzer.
package fixture

func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // the range itself also trips maprange; floatsum anchors on the assignment
		total += v // want `float accumulation into total over map iteration`
	}
	return total
}

func floatRecompute(m map[string]float64) float64 {
	mean := 0.0
	for _, v := range m {
		mean = mean + v // want `float accumulation into mean over map iteration`
	}
	return mean
}

func intAccumOK(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: integer addition commutes exactly
		total += v
	}
	return total
}

func localFloatOK(m map[string][]float64) []float64 {
	var out []float64
	for _, vs := range m { // ok for floatsum: accumulator is body-local (maprange still governs the loop)
		local := 0.0
		for _, v := range vs {
			local += v
		}
		out = append(out, local)
	}
	return out
}

func suppressedAccum(m map[string]float64) float64 {
	var total float64
	//tmplint:ordered estimate only; sub-ulp jitter acceptable here
	for _, v := range m {
		total += v
	}
	return total
}
