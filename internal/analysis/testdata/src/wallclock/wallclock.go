// Package fixture exercises the wallclock analyzer.
package fixture

import (
	"math/rand"
	"time"
)

func wallTime() int64 {
	t := time.Now()             // want `time.Now in internal/ code`
	return int64(time.Since(t)) // want `time.Since in internal/ code`
}

func virtualTimeOK(nowNS int64) int64 {
	// Arithmetic on virtual timestamps and duration constants is fine.
	return nowNS + int64(5*time.Millisecond)
}

func deadlineUntil(t time.Time) time.Duration {
	return time.Until(t) // want `time.Until in internal/ code`
}

func tickers() {
	tk := time.NewTicker(time.Second) // want `time.NewTicker in internal/ code`
	defer tk.Stop()
	tm := time.NewTimer(time.Second) // want `time.NewTimer in internal/ code`
	defer tm.Stop()
	<-time.After(time.Second) // want `time.After in internal/ code`
}

func deferredWork() {
	time.AfterFunc(time.Second, func() {}) // want `time.AfterFunc in internal/ code`
}

func sleepyPoll() {
	time.Sleep(time.Millisecond) // want `time.Sleep in internal/ code`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand.Intn in internal/ code`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `global rand.Shuffle in internal/ code`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func seededOK(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicit seeded source
	z := rand.NewZipf(r, 1.2, 1, 1<<20) // ok: seeded generator constructor
	_ = z.Uint64()
	return r.Intn(10) // ok: method on a seeded *rand.Rand
}
