// Package fixture is the -tests fixture: the base file is clean; the
// violations live in the _test.go files that only LoadTests sees.
package fixture

// Base is referenced by the in-package test file.
func Base() int { return 1 }
