package fixture

func helperChan() chan int { // want `channel outside internal/runner and internal/telemetry`
	_ = Base()
	return make(chan int, 1) // want `channel outside internal/runner and internal/telemetry`
}
