package fixture_test

import "testing"

func TestSpawn(t *testing.T) {
	done := make(chan struct{}, 1) // want `channel outside internal/runner and internal/telemetry`
	go func() { done <- struct{}{} }() // want `go statement outside internal/runner` `channel send outside internal/runner and internal/telemetry`
	<-done
}
