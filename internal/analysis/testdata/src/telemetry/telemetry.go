// Package fixture exercises the telemetry analyzer: wall-clock and
// global-rand values must never flow into telemetry emit or counter
// calls, even from cmd/-style code the wallclock analyzer skips.
package fixture

import (
	"math/rand"
	"time"

	"tieredmem/internal/telemetry"
)

func emitWallClock(t *telemetry.Tracer) {
	t.EmitDaemonTick(time.Now().UnixNano(), 10) // want `wall-clock time.Now flows into a telemetry call`
}

func cutWallClock(t *telemetry.Tracer, started time.Time) {
	t.CutEpoch(int64(time.Since(started)), 0) // want `wall-clock time.Since flows into a telemetry call`
}

func counterWallClock(t *telemetry.Tracer) {
	t.Counter("host/ns").Set(uint64(time.Now().UnixNano())) // want `wall-clock time.Now flows into a telemetry call`
}

func randomStamp(t *telemetry.Tracer) {
	t.EmitShootdown(int64(rand.Int63()), 0, 1) // want `global rand.Int63 flows into a telemetry call`
}

func virtualTimeOK(t *telemetry.Tracer, now int64) {
	// Virtual timestamps handed down from the simulated machine are the
	// sanctioned stamp.
	t.EmitDaemonTick(now, 5)
	t.Counter("daemon/ticks").Add(1)
}

func wallClockElsewhereOK(now int64) int64 {
	// Wall-clock use away from telemetry calls is the wallclock
	// analyzer's business, not this one's.
	host := time.Now().UnixNano()
	return host - now
}
