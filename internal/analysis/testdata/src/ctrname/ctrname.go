// Package fixture exercises the ctrname analyzer: telemetry counters
// register under constant <subsystem>/<metric> names, dynamic names go
// through telemetry.Name or a namefunc helper, and every name is
// unique across the module.
package fixture

import "tieredmem/internal/telemetry"

func badShapes(r *telemetry.Registry) {
	r.Counter("retries").Add(1)       // want `is not <subsystem>/<metric> shaped`
	r.Counter("Fault/Retries").Add(1) // want `is not <subsystem>/<metric> shaped`
	r.Counter("fault//site").Add(1)   // want `is not <subsystem>/<metric> shaped`
}

func dynamicName(r *telemetry.Registry, site string) {
	r.Counter("fault/" + site).Add(1) // want `registered with a non-constant name`
}

// opaque is a string helper the analyzer cannot prove well-shaped.
func opaque(site string) string { return site }

func launderedName(r *telemetry.Registry, site string) {
	r.Counter(opaque(site)).Add(1) // want `registered with a non-constant name`
}

func constOK(r *telemetry.Registry) {
	r.Counter("mover/promotions").Add(1)
}

func sanitizedOK(r *telemetry.Registry, site string) {
	r.Counter(telemetry.Name("fault", site)).Add(1)
}

// siteCounter is a namefunc helper: every return is a well-shaped
// constant, so callers may register through it.
func siteCounter(retrying bool) string {
	if retrying {
		return "fault/retries"
	}
	return "fault/injections"
}

func helperOK(t *telemetry.Tracer, retrying bool) {
	t.Counter(siteCounter(retrying)).Add(1)
}

func firstDup(r *telemetry.Registry) {
	r.Counter("dup/name").Add(1)
}

func secondDup(t *telemetry.Tracer) {
	t.Counter("dup/name").Add(1) // want `already registered at`
}
