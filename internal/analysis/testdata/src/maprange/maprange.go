// Package fixture exercises the maprange analyzer.
package fixture

import (
	"fmt"
	"sort"
)

func orderSensitivePrint(m map[string]int) {
	for k, v := range m { // want `order-sensitive iteration over map m`
		fmt.Println(k, v)
	}
}

func appendNeverSorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to a slice that is never sorted`
		out = append(out, k)
	}
	return out
}

func appendThenSorted(m map[string]int) []string {
	var out []string
	for k := range m { // ok: drains through sort.Strings below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendThenSortSlice(m map[string]int) []string {
	var out []string
	for k := range m { // ok: drains through sort.Slice below
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func commutativeSum(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: integer accumulation commutes
		total += v
	}
	return total
}

func counterIncrement(m map[string]bool) int {
	n := 0
	for _, v := range m { // ok: conditional count commutes
		if v {
			n++
		}
	}
	return n
}

func maxTracking(m map[string]int) int {
	best := 0
	for _, v := range m { // ok: max tracking guarded by a comparison
		if v > best {
			best = v
		}
	}
	return best
}

func mapInsert(m map[string]int) map[string]int {
	copied := make(map[string]int, len(m))
	for k, v := range m { // ok: insert into another map commutes per key
		copied[k] = v
	}
	return copied
}

func suppressed(m map[string]int) {
	//tmplint:ordered output feeds a set, order irrelevant here
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func orderSensitiveAssign(m map[string]int) string {
	last := ""
	for k := range m { // want `order-sensitive iteration over map m`
		last = k
	}
	return last
}

func deleteEntries(m map[string]int) {
	for k, v := range m { // ok: delete commutes
		if v > 0 {
			delete(m, k)
		}
	}
}
