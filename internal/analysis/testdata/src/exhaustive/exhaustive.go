// Package fixture exercises the exhaustive analyzer.
package fixture

// Tier is an enum: a defined integer type with package-level
// constants.
type Tier int

const (
	Fast Tier = iota
	Slow
	Remote
)

// Mode is a string-valued enum.
type Mode string

const (
	ModeScan  Mode = "scan"
	ModeTrace Mode = "trace"
)

func missingCase(t Tier) string {
	switch t { // want `switch over fixture.Tier misses cases Remote and has no default`
	case Fast:
		return "fast"
	case Slow:
		return "slow"
	}
	return ""
}

func missingTwo(m Mode) int {
	switch m { // want `switch over fixture.Mode misses cases ModeScan, ModeTrace and has no default`
	}
	return 0
}

func coveredOK(t Tier) string {
	switch t { // ok: every enumerator covered
	case Fast:
		return "fast"
	case Slow:
		return "slow"
	case Remote:
		return "remote"
	}
	return ""
}

func defaultOK(t Tier) string {
	switch t { // ok: default makes the switch total
	case Fast:
		return "fast"
	default:
		return "other"
	}
}

func nonEnumOK(n int) string {
	switch n { // ok: plain int is not an enum
	case 1:
		return "one"
	}
	return ""
}

func nonConstantOK(t, other Tier) string {
	switch t { // ok: non-constant case defeats coverage reasoning
	case other:
		return "same"
	}
	return ""
}
