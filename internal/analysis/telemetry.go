package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Telemetry guards the observability layer's determinism contract from
// both sides. Inside internal/telemetry it forbids importing "time"
// and math/rand entirely — the package stores virtual timestamps it is
// handed and must have no way to mint its own. At every emit site —
// including cmd/ mains, which the wallclock analyzer deliberately does
// not cover — it rejects arguments to telemetry functions that
// lexically contain a wall-clock read (time.Now, time.Since) or a
// global math/rand draw: one wall-clock stamp in the event stream and
// the exported trace stops being byte-identical across runs and pool
// widths.
var Telemetry = &Analyzer{
	Name: "telemetry",
	Doc:  "forbids wall-clock or global-rand values flowing into telemetry calls, and time/math-rand imports inside internal/telemetry",
	Run:  runTelemetry,
}

// telemetryPkgSuffix identifies the telemetry package by import path.
const telemetryPkgSuffix = "internal/telemetry"

func runTelemetry(pass *Pass) {
	if strings.HasSuffix(pass.Path(), telemetryPkgSuffix) {
		for _, file := range pass.Files() {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				switch path {
				case "time", "math/rand", "math/rand/v2":
					pass.Reportf(imp.Pos(), "internal/telemetry imports %q: the telemetry layer records virtual time it is handed and must not be able to mint wall-clock or random values", path)
				}
			}
		}
		// The package cannot call itself into trouble without the
		// imports above, so the argument scan below is for callers.
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isTelemetryCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				checkTelemetryArg(pass, arg)
			}
			return true
		})
	}
}

// isTelemetryCall reports whether the call's callee is a function or
// method defined in internal/telemetry.
func isTelemetryCall(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	fobj, ok := pass.Types().ObjectOf(id).(*types.Func)
	if !ok || fobj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fobj.Pkg().Path(), telemetryPkgSuffix)
}

// checkTelemetryArg flags wall-clock reads and global rand draws
// anywhere inside one argument expression — both direct (time.Now in
// the argument) and laundered (a call to a function whose taint fact
// says its result derives from the clock or global rand).
func checkTelemetryArg(pass *Pass, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeOf(pass, call); fn != nil && fn.Pkg() != nil {
				if f, _ := pass.ObjectFact(fn, "taint").(*taintFact); f != nil {
					if f.Wall {
						pass.Reportf(call.Pos(), "wall-clock-derived value flows into a telemetry call: %s.%s derives from %s", fn.Pkg().Name(), fn.Name(), f.Via)
					} else if f.Rand {
						pass.Reportf(call.Pos(), "global-rand-derived value flows into a telemetry call: %s.%s derives from %s", fn.Pkg().Name(), fn.Name(), f.Via)
					}
				}
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Types().ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if _, isFunc := pass.Types().ObjectOf(sel.Sel).(*types.Func); !isFunc {
			return true
		}
		name := sel.Sel.Name
		switch pn.Imported().Path() {
		case "time":
			if name == "Now" || name == "Since" {
				pass.Reportf(sel.Pos(), "wall-clock time.%s flows into a telemetry call: events must carry virtual time only", name)
			}
		case "math/rand", "math/rand/v2":
			if !wallClockAllowedRand[name] {
				pass.Reportf(sel.Pos(), "global rand.%s flows into a telemetry call: telemetry must be deterministic", name)
			}
		}
		return true
	})
}
