package analysis

import (
	"go/types"
)

// A Fact is a piece of knowledge an analyzer derives about a
// package-level object (or a whole package) and publishes for
// downstream passes. Facts are what make the suite interprocedural:
// the taint provider marks "this function's result derives from the
// wall clock", ctrname marks "this function only ever returns
// well-shaped constant counter names", rankpath marks "this function
// is a sanctioned rank comparator" — and a pass over a *different*
// package, running later in the engine's topological order, imports
// those marks instead of re-deriving (or missing) them.
//
// Facts live only for one engine run; they are never serialized. The
// kind string namespaces facts so unrelated analyzers cannot collide
// on the same object.
type Fact interface {
	// FactKind names the fact type, e.g. "taint". Lookups are by
	// (object, kind), so kinds must be unique per fact type.
	FactKind() string
}

// objFactKey addresses one object-scoped fact.
type objFactKey struct {
	obj  types.Object
	kind string
}

// pkgFactKey addresses one package-scoped fact.
type pkgFactKey struct {
	pkg  *types.Package
	kind string
}

// ExportObjectFact publishes a fact about obj. obj should belong to
// the package under analysis (facts about upstream objects were
// already computed when their package ran; overwriting them would
// make results order-dependent), but the engine does not forbid
// same-package refinement during a fixed-point pass.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || f == nil {
		return
	}
	p.eng.objFacts[objFactKey{obj, f.FactKind()}] = f
}

// ObjectFact returns the fact of the given kind attached to obj, or
// nil. It sees facts exported by any analyzer on any package already
// visited in the engine's topological order — including the current
// package's own earlier passes.
func (p *Pass) ObjectFact(obj types.Object, kind string) Fact {
	if obj == nil {
		return nil
	}
	return p.eng.objFacts[objFactKey{obj, kind}]
}

// ExportPackageFact publishes a fact about the package under
// analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if f == nil {
		return
	}
	p.eng.pkgFacts[pkgFactKey{p.Pkg.Types, f.FactKind()}] = f
}

// PackageFact returns the fact of the given kind attached to pkg, or
// nil.
func (p *Pass) PackageFact(pkg *types.Package, kind string) Fact {
	if pkg == nil {
		return nil
	}
	return p.eng.pkgFacts[pkgFactKey{pkg, kind}]
}
