package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapRange flags `for range` over a map in non-test internal/ code.
// Go randomizes map iteration order, so any map range whose effect is
// order-sensitive breaks the simulator's same-seed-same-output
// contract. A site is exempt when:
//
//   - its body is order-insensitive: only commutative accumulation
//     (x += e, x++, bit-ors, inserts into another map, min/max
//     tracking guarded by a comparison), or
//   - it drains through a sort: the body only appends keys/values to
//     slices that a later statement in the same block sorts, or
//   - it carries a //tmplint:ordered justification comment on the
//     range statement's line or the line above.
//
// Everything else should iterate via order.SortedKeys /
// order.SortedKeysFunc instead.
var MapRange = &Analyzer{
	Name:  "maprange",
	Doc:   "flags order-sensitive `for range` over maps in internal/ packages",
	Run:   runMapRange,
	Tests: true,
}

func runMapRange(pass *Pass) {
	if !strings.Contains(pass.Path(), "internal/") {
		return
	}
	for _, file := range pass.Files() {
		inspectStmtLists(file, func(list []ast.Stmt, i int) {
			rs, ok := unwrapLabel(list[i]).(*ast.RangeStmt)
			if !ok || mapTypeOf(pass, rs.X) == nil {
				return
			}
			// Suppression is the engine's job (the report filter); the
			// analyzer always classifies the body, so a directive on an
			// order-insensitive range is correctly reported as unused.
			chk := &bodyChecker{pass: pass, body: rs.Body}
			chk.checkStmts(rs.Body.List)
			if chk.bad {
				pass.Reportf(rs.Pos(), "order-sensitive iteration over map %s; iterate order.SortedKeys (or add //tmplint:ordered with a justification)", types.ExprString(rs.X))
				return
			}
			if !chk.drained(list[i+1:]) {
				pass.Reportf(rs.Pos(), "map range over %s appends to a slice that is never sorted in this block; sort it or iterate order.SortedKeys", types.ExprString(rs.X))
			}
		})
	}
}

// inspectStmtLists visits every statement list in the file (blocks and
// switch/select clause bodies) and calls fn for each position, giving
// analyzers access to a statement's later siblings.
func inspectStmtLists(file *ast.File, fn func(list []ast.Stmt, i int)) {
	ast.Inspect(file, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		}
		for i := range list {
			fn(list, i)
		}
		return true
	})
}

// unwrapLabel strips a label from a labeled statement.
func unwrapLabel(s ast.Stmt) ast.Stmt {
	for {
		ls, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = ls.Stmt
	}
}

// mapTypeOf returns the expression's underlying map type, or nil.
func mapTypeOf(pass *Pass, e ast.Expr) *types.Map {
	t := pass.TypeOf(e)
	if t == nil {
		return nil
	}
	m, _ := t.Underlying().(*types.Map)
	return m
}

// bodyChecker classifies a range body as order-insensitive. Statements
// that are commutative (order of execution cannot change the final
// state) are fine; appends to identifiers are recorded as drains that
// must be sorted later; anything else marks the body bad.
type bodyChecker struct {
	pass *Pass
	body *ast.BlockStmt
	// drains are objects appended to in the body that need a
	// later sort to become order-insensitive.
	drains []types.Object
	bad    bool
}

func (c *bodyChecker) checkStmts(list []ast.Stmt) {
	for _, s := range list {
		c.checkStmt(unwrapLabel(s), false)
	}
}

// checkStmt validates one statement. inComparisonIf relaxes plain
// assignments for the min/max tracking pattern.
func (c *bodyChecker) checkStmt(s ast.Stmt, inComparisonIf bool) {
	switch st := s.(type) {
	case nil, *ast.EmptyStmt, *ast.DeclStmt:
	case *ast.BranchStmt:
		// continue cannot change the final state of a commutative
		// body; break/goto make the visited subset order-dependent.
		if st.Tok != token.CONTINUE {
			c.bad = true
		}
	case *ast.IncDecStmt:
		// x++ / x-- commute.
	case *ast.AssignStmt:
		c.checkAssign(st, inComparisonIf)
	case *ast.ExprStmt:
		if !isDeleteCall(c.pass, st.X) {
			c.bad = true
		}
	case *ast.IfStmt:
		if st.Init != nil {
			c.checkStmt(st.Init, false)
		}
		cmp := isComparison(st.Cond)
		for _, b := range st.Body.List {
			c.checkStmt(unwrapLabel(b), cmp || inComparisonIf)
		}
		if st.Else != nil {
			c.checkStmt(unwrapLabel(st.Else), cmp || inComparisonIf)
		}
	case *ast.BlockStmt:
		c.checkStmts(st.List)
	case *ast.RangeStmt, *ast.ForStmt:
		// A nested loop is order-insensitive iff its body is.
		var body *ast.BlockStmt
		if rs, ok := st.(*ast.RangeStmt); ok {
			body = rs.Body
		} else {
			body = st.(*ast.ForStmt).Body
		}
		c.checkStmts(body.List)
	case *ast.SwitchStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, b := range cc.Body {
					c.checkStmt(unwrapLabel(b), inComparisonIf)
				}
			}
		}
	default:
		c.bad = true
	}
}

// checkAssign validates one assignment inside the body.
func (c *bodyChecker) checkAssign(st *ast.AssignStmt, inComparisonIf bool) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.MUL_ASSIGN:
		// Commutative (and associative) accumulation. Float rounding
		// order is floatsum's concern, not maprange's.
		return
	case token.DEFINE:
		// New per-iteration locals.
		return
	case token.ASSIGN:
	default:
		// Shifts, division, modulo: order-dependent.
		c.bad = true
		return
	}
	for i, lhs := range st.Lhs {
		if c.assignOK(lhs, rhsFor(st, i), inComparisonIf) {
			continue
		}
		c.bad = true
		return
	}
}

// rhsFor pairs an LHS index with its RHS expression when the
// assignment is 1:1; multi-value RHS returns nil.
func rhsFor(st *ast.AssignStmt, i int) ast.Expr {
	if len(st.Lhs) == len(st.Rhs) {
		return st.Rhs[i]
	}
	return nil
}

// assignOK reports whether one plain `lhs = rhs` is order-insensitive.
func (c *bodyChecker) assignOK(lhs, rhs ast.Expr, inComparisonIf bool) bool {
	// Insert into a map: one write per distinct key commutes.
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if mapTypeOf(c.pass, idx.X) != nil {
			return true
		}
	}
	if id, ok := lhs.(*ast.Ident); ok {
		// Writes to body-local variables never survive an iteration.
		if obj := c.pass.Types().ObjectOf(id); obj != nil &&
			c.body.Pos() <= obj.Pos() && obj.Pos() < c.body.End() {
			return true
		}
		// s = append(s, ...) is a drain candidate: order-insensitive
		// once a later statement sorts s.
		if target, ok := appendTarget(rhs); ok && target == id.Name {
			if obj := c.pass.Types().ObjectOf(id); obj != nil {
				c.drains = append(c.drains, obj)
				return true
			}
		}
		// Min/max tracking: `if v > best { best = v }`.
		if inComparisonIf {
			return true
		}
	}
	return false
}

// appendTarget returns the name of the slice being appended to when
// rhs has the form append(x, ...), with x an identifier.
func appendTarget(rhs ast.Expr) (string, bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return "", false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// drained reports whether every recorded drain target is sorted by a
// later sibling statement (a sort.* or slices.* call taking the
// drained slice as its first argument).
func (c *bodyChecker) drained(later []ast.Stmt) bool {
	for _, obj := range c.drains {
		if !sortedLater(c.pass, obj, later) {
			return false
		}
	}
	return true
}

// sortedLater scans the statements after the range for a sort of obj.
func sortedLater(pass *Pass, obj types.Object, later []ast.Stmt) bool {
	for _, s := range later {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Types().ObjectOf(pkgID).(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			if !isSortFuncName(sel.Sel.Name) {
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok &&
				pass.Types().ObjectOf(arg) == obj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortFuncName recognizes the sorting entry points of the sort and
// slices packages (Sort, Stable, Slice, SliceStable, Strings, Ints,
// Float64s, SortFunc, SortStableFunc, ...).
func isSortFuncName(name string) bool {
	switch name {
	case "Stable", "Strings", "Ints", "Float64s":
		return true
	default:
		return strings.HasPrefix(name, "Sort") || strings.HasPrefix(name, "Slice")
	}
}

// isComparison reports whether e is an ordering comparison.
func isComparison(e ast.Expr) bool {
	b, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	default:
		return false
	}
}

// isDeleteCall reports whether e is a call to the builtin delete.
func isDeleteCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	_, isBuiltin := pass.Types().ObjectOf(id).(*types.Builtin)
	return isBuiltin
}
