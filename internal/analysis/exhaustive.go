package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Exhaustive flags switch statements over repo enum types (named
// integer or string types with at least two package-level constants,
// such as core.Method and mem.TierID) that neither cover every
// enumerator nor declare a default case. A silently-skipped enum value
// is how a new profiling method or tier ships with zeroed results.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "flags non-exhaustive switches over repo enum types without a default",
	Run:  runExhaustive,
}

func runExhaustive(pass *Pass) {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkExhaustive(pass, sw)
			return true
		})
	}
}

func checkExhaustive(pass *Pass, sw *ast.SwitchStmt) {
	named := enumType(pass.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	enumerators := enumConstants(named)
	if len(enumerators) < 2 {
		return
	}
	covered := make(map[string]bool, len(enumerators))
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default case present: the switch is total
		}
		for _, e := range cc.List {
			tv, ok := pass.Types().Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: cannot reason about coverage
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, c := range enumerators {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	qual := func(p *types.Package) string { return p.Name() }
	pass.Reportf(sw.Pos(), "switch over %s misses cases %s and has no default",
		types.TypeString(named, qual), strings.Join(missing, ", "))
}

// enumType returns t as a named enum candidate: a defined type whose
// underlying type is an integer or string basic type.
func enumType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	if b.Info()&(types.IsInteger|types.IsString) == 0 {
		return nil
	}
	return named
}

// enumConstants lists the package-level constants declared with the
// named type, in scope (alphabetical) order. Constants sharing a value
// (aliases) are deduplicated by value at coverage time, not here.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) && c.Val().Kind() != constant.Unknown {
			out = append(out, c)
		}
	}
	return out
}
