package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package's files live in.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression annotations.
	Info *types.Info
}

// Loader parses and type-checks module packages from source. It keeps
// a single token.FileSet and reuses type-checked results, so loading
// a whole module type-checks each package (and each standard-library
// dependency) exactly once.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import-path prefix from go.mod.
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package // by import path
}

// NewLoader builds a loader rooted at the directory containing go.mod.
// Pass the module root or any directory beneath it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and parses the
// module path from its first "module" directive.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mp := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(mp); err == nil {
						mp = unq
					}
					return d, mp, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

// LoadAll loads every package in the module (skipping testdata, hidden
// directories, and directories without Go files), in dependency order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	// Return in deterministic import-path order regardless of the
	// recursive load order.
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in one directory (plus, recursively, any
// module-internal dependencies it imports).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load type-checks the package at importPath rooted in dir, memoized.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle marker
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// moduleImporter resolves module-internal imports through the loader
// and everything else through the standard-library source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
