package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package's files live in.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression annotations.
	Info *types.Info
	// Imports holds the module-internal packages this one imports
	// directly, sorted by path. Standard-library imports are omitted:
	// the engine's topological order only needs the edges facts can
	// flow along.
	Imports []*Package
	// ForTest marks a test variant loaded by LoadTests: the package's
	// _test.go files type-checked together with (or against) the base
	// files. Only analyzers with Tests set run on these, and only
	// findings in _test.go files are reported.
	ForTest bool
}

// Loader parses and type-checks module packages from source. It keeps
// a single token.FileSet and reuses type-checked results, so loading
// a whole module type-checks each package (and each standard-library
// dependency) exactly once.
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import-path prefix from go.mod.
	ModulePath string

	std  types.Importer
	pkgs map[string]*Package // by import path
}

// NewLoader builds a loader rooted at the directory containing go.mod.
// Pass the module root or any directory beneath it.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and parses the
// module path from its first "module" directive.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					mp := strings.TrimSpace(rest)
					if unq, err := strconv.Unquote(mp); err == nil {
						mp = unq
					}
					return d, mp, nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

// LoadAll loads every package in the module (skipping testdata, hidden
// directories, and directories without Go files), in dependency order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	// Return in deterministic import-path order regardless of the
	// recursive load order.
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in one directory (plus, recursively, any
// module-internal dependencies it imports).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load type-checks the package at importPath rooted in dir, memoized.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // cycle marker
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:    importPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: l.moduleImports(tpkg),
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// moduleImports resolves tpkg's direct imports to the loader's
// module-internal packages, sorted by path. By the time a package's
// type check returns, every dependency is fully loaded, so the lookups
// always hit.
func (l *Loader) moduleImports(tpkg *types.Package) []*Package {
	var imports []*Package
	for _, ip := range tpkg.Imports() {
		if dep := l.pkgs[ip.Path()]; dep != nil {
			imports = append(imports, dep)
		}
	}
	sort.Slice(imports, func(i, j int) bool { return imports[i].Path < imports[j].Path })
	return imports
}

// LoadTests loads the test code of each package in pkgs that has
// _test.go files. In-package test files are type-checked together with
// the already-parsed base files as one variant (path suffixed
// " [tests]"); external package_test files become their own variant.
// Base files are shared by AST identity, so their positions — and the
// suppression directives on them — are not duplicated.
func (l *Loader) LoadTests(pkgs []*Package) ([]*Package, error) {
	var out []*Package
	for _, base := range pkgs {
		entries, err := os.ReadDir(base.Dir)
		if err != nil {
			return nil, err
		}
		var inFiles, extFiles []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(l.Fset, filepath.Join(base.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if strings.HasSuffix(f.Name.Name, "_test") {
				extFiles = append(extFiles, f)
			} else {
				inFiles = append(inFiles, f)
			}
		}
		if len(inFiles) > 0 {
			files := append(append([]*ast.File{}, base.Files...), inFiles...)
			pkg, err := l.checkTestVariant(base.Path+" [tests]", base.Dir, files)
			if err != nil {
				return nil, err
			}
			// The variant re-checks the base files, so its objects are
			// distinct from the base package's; record the dependency
			// edge explicitly to keep the variant after its base in
			// topological order.
			pkg.Imports = append(pkg.Imports, base)
			sort.Slice(pkg.Imports, func(i, j int) bool { return pkg.Imports[i].Path < pkg.Imports[j].Path })
			out = append(out, pkg)
		}
		if len(extFiles) > 0 {
			pkg, err := l.checkTestVariant(base.Path+"_test [tests]", base.Dir, extFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, pkg)
		}
	}
	return out, nil
}

// checkTestVariant type-checks one test variant without registering it
// in the import-memo table (test variants are not importable).
func (l *Loader) checkTestVariant(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:    path,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: l.moduleImports(tpkg),
		ForTest: true,
	}, nil
}

// moduleImporter resolves module-internal imports through the loader
// and everything else through the standard-library source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
