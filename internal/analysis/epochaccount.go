package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EpochAccount protects the per-epoch observation counters that
// hotness ranks are computed from. Writes to core.PageStat's
// Abit/Trace/Write/True fields and to mem.PageDescriptor's epoch/total
// counters are legal only inside the sanctioned accumulation paths —
// the profiler arms (abit scan, trace drain in core, PML drain, the
// machine's ground-truth charge in cpu), the mem package's own
// allocation/reset/rollover bookkeeping, and the policy package's
// migration counter transfer. Anywhere else, a counter write is rank
// corruption: evidence the profiler never collected.
var EpochAccount = &Analyzer{
	Name: "epochaccount",
	Doc:  "restricts PageStat/PageDescriptor counter writes to sanctioned accumulation paths",
	Run:  runEpochAccount,
}

// epochProtectedFields maps protected struct type names to their
// protected field sets.
var epochProtectedFields = map[string]map[string]bool{
	"PageStat": {
		"Abit": true, "Trace": true, "Write": true, "True": true,
	},
	"PageDescriptor": {
		"AbitEpoch": true, "TraceEpoch": true, "WriteEpoch": true, "TrueEpoch": true,
		"AbitTotal": true, "TraceTotal": true, "WriteTotal": true, "TrueTotal": true,
	},
}

// epochSanctionedPaths are the import-path suffixes allowed to write
// the protected counters.
var epochSanctionedPaths = []string{
	"internal/abit",   // A-bit scan accumulation
	"internal/core",   // trace-sample drain + harvest snapshot
	"internal/cpu",    // ground-truth charge per executed reference
	"internal/mem",    // descriptor allocation, epoch reset, rollover
	"internal/pml",    // write-log drain
	"internal/policy", // migration moves counters with the page
}

func runEpochAccount(pass *Pass) {
	for _, suffix := range epochSanctionedPaths {
		if strings.HasSuffix(pass.Path(), suffix) {
			return
		}
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkEpochWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkEpochWrite(pass, st.X)
			case *ast.UnaryExpr:
				// &pd.TraceEpoch escapes the counter for arbitrary
				// later writes.
				if st.Op.String() == "&" {
					checkEpochWrite(pass, st.X)
				}
			}
			return true
		})
	}
}

// checkEpochWrite reports when expr writes a protected counter field.
func checkEpochWrite(pass *Pass, expr ast.Expr) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Types().Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	fields, ok := epochProtectedFields[named.Obj().Name()]
	if !ok || !fields[sel.Sel.Name] {
		return
	}
	pass.Reportf(sel.Pos(), "write to %s.%s outside sanctioned accumulation paths: epoch counters may only be produced by the profiler arms (abit/core/cpu/mem/pml/policy)", named.Obj().Name(), sel.Sel.Name)
}
