package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// DirectiveAudit polices the suppression directives themselves. A
// directive is a claim that a finding on its line (or the line below
// it) is a justified exception; the audit keeps those claims honest:
// a directive that suppresses nothing is stale and must be deleted, a
// directive naming an unknown analyzer is a typo silently doing
// nothing, and a directive without a justification is an exception
// nobody can review. The audit has no Run of its own — the engine
// tracks directive usage as findings flow through the suppression
// filter and reports here after every pass has run.
var DirectiveAudit = &Analyzer{
	Name: "directive",
	Doc:  "flags unused, unknown-analyzer, and unjustified tmplint suppression directives",
}

// directive is one parsed //tmplint:... comment.
type directive struct {
	pkg      *Package
	pos      token.Position
	verb     string // "ordered", "allow", or anything else (unknown)
	analyzer string // for allow: the named analyzer
	justed   bool   // has a non-empty justification
	used     bool   // suppressed at least one finding this run
}

// collectDirectives scans every target package's files once and
// builds the filename -> directives table the suppression filter and
// the audit share. Test packages contribute only their _test.go files
// (the base files' directives were collected when the base package
// was scanned); duplicates from re-parsed files are dropped by
// (file, line) identity.
func (e *engine) collectDirectives() {
	type fileLine struct {
		file string
		line int
	}
	seen := make(map[fileLine]bool)
	for _, pkg := range e.packages {
		if !e.targets[pkg] {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "tmplint:") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if pkg.ForTest && !strings.HasSuffix(pos.Filename, "_test.go") {
						continue
					}
					if key := (fileLine{pos.Filename, pos.Line}); seen[key] {
						continue
					} else {
						seen[key] = true
					}
					d := &directive{pkg: pkg, pos: pos}
					rest := strings.TrimPrefix(text, "tmplint:")
					d.verb, rest = cutField(rest)
					switch d.verb {
					case "ordered":
						d.justed = rest != ""
					case "allow":
						d.analyzer, rest = cutField(rest)
						d.justed = rest != ""
					}
					e.directives[pos.Filename] = append(e.directives[pos.Filename], d)
				}
			}
		}
	}
}

// cutField splits the first whitespace-separated field off s.
func cutField(s string) (field, rest string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

// orderedSuppressible lists the analyzers the bare tmplint:ordered
// directive covers — the order-sensitivity checks it predates the
// allow form for. Everything else must use tmplint:allow <analyzer>.
var orderedSuppressible = map[string]bool{"maprange": true, "floatsum": true}

// suppressed reports whether a directive covers the finding (same
// line or the line directly above it), marking the directive used.
func (e *engine) suppressed(f Finding) bool {
	hit := false
	for _, d := range e.directives[f.Pos.Filename] {
		if d.pos.Line != f.Pos.Line && d.pos.Line != f.Pos.Line-1 {
			continue
		}
		switch d.verb {
		case "ordered":
			if orderedSuppressible[f.Analyzer] {
				d.used = true
				hit = true
			}
		case "allow":
			if d.analyzer == f.Analyzer {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// orderedAt reports whether a tmplint:ordered directive sits on the
// given line or the line above it, marking it used. Pass.Suppressed
// routes here for analyzers with scope-based suppression (floatsum's
// enclosing-range check).
func (e *engine) orderedAt(filename string, line int) bool {
	hit := false
	for _, d := range e.directives[filename] {
		if d.verb != "ordered" {
			continue
		}
		if d.pos.Line == line || d.pos.Line == line-1 {
			d.used = true
			hit = true
		}
	}
	return hit
}

// auditDirectives reports malformed and unused directives after every
// pass has run. File order is sorted and directives appear in source
// order within a file; the final global finding sort canonicalizes
// regardless.
func (e *engine) auditDirectives() {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	files := make([]string, 0, len(e.directives))
	for f := range e.directives {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		for _, d := range e.directives[file] {
			report := func(format string, args ...any) {
				e.report(d.pkg, Finding{
					Analyzer: DirectiveAudit.Name,
					Pos:      d.pos,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			switch d.verb {
			case "ordered":
				if !d.justed {
					report("tmplint:ordered directive without a justification: say why iteration order cannot escape")
				} else if !d.used {
					report("unused tmplint:ordered directive: no maprange/floatsum finding here; delete it")
				}
			case "allow":
				if !known[d.analyzer] {
					report("tmplint:allow names unknown analyzer %q (known: %s)", d.analyzer, knownNames(known))
				} else if !d.justed {
					report("tmplint:allow %s directive without a justification", d.analyzer)
				} else if !d.used {
					report("unused tmplint:allow %s directive: no %s finding here; delete it", d.analyzer, d.analyzer)
				}
			default:
				report("unknown tmplint directive %q (want ordered or allow)", d.verb)
			}
		}
	}
}

// knownNames renders the analyzer-name set sorted.
func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
