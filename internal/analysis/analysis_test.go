package analysis

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe finds an expectation comment: `// want ...` or, for lines
// whose trailing comment is taken by a tmplint directive under audit,
// `/* want ... */`. The payload holds one or more backquoted regexps —
// one per finding expected on the line.
var wantRe = regexp.MustCompile(`(?://|/\*) want (.*)$`)

// wantPatRe extracts the individual backquoted patterns.
var wantPatRe = regexp.MustCompile("`([^`]+)`")

// expectation is one pattern from a `want` comment in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadExpectations scans every fixture file in dir (including
// _test.go files) for want comments.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats := wantPatRe.FindAllStringSubmatch(m[1], -1)
			if len(pats) == 0 {
				t.Fatalf("%s:%d: want comment without a backquoted pattern", path, i+1)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, p[1], err)
				}
				out = append(out, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return out
}

// fixtureDir resolves a fixture name to the directory holding its Go
// files. Most fixtures are flat (testdata/src/<name>); scope-sensitive
// ones nest the files deeper so the package's import path contains the
// fragment the analyzer keys on (testdata/src/rankpath/internal/
// experiments).
func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	var found string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if found == "" && !d.IsDir() && strings.HasSuffix(d.Name(), ".go") {
			found = filepath.Dir(path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking fixture %s: %v", root, err)
	}
	if found == "" {
		t.Fatalf("fixture %s has no Go files", root)
	}
	return found
}

// runFixture analyzes one fixture package with one analyzer and
// checks findings against the want comments.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	runFixtureDir(t, fixtureDir(t, a.Name), []*Analyzer{a})
}

// runFixtureDir analyzes the fixture package in dir with the requested
// analyzers: every finding must match an expectation on its exact
// line, and every expectation must be hit.
func runFixtureDir(t *testing.T, dir string, requested []*Analyzer) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	expectations := loadExpectations(t, dir)
	if len(expectations) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	checkFindings(t, Run([]*Package{pkg}, requested), requested, expectations)
}

// checkFindings matches findings against expectations one-to-one.
func checkFindings(t *testing.T, findings []Finding, requested []*Analyzer, expectations []*expectation) {
	t.Helper()
	allowed := make(map[string]bool, len(requested))
	for _, a := range requested {
		allowed[a.Name] = true
	}
	for _, f := range findings {
		if !allowed[f.Analyzer] {
			t.Errorf("finding from unexpected analyzer %q: %v", f.Analyzer, f)
			continue
		}
		ok := false
		for _, exp := range expectations {
			if exp.matched || f.Pos.Line != exp.line {
				continue
			}
			if sameFile(f.Pos.Filename, exp.file) && exp.pattern.MatchString(f.Message) {
				exp.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %v", f)
		}
	}
	for _, exp := range expectations {
		if !exp.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", exp.file, exp.line, exp.pattern)
		}
	}
}

// sameFile compares paths that may differ in absolute/relative form.
func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func TestMapRange(t *testing.T)     { runFixture(t, MapRange) }
func TestWallClock(t *testing.T)    { runFixture(t, WallClock) }
func TestEpochAccount(t *testing.T) { runFixture(t, EpochAccount) }
func TestFloatSum(t *testing.T)     { runFixture(t, FloatSum) }
func TestExhaustive(t *testing.T)   { runFixture(t, Exhaustive) }
func TestTelemetry(t *testing.T)    { runFixture(t, Telemetry) }
func TestFaultRand(t *testing.T)    { runFixture(t, FaultRand) }
func TestDenseMap(t *testing.T)     { runFixture(t, DenseMap) }
func TestRankPath(t *testing.T)     { runFixture(t, RankPath) }
func TestCtrName(t *testing.T)      { runFixture(t, CtrName) }
func TestSentErr(t *testing.T)      { runFixture(t, SentErr) }
func TestGoroutine(t *testing.T)    { runFixture(t, Goroutine) }

// TestGoroutineShardedSim pins that the sharded pipeline did not
// loosen the concurrency fence: internal/sim reaches parallelism only
// through runner.ShardGroup (an ordinary call, unflagged), and a
// literal go statement inside a package whose import path contains
// internal/sim is still reported. The fixture nests the files so the
// package path carries the internal/sim fragment the analyzer keys on.
func TestGoroutineShardedSim(t *testing.T) {
	runFixtureDir(t, fixtureDir(t, "goroutinesim"), []*Analyzer{Goroutine})
}

// TestDirectiveAudit runs the directive fixture with both
// order-sensitivity analyzers plus the audit, exercising one directive
// suppressing two analyzers' findings on one line, wrong-analyzer
// allows, stale directives, and malformed verbs.
func TestDirectiveAudit(t *testing.T) {
	runFixtureDir(t, fixtureDir(t, "directive"), []*Analyzer{MapRange, FloatSum, DirectiveAudit})
}

// TestTaintInterprocedural is the fact-propagation proof: the taint
// sources live in tieredmem/testdata/taintsrc/ext, outside internal/,
// and the findings land in the fixture package that consumes them —
// including a two-hop chain through a local variable. The untainted
// ext.Pure call on the fixture's last function yields no finding (the
// exact-match harness fails on any extra), pinning that the checks
// fire on the fact, not on the mere cross-package call.
func TestTaintInterprocedural(t *testing.T) {
	dir := fixtureDir(t, "taint")
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	requested := []*Analyzer{WallClock, Telemetry, FaultRand}
	findings := Run([]*Package{pkg}, requested)
	checkFindings(t, findings, requested, loadExpectations(t, dir))
	for _, f := range findings {
		if !strings.Contains(f.Message, "derives from") {
			t.Errorf("taint finding does not name its source: %v", f)
		}
	}
}

// TestLoadTestsVariants covers the -tests path: LoadTests yields an
// in-package and an external test variant, test-marked analyzers run
// over them, and only _test.go findings are reported (the re-checked
// base files never double-report).
func TestLoadTestsVariants(t *testing.T) {
	dir := fixtureDir(t, "testpkg")
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	base, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	variants, err := loader.LoadTests([]*Package{base})
	if err != nil {
		t.Fatalf("LoadTests: %v", err)
	}
	if len(variants) != 2 {
		t.Fatalf("LoadTests returned %d variants, want 2 (in-package and external)", len(variants))
	}
	for _, v := range variants {
		if !v.ForTest {
			t.Errorf("variant %s not marked ForTest", v.Path)
		}
	}
	requested := []*Analyzer{Goroutine}
	findings := Run(append([]*Package{base}, variants...), requested)
	for _, f := range findings {
		if !strings.HasSuffix(f.Pos.Filename, "_test.go") {
			t.Errorf("finding outside _test.go from a test run: %v", f)
		}
	}
	checkFindings(t, findings, requested, loadExpectations(t, dir))
}

// TestFixturesFailDriver asserts the driver contract on the fixture
// set as a whole: analyzing the fixtures yields findings (a non-zero
// tmplint exit), each positioned in its own fixture file.
func TestFixturesFailDriver(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, a := range Analyzers() {
		dir := fixtureDir(t, a.Name)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", a.Name, err)
		}
		findings := Run([]*Package{pkg}, Analyzers())
		found := false
		for _, f := range findings {
			if f.Analyzer != a.Name {
				continue
			}
			found = true
			if !strings.Contains(f.Pos.Filename, dir) {
				t.Errorf("finding position %s outside fixture dir %s", f.Pos, dir)
			}
			if f.Pos.Line <= 0 || f.Pos.Column <= 0 {
				t.Errorf("finding without a real position: %v", f)
			}
		}
		if !found {
			t.Errorf("fixture %s produced no %s findings", a.Name, a.Name)
		}
	}
}

// TestEngineDeterminism pins the engine's byte-stability contract:
// the same set of target packages, in any argument order, across
// repeated runs, renders the identical finding stream. The package
// walk is a pure function of the import graph (topoOrder), never of
// map iteration or caller order.
func TestEngineDeterminism(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, name := range []string{"taint", "telemetry", "ctrname", "densemap", "directive"} {
		pkg, err := loader.LoadDir(fixtureDir(t, name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	render := func(ps []*Package) string {
		var b strings.Builder
		for _, f := range Run(ps, Analyzers()) {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := render(pkgs)
	if first == "" {
		t.Fatal("determinism fixture set produced no findings")
	}
	reversed := make([]*Package, len(pkgs))
	for i, p := range pkgs {
		reversed[len(pkgs)-1-i] = p
	}
	if got := render(reversed); got != first {
		t.Errorf("reversed target order changed output:\n--- forward ---\n%s--- reversed ---\n%s", first, got)
	}
	if got := render(pkgs); got != first {
		t.Errorf("repeated run changed output:\n--- first ---\n%s--- second ---\n%s", first, got)
	}
}

// TestTopoOrder pins the cross-package fact flow precondition:
// dependencies always precede dependents, and the order is identical
// regardless of the argument order.
func TestTopoOrder(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	a, err := loader.LoadDir(fixtureDir(t, "taint"))
	if err != nil {
		t.Fatalf("LoadDir(taint): %v", err)
	}
	b, err := loader.LoadDir(fixtureDir(t, "telemetry"))
	if err != nil {
		t.Fatalf("LoadDir(telemetry): %v", err)
	}
	paths := func(ps []*Package) []string {
		out := make([]string, len(ps))
		for i, p := range ps {
			out[i] = p.Path
		}
		return out
	}
	fwd := paths(topoOrder([]*Package{a, b}))
	rev := paths(topoOrder([]*Package{b, a}))
	if strings.Join(fwd, "|") != strings.Join(rev, "|") {
		t.Errorf("topoOrder depends on argument order:\nfwd: %v\nrev: %v", fwd, rev)
	}
	index := make(map[string]int, len(fwd))
	for i, p := range fwd {
		index[p] = i
	}
	for _, p := range topoOrder([]*Package{a, b}) {
		for _, dep := range p.Imports {
			if index[dep.Path] > index[p.Path] {
				t.Errorf("dependency %s ordered after dependent %s", dep.Path, p.Path)
			}
		}
	}
}

// TestRepoIsClean is the self-check gate: the repo's own tree must be
// finding-free, so `tmplint ./...` exits 0. Any regression in the
// determinism contract fails this test before it reaches CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; run without -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages; loader is missing the tree", len(pkgs))
	}
	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}

// TestSuppressionDirective pins the directive syntax: the named
// constant is what fixture comments and repo code rely on.
func TestSuppressionDirective(t *testing.T) {
	if Directive != "tmplint:ordered" {
		t.Fatalf("Directive = %q, want tmplint:ordered", Directive)
	}
}

// TestFindingString pins the canonical finding rendering the driver
// prints.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "maprange", Message: "boom"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	got := f.String()
	want := fmt.Sprintf("x.go:3:7: [maprange] boom")
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
