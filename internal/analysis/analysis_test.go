package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation pattern from a `// want `...“ or
// `// want "..."` comment.
var wantRe = regexp.MustCompile("// want [`\"](.+)[`\"]")

// expectation is one `// want` comment in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadExpectations scans every fixture file for want comments.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			out = append(out, &expectation{file: path, line: i + 1, pattern: re})
		}
	}
	return out
}

// runFixture analyzes one fixture package with one analyzer and
// checks findings against the want comments: every finding must match
// an expectation on its exact line, and every expectation must be hit.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	expectations := loadExpectations(t, dir)
	if len(expectations) == 0 {
		t.Fatalf("fixture %s has no want comments", dir)
	}
	findings := Run([]*Package{pkg}, []*Analyzer{a})
	for _, f := range findings {
		if f.Analyzer != a.Name {
			t.Errorf("finding from unexpected analyzer %q: %v", f.Analyzer, f)
			continue
		}
		ok := false
		for _, exp := range expectations {
			if exp.matched || f.Pos.Line != exp.line {
				continue
			}
			if sameFile(f.Pos.Filename, exp.file) && exp.pattern.MatchString(f.Message) {
				exp.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %v", f)
		}
	}
	for _, exp := range expectations {
		if !exp.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", exp.file, exp.line, exp.pattern)
		}
	}
}

// sameFile compares paths that may differ in absolute/relative form.
func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func TestMapRange(t *testing.T)     { runFixture(t, MapRange) }
func TestWallClock(t *testing.T)    { runFixture(t, WallClock) }
func TestEpochAccount(t *testing.T) { runFixture(t, EpochAccount) }
func TestFloatSum(t *testing.T)     { runFixture(t, FloatSum) }
func TestExhaustive(t *testing.T)   { runFixture(t, Exhaustive) }
func TestTelemetry(t *testing.T)    { runFixture(t, Telemetry) }
func TestFaultRand(t *testing.T)    { runFixture(t, FaultRand) }

// TestFixturesFailDriver asserts the driver contract on the fixture
// set as a whole: analyzing the fixtures yields findings (a non-zero
// tmplint exit), each positioned in its own fixture file.
func TestFixturesFailDriver(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, a := range Analyzers() {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", a.Name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", a.Name, err)
		}
		findings := Run([]*Package{pkg}, Analyzers())
		found := false
		for _, f := range findings {
			if f.Analyzer != a.Name {
				continue
			}
			found = true
			if !strings.Contains(f.Pos.Filename, filepath.Join("testdata", "src", a.Name)) {
				t.Errorf("finding position %s outside fixture dir %s", f.Pos, a.Name)
			}
			if f.Pos.Line <= 0 || f.Pos.Column <= 0 {
				t.Errorf("finding without a real position: %v", f)
			}
		}
		if !found {
			t.Errorf("fixture %s produced no %s findings", a.Name, a.Name)
		}
	}
}

// TestRepoIsClean is the self-check gate: the repo's own tree must be
// finding-free, so `tmplint ./...` exits 0. Any regression in the
// determinism contract fails this test before it reaches CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; run without -short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("LoadAll found only %d packages; loader is missing the tree", len(pkgs))
	}
	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%v", f)
	}
}

// TestSuppressionDirective pins the directive syntax: the named
// constant is what fixture comments and repo code rely on.
func TestSuppressionDirective(t *testing.T) {
	if Directive != "tmplint:ordered" {
		t.Fatalf("Directive = %q, want tmplint:ordered", Directive)
	}
}

// TestFindingString pins the canonical finding rendering the driver
// prints.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "maprange", Message: "boom"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	got := f.String()
	want := fmt.Sprintf("x.go:3:7: [maprange] boom")
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
