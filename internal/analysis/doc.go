// Package analysis is tmplint's static-analysis framework: a
// self-contained analyzer harness built only on the standard library's
// go/parser and go/types (go.mod stays dependency-free), plus the
// repo-specific analyzers that machine-check the simulator's
// reproducibility contract — same seed, same workload, same per-page
// hotness ranks (DESIGN.md §2).
//
// # Analyzers
//
// maprange — flags `for range` over a map in non-test internal/
// packages. Go randomizes map iteration order, so an order-sensitive
// loop body makes rankings, reports, and figures differ between runs
// of the same seed. A site is exempt when its body is provably
// order-insensitive (commutative accumulation: x += e, x++, bit-ors,
// inserts into another map, comparison-guarded min/max tracking,
// delete), when it only appends to slices that a later statement in
// the same block sorts, or when it carries a //tmplint:ordered
// justification. Everything else should iterate
// order.SortedKeys/order.SortedKeysFunc.
//
// wallclock — forbids time.Now, time.Since, and the global math/rand
// (and math/rand/v2) source in internal/ packages. Simulator time is
// virtual cycles; randomness must be injected through an explicitly
// seeded *rand.Rand. Seeded-source constructors (rand.New,
// rand.NewSource, rand.NewZipf, rand.NewPCG, rand.NewChaCha8) and
// methods on a *rand.Rand value stay legal.
//
// epochaccount — restricts writes to the profiling counters ranks are
// computed from: core.PageStat's Abit/Trace/Write/True and
// mem.PageDescriptor's *Epoch/*Total fields. Only the sanctioned
// accumulation paths may write them — internal/abit (A-bit scan),
// internal/core (trace drain, harvest, SumEpochs/AttachTruth),
// internal/cpu (ground truth), internal/mem (allocation, reset,
// rollover), internal/pml (write log), internal/policy (migration
// transfer). Code elsewhere must aggregate through core.SumEpochs or
// core.AttachTruth instead of open-coding counter writes.
//
// floatsum — flags floating-point accumulation (+=, -=, x = x + e,
// ...) into a variable declared outside a map-range body. Float
// addition does not associate, so map-ordered summation makes the low
// bits of report output vary run to run. Accumulate over
// order.SortedKeys, or suppress with //tmplint:ordered when sub-ulp
// jitter is genuinely acceptable.
//
// exhaustive — flags switch statements over repo enum types (a
// defined integer or string type with at least two package-level
// constants, e.g. core.Method, mem.TierID) that miss enumerators and
// have no default case. Switches with a default, full coverage, or
// non-constant case expressions are exempt.
//
// # Suppression
//
// A finding from maprange or floatsum is suppressed by a comment
// beginning //tmplint:ordered on the flagged statement's line or the
// line directly above it. Follow the directive with a justification:
//
//	//tmplint:ordered feeds a set; iteration order cannot escape
//	for k := range pages { ... }
//
// wallclock, epochaccount, and exhaustive findings are deliberately
// not suppressible — fix the code or extend the sanctioned lists here.
//
// # Adding an analyzer
//
// Create a file in this package defining a var of type *Analyzer with
// a Name (also its fixture directory name and finding tag), a Doc
// line, and a Run func inspecting one type-checked *Pass. Register it
// in Analyzers() in analysis.go. Add a fixture package under
// testdata/src/<name>/ whose flagged lines carry `// want "regex"`
// comments, and a one-line runFixture test in analysis_test.go; the
// harness checks positions and messages both ways (no unexpected
// findings, no unmatched expectations). TestRepoIsClean then enforces
// the new analyzer repo-wide.
//
// # Driver
//
// cmd/tmplint loads packages through Loader (a go/parser + go/types
// loader that resolves module-internal imports itself and delegates
// the standard library to the source importer), runs Analyzers(), and
// prints file:line:col findings (-json for machine-readable output),
// exiting 1 when anything is found. scripts/check.sh wires it into
// the repo gate next to go vet, gofmt, and go test -race.
package analysis
