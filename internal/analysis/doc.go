// Package analysis is tmplint's static-analysis engine: a
// self-contained analyzer harness built only on the standard library's
// go/parser and go/types (go.mod stays dependency-free), plus the
// repo-specific analyzers that machine-check the simulator's
// reproducibility and layering contracts — same seed, same workload,
// same per-page hotness ranks (DESIGN.md §2).
//
// ANALYSIS.md at the repo root is the reference: every analyzer's
// contract, example findings, the suppression grammar, and how to add
// an analyzer. This comment covers the engine itself.
//
// # Engine
//
// Run analyzes packages in deterministic topological import order
// (Kahn's algorithm over the import graph, lexicographic path
// tie-break), so a package is always analyzed after its dependencies
// and the order never depends on map iteration or argument order.
//
// Analyzers communicate across packages through facts: values
// attached to package-level objects (or whole packages) while
// analyzing the defining package and visible to every later pass that
// imports it. The taint pass runs first on every package — requesting
// analyzers only filters which findings are reported — and marks
// exported functions whose results derive from wall-clock time or
// global math/rand; wallclock, telemetry, and faultrand consume those
// facts, making their checks transitive across package boundaries.
// rankpath and ctrname export facts of their own ("rankcmp",
// "namefunc", "ctrsites") the same way.
//
// Findings are filtered (suppression directives, requested set,
// test-variant scoping) and sorted by (file, line, column, analyzer),
// so output is byte-stable run to run.
//
// # Test variants
//
// Loader.LoadTests builds up to two extra passes per package: the
// in-package test variant ("path [tests]") sharing the base ASTs plus
// _test.go files, and the external test package ("path_test [tests]").
// Only analyzers with Tests: true run on variants, and only findings
// located in _test.go files are reported from them.
//
// # Adding an analyzer
//
// Create a file in this package defining a var of type *Analyzer with
// a Name (also its fixture directory name and finding tag), a Doc
// line, optionally Tests: true, and a Run func inspecting one
// type-checked *Pass (plus a Finish func for fact-consuming,
// whole-suite checks). Register it in Analyzers() in analysis.go. Add
// a fixture package under testdata/src/<name>/ whose flagged lines
// carry `// want` comments — one backquoted regexp per expected
// finding on that line; the block form /* want ... */ when the line's
// trailing // comment is itself a directive under test — and a
// one-line runFixture test in analysis_test.go. The harness checks
// positions and messages both ways (no unexpected findings, no
// unmatched expectations), and TestRepoIsClean then enforces the new
// analyzer repo-wide.
//
// # Driver
//
// cmd/tmplint loads packages through Loader (a go/parser + go/types
// loader that resolves module-internal imports itself and delegates
// the standard library to the source importer), runs the suite, and
// prints findings as text, JSON (-json / -format=json, carrying each
// analyzer's doc), or GitHub Actions annotations (-format=github),
// exiting 1 when anything is found. -tests adds the test variants;
// -times prints per-analyzer wall time. scripts/check.sh and CI's
// lint job wire it into the repo gate next to go vet, gofmt, and
// go test -race.
package analysis
