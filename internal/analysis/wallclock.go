package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallClock forbids wall-clock time and process-global randomness in
// internal/ packages. All simulator time is virtual cycles and all
// randomness must flow from an explicitly seeded *rand.Rand, or the
// same seed stops producing the same per-page hotness ranks. Flags
// the time package's clock-derived functions (time.Now, time.Since,
// time.Until, time.After, time.Tick, time.NewTicker, time.NewTimer,
// time.AfterFunc) plus time.Sleep, math/rand (or math/rand/v2)
// package-level functions that draw from the global source, and —
// via taint facts — calls to outside functions that launder either
// into internal/ code. Constructors that build seeded sources
// (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG,
// rand.NewChaCha8) stay legal.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbids wall-clock time APIs, global math/rand, and taint-laundering calls in internal/ packages",
	Run:  runWallClock,
}

// wallClockAllowedRand lists math/rand package-level functions that do
// not touch the global source.
var wallClockAllowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runWallClock(pass *Pass) {
	if !strings.Contains(pass.Path(), "internal/") {
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkLaunderedCall(pass, call)
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Only package-qualified references: r.Intn on a seeded
			// *rand.Rand also resolves to a math/rand object, but its
			// receiver is not a package name.
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Types().ObjectOf(pkgID).(*types.PkgName)
			if !ok {
				return true
			}
			obj := pass.Types().ObjectOf(sel.Sel)
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if wallTimeSources[name] || name == "Sleep" {
					pass.Reportf(sel.Pos(), "time.%s in internal/ code: simulator time must be virtual cycles, not wall clock", name)
				}
			case "math/rand", "math/rand/v2":
				if !wallClockAllowedRand[name] {
					pass.Reportf(sel.Pos(), "global rand.%s in internal/ code: randomness must come from an explicitly seeded *rand.Rand", name)
				}
			}
			return true
		})
	}
}

// checkLaunderedCall flags calls from internal/ code to tainted
// functions defined outside internal/ — the laundering path where a
// cmd/-level helper wraps time.Now and hands the result in. Tainted
// internal/ callees are skipped: their own bodies already carry the
// direct finding.
func checkLaunderedCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(pass, call)
	if fn == nil || fn.Pkg() == nil || strings.Contains(fn.Pkg().Path(), "internal/") {
		return
	}
	f, _ := pass.ObjectFact(fn, "taint").(*taintFact)
	if f == nil {
		return
	}
	if f.Wall {
		pass.Reportf(call.Pos(), "call to %s.%s launders wall-clock time into internal/ code (result derives from %s)", fn.Pkg().Name(), fn.Name(), f.Via)
	} else if f.Rand {
		pass.Reportf(call.Pos(), "call to %s.%s launders global randomness into internal/ code (result derives from %s)", fn.Pkg().Name(), fn.Name(), f.Via)
	}
}
