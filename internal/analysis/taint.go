package analysis

import (
	"go/ast"
	"go/types"
)

// taintFact marks a function whose result derives from the wall clock
// or the process-global rand source — directly, through local
// dataflow, or transitively through calls to other tainted functions
// (same-package via the provider's fixed point, cross-package via the
// engine's topological fact flow). Consumers (wallclock, telemetry,
// faultrand) use it to catch laundering: a helper in a package where
// time.Now is legal (cmd/, the module root) feeding nondeterminism
// into code where it is not.
type taintFact struct {
	Wall bool
	Rand bool
	// Via names the ultimate source, e.g. "time.Now" or "rand.Int63",
	// for findings several hops away from it.
	Via string
}

func (*taintFact) FactKind() string { return "taint" }

// taintFacts computes taint facts for every package. It reports
// nothing itself; it runs first in the engine's suite so the facts are
// visible to the same package's later passes as well as to downstream
// packages.
var taintFacts = &Analyzer{
	Name: "taint",
	Doc:  "exports wall-clock/global-rand taint facts about function results (no findings of its own)",
	Run:  runTaintFacts,
}

// wallTimeSources lists the time package's functions whose results
// derive from the wall clock. time.Sleep is deliberately absent: it
// stalls the process but returns nothing, so it is flagged by
// wallclock directly yet taints no data.
var wallTimeSources = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

// taintSourceOf classifies a callee as a primary taint source.
func taintSourceOf(fn *types.Func) (wall, rnd bool) {
	if fn == nil || fn.Pkg() == nil {
		return false, false
	}
	// Methods (t.Sub, r.Intn on a seeded *rand.Rand) operate on values
	// they are handed; only package-level functions mint taint.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false, false
	}
	switch fn.Pkg().Path() {
	case "time":
		return wallTimeSources[fn.Name()], false
	case "math/rand", "math/rand/v2":
		return false, !wallClockAllowedRand[fn.Name()]
	}
	return false, false
}

// calleeOf resolves a call expression's static callee, or nil for
// dynamic calls (function values, interface methods).
func calleeOf(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.Types().ObjectOf(fn).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.Types().ObjectOf(fn.Sel).(*types.Func)
		return f
	}
	return nil
}

// callTaint reports the taint carried by one call's result: a primary
// source, a same-package function from the in-progress fixed point, or
// a fact exported by an upstream package.
func callTaint(pass *Pass, call *ast.CallExpr, local map[*types.Func]*taintFact) taintFact {
	fn := calleeOf(pass, call)
	if fn == nil {
		return taintFact{}
	}
	if wall, rnd := taintSourceOf(fn); wall || rnd {
		return taintFact{Wall: wall, Rand: rnd, Via: fn.Pkg().Name() + "." + fn.Name()}
	}
	if f := local[fn]; f != nil {
		return *f
	}
	if f, _ := pass.ObjectFact(fn, "taint").(*taintFact); f != nil {
		return *f
	}
	return taintFact{}
}

func runTaintFacts(pass *Pass) {
	var fns []*ast.FuncDecl
	for _, file := range pass.Files() {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	// Fixed point over the package's functions: mutual recursion and
	// declaration order cannot hide a taint path.
	local := make(map[*types.Func]*taintFact)
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			obj, _ := pass.Types().Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			t := funcResultTaint(pass, fd, local)
			cur := local[obj]
			if (t.Wall && (cur == nil || !cur.Wall)) || (t.Rand && (cur == nil || !cur.Rand)) {
				if cur == nil {
					cur = &taintFact{}
					local[obj] = cur
				}
				cur.Wall = cur.Wall || t.Wall
				cur.Rand = cur.Rand || t.Rand
				if cur.Via == "" {
					cur.Via = t.Via
				}
				changed = true
			}
		}
	}
	// Export in declaration order: the fact store is keyed by object,
	// so order cannot matter, but iterating the map here would still
	// trip maprange — and the suite must hold itself to its own rules.
	for _, fd := range fns {
		obj, _ := pass.Types().Defs[fd.Name].(*types.Func)
		if f := local[obj]; obj != nil && f != nil {
			pass.ExportObjectFact(obj, f)
		}
	}
}

// funcResultTaint decides whether fd's results carry taint: it runs a
// small dataflow over the body (assignments propagate taint into local
// variables) and then checks every return path, including naked
// returns of tainted named results.
func funcResultTaint(pass *Pass, fd *ast.FuncDecl, local map[*types.Func]*taintFact) taintFact {
	tainted := make(map[types.Object]taintFact)

	exprTaint := func(e ast.Expr) taintFact {
		var out taintFact
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				out = mergeTaint(out, callTaint(pass, x, local))
			case *ast.Ident:
				if obj := pass.Types().ObjectOf(x); obj != nil {
					if f, ok := tainted[obj]; ok {
						out = mergeTaint(out, f)
					}
				}
			case *ast.FuncLit:
				// A closure's body taints its own results, not the
				// expression that merely mentions it.
				return false
			}
			return true
		})
		return out
	}

	assignTaint := func(lhs []ast.Expr, rhs []ast.Expr) bool {
		changed := false
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.Types().ObjectOf(id)
			if obj == nil {
				continue
			}
			var t taintFact
			if len(lhs) == len(rhs) {
				t = exprTaint(rhs[i])
			} else if len(rhs) == 1 {
				// Multi-value unpacking: every LHS shares the call's taint.
				t = exprTaint(rhs[0])
			}
			merged := mergeTaint(tainted[obj], t)
			if merged != tainted[obj] {
				tainted[obj] = merged
				changed = true
			}
		}
		return changed
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if assignTaint(st.Lhs, st.Rhs) {
					changed = true
				}
			case *ast.ValueSpec:
				if len(st.Values) > 0 {
					lhs := make([]ast.Expr, len(st.Names))
					for i, nm := range st.Names {
						lhs[i] = nm
					}
					if assignTaint(lhs, st.Values) {
						changed = true
					}
				}
			case *ast.FuncLit:
				return false
			}
			return true
		})
	}

	var namedResults []types.Object
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, nm := range field.Names {
				if obj := pass.Types().ObjectOf(nm); obj != nil {
					namedResults = append(namedResults, obj)
				}
			}
		}
	}

	var out taintFact
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for _, obj := range namedResults {
				if f, ok := tainted[obj]; ok {
					out = mergeTaint(out, f)
				}
			}
			return true
		}
		for _, r := range ret.Results {
			out = mergeTaint(out, exprTaint(r))
		}
		return true
	})
	return out
}

// mergeTaint unions two taints, keeping the first Via seen.
func mergeTaint(a, b taintFact) taintFact {
	out := taintFact{Wall: a.Wall || b.Wall, Rand: a.Rand || b.Rand, Via: a.Via}
	if out.Via == "" {
		out.Via = b.Via
	}
	return out
}
