package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SentErr enforces the typed-sentinel error contract in the fault,
// memory, and policy domains: failures are classified with errors.Is
// against the package-level sentinels (mem.ErrTierFull, mem.ErrPinned,
// …), never by matching err.Error() text — wrapping or rewording a
// message must not change control flow — and never by direct ==
// comparison, which wrapping breaks. Inside the fault and mem domains,
// errors.New belongs only at package level: an errors.New inside a
// function body mints an error no caller can classify.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc:  "requires errors.Is against typed sentinels in fault/mem/policy; forbids err.Error() matching and in-function errors.New",
	Run:  runSentErr,
}

// sentErrScope lists the import-path fragments the check applies to.
var sentErrScope = []string{"internal/fault", "internal/mem", "internal/policy"}

// sentErrNewScope lists where in-function errors.New is forbidden (the
// error-producing domains whose callers classify with errors.Is).
var sentErrNewScope = []string{"internal/fault", "internal/mem"}

func runSentErr(pass *Pass) {
	inScope := func(scope []string) bool {
		for _, frag := range scope {
			if strings.Contains(pass.Path(), frag) {
				return true
			}
		}
		return false
	}
	if !inScope(sentErrScope) {
		return
	}
	banNew := inScope(sentErrNewScope)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, e)
			case *ast.CallExpr:
				checkErrorTextMatch(pass, e)
			case *ast.FuncDecl:
				if banNew && e.Body != nil {
					checkAdHocNew(pass, e.Body)
				}
			}
			return true
		})
	}
}

// checkErrCompare flags ==/!= between error values (nil comparisons
// excluded) and any comparison of err.Error() text.
func checkErrCompare(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	if isErrorTextCall(pass, e.X) || isErrorTextCall(pass, e.Y) {
		pass.Reportf(e.Pos(), "comparing err.Error() text: classify with errors.Is against a typed sentinel instead")
		return
	}
	if isNilExpr(pass, e.X) || isNilExpr(pass, e.Y) {
		return
	}
	if isErrorType(pass.TypeOf(e.X)) && isErrorType(pass.TypeOf(e.Y)) {
		pass.Reportf(e.Pos(), "direct %s comparison of errors breaks under wrapping: use errors.Is", e.Op)
	}
}

// checkErrorTextMatch flags strings.Contains/HasPrefix/HasSuffix/
// EqualFold/Index over err.Error() output.
func checkErrorTextMatch(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorTextCall(pass, arg) {
			pass.Reportf(call.Pos(), "matching err.Error() text with strings.%s: classify with errors.Is against a typed sentinel instead", fn.Name())
			return
		}
	}
}

// checkAdHocNew flags errors.New inside a function body.
func checkAdHocNew(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "errors" || fn.Name() != "New" {
			return true
		}
		pass.Reportf(call.Pos(), "errors.New inside a function body mints an unclassifiable error: declare a package-level sentinel (var ErrX = errors.New(...)) and return it")
		return true
	})
}

// isErrorTextCall reports whether e is a call to the Error() method of
// an error value.
func isErrorTextCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorType(pass.TypeOf(sel.X))
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isNilExpr reports whether e is the untyped nil.
func isNilExpr(pass *Pass, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		_, isNil := pass.Types().ObjectOf(id).(*types.Nil)
		return isNil
	}
	return false
}
