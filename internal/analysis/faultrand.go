package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultRand guards the fault plane's determinism contract from both
// sides. Inside internal/fault it forbids importing "time",
// "math/rand" (either version), and "crypto/rand" entirely — the
// plane's only randomness is its package-local splitmix64 streams
// derived from the run seed, so the same seed and spec replay the same
// injection sequence across runs, pool widths, and Go releases. At
// every call into the fault package from anywhere else (cmd/ mains
// included, which the wallclock analyzer deliberately skips) it
// rejects arguments that lexically contain a wall-clock read or a
// global rand draw: one `fault.New(spec, time.Now().UnixNano())` and
// chaos runs stop being reproducible.
var FaultRand = &Analyzer{
	Name: "faultrand",
	Doc:  "forbids time/math-rand/crypto-rand imports inside internal/fault, and wall-clock or global-rand seeds flowing into fault-package calls",
	Run:  runFaultRand,
}

// faultPkgSuffix identifies the fault plane (and its subpackages) by
// import path.
const faultPkgSuffix = "internal/fault"

// isFaultPkg reports whether path is internal/fault or one of its
// subpackages (internal/fault/invariant).
func isFaultPkg(path string) bool {
	return strings.HasSuffix(path, faultPkgSuffix) ||
		strings.Contains(path, faultPkgSuffix+"/")
}

func runFaultRand(pass *Pass) {
	if isFaultPkg(pass.Path()) {
		for _, file := range pass.Files() {
			for _, imp := range file.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				switch path {
				case "time", "math/rand", "math/rand/v2", "crypto/rand":
					pass.Reportf(imp.Pos(), "internal/fault imports %q: fault decisions must draw only from the plane's seed-derived splitmix64 streams", path)
				}
			}
		}
		// Without those imports the package cannot break its own
		// contract; the argument scan below is for callers.
		return
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isFaultCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				checkFaultArg(pass, arg)
			}
			return true
		})
	}
}

// isFaultCall reports whether the call's callee is a function or
// method defined in the fault package.
func isFaultCall(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	fobj, ok := pass.Types().ObjectOf(id).(*types.Func)
	if !ok || fobj.Pkg() == nil {
		return false
	}
	return isFaultPkg(fobj.Pkg().Path())
}

// checkFaultArg flags wall-clock reads and global rand draws anywhere
// inside one argument expression — both direct (time.Now in the
// argument) and laundered (a call to a function whose taint fact says
// its result derives from the clock or global rand).
func checkFaultArg(pass *Pass, arg ast.Expr) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeOf(pass, call); fn != nil && fn.Pkg() != nil {
				if f, _ := pass.ObjectFact(fn, "taint").(*taintFact); f != nil {
					if f.Wall {
						pass.Reportf(call.Pos(), "wall-clock-derived value flows into a fault-package call: %s.%s derives from %s", fn.Pkg().Name(), fn.Name(), f.Via)
					} else if f.Rand {
						pass.Reportf(call.Pos(), "global-rand-derived value flows into a fault-package call: %s.%s derives from %s", fn.Pkg().Name(), fn.Name(), f.Via)
					}
				}
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Types().ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if _, isFunc := pass.Types().ObjectOf(sel.Sel).(*types.Func); !isFunc {
			return true
		}
		name := sel.Sel.Name
		switch pn.Imported().Path() {
		case "time":
			if name == "Now" || name == "Since" {
				pass.Reportf(sel.Pos(), "wall-clock time.%s flows into a fault-package call: fault decisions must be seeded from the run seed, not the clock", name)
			}
		case "math/rand", "math/rand/v2":
			if !wallClockAllowedRand[name] {
				pass.Reportf(sel.Pos(), "global rand.%s flows into a fault-package call: fault decisions must be seeded deterministically", name)
			}
		}
		return true
	})
}
