package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Goroutine fences concurrency into the two packages built for it.
// The determinism contract says parallelism lives in internal/runner
// (the worker pool with submission-order reassembly, including the
// ShardGroup fork-join primitive the sharded epoch pipeline rides on)
// and internal/telemetry (the tracer's drain); everywhere else in
// internal/, a `go` statement, a channel, a select, or a sync.Map is a
// second scheduler sneaking into a simulator whose outputs must be a
// pure function of (seed, config). internal/sim parallelizes by
// submitting pure per-cell jobs to runner.ShardGroup — an ordinary
// call — never by spawning goroutines itself. Flagged: go statements, channel
// types (which covers make(chan …) and signatures), send statements,
// select statements, and sync.Map mentions. sync.Mutex/WaitGroup are
// deliberately not flagged — guarding shared state is fine; creating
// schedule-dependent orderings is not.
var Goroutine = &Analyzer{
	Name:  "goroutine",
	Doc:   "forbids go statements, channels, select, and sync.Map outside internal/runner and internal/telemetry",
	Run:   runGoroutine,
	Tests: true,
}

func runGoroutine(pass *Pass) {
	path := pass.Path()
	if !strings.Contains(path, "internal/") {
		return
	}
	for _, allowed := range []string{"internal/runner", "internal/telemetry"} {
		if strings.HasSuffix(path, allowed) || strings.Contains(path, allowed+"/") ||
			strings.Contains(path, allowed+" ") || strings.Contains(path, allowed+"_test ") {
			return
		}
	}
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(e.Pos(), "go statement outside internal/runner: submit work to the pool, which reassembles results in submission order")
			case *ast.ChanType:
				pass.Reportf(e.Pos(), "channel outside internal/runner and internal/telemetry: channel scheduling orders are nondeterministic; pass data through the pool's submission-order results")
			case *ast.SendStmt:
				pass.Reportf(e.Pos(), "channel send outside internal/runner and internal/telemetry")
			case *ast.SelectStmt:
				pass.Reportf(e.Pos(), "select outside internal/runner and internal/telemetry: arbitrary-choice scheduling is nondeterministic")
			case *ast.SelectorExpr:
				if pkgID, ok := e.X.(*ast.Ident); ok && e.Sel.Name == "Map" {
					if pn, ok := pass.Types().ObjectOf(pkgID).(*types.PkgName); ok && pn.Imported().Path() == "sync" {
						pass.Reportf(e.Pos(), "sync.Map outside internal/runner and internal/telemetry: iteration order is nondeterministic; use a plain map with a mutex, or a dense column")
					}
				}
			}
			return true
		})
	}
}
