package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in findings and in
	// suppression directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string
	// Run inspects one package: it reports findings via the pass and
	// may export facts for downstream packages' passes. Nil for
	// engine-driven analyzers (the directive audit).
	Run func(*Pass)
	// Tests marks the analyzer as meaningful over _test.go code; only
	// these run on the test packages the driver loads under -tests.
	Tests bool
	// Finish, when non-nil, runs once after every package's passes
	// with the module-wide fact view — for cross-package checks no
	// single pass can see (e.g. two packages registering the same
	// telemetry counter name).
	Finish func(*FinishPass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	eng *engine
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Types returns the package's type information.
func (p *Pass) Types() *types.Info { return p.Pkg.Info }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path }

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Reportf records a finding at pos. The engine drops it when the
// package is not an analysis target (a dependency loaded only for
// facts), when a suppression directive covers the line, or when the
// analyzer was not requested — in that order, so directive usage
// tracking does not depend on which analyzers the caller asked for.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.eng.report(p.Pkg, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive is the comment prefix that suppresses order-sensitivity
// findings: "//tmplint:ordered <justification>" on the flagged
// statement's line or the line directly above it. The generalized
// form "//tmplint:allow <analyzer> <justification>" suppresses one
// named analyzer the same way. Unused or malformed directives are
// themselves findings (the directive audit).
const Directive = "tmplint:ordered"

// Suppressed reports whether a tmplint:ordered directive covers pos,
// marking the directive as used when it does. Analyzers with
// scope-based suppression (floatsum honors a directive on the
// enclosing range statement) call this at report time; plain same-line
// suppression is applied by the engine and needs no analyzer code.
func (p *Pass) Suppressed(pos token.Pos) bool {
	position := p.Pkg.Fset.Position(pos)
	return p.eng.orderedAt(position.Filename, position.Line)
}

// Finding is one reported problem.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzers returns the full tmplint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRange,
		WallClock,
		EpochAccount,
		FloatSum,
		Exhaustive,
		Telemetry,
		FaultRand,
		DenseMap,
		RankPath,
		CtrName,
		SentErr,
		Goroutine,
		DirectiveAudit,
	}
}

// AnalyzerTime is one analyzer's cumulative wall time across every
// package of a run (only measured when Options.Now is injected).
type AnalyzerTime struct {
	Name    string
	Elapsed time.Duration
}

// Options tunes an engine run.
type Options struct {
	// Now, when non-nil, timestamps analyzer work so the driver can
	// print per-analyzer wall time. The engine itself never reads the
	// clock (internal/ code is wallclock-clean); cmd/tmplint injects
	// time.Now.
	Now func() time.Time
}

// Run applies analyzers to pkgs and returns all findings sorted by
// position then analyzer name. See RunWithOptions.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunWithOptions(pkgs, analyzers, nil)
	return findings
}

// RunWithOptions is the engine entry point. It always executes the
// full suite (plus the taint fact provider) over pkgs and every
// module-internal dependency, in a deterministic topological package
// order, so facts flow from upstream packages into downstream passes;
// `requested` only filters which analyzers' findings are returned.
// Packages passed in are analysis targets; dependencies pulled in for
// facts never contribute findings.
func RunWithOptions(pkgs []*Package, requested []*Analyzer, opts *Options) ([]Finding, []AnalyzerTime) {
	e := &engine{
		objFacts:   make(map[objFactKey]Fact),
		pkgFacts:   make(map[pkgFactKey]Fact),
		directives: make(map[string][]*directive),
		targets:    make(map[*Package]bool),
		requested:  make(map[string]bool),
	}
	for _, p := range pkgs {
		e.targets[p] = true
	}
	for _, a := range requested {
		e.requested[a.Name] = true
	}
	e.packages = topoOrder(pkgs)
	e.collectDirectives()

	suite := append([]*Analyzer{taintFacts}, Analyzers()...)
	var now func() time.Time
	if opts != nil {
		now = opts.Now
	}
	elapsed := make([]time.Duration, len(suite))
	for _, pkg := range e.packages {
		for i, a := range suite {
			if a.Run == nil {
				continue
			}
			if pkg.ForTest && !a.Tests {
				continue
			}
			var t0 time.Time
			if now != nil {
				t0 = now()
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, eng: e})
			if now != nil {
				elapsed[i] += now().Sub(t0)
			}
		}
	}
	for i, a := range suite {
		if a.Finish == nil {
			continue
		}
		var t0 time.Time
		if now != nil {
			t0 = now()
		}
		a.Finish(&FinishPass{Analyzer: a, eng: e})
		if now != nil {
			elapsed[i] += now().Sub(t0)
		}
	}
	e.auditDirectives()

	sort.Slice(e.findings, func(i, j int) bool {
		pi, pj := e.findings[i].Pos, e.findings[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return e.findings[i].Analyzer < e.findings[j].Analyzer
	})
	var times []AnalyzerTime
	if now != nil {
		for i, a := range suite {
			times = append(times, AnalyzerTime{Name: a.Name, Elapsed: elapsed[i]})
		}
	}
	return e.findings, times
}

// engine is the state of one RunWithOptions call: the shared fact
// store, the suppression-directive table, and the accumulated
// findings.
type engine struct {
	objFacts   map[objFactKey]Fact
	pkgFacts   map[pkgFactKey]Fact
	directives map[string][]*directive // keyed by filename
	packages   []*Package              // topological order, dependencies first
	targets    map[*Package]bool
	requested  map[string]bool
	findings   []Finding
}

// report runs one finding through the engine's filters.
func (e *engine) report(pkg *Package, f Finding) {
	if !e.targets[pkg] {
		return
	}
	if pkg.ForTest && !strings.HasSuffix(f.Pos.Filename, "_test.go") {
		// Test packages re-check the non-test files; their findings
		// already surfaced when the base package ran.
		return
	}
	if e.suppressed(f) {
		return
	}
	if !e.requested[f.Analyzer] {
		return
	}
	e.findings = append(e.findings, f)
}

// topoOrder returns pkgs plus every module-internal dependency in
// deterministic topological order: dependencies before dependents,
// ties broken by import path. The order is a pure function of the
// import graph — never of the caller's argument order or any map
// iteration — which is what lets facts flow one way and keeps tmplint
// output byte-identical across runs.
func topoOrder(pkgs []*Package) []*Package {
	closure := make(map[string]*Package)
	var visit func(*Package)
	visit = func(p *Package) {
		if _, ok := closure[p.Path]; ok {
			return
		}
		closure[p.Path] = p
		for _, dep := range p.Imports {
			visit(dep)
		}
	}
	for _, p := range pkgs {
		visit(p)
	}

	indegree := make(map[string]int, len(closure))
	dependents := make(map[string][]*Package, len(closure))
	for _, p := range closure {
		if _, ok := indegree[p.Path]; !ok {
			indegree[p.Path] = 0
		}
		for _, dep := range p.Imports {
			indegree[p.Path]++
			dependents[dep.Path] = append(dependents[dep.Path], p)
		}
	}
	var ready []*Package
	for _, p := range closure {
		if indegree[p.Path] == 0 {
			ready = append(ready, p)
		}
	}
	var out []*Package
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return ready[i].Path < ready[j].Path })
		p := ready[0]
		ready = ready[1:]
		out = append(out, p)
		next := dependents[p.Path]
		sort.Slice(next, func(i, j int) bool { return next[i].Path < next[j].Path })
		for _, d := range next {
			indegree[d.Path]--
			if indegree[d.Path] == 0 {
				ready = append(ready, d)
			}
		}
	}
	// A cycle would strand packages; the loader rejects import cycles,
	// so emit any stragglers deterministically rather than dropping
	// them.
	if len(out) < len(closure) {
		var rest []*Package
		seen := make(map[string]bool, len(out))
		for _, p := range out {
			seen[p.Path] = true
		}
		for _, p := range closure {
			if !seen[p.Path] {
				rest = append(rest, p)
			}
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].Path < rest[j].Path })
		out = append(out, rest...)
	}
	return out
}

// FinishPass is the module-wide view handed to an analyzer's Finish
// hook after every package has run.
type FinishPass struct {
	Analyzer *Analyzer
	eng      *engine
}

// Packages returns every analyzed package in the engine's
// deterministic topological order (dependencies first).
func (fp *FinishPass) Packages() []*Package { return fp.eng.packages }

// PackageFact returns the fact of the given kind attached to pkg, or
// nil.
func (fp *FinishPass) PackageFact(pkg *types.Package, kind string) Fact {
	return fp.eng.pkgFacts[pkgFactKey{pkg, kind}]
}

// IsTarget reports whether pkg is an analysis target (findings in it
// are wanted) rather than a dependency loaded only for facts.
func (fp *FinishPass) IsTarget(pkg *Package) bool { return fp.eng.targets[pkg] }

// Reportf records a finding at a position already resolved against
// the engine's file set.
func (fp *FinishPass) Reportf(pkg *Package, pos token.Position, format string, args ...any) {
	fp.eng.report(pkg, Finding{
		Analyzer: fp.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}
