package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in findings and in
	// suppression directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string
	// Run inspects one package and reports findings via the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// report receives findings as they are made.
	report func(Finding)

	// directives caches per-file suppression-comment positions,
	// built lazily on first use.
	directives map[*ast.File]map[int]string
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Types returns the package's type information.
func (p *Pass) Types() *types.Info { return p.Pkg.Info }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path }

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive is the comment prefix that suppresses findings:
// "//tmplint:ordered" (optionally followed by a justification) on the
// flagged statement's line or the line directly above it.
const Directive = "tmplint:ordered"

// Suppressed reports whether a tmplint:ordered directive covers pos:
// the directive comment sits on the same line as pos or on the line
// immediately above it, in the same file.
func (p *Pass) Suppressed(pos token.Pos) bool {
	file := p.fileOf(pos)
	if file == nil {
		return false
	}
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int]string)
	}
	lines, ok := p.directives[file]
	if !ok {
		lines = make(map[int]string)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if strings.HasPrefix(text, Directive) {
					lines[p.Pkg.Fset.Position(c.Pos()).Line] = text
				}
			}
		}
		p.directives[file] = lines
	}
	line := p.Pkg.Fset.Position(pos).Line
	_, same := lines[line]
	_, above := lines[line-1]
	return same || above
}

// fileOf returns the parsed file containing pos.
func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Finding is one reported problem.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzers returns the full tmplint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRange,
		WallClock,
		EpochAccount,
		FloatSum,
		Exhaustive,
		Telemetry,
		FaultRand,
	}
}

// Run applies analyzers to pkgs and returns all findings sorted by
// position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(f Finding) { findings = append(findings, f) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Pos, findings[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}
