package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CtrName enforces the telemetry naming contract: every counter is
// registered under a constant `<subsystem>/<metric>` name (lowercase
// [a-z0-9_] segments joined by "/"), exactly once across the module.
// Ad-hoc string concatenation at registration sites produces names no
// dashboard can grep for and lets two subsystems silently share a
// counter. Dynamic names must go through telemetry.Name, which
// sanitizes parts into the same alphabet — or through a helper whose
// every return is a well-shaped constant, which earns a "namefunc"
// fact and may be called cross-package.
var CtrName = &Analyzer{
	Name:   "ctrname",
	Doc:    "requires constant <subsystem>/<metric> telemetry counter names (or telemetry.Name / namefunc helpers), registered once",
	Run:    runCtrName,
	Finish: finishCtrName,
}

// nameFuncFact marks a function whose every return value is a
// well-shaped constant counter name.
type nameFuncFact struct{}

func (nameFuncFact) FactKind() string { return "namefunc" }

// ctrSitesFact records, per package, every constant counter name and
// the sites registering it, for the module-wide duplicate check.
type ctrSitesFact struct {
	sites map[string][]token.Position
}

func (*ctrSitesFact) FactKind() string { return "ctrsites" }

func runCtrName(pass *Pass) {
	exportNameFuncFacts(pass)
	// internal/telemetry's own delegation (Tracer.Counter forwarding to
	// Registry.Counter) is the API's plumbing, not a registration site;
	// the contract binds callers.
	if strings.HasSuffix(pass.Path(), telemetryPkgSuffix) {
		return
	}
	sites := make(map[string][]token.Position)
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isCounterRegistration(pass, call) || len(call.Args) != 1 {
				return true
			}
			arg := call.Args[0]
			if name, ok := constString(pass, arg); ok {
				if !wellShapedCtrName(name) {
					pass.Reportf(arg.Pos(), "telemetry counter name %q is not <subsystem>/<metric> shaped (lowercase [a-z0-9_] segments joined by /)", name)
					return true
				}
				sites[name] = append(sites[name], pass.Fset().Position(arg.Pos()))
				return true
			}
			if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if fn := calleeOf(pass, inner); fn != nil {
					if isTelemetryNameHelper(fn) || pass.ObjectFact(fn, "namefunc") != nil {
						return true
					}
				}
			}
			pass.Reportf(arg.Pos(), "telemetry counter registered with a non-constant name: use a constant <subsystem>/<metric> string, telemetry.Name(parts...), or a helper whose every return is a well-shaped constant")
			return true
		})
	}
	if len(sites) > 0 {
		pass.ExportPackageFact(&ctrSitesFact{sites: sites})
	}
}

// finishCtrName runs the module-wide duplicate check: the same
// constant name registered at two distinct source sites means two
// subsystems share (or fight over) one counter.
func finishCtrName(fp *FinishPass) {
	type site struct {
		pkg *Package
		pos token.Position
	}
	first := make(map[string]site)
	for _, pkg := range fp.Packages() {
		if pkg.ForTest {
			continue
		}
		f, _ := fp.PackageFact(pkg.Types, "ctrsites").(*ctrSitesFact)
		if f == nil {
			continue
		}
		names := make([]string, 0, len(f.sites))
		for name := range f.sites {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, pos := range f.sites[name] {
				if prev, ok := first[name]; ok && prev.pos != pos {
					fp.Reportf(pkg, pos, "telemetry counter %q already registered at %s: counter names must be unique across the module", name, prev.pos)
					continue
				}
				if _, ok := first[name]; !ok {
					first[name] = site{pkg: pkg, pos: pos}
				}
			}
		}
	}
}

// isCounterRegistration reports whether the call registers a counter:
// a Counter method on internal/telemetry's Registry or Tracer.
func isCounterRegistration(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeOf(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Name() != "Counter" {
		return false
	}
	if !strings.HasSuffix(fn.Pkg().Path(), telemetryPkgSuffix) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// isTelemetryNameHelper reports whether fn is telemetry.Name, the
// sanctioned dynamic-name constructor (it sanitizes every part into
// the counter alphabet).
func isTelemetryNameHelper(fn *types.Func) bool {
	return fn.Name() == "Name" && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), telemetryPkgSuffix)
}

// constString returns e's compile-time string value, if it has one.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Types().Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// wellShapedCtrName reports whether name is lowercase [a-z0-9_]
// segments joined by "/", at least two deep.
func wellShapedCtrName(name string) bool {
	segs := strings.Split(name, "/")
	if len(segs) < 2 {
		return false
	}
	for _, seg := range segs {
		if seg == "" {
			return false
		}
		for _, r := range seg {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
				return false
			}
		}
	}
	return true
}

// exportNameFuncFacts publishes a namefunc fact for every function or
// method whose every return is a well-shaped constant counter name (or
// a call to another namefunc helper).
func exportNameFuncFacts(pass *Pass) {
	for _, file := range pass.Files() {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsSingleString(fd.Type) {
				continue
			}
			obj, _ := pass.Types().Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			good, returns := true, 0
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				returns++
				if len(ret.Results) != 1 {
					good = false
					return true
				}
				if name, ok := constString(pass, ret.Results[0]); ok && wellShapedCtrName(name) {
					return true
				}
				if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
					if fn := calleeOf(pass, call); fn != nil {
						if isTelemetryNameHelper(fn) || pass.ObjectFact(fn, "namefunc") != nil {
							return true
						}
					}
				}
				good = false
				return true
			})
			if good && returns > 0 {
				pass.ExportObjectFact(obj, nameFuncFact{})
			}
		}
	}
}

// returnsSingleString reports whether the signature returns exactly
// one string.
func returnsSingleString(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) != 1 || len(ft.Results.List[0].Names) > 1 {
		return false
	}
	id, ok := ft.Results.List[0].Type.(*ast.Ident)
	return ok && id.Name == "string"
}
