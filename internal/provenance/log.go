package provenance

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
)

// Log is one run's serializable provenance: every page the recorder
// saw (canonical (PID, VPN) order) with its surviving decision ring,
// oldest record first.
type Log struct {
	Schema    int
	Label     string
	LastK     int
	PingPongK int
	Pages     []PageLog
}

// PageLog is one page's provenance: its ping-pong flip count, how
// many older records the ring dropped, and the surviving records.
type PageLog struct {
	Key     core.PageKey
	Flips   uint32
	Dropped uint64
	Records []Record
}

// Find returns the page's log entry, nil when the recorder never saw
// it. Pages are sorted, but the linear walk is fine at query time.
func (lg *Log) Find(key core.PageKey) *PageLog {
	for i := range lg.Pages {
		if lg.Pages[i].Key == key {
			return &lg.Pages[i]
		}
	}
	return nil
}

// WriteLog serializes logs as deterministic JSONL, one self-describing
// object per line with fields in fixed order (the same contract as the
// telemetry event log — parallel-identity tests compare these bytes):
//
//	{"type":"run","schema":1,"label":"history/tmp","last_k":8,"pingpong_k":4}
//	{"type":"page","pid":100,"vpn":"0x2a","flips":1,"dropped":0,"records":5}
//	{"type":"decision","pid":100,"vpn":"0x2a","epoch":3,"abit":1,"ibs":2,...}
//
// Each page line is followed by its decision lines, oldest first.
func WriteLog(w io.Writer, logs []Log) error {
	var b strings.Builder
	for li := range logs {
		lg := &logs[li]
		b.Reset()
		b.WriteString(`{"type":"run","schema":`)
		b.WriteString(strconv.Itoa(lg.Schema))
		b.WriteString(`,"label":`)
		quoteJSON(&b, lg.Label)
		b.WriteString(`,"last_k":`)
		b.WriteString(strconv.Itoa(lg.LastK))
		b.WriteString(`,"pingpong_k":`)
		b.WriteString(strconv.Itoa(lg.PingPongK))
		b.WriteString("}\n")
		for pi := range lg.Pages {
			pg := &lg.Pages[pi]
			b.WriteString(`{"type":"page","pid":`)
			b.WriteString(strconv.Itoa(pg.Key.PID))
			b.WriteString(`,"vpn":"0x`)
			b.WriteString(strconv.FormatUint(uint64(pg.Key.VPN), 16))
			b.WriteString(`","flips":`)
			b.WriteString(strconv.FormatUint(uint64(pg.Flips), 10))
			b.WriteString(`,"dropped":`)
			b.WriteString(strconv.FormatUint(pg.Dropped, 10))
			b.WriteString(`,"records":`)
			b.WriteString(strconv.Itoa(len(pg.Records)))
			b.WriteString("}\n")
			for ri := range pg.Records {
				writeDecisionLine(&b, pg.Key, &pg.Records[ri])
			}
			if b.Len() >= 1<<16 {
				if _, err := io.WriteString(w, b.String()); err != nil {
					return err
				}
				b.Reset()
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeDecisionLine(b *strings.Builder, key core.PageKey, rec *Record) {
	b.WriteString(`{"type":"decision","pid":`)
	b.WriteString(strconv.Itoa(key.PID))
	b.WriteString(`,"vpn":"0x`)
	b.WriteString(strconv.FormatUint(uint64(key.VPN), 16))
	b.WriteString(`","epoch":`)
	b.WriteString(strconv.FormatInt(int64(rec.Epoch), 10))
	b.WriteString(`,"abit":`)
	b.WriteString(strconv.FormatUint(uint64(rec.Abit), 10))
	b.WriteString(`,"ibs":`)
	b.WriteString(strconv.FormatUint(uint64(rec.Trace), 10))
	b.WriteString(`,"write":`)
	b.WriteString(strconv.FormatUint(uint64(rec.Write), 10))
	b.WriteString(`,"dev":`)
	b.WriteString(strconv.FormatUint(uint64(rec.Dev), 10))
	b.WriteString(`,"rank":`)
	b.WriteString(strconv.FormatUint(rec.Rank, 10))
	b.WriteString(`,"pos":`)
	b.WriteString(strconv.FormatInt(int64(rec.Pos), 10))
	b.WriteString(`,"tier":`)
	b.WriteString(strconv.FormatInt(int64(rec.Tier), 10))
	b.WriteString(`,"verdict":`)
	quoteJSON(b, rec.Verdict.Reason(rec.Fail))
	b.WriteString(`,"from":`)
	b.WriteString(strconv.FormatInt(int64(rec.From), 10))
	b.WriteString(`,"to":`)
	b.WriteString(strconv.FormatInt(int64(rec.To), 10))
	b.WriteString(`,"selected":`)
	b.WriteString(strconv.FormatBool(rec.Selected))
	b.WriteString(`,"degraded":`)
	b.WriteString(strconv.FormatBool(rec.Degraded))
	b.WriteString(`,"method":`)
	quoteJSON(b, rec.Method.String())
	b.WriteString("}\n")
}

// quoteJSON quotes s with the minimal escaping labels and reason
// strings can need.
func quoteJSON(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b.WriteString(`\u00`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}

// logLine is the union of the three line shapes for the reader.
type logLine struct {
	Type      string `json:"type"`
	Schema    int    `json:"schema"`
	Label     string `json:"label"`
	LastK     int    `json:"last_k"`
	PingPongK int    `json:"pingpong_k"`

	PID     int    `json:"pid"`
	VPN     string `json:"vpn"`
	Flips   uint32 `json:"flips"`
	Dropped uint64 `json:"dropped"`

	Epoch    int32  `json:"epoch"`
	Abit     uint32 `json:"abit"`
	IBS      uint32 `json:"ibs"`
	Write    uint32 `json:"write"`
	Dev      uint32 `json:"dev"`
	Rank     uint64 `json:"rank"`
	Pos      int32  `json:"pos"`
	Tier     int8   `json:"tier"`
	Verdict  string `json:"verdict"`
	From     int8   `json:"from"`
	To       int8   `json:"to"`
	Selected bool   `json:"selected"`
	Degraded bool   `json:"degraded"`
	Method   string `json:"method"`
}

// ParsePageKey parses a CLI page operand of the form pid:vpn, with the
// vpn in hex (0x-prefixed) or decimal — the notation `tmpsim -why` and
// `tmpwhy -page` accept.
func ParsePageKey(s string) (core.PageKey, error) {
	pidStr, vpnStr, ok := strings.Cut(s, ":")
	if !ok {
		return core.PageKey{}, fmt.Errorf("provenance: bad page %q: want pid:vpn (e.g. 100:0x2a7)", s)
	}
	pid, err := strconv.Atoi(pidStr)
	if err != nil {
		return core.PageKey{}, fmt.Errorf("provenance: bad pid in %q: %v", s, err)
	}
	base := 10
	if strings.HasPrefix(vpnStr, "0x") {
		vpnStr, base = vpnStr[2:], 16
	}
	vpn, err := strconv.ParseUint(vpnStr, base, 64)
	if err != nil {
		return core.PageKey{}, fmt.Errorf("provenance: bad vpn in %q: %v", s, err)
	}
	return core.PageKey{PID: pid, VPN: mem.VPN(vpn)}, nil
}

func parseKey(l *logLine) (core.PageKey, error) {
	vpn, err := strconv.ParseUint(strings.TrimPrefix(l.VPN, "0x"), 16, 64)
	if err != nil {
		return core.PageKey{}, fmt.Errorf("provenance: bad vpn %q: %w", l.VPN, err)
	}
	return core.PageKey{PID: l.PID, VPN: mem.VPN(vpn)}, nil
}

func parseMethod(s string) core.Method {
	switch s {
	case "abit":
		return core.MethodAbit
	case "ibs":
		return core.MethodTrace
	case "devprof":
		return core.MethodDev
	default:
		return core.MethodCombined
	}
}

// ReadLog parses a provenance JSONL stream back into its Logs,
// verifying the schema version on every run line — the reader-side
// check that lets downstream consumers detect format drift.
func ReadLog(rd io.Reader) ([]Log, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var logs []Log
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l logLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("provenance: line %d: %w", lineNo, err)
		}
		switch l.Type {
		case "run":
			if l.Schema != telemetry.SchemaVersion {
				return nil, fmt.Errorf("provenance: line %d: schema %d, this reader expects %d", lineNo, l.Schema, telemetry.SchemaVersion)
			}
			logs = append(logs, Log{Schema: l.Schema, Label: l.Label, LastK: l.LastK, PingPongK: l.PingPongK})
		case "page":
			if len(logs) == 0 {
				return nil, fmt.Errorf("provenance: line %d: page before any run header", lineNo)
			}
			key, err := parseKey(&l)
			if err != nil {
				return nil, err
			}
			lg := &logs[len(logs)-1]
			lg.Pages = append(lg.Pages, PageLog{Key: key, Flips: l.Flips, Dropped: l.Dropped})
		case "decision":
			if len(logs) == 0 || len(logs[len(logs)-1].Pages) == 0 {
				return nil, fmt.Errorf("provenance: line %d: decision before any page", lineNo)
			}
			key, err := parseKey(&l)
			if err != nil {
				return nil, err
			}
			lg := &logs[len(logs)-1]
			pg := &lg.Pages[len(lg.Pages)-1]
			if pg.Key != key {
				return nil, fmt.Errorf("provenance: line %d: decision for pid=%d vpn=%s under page pid=%d vpn=%#x",
					lineNo, l.PID, l.VPN, pg.Key.PID, uint64(pg.Key.VPN))
			}
			v, f := verdictFromReason(l.Verdict)
			pg.Records = append(pg.Records, Record{
				Epoch: l.Epoch, Pos: l.Pos, Rank: l.Rank,
				Abit: l.Abit, Trace: l.IBS, Write: l.Write, Dev: l.Dev,
				Tier: l.Tier, From: l.From, To: l.To,
				Verdict: v, Fail: f,
				Selected: l.Selected, Degraded: l.Degraded,
				Method: parseMethod(l.Method),
			})
		default:
			return nil, fmt.Errorf("provenance: line %d: unknown line type %q", lineNo, l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return logs, nil
}
