// Package provenance is the decision-provenance flight recorder: at
// each epoch cut it captures, per page, the raw evidence vector the
// profiler harvested (A-bit / IBS / PML-write / device counts), the
// page's fused rank position, the selector's verdict with a typed
// reason (promoted, demoted, held:below-topk, held:quarantine-degraded,
// deferred:retry-backoff, failed:<reason>), and the resulting tier
// transition — answering "why did the policy do that to this page"
// after the fact, which aggregate counters cannot.
//
// The recorder obeys the same contracts as telemetry:
//
//   - Inert by construction: it only reads simulator state handed to
//     it and writes its own columns; attaching a recorder changes no
//     output byte of the run (machine-checked by TestProvenanceInert
//     in internal/sim).
//   - Nil-safe and zero-alloc when detached: every method on a nil
//     *Recorder is a no-op, so the mover and placement loop wire
//     hooks unconditionally.
//   - Bounded and seed-deterministic: per-page state lives in dense
//     pageidx columns (no map[PageKey] anywhere), each page keeps only
//     its last-K decision records in a ring, and the serialized log is
//     a pure function of the run.
package provenance

import (
	"slices"

	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
)

// Verdict is the typed outcome of one page's epoch: what the selector
// and mover decided, or why nothing happened.
type Verdict uint8

const (
	// VerdictNone marks a record still being collected (FinishEpoch
	// replaces it with a held verdict).
	VerdictNone Verdict = iota
	// VerdictPromoted: the page moved one tier up.
	VerdictPromoted
	// VerdictDemoted: the page moved one tier down.
	VerdictDemoted
	// VerdictHeldResident: selected and already in the top tier.
	VerdictHeldResident
	// VerdictHeldBelowTopK: not selected — the page's rank fell below
	// the capacity cut.
	VerdictHeldBelowTopK
	// VerdictHeldBelowMinRank: selected, but its evidence is below the
	// mover's MinPromoteRank gate — not worth a migration yet.
	VerdictHeldBelowMinRank
	// VerdictHeldQuarantine: not selected in an epoch whose evidence
	// was degraded by profiler quarantine — the rank that cut this
	// page came from fewer mechanisms than requested.
	VerdictHeldQuarantine
	// VerdictDeferred: a transient migration failure queued the page
	// in the mover's deferred-retry queue (or it is still waiting
	// there under backoff).
	VerdictDeferred
	// VerdictSuperseded: a queued retry was dropped because the
	// selection reversed direction before it came due.
	VerdictSuperseded
	// VerdictFailed: the migration failed and was not (or could not
	// be) queued for retry; Fail carries the reason.
	VerdictFailed
	// VerdictHeld: selected with sufficient rank, but the mover never
	// attempted the page this epoch (e.g. pinned non-migratable).
	VerdictHeld
	// VerdictDeferredAdmission: the admission controller's per-epoch
	// bandwidth budget was exhausted; the migration sits in the retry
	// queue for the next epoch.
	VerdictDeferredAdmission
	// VerdictRejectedAdmission: admission denied the migration and the
	// retry queue was full — the migration is dropped outright.
	VerdictRejectedAdmission
)

// FailReason classifies a failed migration, mirroring the mover's
// reason-partitioned counters.
type FailReason uint8

const (
	FailNone FailReason = iota
	// FailCapacity: target tier had no free frame (mem.ErrTierFull).
	FailCapacity
	// FailPinned: the page was transiently pinned (mem.ErrPinned).
	FailPinned
	// FailSplit: the THP split raced a refcount (policy.ErrSplitFailed).
	FailSplit
	// FailVanished: the mapping disappeared mid-flight (mem.ErrUnmapped
	// or an unrecognized error).
	FailVanished
	// FailCopyAbort: a transactional copy found the page dirtied
	// mid-flight (mem.ErrCopyAborted).
	FailCopyAbort
)

// String names the fail reason by the fault site that produces it.
func (f FailReason) String() string {
	switch f {
	case FailCapacity:
		return "mem.enomem"
	case FailPinned:
		return "mem.pinned"
	case FailSplit:
		return "mem.splitfail"
	case FailVanished:
		return "vanished"
	case FailCopyAbort:
		return "mem.copyabort"
	default:
		return "none"
	}
}

// Reason renders the verdict as its typed reason string, the taxonomy
// the timeline prints and the log serializes.
func (v Verdict) Reason(f FailReason) string {
	switch v {
	case VerdictPromoted:
		return "promoted"
	case VerdictDemoted:
		return "demoted"
	case VerdictHeldResident:
		return "held:resident"
	case VerdictHeldBelowTopK:
		return "held:below-topk"
	case VerdictHeldBelowMinRank:
		return "held:below-minrank"
	case VerdictHeldQuarantine:
		return "held:quarantine-degraded"
	case VerdictDeferred:
		return "deferred:retry-backoff"
	case VerdictSuperseded:
		return "superseded"
	case VerdictFailed:
		return "failed:" + f.String()
	case VerdictHeld:
		return "held"
	case VerdictDeferredAdmission:
		return "deferred:admission"
	case VerdictRejectedAdmission:
		return "rejected:admission"
	default:
		return "none"
	}
}

// verdictFromReason inverts Reason for the log reader.
func verdictFromReason(s string) (Verdict, FailReason) {
	switch s {
	case "promoted":
		return VerdictPromoted, FailNone
	case "demoted":
		return VerdictDemoted, FailNone
	case "held:resident":
		return VerdictHeldResident, FailNone
	case "held:below-topk":
		return VerdictHeldBelowTopK, FailNone
	case "held:below-minrank":
		return VerdictHeldBelowMinRank, FailNone
	case "held:quarantine-degraded":
		return VerdictHeldQuarantine, FailNone
	case "deferred:retry-backoff":
		return VerdictDeferred, FailNone
	case "superseded":
		return VerdictSuperseded, FailNone
	case "held":
		return VerdictHeld, FailNone
	case "failed:mem.enomem":
		return VerdictFailed, FailCapacity
	case "failed:mem.pinned":
		return VerdictFailed, FailPinned
	case "failed:mem.splitfail":
		return VerdictFailed, FailSplit
	case "failed:vanished":
		return VerdictFailed, FailVanished
	case "failed:mem.copyabort":
		return VerdictFailed, FailCopyAbort
	case "failed:none":
		return VerdictFailed, FailNone
	case "deferred:admission":
		return VerdictDeferredAdmission, FailNone
	case "rejected:admission":
		return VerdictRejectedAdmission, FailNone
	default:
		return VerdictNone, FailNone
	}
}

// Record is one page's decision record for one epoch: the evidence
// the profiler saw, where the fused rank placed the page, and what
// the selector and mover did about it.
type Record struct {
	Epoch int32
	// Pos is the page's position in the epoch's fused ranking
	// (0 = hottest); -1 when the page ranked zero or was only seen
	// through a mover action.
	Pos  int32
	Rank uint64
	// The raw evidence vector at harvest.
	Abit  uint32
	Trace uint32
	Write uint32
	Dev   uint32
	// Tier the page occupied at harvest; -1 when the page was only
	// seen through a mover action this epoch.
	Tier int8
	// From/To record the tier transition; -1/-1 when the page did not
	// move.
	From int8
	To   int8
	// Verdict and Fail type the outcome; Reason() renders them.
	Verdict Verdict
	Fail    FailReason
	// Selected reports whether the policy's tier-1 selection included
	// the page.
	Selected bool
	// Degraded reports whether quarantine degraded the ranking method
	// this epoch; Method is the effective method the rank used.
	Degraded bool
	Method   core.Method
}

// residencyHist names the per-tier time-in-tier histograms. Constant
// so counter/histogram names stay static strings; chains are at most
// four tiers deep (mem.ParseTierChain enforces it).
var residencyHist = [4]string{
	"mover/residency_epochs_t0",
	"mover/residency_epochs_t1",
	"mover/residency_epochs_t2",
	"mover/residency_epochs_t3",
}

// Recorder is the flight recorder for one run. The nil Recorder is
// the detached state: every method is a zero-allocation no-op. A
// Recorder belongs to exactly one run (like a telemetry.Tracer) and
// is not safe for concurrent use.
type Recorder struct {
	lastK int // decision records kept per page
	pingK int // promote→demote within this many epochs counts as a ping-pong

	tab *pageidx.Table[core.PageKey]
	// Dense per-page columns, indexed by interned id.
	recs        []Record // stride-lastK ring of decision records
	n           []uint32 // records ever written (ring occupancy = min(n, lastK))
	stamp       []int32  // epoch of the page's newest record (-1 = none)
	curTier     []int8   // tier the recorder last saw the page in (-1 unknown)
	entered     []int32  // epoch the page entered curTier
	lastPromote []int32  // epoch of the last promotion (-1 = none), for ping-pong
	lastSel     []int32  // epoch the page was last selected (-2 = never)
	flips       []uint32 // ping-pong count

	// Per-epoch scratch (reset at FinishEpoch).
	touched []uint32
	selCur  []uint32
	selPrev []uint32

	curEpoch  int32
	method    core.Method
	requested core.Method
	degraded  bool
	minRank   uint64

	// Telemetry handles (nil no-ops when no tracer is attached).
	hResidency [4]*telemetry.Histogram
	hChurn     *telemetry.Histogram
	hPingGap   *telemetry.Histogram
	ctrPing    *telemetry.Counter
}

// DefaultLastK is the per-page ring depth: enough epochs to read a
// page's recent story without the log growing with run length.
const DefaultLastK = 8

// DefaultPingPongK is the ping-pong window: a demotion this many
// epochs (or fewer) after a promotion counts as one flip.
const DefaultPingPongK = 4

// New returns a recorder with the default ring depth and ping-pong
// window.
func New() *Recorder { return NewK(DefaultLastK, DefaultPingPongK) }

// NewK returns a recorder keeping the last lastK records per page and
// counting promote→demote flips within pingK epochs.
func NewK(lastK, pingK int) *Recorder {
	if lastK < 1 {
		lastK = 1
	}
	if pingK < 1 {
		pingK = 1
	}
	return &Recorder{
		lastK: lastK,
		pingK: pingK,
		tab:   pageidx.New(1024, core.PageKeyHash),
	}
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SetTracer attaches the telemetry layer so the recorder can feed the
// distribution metrics (time-in-tier residency, rank churn, ping-pong
// gaps) and the mover/pingpong pathology counter. Safe with a nil
// tracer: the handles become no-ops.
func (r *Recorder) SetTracer(t *telemetry.Tracer) {
	if r == nil {
		return
	}
	for i := range r.hResidency {
		r.hResidency[i] = t.Histogram(residencyHist[i])
	}
	r.hChurn = t.Histogram("sim/rank_churn")
	r.hPingGap = t.Histogram("mover/pingpong_gap_epochs")
	r.ctrPing = t.Counter("mover/pingpong")
}

// growTo ensures every column covers id.
func (r *Recorder) growTo(id int) {
	for len(r.n) <= id {
		r.recs = append(r.recs, make([]Record, r.lastK)...)
		r.n = append(r.n, 0)
		r.stamp = append(r.stamp, -1)
		r.curTier = append(r.curTier, -1)
		r.entered = append(r.entered, 0)
		r.lastPromote = append(r.lastPromote, -1)
		r.lastSel = append(r.lastSel, -2)
		r.flips = append(r.flips, 0)
	}
}

// newest returns the page's current-epoch record; note() must have
// created it first.
func (r *Recorder) newest(id uint32) *Record {
	slot := (int(r.n[id]) - 1) % r.lastK
	return &r.recs[int(id)*r.lastK+slot]
}

// note returns the page's record for the current epoch, creating it
// (claiming the next ring slot) on first touch.
func (r *Recorder) note(key core.PageKey) (uint32, *Record) {
	id := r.tab.Intern(key)
	r.growTo(int(id))
	if r.stamp[id] == r.curEpoch && r.n[id] > 0 {
		return id, r.newest(id)
	}
	r.stamp[id] = r.curEpoch
	slot := int(r.n[id]) % r.lastK
	r.n[id]++
	rec := &r.recs[int(id)*r.lastK+slot]
	*rec = Record{
		Epoch:    r.curEpoch,
		Pos:      -1,
		Tier:     -1,
		From:     -1,
		To:       -1,
		Method:   r.method,
		Degraded: r.degraded,
	}
	r.touched = append(r.touched, id)
	return id, rec
}

// BeginEpoch opens an epoch's collection: the epoch index the harvest
// closed, the effective ranking method after quarantine degradation,
// the originally requested method, and the mover's promotion gate.
// Call before ObserveHarvest and the mover's ApplySelection.
func (r *Recorder) BeginEpoch(epoch int, effective, requested core.Method, minPromoteRank uint64) {
	if r == nil {
		return
	}
	r.curEpoch = int32(epoch)
	r.method = effective
	r.requested = requested
	r.degraded = effective != requested
	r.minRank = minPromoteRank
}

// ObserveHarvest records the epoch's evidence vectors and fused rank
// positions, and marks which pages the policy selected. selected may
// be nil (nothing selected).
func (r *Recorder) ObserveHarvest(ep core.EpochStats, selected func(core.PageKey) bool) {
	if r == nil {
		return
	}
	for i := range ep.Pages {
		ps := &ep.Pages[i]
		id, rec := r.note(ps.Key)
		rec.Abit, rec.Trace, rec.Write, rec.Dev = ps.Abit, ps.Trace, ps.Write, ps.Dev
		rec.Tier = int8(ps.Tier)
		rec.Rank = ps.Rank(r.method)
		if selected != nil && selected(ps.Key) {
			rec.Selected = true
			r.selCur = append(r.selCur, id)
		}
		if r.curTier[id] != int8(ps.Tier) {
			// First sighting (or an allocation-path tier change the
			// mover never saw): restart the residency clock.
			r.curTier[id] = int8(ps.Tier)
			r.entered[id] = r.curEpoch
		}
	}
	// The fused rank position is the page's index in the canonical
	// ranking — the same order every selector consumes.
	ranked := core.RankedPages(ep, r.method)
	for pos := range ranked {
		if id, ok := r.tab.Lookup(ranked[pos].Key); ok && r.stamp[id] == r.curEpoch {
			r.newest(id).Pos = int32(pos)
		}
	}
}

// NoteMove records a successful migration to tier to. The from tier
// is the recorder's view of where the page was; the per-tier
// residency histogram observes the stay it just ended.
func (r *Recorder) NoteMove(key core.PageKey, promote bool, to mem.TierID) {
	if r == nil {
		return
	}
	id, rec := r.note(key)
	from := r.curTier[id]
	rec.From, rec.To = from, int8(to)
	if rec.Tier < 0 {
		rec.Tier = from
	}
	if promote {
		rec.Verdict = VerdictPromoted
	} else {
		rec.Verdict = VerdictDemoted
	}
	if from >= 0 {
		t := int(from)
		if t >= len(residencyHist) {
			t = len(residencyHist) - 1
		}
		r.hResidency[t].Observe(uint64(r.curEpoch - r.entered[id]))
	}
	r.curTier[id] = int8(to)
	r.entered[id] = r.curEpoch
	if promote {
		r.lastPromote[id] = r.curEpoch
	} else if r.lastPromote[id] >= 0 && r.curEpoch-r.lastPromote[id] <= int32(r.pingK) {
		r.flips[id]++
		r.ctrPing.Add(1)
		r.hPingGap.Observe(uint64(r.curEpoch - r.lastPromote[id]))
		r.lastPromote[id] = -1 // one flip per promotion
	}
}

// NoteFail records a failed migration attempt. A later NoteDeferred
// or NoteMove in the same epoch refines the verdict; a success is
// never downgraded.
func (r *Recorder) NoteFail(key core.PageKey, reason FailReason) {
	if r == nil {
		return
	}
	_, rec := r.note(key)
	if rec.Verdict == VerdictPromoted || rec.Verdict == VerdictDemoted {
		return
	}
	rec.Verdict = VerdictFailed
	rec.Fail = reason
}

// NoteDeferred records that the page sits in the mover's
// deferred-retry queue this epoch — freshly queued after a transient
// failure, or still waiting out its backoff. The failure reason from
// a preceding NoteFail is preserved.
func (r *Recorder) NoteDeferred(key core.PageKey) {
	if r == nil {
		return
	}
	_, rec := r.note(key)
	if rec.Verdict == VerdictPromoted || rec.Verdict == VerdictDemoted {
		return
	}
	rec.Verdict = VerdictDeferred
}

// NoteDeferredAdmission records a migration the admission controller
// pushed into the retry queue: the epoch's bandwidth budget ran out
// before the page's turn.
func (r *Recorder) NoteDeferredAdmission(key core.PageKey) {
	if r == nil {
		return
	}
	_, rec := r.note(key)
	if rec.Verdict == VerdictPromoted || rec.Verdict == VerdictDemoted {
		return
	}
	rec.Verdict = VerdictDeferredAdmission
}

// NoteRejectedAdmission records a migration dropped outright: the
// admission budget was exhausted and the retry queue was full.
func (r *Recorder) NoteRejectedAdmission(key core.PageKey) {
	if r == nil {
		return
	}
	_, rec := r.note(key)
	if rec.Verdict == VerdictPromoted || rec.Verdict == VerdictDemoted {
		return
	}
	rec.Verdict = VerdictRejectedAdmission
}

// NoteSuperseded records a queued retry dropped because the selection
// reversed direction before it came due.
func (r *Recorder) NoteSuperseded(key core.PageKey) {
	if r == nil {
		return
	}
	_, rec := r.note(key)
	if rec.Verdict == VerdictPromoted || rec.Verdict == VerdictDemoted {
		return
	}
	rec.Verdict = VerdictSuperseded
}

// FinishEpoch closes the epoch: pages touched this epoch with no
// outcome get their held verdict, and the rank-churn histogram
// observes how much the selection changed.
func (r *Recorder) FinishEpoch() {
	if r == nil {
		return
	}
	fast := int8(mem.FastTier)
	for _, id := range r.touched {
		rec := r.newest(id)
		if rec.Verdict != VerdictNone {
			continue
		}
		switch {
		case rec.Selected && rec.Tier == fast:
			rec.Verdict = VerdictHeldResident
		case rec.Selected && rec.Rank < r.minRank:
			rec.Verdict = VerdictHeldBelowMinRank
		case rec.Selected:
			rec.Verdict = VerdictHeld
		case r.degraded:
			rec.Verdict = VerdictHeldQuarantine
		default:
			rec.Verdict = VerdictHeldBelowTopK
		}
	}
	// Rank churn: pages entering the selection plus pages leaving it,
	// relative to the previous epoch.
	churn := 0
	for _, id := range r.selCur {
		if r.lastSel[id] != r.curEpoch-1 {
			churn++
		}
	}
	for _, id := range r.selCur {
		r.lastSel[id] = r.curEpoch
	}
	for _, id := range r.selPrev {
		if r.lastSel[id] != r.curEpoch {
			churn++
		}
	}
	r.hChurn.Observe(uint64(churn))
	r.selPrev, r.selCur = r.selCur, r.selPrev[:0]
	r.touched = r.touched[:0]
}

// Pages returns the number of distinct pages the recorder has seen.
func (r *Recorder) Pages() int {
	if r == nil {
		return 0
	}
	return r.tab.Len()
}

// Snapshot extracts the recorder's state as a serializable log:
// pages in canonical (PID, VPN) order, each with its surviving ring
// of records oldest-first.
func (r *Recorder) Snapshot(label string) Log {
	lg := Log{Schema: telemetry.SchemaVersion, Label: label}
	if r == nil {
		return lg
	}
	lg.LastK = r.lastK
	lg.PingPongK = r.pingK
	for id := 0; id < r.tab.Len(); id++ {
		cnt := int(r.n[id])
		if cnt == 0 {
			continue
		}
		pl := PageLog{Key: r.tab.Key(uint32(id)), Flips: r.flips[id]}
		kept := cnt
		start := 0
		if cnt > r.lastK {
			kept = r.lastK
			start = cnt % r.lastK
			pl.Dropped = uint64(cnt - r.lastK)
		}
		pl.Records = make([]Record, 0, kept)
		for j := 0; j < kept; j++ {
			pl.Records = append(pl.Records, r.recs[id*r.lastK+(start+j)%r.lastK])
		}
		lg.Pages = append(lg.Pages, pl)
	}
	slices.SortFunc(lg.Pages, func(a, b PageLog) int { return core.PageKeyCmp(a.Key, b.Key) })
	return lg
}
