package provenance_test

// External test package so the probe may build a real simulation
// (internal/sim imports internal/provenance, so an internal test
// would cycle).

import (
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/provenance"
	"tieredmem/internal/sim"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// TestDetachedRecorderHarvestAllocs pins the observability-off cost of
// the flight recorder at zero: the steady-state epoch loop — harvest
// into recycled scratch plus every recorder hook the placement path
// calls — must not allocate when the recorder is detached (nil). This
// is the same harvest loop BenchmarkHarvestSteadyState times and
// harvestAllocsPerOp (internal/runner) pins without the recorder.
func TestDetachedRecorderHarvestAllocs(t *testing.T) {
	w := workload.MustNew("gups", workload.Config{Seed: 2, FirstPID: 100})
	r, err := sim.New(sim.DefaultConfig(w, 4096, 1), w)
	if err != nil {
		t.Fatalf("harvest allocs probe: %v", err)
	}
	buf := make([]trace.Ref, 4096)
	w.Fill(buf)
	for j := range buf {
		if _, err := r.Machine.Execute(buf[j]); err != nil {
			t.Fatalf("harvest allocs probe: %v", err)
		}
	}
	var rec *provenance.Recorder // detached, as in every un-audited run
	var ep core.EpochStats
	r.Profiler.HarvestEpochInto(&ep) // grow the scratch once
	key := core.PageKey{PID: 100, VPN: 1}
	allocs := testing.AllocsPerRun(100, func() {
		r.Machine.Phys.ForEachAllocated(func(pd *mem.PageDescriptor) { pd.AbitEpoch = 1 })
		r.Profiler.HarvestEpochInto(&ep)
		if rec.Enabled() {
			t.Fatal("nil recorder claims to be enabled")
		}
		rec.BeginEpoch(1, core.MethodCombined, core.MethodCombined, 0)
		rec.ObserveHarvest(ep, func(core.PageKey) bool { return false })
		rec.NoteMove(key, true, mem.FastTier)
		rec.FinishEpoch()
	})
	if allocs != 0 {
		t.Errorf("steady-state harvest with detached recorder allocates %.1f/op, want 0", allocs)
	}
}
