package provenance

import (
	"fmt"
	"sort"
	"strconv"

	"tieredmem/internal/order"
	"tieredmem/internal/report"
)

// TimelineTable renders one page's decision records as the per-epoch
// audit timeline `tmpwhy -page` and `tmpsim -why` print.
func TimelineTable(pg *PageLog) *report.Table {
	title := fmt.Sprintf("Decision timeline pid=%d vpn=0x%x (flips=%d, dropped=%d)",
		pg.Key.PID, uint64(pg.Key.VPN), pg.Flips, pg.Dropped)
	t := report.NewTable(title,
		"epoch", "abit", "ibs", "write", "dev", "rank", "pos", "tier", "move", "verdict")
	for i := range pg.Records {
		rec := &pg.Records[i]
		move := "-"
		if rec.From >= 0 && rec.To >= 0 {
			move = strconv.Itoa(int(rec.From)) + "->" + strconv.Itoa(int(rec.To))
		}
		verdict := rec.Verdict.Reason(rec.Fail)
		if rec.Degraded {
			verdict += " [degraded:" + rec.Method.String() + "]"
		}
		t.AddRow(rec.Epoch, rec.Abit, rec.Trace, rec.Write, rec.Dev,
			rec.Rank, rec.Pos, rec.Tier, move, verdict)
	}
	return t
}

// PingPongTable lists the run's worst ping-pong pages: the pages whose
// promotions reversed into demotions within the recorder's window,
// ordered by flip count (ties by canonical page order so output stays
// deterministic).
func PingPongTable(lg *Log, topN int) *report.Table {
	type pp struct {
		idx   int
		flips uint32
	}
	var hot []pp
	for i := range lg.Pages {
		if lg.Pages[i].Flips > 0 {
			hot = append(hot, pp{idx: i, flips: lg.Pages[i].Flips})
		}
	}
	sort.SliceStable(hot, func(a, b int) bool { return hot[a].flips > hot[b].flips })
	if topN > 0 && len(hot) > topN {
		hot = hot[:topN]
	}
	t := report.NewTable(fmt.Sprintf("Top ping-pong pages (%s, window=%d epochs)", lg.Label, lg.PingPongK),
		"pid", "vpn", "flips", "records", "dropped")
	for _, h := range hot {
		pg := &lg.Pages[h.idx]
		t.AddRow(pg.Key.PID, fmt.Sprintf("0x%x", uint64(pg.Key.VPN)),
			pg.Flips, len(pg.Records), pg.Dropped)
	}
	return t
}

// DecisiveTable reports, across every promotion in the log, which
// profiling mechanism supplied the decisive (largest) share of the
// promoted page's evidence vector — the per-mechanism "who actually
// drove placement" breakdown. Ties break in mechanism order
// (abit > ibs > write > dev); promotions with an all-zero vector
// count under "none".
func DecisiveTable(lg *Log) *report.Table {
	names := [5]string{"abit", "ibs", "write", "dev", "none"}
	var counts [5]int
	total := 0
	for i := range lg.Pages {
		for j := range lg.Pages[i].Records {
			rec := &lg.Pages[i].Records[j]
			if rec.Verdict != VerdictPromoted {
				continue
			}
			total++
			ev := [4]uint32{rec.Abit, rec.Trace, rec.Write, rec.Dev}
			best, bestV := 4, uint32(0)
			for k, v := range ev {
				if v > bestV {
					best, bestV = k, v
				}
			}
			counts[best]++
		}
	}
	t := report.NewTable(fmt.Sprintf("Decisive evidence per promotion (%s, %d promotions)", lg.Label, total),
		"mechanism", "promotions", "share")
	for i, n := range names {
		if counts[i] == 0 && n == "none" {
			continue
		}
		share := "0.0%"
		if total > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(counts[i])/float64(total))
		}
		t.AddRow(n, counts[i], share)
	}
	return t
}

// SummaryTable is the run-level provenance overview `tmpwhy` leads
// with: page counts and verdict totals across every surviving record.
func SummaryTable(lg *Log) *report.Table {
	counts := map[string]int{}
	records := 0
	for i := range lg.Pages {
		for j := range lg.Pages[i].Records {
			rec := &lg.Pages[i].Records[j]
			counts[rec.Verdict.Reason(rec.Fail)]++
			records++
		}
	}
	t := report.NewTable(fmt.Sprintf("Provenance summary (%s): %d pages, %d records",
		lg.Label, len(lg.Pages), records),
		"verdict", "records")
	for _, k := range order.SortedKeys(counts) {
		t.AddRow(k, counts[k])
	}
	return t
}
