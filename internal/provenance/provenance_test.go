package provenance

import (
	"bytes"
	"strings"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
)

func key(pid int, vpn uint64) core.PageKey {
	return core.PageKey{PID: pid, VPN: mem.VPN(vpn)}
}

// harvest runs one epoch through the recorder with a single-page
// evidence vector, leaving the epoch open for mover notes.
func harvest(r *Recorder, epoch int, ps core.PageStat, selected bool) {
	r.BeginEpoch(epoch, core.MethodCombined, core.MethodCombined, 0)
	r.ObserveHarvest(core.EpochStats{Epoch: epoch, Pages: []core.PageStat{ps}},
		func(core.PageKey) bool { return selected })
}

// TestNilRecorderNoOps pins the detached state: every method on a nil
// recorder is callable and allocation-free, so the mover and placement
// loop wire the hooks unconditionally.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	ep := core.EpochStats{Epoch: 0, Pages: []core.PageStat{{Key: key(1, 2), Abit: 1}}}
	allocs := testing.AllocsPerRun(100, func() {
		r.SetTracer(nil)
		r.BeginEpoch(0, core.MethodCombined, core.MethodCombined, 0)
		r.ObserveHarvest(ep, nil)
		r.NoteMove(key(1, 2), true, 0)
		r.NoteFail(key(1, 2), FailCapacity)
		r.NoteDeferred(key(1, 2))
		r.NoteSuperseded(key(1, 2))
		r.FinishEpoch()
		_ = r.Pages()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f times per op; the detached state must be free", allocs)
	}
}

// TestVerdictAssignment pins the held-verdict taxonomy FinishEpoch
// applies to pages with no mover outcome.
func TestVerdictAssignment(t *testing.T) {
	r := New()

	// Selected + in the fast tier ⇒ held:resident.
	harvest(r, 0, core.PageStat{Key: key(1, 1), Abit: 3, Tier: mem.FastTier}, true)
	r.FinishEpoch()
	// Selected + slow tier, mover silent ⇒ held.
	harvest(r, 1, core.PageStat{Key: key(1, 1), Abit: 3, Tier: 1}, true)
	r.FinishEpoch()
	// Not selected ⇒ held:below-topk.
	harvest(r, 2, core.PageStat{Key: key(1, 1), Abit: 1, Tier: 1}, false)
	r.FinishEpoch()
	// Not selected under quarantine degradation ⇒ held:quarantine-degraded.
	r.BeginEpoch(3, core.MethodAbit, core.MethodCombined, 0)
	r.ObserveHarvest(core.EpochStats{Epoch: 3, Pages: []core.PageStat{{Key: key(1, 1), Abit: 1, Tier: 1}}}, nil)
	r.FinishEpoch()
	// Selected but below the promotion gate ⇒ held:below-minrank.
	r.BeginEpoch(4, core.MethodCombined, core.MethodCombined, 100)
	r.ObserveHarvest(core.EpochStats{Epoch: 4, Pages: []core.PageStat{{Key: key(1, 1), Abit: 2, Tier: 1}}},
		func(core.PageKey) bool { return true })
	r.FinishEpoch()

	lg := r.Snapshot("t")
	if len(lg.Pages) != 1 {
		t.Fatalf("pages = %d, want 1", len(lg.Pages))
	}
	want := []string{"held:resident", "held", "held:below-topk", "held:quarantine-degraded", "held:below-minrank"}
	recs := lg.Pages[0].Records
	if len(recs) != len(want) {
		t.Fatalf("records = %d, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if got := recs[i].Verdict.Reason(recs[i].Fail); got != w {
			t.Errorf("epoch %d verdict = %q, want %q", i, got, w)
		}
	}
	if !recs[3].Degraded || recs[3].Method != core.MethodAbit {
		t.Errorf("degraded epoch record = %+v, want Degraded with effective method abit", recs[3])
	}
}

// TestVerdictPrecedence pins refinement: a failure can be upgraded to
// deferred, and a success is never downgraded by later notes.
func TestVerdictPrecedence(t *testing.T) {
	r := New()
	k := key(7, 0x40)

	harvest(r, 0, core.PageStat{Key: k, Abit: 5, Tier: 1}, true)
	r.NoteFail(k, FailCapacity)
	r.NoteDeferred(k)
	r.FinishEpoch()

	harvest(r, 1, core.PageStat{Key: k, Abit: 5, Tier: 1}, true)
	r.NoteMove(k, true, 0)
	r.NoteFail(k, FailPinned) // late failure note must not downgrade
	r.FinishEpoch()

	recs := r.Snapshot("t").Pages[0].Records
	if got := recs[0].Verdict.Reason(recs[0].Fail); got != "deferred:retry-backoff" {
		t.Errorf("epoch 0 = %q, want deferred:retry-backoff", got)
	}
	if recs[0].Fail != FailCapacity {
		t.Errorf("deferred record lost its failure reason: %v", recs[0].Fail)
	}
	if got := recs[1].Verdict.Reason(recs[1].Fail); got != "promoted" {
		t.Errorf("epoch 1 = %q, want promoted", got)
	}
	if recs[1].From != 1 || recs[1].To != 0 {
		t.Errorf("move = %d->%d, want 1->0", recs[1].From, recs[1].To)
	}
}

// TestRingEviction pins the bounded last-K ring: old records drop,
// Dropped counts them, and survivors come out oldest-first.
func TestRingEviction(t *testing.T) {
	r := NewK(3, 4)
	k := key(1, 0x10)
	for e := 0; e < 7; e++ {
		harvest(r, e, core.PageStat{Key: k, Abit: uint32(e), Tier: 1}, false)
		r.FinishEpoch()
	}
	pg := r.Snapshot("t").Pages[0]
	if pg.Dropped != 4 {
		t.Errorf("Dropped = %d, want 4", pg.Dropped)
	}
	if len(pg.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(pg.Records))
	}
	for i, wantEpoch := range []int32{4, 5, 6} {
		if pg.Records[i].Epoch != wantEpoch {
			t.Errorf("record %d epoch = %d, want %d", i, pg.Records[i].Epoch, wantEpoch)
		}
	}
}

// TestPingPongDetection pins the pathology counter: promote→demote
// within the window is a flip; a slower reversal is not.
func TestPingPongDetection(t *testing.T) {
	tr := telemetry.New()
	r := NewK(8, 2)
	r.SetTracer(tr)
	k := key(1, 0x20)

	harvest(r, 0, core.PageStat{Key: k, Abit: 9, Tier: 1}, true)
	r.NoteMove(k, true, 0)
	r.FinishEpoch()
	harvest(r, 2, core.PageStat{Key: k, Abit: 0, Tier: 0}, false)
	r.NoteMove(k, false, 1) // gap 2 ≤ window 2: flip
	r.FinishEpoch()
	harvest(r, 3, core.PageStat{Key: k, Abit: 9, Tier: 1}, true)
	r.NoteMove(k, true, 0)
	r.FinishEpoch()
	harvest(r, 9, core.PageStat{Key: k, Abit: 0, Tier: 0}, false)
	r.NoteMove(k, false, 1) // gap 6 > window: not a flip
	r.FinishEpoch()

	if got := tr.Counter("mover/pingpong").Value(); got != 1 {
		t.Errorf("mover/pingpong = %d, want 1", got)
	}
	pg := r.Snapshot("t").Pages[0]
	if pg.Flips != 1 {
		t.Errorf("Flips = %d, want 1", pg.Flips)
	}
	gap := tr.Histogram("mover/pingpong_gap_epochs")
	if gap.Count() != 1 || gap.Max() != 2 {
		t.Errorf("gap hist count=%d max=%d, want 1/2", gap.Count(), gap.Max())
	}
}

// TestResidencyHistogram pins time-in-tier: a move observes the length
// of the stay it ended, in the histogram of the tier being left.
func TestResidencyHistogram(t *testing.T) {
	tr := telemetry.New()
	r := New()
	r.SetTracer(tr)
	k := key(1, 0x30)

	harvest(r, 0, core.PageStat{Key: k, Abit: 1, Tier: 1}, true)
	r.FinishEpoch()
	harvest(r, 5, core.PageStat{Key: k, Abit: 9, Tier: 1}, true)
	r.NoteMove(k, true, 0) // leaves tier 1 after 5 epochs
	r.FinishEpoch()

	h := tr.Histogram("mover/residency_epochs_t1")
	if h.Count() != 1 || h.Max() != 5 {
		t.Errorf("t1 residency count=%d max=%d, want 1/5", h.Count(), h.Max())
	}
	if tr.Histogram("mover/residency_epochs_t0").Count() != 0 {
		t.Errorf("t0 residency observed without leaving tier 0")
	}
}

// TestRankChurn pins the churn metric: entries plus exits of the
// selected set, relative to the previous epoch.
func TestRankChurn(t *testing.T) {
	tr := telemetry.New()
	r := New()
	r.SetTracer(tr)
	a, b, c := key(1, 1), key(1, 2), key(1, 3)
	pages := func(sel ...core.PageKey) (core.EpochStats, func(core.PageKey) bool) {
		st := core.EpochStats{Pages: []core.PageStat{
			{Key: a, Abit: 3, Tier: 1}, {Key: b, Abit: 2, Tier: 1}, {Key: c, Abit: 1, Tier: 1},
		}}
		return st, func(k core.PageKey) bool {
			for _, s := range sel {
				if s == k {
					return true
				}
			}
			return false
		}
	}

	st, sel := pages(a, b)
	r.BeginEpoch(0, core.MethodCombined, core.MethodCombined, 0)
	r.ObserveHarvest(st, sel)
	r.FinishEpoch() // churn 2: {a,b} enter

	st, sel = pages(a, c)
	r.BeginEpoch(1, core.MethodCombined, core.MethodCombined, 0)
	r.ObserveHarvest(st, sel)
	r.FinishEpoch() // churn 2: c enters, b leaves

	st, sel = pages(a, c)
	r.BeginEpoch(2, core.MethodCombined, core.MethodCombined, 0)
	r.ObserveHarvest(st, sel)
	r.FinishEpoch() // churn 0: stable

	h := tr.Histogram("sim/rank_churn")
	if h.Count() != 3 {
		t.Fatalf("churn observations = %d, want 3", h.Count())
	}
	if h.Max() != 2 {
		t.Errorf("churn max = %d, want 2", h.Max())
	}
	if h.Bucket(0) != 1 {
		t.Errorf("stable epoch did not observe churn 0 (bucket0 = %d)", h.Bucket(0))
	}
}

// TestRankPosition pins Pos: the page's index in the canonical fused
// ranking, -1 for rank-zero pages.
func TestRankPosition(t *testing.T) {
	r := New()
	st := core.EpochStats{Pages: []core.PageStat{
		{Key: key(1, 1), Abit: 1, Tier: 1},
		{Key: key(1, 2), Abit: 9, Tier: 1},
		{Key: key(1, 3), Tier: 1}, // rank 0: unranked
	}}
	r.BeginEpoch(0, core.MethodCombined, core.MethodCombined, 0)
	r.ObserveHarvest(st, nil)
	r.FinishEpoch()

	lg := r.Snapshot("t")
	pos := map[uint64]int32{}
	for _, pg := range lg.Pages {
		pos[uint64(pg.Key.VPN)] = pg.Records[0].Pos
	}
	if pos[2] != 0 || pos[1] != 1 || pos[3] != -1 {
		t.Errorf("positions = %v, want vpn2:0 vpn1:1 vpn3:-1", pos)
	}
}

// TestLogRoundTrip pins the serialization: WriteLog then ReadLog
// reproduces the snapshot, and a second write is byte-identical.
func TestLogRoundTrip(t *testing.T) {
	r := New()
	k1, k2 := key(2, 0x100), key(1, 0x200)
	harvest(r, 0, core.PageStat{Key: k1, Abit: 3, Trace: 1, Tier: 1}, true)
	r.NoteFail(k1, FailCapacity)
	r.NoteDeferred(k1)
	r.FinishEpoch()
	r.BeginEpoch(1, core.MethodAbit, core.MethodCombined, 0)
	r.ObserveHarvest(core.EpochStats{Epoch: 1, Pages: []core.PageStat{
		{Key: k1, Abit: 4, Tier: 1}, {Key: k2, Write: 2, Tier: 2},
	}}, func(k core.PageKey) bool { return k == k1 })
	r.NoteMove(k1, true, 0)
	r.FinishEpoch()

	logs := []Log{r.Snapshot("gups/tmp")}
	var buf bytes.Buffer
	if err := WriteLog(&buf, logs); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	first := buf.String()

	got, err := ReadLog(strings.NewReader(first))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(got) != 1 || got[0].Label != "gups/tmp" || got[0].LastK != DefaultLastK {
		t.Fatalf("read back %+v", got)
	}
	// Pages come out in canonical (PID, VPN) order: k2 (pid 1) first.
	if got[0].Pages[0].Key != k2 || got[0].Pages[1].Key != k1 {
		t.Fatalf("page order = %v, %v", got[0].Pages[0].Key, got[0].Pages[1].Key)
	}
	var buf2 bytes.Buffer
	if err := WriteLog(&buf2, got); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if buf2.String() != first {
		t.Errorf("round-trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", first, buf2.String())
	}

	// Reader-side schema check: a bumped schema must be rejected.
	bad := strings.Replace(first, `"schema":1`, `"schema":99`, 1)
	if _, err := ReadLog(strings.NewReader(bad)); err == nil {
		t.Error("ReadLog accepted a mismatched schema version")
	}
}

// TestRenderTables sanity-checks the audit tables over a run with a
// fault, a flip, and a promotion.
func TestRenderTables(t *testing.T) {
	r := NewK(8, 4)
	k := key(3, 0xabc)
	harvest(r, 0, core.PageStat{Key: k, Abit: 7, Trace: 2, Tier: 1}, true)
	r.NoteMove(k, true, 0)
	r.FinishEpoch()
	harvest(r, 1, core.PageStat{Key: k, Tier: 0}, false)
	r.NoteMove(k, false, 1)
	r.FinishEpoch()
	lg := r.Snapshot("run")

	tl := TimelineTable(&lg.Pages[0]).Render()
	for _, want := range []string{"pid=3 vpn=0xabc", "promoted", "demoted", "1->0", "0->1"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	pp := PingPongTable(&lg, 10).Render()
	if !strings.Contains(pp, "0xabc") {
		t.Errorf("ping-pong table missing the flipped page:\n%s", pp)
	}
	de := DecisiveTable(&lg).Render()
	if !strings.Contains(de, "abit") || !strings.Contains(de, "100.0%") {
		t.Errorf("decisive table: abit should carry the single promotion:\n%s", de)
	}
	sm := SummaryTable(&lg).Render()
	if !strings.Contains(sm, "promoted") || !strings.Contains(sm, "demoted") {
		t.Errorf("summary missing verdicts:\n%s", sm)
	}
}

// TestReasonRoundTrip pins the verdict-reason taxonomy: every verdict
// string maps back to the verdict that produced it.
func TestReasonRoundTrip(t *testing.T) {
	fails := []FailReason{FailNone, FailCapacity, FailPinned, FailSplit, FailVanished, FailCopyAbort}
	for v := VerdictPromoted; v <= VerdictRejectedAdmission; v++ {
		for _, f := range fails {
			if v != VerdictFailed && f != FailNone {
				continue
			}
			s := v.Reason(f)
			gv, gf := verdictFromReason(s)
			if gv != v || gf != f {
				t.Errorf("reason %q → (%d,%d), want (%d,%d)", s, gv, gf, v, f)
			}
		}
	}
}
