package provenance

import (
	"slices"

	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
)

// MergeLogs fuses per-cell provenance logs from one sharded run into a
// single canonical log: pages concatenate in part order and re-sort
// into (PID, VPN) order, the same canonical order Snapshot emits, so
// the fused log is byte-stable regardless of how many workers executed
// the cells. The sharded pipeline's cells record disjoint page sets
// (each cell owns its processes' address spaces); a duplicate key
// would mean the partition leaked, so the first part's entry wins and
// later duplicates are dropped rather than merged — there is no
// meaningful interleave of two decision rings for one page.
//
// Ring parameters (LastK, PingPongK) and the schema come from the
// first part; per-cell recorders are built identically so they never
// disagree.
func MergeLogs(label string, parts []Log) Log {
	out := Log{Schema: 1, Label: label, LastK: DefaultLastK, PingPongK: DefaultPingPongK}
	if len(parts) > 0 {
		out.Schema = parts[0].Schema
		out.LastK = parts[0].LastK
		out.PingPongK = parts[0].PingPongK
	}
	total := 0
	for i := range parts {
		total += len(parts[i].Pages)
	}
	out.Pages = make([]PageLog, 0, total)
	// Interning doubles as the duplicate check: a key whose fresh id is
	// below the running count was already emitted by an earlier part.
	tab := pageidx.New(total, core.PageKeyHash)
	for i := range parts {
		for j := range parts[i].Pages {
			pg := &parts[i].Pages[j]
			if int(tab.Intern(pg.Key)) < len(out.Pages) {
				continue
			}
			out.Pages = append(out.Pages, *pg)
		}
	}
	slices.SortFunc(out.Pages, func(a, b PageLog) int { return core.PageKeyCmp(a.Key, b.Key) })
	return out
}
