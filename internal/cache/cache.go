// Package cache models the data-cache hierarchy between the simulated
// core and memory: physically-indexed set-associative L1D, L2, and a
// shared LLC with true-LRU replacement, plus an IP-based stride
// prefetcher. The hierarchy is what makes the paper's distinctions
// meaningful: IBS/PEBS only reports a page as memory-hot when the
// data source is beyond the LLC, HWPC gating watches LLC misses, and
// prefetched lines are served from cache so TMP's demand-load focus
// can ignore them.
package cache

import "fmt"

// LineShift is log2 of the 64-byte cache line size.
const (
	LineShift = 6
	LineSize  = 1 << LineShift
)

// HitLevel reports where an access was satisfied.
type HitLevel int

const (
	HitL1 HitLevel = iota
	HitL2
	HitLLC
	// MissAll means the access went to memory (either tier).
	MissAll
)

// String names the hit level.
func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	case MissAll:
		return "mem"
	default:
		return fmt.Sprintf("level(%d)", int(h))
	}
}

// Config sizes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
}

// Lines returns the level's line capacity.
func (c Config) Lines() int { return c.SizeBytes / LineSize }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: size (%d) and ways (%d) must be positive", c.SizeBytes, c.Ways)
	}
	lines := c.Lines()
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Stats counts events at one level.
type Stats struct {
	Hits         uint64
	Misses       uint64
	PrefetchHits uint64 // demand hits on lines brought in by the prefetcher
}

type way struct {
	tag        uint64
	lru        uint64
	valid      bool
	dirty      bool
	prefetched bool // line was filled by the prefetcher and not yet demanded
}

type level struct {
	sets  [][]way
	mask  uint64
	shift uint // set-index shift (LineShift)
	stamp uint64
	stats Stats
}

func newLevel(c Config) *level {
	sets := c.Lines() / c.Ways
	l := &level{sets: make([][]way, sets), mask: uint64(sets - 1), shift: LineShift}
	for i := range l.sets {
		l.sets[i] = make([]way, c.Ways)
	}
	return l
}

// lookup probes for the line; on a hit it refreshes LRU and clears the
// prefetched flag (returning whether it had been set).
func (l *level) lookup(line uint64) (hit, wasPrefetch bool) {
	set := l.sets[line&l.mask]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			l.stamp++
			set[i].lru = l.stamp
			wasPrefetch = set[i].prefetched
			set[i].prefetched = false
			l.stats.Hits++
			if wasPrefetch {
				l.stats.PrefetchHits++
			}
			return true, wasPrefetch
		}
	}
	l.stats.Misses++
	return false, false
}

// contains probes without updating LRU or stats.
func (l *level) contains(line uint64) bool {
	set := l.sets[line&l.mask]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

// fill installs the line, returning the evicted victim line and whether
// a valid victim existed.
func (l *level) fill(line uint64, dirty, prefetched bool) (victim uint64, evicted bool) {
	set := l.sets[line&l.mask]
	v := 0
	for i := range set {
		if set[i].valid && set[i].tag == line {
			// Already present (e.g. prefetch raced demand): refresh.
			if dirty {
				set[i].dirty = true
			}
			return 0, false
		}
	}
	for i := range set {
		if !set[i].valid {
			v = i
			break
		}
		if set[i].lru < set[v].lru {
			v = i
		}
	}
	old := set[v]
	l.stamp++
	set[v] = way{tag: line, lru: l.stamp, valid: true, dirty: dirty, prefetched: prefetched}
	return old.tag, old.valid
}

func (l *level) setDirty(line uint64) {
	set := l.sets[line&l.mask]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].dirty = true
			return
		}
	}
}

// Hierarchy is one core's L1/L2 plus a shared LLC. Multiple cores
// share the llc pointer.
type Hierarchy struct {
	l1, l2 *level
	llc    *SharedLLC
	pf     *Prefetcher
}

// SharedLLC is the last-level cache shared by all cores.
type SharedLLC struct {
	lvl *level
}

// NewSharedLLC builds the shared LLC.
func NewSharedLLC(c Config) (*SharedLLC, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &SharedLLC{lvl: newLevel(c)}, nil
}

// Stats returns the LLC's counters.
func (s *SharedLLC) Stats() Stats { return s.lvl.stats }

// DefaultL1, DefaultL2 and DefaultLLC size a scaled-down hierarchy.
// The evaluation scales every capacity (workload footprint, tiers,
// caches) by roughly 16x from the paper's Ryzen 3600X testbed so that
// experiments run in seconds; the *ratios* that drive every figure are
// preserved.
var (
	DefaultL1  = Config{SizeBytes: 32 << 10, Ways: 8}
	DefaultL2  = Config{SizeBytes: 256 << 10, Ways: 8}
	DefaultLLC = Config{SizeBytes: 2 << 20, Ways: 16}
)

// NewHierarchy builds one core's private levels on top of a shared
// LLC. pf may be nil to disable prefetching.
func NewHierarchy(l1, l2 Config, llc *SharedLLC, pf *Prefetcher) (*Hierarchy, error) {
	if err := l1.Validate(); err != nil {
		return nil, err
	}
	if err := l2.Validate(); err != nil {
		return nil, err
	}
	if llc == nil {
		return nil, fmt.Errorf("cache: shared LLC required")
	}
	return &Hierarchy{l1: newLevel(l1), l2: newLevel(l2), llc: llc, pf: pf}, nil
}

// Result describes one access's outcome.
type Result struct {
	Level HitLevel
	// PrefetchHit is true when the access hit a line the prefetcher
	// had staged; the paper's TMP treats such loads as non-demand
	// evidence (they would have been cache hits anyway).
	PrefetchHit bool
}

// Access performs a demand access to a physical byte address, filling
// all levels on a miss (inclusive hierarchy), training the prefetcher
// with (ip, line), and returning where the data came from.
func (h *Hierarchy) Access(paddr uint64, ip uint64, isStore bool) Result {
	line := paddr >> LineShift
	res := h.access(line, isStore)
	if h.pf != nil {
		for _, pline := range h.pf.Train(ip, line) {
			h.prefetchFill(pline)
		}
	}
	return res
}

func (h *Hierarchy) access(line uint64, isStore bool) Result {
	if hit, pf := h.l1.lookup(line); hit {
		if isStore {
			h.l1.setDirty(line)
		}
		return Result{Level: HitL1, PrefetchHit: pf}
	}
	if hit, pf := h.l2.lookup(line); hit {
		h.l1.fill(line, isStore, false)
		return Result{Level: HitL2, PrefetchHit: pf}
	}
	if hit, pf := h.llc.lvl.lookup(line); hit {
		h.l2.fill(line, false, false)
		h.l1.fill(line, isStore, false)
		return Result{Level: HitLLC, PrefetchHit: pf}
	}
	// Memory access; fill inclusively.
	h.llc.lvl.fill(line, false, false)
	h.l2.fill(line, false, false)
	h.l1.fill(line, isStore, false)
	return Result{Level: MissAll}
}

// prefetchFill stages a line into the LLC and L2 without touching L1,
// marking it prefetched. Lines already cached anywhere are skipped.
func (h *Hierarchy) prefetchFill(line uint64) {
	if h.l1.contains(line) || h.l2.contains(line) || h.llc.lvl.contains(line) {
		return
	}
	h.llc.lvl.fill(line, false, true)
	h.l2.fill(line, false, true)
	if h.pf != nil {
		h.pf.Issued++
	}
}

// L1Stats returns the private L1 counters.
func (h *Hierarchy) L1Stats() Stats { return h.l1.stats }

// L2Stats returns the private L2 counters.
func (h *Hierarchy) L2Stats() Stats { return h.l2.stats }

// LLCStats returns the shared LLC counters.
func (h *Hierarchy) LLCStats() Stats { return h.llc.lvl.stats }
