package cache

import (
	"testing"
	"testing/quick"

	"tieredmem/internal/order"
)

func tiny(t *testing.T, pf *Prefetcher) *Hierarchy {
	t.Helper()
	llc, err := NewSharedLLC(Config{SizeBytes: 16 << 10, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(
		Config{SizeBytes: 1 << 10, Ways: 2},
		Config{SizeBytes: 4 << 10, Ways: 4},
		llc, pf)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{SizeBytes: 32 << 10, Ways: 8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{SizeBytes: 0, Ways: 8},
		{SizeBytes: 32 << 10, Ways: 0},
		{SizeBytes: 3 << 10, Ways: 8},  // 48 lines % 8 != 0... actually 48%8==0 but 6 sets not pow2
		{SizeBytes: 100 * 64, Ways: 7}, // lines not divisible
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestHitLevelString(t *testing.T) {
	names := map[HitLevel]string{HitL1: "L1", HitL2: "L2", HitLLC: "LLC", MissAll: "mem"}
	for _, l := range order.SortedKeys(names) {
		if l.String() != names[l] {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), names[l])
		}
	}
}

func TestMissThenHitLadder(t *testing.T) {
	h := tiny(t, nil)
	addr := uint64(0x10000)
	if r := h.Access(addr, 1, false); r.Level != MissAll {
		t.Fatalf("cold access level = %v, want mem", r.Level)
	}
	if r := h.Access(addr, 1, false); r.Level != HitL1 {
		t.Fatalf("warm access level = %v, want L1", r.Level)
	}
}

func TestInclusiveFill(t *testing.T) {
	h := tiny(t, nil)
	addr := uint64(0x20000)
	h.Access(addr, 1, false)
	// Evict from L1 by filling its set (L1: 8 sets; stride 8 lines =
	// 512 bytes).
	for i := uint64(1); i <= 2; i++ {
		h.Access(addr+i*512, 1, false)
	}
	if r := h.Access(addr, 1, false); r.Level != HitL2 && r.Level != HitL1 {
		t.Fatalf("level = %v after L1 pressure, want L2 (inclusive)", r.Level)
	}
}

func TestStoreMarksDirty(t *testing.T) {
	h := tiny(t, nil)
	h.Access(0x30000, 1, true)
	// No crash and the line is present; dirtiness is internal but the
	// second store must hit L1.
	if r := h.Access(0x30000, 1, true); r.Level != HitL1 {
		t.Errorf("store did not fill L1: %v", r.Level)
	}
}

func TestLRUWithinSet(t *testing.T) {
	h := tiny(t, nil)
	// L1: 1 KiB, 2 ways, 8 sets. Three lines in set 0:
	a, b, c := uint64(0), uint64(512), uint64(1024)
	h.Access(a, 1, false)
	h.Access(b, 1, false)
	h.Access(a, 1, false) // a is MRU
	h.Access(c, 1, false) // evicts b
	if r := h.Access(a, 1, false); r.Level != HitL1 {
		t.Errorf("MRU line evicted: %v", r.Level)
	}
}

func TestStats(t *testing.T) {
	h := tiny(t, nil)
	h.Access(0x40000, 1, false)
	h.Access(0x40000, 1, false)
	if h.L1Stats().Hits != 1 || h.L1Stats().Misses != 1 {
		t.Errorf("L1 stats = %+v", h.L1Stats())
	}
	if h.LLCStats().Misses != 1 {
		t.Errorf("LLC misses = %d, want 1", h.LLCStats().Misses)
	}
}

func TestPrefetcherDetectsStride(t *testing.T) {
	pf := NewPrefetcher(64, 2)
	ip := uint64(0x400100)
	var lines []uint64
	for i := uint64(0); i < 6; i++ {
		lines = pf.Train(ip, 100+i*2) // stride 2
	}
	if len(lines) != 2 {
		t.Fatalf("prefetch lines = %v, want 2 (degree)", lines)
	}
	if lines[0] != 112 || lines[1] != 114 {
		t.Errorf("prefetch targets = %v, want [112 114]", lines)
	}
}

func TestPrefetcherIgnoresRandom(t *testing.T) {
	pf := NewPrefetcher(64, 2)
	ip := uint64(0x400200)
	addrs := []uint64{5, 900, 13, 77777, 2, 4141}
	for _, a := range addrs {
		if got := pf.Train(ip, a); len(got) != 0 {
			t.Fatalf("random stream triggered prefetch of %v", got)
		}
	}
}

func TestPrefetcherPerIPIsolation(t *testing.T) {
	pf := NewPrefetcher(64, 1)
	// Two IPs (in distinct table slots) with different strides must
	// not pollute each other.
	for i := uint64(0); i < 6; i++ {
		pf.Train(0x400100, 100+i)
		pf.Train(0x400104, 5000+i*10)
	}
	l1 := append([]uint64(nil), pf.Train(0x400100, 106)...) // copy: Train reuses scratch
	l2 := pf.Train(0x400104, 5060)
	if len(l1) != 1 || l1[0] != 107 {
		t.Errorf("ip1 prefetch = %v, want [107]", l1)
	}
	if len(l2) != 1 || l2[0] != 5070 {
		t.Errorf("ip2 prefetch = %v, want [5070]", l2)
	}
}

func TestPrefetchHitReported(t *testing.T) {
	pf := NewPrefetcher(64, 2)
	h := tiny(t, pf)
	ip := uint64(0x400300)
	base := uint64(0x100000)
	// Sequential scan: after training, later lines should be staged
	// and demand accesses should report PrefetchHit.
	sawPrefetchHit := false
	for i := uint64(0); i < 64; i++ {
		r := h.Access(base+i*LineSize, ip, false)
		if r.PrefetchHit {
			sawPrefetchHit = true
			if r.Level == MissAll {
				t.Fatalf("prefetch hit cannot be a memory access")
			}
		}
	}
	if !sawPrefetchHit {
		t.Errorf("sequential scan never hit a prefetched line")
	}
	if pf.Issued == 0 {
		t.Errorf("no prefetches issued")
	}
}

func TestPrefetchDoesNotTouchL1(t *testing.T) {
	pf := NewPrefetcher(64, 1)
	h := tiny(t, pf)
	ip := uint64(0x400400)
	base := uint64(0x200000)
	for i := uint64(0); i < 4; i++ {
		h.Access(base+i*LineSize, ip, false)
	}
	// Line 4 should be prefetched into L2/LLC, not L1: a demand hit
	// lands at L2.
	r := h.Access(base+4*LineSize, ip, false)
	if r.PrefetchHit && r.Level == HitL1 {
		t.Errorf("prefetched line found in L1; prefetcher should stage into L2/LLC")
	}
}

func TestPrefetcherTableSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("non-power-of-two table accepted")
		}
	}()
	NewPrefetcher(100, 1)
}

// TestCacheNeverLies is a property: an access immediately repeated
// must hit L1 (nothing can evict between consecutive accesses to the
// same line).
func TestCacheNeverLies(t *testing.T) {
	h := tiny(t, nil)
	f := func(raw uint32, store bool) bool {
		addr := uint64(raw) << 3
		h.Access(addr, 1, store)
		return h.Access(addr, 1, false).Level == HitL1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
