package cache

// Prefetcher is an IP-indexed stride prefetcher: per instruction
// pointer it learns the line-stride between successive demand accesses
// and, once the stride is confirmed twice, prefetches the next lines
// ahead. Prefetched fills are tagged so the hierarchy can report
// demand hits on prefetched data, which TMP deliberately discounts
// (§III-A: serving prefetcher loads from fast memory does not reduce
// effective latency — the prefetcher already hid it).
type Prefetcher struct {
	table   []pfEntry
	mask    uint64
	degree  int
	scratch []uint64 // reused across Train calls to avoid allocation

	// Issued counts prefetch fills actually staged into the caches.
	Issued uint64
}

type pfEntry struct {
	ip         uint64
	lastLine   uint64
	stride     int64
	confidence int8
	valid      bool
}

// NewPrefetcher builds a stride prefetcher with the given table size
// (power of two) and prefetch degree (lines fetched ahead per trigger).
func NewPrefetcher(tableSize, degree int) *Prefetcher {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("cache: prefetcher table size must be a positive power of two")
	}
	if degree <= 0 {
		degree = 1
	}
	return &Prefetcher{
		table:  make([]pfEntry, tableSize),
		mask:   uint64(tableSize - 1),
		degree: degree,
	}
}

// Train observes a demand access (ip, line) and returns the lines to
// prefetch, if any. The returned slice aliases internal scratch and is
// only valid until the next call.
func (p *Prefetcher) Train(ip, line uint64) []uint64 {
	e := &p.table[(ip>>2)&p.mask]
	if !e.valid || e.ip != ip {
		*e = pfEntry{ip: ip, lastLine: line, valid: true}
		return nil
	}
	stride := int64(line) - int64(e.lastLine)
	e.lastLine = line
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.confidence < 4 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 0
		return nil
	}
	if e.confidence < 2 {
		return nil
	}
	p.scratch = p.scratch[:0]
	next := int64(line)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		p.scratch = append(p.scratch, uint64(next))
	}
	return p.scratch
}
