// Package hwpc implements TMP's performance-counter activity monitor
// (§III-B4, first optimization): LLC-miss and TLB-miss counters are
// read continuously at near-zero cost, and the expensive profiling
// mechanisms are dynamically disabled when their event stream is quiet.
// The paper's rule: track the maximum windowed event count seen so
// far; a profiling method is considered active while the current
// window's count is at least 20% of that maximum.
package hwpc

import (
	"fmt"

	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/pmu"
	"tieredmem/internal/telemetry"
)

// Config parameterizes the monitor.
type Config struct {
	// Window is the virtual-ns sampling window for the counters.
	Window int64
	// Threshold is the fraction of the maximum windowed count below
	// which a profiling method is gated off (the paper uses 0.20).
	Threshold float64
	// ReadCost is the virtual-ns cost of one counter-read pass
	// (HWPCs are nearly free; this stays tiny).
	ReadCost int64
}

// DefaultConfig returns the paper's settings: 20% threshold, 100 ms
// windows.
func DefaultConfig() Config {
	return Config{Window: 100_000_000, Threshold: 0.20, ReadCost: 500}
}

// Toggleable is anything the monitor can gate on and off; both the
// ibs.Engine and the abit.Scanner satisfy it.
type Toggleable interface {
	Enable()
	Disable()
	Enabled() bool
}

// gauge tracks one event stream's windowed activity.
type gauge struct {
	event    pmu.Event
	last     uint64 // machine-wide count at the previous window edge
	maxDelta uint64
	active   bool
	target   Toggleable
	// toggles counts on/off transitions applied to the target.
	toggles uint64
	// wraps counts windows whose read went backwards (counter
	// wraparound); resync marks the clean window after a wrap, which
	// re-baselines last without judging activity.
	wraps  uint64
	resync bool
}

// Monitor is the gating engine.
type Monitor struct {
	cfg     Config
	machine *cpu.Machine
	gauges  []*gauge
	next    int64
	// Reads counts counter-read passes; OverheadNS accumulates their
	// cost.
	Reads      uint64
	OverheadNS int64
	// Wraps counts gauge windows discarded because the counter read
	// went backwards (injected wraparound). Each wrap also forfeits
	// the following window to re-baselining.
	Wraps uint64
	// quarantined permanently stops window evaluation; the monitor
	// fails open (all targets enabled, no further gating).
	quarantined bool
	// faults, when non-nil, can corrupt counter reads.
	faults *fault.Plane

	// Memory-bandwidth monitoring (the resctrl MBM feature the
	// paper's footnote 3 mentions): bytes fetched from memory per
	// window, derived from the LLC-miss counters.
	lastLLC         uint64
	lastBWValid     bool
	LastWindowBytes uint64
	PeakWindowBytes uint64

	// Telemetry (nil handles no-op when telemetry is off).
	tel         *telemetry.Tracer
	ctrReads    *telemetry.Counter
	ctrToggles  *telemetry.Counter
	ctrOverhead *telemetry.Counter
}

// SetTracer attaches the telemetry layer: every gate transition emits
// a KindGate event carrying the windowed count, the running maximum,
// and the threshold in basis points — the ≥20%-of-peak evidence behind
// each open/close decision. Record-only.
func (mo *Monitor) SetTracer(t *telemetry.Tracer) {
	mo.tel = t
	mo.ctrReads = t.Counter("hwpc/reads")
	mo.ctrToggles = t.Counter("hwpc/toggles")
	mo.ctrOverhead = t.Counter("hwpc/overhead_ns")
}

// New builds a monitor over a machine.
func New(cfg Config, m *cpu.Machine) (*Monitor, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("hwpc: window %d must be positive", cfg.Window)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("hwpc: threshold %v must be in [0,1]", cfg.Threshold)
	}
	return &Monitor{cfg: cfg, machine: m, next: cfg.Window}, nil
}

// Gate registers a profiling mechanism to be driven by an event: the
// paper supplements trace collection with the LLC-miss counter and
// A-bit profiling with the TLB-miss counter.
func (mo *Monitor) Gate(event pmu.Event, target Toggleable) {
	for _, c := range mo.machine.Cores() {
		c.PMU.Track(event)
	}
	mo.gauges = append(mo.gauges, &gauge{event: event, target: target, active: true})
}

// machineCount sums an event's raw counts across cores.
func (mo *Monitor) machineCount(e pmu.Event) uint64 {
	var total uint64
	for _, c := range mo.machine.Cores() {
		total += c.PMU.Raw(e)
	}
	return total
}

// Due reports whether a window boundary has been reached.
func (mo *Monitor) Due(now int64) bool { return now >= mo.next }

// TickIfDue evaluates the gating rule at window boundaries, toggling
// registered targets. It returns the cost to charge the daemon core
// and whether a pass ran.
func (mo *Monitor) TickIfDue(now int64) (int64, bool) {
	if mo.quarantined || !mo.Due(now) {
		return 0, false
	}
	for mo.next <= now {
		mo.next += mo.cfg.Window
	}
	mo.Reads++
	readCost := mo.machine.SoftCost(mo.cfg.ReadCost)
	mo.OverheadNS += readCost

	// MBM-style bandwidth: one cache line per LLC miss.
	llc := mo.machineCount(pmu.EvLLCMiss)
	if mo.lastBWValid {
		mo.LastWindowBytes = (llc - mo.lastLLC) * 64
		if mo.LastWindowBytes > mo.PeakWindowBytes {
			mo.PeakWindowBytes = mo.LastWindowBytes
		}
	}
	mo.lastLLC = llc
	mo.lastBWValid = true

	for _, g := range mo.gauges {
		cur := mo.machineCount(g.event)
		if g.last > 0 && mo.faults.WrapHWPC() {
			// Injected wraparound: the counter overflowed between
			// window edges, so this read lands below the previous one.
			cur = g.last / 2
		}
		if cur < g.last {
			// The count went backwards — a wrap. The window's delta is
			// garbage: discard it without touching maxDelta or the
			// gate, and spend the next window re-baselining (the delta
			// from a wrapped baseline would be just as corrupt).
			g.wraps++
			mo.Wraps++
			g.last = cur
			g.resync = true
			continue
		}
		if g.resync {
			g.resync = false
			g.last = cur
			continue
		}
		delta := cur - g.last
		g.last = cur
		if delta > g.maxDelta {
			g.maxDelta = delta
		}
		wantActive := true
		if g.maxDelta > 0 {
			wantActive = float64(delta) >= mo.cfg.Threshold*float64(g.maxDelta)
		}
		if wantActive != g.active {
			g.active = wantActive
			g.toggles++
			mo.tel.EmitGate(now, g.event.String(), wantActive, delta, g.maxDelta,
				uint64(mo.cfg.Threshold*10000+0.5))
			if g.target != nil {
				if wantActive {
					g.target.Enable()
				} else {
					g.target.Disable()
				}
			}
		}
	}
	if mo.tel.Enabled() {
		var toggles uint64
		for _, g := range mo.gauges {
			toggles += g.toggles
		}
		mo.ctrReads.Set(mo.Reads)
		mo.ctrToggles.Set(toggles)
		mo.ctrOverhead.Set(uint64(mo.OverheadNS))
	}
	return readCost, true
}

// SetFaultPlane attaches the fault-injection plane. nil (the default)
// injects nothing.
func (mo *Monitor) SetFaultPlane(p *fault.Plane) { mo.faults = p }

// FaultRate returns wrapped gauge windows over gauge windows read, for
// the profiler's quarantine arithmetic.
func (mo *Monitor) FaultRate() (failures, attempts uint64) {
	return mo.Wraps, mo.Reads * uint64(len(mo.gauges))
}

// Quarantine permanently stops the monitor: gating evidence from a
// wrap-prone counter is garbage, so the monitor fails open — every
// gated target is re-enabled (unless itself quarantined) and no
// further windows are evaluated or charged.
func (mo *Monitor) Quarantine() {
	mo.quarantined = true
	for _, g := range mo.gauges {
		if !g.active {
			g.active = true
			g.toggles++
		}
		if g.target != nil {
			g.target.Enable()
		}
	}
}

// Quarantined reports whether the monitor is permanently off.
func (mo *Monitor) Quarantined() bool { return mo.quarantined }

// GaugeState describes one gauge for reporting.
type GaugeState struct {
	Event    pmu.Event
	Active   bool
	MaxDelta uint64
	Toggles  uint64
	Wraps    uint64
}

// States returns a snapshot of all gauges.
func (mo *Monitor) States() []GaugeState {
	out := make([]GaugeState, 0, len(mo.gauges))
	for _, g := range mo.gauges {
		out = append(out, GaugeState{Event: g.event, Active: g.active, MaxDelta: g.maxDelta, Toggles: g.toggles, Wraps: g.wraps})
	}
	return out
}
