package hwpc

import (
	"testing"

	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/pmu"
)

type toggleSpy struct{ enabled bool }

func (s *toggleSpy) Enable()       { s.enabled = true }
func (s *toggleSpy) Disable()      { s.enabled = false }
func (s *toggleSpy) Enabled() bool { return s.enabled }

func testMachine(t *testing.T) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 1
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGateTracksEventOnAllCores(t *testing.T) {
	m := testMachine(t)
	mon, err := New(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)
	found := false
	for _, e := range m.Core(0).PMU.Tracked() {
		if e == pmu.EvLLCMiss {
			found = true
		}
	}
	if !found {
		t.Errorf("gated event not programmed into the PMU")
	}
}

func TestGatingDisablesOnQuietAndReenables(t *testing.T) {
	m := testMachine(t)
	cfg := Config{Window: 100, Threshold: 0.2, ReadCost: 1}
	mon, _ := New(cfg, m)
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)

	// Window 1: a burst of misses establishes the max.
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 1000)
	mon.TickIfDue(100)
	if !spy.enabled {
		t.Fatalf("active window disabled the target")
	}
	// Window 2: silence (<20% of max): gate off.
	mon.TickIfDue(200)
	if spy.enabled {
		t.Fatalf("quiet window did not disable the target")
	}
	// Window 3: activity resumes above threshold: gate on.
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 500)
	mon.TickIfDue(300)
	if !spy.enabled {
		t.Fatalf("busy window did not re-enable the target")
	}
	states := mon.States()
	if len(states) != 1 || states[0].Toggles != 2 || states[0].MaxDelta != 1000 {
		t.Errorf("gauge state = %+v", states[0])
	}
}

func TestThresholdBoundary(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 1000)
	mon.TickIfDue(100)
	// Exactly 20% of the max must count as active (paper: "more than
	// 20%" is active; we use >= to keep the boundary stable).
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 200)
	mon.TickIfDue(200)
	if !spy.enabled {
		t.Errorf("boundary window (exactly 20%%) gated off")
	}
}

func TestTickScheduling(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	if _, ran := mon.TickIfDue(99); ran {
		t.Errorf("tick ran early")
	}
	if _, ran := mon.TickIfDue(100); !ran {
		t.Errorf("tick did not run at the window edge")
	}
	if mon.Reads != 1 {
		t.Errorf("Reads = %d, want 1", mon.Reads)
	}
}

func TestBadConfig(t *testing.T) {
	m := testMachine(t)
	if _, err := New(Config{Window: 0, Threshold: 0.2}, m); err == nil {
		t.Errorf("zero window accepted")
	}
	if _, err := New(Config{Window: 1, Threshold: 1.5}, m); err == nil {
		t.Errorf("threshold >1 accepted")
	}
}

func TestMemoryBandwidthTracking(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	// Bandwidth derives from the LLC-miss counter; track it without
	// gating anything.
	mon.Gate(pmu.EvLLCMiss, nil)
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 100)
	mon.TickIfDue(100) // establishes the baseline
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 50)
	mon.TickIfDue(200)
	if mon.LastWindowBytes != 50*64 {
		t.Errorf("LastWindowBytes = %d, want %d", mon.LastWindowBytes, 50*64)
	}
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 10)
	mon.TickIfDue(300)
	if mon.LastWindowBytes != 10*64 {
		t.Errorf("LastWindowBytes = %d, want %d", mon.LastWindowBytes, 10*64)
	}
	if mon.PeakWindowBytes != 50*64 {
		t.Errorf("PeakWindowBytes = %d, want %d", mon.PeakWindowBytes, 50*64)
	}
}

func TestFaultWrapSkipsWindowAndResyncs(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)

	spec, _ := fault.ParseSpec("hwpc.wrap=1")
	plane := fault.New(spec, 3)
	mon.SetFaultPlane(plane)

	// Window 1: last==0, so even a rate-1 wrap cannot fire; the burst
	// establishes the max.
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 1000)
	mon.TickIfDue(100)
	if !spy.enabled {
		t.Fatalf("active window disabled the target")
	}

	// Window 2: the read wraps. A silent window would normally gate the
	// target off — the wrap must discard the window instead.
	mon.SetFaultPlane(plane)
	mon.TickIfDue(200)
	if mon.Wraps != 1 {
		t.Fatalf("Wraps = %d, want 1", mon.Wraps)
	}
	if !spy.enabled {
		t.Errorf("wrapped window gated the target")
	}

	// Window 3: clean read, but the baseline is corrupt — resync only.
	mon.SetFaultPlane(nil)
	mon.TickIfDue(300)
	if !spy.enabled {
		t.Errorf("resync window gated the target")
	}
	st := mon.States()[0]
	if st.MaxDelta != 1000 {
		t.Errorf("maxDelta = %d after wrap+resync, want 1000 untouched", st.MaxDelta)
	}
	if st.Wraps != 1 {
		t.Errorf("gauge wraps = %d, want 1", st.Wraps)
	}

	// Window 4: normal operation resumes; a quiet window gates off.
	mon.TickIfDue(400)
	if spy.enabled {
		t.Errorf("post-resync quiet window did not gate off")
	}
	if f, a := mon.FaultRate(); f != 1 || a != 4 {
		t.Errorf("FaultRate = %d/%d, want 1/4", f, a)
	}
}

func TestQuarantineFailsOpen(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 1000)
	mon.TickIfDue(100)
	mon.TickIfDue(200) // quiet: gate off
	if spy.enabled {
		t.Fatalf("quiet window did not gate off")
	}
	mon.Quarantine()
	if !mon.Quarantined() {
		t.Fatalf("not quarantined")
	}
	if !spy.enabled {
		t.Errorf("quarantined monitor did not fail open (target still gated off)")
	}
	if _, ran := mon.TickIfDue(300); ran {
		t.Errorf("quarantined monitor still ticking")
	}
}

func TestZeroRatePlaneInertMonitor(t *testing.T) {
	run := func(p *fault.Plane) []GaugeState {
		m := testMachine(t)
		mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
		spy := &toggleSpy{enabled: true}
		mon.Gate(pmu.EvLLCMiss, spy)
		mon.SetFaultPlane(p)
		for w := int64(1); w <= 6; w++ {
			if w%2 == 1 {
				m.Core(0).PMU.Add(pmu.EvLLCMiss, 500)
			}
			mon.TickIfDue(w * 100)
		}
		return mon.States()
	}
	a, b := run(nil), run(fault.New(fault.Spec{}, 42))
	if len(a) != 1 || a[0] != b[0] {
		t.Errorf("zero-rate plane perturbed gating: %+v vs %+v", a, b)
	}
}
