package hwpc

import (
	"testing"

	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/pmu"
)

type toggleSpy struct{ enabled bool }

func (s *toggleSpy) Enable()       { s.enabled = true }
func (s *toggleSpy) Disable()      { s.enabled = false }
func (s *toggleSpy) Enabled() bool { return s.enabled }

func testMachine(t *testing.T) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 1
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGateTracksEventOnAllCores(t *testing.T) {
	m := testMachine(t)
	mon, err := New(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)
	found := false
	for _, e := range m.Core(0).PMU.Tracked() {
		if e == pmu.EvLLCMiss {
			found = true
		}
	}
	if !found {
		t.Errorf("gated event not programmed into the PMU")
	}
}

func TestGatingDisablesOnQuietAndReenables(t *testing.T) {
	m := testMachine(t)
	cfg := Config{Window: 100, Threshold: 0.2, ReadCost: 1}
	mon, _ := New(cfg, m)
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)

	// Window 1: a burst of misses establishes the max.
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 1000)
	mon.TickIfDue(100)
	if !spy.enabled {
		t.Fatalf("active window disabled the target")
	}
	// Window 2: silence (<20% of max): gate off.
	mon.TickIfDue(200)
	if spy.enabled {
		t.Fatalf("quiet window did not disable the target")
	}
	// Window 3: activity resumes above threshold: gate on.
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 500)
	mon.TickIfDue(300)
	if !spy.enabled {
		t.Fatalf("busy window did not re-enable the target")
	}
	states := mon.States()
	if len(states) != 1 || states[0].Toggles != 2 || states[0].MaxDelta != 1000 {
		t.Errorf("gauge state = %+v", states[0])
	}
}

func TestThresholdBoundary(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	spy := &toggleSpy{enabled: true}
	mon.Gate(pmu.EvLLCMiss, spy)
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 1000)
	mon.TickIfDue(100)
	// Exactly 20% of the max must count as active (paper: "more than
	// 20%" is active; we use >= to keep the boundary stable).
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 200)
	mon.TickIfDue(200)
	if !spy.enabled {
		t.Errorf("boundary window (exactly 20%%) gated off")
	}
}

func TestTickScheduling(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	if _, ran := mon.TickIfDue(99); ran {
		t.Errorf("tick ran early")
	}
	if _, ran := mon.TickIfDue(100); !ran {
		t.Errorf("tick did not run at the window edge")
	}
	if mon.Reads != 1 {
		t.Errorf("Reads = %d, want 1", mon.Reads)
	}
}

func TestBadConfig(t *testing.T) {
	m := testMachine(t)
	if _, err := New(Config{Window: 0, Threshold: 0.2}, m); err == nil {
		t.Errorf("zero window accepted")
	}
	if _, err := New(Config{Window: 1, Threshold: 1.5}, m); err == nil {
		t.Errorf("threshold >1 accepted")
	}
}

func TestMemoryBandwidthTracking(t *testing.T) {
	m := testMachine(t)
	mon, _ := New(Config{Window: 100, Threshold: 0.2, ReadCost: 1}, m)
	// Bandwidth derives from the LLC-miss counter; track it without
	// gating anything.
	mon.Gate(pmu.EvLLCMiss, nil)
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 100)
	mon.TickIfDue(100) // establishes the baseline
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 50)
	mon.TickIfDue(200)
	if mon.LastWindowBytes != 50*64 {
		t.Errorf("LastWindowBytes = %d, want %d", mon.LastWindowBytes, 50*64)
	}
	m.Core(0).PMU.Add(pmu.EvLLCMiss, 10)
	mon.TickIfDue(300)
	if mon.LastWindowBytes != 10*64 {
		t.Errorf("LastWindowBytes = %d, want %d", mon.LastWindowBytes, 10*64)
	}
	if mon.PeakWindowBytes != 50*64 {
		t.Errorf("PeakWindowBytes = %d, want %d", mon.PeakWindowBytes, 50*64)
	}
}
