package mem

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadChain rejects a malformed -tiers chain specification. Every
// parse and validation failure wraps it, so CLI surfaces branch with
// errors.Is instead of matching message text.
var ErrBadChain = errors.New("mem: invalid tier chain")

// TierChain is an ordered memory hierarchy, fastest tier first. It is
// the configuration form of the machine's tier layout: NewPhysMem
// consumes it directly (a TierChain is a []TierSpec), the mover
// promotes and demotes between adjacent entries, and the CLIs parse it
// from the -tiers grammar:
//
//	chain := tier ("/" tier)+
//	tier  := name ":" frames [":" read ":" write] [":dev"]
//
// frames is the tier capacity in 4 KiB frames; read and write are the
// per-line latencies in ns. Both latencies may be omitted for the
// preset media names (dram, cxl, nvm, ssd), which also carry their
// device flag: cxl is a self-profiling device tier by default. The
// trailing "dev" marks any tier as device-profiled explicitly.
// A chain needs at least two tiers — a single tier is not a hierarchy
// and parses to an error, not a degenerate machine.
//
// String renders the canonical full form (every latency explicit,
// ":dev" on device tiers); ParseTierChain(c.String()) round-trips.
type TierChain []TierSpec

// tierPreset carries the default timing/device point of a known media
// name. Latencies follow DefaultTiers for dram/nvm; cxl sits between
// them (CXL-attached DRAM: DRAM media behind a ~60 ns link hop) and is
// a profiling-capable device; ssd models a far memory tier.
type tierPreset struct {
	read, write int64
	device      bool
}

var tierPresets = map[string]tierPreset{
	"dram": {read: 80, write: 80},
	"cxl":  {read: 140, write: 180, device: true},
	"nvm":  {read: 320, write: 640},
	"ssd":  {read: 1280, write: 2560},
}

// ParseTierChain parses the -tiers grammar. The zero-value chain is
// never returned alongside a nil error: the result always validates.
func ParseTierChain(text string) (TierChain, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, fmt.Errorf("empty spec: %w", ErrBadChain)
	}
	parts := strings.Split(text, "/")
	chain := make(TierChain, 0, len(parts))
	for _, part := range parts {
		spec, err := parseTier(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		chain = append(chain, spec)
	}
	if err := chain.Validate(); err != nil {
		return nil, err
	}
	return chain, nil
}

// parseTier parses one name:frames[:read:write][:dev] element.
func parseTier(text string) (TierSpec, error) {
	fields := strings.Split(text, ":")
	dev := false
	if n := len(fields); n > 1 && fields[n-1] == "dev" {
		dev = true
		fields = fields[:n-1]
	}
	if len(fields) != 2 && len(fields) != 4 {
		return TierSpec{}, fmt.Errorf("tier %q: want name:frames[:read:write][:dev]: %w", text, ErrBadChain)
	}
	name := strings.TrimSpace(fields[0])
	if name == "" {
		return TierSpec{}, fmt.Errorf("tier %q: empty name: %w", text, ErrBadChain)
	}
	frames, err := strconv.Atoi(strings.TrimSpace(fields[1]))
	if err != nil {
		return TierSpec{}, fmt.Errorf("tier %q: bad frame count %q: %w", text, fields[1], ErrBadChain)
	}
	if frames <= 0 {
		return TierSpec{}, fmt.Errorf("tier %q: frame count %d must be positive: %w", text, frames, ErrBadChain)
	}
	spec := TierSpec{Name: name, Frames: frames, Device: dev}
	if len(fields) == 4 {
		read, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil {
			return TierSpec{}, fmt.Errorf("tier %q: bad read latency %q: %w", text, fields[2], ErrBadChain)
		}
		write, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
		if err != nil {
			return TierSpec{}, fmt.Errorf("tier %q: bad write latency %q: %w", text, fields[3], ErrBadChain)
		}
		if read <= 0 || write <= 0 {
			return TierSpec{}, fmt.Errorf("tier %q: latencies must be positive: %w", text, ErrBadChain)
		}
		spec.ReadLatency, spec.WriteLatency = read, write
		return spec, nil
	}
	preset, ok := tierPresets[name]
	if !ok {
		return TierSpec{}, fmt.Errorf("tier %q: unknown media %q needs explicit read:write latencies: %w", text, name, ErrBadChain)
	}
	spec.ReadLatency, spec.WriteLatency = preset.read, preset.write
	spec.Device = dev || preset.device
	return spec, nil
}

// String renders the canonical full-form grammar; ParseTierChain
// round-trips it.
func (c TierChain) String() string {
	var b strings.Builder
	for i, s := range c {
		if i > 0 {
			b.WriteByte('/')
		}
		fmt.Fprintf(&b, "%s:%d:%d:%d", s.Name, s.Frames, s.ReadLatency, s.WriteLatency)
		if s.Device {
			b.WriteString(":dev")
		}
	}
	return b.String()
}

// Validate checks the chain is a usable hierarchy: at least two tiers,
// every spec individually valid.
func (c TierChain) Validate() error {
	if len(c) < 2 {
		return fmt.Errorf("chain has %d tier(s), need at least 2: %w", len(c), ErrBadChain)
	}
	for i, s := range c {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("tier %d: %v: %w", i, err, ErrBadChain)
		}
	}
	return nil
}

// HasDevice reports whether any tier is device-profiled.
func (c TierChain) HasDevice() bool {
	for _, s := range c {
		if s.Device {
			return true
		}
	}
	return false
}

// LastTier returns the slowest tier's ID.
func (c TierChain) LastTier() TierID { return TierID(len(c) - 1) }
