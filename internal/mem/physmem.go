package mem

import (
	"errors"
	"fmt"

	"tieredmem/internal/fault"
	"tieredmem/internal/telemetry"
)

// ErrOutOfMemory is returned when a tier (and any spill target) has no
// free frames left.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// ErrNoContiguous is returned when a huge allocation cannot find a
// contiguous, aligned run of free frames (the THP fallback condition).
var ErrNoContiguous = errors.New("mem: no contiguous frame run for huge page")

// ErrNoTiers rejects a PhysMem configured with zero tiers.
var ErrNoTiers = errors.New("mem: at least one tier required")

// Typed sentinel errors for the migration paths: callers branch with
// errors.Is to decide whether a failure is transient (worth a deferred
// retry) or permanent (drop the migration). Every error carries
// context via %w wrapping; never match on message text.
var (
	// ErrTierFull is the no-spill allocation failure (AllocIn): the
	// target tier has no free frame, or the fault plane injected
	// transient allocation pressure. Transient — the mover retries.
	ErrTierFull = errors.New("mem: tier full")
	// ErrPinned marks a page that cannot be migrated right now
	// (pinned for DMA, the EBUSY case). Transient.
	ErrPinned = errors.New("mem: page pinned")
	// ErrUnmapped marks a page whose mapping vanished out from under
	// a migration (unmapped, remapped, or never mapped). Permanent —
	// there is nothing left to move.
	ErrUnmapped = errors.New("mem: page no longer mapped")
	// ErrCopyAborted marks a transactional migration whose verify-clean
	// phase found the page written mid-copy (the Nomad abort edge).
	// Transient — the mover re-queues the transaction.
	ErrCopyAborted = errors.New("mem: page dirtied mid-copy")
	// ErrShadowStale marks a shadow copy that went stale at the moment
	// a re-demotion tried to adopt it. The demotion itself proceeds on
	// the full copy path; the sentinel classifies the fast-path miss.
	ErrShadowStale = errors.New("mem: shadow copy stale")
)

// HugePages is the number of base frames in one 2 MiB huge page.
const HugePages = 512

// TierSpec describes one tier's geometry and timing.
type TierSpec struct {
	Name         string
	Frames       int   // capacity in 4 KiB frames
	ReadLatency  int64 // ns for a 64 B line read served by this tier
	WriteLatency int64 // ns for a 64 B line write
	// Device marks a tier backed by a self-profiling device (CXL
	// memory expander with NeoMem-style hot-page counters): a devprof
	// tracker can observe physical accesses landing in this tier.
	Device bool
}

// Validate reports configuration errors.
func (s TierSpec) Validate() error {
	if s.Frames <= 0 {
		return fmt.Errorf("mem: tier %q: frame count %d must be positive", s.Name, s.Frames)
	}
	if s.ReadLatency <= 0 || s.WriteLatency <= 0 {
		return fmt.Errorf("mem: tier %q: latencies must be positive", s.Name)
	}
	return nil
}

// DefaultTiers returns a two-tier layout with the given fast-tier frame
// count and slow-tier frame count, using DRAM-like and NVM-like
// latencies. Per §IV the slow tier is "not orders of magnitude slower":
// we use roughly 4x read and 8x write latency, in line with 3D-XPoint
// class media.
func DefaultTiers(fastFrames, slowFrames int) []TierSpec {
	return []TierSpec{
		{Name: "dram", Frames: fastFrames, ReadLatency: 80, WriteLatency: 80},
		{Name: "nvm", Frames: slowFrames, ReadLatency: 320, WriteLatency: 640},
	}
}

// tierState is the allocator state for one tier: a free bitmap with a
// next-fit cursor for base pages (allocating upward) and a separate
// downward cursor for huge runs, which keeps small and huge
// allocations from fragmenting each other.
type tierState struct {
	spec      TierSpec
	base      PFN // first frame of this tier's contiguous PFN range
	free      []bool
	freeCount int
	cursor    int // next-fit position for base pages
	hugeCur   int // next-fit position (from top) for huge runs
	inUse     int
	// shadowCount tracks frames holding shadow copies: neither free
	// nor in use. Conservation per tier is
	// inUse + freeCount + shadowCount == len(free).
	shadowCount int
	// hiWater is one past the highest local index ever claimed: the
	// dense allocated-PFN span the per-epoch walks cover. Frees do
	// not lower it (the walks still check Allocated()), but base
	// allocation is next-fit from the bottom and huge allocation
	// top-down from hugeCur, so in practice the span stays tight to
	// the working set and the epoch walks skip the unallocated tail
	// instead of re-discovering it every harvest.
	hiWater int
}

// PhysMem is the machine's physical memory: a contiguous PFN space
// carved into tiers, a page descriptor per frame, and per-tier frame
// allocators.
type PhysMem struct {
	tiers []tierState
	pds   []PageDescriptor

	// Telemetry counters; nil (free no-ops) when telemetry is off.
	ctrAlloc         *telemetry.Counter
	ctrAllocHuge     *telemetry.Counter
	ctrFree          *telemetry.Counter
	ctrSpill         *telemetry.Counter
	ctrShadowMade    *telemetry.Counter
	ctrShadowInvalid *telemetry.Counter
	ctrShadowReclaim *telemetry.Counter

	// faults, when non-nil, can fail AllocIn with transient pressure
	// (SiteENOMEM). Demand allocation (Alloc/AllocHuge) is never
	// injected: faults target the migration path, not correctness of
	// first-touch placement.
	faults *fault.Plane
}

// SetFaultPlane attaches the fault-injection plane. nil (the default)
// injects nothing.
func (pm *PhysMem) SetFaultPlane(p *fault.Plane) { pm.faults = p }

// SetTracer wires the allocator's telemetry counters: frames claimed
// and freed, huge allocations, and spill allocations (fast tier full,
// frame taken from a slower tier). Counting only — allocation
// decisions are never affected.
func (pm *PhysMem) SetTracer(t *telemetry.Tracer) {
	pm.ctrAlloc = t.Counter("mem/alloc_frames")
	pm.ctrAllocHuge = t.Counter("mem/alloc_huge")
	pm.ctrFree = t.Counter("mem/free_frames")
	pm.ctrSpill = t.Counter("mem/spill_frames")
	pm.ctrShadowMade = t.Counter("mem/shadow_made")
	pm.ctrShadowInvalid = t.Counter("mem/shadow_invalidated")
	pm.ctrShadowReclaim = t.Counter("mem/shadow_reclaimed")
}

// NewPhysMem lays the tiers out back to back in a single PFN space
// (tier 0 first), mirroring how CPU-less NUMA nodes expose NVM after
// DRAM in the physical map.
func NewPhysMem(specs []TierSpec) (*PhysMem, error) {
	if len(specs) == 0 {
		return nil, ErrNoTiers
	}
	total := 0
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		total += s.Frames
	}
	pm := &PhysMem{
		tiers: make([]tierState, len(specs)),
		pds:   make([]PageDescriptor, total),
	}
	next := PFN(0)
	for i, s := range specs {
		ts := &pm.tiers[i]
		ts.spec = s
		ts.base = next
		ts.free = make([]bool, s.Frames)
		for f := range ts.free {
			ts.free[f] = true
		}
		ts.freeCount = s.Frames
		ts.hugeCur = s.Frames
		for f := 0; f < s.Frames; f++ {
			pd := &pm.pds[int(next)+f]
			pd.Frame = next + PFN(f)
			pd.Tier = TierID(i)
			pd.PID = -1
		}
		next += PFN(s.Frames)
	}
	return pm, nil
}

// Tiers returns the number of tiers.
func (pm *PhysMem) Tiers() int { return len(pm.tiers) }

// TotalFrames returns the machine's total frame count.
func (pm *PhysMem) TotalFrames() int { return len(pm.pds) }

// TierSpecOf returns the spec of a tier.
func (pm *PhysMem) TierSpecOf(t TierID) TierSpec { return pm.tiers[t].spec }

// FreeFrames returns the number of unallocated frames in a tier.
func (pm *PhysMem) FreeFrames(t TierID) int { return pm.tiers[t].freeCount }

// UsedFrames returns the number of allocated frames in a tier.
func (pm *PhysMem) UsedFrames(t TierID) int { return pm.tiers[t].inUse }

// TierOf returns the tier containing a frame.
func (pm *PhysMem) TierOf(pfn PFN) TierID {
	return pm.pds[pfn].Tier
}

// TierRange returns the half-open PFN range [lo, hi) a tier owns in
// the machine's contiguous frame space. Invariant checkers use it to
// assert a descriptor's Tier field agrees with the frame's position.
func (pm *PhysMem) TierRange(t TierID) (lo, hi PFN) {
	ts := &pm.tiers[t]
	return ts.base, ts.base + PFN(len(ts.free))
}

// PhysToPage returns the page descriptor for the frame holding paddr,
// the simulator's phys_to_page().
func (pm *PhysMem) PhysToPage(paddr uint64) *PageDescriptor {
	return pm.Page(PFNOf(paddr))
}

// Page returns the descriptor of a frame.
func (pm *PhysMem) Page(pfn PFN) *PageDescriptor {
	if int(pfn) >= len(pm.pds) {
		panic(fmt.Sprintf("mem: PFN %d out of range (total %d frames)", pfn, len(pm.pds)))
	}
	return &pm.pds[pfn]
}

// claim marks one frame allocated and initializes its descriptor.
func (pm *PhysMem) claim(ts *tierState, local int, pid int, vpn VPN) PFN {
	ts.free[local] = false
	ts.freeCount--
	ts.inUse++
	if local >= ts.hiWater {
		ts.hiWater = local + 1
	}
	pfn := ts.base + PFN(local)
	pd := &pm.pds[pfn]
	pd.PID = pid
	pd.VPage = vpn
	pd.Flags = FlagAllocated
	pd.ShadowLink = 0
	pd.AbitTotal, pd.TraceTotal = 0, 0
	pd.AbitEpoch, pd.TraceEpoch = 0, 0
	pd.DevTotal, pd.DevEpoch = 0, 0
	pd.TrueTotal, pd.TrueEpoch = 0, 0
	pm.ctrAlloc.Add(1)
	return pfn
}

// allocIn takes one free frame from a tier using the next-fit cursor.
// When the tier is out of free frames but holds shadow copies, the
// lowest-indexed shadow is reclaimed first: shadows are a cache of
// clean page content and always lose to real allocation demand.
func (pm *PhysMem) allocIn(ti int, pid int, vpn VPN) (PFN, bool) {
	ts := &pm.tiers[ti]
	if ts.freeCount == 0 {
		if ts.shadowCount == 0 {
			return 0, false
		}
		pm.reclaimShadowIn(ts)
	}
	n := len(ts.free)
	for scanned := 0; scanned < n; scanned++ {
		i := ts.cursor
		ts.cursor++
		if ts.cursor == n {
			ts.cursor = 0
		}
		if ts.free[i] {
			return pm.claim(ts, i, pid, vpn), true
		}
	}
	return 0, false
}

// Alloc takes a free frame from the given tier for (pid, vpn). If the
// tier is exhausted it spills to the next slower tier, the behaviour of
// a first-come-first-allocate tiered system (the paper's baseline).
func (pm *PhysMem) Alloc(t TierID, pid int, vpn VPN) (PFN, error) {
	for ti := int(t); ti < len(pm.tiers); ti++ {
		if pfn, ok := pm.allocIn(ti, pid, vpn); ok {
			if ti != int(t) {
				pm.ctrSpill.Add(1)
			}
			return pfn, nil
		}
	}
	return 0, ErrOutOfMemory
}

// AllocIn is like Alloc but fails rather than spilling when the tier is
// full; the page mover uses it during migrations. Failures wrap
// ErrTierFull (which also wraps ErrOutOfMemory for legacy callers):
// both the genuine out-of-frames case and fault-injected transient
// pressure, so the mover's retry logic treats them uniformly.
func (pm *PhysMem) AllocIn(t TierID, pid int, vpn VPN) (PFN, error) {
	if pm.faults.FailAllocIn() {
		return 0, fmt.Errorf("mem: tier %v allocation pressure (injected): %w", t, ErrTierFull)
	}
	if pfn, ok := pm.allocIn(int(t), pid, vpn); ok {
		return pfn, nil
	}
	return 0, fmt.Errorf("mem: tier %v full: %w (%w)", t, ErrTierFull, ErrOutOfMemory)
}

// AllocHuge finds a 512-frame aligned contiguous run in the given tier
// (spilling to slower tiers), claiming every frame for the huge
// mapping rooted at vpnBase. It returns the base PFN.
// ErrNoContiguous signals the caller to fall back to base pages,
// exactly like THP allocation failure.
func (pm *PhysMem) AllocHuge(t TierID, pid int, vpnBase VPN) (PFN, error) {
	if uint64(vpnBase)%HugePages != 0 {
		return 0, fmt.Errorf("mem: huge vpn base %#x not 2 MiB aligned", uint64(vpnBase))
	}
	exhausted := true
	for ti := int(t); ti < len(pm.tiers); ti++ {
		ts := &pm.tiers[ti]
		if ts.freeCount < HugePages {
			continue
		}
		exhausted = false
		if pfn, ok := pm.allocHugeIn(ts, pid, vpnBase, ts.hugeCur); ok {
			pm.ctrAllocHuge.Add(1)
			return pfn, nil
		}
		// Wrap once: retry from the top of the tier.
		if ts.hugeCur != len(ts.free) {
			if pfn, ok := pm.allocHugeIn(ts, pid, vpnBase, len(ts.free)); ok {
				pm.ctrAllocHuge.Add(1)
				return pfn, nil
			}
		}
	}
	if exhausted {
		return 0, ErrOutOfMemory
	}
	return 0, ErrNoContiguous
}

// allocHugeIn scans downward from the local index `from` for an
// aligned free run of HugePages frames and claims it.
func (pm *PhysMem) allocHugeIn(ts *tierState, pid int, vpnBase VPN, from int) (PFN, bool) {
	start := from - HugePages
	if start >= 0 {
		// Align the tier-local start so the resulting PFN is 2 MiB
		// aligned.
		start -= (int(ts.base) + start) % HugePages
	}
	for ; start >= 0; start -= HugePages {
		runFree := true
		for i := start; i < start+HugePages; i++ {
			if !ts.free[i] {
				runFree = false
				break
			}
		}
		if !runFree {
			continue
		}
		for i := 0; i < HugePages; i++ {
			pm.claim(ts, start+i, pid, vpnBase+VPN(i))
		}
		ts.hugeCur = start
		return ts.base + PFN(start), true
	}
	return 0, false
}

// Free returns a frame to its tier's free bitmap. Freeing a shadowed
// primary drops its shadow too — the page's identity is gone, so the
// shadow backs nothing. Shadow frames themselves are not Allocated and
// must go through the shadow lifecycle, never Free.
func (pm *PhysMem) Free(pfn PFN) {
	pd := &pm.pds[pfn]
	if !pd.Allocated() {
		panic(fmt.Sprintf("mem: double free of PFN %d", pfn))
	}
	if pd.Flags&FlagShadowed != 0 {
		pm.dropShadow(pd.ShadowLink)
	}
	pd.Flags = 0
	pd.PID = -1
	pd.ShadowLink = 0
	ts := &pm.tiers[pd.Tier]
	local := int(pfn - ts.base)
	ts.free[local] = true
	ts.freeCount++
	ts.inUse--
	pm.ctrFree.Add(1)
}

// FreeHuge releases all 512 frames of a huge allocation.
func (pm *PhysMem) FreeHuge(basePFN PFN) {
	for i := 0; i < HugePages; i++ {
		pm.Free(basePFN + PFN(i))
	}
}

// ForEachAllocated invokes fn for every allocated frame, ascending
// PFN. The walk covers each tier's claimed-watermark span rather than
// the whole frame array, so epoch-horizon passes scale with the
// working set, not the machine size.
func (pm *PhysMem) ForEachAllocated(fn func(*PageDescriptor)) {
	for t := range pm.tiers {
		ts := &pm.tiers[t]
		if ts.inUse == 0 {
			continue
		}
		lo := int(ts.base)
		for i := lo; i < lo+ts.hiWater; i++ {
			if pm.pds[i].Allocated() {
				fn(&pm.pds[i])
			}
		}
	}
}

// ResetEpochAll folds every allocated frame's epoch counters into its
// totals, the bulk form of PageDescriptor.ResetEpoch used at epoch
// horizons. Like ForEachAllocated it walks only the claimed spans.
func (pm *PhysMem) ResetEpochAll() {
	for t := range pm.tiers {
		ts := &pm.tiers[t]
		if ts.inUse == 0 {
			continue
		}
		lo := int(ts.base)
		for i := lo; i < lo+ts.hiWater; i++ {
			if pm.pds[i].Allocated() {
				pm.pds[i].ResetEpoch()
			}
		}
	}
}

// Shadow copies (the Nomad model, "Non-Exclusive Memory Tiering via
// Transactional Page Migration"). When the transactional mover
// promotes a page, the vacated slow-tier frame is kept as a shadow
// instead of being freed: as long as the page stays clean, demoting it
// back to that tier is a remap with zero copy work. A shadow frame is
// a third allocator state — not free (an allocation may not take it
// while valid, except under pressure), not in use (it backs no
// mapping). The CPU's write path invalidates a shadow on the page's
// first dirtying store (NoteWrite), and the fault plane can invalidate
// one at adoption time (SiteShadowStale, drawn by the mover).

// ShadowFrames returns the number of frames in a tier holding shadow
// copies.
func (pm *PhysMem) ShadowFrames(t TierID) int { return pm.tiers[t].shadowCount }

// MakeShadow converts the just-vacated frame of a promoted page into a
// shadow of its new primary frame. Any older shadow the page still had
// (from a promotion out of a deeper tier) is superseded and dropped.
// The caller has already copied the page's state to newPFN and
// remapped; oldPFN must still be Allocated.
func (pm *PhysMem) MakeShadow(oldPFN, newPFN PFN) {
	old := &pm.pds[oldPFN]
	if !old.Allocated() {
		panic(fmt.Sprintf("mem: MakeShadow on unallocated PFN %d", oldPFN))
	}
	if old.Flags&FlagShadowed != 0 {
		pm.dropShadow(old.ShadowLink)
		pm.ctrShadowInvalid.Add(1)
	}
	old.Flags = FlagShadow
	old.ShadowLink = newPFN
	ts := &pm.tiers[old.Tier]
	ts.inUse--
	ts.shadowCount++
	pd := &pm.pds[newPFN]
	pd.Flags |= FlagShadowed
	pd.ShadowLink = oldPFN
	pm.ctrShadowMade.Add(1)
}

// ShadowFor returns the frame holding a valid shadow of pfn's page in
// tier t, if one exists.
func (pm *PhysMem) ShadowFor(pfn PFN, t TierID) (PFN, bool) {
	pd := &pm.pds[pfn]
	if pd.Flags&FlagShadowed == 0 {
		return 0, false
	}
	if spfn := pd.ShadowLink; pm.pds[spfn].Tier == t {
		return spfn, true
	}
	return 0, false
}

// AdoptShadow turns the shadow of pfn's page back into the page's
// primary frame: the shadow frame becomes Allocated carrying the
// page's profiling state, the old primary loses its shadowed mark, and
// the adopted PFN is returned. The caller remaps the page to it and
// frees the old primary — no copy happens, which is the entire point.
func (pm *PhysMem) AdoptShadow(pfn PFN) PFN {
	pd := &pm.pds[pfn]
	if pd.Flags&FlagShadowed == 0 {
		panic(fmt.Sprintf("mem: AdoptShadow on unshadowed PFN %d", pfn))
	}
	spfn := pd.ShadowLink
	spd := &pm.pds[spfn]
	spd.PID = pd.PID
	spd.VPage = pd.VPage
	spd.Flags = FlagAllocated | (pd.Flags & FlagPoisoned)
	spd.ShadowLink = 0
	spd.AbitTotal, spd.TraceTotal = pd.AbitTotal, pd.TraceTotal
	spd.AbitEpoch, spd.TraceEpoch = pd.AbitEpoch, pd.TraceEpoch
	spd.WriteTotal, spd.WriteEpoch = pd.WriteTotal, pd.WriteEpoch
	spd.DevTotal, spd.DevEpoch = pd.DevTotal, pd.DevEpoch
	spd.TrueTotal, spd.TrueEpoch = pd.TrueTotal, pd.TrueEpoch
	pd.Flags &^= FlagShadowed
	pd.ShadowLink = 0
	ts := &pm.tiers[spd.Tier]
	ts.inUse++
	ts.shadowCount--
	return spfn
}

// InvalidateShadowOf drops the shadow of pfn's page, if any: the copy
// no longer matches the page content (a write landed, or the fault
// plane said so).
func (pm *PhysMem) InvalidateShadowOf(pfn PFN) {
	pd := &pm.pds[pfn]
	if pd.Flags&FlagShadowed == 0 {
		return
	}
	pm.dropShadow(pd.ShadowLink)
	pd.Flags &^= FlagShadowed
	pd.ShadowLink = 0
	pm.ctrShadowInvalid.Add(1)
}

// NoteWrite is the CPU write path's hook, called on every D-bit 0→1
// transition: the first store to a clean page makes any shadow of it
// stale. A page without a shadow costs one flag test.
func (pm *PhysMem) NoteWrite(pfn PFN) {
	if pm.pds[pfn].Flags&FlagShadowed != 0 {
		pm.InvalidateShadowOf(pfn)
	}
}

// dropShadow returns a shadow frame to the free bitmap. The caller
// owns the primary's FlagShadowed bookkeeping.
func (pm *PhysMem) dropShadow(spfn PFN) {
	spd := &pm.pds[spfn]
	if spd.Flags&FlagShadow == 0 {
		panic(fmt.Sprintf("mem: dropShadow on non-shadow PFN %d", spfn))
	}
	spd.Flags = 0
	spd.PID = -1
	spd.ShadowLink = 0
	ts := &pm.tiers[spd.Tier]
	ts.free[int(spfn-ts.base)] = true
	ts.freeCount++
	ts.shadowCount--
}

// reclaimShadowIn frees the lowest-indexed shadow frame in a tier to
// satisfy allocation pressure, clearing the primary's shadowed mark.
// Lowest index first is arbitrary but fixed — reclaim order must be a
// pure function of allocator state for byte-identical replays.
func (pm *PhysMem) reclaimShadowIn(ts *tierState) {
	for i := 0; i < ts.hiWater; i++ {
		spfn := ts.base + PFN(i)
		spd := &pm.pds[spfn]
		if spd.Flags&FlagShadow == 0 {
			continue
		}
		primary := &pm.pds[spd.ShadowLink]
		primary.Flags &^= FlagShadowed
		primary.ShadowLink = 0
		pm.dropShadow(spfn)
		pm.ctrShadowReclaim.Add(1)
		return
	}
	panic("mem: reclaimShadowIn found no shadow despite shadowCount > 0")
}

// ForEachShadow invokes fn for every shadow frame, ascending PFN; the
// invariant checker uses it to verify shadow-frame conservation.
func (pm *PhysMem) ForEachShadow(fn func(*PageDescriptor)) {
	for t := range pm.tiers {
		ts := &pm.tiers[t]
		if ts.shadowCount == 0 {
			continue
		}
		lo := int(ts.base)
		for i := lo; i < lo+ts.hiWater; i++ {
			if pm.pds[i].Flags&FlagShadow != 0 {
				fn(&pm.pds[i])
			}
		}
	}
}
