// Package mem models the physical memory of a tiered-memory machine:
// byte addresses, page frames, per-tier frame allocation, and the
// per-frame page descriptors that TMP extends with profiling state
// (the paper extends Linux's struct page the same way, §III-B1).
package mem

import "fmt"

// Page geometry. The simulator uses x86-style 4 KiB base pages.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// TierID identifies a memory tier. Tier 0 is the fast tier ("tier 1
// memory" in the paper: DRAM); tier 1 is the slow tier ("tier 2": NVM).
type TierID int

const (
	// FastTier is DRAM-class memory (the paper's tier 1).
	FastTier TierID = 0
	// SlowTier is NVM-class memory (the paper's tier 2).
	SlowTier TierID = 1
)

// String returns "fast" or "slow" (or a numeric form for other IDs).
func (t TierID) String() string {
	switch t {
	case FastTier:
		return "fast"
	case SlowTier:
		return "slow"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// PFN is a physical frame number.
type PFN uint64

// PAddrOf returns the first byte address of the frame.
func (p PFN) PAddrOf() uint64 { return uint64(p) << PageShift }

// PFNOf returns the frame containing a physical byte address.
func PFNOf(paddr uint64) PFN { return PFN(paddr >> PageShift) }

// VPN is a virtual page number.
type VPN uint64

// VPNOf returns the virtual page containing a virtual byte address.
func VPNOf(vaddr uint64) VPN { return VPN(vaddr >> PageShift) }

// VAddrOf returns the first byte address of the virtual page.
func (v VPN) VAddrOf() uint64 { return uint64(v) << PageShift }

// PageFlags carries page-state bits relevant to placement.
type PageFlags uint8

const (
	// FlagAllocated marks a frame backing a live mapping.
	FlagAllocated PageFlags = 1 << iota
	// FlagNonMigratable marks frames the policy must not move
	// (pinned/kernel pages; the paper's step 2 filters these).
	FlagNonMigratable
	// FlagPoisoned marks frames whose PTE carries the BadgerTrap
	// reserved-bit poison used by the emulation framework.
	FlagPoisoned
	// FlagShadow marks a frame holding a non-exclusive shadow copy of a
	// page promoted out of this tier (the Nomad model). Shadow frames
	// are neither allocated nor free: they back no mapping, but a
	// demotion back to this tier can adopt one with a remap and zero
	// copy work. ShadowLink names the allocated primary frame.
	FlagShadow
	// FlagShadowed marks an allocated frame whose page still has a
	// valid shadow copy in a slower tier; ShadowLink names the shadow
	// frame. Cleared when the page is written (the copy goes stale) or
	// the shadow frame is reclaimed for an allocation.
	FlagShadowed
)

// PageDescriptor is the per-frame metadata record. TMP accumulates
// profiling observations here: separate counters for A-bit and
// trace-based (IBS/PEBS) evidence, split into an all-time total and a
// current-epoch value that the profiler harvests at each epoch horizon.
type PageDescriptor struct {
	Frame PFN
	Tier  TierID
	PID   int // owning process, -1 when free
	VPage VPN // virtual page currently mapped to this frame
	Flags PageFlags

	// ShadowLink pairs a shadowed primary with its shadow frame:
	// on a FlagShadowed frame it names the shadow, on a FlagShadow
	// frame it names the primary. Meaningless unless one of those
	// flags is set.
	ShadowLink PFN

	// Profiling state (the paper's extended struct page).
	AbitTotal  uint64 // A-bit observations, all time
	TraceTotal uint64 // IBS/PEBS samples, all time
	AbitEpoch  uint32 // A-bit observations this epoch
	TraceEpoch uint32 // trace samples this epoch

	// Write-path profiling state: D-bit-set events logged by the
	// PML engine (an extension; the paper focuses on the A bit for
	// performance and mentions PML for write tracking).
	WriteTotal uint64
	WriteEpoch uint32

	// Device-side profiling state: accesses observed by a CXL-resident
	// hot-page tracker (the NeoMem model — counters live on the device
	// and see physical traffic with zero host sampling cost). Always
	// zero on frames outside device tiers and in runs without a
	// devprof tracker.
	DevTotal uint64
	DevEpoch uint32

	// Ground truth maintained by the simulator itself (invisible to
	// any profiling method): demand accesses served from memory, the
	// quantity the paper's Fig. 6 hitrate and Oracle policy are
	// defined over.
	TrueTotal uint64
	TrueEpoch uint32
}

// Hotness returns the current-epoch hotness rank: the paper's simple
// sum of A-bit and trace-based samples (§IV step 1, justified by
// Fig. 2's same-order-of-magnitude event populations).
func (pd *PageDescriptor) Hotness() uint64 {
	return uint64(pd.AbitEpoch) + uint64(pd.TraceEpoch)
}

// ResetEpoch folds the epoch counters into the totals and zeroes them.
func (pd *PageDescriptor) ResetEpoch() {
	pd.AbitTotal += uint64(pd.AbitEpoch)
	pd.TraceTotal += uint64(pd.TraceEpoch)
	pd.WriteTotal += uint64(pd.WriteEpoch)
	pd.DevTotal += uint64(pd.DevEpoch)
	pd.TrueTotal += uint64(pd.TrueEpoch)
	pd.AbitEpoch = 0
	pd.TraceEpoch = 0
	pd.WriteEpoch = 0
	pd.DevEpoch = 0
	pd.TrueEpoch = 0
}

// Allocated reports whether the frame backs a live mapping.
func (pd *PageDescriptor) Allocated() bool { return pd.Flags&FlagAllocated != 0 }
