package mem

import (
	"errors"
	"strings"
	"testing"
)

func TestParseTierChainPresets(t *testing.T) {
	c, err := ParseTierChain("dram:1024/cxl:2048/nvm:8192")
	if err != nil {
		t.Fatalf("ParseTierChain: %v", err)
	}
	if len(c) != 3 {
		t.Fatalf("got %d tiers, want 3", len(c))
	}
	want := []TierSpec{
		{Name: "dram", Frames: 1024, ReadLatency: 80, WriteLatency: 80},
		{Name: "cxl", Frames: 2048, ReadLatency: 140, WriteLatency: 180, Device: true},
		{Name: "nvm", Frames: 8192, ReadLatency: 320, WriteLatency: 640},
	}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("tier %d = %+v, want %+v", i, c[i], want[i])
		}
	}
	if !c.HasDevice() {
		t.Error("chain with a cxl tier reports no device")
	}
	if c.LastTier() != TierID(2) {
		t.Errorf("LastTier = %d, want 2", c.LastTier())
	}
}

func TestParseTierChainExplicitAndDev(t *testing.T) {
	c, err := ParseTierChain("fast:512:10:20/slow:4096:100:200:dev")
	if err != nil {
		t.Fatalf("ParseTierChain: %v", err)
	}
	if c[0].Device || !c[1].Device {
		t.Errorf("device flags wrong: %+v", c)
	}
	if c[1].ReadLatency != 100 || c[1].WriteLatency != 200 {
		t.Errorf("explicit latencies lost: %+v", c[1])
	}
}

func TestParseTierChainErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"dram:1024",             // single tier: not a hierarchy
		"dram:0/nvm:100",        // zero capacity
		"dram:-5/nvm:100",       // negative capacity
		"dram/nvm:100",          // missing frames
		"dram:10:80/nvm:100",    // read without write
		"foo:10/nvm:100",        // unknown media without latencies
		"dram:10:0:80/nvm:100",  // zero latency
		"dram:ten/nvm:100",      // junk frames
		"dram:10:a:b/nvm:100",   // junk latencies
		"dram:10/nvm:100/",      // trailing separator (empty tier)
		"dram:10:80:80:devx/x",  // junk trailing marker field count
		"dram:10//nvm:100",      // empty middle tier
		":10/nvm:100",           // empty name
		"dram:10/nvm:100:1:2:3", // too many fields
	}
	for _, spec := range cases {
		if _, err := ParseTierChain(spec); err == nil {
			t.Errorf("ParseTierChain(%q) = nil error, want failure", spec)
		} else if !errors.Is(err, ErrBadChain) {
			t.Errorf("ParseTierChain(%q) error %v does not wrap ErrBadChain", spec, err)
		}
	}
}

func TestTierChainRoundTrip(t *testing.T) {
	specs := []string{
		"dram:1024/nvm:8192",
		"dram:1024/cxl:2048/nvm:8192",
		"dram:64/cxl:128/nvm:256/ssd:4096",
		"fast:512:10:20/slow:4096:100:200:dev",
	}
	for _, spec := range specs {
		c, err := ParseTierChain(spec)
		if err != nil {
			t.Fatalf("ParseTierChain(%q): %v", spec, err)
		}
		again, err := ParseTierChain(c.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", c.String(), err)
		}
		if c.String() != again.String() {
			t.Errorf("round-trip drift: %q -> %q", c.String(), again.String())
		}
		for i := range c {
			if c[i] != again[i] {
				t.Errorf("spec %q tier %d: %+v != %+v", spec, i, c[i], again[i])
			}
		}
	}
}

// TestDefaultTiersIsAChain pins that the legacy two-tier layout is
// expressible as a chain: the differential contract's config-level
// half.
func TestDefaultTiersIsAChain(t *testing.T) {
	legacy := DefaultTiers(1024, 8192)
	c, err := ParseTierChain("dram:1024/nvm:8192")
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		if legacy[i] != c[i] {
			t.Errorf("tier %d: DefaultTiers %+v != chain %+v", i, legacy[i], c[i])
		}
	}
}

// FuzzParseTierChain hammers the parser: it must never panic, every
// accepted chain must validate, and printing then reparsing an
// accepted chain must be the identity.
func FuzzParseTierChain(f *testing.F) {
	f.Add("dram:1024/nvm:8192")
	f.Add("dram:1024/cxl:2048/nvm:8192")
	f.Add("fast:512:10:20/slow:4096:100:200:dev")
	f.Add("dram:1024")
	f.Add("all=0.1")
	f.Add(":::/:::")
	f.Add("dram:1024/" + strings.Repeat("nvm:1/", 40) + "ssd:2")
	f.Fuzz(func(t *testing.T, text string) {
		c, err := ParseTierChain(text)
		if err != nil {
			if !errors.Is(err, ErrBadChain) {
				t.Fatalf("ParseTierChain(%q) error %v does not wrap ErrBadChain", text, err)
			}
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("accepted chain %q fails Validate: %v", text, verr)
		}
		printed := c.String()
		again, err := ParseTierChain(printed)
		if err != nil {
			t.Fatalf("String() of accepted %q does not reparse: %q: %v", text, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("print/parse not a fixed point: %q -> %q", printed, again.String())
		}
	})
}
