package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"tieredmem/internal/fault"
	"tieredmem/internal/order"
)

func TestAddressMath(t *testing.T) {
	if PFNOf(0x12345) != 0x12 {
		t.Errorf("PFNOf(0x12345) = %#x, want 0x12", PFNOf(0x12345))
	}
	if PFN(0x12).PAddrOf() != 0x12000 {
		t.Errorf("PAddrOf = %#x, want 0x12000", PFN(0x12).PAddrOf())
	}
	if VPNOf(0xabcdef) != 0xabc {
		t.Errorf("VPNOf(0xabcdef) = %#x, want 0xabc", VPNOf(0xabcdef))
	}
	if VPN(0xabc).VAddrOf() != 0xabc000 {
		t.Errorf("VAddrOf = %#x, want 0xabc000", VPN(0xabc).VAddrOf())
	}
}

func TestAddressRoundtrip(t *testing.T) {
	f := func(addr uint64) bool {
		return PFNOf(addr).PAddrOf() == addr&^uint64(PageMask) &&
			VPNOf(addr).VAddrOf() == addr&^uint64(PageMask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTierIDString(t *testing.T) {
	if FastTier.String() != "fast" || SlowTier.String() != "slow" {
		t.Errorf("tier names: %v, %v", FastTier, SlowTier)
	}
	if TierID(5).String() != "tier(5)" {
		t.Errorf("TierID(5) = %v", TierID(5))
	}
}

func TestPageDescriptorHotness(t *testing.T) {
	pd := PageDescriptor{AbitEpoch: 3, TraceEpoch: 5}
	if pd.Hotness() != 8 {
		t.Errorf("Hotness = %d, want 8 (plain sum)", pd.Hotness())
	}
}

func TestPageDescriptorResetEpoch(t *testing.T) {
	pd := PageDescriptor{AbitEpoch: 3, TraceEpoch: 5, TrueEpoch: 7,
		AbitTotal: 10, TraceTotal: 20, TrueTotal: 30}
	pd.ResetEpoch()
	if pd.AbitEpoch != 0 || pd.TraceEpoch != 0 || pd.TrueEpoch != 0 {
		t.Errorf("epoch counters not cleared: %+v", pd)
	}
	if pd.AbitTotal != 13 || pd.TraceTotal != 25 || pd.TrueTotal != 37 {
		t.Errorf("totals not accumulated: %+v", pd)
	}
}

func TestTierSpecValidate(t *testing.T) {
	good := TierSpec{Name: "x", Frames: 1, ReadLatency: 1, WriteLatency: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	for _, bad := range []TierSpec{
		{Name: "x", Frames: 0, ReadLatency: 1, WriteLatency: 1},
		{Name: "x", Frames: 1, ReadLatency: 0, WriteLatency: 1},
		{Name: "x", Frames: 1, ReadLatency: 1, WriteLatency: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid spec %+v accepted", bad)
		}
	}
}

func newTestMem(t *testing.T, fast, slow int) *PhysMem {
	t.Helper()
	pm, err := NewPhysMem(DefaultTiers(fast, slow))
	if err != nil {
		t.Fatalf("NewPhysMem: %v", err)
	}
	return pm
}

func TestAllocBasics(t *testing.T) {
	pm := newTestMem(t, 4, 4)
	if pm.TotalFrames() != 8 {
		t.Fatalf("TotalFrames = %d, want 8", pm.TotalFrames())
	}
	pfn, err := pm.Alloc(FastTier, 1, 100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	pd := pm.Page(pfn)
	if !pd.Allocated() || pd.PID != 1 || pd.VPage != 100 || pd.Tier != FastTier {
		t.Errorf("descriptor not initialized: %+v", pd)
	}
	if pm.UsedFrames(FastTier) != 1 || pm.FreeFrames(FastTier) != 3 {
		t.Errorf("used/free = %d/%d, want 1/3", pm.UsedFrames(FastTier), pm.FreeFrames(FastTier))
	}
}

func TestAllocSpillsToSlowTier(t *testing.T) {
	pm := newTestMem(t, 2, 4)
	for i := 0; i < 2; i++ {
		if _, err := pm.Alloc(FastTier, 1, VPN(i)); err != nil {
			t.Fatalf("Alloc %d: %v", i, err)
		}
	}
	pfn, err := pm.Alloc(FastTier, 1, 99)
	if err != nil {
		t.Fatalf("spill Alloc: %v", err)
	}
	if pm.TierOf(pfn) != SlowTier {
		t.Errorf("third frame in tier %v, want spill to slow", pm.TierOf(pfn))
	}
}

func TestAllocOOM(t *testing.T) {
	pm := newTestMem(t, 1, 1)
	pm.Alloc(FastTier, 1, 0)
	pm.Alloc(FastTier, 1, 1)
	if _, err := pm.Alloc(FastTier, 1, 2); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestAllocInNoSpill(t *testing.T) {
	pm := newTestMem(t, 1, 4)
	pm.AllocIn(FastTier, 1, 0)
	_, err := pm.AllocIn(FastTier, 1, 1)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("AllocIn spilled or wrong error: %v", err)
	}
	// The typed sentinel is what the mover's retry logic branches on.
	if !errors.Is(err, ErrTierFull) {
		t.Errorf("AllocIn error %v does not wrap ErrTierFull", err)
	}
	if pm.UsedFrames(SlowTier) != 0 {
		t.Errorf("AllocIn leaked into slow tier")
	}
}

func TestAllocInFaultInjection(t *testing.T) {
	pm := newTestMem(t, 8, 8)
	spec, err := fault.ParseSpec("mem.enomem=1")
	if err != nil {
		t.Fatal(err)
	}
	pm.SetFaultPlane(fault.New(spec, 42))
	_, err = pm.AllocIn(FastTier, 1, 0)
	if !errors.Is(err, ErrTierFull) {
		t.Fatalf("injected AllocIn error = %v, want ErrTierFull", err)
	}
	// Injected pressure is transient and must not wrap the permanent
	// out-of-frames condition: frames were free.
	if errors.Is(err, ErrOutOfMemory) {
		t.Errorf("injected pressure wraps ErrOutOfMemory: %v", err)
	}
	if pm.UsedFrames(FastTier) != 0 {
		t.Errorf("failed AllocIn claimed a frame")
	}
	// Demand allocation is never injected.
	if _, err := pm.Alloc(FastTier, 1, 0); err != nil {
		t.Errorf("Alloc under fault plane: %v", err)
	}
	// A zero-rate plane injects nothing.
	pm2 := newTestMem(t, 1, 1)
	pm2.SetFaultPlane(fault.New(fault.Spec{}, 42))
	if _, err := pm2.AllocIn(FastTier, 1, 0); err != nil {
		t.Errorf("zero-rate AllocIn: %v", err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	pm := newTestMem(t, 2, 2)
	pfn, _ := pm.Alloc(FastTier, 1, 0)
	pm.Free(pfn)
	if pm.Page(pfn).Allocated() {
		t.Errorf("freed frame still allocated")
	}
	if pm.FreeFrames(FastTier) != 2 {
		t.Errorf("free count = %d, want 2", pm.FreeFrames(FastTier))
	}
	// The frame must be allocatable again.
	seen := map[PFN]bool{}
	for i := 0; i < 2; i++ {
		p, err := pm.Alloc(FastTier, 1, VPN(i))
		if err != nil {
			t.Fatalf("re-alloc: %v", err)
		}
		seen[p] = true
	}
	if !seen[pfn] {
		t.Errorf("freed frame %d never reused", pfn)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	pm := newTestMem(t, 2, 2)
	pfn, _ := pm.Alloc(FastTier, 1, 0)
	pm.Free(pfn)
	defer func() {
		if recover() == nil {
			t.Errorf("double free did not panic")
		}
	}()
	pm.Free(pfn)
}

func TestAllocResetsProfilingState(t *testing.T) {
	pm := newTestMem(t, 2, 2)
	pfn, _ := pm.Alloc(FastTier, 1, 0)
	pd := pm.Page(pfn)
	pd.AbitEpoch, pd.TraceEpoch, pd.TrueEpoch = 1, 2, 3
	pd.AbitTotal, pd.TraceTotal, pd.TrueTotal = 4, 5, 6
	pm.Free(pfn)
	pfn2, _ := pm.Alloc(FastTier, 2, 7)
	if pfn2 != pfn {
		// Next-fit may pick the other frame first; force reuse.
		pm.Free(pfn2)
		pfn2, _ = pm.Alloc(FastTier, 2, 7)
	}
	pd2 := pm.Page(pfn2)
	if pd2.AbitEpoch != 0 || pd2.TraceTotal != 0 || pd2.TrueTotal != 0 {
		t.Errorf("profiling state leaked across allocations: %+v", pd2)
	}
}

func TestAllocHugeAlignedContiguous(t *testing.T) {
	pm := newTestMem(t, 3*HugePages, HugePages)
	base, err := pm.AllocHuge(FastTier, 1, 0)
	if err != nil {
		t.Fatalf("AllocHuge: %v", err)
	}
	if uint64(base)%HugePages != 0 {
		t.Errorf("base PFN %d not 2MiB aligned", base)
	}
	for i := 0; i < HugePages; i++ {
		pd := pm.Page(base + PFN(i))
		if !pd.Allocated() || pd.PID != 1 || pd.VPage != VPN(i) {
			t.Fatalf("frame %d not claimed correctly: %+v", i, pd)
		}
	}
	if pm.UsedFrames(FastTier) != HugePages {
		t.Errorf("used = %d, want %d", pm.UsedFrames(FastTier), HugePages)
	}
}

func TestAllocHugeMisalignedVPN(t *testing.T) {
	pm := newTestMem(t, 2*HugePages, HugePages)
	if _, err := pm.AllocHuge(FastTier, 1, 3); err == nil {
		t.Errorf("misaligned huge vpn accepted")
	}
}

func TestAllocHugeFragmentationFallback(t *testing.T) {
	pm := newTestMem(t, 2*HugePages, 0+HugePages)
	// Fragment the fast tier: one 4 KiB page in each aligned chunk.
	// Base pages allocate bottom-up, so poke holes manually by
	// allocating until each chunk has at least one used frame.
	for i := 0; i < 2*HugePages; i += HugePages {
		if _, err := pm.Alloc(FastTier, 1, VPN(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Both fast chunks hold a base page now? Base pages allocate
	// next-fit from the bottom, so only the first chunk is dirty;
	// dirty the second chunk's first frame explicitly via many allocs.
	for i := 0; pm.FreeFrames(FastTier) > HugePages-2 && i < HugePages; i++ {
		if _, err := pm.Alloc(FastTier, 1, VPN(2000+i)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := pm.AllocHuge(FastTier, 1, 0)
	// Either it found a clean chunk (fine) or it reports
	// ErrNoContiguous / spills to slow: never a different error.
	if err != nil && !errors.Is(err, ErrNoContiguous) && !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestAllocHugeSpillsToSlow(t *testing.T) {
	pm := newTestMem(t, HugePages/2, 2*HugePages) // fast tier too small
	base, err := pm.AllocHuge(FastTier, 1, 0)
	if err != nil {
		t.Fatalf("AllocHuge: %v", err)
	}
	if pm.TierOf(base) != SlowTier {
		t.Errorf("huge allocation in tier %v, want spill to slow", pm.TierOf(base))
	}
}

func TestFreeHuge(t *testing.T) {
	pm := newTestMem(t, 2*HugePages, HugePages)
	base, err := pm.AllocHuge(FastTier, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pm.FreeHuge(base)
	if pm.UsedFrames(FastTier) != 0 {
		t.Errorf("used = %d after FreeHuge, want 0", pm.UsedFrames(FastTier))
	}
}

func TestHugeAndBaseCoexist(t *testing.T) {
	pm := newTestMem(t, 4*HugePages, HugePages)
	var basePages []PFN
	for i := 0; i < 100; i++ {
		p, err := pm.Alloc(FastTier, 1, VPN(i))
		if err != nil {
			t.Fatal(err)
		}
		basePages = append(basePages, p)
	}
	hbase, err := pm.AllocHuge(FastTier, 2, 0)
	if err != nil {
		t.Fatalf("AllocHuge with base pages present: %v", err)
	}
	for _, bp := range basePages {
		if bp >= hbase && bp < hbase+HugePages {
			t.Fatalf("huge run overlaps base page %d", bp)
		}
	}
}

func TestForEachAllocated(t *testing.T) {
	pm := newTestMem(t, 4, 4)
	pm.Alloc(FastTier, 1, 0)
	pm.Alloc(SlowTier, 1, 1)
	count := 0
	var last PFN
	first := true
	pm.ForEachAllocated(func(pd *PageDescriptor) {
		count++
		if !first && pd.Frame <= last {
			t.Errorf("not ascending: %d after %d", pd.Frame, last)
		}
		last, first = pd.Frame, false
	})
	if count != 2 {
		t.Errorf("visited %d frames, want 2", count)
	}
}

func TestResetEpochAll(t *testing.T) {
	pm := newTestMem(t, 4, 4)
	pfn, _ := pm.Alloc(FastTier, 1, 0)
	pd := pm.Page(pfn)
	pd.AbitEpoch = 5
	pm.ResetEpochAll()
	if pd.AbitEpoch != 0 || pd.AbitTotal != 5 {
		t.Errorf("ResetEpochAll: %+v", pd)
	}
}

// TestAllocatorConservation is a property test: any interleaving of
// allocs and frees conserves frame counts and never double-assigns a
// frame.
func TestAllocatorConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		pm, err := NewPhysMem(DefaultTiers(32, 32))
		if err != nil {
			return false
		}
		live := map[PFN]bool{}
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				pfn := order.SortedKeys(live)[0]
				pm.Free(pfn)
				delete(live, pfn)
				continue
			}
			pfn, err := pm.Alloc(FastTier, 1, VPN(op))
			if err != nil {
				if !errors.Is(err, ErrOutOfMemory) {
					return false
				}
				continue
			}
			if live[pfn] {
				return false // double assignment
			}
			live[pfn] = true
		}
		used := pm.UsedFrames(FastTier) + pm.UsedFrames(SlowTier)
		free := pm.FreeFrames(FastTier) + pm.FreeFrames(SlowTier)
		return used == len(live) && used+free == pm.TotalFrames()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
