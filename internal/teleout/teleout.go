// Package teleout is the thin file-output layer the CLIs share for
// telemetry artifacts: Chrome trace_viewer JSON, JSONL event logs, and
// runtime pprof profiles. It exists so cmd/tmpsim, cmd/tmpprof, and
// cmd/tmpbench wire the same flags to the same bytes — the exporters
// themselves live in internal/telemetry and stay IO-free.
package teleout

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"tieredmem/internal/provenance"
	"tieredmem/internal/telemetry"
)

// WriteTrace writes a Chrome trace_viewer / Perfetto loadable JSON
// file for the labeled runs.
func WriteTrace(path string, runs []telemetry.Labeled) error {
	return writeWith(path, runs, telemetry.WriteChromeTrace)
}

// WriteEvents writes the JSONL event log for the labeled runs.
func WriteEvents(path string, runs []telemetry.Labeled) error {
	return writeWith(path, runs, telemetry.WriteJSONL)
}

func writeWith(path string, runs []telemetry.Labeled, write func(w io.Writer, runs []telemetry.Labeled) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := write(bw, runs); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// StartCPUProfile begins a pprof CPU profile; the returned stop
// function ends it and closes the file.
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("teleout: starting cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteMemProfile writes an allocs-space heap profile after a final GC,
// the shape `go tool pprof` expects from -memprofile flags.
func WriteMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("teleout: writing mem profile: %w", err)
	}
	return f.Close()
}

// WriteProvenance writes the decision-provenance JSONL log for the
// given runs (one run header per arm, pages in canonical order).
func WriteProvenance(path string, logs []provenance.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := provenance.WriteLog(bw, logs); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
