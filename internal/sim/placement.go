package sim

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/emul"
	"tieredmem/internal/fault"
	"tieredmem/internal/fault/invariant"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
	"tieredmem/internal/provenance"
	"tieredmem/internal/report"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// PlacementConfig assembles an end-to-end tiered-memory run (§VI-C):
// a machine whose fast tier holds only 1/Ratio of the footprint, a
// placement arm (first-touch baseline or TMP-driven policy), and
// optionally the BadgerTrap emulation cost model layered on top.
type PlacementConfig struct {
	CPU cpu.Config
	TMP core.Config
	// Ratio is the footprint:fast-tier ratio (the paper's 4 GB fast /
	// 60 GB slow testbed is ~1/16).
	Ratio int
	// Tiers, when non-nil, is the machine's full tier chain and takes
	// the place of the legacy footprint/Ratio two-tier sizing (use
	// DefaultChain for a workload-sized chain). The policy's tier-1
	// capacity is the chain's top tier less the huge-fault slack. nil
	// keeps the two-tier path bit-for-bit.
	Tiers mem.TierChain
	// Policy drives migrations at epoch horizons; nil runs the
	// first-come-first-allocate baseline with no mover and no
	// profiler.
	Policy policy.Policy
	// Method selects the profiling evidence the policy ranks by.
	Method core.Method
	// EpochNS is the placement epoch.
	EpochNS   int64
	TotalRefs int
	BatchSize int
	Huge      bool
	// EmulCosts, when non-nil, enables the BadgerTrap emulation
	// framework with these costs (PaperCosts for §VI-C).
	EmulCosts *emul.Costs
	// Khugepaged enables the THP collapser: splits from partial-huge
	// migrations are periodically repaired so the address space does
	// not degrade to 4 KiB translations for the rest of the run.
	Khugepaged bool
	// Tracer, when non-nil, records structured telemetry for the run
	// (events, counters). Telemetry is inert: results are byte-identical
	// with or without it.
	Tracer *telemetry.Tracer
	// Faults, when non-nil, is the run's fault-injection plane (one
	// plane per run, like Tracer): it can drop IBS samples, abort
	// A-bit walks, wrap HWPC counters, and fail migrations. A nil
	// plane — and one with an all-zero spec — is inert.
	Faults *fault.Plane
	// Prov, when non-nil, is the run's decision-provenance flight
	// recorder (one recorder per run, like Tracer): it captures each
	// page's per-epoch evidence, rank position, and verdict. Inert like
	// telemetry: results are byte-identical with or without it.
	Prov *provenance.Recorder
	// Invariants asserts the epoch invariant checker (frame
	// conservation, mapping bijection, mover accounting) after every
	// placement pass; it is forced on whenever Faults can inject.
	Invariants bool
	// TxMigration switches the mover to the transactional engine:
	// multi-phase migrations (claim, copy-while-mapped, verify-clean,
	// remap) that abort on a mid-copy write, plus non-exclusive shadow
	// copies making the re-demotion of a clean page a zero-copy remap.
	// Off runs the legacy single-phase mover bit-for-bit.
	TxMigration bool
	// AdmissionFrac bounds per-epoch migration traffic to this fraction
	// of EpochNS worth of simulated line-transfer time (the bandwidth
	// admission controller). <= 0 disables admission control.
	AdmissionFrac float64
}

// DefaultPlacementConfig mirrors DefaultConfig for placement runs.
func DefaultPlacementConfig(w workload.Workload, ibsPeriod, totalRefs, ratio int, p policy.Policy, m core.Method) PlacementConfig {
	cpuCfg := cpu.DefaultConfig()
	cpuCfg.SoftCostDiv = 1_000_000_000 / ScaledSecond
	tmp := core.DefaultConfig(ibsPeriod)
	tmp.Abit.Interval = ScaledSecond
	tmp.FilterInterval = ScaledSecond
	tmp.HWPC.Window = ScaledSecond / 10
	return PlacementConfig{
		CPU:        cpuCfg,
		TMP:        tmp,
		Ratio:      ratio,
		Policy:     p,
		Method:     m,
		EpochNS:    ScaledSecond,
		TotalRefs:  totalRefs,
		BatchSize:  1024,
		Huge:       true,
		Khugepaged: true,
	}
}

// DefaultChain sizes an n-tier chain (2 ≤ n ≤ 4) for a workload the
// way the legacy sizing carves a two-tier machine: the top tier holds
// 1/ratio of the footprint (plus huge-fault slack), the bottom tier
// alone can absorb the whole footprint with 25% headroom, and middle
// tiers step geometrically between them. The 3- and 4-tier shapes
// place a device-profiled CXL expander directly under DRAM, so a
// devprof tracker has a tier to observe. n == 2 reproduces the legacy
// DefaultTiers layout element for element.
func DefaultChain(w workload.Workload, ratio, n int) (mem.TierChain, error) {
	if ratio <= 0 {
		ratio = 16
	}
	foot := int(w.FootprintBytes() >> mem.PageShift)
	top := foot/ratio + mem.HugePages
	bottom := foot + foot/4 + mem.HugePages
	var spec string
	switch n {
	case 2:
		spec = fmt.Sprintf("dram:%d/nvm:%d", top, bottom)
	case 3:
		spec = fmt.Sprintf("dram:%d/cxl:%d/nvm:%d", top, 2*foot/ratio+mem.HugePages, bottom)
	case 4:
		spec = fmt.Sprintf("dram:%d/cxl:%d/nvm:%d/ssd:%d",
			top, 2*foot/ratio+mem.HugePages, 4*foot/ratio+mem.HugePages, bottom)
	default:
		return nil, fmt.Errorf("sim: no default %d-tier chain (want 2..4): %w", n, mem.ErrBadChain)
	}
	return mem.ParseTierChain(spec)
}

// PlacementResult summarizes an end-to-end run.
type PlacementResult struct {
	Workload   string
	Arm        string // "first-touch" or the policy/method name
	Refs       int
	DurationNS int64
	NumCores   int
	// Tier-1 hitrate over memory accesses, measured live.
	MemAccesses  uint64
	Tier1Hits    uint64
	Promotions   uint64
	Demotions    uint64
	EmulInjected int64
	EmulFaults   uint64

	// Robustness accounting (all zero in unfaulted runs). The mover's
	// failure aggregate is partitioned by reason, retry outcomes track
	// the deferred-retry queue, and FaultsInjected totals the plane's
	// firings across every site.
	Failed          uint64
	FailedCapacity  uint64
	FailedPinned    uint64
	FailedVanished  uint64
	FailedSplit     uint64
	Retried         uint64
	RetrySucceeded  uint64
	RetrySuperseded uint64
	RetryDropped    uint64
	FaultsInjected  uint64
	// Transactional-migration accounting (all zero unless TxMigration):
	// transaction outcomes, shadow-copy hits, and the admission
	// controller's decisions (the latter all zero unless AdmissionFrac).
	TxStarted          uint64
	TxCommitted        uint64
	AbortedDirty       uint64
	ShadowHits         uint64
	ShadowStale        uint64
	AdmittedPromotions uint64
	AdmittedDemotions  uint64
	DeferredAdmission  uint64
	RejectedPromotions uint64
	RejectedDemotions  uint64
	// Quarantined lists mechanisms the profiler permanently disabled,
	// in fixed (ibs, abit, hwpc, devprof) order.
	Quarantined []string
}

// Hitrate returns the live tier-1 memory hitrate.
func (r PlacementResult) Hitrate() float64 {
	if r.MemAccesses == 0 {
		return 0
	}
	return float64(r.Tier1Hits) / float64(r.MemAccesses)
}

// FaultAttribution assembles the fault-attribution section for one
// placement run: per-site injection counts from the plane, then the
// mover's reason-partitioned failures and retry-queue outcomes, in a
// fixed order so the rendered report is deterministic.
func FaultAttribution(p *fault.Plane, res PlacementResult) []report.FaultRow {
	return MergedFaultAttribution([]*fault.Plane{p}, res)
}

// RunPlacement executes an end-to-end tiered run and returns its
// result. Speedup is computed by the caller as baseline duration over
// policy duration.
func RunPlacement(cfg PlacementConfig, w workload.Workload) (PlacementResult, error) {
	if cfg.TotalRefs <= 0 {
		return PlacementResult{}, fmt.Errorf("sim: TotalRefs %d must be positive", cfg.TotalRefs)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	if cfg.EpochNS <= 0 {
		cfg.EpochNS = ScaledSecond
	}
	if cfg.Ratio <= 0 {
		cfg.Ratio = 16
	}
	footPages := int(w.FootprintBytes() >> mem.PageShift)
	tiers := []mem.TierSpec(cfg.Tiers)
	// Capacity the policy may fill: leave the huge-fault slack out so
	// promotions never fail on a full tier.
	capacity := footPages / cfg.Ratio
	if tiers == nil {
		fast := footPages/cfg.Ratio + mem.HugePages // slack so huge faults can land
		slow := footPages + footPages/4 + mem.HugePages
		tiers = mem.DefaultTiers(fast, slow)
	} else {
		capacity = cfg.Tiers[0].Frames - mem.HugePages
		if capacity < 0 {
			capacity = 0
		}
	}
	m, err := cpu.NewMachine(cfg.CPU, tiers)
	if err != nil {
		return PlacementResult{}, err
	}
	if cfg.Huge {
		m.SetHugeHint(workload.HugeHintFor(w))
	}

	res := PlacementResult{Workload: w.Name(), Arm: "first-touch", NumCores: len(m.Cores())}

	var prof *core.Profiler
	var mover *policy.Mover
	if cfg.Policy != nil {
		res.Arm = fmt.Sprintf("%s/%s", cfg.Policy.Name(), cfg.Method)
		prof, err = core.New(cfg.TMP, m, nil)
		if err != nil {
			return PlacementResult{}, err
		}
		for _, pid := range w.Processes() {
			prof.Register(pid)
		}
		mover = policy.NewMover(m)
		mover.Transactional = cfg.TxMigration
		mover.AdmissionBudgetNS = policy.AdmissionBudgetNS(cfg.EpochNS, cfg.AdmissionFrac)
		if cfg.Tracer.Enabled() {
			prof.SetTracer(cfg.Tracer)
			mover.SetTracer(cfg.Tracer)
		}
		if cfg.Prov.Enabled() {
			cfg.Prov.SetTracer(cfg.Tracer)
			mover.SetProvenance(cfg.Prov)
		}
	}
	if cfg.Tracer.Enabled() {
		m.Phys.SetTracer(cfg.Tracer)
	}
	if cfg.Faults != nil {
		m.Phys.SetFaultPlane(cfg.Faults)
		if prof != nil {
			prof.SetFaultPlane(cfg.Faults)
		}
		if mover != nil {
			mover.SetFaultPlane(cfg.Faults)
		}
		if cfg.Tracer.Enabled() {
			cfg.Faults.SetTracer(cfg.Tracer)
		}
	}
	// Under fault injection (or on request) every placement pass must
	// leave the machine conserved: no frame lost or duplicated, every
	// mapping backed, mover counters consistent. The checker only
	// reads, so checked runs are byte-identical to unchecked ones.
	var inv *invariant.Checker
	if cfg.Invariants || cfg.Faults.Enabled() {
		inv = invariant.New()
	}
	var collapser *policy.Collapser
	if cfg.Khugepaged && cfg.Huge {
		collapser = policy.NewCollapser(m)
	}

	var em *emul.Emulator
	if cfg.EmulCosts != nil {
		costs := *cfg.EmulCosts
		if costs.WindowNS <= 0 {
			costs.WindowNS = cfg.EpochNS
		}
		em, err = emul.New(costs, m)
		if err != nil {
			return PlacementResult{}, err
		}
		if mover != nil {
			// Under emulation the paper's migration cost replaces
			// the mover's own estimate.
			mover.CostPerPageNS = costs.MigrationNS
		}
	}

	pids := w.Processes()

	buf := make([]trace.Ref, cfg.BatchSize)
	// Harvest scratch reused across epochs: the placement loop drops
	// each harvest after selection, so steady-state epochs run
	// allocation-free (HarvestEpochInto recycles ep's backing array).
	var ep core.EpochStats
	nextEpoch := cfg.EpochNS
	executed := 0
	for executed < cfg.TotalRefs {
		n := cfg.BatchSize
		if remain := cfg.TotalRefs - executed; remain < n {
			n = remain
		}
		batch := buf[:n]
		w.Fill(batch)
		for i := range batch {
			o, err := m.Execute(batch[i])
			if err != nil {
				return res, fmt.Errorf("sim: executing ref %d: %w", executed+i, err)
			}
			if o.Source.IsMemory() {
				res.MemAccesses++
				if o.Source == trace.SrcTier1 {
					res.Tier1Hits++
				}
			}
		}
		executed += n
		now := m.Now()
		if prof != nil {
			prof.Tick(now)
		}
		if em != nil {
			em.TickIfDue(now)
		}
		if now >= nextEpoch {
			if prof != nil {
				prof.HarvestEpochInto(&ep)
				// Quarantine degrades the requested evidence method to
				// whatever mechanisms survive; without faults nothing
				// is ever quarantined and this is the identity.
				method := prof.EffectiveMethod(cfg.Method)
				sel := cfg.Policy.Select(ep, core.EpochStats{}, method, capacity)
				if cfg.Prov.Enabled() {
					// Record the harvest before the mover runs so the
					// evidence snapshot predates any tier transition.
					cfg.Prov.BeginEpoch(ep.Epoch, method, cfg.Method, mover.MinPromoteRank)
					cfg.Prov.ObserveHarvest(ep, func(k core.PageKey) bool {
						_, ok := sel[k]
						return ok
					})
				}
				promoted, demoted := mover.ApplySelection(sel, core.RanksOf(ep, method))
				cfg.Prov.FinishEpoch()
				if em != nil && promoted+demoted > 0 {
					extra := em.ChargeMigration(promoted + demoted)
					m.Core(0).AdvanceClock(extra)
					// Newly demoted pages must be re-protected now,
					// not at the next window.
					em.Repoison()
				}
			} else {
				m.Phys.ResetEpochAll()
				// The baseline arm has no profiler to cut telemetry
				// epochs; cut here so its counter deltas stay aligned
				// to the same horizons as the policy arms.
				cfg.Tracer.CutEpoch(now, 0)
			}
			if collapser != nil {
				// khugepaged cadence: repair a couple of split
				// chunks per epoch.
				collapser.Collapse(pids, 2)
			}
			if inv != nil {
				if err := inv.Check(m.Phys, m.Tables(), mover); err != nil {
					return res, fmt.Errorf("sim: placement epoch at %dns: %w", now, err)
				}
			}
			// One placement pass per batch even if multiple epoch
			// boundaries elapsed (migration work advances the clock;
			// re-running placement on empty harvests would thrash).
			for nextEpoch <= now {
				nextEpoch += cfg.EpochNS
			}
		}
	}
	if inv != nil {
		if err := inv.Check(m.Phys, m.Tables(), mover); err != nil {
			return res, fmt.Errorf("sim: final state: %w", err)
		}
	}
	res.Refs = executed
	res.DurationNS = m.Now()
	if mover != nil {
		res.Promotions = mover.Promotions
		res.Demotions = mover.Demotions
		res.Failed = mover.Failed
		res.FailedCapacity = mover.FailedCapacity
		res.FailedPinned = mover.FailedPinned
		res.FailedVanished = mover.FailedVanished
		res.FailedSplit = mover.FailedSplit
		res.Retried = mover.Retried
		res.RetrySucceeded = mover.RetrySucceeded
		res.RetrySuperseded = mover.RetrySuperseded
		res.RetryDropped = mover.RetryDropped
		res.TxStarted = mover.TxStarted
		res.TxCommitted = mover.TxCommitted
		res.AbortedDirty = mover.AbortedDirty
		res.ShadowHits = mover.ShadowHits
		res.ShadowStale = mover.ShadowStale
		res.AdmittedPromotions = mover.AdmittedPromotions
		res.AdmittedDemotions = mover.AdmittedDemotions
		res.DeferredAdmission = mover.DeferredAdmission
		res.RejectedPromotions = mover.RejectedPromotions
		res.RejectedDemotions = mover.RejectedDemotions
	}
	if prof != nil {
		res.Quarantined = prof.QuarantinedMechanisms()
	}
	res.FaultsInjected = cfg.Faults.TotalInjected()
	if em != nil {
		s := em.Stats()
		res.EmulInjected = s.InjectedNS
		res.EmulFaults = s.Faults
	}
	return res, nil
}
