package sim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/policy"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/workload"
)

var update = flag.Bool("update", false, "rewrite testdata goldens")

// checkGolden compares got against the named fixture, rewriting it
// under -update. The fixtures were generated on the two-tier seed tree
// before the tier-chain generalization landed: they are the
// differential contract that an N-tier-capable simulator configured
// with the legacy two tiers is a strict superset of the seed — same
// ranks, same placement results, same telemetry stream, byte for byte.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(want, []byte(got)) {
		t.Fatalf("output drifted from %s (if the change is intentional, run: go test ./internal/sim -run TestGolden -update)\ngot:\n%s\nwant:\n%s",
			path, head(got, 40), head(string(want), 40))
	}
}

// TestGoldenSeedRanks pins the profiling-run ranked-page stream to the
// pre-refactor fixture: every epoch, every method, every page, every
// counter.
func TestGoldenSeedRanks(t *testing.T) {
	checkGolden(t, "seed_ranks.golden", rankDump(runOnce(t, 42)))
}

// TestGoldenSeedPlacement pins the end-to-end placement result
// (hitrate, migrations, robustness accounting) for the seed machine
// shape: History/combined at ratio 8, the configuration the chaos
// matrix and the CLIs default to.
func TestGoldenSeedPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	checkGolden(t, "seed_placement.golden",
		placementDump(placementUnderFaults(t, "gups", 42, "", 400_000, 16384)))
}

// TestGoldenSeedPlacementFaulted pins a faulted two-tier run: the
// fault plane's per-site streams, the mover's retry queue, and the
// quarantine judgments all feed the dumped counters, so any
// perturbation of the seed decision sequences shows up here.
func TestGoldenSeedPlacementFaulted(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	checkGolden(t, "seed_placement_faulted.golden",
		placementDump(placementUnderFaults(t, "gups", 42, "all=0.1", 400_000, 16384)))
}

// telemetryPlacement is placementUnderFaults with a tracer attached,
// returning the full JSONL export (events, epoch counter cuts, totals).
func telemetryPlacement(t *testing.T, wname string, seed int64, refs, period int) string {
	t.Helper()
	w := workload.MustNew(wname, workload.Config{Seed: seed, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultPlacementConfig(w, period, refs, 8, policy.History{}, core.MethodCombined)
	cfg.Tracer = telemetry.New()
	cfg.Invariants = true
	if _, err := RunPlacement(cfg, w); err != nil {
		t.Fatalf("RunPlacement: %v", err)
	}
	var b bytes.Buffer
	if err := telemetry.WriteJSONL(&b, []telemetry.Labeled{{Label: "golden", Tracer: cfg.Tracer}}); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return b.String()
}

// TestGoldenSeedTelemetry pins the telemetry event stream of a seed
// placement run: event order, counter names, and epoch cuts must not
// move under the tier-chain refactor (new counters may only appear in
// runs that actually configure the new machinery).
func TestGoldenSeedTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	checkGolden(t, "seed_telemetry.golden",
		telemetryPlacement(t, "gups", 42, 400_000, 16384))
}

// TestGoldenSeedReport pins the human-readable fault-attribution table
// rendered from a faulted seed run — the report-surface half of the
// differential contract.
func TestGoldenSeedReport(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	res := placementUnderFaults(t, "gups", 42, "all=0.1", 400_000, 16384)
	spec, err := fault.ParseSpec("all=0.1")
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive the plane the run consumed so attribution rows carry
	// the same injection counts.
	w := workload.MustNew("gups", workload.Config{Seed: 42, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultPlacementConfig(w, 16384, 400_000, 8, policy.History{}, core.MethodCombined)
	cfg.Faults = fault.New(spec, 42)
	cfg.Invariants = true
	res2, err := RunPlacement(cfg, w)
	if err != nil {
		t.Fatalf("RunPlacement: %v", err)
	}
	if placementDump(res) != placementDump(res2) {
		t.Fatal("re-derived faulted run diverged from placementUnderFaults")
	}
	var b bytes.Buffer
	for _, row := range FaultAttribution(cfg.Faults, res2) {
		b.WriteString(row.Name)
		b.WriteString("=")
		b.WriteString(uitoa(row.Value))
		b.WriteString("\n")
	}
	checkGolden(t, "seed_report.golden", b.String())
}

// uitoa formats without strconv to keep the dump trivially stable.
func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
