package sim

import (
	"fmt"
	"strings"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/workload"
)

// rankDump renders a run's per-epoch ranked pages under every method
// as one byte stream: the simulator's externally visible profiling
// output.
func rankDump(res Result) string {
	var b strings.Builder
	for _, ep := range res.Epochs {
		for _, m := range core.Methods {
			fmt.Fprintf(&b, "epoch %d method %s\n", ep.Epoch, m)
			for _, ps := range core.RankedPages(ep, m) {
				fmt.Fprintf(&b, "%d:%#x tier=%d abit=%d trace=%d write=%d true=%d rank=%d\n",
					ps.Key.PID, uint64(ps.Key.VPN), int(ps.Tier),
					ps.Abit, ps.Trace, ps.Write, ps.True, ps.Rank(m))
			}
		}
	}
	fmt.Fprintf(&b, "refs=%d duration=%d ibs=%d abit=%d hwpc=%d\n",
		res.Refs, res.DurationNS, res.IBSOverheadNS, res.AbitOverheadNS, res.HWPCOverheadNS)
	return b.String()
}

// runOnce executes a fresh simulator instance from the given seed.
func runOnce(t *testing.T, seed int64) Result {
	t.Helper()
	w := workload.MustNew("gups", workload.Config{Seed: seed, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultConfig(w, 16384, 400_000)
	r, err := New(cfg, w)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(Hooks{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Epochs) == 0 {
		t.Fatal("no epochs harvested")
	}
	return res
}

// TestDeterministicRanks is the determinism regression gate behind the
// tmplint suite: two independent simulator instances driven from the
// same seed must produce byte-identical ranked-page output (DESIGN.md
// §2 — the reproduction's same-seed-same-ranks contract).
func TestDeterministicRanks(t *testing.T) {
	first := rankDump(runOnce(t, 42))
	second := rankDump(runOnce(t, 42))
	if first != second {
		t.Fatalf("same seed produced different ranked-page output:\nlen(first)=%d len(second)=%d\nfirst run:\n%s\nsecond run:\n%s",
			len(first), len(second), head(first, 30), head(second, 30))
	}
	// A different seed must actually change the stream, or the dump is
	// vacuous.
	other := rankDump(runOnce(t, 43))
	if first == other {
		t.Fatal("different seeds produced identical output; the dump is not sensitive to the workload")
	}
}

// head returns the first n lines of s for failure diffs.
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
