package sim

import (
	"fmt"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
	"tieredmem/internal/workload"
)

// chainPlacement runs one placement over a DefaultChain of the given
// depth, with the device tracker attached whenever the chain has a
// device tier and the invariant checker on every epoch.
func chainPlacement(t *testing.T, wname string, seed int64, specText string, refs, period, depth int, method core.Method) PlacementResult {
	t.Helper()
	spec, err := fault.ParseSpec(specText)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", specText, err)
	}
	w := workload.MustNew(wname, workload.Config{Seed: seed, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultPlacementConfig(w, period, refs, 8, policy.History{}, method)
	chain, err := DefaultChain(w, 8, depth)
	if err != nil {
		t.Fatalf("DefaultChain(%d): %v", depth, err)
	}
	cfg.Tiers = chain
	cfg.TMP.EnableDevProf = chain.HasDevice()
	if specText != "" {
		cfg.Faults = fault.New(spec, seed)
	}
	cfg.Invariants = true
	res, err := RunPlacement(cfg, w)
	if err != nil {
		t.Fatalf("RunPlacement(depth=%d spec=%q seed=%d): %v", depth, specText, seed, err)
	}
	return res
}

// TestDefaultChainTwoTierIdentity pins the seed-compatibility anchor:
// the 2-tier DefaultChain is the legacy DefaultTiers layout element for
// element, so every chain-aware path degrades to the golden-pinned
// two-tier machine.
func TestDefaultChainTwoTierIdentity(t *testing.T) {
	w := workload.MustNew("gups", workload.Config{Seed: 42, FirstPID: 100})
	chain, err := DefaultChain(w, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	foot := int(w.FootprintBytes() >> mem.PageShift)
	want := mem.DefaultTiers(foot/16+mem.HugePages, foot+foot/4+mem.HugePages)
	if len(chain) != len(want) {
		t.Fatalf("DefaultChain(2) has %d tiers, DefaultTiers has %d", len(chain), len(want))
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Errorf("tier %d: DefaultChain %+v != DefaultTiers %+v", i, chain[i], want[i])
		}
	}
	if chain.HasDevice() {
		t.Error("2-tier chain claims a device tier")
	}
	if _, err := DefaultChain(w, 16, 5); err == nil {
		t.Error("DefaultChain(5) did not reject an unsupported depth")
	}
}

// TestChainTwoTierPlacementMatchesLegacy is the differential gate on
// the placement path: routing the same run through the explicit-chain
// configuration (cfg.Tiers) must not move a byte relative to the
// legacy Ratio sizing — unfaulted and under injection.
func TestChainTwoTierPlacementMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	for _, spec := range []string{"", "all=0.1"} {
		legacy := placementDump(placementUnderFaults(t, "gups", 42, spec, 400_000, 16384))
		chained := placementDump(chainPlacement(t, "gups", 42, spec, 400_000, 16384, 2, core.MethodCombined))
		if legacy != chained {
			t.Fatalf("2-tier chain diverged from legacy sizing (spec=%q):\nlegacy:\n%s\nchain:\n%s",
				spec, legacy, chained)
		}
	}
}

// TestChainPlacementDevprofSmoke checks the device tracker actually
// drives placement on a deep chain: ranking on device evidence alone
// still promotes pages, and the run holds every epoch invariant
// (including per-tier frame conservation across three tiers).
func TestChainPlacementDevprofSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	res := chainPlacement(t, "gups", 42, "", 400_000, 16384, 3, core.MethodDev)
	if res.Promotions == 0 {
		t.Fatal("device-only evidence promoted nothing; the tracker is not reaching the ranks")
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("unfaulted run quarantined %v", res.Quarantined)
	}
}

// TestChaosMatrixMultiTier extends the chaos acceptance gate to deep
// chains: device-site and whole-plane specs over 3- and 4-tier chains,
// each run twice. Every run must hold the epoch invariants (frames
// conserved per tier, descriptors on the tier they claim), actually
// inject, and reproduce byte-identically.
func TestChaosMatrixMultiTier(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	specs := []string{
		"devprof.overflow=0.4,devprof.stale=0.3",
		"all=0.1",
	}
	for _, specText := range specs {
		for _, depth := range []int{3, 4} {
			name := fmt.Sprintf("%s/%dt", specText, depth)
			t.Run(name, func(t *testing.T) {
				first := chainPlacement(t, "gups", 42, specText, 600_000, 4096, depth, core.MethodCombined)
				if first.FaultsInjected == 0 {
					t.Fatalf("spec %q injected nothing on the %d-tier chain; the cell is vacuous", specText, depth)
				}
				second := chainPlacement(t, "gups", 42, specText, 600_000, 4096, depth, core.MethodCombined)
				if d1, d2 := placementDump(first), placementDump(second); d1 != d2 {
					t.Fatalf("same spec+seed diverged across runs:\nfirst:\n%s\nsecond:\n%s", d1, d2)
				}
			})
		}
	}
}

// TestChaosDevprofQuarantine drives the device tracker's flush-fault
// rate past the threshold on a 3-tier chain and checks the profiler
// quarantines it, the run completes on host evidence, and the
// degradation is reported.
func TestChaosDevprofQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	res := chainPlacement(t, "gups", 42, "devprof.overflow=0.95", 2_000_000, 4096, 3, core.MethodDev)
	found := false
	for _, m := range res.Quarantined {
		if m == "devprof" {
			found = true
		}
	}
	if !found {
		t.Fatalf("95%% device flush loss never quarantined devprof (quarantined: %v)", res.Quarantined)
	}
	if res.MemAccesses == 0 || res.Refs == 0 {
		t.Fatal("quarantined run did not execute")
	}
}
