package sim

import (
	"fmt"
	"strings"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/policy"
	"tieredmem/internal/workload"
)

// runOnceFaulted is runOnce with a fault plane attached (possibly nil
// or zero-rate, for the inertness gates).
func runOnceFaulted(t *testing.T, seed int64, p *fault.Plane) Result {
	t.Helper()
	w := workload.MustNew("gups", workload.Config{Seed: seed, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultConfig(w, 16384, 400_000)
	cfg.Faults = p
	r, err := New(cfg, w)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(Hooks{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestFaultPlaneInert is the rate-zero half of the fault plane's
// contract: a nil plane and a plane built from the zero Spec must both
// be byte-identical to no plane at all. If this fails, some injection
// site draws from its stream (or otherwise perturbs the run) even when
// it can never fire.
func TestFaultPlaneInert(t *testing.T) {
	plain := rankDump(runOnce(t, 42))
	nilPlane := rankDump(runOnceFaulted(t, 42, nil))
	zero := fault.New(fault.Spec{}, 42)
	zeroPlane := rankDump(runOnceFaulted(t, 42, zero))
	if plain != nilPlane {
		t.Fatalf("nil fault plane changed the ranked-page output:\nplain:\n%s\nnil plane:\n%s",
			head(plain, 30), head(nilPlane, 30))
	}
	if plain != zeroPlane {
		t.Fatalf("zero-rate fault plane changed the ranked-page output:\nplain:\n%s\nzero plane:\n%s",
			head(plain, 30), head(zeroPlane, 30))
	}
	// Inertness must come from never drawing, not from luck: a
	// zero-rate site that touches its stream would still pass the dump
	// comparison today but desynchronize the site the day its rate goes
	// nonzero mid-matrix.
	if n := zero.TotalInjected(); n != 0 {
		t.Errorf("zero-rate plane injected %d faults", n)
	}
	for _, s := range fault.Sites() {
		if d := zero.Draws(s); d != 0 {
			t.Errorf("zero-rate site %s drew %d times; zero-rate sites must never touch their stream", s, d)
		}
	}
}

// placementDump renders everything externally visible about a
// placement run as one byte stream, robustness accounting included.
func placementDump(res PlacementResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s refs=%d dur=%d acc=%d hits=%d promo=%d demo=%d\n",
		res.Workload, res.Arm, res.Refs, res.DurationNS, res.MemAccesses, res.Tier1Hits,
		res.Promotions, res.Demotions)
	fmt.Fprintf(&b, "failed=%d cap=%d pin=%d van=%d split=%d retried=%d rok=%d rsup=%d rdrop=%d inj=%d quar=%v\n",
		res.Failed, res.FailedCapacity, res.FailedPinned, res.FailedVanished, res.FailedSplit,
		res.Retried, res.RetrySucceeded, res.RetrySuperseded, res.RetryDropped,
		res.FaultsInjected, res.Quarantined)
	fmt.Fprintf(&b, "tx=%d txok=%d abort=%d shadow=%d stale=%d admp=%d admd=%d defer=%d rejp=%d rejd=%d\n",
		res.TxStarted, res.TxCommitted, res.AbortedDirty, res.ShadowHits, res.ShadowStale,
		res.AdmittedPromotions, res.AdmittedDemotions, res.DeferredAdmission,
		res.RejectedPromotions, res.RejectedDemotions)
	return b.String()
}

// placementUnderFaults runs one History/combined placement with a
// fresh plane built from spec text (empty = no plane). The invariant
// checker runs every epoch whenever the plane can inject.
func placementUnderFaults(t *testing.T, wname string, seed int64, specText string, refs int, period int) PlacementResult {
	t.Helper()
	spec, err := fault.ParseSpec(specText)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", specText, err)
	}
	w := workload.MustNew(wname, workload.Config{Seed: seed, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultPlacementConfig(w, period, refs, 8, policy.History{}, core.MethodCombined)
	if specText != "" {
		cfg.Faults = fault.New(spec, seed)
	}
	cfg.Invariants = true
	res, err := RunPlacement(cfg, w)
	if err != nil {
		t.Fatalf("RunPlacement(spec=%q seed=%d): %v", specText, seed, err)
	}
	return res
}

// TestPlacementFaultInert extends the inertness gate to the placement
// path: mover, retry queue, and invariant checker wired but never
// exercised must not move a byte.
func TestPlacementFaultInert(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	plain := placementDump(placementUnderFaults(t, "gups", 42, "", 400_000, 16384))
	zero := placementDump(placementUnderFaults(t, "gups", 42, "all=0", 400_000, 16384))
	if plain != zero {
		t.Fatalf("zero-rate plane changed the placement result:\nplain:\n%s\nzero plane:\n%s", plain, zero)
	}
}

// TestChaosMatrix is the robustness acceptance gate: a matrix of fault
// specs crossed with seeds, each run twice. Every run must complete
// with the epoch invariant checker green (RunPlacement fails the run
// otherwise), actually inject faults (non-vacuous), and reproduce
// byte-identically on the second run.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	specs := []string{
		"ibs.drop=0.2,ibs.overflow=0.1",
		"mem.enomem=0.3,mem.pinned=0.25,mem.splitfail=0.2",
		"all=0.1",
		"all=0.3",
	}
	for _, specText := range specs {
		for _, seed := range []int64{7, 42} {
			name := fmt.Sprintf("%s/seed=%d", specText, seed)
			t.Run(name, func(t *testing.T) {
				first := placementUnderFaults(t, "gups", seed, specText, 600_000, 4096)
				if first.FaultsInjected == 0 {
					t.Fatalf("spec %q injected nothing; the matrix cell is vacuous", specText)
				}
				second := placementUnderFaults(t, "gups", seed, specText, 600_000, 4096)
				if d1, d2 := placementDump(first), placementDump(second); d1 != d2 {
					t.Fatalf("same spec+seed diverged across runs:\nfirst:\n%s\nsecond:\n%s", d1, d2)
				}
			})
		}
	}
}

// TestChaosMoverRetries pins the failure-handling machinery under
// migration-targeted faults: transient pin/split/capacity failures
// must show up partitioned by reason and flow through the deferred
// retry queue rather than silently vanishing.
func TestChaosMoverRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	// data-caching's hot keys give the History policy a stable
	// selection, so deferred retries come due instead of being
	// superseded by a flip-flopping hot set.
	res := placementUnderFaults(t, "data-caching", 42, "mem.pinned=0.5,mem.splitfail=0.3", 600_000, 8192)
	if res.Failed == 0 {
		t.Fatal("no mover failures under a 50% pin rate; injection is not reaching the mover")
	}
	if sum := res.FailedCapacity + res.FailedPinned + res.FailedVanished + res.FailedSplit; sum != res.Failed {
		t.Fatalf("failure reasons sum to %d, aggregate says %d", sum, res.Failed)
	}
	if res.FailedPinned == 0 {
		t.Error("pin faults injected but FailedPinned is zero")
	}
	if res.Retried == 0 {
		t.Error("transient failures recorded but the retry queue never replayed any")
	}
}

// TestChaosQuarantine drives one mechanism's fault rate far past the
// 50% threshold and checks the profiler permanently disables it, the
// run survives on the remaining evidence, and the degradation is
// reported.
func TestChaosQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	// Long enough for sample attempts to clear QuarantineMinEvents
	// (200) — quarantine refuses to judge small denominators.
	res := placementUnderFaults(t, "gups", 42, "ibs.drop=0.95", 2_000_000, 2048)
	found := false
	for _, m := range res.Quarantined {
		if m == "ibs" {
			found = true
		}
	}
	if !found {
		t.Fatalf("95%% IBS sample loss never quarantined ibs (quarantined: %v)", res.Quarantined)
	}
	if res.MemAccesses == 0 || res.Refs == 0 {
		t.Fatal("quarantined run did not execute")
	}
}
