package sim

import (
	"fmt"
	"strings"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/policy"
	"tieredmem/internal/provenance"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/workload"
)

// shardMk builds the canonical sharding test workload from a seed.
func shardMk(seed int64) func() workload.Workload {
	return func() workload.Workload {
		return workload.MustNew("gups", workload.Config{Seed: seed, FirstPID: 100})
	}
}

// runShardedOnce executes a sharded profiling run at the given pool
// width.
func runShardedOnce(t *testing.T, width int, spec fault.Spec) ShardedResult {
	t.Helper()
	mk := shardMk(42)
	cfg := DefaultConfig(mk(), 16384, 400_000)
	res, err := RunSharded(ShardedConfig{
		Base: cfg, Shards: width, Label: "prof",
		Trace: true, FaultSpec: spec, FaultSeed: 42,
	}, mk)
	if err != nil {
		t.Fatalf("RunSharded(width=%d): %v", width, err)
	}
	if len(res.Epochs) == 0 {
		t.Fatal("sharded run harvested no epochs")
	}
	if res.Refs != cfg.TotalRefs {
		t.Fatalf("sharded run executed %d refs, want %d (cell budgets must partition the total)", res.Refs, cfg.TotalRefs)
	}
	return res
}

// telemetryDump renders a run's telemetry export bytes.
func telemetryDump(t *testing.T, runs []telemetry.Labeled) string {
	t.Helper()
	var b strings.Builder
	if err := telemetry.WriteJSONL(&b, runs); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return b.String()
}

// TestShardedRanksIdenticalAcrossWidths is the tentpole's byte-identity
// gate: the fused per-epoch ranks — the simulator's externally visible
// profiling output — must be byte-identical at -shards 1 and -shards 8
// (and reproducible at a fixed width). The partition is fixed by the
// machine shape, so the pool width can only change wall-clock.
func TestShardedRanksIdenticalAcrossWidths(t *testing.T) {
	seq := runShardedOnce(t, 1, fault.Spec{})
	seqDump := rankDump(seq.Result)
	for _, width := range []int{3, 8} {
		par := runShardedOnce(t, width, fault.Spec{})
		if d := rankDump(par.Result); d != seqDump {
			t.Fatalf("-shards 1 vs -shards %d rank output diverged:\nseq:\n%s\npar:\n%s",
				width, head(seqDump, 30), head(d, 30))
		}
	}
	again := runShardedOnce(t, 1, fault.Spec{})
	if rankDump(again.Result) != seqDump {
		t.Fatal("same seed, same width produced different sharded output")
	}
	// Different seed must change the stream or the dump is vacuous.
	mk := shardMk(43)
	other, err := RunSharded(ShardedConfig{Base: DefaultConfig(mk(), 16384, 400_000), Shards: 1}, mk)
	if err != nil {
		t.Fatal(err)
	}
	if rankDump(other.Result) == seqDump {
		t.Fatal("different seeds produced identical sharded output")
	}
}

// TestShardedTelemetryIdenticalAcrossWidths pins the telemetry JSONL
// export: per-cell tracers serialize in cell order, so the bytes are
// width-independent.
func TestShardedTelemetryIdenticalAcrossWidths(t *testing.T) {
	seq := runShardedOnce(t, 1, fault.Spec{})
	par := runShardedOnce(t, 8, fault.Spec{})
	if len(seq.Telemetry) != seq.Cells {
		t.Fatalf("want %d per-cell tracers, got %d", seq.Cells, len(seq.Telemetry))
	}
	if a, b := telemetryDump(t, seq.Telemetry), telemetryDump(t, par.Telemetry); a != b {
		t.Fatal("-shards 1 vs -shards 8 telemetry JSONL diverged")
	}
}

// TestShardedChaosIdenticalAcrossWidths is the chaos-matrix arm of the
// sharded identity contract: with every fault site injecting at 10%,
// ranks and telemetry must still be byte-identical across widths —
// per-cell fault planes are seeded by cell index, never by worker.
func TestShardedChaosIdenticalAcrossWidths(t *testing.T) {
	spec, err := fault.ParseSpec("all=0.1")
	if err != nil {
		t.Fatal(err)
	}
	seq := runShardedOnce(t, 1, spec)
	par := runShardedOnce(t, 8, spec)
	if a, b := rankDump(seq.Result), rankDump(par.Result); a != b {
		t.Fatalf("faulted -shards 1 vs -shards 8 rank output diverged:\nseq:\n%s\npar:\n%s",
			head(a, 30), head(b, 30))
	}
	if a, b := telemetryDump(t, seq.Telemetry), telemetryDump(t, par.Telemetry); a != b {
		t.Fatal("faulted -shards 1 vs -shards 8 telemetry diverged")
	}
	if seq.FaultsInjectedTotal() == 0 {
		t.Fatal("all=0.1 injected nothing; the chaos arm is vacuous")
	}
}

// shardedPlacementDump renders a fused placement run's externally
// visible numbers as one byte stream (the shared placementDump plus
// the partition width).
func shardedPlacementDump(res ShardedPlacementResult) string {
	return fmt.Sprintf("cells=%d\n%s", res.Cells, placementDump(res.PlacementResult))
}

// provDump renders a fused provenance log's serialized bytes.
func provDump(t *testing.T, lg provenance.Log) string {
	t.Helper()
	var b strings.Builder
	if err := provenance.WriteLog(&b, []provenance.Log{lg}); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	return b.String()
}

// runShardedPlacementOnce executes a sharded placement run at the
// given pool width, history/tmp arm, provenance and telemetry on.
func runShardedPlacementOnce(t *testing.T, width int, spec fault.Spec) ShardedPlacementResult {
	t.Helper()
	return runShardedPlacementCfg(t, width, spec, nil)
}

// runShardedPlacementCfg is runShardedPlacementOnce with a base-config
// hook (transactional migration, admission control, retry tuning).
func runShardedPlacementCfg(t *testing.T, width int, spec fault.Spec, mutate func(*PlacementConfig)) ShardedPlacementResult {
	t.Helper()
	mk := shardMk(42)
	cfg := DefaultPlacementConfig(mk(), 16384, 400_000, 16, nil, core.MethodCombined)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := RunShardedPlacement(ShardedPlacementConfig{
		Base: cfg, Shards: width, Label: "history",
		MkPolicy: func() policy.Policy { return policy.History{} },
		Trace:    true, Prov: true,
		FaultSpec: spec, FaultSeed: 42,
	}, mk)
	if err != nil {
		t.Fatalf("RunShardedPlacement(width=%d): %v", width, err)
	}
	if res.Refs != cfg.TotalRefs {
		t.Fatalf("sharded placement executed %d refs, want %d", res.Refs, cfg.TotalRefs)
	}
	return res
}

// TestShardedPlacementIdenticalAcrossWidths extends the identity gate
// end-to-end: placement counters, telemetry, and the fused provenance
// log must be byte-identical at -shards 1 and -shards 8, unfaulted and
// faulted (the chaos-matrix arm).
func TestShardedPlacementIdenticalAcrossWidths(t *testing.T) {
	chaos, err := fault.ParseSpec("all=0.1")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		spec fault.Spec
	}{
		{"unfaulted", fault.Spec{}},
		{"faulted", chaos},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq := runShardedPlacementOnce(t, 1, tc.spec)
			par := runShardedPlacementOnce(t, 8, tc.spec)
			if a, b := shardedPlacementDump(seq), shardedPlacementDump(par); a != b {
				t.Fatalf("-shards 1 vs -shards 8 placement output diverged:\n%s\nvs\n%s", a, b)
			}
			if a, b := telemetryDump(t, seq.Telemetry), telemetryDump(t, par.Telemetry); a != b {
				t.Fatal("-shards 1 vs -shards 8 placement telemetry diverged")
			}
			if !seq.HasProv || !par.HasProv {
				t.Fatal("sharded placement run did not fuse a provenance log")
			}
			if len(seq.Prov.Pages) == 0 {
				t.Fatal("fused provenance log is empty; the identity check is vacuous")
			}
			if a, b := provDump(t, seq.Prov), provDump(t, par.Prov); a != b {
				t.Fatal("-shards 1 vs -shards 8 provenance logs diverged")
			}
			if seq.Promotions == 0 {
				t.Fatal("sharded history arm promoted nothing; the placement identity check is vacuous")
			}
		})
	}
}

// TestShardedRetryHeavyIdenticalAcrossWidths pins the deferred-retry
// queue's replay order under sharding: with allocation and pin faults
// firing at high rates, most migrations fail transiently and replay
// from each cell's retry queue in later epochs. A retry deferred in
// cell k must land in the same epoch, in the same order, at any pool
// width — the fused provenance log (per-page verdict timelines) and
// the summed retry counters are compared byte-for-byte at -shards 1
// and -shards 8, and reproduced at a fixed width.
func TestShardedRetryHeavyIdenticalAcrossWidths(t *testing.T) {
	spec, err := fault.ParseSpec("mem.enomem=0.6,mem.pinned=0.4")
	if err != nil {
		t.Fatal(err)
	}
	seq := runShardedPlacementOnce(t, 1, spec)
	if seq.Retried == 0 || seq.RetrySucceeded == 0 {
		t.Fatalf("retry-heavy spec replayed nothing (retried=%d rok=%d); the identity check is vacuous",
			seq.Retried, seq.RetrySucceeded)
	}
	par := runShardedPlacementOnce(t, 8, spec)
	if a, b := shardedPlacementDump(seq), shardedPlacementDump(par); a != b {
		t.Fatalf("retry-heavy -shards 1 vs -shards 8 placement output diverged:\n%s\nvs\n%s", a, b)
	}
	if a, b := provDump(t, seq.Prov), provDump(t, par.Prov); a != b {
		t.Fatal("retry-heavy -shards 1 vs -shards 8 provenance logs diverged (retry replay epoch/order moved)")
	}
	again := runShardedPlacementOnce(t, 1, spec)
	if shardedPlacementDump(again) != shardedPlacementDump(seq) {
		t.Fatal("same seed, same width produced different retry-heavy output")
	}
}

// TestShardedTxAdmissionChaosIdenticalAcrossWidths extends the sharded
// identity contract to the transactional engine: with mid-copy dirty
// aborts and stale shadows injected and a tight per-cell admission
// budget, placement counters and the fused provenance log must still
// be byte-identical at -shards 1 and -shards 8 — per-cell budgets are
// pure functions of (EpochNS, AdmissionFrac), never of pool width.
func TestShardedTxAdmissionChaosIdenticalAcrossWidths(t *testing.T) {
	spec, err := fault.ParseSpec("mem.copyabort=0.3,mem.shadowstale=0.2")
	if err != nil {
		t.Fatal(err)
	}
	tx := func(cfg *PlacementConfig) {
		cfg.TxMigration = true
		cfg.AdmissionFrac = 0.25
	}
	seq := runShardedPlacementCfg(t, 1, spec, tx)
	if seq.TxCommitted == 0 || seq.AbortedDirty == 0 || seq.DeferredAdmission == 0 {
		t.Fatalf("tx chaos arm is vacuous: txok=%d abort=%d defer=%d",
			seq.TxCommitted, seq.AbortedDirty, seq.DeferredAdmission)
	}
	par := runShardedPlacementCfg(t, 8, spec, tx)
	if a, b := shardedPlacementDump(seq), shardedPlacementDump(par); a != b {
		t.Fatalf("tx chaos -shards 1 vs -shards 8 placement output diverged:\n%s\nvs\n%s", a, b)
	}
	if a, b := provDump(t, seq.Prov), provDump(t, par.Prov); a != b {
		t.Fatal("tx chaos -shards 1 vs -shards 8 provenance logs diverged")
	}
	again := runShardedPlacementCfg(t, 1, spec, tx)
	if shardedPlacementDump(again) != shardedPlacementDump(seq) {
		t.Fatal("same seed, same width produced different tx chaos output")
	}
}

// TestShardedConfigRejectsSharedState pins the anti-race guard: base
// configs carrying a shared tracer, plane, recorder, or policy are
// rejected rather than silently shared across cells.
func TestShardedConfigRejectsSharedState(t *testing.T) {
	mk := shardMk(42)
	cfg := DefaultConfig(mk(), 16384, 1000)
	cfg.Tracer = telemetry.New()
	if _, err := RunSharded(ShardedConfig{Base: cfg, Shards: 2}, mk); err == nil {
		t.Fatal("RunSharded accepted a shared Base.Tracer")
	}
	pcfg := DefaultPlacementConfig(mk(), 16384, 1000, 16, policy.History{}, core.MethodCombined)
	if _, err := RunShardedPlacement(ShardedPlacementConfig{Base: pcfg, Shards: 2}, mk); err == nil {
		t.Fatal("RunShardedPlacement accepted a shared Base.Policy")
	}
}

// TestShardedRejectsCombined pins that non-sliceable workloads error
// out rather than silently running unsharded.
func TestShardedRejectsCombined(t *testing.T) {
	mkc := func() workload.Workload {
		a := workload.MustNew("gups", workload.Config{Seed: 42, FirstPID: 100})
		b := workload.MustNew("web-serving", workload.Config{Seed: 42, FirstPID: 200})
		c, err := workload.Combine(a, b)
		if err != nil {
			panic(err)
		}
		return c
	}
	cfg := DefaultConfig(mkc(), 16384, 1000)
	if _, err := RunSharded(ShardedConfig{Base: cfg, Shards: 2}, mkc); err == nil {
		t.Fatal("RunSharded accepted a combined workload")
	}
}
