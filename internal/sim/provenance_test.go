package sim

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/order"
	"tieredmem/internal/policy"
	"tieredmem/internal/provenance"
	"tieredmem/internal/report"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/workload"
)

// provPlacement runs one History/combined placement with a flight
// recorder (and optionally a tracer and fault plane) attached,
// returning the result alongside the recorder and tracer.
func provPlacement(t *testing.T, wname string, seed int64, specText string, refs, period int, traced bool) (PlacementResult, *provenance.Recorder, *telemetry.Tracer) {
	t.Helper()
	w := workload.MustNew(wname, workload.Config{Seed: seed, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultPlacementConfig(w, period, refs, 8, policy.History{}, core.MethodCombined)
	if specText != "" {
		spec, err := fault.ParseSpec(specText)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", specText, err)
		}
		cfg.Faults = fault.New(spec, seed)
	}
	if traced {
		cfg.Tracer = telemetry.New()
	}
	cfg.Prov = provenance.New()
	cfg.Invariants = true
	res, err := RunPlacement(cfg, w)
	if err != nil {
		t.Fatalf("RunPlacement(spec=%q seed=%d): %v", specText, seed, err)
	}
	return res, cfg.Prov, cfg.Tracer
}

// TestProvenanceInert is the recorder's inertness gate: attaching a
// flight recorder (with and without faults in play) must not move a
// byte of the placement result. The recorder only reads simulator
// state; if this fails, some hook mutated the run.
func TestProvenanceInert(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	for _, spec := range []string{"", "all=0.1"} {
		plain := placementDump(placementUnderFaults(t, "gups", 42, spec, 400_000, 16384))
		withRec, _, _ := provPlacement(t, "gups", 42, spec, 400_000, 16384, false)
		if got := placementDump(withRec); got != plain {
			t.Errorf("recorder changed the placement result (spec=%q):\nplain:\n%s\nrecorded:\n%s", spec, plain, got)
		}
	}
}

// faultedProvConfig is the chaos cell the provenance goldens pin: high
// pin/split rates against data-caching's stable hot set force failed
// migrations through the deferred-retry queue, so the recorded
// timelines include failed:* and deferred:retry-backoff verdicts (the
// decision paths aggregate counters cannot explain).
const (
	faultedProvWorkload = "data-caching"
	faultedProvSpec     = "mem.pinned=0.5,mem.splitfail=0.3"
	faultedProvRefs     = 600_000
	faultedProvPeriod   = 8192
)

// TestGoldenProvenanceTimeline pins the per-epoch decision timeline of
// the first (canonical page order) page whose ring holds a failed or
// deferred verdict in the faulted seed run — the `tmpsim -why` /
// `tmpwhy -page` output format and the acceptance gate that provenance
// actually explains failure handling.
func TestGoldenProvenanceTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	_, rec, _ := provPlacement(t, faultedProvWorkload, 42, faultedProvSpec, faultedProvRefs, faultedProvPeriod, false)
	lg := rec.Snapshot("seed-faulted")
	var pick *provenance.PageLog
	for i := range lg.Pages {
		for j := range lg.Pages[i].Records {
			r := &lg.Pages[i].Records[j]
			if r.Verdict == provenance.VerdictFailed || r.Verdict == provenance.VerdictDeferred {
				pick = &lg.Pages[i]
				break
			}
		}
		if pick != nil {
			break
		}
	}
	if pick == nil {
		t.Fatal("faulted seed run recorded no failed or deferred verdicts; the timeline golden would be vacuous")
	}
	checkGolden(t, "seed_provenance_timeline.golden", provenance.TimelineTable(pick).Render())
}

// TestGoldenProvenanceSummary pins the run-level audit tables (verdict
// totals, ping-pong pages, decisive-evidence shares) for the same
// faulted seed run.
func TestGoldenProvenanceSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	_, rec, _ := provPlacement(t, faultedProvWorkload, 42, faultedProvSpec, faultedProvRefs, faultedProvPeriod, false)
	lg := rec.Snapshot("seed-faulted")
	var b strings.Builder
	b.WriteString(provenance.SummaryTable(&lg).Render())
	b.WriteString("\n")
	b.WriteString(provenance.PingPongTable(&lg, 10).Render())
	b.WriteString("\n")
	b.WriteString(provenance.DecisiveTable(&lg).Render())
	checkGolden(t, "seed_provenance_summary.golden", b.String())
}

// TestGoldenProvenanceDistributions pins the `-metrics` distributions
// section of a traced+recorded faulted run: time-in-tier residency,
// migration inter-arrival, rank churn, retry latency — deterministic
// log2-bucket histograms, exact counts.
func TestGoldenProvenanceDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	_, _, tr := provPlacement(t, faultedProvWorkload, 42, faultedProvSpec, faultedProvRefs, faultedProvPeriod, true)
	dists := tr.Distributions()
	if len(dists) == 0 {
		t.Fatal("traced faulted run produced no distributions")
	}
	want := map[string]bool{"mover/retry_latency_epochs": false, "sim/rank_churn": false}
	for _, d := range dists {
		if _, ok := want[d.Name]; ok {
			want[d.Name] = true
		}
	}
	for _, name := range order.SortedKeys(want) {
		if !want[name] {
			t.Errorf("distribution %s missing from the faulted run", name)
		}
	}
	checkGolden(t, "seed_provenance_dist.golden",
		report.DistTable("Distributions: seed-faulted", dists).Render())
}

// TestProvenanceLogReproducible pins the serialized log as a pure
// function of the run: two identical runs serialize byte-identically,
// and the digest golden pins the full log (megabytes of JSONL) without
// committing it.
func TestProvenanceLogReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	dump := func() []byte {
		_, rec, _ := provPlacement(t, faultedProvWorkload, 42, faultedProvSpec, faultedProvRefs, faultedProvPeriod, false)
		var b bytes.Buffer
		if err := provenance.WriteLog(&b, []provenance.Log{rec.Snapshot("seed-faulted")}); err != nil {
			t.Fatalf("WriteLog: %v", err)
		}
		return b.Bytes()
	}
	first := dump()
	if !bytes.Equal(first, dump()) {
		t.Fatal("same seed+spec produced different provenance logs across runs")
	}
	h := fnv.New64a()
	h.Write(first)
	lines := bytes.Count(first, []byte("\n"))
	checkGolden(t, "seed_provenance_digest.golden",
		fmt.Sprintf("fnv64a=%016x lines=%d\n", h.Sum64(), lines))

	// The log must read back cleanly (schema check included).
	logs, err := provenance.ReadLog(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(logs) != 1 || len(logs[0].Pages) == 0 {
		t.Fatalf("read back %d logs, first with %d pages", len(logs), len(logs[0].Pages))
	}
}
