package sim

import (
	"testing"

	"tieredmem/internal/telemetry"
	"tieredmem/internal/workload"
)

// runOnceTraced is runOnce with a live tracer attached; the returned
// tracer holds whatever the run emitted.
func runOnceTraced(t *testing.T, seed int64) (Result, *telemetry.Tracer) {
	t.Helper()
	w := workload.MustNew("gups", workload.Config{Seed: seed, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultConfig(w, 16384, 400_000)
	tr := telemetry.New()
	cfg.Tracer = tr
	r, err := New(cfg, w)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(Hooks{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, tr
}

// TestTelemetryInert is the observation-must-not-perturb gate: a run
// with telemetry enabled must produce byte-identical ranked-page
// output to the same seed with telemetry off. If this fails, an emit
// site is feeding back into simulation state (clock, RNG, ordering).
func TestTelemetryInert(t *testing.T) {
	plain := rankDump(runOnce(t, 42))
	tracedRes, tr := runOnceTraced(t, 42)
	traced := rankDump(tracedRes)
	if plain != traced {
		t.Fatalf("enabling telemetry changed the ranked-page output:\nplain:\n%s\ntraced:\n%s",
			head(plain, 30), head(traced, 30))
	}
	// Guard against a vacuous pass where the tracer never saw the run.
	if len(tr.Events()) == 0 {
		t.Fatal("traced run recorded no events; telemetry is not wired")
	}
	if len(tr.EpochCuts()) == 0 {
		t.Fatal("traced run recorded no epoch cuts")
	}
	if tr.Registry().Counter("daemon/ticks").Value() == 0 {
		t.Error("daemon/ticks counter never advanced")
	}
	if tr.Registry().Counter("abit/scans").Value() == 0 {
		t.Error("abit/scans counter never advanced")
	}
}

// TestTelemetryVirtualStamps checks the stamp discipline on a real
// run: every event timestamp is within the run's virtual-time span and
// the stream is time-ordered, which is what makes the exported trace a
// virtual-time flamegraph rather than a host profile.
func TestTelemetryVirtualStamps(t *testing.T) {
	res, tr := runOnceTraced(t, 42)
	var prev int64
	for i, ev := range tr.Events() {
		if ev.Now < 0 || ev.Now > res.DurationNS {
			t.Fatalf("event %d (%s) stamped %d, outside virtual span [0,%d]", i, ev.Kind, ev.Now, res.DurationNS)
		}
		if ev.Now < prev {
			t.Fatalf("event %d (%s) stamped %d before predecessor at %d; stream must be time-ordered", i, ev.Kind, ev.Now, prev)
		}
		prev = ev.Now
	}
}
