package sim

import (
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/policy"
	"tieredmem/internal/workload"
)

func TestSmokeGUPS(t *testing.T) {
	w := workload.MustNew("gups", workload.Config{Seed: 1, FirstPID: 100, ScaleShift: 0})
	cfg := DefaultConfig(w, 16384, 2_000_000)
	r, err := New(cfg, w)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := r.Run(Hooks{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Refs != 2_000_000 {
		t.Errorf("Refs = %d, want 2000000", res.Refs)
	}
	if res.DurationNS <= 0 {
		t.Errorf("DurationNS = %d, want > 0", res.DurationNS)
	}
	if len(res.Epochs) == 0 {
		t.Fatalf("no epochs harvested")
	}
	if res.HugeFaults == 0 {
		t.Errorf("GUPS tables should be THP-backed, got 0 huge faults")
	}
	var abit, tr, truth uint64
	for _, ep := range res.Epochs {
		for _, ps := range ep.Pages {
			abit += uint64(ps.Abit)
			tr += uint64(ps.Trace)
			truth += uint64(ps.True)
		}
	}
	t.Logf("duration=%dms epochs=%d abit=%d trace=%d true=%d hugeFaults=%d minorFaults=%d overhead=%.2f%%",
		res.DurationNS/1e6, len(res.Epochs), abit, tr, truth, res.HugeFaults, res.MinorFaults, res.OverheadFraction()*100)
	if abit == 0 {
		t.Errorf("A-bit profiling saw nothing")
	}
	if tr == 0 {
		t.Errorf("trace profiling saw nothing")
	}
	if truth == 0 {
		t.Errorf("no ground-truth memory accesses recorded")
	}
	ranked := core.RankedPages(res.Epochs[0], core.MethodCombined)
	if len(ranked) == 0 {
		t.Errorf("no ranked pages in first epoch")
	}
}

func TestPlacementSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("placement run is slow")
	}
	mk := func() workload.Workload {
		return workload.MustNew("data-caching", workload.Config{Seed: 7, FirstPID: 200})
	}
	base := DefaultPlacementConfig(mk(), 4096, 3_000_000, 16, nil, core.MethodCombined)
	bres, err := RunPlacement(base, mk())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	pcfg := DefaultPlacementConfig(mk(), 4096, 3_000_000, 16, policy.History{}, core.MethodCombined)
	pres, err := RunPlacement(pcfg, mk())
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	speedup := float64(bres.DurationNS) / float64(pres.DurationNS)
	t.Logf("baseline: dur=%dms hitrate=%.3f; tmp/history: dur=%dms hitrate=%.3f promotions=%d speedup=%.3f",
		bres.DurationNS/1e6, bres.Hitrate(), pres.DurationNS/1e6, pres.Hitrate(), pres.Promotions, speedup)
	// Hot keys are touched first in data-caching, so first-touch is
	// already near-optimal here; TMP must stay within noise of it
	// (the paper's own average speedup over first-touch is 1.04x).
	if pres.Hitrate() < bres.Hitrate()-0.05 {
		t.Errorf("TMP-placed hitrate %.3f far below baseline %.3f", pres.Hitrate(), bres.Hitrate())
	}
	if speedup < 0.90 {
		t.Errorf("speedup %.3f below 0.90: profiling/migration costs out of band", speedup)
	}
}

func TestPlacementBeatsFirstTouchOnPhaseShift(t *testing.T) {
	if testing.Short() {
		t.Skip("placement run is slow")
	}
	mk := func() workload.Workload {
		return workload.MustNew("phase-shift", workload.Config{Seed: 9, FirstPID: 300})
	}
	base := DefaultPlacementConfig(mk(), 4096, 4_000_000, 8, nil, core.MethodCombined)
	bres, err := RunPlacement(base, mk())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	pcfg := DefaultPlacementConfig(mk(), 4096, 4_000_000, 8, policy.History{}, core.MethodCombined)
	pres, err := RunPlacement(pcfg, mk())
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	speedup := float64(bres.DurationNS) / float64(pres.DurationNS)
	t.Logf("baseline: dur=%dms hitrate=%.3f; tmp/history: dur=%dms hitrate=%.3f promotions=%d speedup=%.3f",
		bres.DurationNS/1e6, bres.Hitrate(), pres.DurationNS/1e6, pres.Hitrate(), pres.Promotions, speedup)
	if pres.Hitrate() <= bres.Hitrate() {
		t.Errorf("TMP-placed hitrate %.3f not above first-touch %.3f on a phase-shift workload",
			pres.Hitrate(), bres.Hitrate())
	}
	if speedup <= 1.0 {
		t.Errorf("speedup %.3f not above 1.0 on a workload built to defeat first-touch", speedup)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Result {
		w := workload.MustNew("data-caching", workload.Config{Seed: 3, FirstPID: 100})
		cfg := DefaultConfig(w, 4096, 1_000_000)
		r, err := New(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.DurationNS != b.DurationNS {
		t.Errorf("durations differ: %d vs %d", a.DurationNS, b.DurationNS)
	}
	if len(a.Epochs) != len(b.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a.Epochs), len(b.Epochs))
	}
	for i := range a.Epochs {
		if len(a.Epochs[i].Pages) != len(b.Epochs[i].Pages) {
			t.Fatalf("epoch %d page counts differ", i)
		}
		for j := range a.Epochs[i].Pages {
			if a.Epochs[i].Pages[j] != b.Epochs[i].Pages[j] {
				t.Fatalf("epoch %d page %d differs: %+v vs %+v",
					i, j, a.Epochs[i].Pages[j], b.Epochs[i].Pages[j])
			}
		}
	}
	if a.IBSOverheadNS != b.IBSOverheadNS || a.AbitOverheadNS != b.AbitOverheadNS {
		t.Errorf("overheads differ")
	}
}

func TestPMLCollectsWriteHeat(t *testing.T) {
	w := workload.MustNew("data-caching", workload.Config{Seed: 3, FirstPID: 100})
	cfg := DefaultConfig(w, 4096, 1_500_000)
	cfg.TMP.EnablePML = true
	r, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Profiler.PML == nil {
		t.Fatalf("PML engine not attached")
	}
	if r.Profiler.PML.Stats().Logged == 0 {
		t.Fatalf("PML logged nothing on a write-bearing workload")
	}
	var writes uint64
	for _, ep := range res.Epochs {
		for _, ps := range ep.Pages {
			writes += uint64(ps.Write)
		}
	}
	if writes == 0 {
		t.Errorf("no write heat reached the harvests")
	}
	// Write evidence is a subset of accesses: never more D-bit-set
	// events than ground-truth memory accesses plus TLB-resident
	// store upgrades; sanity-bound it by total logged.
	if writes != r.Profiler.PML.Stats().Logged {
		t.Errorf("harvested writes %d != logged %d", writes, r.Profiler.PML.Stats().Logged)
	}
}

func TestWriteBiasedPolicyOnWriteSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("placement run is slow")
	}
	run := func(p policy.Policy) PlacementResult {
		w := workload.MustNew("write-split", workload.Config{Seed: 11, FirstPID: 400})
		cfg := DefaultPlacementConfig(w, 4096, 4_000_000, 8, p, core.MethodCombined)
		cfg.TMP.EnablePML = true
		res, err := RunPlacement(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hist := run(policy.History{})
	wb := run(policy.WriteBiased{Bias: 4})
	t.Logf("history: dur=%.2fms hitrate=%.3f; write-biased: dur=%.2fms hitrate=%.3f",
		float64(hist.DurationNS)/1e6, hist.Hitrate(),
		float64(wb.DurationNS)/1e6, wb.Hitrate())
	// With NVM writes twice as expensive as reads, biasing dirty
	// pages into DRAM must not lose runtime, and typically wins.
	if float64(wb.DurationNS) > float64(hist.DurationNS)*1.03 {
		t.Errorf("write-biased policy slower than history: %d vs %d ns",
			wb.DurationNS, hist.DurationNS)
	}
}
