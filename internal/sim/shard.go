package sim

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
	"tieredmem/internal/provenance"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/workload"
)

// The intra-cell sharded epoch pipeline. A single experiment cell used
// to be strictly serial: one goroutine drove every reference of the
// simulated machine. Sharding partitions that machine into per-core
// cells — process i runs on core i mod cores, exactly the pinning rule
// cpu.Machine uses — and executes each cell on the bounded worker pool
// (runner.ShardGroup) with fully private state: its own workload
// slice, machine, profiler, policy, fault plane, tracer, and flight
// recorder. Results are fused with deterministic reduces that walk
// cells in cell-index order, never completion order: harvests merge
// through core.Merger (canonical (PID, VPN) output), counters add in
// cell order, telemetry exports per-cell traces in cell order, and
// provenance logs concatenate disjoint page sets into one canonical
// log. Because the partition is fixed by the machine shape (cores and
// processes) and every reduce is ordered, the output is a pure
// function of (seed, config): -shards N changes wall-clock only, and
// the -shards 1 == -shards 8 byte-identity is regression-tested.
//
// The sharded machine model is a deliberate variant of the monolithic
// one: each cell owns a private LLC (the way-partitioned / CAT
// setting), a private slice of each tier's frames, and a per-cell TMP
// daemon, so its absolute numbers differ from a -shards 0 run. What it
// preserves exactly is the profiling semantics under test — per-page
// evidence, ranks, placement verdicts — at a refs/sec that scales with
// cores.

// ShardedConfig wraps a profiling-run Config for sharded execution.
type ShardedConfig struct {
	// Base is the whole-machine configuration. Its CPU.Cores fixes the
	// partition (one cell per core with processes to run); its Tracer
	// and Faults fields must be nil — per-cell instances are derived
	// from Trace/FaultSpec/FaultSeed below so no state crosses cells.
	Base Config
	// Shards is the worker-pool width (the -shards flag): how many
	// cells execute concurrently. It never affects which cell computes
	// what. <= 0 means GOMAXPROCS.
	Shards int
	// NowNS is the optional wall clock for runner stats (mains inject
	// time.Since; internal packages must not read the wall clock).
	NowNS func() int64
	// Label prefixes per-cell telemetry labels ("<label>/cell<i>").
	Label string
	// Trace builds a private tracer per cell, exported in cell order.
	Trace bool
	// FaultSpec, when non-zero, gives every cell a private fault plane
	// seeded FaultSeed+cell — deterministic, independent streams.
	FaultSpec fault.Spec
	FaultSeed int64
}

// ShardedResult is a fused profiling run plus per-cell observability.
type ShardedResult struct {
	Result
	// Cells is the partition width (min(cores, processes)).
	Cells int
	// Stats is the shard pool's timing (speedup measurement).
	Stats runner.Stats
	// Telemetry holds each cell's labeled tracer in cell order; empty
	// unless Trace was set.
	Telemetry []telemetry.Labeled
	// Planes holds each cell's fault plane in cell order (nil entries
	// when FaultSpec is zero).
	Planes []*fault.Plane
}

// FaultsInjectedTotal sums injections across the cells' planes.
func (r ShardedResult) FaultsInjectedTotal() uint64 {
	var total uint64
	for _, p := range r.Planes {
		total += p.TotalInjected()
	}
	return total
}

// shardTiers carves a whole-machine tier sizing into one cell's share:
// every tier keeps 1/cells of its frames plus the huge-fault slack
// (the same slack rule the whole-machine sizing applies once). nil in,
// nil out — sim.New then sizes tiers from the cell's own footprint.
func shardTiers(tiers []mem.TierSpec, cells int) []mem.TierSpec {
	if tiers == nil {
		return nil
	}
	out := make([]mem.TierSpec, len(tiers))
	for i, t := range tiers {
		t.Frames = t.Frames/cells + mem.HugePages
		out[i] = t
	}
	return out
}

// cellLabel names cell i of a run ("history/cell3", or "cell3" when
// the run has no label).
func cellLabel(label string, cell int) string {
	if label == "" {
		return fmt.Sprintf("cell%d", cell)
	}
	return fmt.Sprintf("%s/cell%d", label, cell)
}

// prefixQuarantined rewrites one cell's quarantined-mechanism list
// with its cell prefix so the fused list states which cell's daemon
// tripped.
func prefixQuarantined(dst []string, label string, cell int, mechs []string) []string {
	for _, m := range mechs {
		dst = append(dst, cellLabel(label, cell)+"/"+m)
	}
	return dst
}

// RunSharded executes a profiling run sharded per core and fuses the
// result. mk must build a fresh workload from the seed on every call
// (cells slice private instances; generators carry live RNG state).
// Epoch k of the fused result merges every cell's epoch-k harvest
// through core.Merger — canonical (PID, VPN) order, cell-index walk —
// so ranks computed from it are a pure function of (seed, config)
// regardless of Shards.
func RunSharded(scfg ShardedConfig, mk func() workload.Workload) (ShardedResult, error) {
	if scfg.Base.Tracer != nil || scfg.Base.Faults != nil {
		return ShardedResult{}, fmt.Errorf("sim: sharded runs derive per-cell tracers and fault planes; set ShardedConfig.Trace/FaultSpec, not Base.Tracer/Base.Faults")
	}
	probe := mk()
	if !workload.Sliceable(probe) {
		return ShardedResult{}, fmt.Errorf("sim: workload %q cannot be sharded per core", probe.Name())
	}
	cells := workload.Cells(probe, scfg.Base.CPU.Cores)
	if cells < 1 {
		return ShardedResult{}, fmt.Errorf("sim: workload %q has no processes to shard", probe.Name())
	}
	procs := len(probe.Processes())

	sres := ShardedResult{Cells: cells}
	// Per-cell observability is allocated up front, in cell order, so
	// exports never depend on completion order.
	tracers := make([]*telemetry.Tracer, cells)
	sres.Planes = make([]*fault.Plane, cells)
	for c := 0; c < cells; c++ {
		if scfg.Trace {
			tracers[c] = telemetry.New()
			sres.Telemetry = append(sres.Telemetry, telemetry.Labeled{Label: cellLabel(scfg.Label, c), Tracer: tracers[c]})
		}
		if !scfg.FaultSpec.Zero() {
			sres.Planes[c] = fault.New(scfg.FaultSpec, scfg.FaultSeed+int64(c))
		}
	}

	results, stats, err := runner.ShardGroup(
		runner.Config{Workers: scfg.Shards, NowNS: scfg.NowNS}, cells,
		func(c int) string { return cellLabel(scfg.Label, c) },
		func(cell int) (Result, error) {
			refs := workload.SliceRefs(int64(scfg.Base.TotalRefs), procs, cell, cells)
			if refs == 0 {
				return Result{}, nil
			}
			sliced, err := workload.Slice(mk(), cell, cells)
			if err != nil {
				return Result{}, err
			}
			cfg := scfg.Base
			cfg.CPU.Cores = 1
			cfg.TotalRefs = int(refs)
			cfg.Tiers = shardTiers(scfg.Base.Tiers, cells)
			cfg.Tracer = tracers[cell]
			cfg.Faults = sres.Planes[cell]
			r, err := New(cfg, sliced)
			if err != nil {
				return Result{}, err
			}
			return r.Run(Hooks{})
		})
	sres.Stats = stats
	if err != nil {
		return sres, err
	}

	// Deterministic reduce: walk cells in cell order, fuse epoch k
	// across cells through the Merger, sum counters, keep the slowest
	// cell's virtual duration (cells run concurrently in the modeled
	// machine, so the machine's duration is the critical path).
	sres.Workload = probe.Name()
	sres.NumCores = cells
	maxEpochs := 0
	for _, r := range results {
		if len(r.Epochs) > maxEpochs {
			maxEpochs = len(r.Epochs)
		}
	}
	merger := core.NewMerger(0)
	scratch := make([]core.EpochStats, 0, cells)
	for k := 0; k < maxEpochs; k++ {
		scratch = scratch[:0]
		for _, r := range results {
			if k < len(r.Epochs) {
				scratch = append(scratch, r.Epochs[k])
			}
		}
		var fused core.EpochStats
		merger.Merge(&fused, scratch)
		fused.Epoch = k
		sres.Epochs = append(sres.Epochs, fused)
	}
	for c, r := range results {
		sres.Refs += r.Refs
		if r.DurationNS > sres.DurationNS {
			sres.DurationNS = r.DurationNS
		}
		sres.IBSOverheadNS += r.IBSOverheadNS
		sres.AbitOverheadNS += r.AbitOverheadNS
		sres.HWPCOverheadNS += r.HWPCOverheadNS
		sres.MinorFaults += r.MinorFaults
		sres.HugeFaults += r.HugeFaults
		sres.Quarantined = prefixQuarantined(sres.Quarantined, scfg.Label, c, r.Quarantined)
	}
	return sres, nil
}

// ShardedPlacementConfig wraps a PlacementConfig for sharded
// execution.
type ShardedPlacementConfig struct {
	// Base is the whole-machine configuration. Its Policy, Tracer,
	// Faults, and Prov fields must be nil: policies may be stateful
	// (History keeps last-epoch state, Decay keeps scores), so each
	// cell constructs its own from MkPolicy, and observability is
	// derived per cell like RunSharded does.
	Base PlacementConfig
	// Shards is the worker-pool width (the -shards flag); <= 0 means
	// GOMAXPROCS. Never affects output bytes.
	Shards int
	NowNS  func() int64
	Label  string
	// MkPolicy builds one cell's private policy instance; nil runs the
	// first-touch baseline arm.
	MkPolicy func() policy.Policy
	Trace    bool
	// Prov builds a private flight recorder per policy cell; the fused
	// log (one per run, canonical page order) is in the result.
	Prov      bool
	FaultSpec fault.Spec
	FaultSeed int64
}

// ShardedPlacementResult is a fused placement run plus per-cell
// observability.
type ShardedPlacementResult struct {
	PlacementResult
	Cells     int
	Stats     runner.Stats
	Telemetry []telemetry.Labeled
	Planes    []*fault.Plane
	// Prov is the fused provenance log (zero-valued when Prov was not
	// requested or the run was a baseline arm). Pages across cells are
	// disjoint — each cell owns its processes — so the fusion is a
	// concatenation re-sorted into canonical (PID, VPN) order.
	Prov    provenance.Log
	HasProv bool
}

// RunShardedPlacement executes an end-to-end placement run sharded per
// core and fuses the result: counters sum in cell order, the virtual
// duration is the slowest cell (the modeled machine's critical path),
// and telemetry/provenance export per-cell in cell order. Output is a
// pure function of (seed, config) at any Shards width.
func RunShardedPlacement(scfg ShardedPlacementConfig, mk func() workload.Workload) (ShardedPlacementResult, error) {
	if scfg.Base.Policy != nil || scfg.Base.Tracer != nil || scfg.Base.Faults != nil || scfg.Base.Prov != nil {
		return ShardedPlacementResult{}, fmt.Errorf("sim: sharded placement derives per-cell policy/tracer/faults/prov; set MkPolicy/Trace/FaultSpec/Prov on ShardedPlacementConfig, not Base")
	}
	probe := mk()
	if !workload.Sliceable(probe) {
		return ShardedPlacementResult{}, fmt.Errorf("sim: workload %q cannot be sharded per core", probe.Name())
	}
	cells := workload.Cells(probe, scfg.Base.CPU.Cores)
	if cells < 1 {
		return ShardedPlacementResult{}, fmt.Errorf("sim: workload %q has no processes to shard", probe.Name())
	}
	procs := len(probe.Processes())

	sres := ShardedPlacementResult{Cells: cells}
	tracers := make([]*telemetry.Tracer, cells)
	recorders := make([]*provenance.Recorder, cells)
	sres.Planes = make([]*fault.Plane, cells)
	for c := 0; c < cells; c++ {
		if scfg.Trace {
			tracers[c] = telemetry.New()
			sres.Telemetry = append(sres.Telemetry, telemetry.Labeled{Label: cellLabel(scfg.Label, c), Tracer: tracers[c]})
		}
		if scfg.Prov && scfg.MkPolicy != nil {
			recorders[c] = provenance.New()
		}
		if !scfg.FaultSpec.Zero() {
			sres.Planes[c] = fault.New(scfg.FaultSpec, scfg.FaultSeed+int64(c))
		}
	}

	results, stats, err := runner.ShardGroup(
		runner.Config{Workers: scfg.Shards, NowNS: scfg.NowNS}, cells,
		func(c int) string { return cellLabel(scfg.Label, c) },
		func(cell int) (PlacementResult, error) {
			refs := workload.SliceRefs(int64(scfg.Base.TotalRefs), procs, cell, cells)
			if refs == 0 {
				return PlacementResult{}, nil
			}
			sliced, err := workload.Slice(mk(), cell, cells)
			if err != nil {
				return PlacementResult{}, err
			}
			cfg := scfg.Base
			cfg.CPU.Cores = 1
			cfg.TotalRefs = int(refs)
			cfg.Tiers = mem.TierChain(shardTiers(scfg.Base.Tiers, cells))
			if scfg.MkPolicy != nil {
				cfg.Policy = scfg.MkPolicy()
			}
			cfg.Tracer = tracers[cell]
			cfg.Faults = sres.Planes[cell]
			cfg.Prov = recorders[cell]
			return RunPlacement(cfg, sliced)
		})
	sres.Stats = stats
	if err != nil {
		return sres, err
	}

	sres.Workload = probe.Name()
	sres.NumCores = cells
	for c, r := range results {
		if r.Arm != "" {
			sres.Arm = r.Arm
		}
		sres.Refs += r.Refs
		if r.DurationNS > sres.DurationNS {
			sres.DurationNS = r.DurationNS
		}
		sres.MemAccesses += r.MemAccesses
		sres.Tier1Hits += r.Tier1Hits
		sres.Promotions += r.Promotions
		sres.Demotions += r.Demotions
		sres.EmulInjected += r.EmulInjected
		sres.EmulFaults += r.EmulFaults
		sres.Failed += r.Failed
		sres.FailedCapacity += r.FailedCapacity
		sres.FailedPinned += r.FailedPinned
		sres.FailedVanished += r.FailedVanished
		sres.FailedSplit += r.FailedSplit
		sres.Retried += r.Retried
		sres.RetrySucceeded += r.RetrySucceeded
		sres.RetrySuperseded += r.RetrySuperseded
		sres.RetryDropped += r.RetryDropped
		sres.TxStarted += r.TxStarted
		sres.TxCommitted += r.TxCommitted
		sres.AbortedDirty += r.AbortedDirty
		sres.ShadowHits += r.ShadowHits
		sres.ShadowStale += r.ShadowStale
		sres.AdmittedPromotions += r.AdmittedPromotions
		sres.AdmittedDemotions += r.AdmittedDemotions
		sres.DeferredAdmission += r.DeferredAdmission
		sres.RejectedPromotions += r.RejectedPromotions
		sres.RejectedDemotions += r.RejectedDemotions
		sres.FaultsInjected += r.FaultsInjected
		sres.Quarantined = prefixQuarantined(sres.Quarantined, scfg.Label, c, r.Quarantined)
	}
	if scfg.Prov && scfg.MkPolicy != nil {
		parts := make([]provenance.Log, 0, cells)
		for c, rec := range recorders {
			if rec.Enabled() {
				parts = append(parts, rec.Snapshot(cellLabel(scfg.Label, c)))
			}
		}
		sres.Prov = provenance.MergeLogs(scfg.Label, parts)
		sres.HasProv = true
	}
	return sres, nil
}

// MergedFaultAttribution is FaultAttribution over a sharded run's
// per-cell planes: per-site injections sum in cell order, the
// mover/quarantine rows come from the fused result.
func MergedFaultAttribution(planes []*fault.Plane, res PlacementResult) []report.FaultRow {
	rows := make([]report.FaultRow, 0, 16)
	for _, s := range fault.Sites() {
		var total uint64
		for _, p := range planes {
			total += p.Injected(s)
		}
		rows = append(rows, report.FaultRow{Name: "fault/" + s.String() + "_injected", Value: total})
	}
	rows = append(rows,
		report.FaultRow{Name: "mover/failed", Value: res.Failed},
		report.FaultRow{Name: "mover/failed_capacity", Value: res.FailedCapacity},
		report.FaultRow{Name: "mover/failed_pinned", Value: res.FailedPinned},
		report.FaultRow{Name: "mover/failed_vanished", Value: res.FailedVanished},
		report.FaultRow{Name: "mover/failed_split", Value: res.FailedSplit},
		report.FaultRow{Name: "mover/retries", Value: res.Retried},
		report.FaultRow{Name: "mover/retry_succeeded", Value: res.RetrySucceeded},
		report.FaultRow{Name: "mover/retry_superseded", Value: res.RetrySuperseded},
		report.FaultRow{Name: "mover/retry_dropped", Value: res.RetryDropped},
		report.FaultRow{Name: "mover/tx_started", Value: res.TxStarted},
		report.FaultRow{Name: "mover/tx_committed", Value: res.TxCommitted},
		report.FaultRow{Name: "mover/aborted_dirty", Value: res.AbortedDirty},
		report.FaultRow{Name: "mover/shadow_hits", Value: res.ShadowHits},
		report.FaultRow{Name: "mover/shadow_stale", Value: res.ShadowStale},
		report.FaultRow{Name: "mover/admitted_promotions", Value: res.AdmittedPromotions},
		report.FaultRow{Name: "mover/admitted_demotions", Value: res.AdmittedDemotions},
		report.FaultRow{Name: "mover/deferred_admission", Value: res.DeferredAdmission},
		report.FaultRow{Name: "mover/rejected_promotions", Value: res.RejectedPromotions},
		report.FaultRow{Name: "mover/rejected_demotions", Value: res.RejectedDemotions},
		report.FaultRow{Name: "quarantined_mechanisms", Value: uint64(len(res.Quarantined))},
	)
	return rows
}
