// Package sim wires the simulated machine, a workload, and the TMP
// profiler into a runnable experiment: it drives references through
// the cores, ticks the profiler daemon, cuts epochs at virtual-time
// horizons, and collects the per-epoch harvests every figure and table
// in the evaluation is computed from.
package sim

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/fault/invariant"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// Config assembles a run.
type Config struct {
	CPU cpu.Config
	// Tiers sizes physical memory; when nil, SlackRatio sizes a
	// fast tier holding the whole footprint (profiling-only runs).
	Tiers []mem.TierSpec
	TMP   core.Config
	// EpochNS is the placement epoch (the paper uses 1 virtual
	// second).
	EpochNS int64
	// TotalRefs bounds the run.
	TotalRefs int
	// BatchSize is how many references execute between daemon ticks.
	BatchSize int
	// Huge enables THP backing for the workload's huge regions.
	Huge bool
	// Usage supplies per-PID resource shares to the TMP daemon's
	// process filter; nil profiles every registered process.
	Usage core.UsageFunc
	// Tracer, when non-nil, records structured telemetry for the run
	// (events, counters). Telemetry is inert: results are byte-identical
	// with or without it.
	Tracer *telemetry.Tracer
	// Faults, when non-nil, is the run's fault-injection plane (one
	// plane per run, like Tracer). A nil plane — and a plane whose
	// spec is all zero — is inert: results are byte-identical to an
	// unfaulted run (see TestFaultPlaneInertEndToEnd).
	Faults *fault.Plane
	// Invariants asserts the epoch invariant checker after every
	// harvest; it is forced on whenever Faults can inject.
	Invariants bool
}

// ScaledSecond is the laptop-scale equivalent of one testbed second:
// every interval in the paper (1 s epochs, 1 s A-bit scans, 1 s
// process-filter re-evaluation, 100 ms HWPC windows) is scaled by the
// same factor so their ratios — the only thing the evaluation depends
// on — are preserved while runs finish in seconds of real time.
const ScaledSecond = int64(1_000_000) // 1 virtual ms

// DefaultConfig returns a profiling-run configuration for a workload:
// IBS base period scaled for multi-million-reference streams,
// scaled-second epochs, THP on.
func DefaultConfig(w workload.Workload, ibsPeriod int, totalRefs int) Config {
	footPages := int(w.FootprintBytes() >> mem.PageShift)
	// Fast tier big enough for everything plus slack: profiling runs
	// measure detection, not placement.
	tiers := mem.DefaultTiers(footPages+footPages/4+mem.HugePages, footPages/2+mem.HugePages)
	cpuCfg := cpu.DefaultConfig()
	cpuCfg.SoftCostDiv = 1_000_000_000 / ScaledSecond
	tmp := core.DefaultConfig(ibsPeriod)
	tmp.Abit.Interval = ScaledSecond
	tmp.FilterInterval = ScaledSecond
	tmp.HWPC.Window = ScaledSecond / 10
	return Config{
		CPU:       cpuCfg,
		Tiers:     tiers,
		TMP:       tmp,
		EpochNS:   ScaledSecond,
		TotalRefs: totalRefs,
		BatchSize: 1024,
		Huge:      true,
	}
}

// Hooks observe a run.
type Hooks struct {
	// OnOutcome sees every completed reference (ground truth for
	// heatmaps). The pointer is reused; copy what you keep.
	OnOutcome func(o *trace.Outcome)
	// OnEpoch sees each harvested epoch in order.
	OnEpoch func(ep core.EpochStats)
}

// Result summarizes a run.
type Result struct {
	Workload   string
	Epochs     []core.EpochStats
	Refs       int
	DurationNS int64
	NumCores   int
	// Overheads per mechanism (virtual ns charged).
	IBSOverheadNS  int64
	AbitOverheadNS int64
	HWPCOverheadNS int64
	MinorFaults    uint64
	HugeFaults     uint64
	// Quarantined lists monitoring mechanisms the profiler
	// permanently disabled for excessive injected-fault rates, in
	// fixed (ibs, abit, hwpc) order. Empty without fault injection.
	Quarantined []string
}

// OverheadFraction returns total profiling overhead as a fraction of
// aggregate CPU time (the §VI-B "workload overhead as a percentage of
// application overhead" metric): overhead cycles are spread across
// cores, so they are normalized by duration x cores.
func (r Result) OverheadFraction() float64 {
	if r.DurationNS == 0 || r.NumCores == 0 {
		return 0
	}
	return float64(r.IBSOverheadNS+r.AbitOverheadNS+r.HWPCOverheadNS) /
		(float64(r.DurationNS) * float64(r.NumCores))
}

// Runner is one assembled experiment.
type Runner struct {
	Machine  *cpu.Machine
	Profiler *core.Profiler
	Workload workload.Workload
	cfg      Config
}

// New assembles a runner.
func New(cfg Config, w workload.Workload) (*Runner, error) {
	if cfg.TotalRefs <= 0 {
		return nil, fmt.Errorf("sim: TotalRefs %d must be positive", cfg.TotalRefs)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1024
	}
	if cfg.EpochNS <= 0 {
		cfg.EpochNS = 1_000_000_000
	}
	if cfg.Tiers == nil {
		footPages := int(w.FootprintBytes() >> mem.PageShift)
		cfg.Tiers = mem.DefaultTiers(footPages+footPages/4+mem.HugePages, footPages/2+mem.HugePages)
	}
	m, err := cpu.NewMachine(cfg.CPU, cfg.Tiers)
	if err != nil {
		return nil, err
	}
	if cfg.Huge {
		m.SetHugeHint(workload.HugeHintFor(w))
	}
	prof, err := core.New(cfg.TMP, m, cfg.Usage)
	if err != nil {
		return nil, err
	}
	if cfg.Tracer.Enabled() {
		m.Phys.SetTracer(cfg.Tracer)
		prof.SetTracer(cfg.Tracer)
	}
	if cfg.Faults != nil {
		m.Phys.SetFaultPlane(cfg.Faults)
		prof.SetFaultPlane(cfg.Faults)
		if cfg.Tracer.Enabled() {
			cfg.Faults.SetTracer(cfg.Tracer)
		}
	}
	for _, pid := range w.Processes() {
		prof.Register(pid)
	}
	return &Runner{Machine: m, Profiler: prof, Workload: w, cfg: cfg}, nil
}

// Run executes the configured number of references, harvesting epochs
// at virtual-time horizons (plus a final partial epoch), and returns
// the collected result.
func (r *Runner) Run(hooks Hooks) (Result, error) {
	res := Result{Workload: r.Workload.Name()}
	buf := make([]trace.Ref, r.cfg.BatchSize)
	// Under fault injection every epoch must leave placement state
	// conserved; the checker is pure observation, so checked and
	// unchecked runs produce the same bytes.
	var inv *invariant.Checker
	if r.cfg.Invariants || r.cfg.Faults.Enabled() {
		inv = invariant.New()
	}
	check := func() error {
		if inv == nil {
			return nil
		}
		return inv.Check(r.Machine.Phys, r.Machine.Tables(), nil)
	}
	nextEpoch := r.cfg.EpochNS
	executed := 0
	for executed < r.cfg.TotalRefs {
		n := r.cfg.BatchSize
		if remain := r.cfg.TotalRefs - executed; remain < n {
			n = remain
		}
		batch := buf[:n]
		r.Workload.Fill(batch)
		for i := range batch {
			o, err := r.Machine.Execute(batch[i])
			if err != nil {
				return res, fmt.Errorf("sim: executing ref %d: %w", executed+i, err)
			}
			if hooks.OnOutcome != nil {
				hooks.OnOutcome(o)
			}
		}
		executed += n
		now := r.Machine.Now()
		r.Profiler.Tick(now)
		for now >= nextEpoch {
			ep := r.Profiler.HarvestEpoch()
			res.Epochs = append(res.Epochs, ep)
			if hooks.OnEpoch != nil {
				hooks.OnEpoch(ep)
			}
			if err := check(); err != nil {
				return res, fmt.Errorf("sim: epoch %d: %w", len(res.Epochs)-1, err)
			}
			nextEpoch += r.cfg.EpochNS
		}
	}
	// Final partial epoch.
	ep := r.Profiler.HarvestEpoch()
	if len(ep.Pages) > 0 {
		res.Epochs = append(res.Epochs, ep)
		if hooks.OnEpoch != nil {
			hooks.OnEpoch(ep)
		}
	}
	if err := check(); err != nil {
		return res, fmt.Errorf("sim: final epoch: %w", err)
	}
	res.Refs = executed
	res.DurationNS = r.Machine.Now()
	res.NumCores = len(r.Machine.Cores())
	res.IBSOverheadNS, res.AbitOverheadNS, res.HWPCOverheadNS = r.Profiler.OverheadNS()
	res.MinorFaults = r.Machine.MinorFaults
	res.HugeFaults = r.Machine.HugeFaults
	res.Quarantined = r.Profiler.QuarantinedMechanisms()
	return res, nil
}
