// Package autonuma models Linux's NUMA-balancing profiler, the
// incumbent the paper positions TMP against (§II-A): the kernel
// periodically walks a portion of each task's address space (256 MB by
// default) changing PTE permissions to inaccessible; the next access
// to an unmapped page takes a hint fault, identifying the accessing
// task and the touched page. The information is exact first-access
// data — but every observation costs a page fault, and the periodic
// PTE rewriting costs walks and TLB invalidations. TMP's A-bit
// scanning extracts strictly less information per page (no faulting
// task identity) at a small fraction of the cost; the autonuma-vs-TMP
// experiment quantifies that trade-off.
package autonuma

import (
	"fmt"

	"sort"

	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/trace"
)

// Config parameterizes the balancer's profiling side.
type Config struct {
	// Interval is the virtual-ns period between protection passes
	// (task_numa_work cadence).
	Interval int64
	// WindowPages caps how many leaf PTEs one pass protects per
	// process (the 256 MB scan window, in pages, scaled).
	WindowPages int
	// FaultCost is the wall-clock cost of one hint fault (kernel
	// entry, task identification, mapping restore); Linux hint
	// faults cost a few microseconds.
	FaultCost int64
	// PerPTECost is the wall-clock cost of rewriting one PTE during
	// a protection pass.
	PerPTECost int64
}

// DefaultConfig mirrors kernel defaults at laptop scale.
func DefaultConfig() Config {
	return Config{
		Interval:    1_000_000_000,
		WindowPages: 4096,
		FaultCost:   3000,
		PerPTECost:  40,
	}
}

// Stats counts balancer activity.
type Stats struct {
	Passes     uint64
	Protected  uint64 // PTEs marked inaccessible across all passes
	HintFaults uint64
	OverheadNS int64 // protection passes + fault handling
}

// Scanner drives the protection passes and collects hint-fault
// observations.
type Scanner struct {
	cfg     Config
	machine *cpu.Machine
	stats   Stats
	next    int64
	// cursor remembers each process's scan position so successive
	// passes cover the address space round-robin, like
	// task_numa_work's mm->numa_scan_offset.
	cursor map[int]mem.VPN
	// Per-page hint-fault accumulation for the current epoch, held
	// dense: pages intern to stable ids once (the table persists
	// across epochs — working sets recur) and faults bump a slice
	// slot. active lists the ids touched this epoch so harvest zeroes
	// only those instead of reallocating a map every epoch.
	tab    *pageidx.Table[core.PageKey]
	counts []uint32
	active []uint32
}

// New installs the hint-fault handler and returns the scanner.
func New(cfg Config, m *cpu.Machine) (*Scanner, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("autonuma: interval %d must be positive", cfg.Interval)
	}
	if cfg.WindowPages <= 0 {
		return nil, fmt.Errorf("autonuma: window %d must be positive", cfg.WindowPages)
	}
	s := &Scanner{
		cfg:     cfg,
		machine: m,
		next:    cfg.Interval,
		cursor:  make(map[int]mem.VPN),
		tab:     pageidx.New(0, core.PageKeyHash),
	}
	m.SetHintFaultHandler(s.onHintFault)
	return s, nil
}

// onHintFault records the observation and charges the fault cost.
func (s *Scanner) onHintFault(o *trace.Outcome, pd *mem.PageDescriptor) int64 {
	s.stats.HintFaults++
	s.bump(core.PageKey{PID: o.PID, VPN: mem.VPNOf(o.VAddr)})
	cost := s.machine.SoftCost(s.cfg.FaultCost)
	s.stats.OverheadNS += cost
	return cost
}

// bump counts one hint fault against a page's dense slot.
func (s *Scanner) bump(key core.PageKey) {
	id := s.tab.Intern(key)
	for int(id) >= len(s.counts) {
		s.counts = append(s.counts, 0)
	}
	if s.counts[id] == 0 {
		s.active = append(s.active, id)
	}
	s.counts[id]++
}

// Due reports whether a protection pass is due.
func (s *Scanner) Due(now int64) bool { return now >= s.next }

// PassIfDue runs a protection pass when the interval has elapsed,
// returning the pass cost (already recorded in the stats) and whether
// it ran. The caller charges the cost to the core running the kernel
// worker.
func (s *Scanner) PassIfDue(now int64, pids []int) (int64, bool) {
	if !s.Due(now) {
		return 0, false
	}
	for s.next <= now {
		s.next += s.cfg.Interval
	}
	return s.Pass(pids), true
}

// Pass protects the next window of each process's pages. Each
// protected PTE's cached translation must be invalidated for the
// permission change to take effect — the TLB-flush expense §II-A
// charges AutoNUMA for.
func (s *Scanner) Pass(pids []int) int64 {
	s.stats.Passes++
	var protected int
	for _, pid := range pids {
		table, ok := s.machine.Tables()[pid]
		if !ok {
			continue
		}
		start := s.cursor[pid]
		marked, last, wrapped := 0, start, false
		// Walk from the cursor, marking up to WindowPages leaves.
		table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
			if vpn < start {
				wrapped = true // note pages below the cursor exist
				return true
			}
			if marked >= s.cfg.WindowPages {
				return false
			}
			*pte |= pagetable.BitProtNone
			marked++
			last = vpn
			return true
		})
		if marked < s.cfg.WindowPages && wrapped {
			// Window ran off the end: wrap to the lowest pages.
			table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
				if vpn >= start || marked >= s.cfg.WindowPages {
					return false
				}
				*pte |= pagetable.BitProtNone
				marked++
				last = vpn
				return true
			})
		}
		s.cursor[pid] = last + 1
		protected += marked
	}
	s.stats.Protected += uint64(protected)
	cost := s.machine.SoftCost(int64(protected) * s.cfg.PerPTECost)
	// The permission change requires invalidating stale translations.
	cost += s.machine.FlushAllTLBs()
	s.stats.OverheadNS += cost
	return cost
}

// HarvestEpoch returns the hint-fault observations as an EpochStats in
// the same shape TMP produces (Abit field carries the fault counts so
// the policy machinery can rank on it), and resets the accumulator.
func (s *Scanner) HarvestEpoch(epoch int) core.EpochStats {
	stats := core.EpochStats{Epoch: epoch}
	sort.Slice(s.active, func(i, j int) bool {
		return core.PageKeyLess(s.tab.Key(s.active[i]), s.tab.Key(s.active[j]))
	})
	stats.Pages = make([]core.PageStat, 0, len(s.active))
	for _, id := range s.active {
		stats.Pages = append(stats.Pages, core.PageStat{
			Key:  s.tab.Key(id),
			Abit: s.counts[id],
		})
		s.counts[id] = 0
	}
	s.active = s.active[:0]
	return stats
}

// DistinctPages returns how many pages the current epoch has observed.
func (s *Scanner) DistinctPages() int { return len(s.active) }

// Stats returns a copy of the counters.
func (s *Scanner) Stats() Stats { return s.stats }
