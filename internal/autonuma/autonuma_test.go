package autonuma

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func testMachine(t *testing.T) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(128, 128))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func touch(t *testing.T, m *cpu.Machine, pid int, vaddr uint64) {
	t.Helper()
	if _, err := m.Execute(trace.Ref{PID: pid, VAddr: vaddr, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
}

func TestPassProtectsAndFaultsReveal(t *testing.T) {
	m := testMachine(t)
	sc, err := New(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		touch(t, m, 1, i*4096)
	}
	cost := sc.Pass([]int{1})
	if cost <= 0 {
		t.Errorf("protection pass cost = %d", cost)
	}
	if sc.Stats().Protected != 8 {
		t.Fatalf("protected %d PTEs, want 8", sc.Stats().Protected)
	}
	// The next access to each page takes exactly one hint fault.
	for i := uint64(0); i < 8; i++ {
		touch(t, m, 1, i*4096)
	}
	if m.HintFaults != 8 {
		t.Fatalf("hint faults = %d, want 8", m.HintFaults)
	}
	if sc.DistinctPages() != 8 {
		t.Errorf("distinct pages observed = %d, want 8", sc.DistinctPages())
	}
	// The hint is consumed: re-access does not fault again.
	for i := uint64(0); i < 8; i++ {
		touch(t, m, 1, i*4096)
	}
	if m.HintFaults != 8 {
		t.Errorf("hint faults re-fired: %d", m.HintFaults)
	}
}

func TestWindowLimitsAndCursorAdvances(t *testing.T) {
	m := testMachine(t)
	cfg := DefaultConfig()
	cfg.WindowPages = 4
	sc, _ := New(cfg, m)
	for i := uint64(0); i < 10; i++ {
		touch(t, m, 1, i*4096)
	}
	sc.Pass([]int{1})
	if sc.Stats().Protected != 4 {
		t.Fatalf("first pass protected %d, want 4", sc.Stats().Protected)
	}
	sc.Pass([]int{1})
	if sc.Stats().Protected != 8 {
		t.Fatalf("second pass total %d, want 8 (cursor advanced)", sc.Stats().Protected)
	}
	// Touch all; only 8 distinct pages had been protected.
	for i := uint64(0); i < 10; i++ {
		touch(t, m, 1, i*4096)
	}
	if m.HintFaults != 8 {
		t.Errorf("hint faults = %d, want 8", m.HintFaults)
	}
}

func TestCursorWrapsAround(t *testing.T) {
	m := testMachine(t)
	cfg := DefaultConfig()
	cfg.WindowPages = 6
	sc, _ := New(cfg, m)
	for i := uint64(0); i < 8; i++ {
		touch(t, m, 1, i*4096)
	}
	sc.Pass([]int{1}) // pages 0..5
	sc.Pass([]int{1}) // pages 6,7 then wraps to 0..3
	if sc.Stats().Protected != 12 {
		t.Errorf("wrapped pass total %d, want 12", sc.Stats().Protected)
	}
}

func TestHarvestEpochShape(t *testing.T) {
	m := testMachine(t)
	sc, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x1000)
	sc.Pass([]int{1})
	touch(t, m, 1, 0x1000)
	ep := sc.HarvestEpoch(3)
	if ep.Epoch != 3 || len(ep.Pages) != 1 {
		t.Fatalf("harvest = %+v", ep)
	}
	if ep.Pages[0].Key != (core.PageKey{PID: 1, VPN: 1}) || ep.Pages[0].Abit != 1 {
		t.Errorf("observation wrong: %+v", ep.Pages[0])
	}
	if sc.DistinctPages() != 0 {
		t.Errorf("harvest did not reset the accumulator")
	}
}

func TestPassIfDueSchedule(t *testing.T) {
	m := testMachine(t)
	cfg := DefaultConfig()
	cfg.Interval = 1000
	sc, _ := New(cfg, m)
	touch(t, m, 1, 0x1000)
	if _, ran := sc.PassIfDue(999, []int{1}); ran {
		t.Errorf("pass ran early")
	}
	if _, ran := sc.PassIfDue(1000, []int{1}); !ran {
		t.Errorf("pass did not run on time")
	}
}

func TestFaultCostCharged(t *testing.T) {
	m := testMachine(t)
	sc, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x1000)
	sc.Pass([]int{1})
	core0 := m.CoreFor(1)
	before := core0.Now()
	touch(t, m, 1, 0x1000)
	// The hint fault's cost lands in the access latency.
	if core0.Now()-before < sc.cfg.FaultCost {
		t.Errorf("hint-fault cost not charged: %d", core0.Now()-before)
	}
	if sc.Stats().OverheadNS == 0 {
		t.Errorf("overhead not recorded")
	}
}

func TestBadConfig(t *testing.T) {
	m := testMachine(t)
	if _, err := New(Config{Interval: 0, WindowPages: 1}, m); err == nil {
		t.Errorf("zero interval accepted")
	}
	if _, err := New(Config{Interval: 1, WindowPages: 0}, m); err == nil {
		t.Errorf("zero window accepted")
	}
}
