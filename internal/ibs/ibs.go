// Package ibs implements the trace-based sampling engine of the
// paper's TMP: an IBS/PEBS-style mechanism that tags every Nth retired
// micro-op, records the full memory-access context of tagged loads and
// stores (timestamp, CPU, PID, IP, virtual and physical data address,
// access type, data source, TLB status), and delivers records through
// a ring buffer that the TMP driver drains. Samples for memory ops
// whose data source is a cache level are recorded but TMP's hotness
// accumulation only credits demand accesses served from actual memory
// (the paper samples "if the data source is out of local, combined
// level 3 LLCs").
package ibs

import (
	"fmt"

	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/trace"
)

// Sampling periods, in retired micro-ops per tagged op. The paper's
// hardware default is 1/262144; its chosen rate is "4x the default".
// Experiments at laptop scale pass proportionally smaller periods via
// Config.Period so that multi-million-reference streams still yield
// statistically meaningful sample populations; the 1x/4x/8x *ratios*
// are what every figure depends on.
const (
	HardwareDefaultPeriod = 262144
	// Rate multipliers relative to a chosen base period.
	Rate1x = 1
	Rate4x = 4
	Rate8x = 8
)

// PeriodForRate derives the op period for a rate multiplier: 4x the
// sampling rate means one quarter the period.
func PeriodForRate(basePeriod, rate int) int {
	if rate <= 0 {
		rate = 1
	}
	p := basePeriod / rate
	if p < 1 {
		p = 1
	}
	return p
}

// Config parameterizes the engine.
type Config struct {
	// Period is the op-sampling period (ops per tagged op).
	Period int
	// RingCapacity is the sample buffer size; RingThreshold is the
	// occupancy at which the "interrupt" fires and the registered
	// drain callback runs.
	RingCapacity  int
	RingThreshold int
	// PerSampleCost is the virtual-ns charged to the executing core
	// for each tagged op's micro-interrupt (tagging + record copy).
	PerSampleCost int64
	// DrainCostPerSample is charged when the ring is drained, the
	// kernel-side copy-out the paper's TMP driver performs.
	DrainCostPerSample int64
	// Buffered selects LWP/PEBS-style delivery (§II-B): the hardware
	// appends records to the ring without raising an interrupt per
	// sample, and software is only interrupted at the ring threshold.
	// Per-sample cost drops to the record-append expense
	// (BufferedAppendCost); the trade-off is delivery latency — up to
	// a threshold's worth of samples sit unprocessed. False models
	// IBS op sampling, which interrupts on every tagged op.
	Buffered bool
	// BufferedAppendCost is the per-record hardware append cost in
	// buffered mode.
	BufferedAppendCost int64
	// MemoryOnly restricts hotness-relevant samples to accesses whose
	// data source is memory (TMP's configuration). When false every
	// tagged load/store is delivered, which inflates cache-hot pages
	// — an ablation arm.
	MemoryOnly bool
	// IncludePrefetch delivers samples for prefetch-hit demand
	// accesses too (ablation; TMP excludes them).
	IncludePrefetch bool
}

// DefaultConfig returns TMP's production configuration at a given
// period.
func DefaultConfig(period int) Config {
	return Config{
		Period:             period,
		RingCapacity:       4096,
		RingThreshold:      3072,
		PerSampleCost:      1200,
		BufferedAppendCost: 10,
		DrainCostPerSample: 40,
		MemoryOnly:         true,
	}
}

// LWPConfig returns the buffered-delivery variant of DefaultConfig:
// same sampling period, interrupts only at the ring threshold.
func LWPConfig(period int) Config {
	cfg := DefaultConfig(period)
	cfg.Buffered = true
	return cfg
}

// Stats exposes engine counters.
type Stats struct {
	TaggedOps      uint64 // ops selected by the period counter
	MemorySamples  uint64 // tagged ops that were loads/stores
	Delivered      uint64 // samples pushed to the ring
	FilteredCache  uint64 // memory-op tags dropped by MemoryOnly
	FilteredPrefix uint64 // tags dropped because they hit prefetched lines
	Drains         uint64
	OverheadNS     int64 // total virtual time charged to cores

	// Fault-plane injections (zero without a plane). FaultDrops are
	// individual samples lost before reaching the ring;
	// FaultOverflows are whole drain batches lost to buffer overruns,
	// FaultLost the samples those batches held. The profiler's
	// quarantine judges this mechanism by
	// (FaultDrops+FaultLost) / (Delivered+FaultDrops+FaultLost).
	FaultDrops     uint64
	FaultOverflows uint64
	FaultLost      uint64
}

// FaultRate returns the fraction of would-be-delivered samples lost to
// injected faults.
func (s Stats) FaultRate() (lost, attempts uint64) {
	lost = s.FaultDrops + s.FaultLost
	return lost, s.Delivered + s.FaultDrops
}

// Engine is the sampling engine. It implements cpu.RetireObserver.
type Engine struct {
	cfg      Config
	ring     *trace.Ring
	stats    Stats
	toNext   int // ops until the next tag
	rng      uint64
	disabled bool
	// quarantined is the sticky disabled state: the profiler parks a
	// mechanism here when its injected-fault rate crosses the
	// quarantine threshold, and no Enable (HWPC gate reopening
	// included) may resurrect it.
	quarantined bool
	// faults, when non-nil, can drop delivered samples and lose drain
	// batches.
	faults *fault.Plane

	// Accumulate attaches the TMP accumulation hook: it is invoked
	// for every delivered sample at drain time with the page
	// descriptor resolved from the physical address.
	phys  *mem.PhysMem
	onAcc func(s trace.Sample, pd *mem.PageDescriptor)

	drainBuf []trace.Sample

	// Telemetry (nil handles no-op when telemetry is off). lastNow is
	// the virtual timestamp of the last sample considered, which
	// stamps drain events: a threshold-triggered drain happens at the
	// push that crossed the threshold. Epoch flushes advance it to the
	// harvest time via FlushAt so the event stream stays time-ordered.
	tel         *telemetry.Tracer
	lastNow     int64
	lastDropped uint64
	ctrTagged   *telemetry.Counter
	ctrDeliv    *telemetry.Counter
	ctrFiltC    *telemetry.Counter
	ctrFiltP    *telemetry.Counter
	ctrDrains   *telemetry.Counter
	ctrDropped  *telemetry.Counter
	ctrOverhead *telemetry.Counter
}

// SetTracer attaches the telemetry layer: drains emit KindIBSDrain
// events carrying delivered and ring-overrun-dropped sample counts,
// and the ibs/* counters sync at each drain. Record-only.
func (e *Engine) SetTracer(t *telemetry.Tracer) {
	e.tel = t
	e.ctrTagged = t.Counter("ibs/tagged_ops")
	e.ctrDeliv = t.Counter("ibs/delivered")
	e.ctrFiltC = t.Counter("ibs/filtered_cache")
	e.ctrFiltP = t.Counter("ibs/filtered_prefetch")
	e.ctrDrains = t.Counter("ibs/drains")
	e.ctrDropped = t.Counter("ibs/dropped")
	e.ctrOverhead = t.Counter("ibs/overhead_ns")
}

// New builds an engine. phys may be nil if no accumulation hook is
// used (samples are still available via DrainInto).
func New(cfg Config, phys *mem.PhysMem) (*Engine, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("ibs: period %d must be positive", cfg.Period)
	}
	if cfg.RingCapacity <= 0 {
		return nil, fmt.Errorf("ibs: ring capacity %d must be positive", cfg.RingCapacity)
	}
	if cfg.RingThreshold <= 0 || cfg.RingThreshold > cfg.RingCapacity {
		cfg.RingThreshold = cfg.RingCapacity * 3 / 4
	}
	e := &Engine{cfg: cfg, toNext: cfg.Period, rng: 0x9e3779b97f4a7c15, phys: phys}
	e.ring = trace.NewRing(cfg.RingCapacity, cfg.RingThreshold, func(r *trace.Ring) {
		e.drain()
	})
	return e, nil
}

// SetAccumulator registers the per-sample accumulation hook run at
// drain time (TMP registers a hook that bumps PageDescriptor
// TraceEpoch counters).
func (e *Engine) SetAccumulator(fn func(s trace.Sample, pd *mem.PageDescriptor)) {
	e.onAcc = fn
}

// Enable resumes sampling; a no-op once the engine is quarantined.
func (e *Engine) Enable() {
	if e.quarantined {
		return
	}
	e.disabled = false
}

// Disable pauses sampling (HWPC gating: trace collection off during
// cache-quiet phases).
func (e *Engine) Disable() { e.disabled = true }

// Enabled reports whether sampling is active.
func (e *Engine) Enabled() bool { return !e.disabled }

// Quarantine disables sampling permanently: the profiler decided this
// mechanism's fault rate makes its evidence corrupt. Unlike Disable,
// no later Enable reverses it.
func (e *Engine) Quarantine() {
	e.quarantined = true
	e.disabled = true
}

// Quarantined reports whether the engine is permanently off.
func (e *Engine) Quarantined() bool { return e.quarantined }

// SetFaultPlane attaches the fault-injection plane. nil (the default)
// injects nothing.
func (e *Engine) SetFaultPlane(p *fault.Plane) { e.faults = p }

// ObserveRetire implements cpu.RetireObserver: advance the op counter
// by the reference's op-group size and, when the period counter
// crosses zero inside the group, tag an op. The memory op is the
// first op of its group, so a tag lands on it only when the period
// boundary falls exactly there — reproducing IBS's property that most
// tagged ops are not loads/stores and yield no memory sample.
func (e *Engine) ObserveRetire(o *trace.Outcome, ops int) int64 {
	if e.disabled {
		return 0
	}
	var overhead int64
	perTagCost := e.cfg.PerSampleCost
	if e.cfg.Buffered {
		// LWP/PEBS: the hardware appends the record itself; no
		// interrupt until the ring threshold fires (charged at drain).
		perTagCost = e.cfg.BufferedAppendCost
	}
	for e.toNext <= ops {
		// An op in this group is tagged; offset of the tagged op
		// within the group (1-based).
		offset := e.toNext
		// Hardware randomizes the low bits of the period counter
		// (IbsOpCurCnt) so the tagged-op position does not alias
		// against loop structure; a small deterministic xorshift
		// jitter reproduces that.
		e.rng ^= e.rng << 13
		e.rng ^= e.rng >> 7
		e.rng ^= e.rng << 17
		jitter := 0
		if e.cfg.Period > 16 {
			jitter = int(e.rng&15) - 8
		}
		e.toNext += e.cfg.Period + jitter
		e.stats.TaggedOps++
		overhead += perTagCost
		if offset == 1 {
			// The tag fell on the memory op itself.
			e.recordSample(o)
		}
	}
	e.toNext -= ops
	e.stats.OverheadNS += overhead
	return overhead
}

func (e *Engine) recordSample(o *trace.Outcome) {
	e.lastNow = o.Now
	e.stats.MemorySamples++
	if e.cfg.MemoryOnly && !o.Source.IsMemory() {
		e.stats.FilteredCache++
		return
	}
	if !e.cfg.IncludePrefetch && o.PrefetchHit {
		e.stats.FilteredPrefix++
		return
	}
	if e.faults.DropIBSSample() {
		// The hardware tagged the op but the record never made it to
		// the ring (lost micro-interrupt). The tagging cost was still
		// paid by the core; only the evidence is gone.
		e.stats.FaultDrops++
		return
	}
	e.stats.Delivered++
	e.ring.Push(trace.SampleFromOutcome(o))
}

// drain empties the ring through the accumulation hook. It is invoked
// by the ring's threshold interrupt and by Flush.
func (e *Engine) drain() {
	e.stats.Drains++
	e.drainBuf = e.ring.Drain(e.drainBuf[:0])
	cost := int64(len(e.drainBuf)) * e.cfg.DrainCostPerSample
	if e.cfg.Buffered && len(e.drainBuf) > 0 {
		// The threshold interrupt that triggered this drain.
		cost += e.cfg.PerSampleCost
	}
	e.stats.OverheadNS += cost
	if len(e.drainBuf) > 0 && e.faults.OverflowIBSDrain() {
		// Buffer overflow: the handler paid the copy-out cost but the
		// records were overwritten mid-flight — the whole batch is
		// lost before accumulation.
		e.stats.FaultOverflows++
		e.stats.FaultLost += uint64(len(e.drainBuf))
		e.drainBuf = e.drainBuf[:0]
	}
	if e.tel.Enabled() {
		dropped := e.ring.Dropped() - e.lastDropped
		e.lastDropped = e.ring.Dropped()
		if len(e.drainBuf) > 0 || dropped > 0 {
			e.tel.EmitIBSDrain(e.lastNow, cost, len(e.drainBuf), dropped)
		}
		e.ctrTagged.Set(e.stats.TaggedOps)
		e.ctrDeliv.Set(e.stats.Delivered)
		e.ctrFiltC.Set(e.stats.FilteredCache)
		e.ctrFiltP.Set(e.stats.FilteredPrefix)
		e.ctrDrains.Set(e.stats.Drains)
		e.ctrDropped.Set(e.ring.Dropped())
		e.ctrOverhead.Set(uint64(e.stats.OverheadNS))
	}
	if e.onAcc == nil {
		return
	}
	for i := range e.drainBuf {
		s := &e.drainBuf[i]
		var pd *mem.PageDescriptor
		if e.phys != nil {
			pd = e.phys.PhysToPage(s.PAddr)
		}
		e.onAcc(*s, pd)
	}
}

// Flush drains any buffered samples immediately (end of epoch).
func (e *Engine) Flush() { e.drain() }

// FlushAt is Flush with the caller's current virtual time: the drain
// event is stamped at the flush rather than at the last buffered
// sample, keeping the telemetry stream time-ordered across subsystems.
func (e *Engine) FlushAt(now int64) {
	if now > e.lastNow {
		e.lastNow = now
	}
	e.drain()
}

// DrainInto moves buffered samples into dst without running the
// accumulation hook; for tools that want raw records.
func (e *Engine) DrainInto(dst []trace.Sample) []trace.Sample {
	return e.ring.Drain(dst)
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Dropped returns ring-overrun losses.
func (e *Engine) Dropped() uint64 { return e.ring.Dropped() }

// Period returns the configured op period.
func (e *Engine) Period() int { return e.cfg.Period }
