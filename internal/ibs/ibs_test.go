package ibs

import (
	"testing"

	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

func memOutcome() *trace.Outcome {
	return &trace.Outcome{
		Ref:    trace.Ref{PID: 1, IP: 0x400000, VAddr: 0x1000, Kind: trace.Load},
		PAddr:  0x1000,
		Source: trace.SrcTier1,
	}
}

func cacheOutcome() *trace.Outcome {
	o := memOutcome()
	o.Source = trace.SrcL2
	return o
}

func TestPeriodForRate(t *testing.T) {
	if PeriodForRate(262144, Rate1x) != 262144 {
		t.Errorf("1x period wrong")
	}
	if PeriodForRate(262144, Rate4x) != 65536 {
		t.Errorf("4x period = %d, want 65536", PeriodForRate(262144, Rate4x))
	}
	if PeriodForRate(262144, Rate8x) != 32768 {
		t.Errorf("8x period wrong")
	}
	if PeriodForRate(2, 8) != 1 {
		t.Errorf("period floor broken")
	}
	if PeriodForRate(100, 0) != 100 {
		t.Errorf("rate 0 not treated as 1")
	}
}

func TestSamplingCadence(t *testing.T) {
	cfg := DefaultConfig(30)
	cfg.PerSampleCost = 0
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 100 refs x 3 ops = 300 ops at period 30: ~10 tags (the
	// hardware-style period jitter allows +-1).
	o := memOutcome()
	for i := 0; i < 100; i++ {
		e.ObserveRetire(o, 3)
	}
	if got := e.Stats().TaggedOps; got < 9 || got > 11 {
		t.Errorf("tagged ops = %d, want ~10", got)
	}
	// The memory op is the first op of each 3-op group, so about 1/3
	// of tags land on it; with period 30 and groups of 3 the tag
	// offset cycles deterministically.
	if got := e.Stats().MemorySamples; got == 0 || got > 10 {
		t.Errorf("memory samples = %d, want in (0,10]", got)
	}
}

func TestMemoryOnlyFilter(t *testing.T) {
	cfg := DefaultConfig(1) // tag every op
	cfg.MemoryOnly = true
	e, _ := New(cfg, nil)
	e.ObserveRetire(cacheOutcome(), 1)
	e.ObserveRetire(memOutcome(), 1)
	s := e.Stats()
	if s.Delivered != 1 || s.FilteredCache != 1 {
		t.Errorf("delivered/filtered = %d/%d, want 1/1", s.Delivered, s.FilteredCache)
	}
}

func TestPrefetchFilter(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemoryOnly = false
	e, _ := New(cfg, nil)
	o := cacheOutcome()
	o.PrefetchHit = true
	e.ObserveRetire(o, 1)
	if e.Stats().FilteredPrefix != 1 || e.Stats().Delivered != 0 {
		t.Errorf("prefetch-hit sample not filtered: %+v", e.Stats())
	}
	cfg.IncludePrefetch = true
	e2, _ := New(cfg, nil)
	e2.ObserveRetire(o, 1)
	if e2.Stats().Delivered != 1 {
		t.Errorf("IncludePrefetch ablation did not deliver")
	}
}

func TestEnableDisable(t *testing.T) {
	e, _ := New(DefaultConfig(1), nil)
	e.Disable()
	if e.Enabled() {
		t.Fatalf("Enabled after Disable")
	}
	if extra := e.ObserveRetire(memOutcome(), 1); extra != 0 {
		t.Errorf("disabled engine charged overhead %d", extra)
	}
	if e.Stats().TaggedOps != 0 {
		t.Errorf("disabled engine tagged ops")
	}
	e.Enable()
	e.ObserveRetire(memOutcome(), 1)
	if e.Stats().TaggedOps != 1 {
		t.Errorf("re-enabled engine not sampling")
	}
}

func TestOverheadCharged(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PerSampleCost = 500
	e, _ := New(cfg, nil)
	extra := e.ObserveRetire(memOutcome(), 1)
	if extra != 500 {
		t.Errorf("per-sample overhead = %d, want 500", extra)
	}
	if e.Stats().OverheadNS != 500 {
		t.Errorf("overhead not accumulated")
	}
}

func TestAccumulatorInvokedOnDrain(t *testing.T) {
	phys, err := mem.NewPhysMem(mem.DefaultTiers(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	pfn, _ := phys.Alloc(mem.FastTier, 1, 1)
	cfg := DefaultConfig(1)
	cfg.RingCapacity = 4
	cfg.RingThreshold = 2
	e, _ := New(cfg, phys)
	var seen []trace.Sample
	e.SetAccumulator(func(s trace.Sample, pd *mem.PageDescriptor) {
		if pd == nil || pd.Frame != pfn {
			t.Errorf("accumulator got wrong descriptor")
		}
		seen = append(seen, s)
	})
	o := memOutcome()
	o.PAddr = pfn.PAddrOf()
	e.ObserveRetire(o, 1)
	e.ObserveRetire(o, 1) // crosses threshold: drain fires
	if len(seen) != 2 {
		t.Fatalf("accumulator saw %d samples, want 2", len(seen))
	}
	if e.Stats().Drains != 1 {
		t.Errorf("Drains = %d, want 1", e.Stats().Drains)
	}
}

func TestFlushDrainsRemainder(t *testing.T) {
	e, _ := New(DefaultConfig(1), nil)
	count := 0
	e.SetAccumulator(func(s trace.Sample, pd *mem.PageDescriptor) { count++ })
	e.ObserveRetire(memOutcome(), 1)
	e.Flush()
	if count != 1 {
		t.Errorf("Flush delivered %d, want 1", count)
	}
}

func TestDrainIntoRaw(t *testing.T) {
	e, _ := New(DefaultConfig(1), nil)
	e.ObserveRetire(memOutcome(), 1)
	out := e.DrainInto(nil)
	if len(out) != 1 || out[0].VAddr != 0x1000 {
		t.Errorf("DrainInto = %+v", out)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := New(Config{Period: 0, RingCapacity: 8}, nil); err == nil {
		t.Errorf("zero period accepted")
	}
	if _, err := New(Config{Period: 1, RingCapacity: 0}, nil); err == nil {
		t.Errorf("zero ring accepted")
	}
}

func TestSamplingStatisticallyUniform(t *testing.T) {
	// Long-run property: tags per N ops converges to N/period
	// regardless of group size.
	cfg := DefaultConfig(1000)
	cfg.PerSampleCost = 0
	e, _ := New(cfg, nil)
	o := memOutcome()
	const refs = 200000
	for i := 0; i < refs; i++ {
		e.ObserveRetire(o, 7)
	}
	wantTags := uint64(refs * 7 / 1000)
	got := e.Stats().TaggedOps
	if got < wantTags-2 || got > wantTags+2 {
		t.Errorf("tags = %d, want ~%d", got, wantTags)
	}
}

func TestBufferedModeCutsPerTagCost(t *testing.T) {
	mk := func(buffered bool) *Engine {
		cfg := DefaultConfig(10)
		cfg.Buffered = buffered
		cfg.RingCapacity = 1 << 20 // avoid threshold drains in this test
		cfg.RingThreshold = 1 << 20
		e, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ibsEng, lwpEng := mk(false), mk(true)
	o := memOutcome()
	for i := 0; i < 10000; i++ {
		ibsEng.ObserveRetire(o, 3)
		lwpEng.ObserveRetire(o, 3)
	}
	if ibsEng.Stats().TaggedOps == 0 {
		t.Fatalf("no tags")
	}
	if lwpEng.Stats().OverheadNS*10 > ibsEng.Stats().OverheadNS {
		t.Errorf("buffered overhead %d not far below per-interrupt %d",
			lwpEng.Stats().OverheadNS, ibsEng.Stats().OverheadNS)
	}
	// Same sampling information either way (jitter streams are
	// per-engine but statistically identical; counts match closely).
	a, b := ibsEng.Stats().Delivered, lwpEng.Stats().Delivered
	diff := int64(a) - int64(b)
	if diff < 0 {
		diff = -diff
	}
	if diff*10 > int64(a)+1 {
		t.Errorf("delivered counts diverge: %d vs %d", a, b)
	}
}

func TestBufferedThresholdChargesInterrupt(t *testing.T) {
	cfg := LWPConfig(1)
	cfg.RingCapacity = 8
	cfg.RingThreshold = 4
	cfg.MemoryOnly = false
	e, _ := New(cfg, nil)
	o := memOutcome()
	var before int64
	for i := 0; i < 3; i++ {
		e.ObserveRetire(o, 1)
	}
	before = e.Stats().OverheadNS
	e.ObserveRetire(o, 1) // fourth delivery crosses the threshold
	if e.Stats().Drains != 1 {
		t.Fatalf("drains = %d, want 1", e.Stats().Drains)
	}
	if e.Stats().OverheadNS-before < cfg.PerSampleCost {
		t.Errorf("threshold interrupt cost not charged")
	}
}

func TestFaultDropsSamples(t *testing.T) {
	spec, _ := fault.ParseSpec("ibs.drop=1")
	cfg := DefaultConfig(1)
	e, _ := New(cfg, nil)
	e.SetFaultPlane(fault.New(spec, 1))
	for i := 0; i < 10; i++ {
		e.ObserveRetire(memOutcome(), 1)
	}
	s := e.Stats()
	if s.Delivered != 0 || s.FaultDrops != 10 {
		t.Errorf("delivered/dropped = %d/%d, want 0/10", s.Delivered, s.FaultDrops)
	}
	// Tagging overhead was still paid: the interrupt fired, only the
	// record was lost.
	if s.OverheadNS == 0 {
		t.Errorf("dropped samples charged no tagging overhead")
	}
	if lost, attempts := s.FaultRate(); lost != 10 || attempts != 10 {
		t.Errorf("FaultRate = %d/%d, want 10/10", lost, attempts)
	}
}

func TestFaultDropDeterministic(t *testing.T) {
	spec, _ := fault.ParseSpec("ibs.drop=0.5")
	run := func(seed int64) Stats {
		e, _ := New(DefaultConfig(1), nil)
		e.SetFaultPlane(fault.New(spec, seed))
		for i := 0; i < 200; i++ {
			e.ObserveRetire(memOutcome(), 1)
		}
		return e.Stats()
	}
	if a, b := run(7), run(7); a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFaultOverflowLosesBatch(t *testing.T) {
	spec, _ := fault.ParseSpec("ibs.overflow=1")
	e, _ := New(DefaultConfig(1), nil)
	e.SetFaultPlane(fault.New(spec, 1))
	count := 0
	e.SetAccumulator(func(s trace.Sample, pd *mem.PageDescriptor) { count++ })
	for i := 0; i < 5; i++ {
		e.ObserveRetire(memOutcome(), 1)
	}
	e.Flush()
	s := e.Stats()
	if count != 0 {
		t.Errorf("accumulator saw %d samples from an overflowed batch", count)
	}
	if s.FaultOverflows != 1 || s.FaultLost != 5 {
		t.Errorf("overflows/lost = %d/%d, want 1/5", s.FaultOverflows, s.FaultLost)
	}
	// The copy-out cost was paid before the loss was discovered.
	if s.OverheadNS < 5*DefaultConfig(1).DrainCostPerSample {
		t.Errorf("overflowed drain charged no copy-out cost")
	}
}

func TestQuarantineSticky(t *testing.T) {
	e, _ := New(DefaultConfig(1), nil)
	e.Quarantine()
	if !e.Quarantined() || e.Enabled() {
		t.Fatalf("Quarantine did not disable")
	}
	e.Enable() // HWPC gate reopening must not resurrect it
	if e.Enabled() {
		t.Errorf("Enable resurrected a quarantined engine")
	}
	if e.ObserveRetire(memOutcome(), 1) != 0 || e.Stats().TaggedOps != 0 {
		t.Errorf("quarantined engine still sampling")
	}
}

func TestZeroRatePlaneInert(t *testing.T) {
	run := func(p *fault.Plane) Stats {
		e, _ := New(DefaultConfig(3), nil)
		e.SetFaultPlane(p)
		for i := 0; i < 300; i++ {
			e.ObserveRetire(memOutcome(), 1)
		}
		e.Flush()
		return e.Stats()
	}
	if a, b := run(nil), run(fault.New(fault.Spec{}, 42)); a != b {
		t.Errorf("zero-rate plane perturbed the engine: %+v vs %+v", a, b)
	}
}
