package stats

import (
	"fmt"
	"strings"
)

// Heatmap bins (time, address) observations into a fixed grid: the
// renderer behind the paper's Figs. 3 and 4, where the horizontal axis
// is elapsed time and the vertical axis the physical address space,
// with each cell's temperature the access count in that interval.
type Heatmap struct {
	timeBins, addrBins int
	tMin, tMax         int64
	aMin, aMax         uint64
	cells              []uint64
}

// NewHeatmap builds a grid over [tMin,tMax) x [aMin,aMax).
func NewHeatmap(timeBins, addrBins int, tMin, tMax int64, aMin, aMax uint64) *Heatmap {
	if timeBins <= 0 || addrBins <= 0 {
		panic("stats: heatmap bins must be positive")
	}
	if tMax <= tMin || aMax <= aMin {
		panic("stats: heatmap ranges must be non-empty")
	}
	return &Heatmap{
		timeBins: timeBins, addrBins: addrBins,
		tMin: tMin, tMax: tMax, aMin: aMin, aMax: aMax,
		cells: make([]uint64, timeBins*addrBins),
	}
}

// Add records one observation with a weight (sample count).
func (h *Heatmap) Add(t int64, addr uint64, weight uint64) {
	if t < h.tMin || t >= h.tMax || addr < h.aMin || addr >= h.aMax {
		return
	}
	tb := int(float64(t-h.tMin) / float64(h.tMax-h.tMin) * float64(h.timeBins))
	ab := int(float64(addr-h.aMin) / float64(h.aMax-h.aMin) * float64(h.addrBins))
	if tb >= h.timeBins {
		tb = h.timeBins - 1
	}
	if ab >= h.addrBins {
		ab = h.addrBins - 1
	}
	h.cells[ab*h.timeBins+tb] += weight
}

// Cell returns the count at (timeBin, addrBin).
func (h *Heatmap) Cell(tb, ab int) uint64 { return h.cells[ab*h.timeBins+tb] }

// Max returns the hottest cell value.
func (h *Heatmap) Max() uint64 {
	var max uint64
	for _, c := range h.cells {
		if c > max {
			max = c
		}
	}
	return max
}

// Nonzero returns the number of touched cells.
func (h *Heatmap) Nonzero() int {
	n := 0
	for _, c := range h.cells {
		if c > 0 {
			n++
		}
	}
	return n
}

// shades maps intensity to ASCII temperature.
var shades = []byte(" .:-=+*#%@")

// Render draws the heatmap as ASCII art, high addresses on top,
// time flowing left to right — the figure's orientation.
func (h *Heatmap) Render() string {
	max := h.Max()
	var b strings.Builder
	b.Grow((h.timeBins + 1) * h.addrBins)
	for ab := h.addrBins - 1; ab >= 0; ab-- {
		for tb := 0; tb < h.timeBins; tb++ {
			c := h.Cell(tb, ab)
			if max == 0 || c == 0 {
				b.WriteByte(' ')
				continue
			}
			idx := int(float64(c) / float64(max) * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			if idx == 0 {
				idx = 1 // visible floor for any nonzero cell
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV emits "timeBin,addrBin,count" rows for nonzero cells, for
// plotting outside the terminal.
func (h *Heatmap) CSV() string {
	var b strings.Builder
	b.WriteString("time_bin,addr_bin,count\n")
	for ab := 0; ab < h.addrBins; ab++ {
		for tb := 0; tb < h.timeBins; tb++ {
			if c := h.Cell(tb, ab); c > 0 {
				fmt.Fprintf(&b, "%d,%d,%d\n", tb, ab, c)
			}
		}
	}
	return b.String()
}
