// Package stats provides the small statistics toolkit the experiment
// harnesses use: empirical CDFs (Fig. 5), time-by-address heatmaps
// (Figs. 3 and 4), histograms, and summary statistics. Everything is
// deterministic and allocation-conscious.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over uint64 samples.
type CDF struct {
	values []uint64
	sorted bool
}

// Add appends one observation.
func (c *CDF) Add(v uint64) {
	c.values = append(c.values, v)
	c.sorted = false
}

// N returns the observation count.
func (c *CDF) N() int { return len(c.values) }

func (c *CDF) ensure() {
	if !c.sorted {
		sort.Slice(c.values, func(i, j int) bool { return c.values[i] < c.values[j] })
		c.sorted = true
	}
}

// At returns P(X <= v).
func (c *CDF) At(v uint64) float64 {
	if len(c.values) == 0 {
		return 0
	}
	c.ensure()
	idx := sort.Search(len(c.values), func(i int) bool { return c.values[i] > v })
	return float64(idx) / float64(len(c.values))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) uint64 {
	if len(c.values) == 0 {
		return 0
	}
	c.ensure()
	if q <= 0 {
		return c.values[0]
	}
	if q >= 1 {
		return c.values[len(c.values)-1]
	}
	idx := int(q * float64(len(c.values)))
	if idx >= len(c.values) {
		idx = len(c.values) - 1
	}
	return c.values[idx]
}

// Points samples the CDF at n evenly spaced probabilities for
// plotting; it returns (value, cumulative-probability) pairs.
func (c *CDF) Points(n int) [][2]float64 {
	if n <= 0 || len(c.values) == 0 {
		return nil
	}
	c.ensure()
	out := make([][2]float64, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		out = append(out, [2]float64{float64(c.Quantile(q)), q})
	}
	return out
}

// Summary holds the usual aggregates.
type Summary struct {
	N              int
	Min, Max       uint64
	Mean, Stddev   float64
	P50, P90, P99  uint64
	Total          uint64
	GiniLikeRatio  float64 // share of total mass held by the top 10% of samples
	NonzeroSamples int
}

// Summarize computes aggregates over samples.
func Summarize(samples []uint64) Summary {
	s := Summary{N: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := make([]uint64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
		s.Total += v
		if v > 0 {
			s.NonzeroSamples++
		}
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, v := range sorted {
		d := float64(v) - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(len(sorted)))
	s.P50 = sorted[len(sorted)/2]
	s.P90 = sorted[len(sorted)*9/10]
	s.P99 = sorted[len(sorted)*99/100]
	top10 := sorted[len(sorted)*9/10:]
	var topSum uint64
	for _, v := range top10 {
		topSum += v
	}
	if s.Total > 0 {
		s.GiniLikeRatio = float64(topSum) / float64(s.Total)
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f top10%%=%.0f%%",
		s.N, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean, s.GiniLikeRatio*100)
}

// Histogram is a fixed-bucket histogram over uint64 observations.
type Histogram struct {
	bounds []uint64 // ascending upper bounds; last bucket is open
	counts []uint64
}

// NewHistogram builds a histogram with the given ascending inclusive
// upper bounds plus one overflow bucket.
func NewHistogram(bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Add records one observation.
func (h *Histogram) Add(v uint64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[idx]++
}

// Buckets returns (upper-bound, count) pairs; the final pair has
// upper-bound 0 signifying the open overflow bucket.
func (h *Histogram) Buckets() [][2]uint64 {
	out := make([][2]uint64, 0, len(h.counts))
	for i, c := range h.counts {
		var b uint64
		if i < len(h.bounds) {
			b = h.bounds[i]
		}
		out = append(out, [2]uint64{b, c})
	}
	return out
}
