package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	var c CDF
	for _, v := range []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		c.Add(v)
	}
	if c.N() != 10 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("At(5) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v, want 1", got)
	}
	if q := c.Quantile(0.5); q != 6 {
		t.Errorf("Quantile(0.5) = %d, want 6", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %d, want min", q)
	}
	if q := c.Quantile(1); q != 10 {
		t.Errorf("Quantile(1) = %d, want max", q)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 || c.Quantile(0.5) != 0 || c.Points(5) != nil {
		t.Errorf("empty CDF misbehaves")
	}
}

func TestCDFPointsMonotone(t *testing.T) {
	var c CDF
	for _, v := range []uint64{9, 1, 7, 3, 3, 8, 100} {
		c.Add(v)
	}
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Errorf("points not monotone at %d: %v", i, pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("last cumulative probability = %v, want 1", pts[len(pts)-1][1])
	}
}

func TestCDFAtMatchesDefinition(t *testing.T) {
	// Property: At(v) equals the fraction of samples <= v.
	f := func(raw []uint16, probe uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var c CDF
		count := 0
		for _, v := range raw {
			c.Add(uint64(v))
			if v <= probe {
				count++
			}
		}
		want := float64(count) / float64(len(raw))
		return math.Abs(c.At(uint64(probe))-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSummarizeHandChecked(t *testing.T) {
	s := Summarize([]uint64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90})
	if s.N != 10 || s.Min != 0 || s.Max != 90 {
		t.Errorf("bounds wrong: %+v", s)
	}
	if s.Mean != 45 {
		t.Errorf("mean = %v, want 45", s.Mean)
	}
	if s.P50 != 50 {
		t.Errorf("p50 = %d, want 50", s.P50)
	}
	if s.Total != 450 {
		t.Errorf("total = %d, want 450", s.Total)
	}
	if s.NonzeroSamples != 9 {
		t.Errorf("nonzero = %d, want 9", s.NonzeroSamples)
	}
	// Top 10% (value 90) holds 20% of the mass.
	if math.Abs(s.GiniLikeRatio-0.2) > 1e-9 {
		t.Errorf("top-10%% share = %v, want 0.2", s.GiniLikeRatio)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Total != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []uint64{5, 1, 9}
	Summarize(in)
	if !sort.SliceIsSorted(in, func(i, j int) bool { return i < j }) {
		// The original order 5,1,9 must be preserved (SliceIsSorted
		// on index order is trivially true; compare directly).
	}
	if in[0] != 5 || in[1] != 1 || in[2] != 9 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]uint64{10, 100})
	for _, v := range []uint64{1, 10, 11, 99, 100, 101, 5000} {
		h.Add(v)
	}
	b := h.Buckets()
	if len(b) != 3 {
		t.Fatalf("buckets = %d", len(b))
	}
	if b[0][1] != 2 { // <=10: {1, 10}
		t.Errorf("bucket 0 = %d, want 2", b[0][1])
	}
	if b[1][1] != 3 { // <=100: {11, 99, 100}
		t.Errorf("bucket 1 = %d, want 3", b[1][1])
	}
	if b[2][1] != 2 { // overflow: {101, 5000}
		t.Errorf("overflow = %d, want 2", b[2][1])
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("descending bounds accepted")
		}
	}()
	NewHistogram([]uint64{10, 5})
}

func TestHeatmapBinning(t *testing.T) {
	h := NewHeatmap(10, 10, 0, 100, 0, 1000)
	h.Add(5, 50, 1)    // bin (0,0)
	h.Add(95, 950, 3)  // bin (9,9)
	h.Add(100, 500, 1) // out of range (t == tMax): dropped
	h.Add(50, 1001, 1) // out of range: dropped
	if h.Cell(0, 0) != 1 {
		t.Errorf("cell(0,0) = %d", h.Cell(0, 0))
	}
	if h.Cell(9, 9) != 3 {
		t.Errorf("cell(9,9) = %d", h.Cell(9, 9))
	}
	if h.Nonzero() != 2 {
		t.Errorf("nonzero = %d, want 2", h.Nonzero())
	}
	if h.Max() != 3 {
		t.Errorf("max = %d, want 3", h.Max())
	}
}

func TestHeatmapRender(t *testing.T) {
	h := NewHeatmap(4, 2, 0, 4, 0, 2)
	h.Add(0, 0, 1)
	h.Add(3, 1, 10)
	out := h.Render()
	lines := splitLines(out)
	if len(lines) != 2 {
		t.Fatalf("rendered %d rows, want 2 (addr bins)", len(lines))
	}
	// High addresses on top: the weight-10 cell is in row 0 (addr bin
	// 1), last column.
	if lines[0][3] == ' ' {
		t.Errorf("hot cell not rendered:\n%s", out)
	}
	if lines[1][0] == ' ' {
		t.Errorf("low cell not rendered:\n%s", out)
	}
}

func TestHeatmapCSV(t *testing.T) {
	h := NewHeatmap(2, 2, 0, 2, 0, 2)
	h.Add(0, 0, 5)
	csv := h.CSV()
	want := "time_bin,addr_bin,count\n0,0,5\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestHeatmapBadConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHeatmap(0, 1, 0, 1, 0, 1) },
		func() { NewHeatmap(1, 1, 5, 5, 0, 1) },
		func() { NewHeatmap(1, 1, 0, 1, 3, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad heatmap config accepted")
				}
			}()
			f()
		}()
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
