package experiments

import (
	"fmt"
	"strings"

	"tieredmem/internal/core"
	"tieredmem/internal/ibs"
	"tieredmem/internal/policy"
	"tieredmem/internal/report"
)

// Fig6Point is one bar of Fig. 6: the tier-1 memory hitrate of one
// (policy, method, capacity-ratio) arm on one workload.
type Fig6Point struct {
	Workload string
	Policy   string
	Method   core.Method
	Ratio    int
	Hitrate  float64
}

// Fig6Result bundles the sweep with the headline aggregates the
// paper's §VI-C text quotes.
type Fig6Result struct {
	Points []Fig6Point
	// MaxOracleGain is the largest relative improvement of
	// Oracle-on-TMP over Oracle on the best single method across
	// workloads and ratios (the paper reports "as high as 70%").
	MaxOracleGain float64
	// MaxHistoryGain is the analogous History-policy number (paper:
	// "as much as 60%").
	MaxHistoryGain float64
}

// Fig6 reproduces the hitrate study: for every workload, the Oracle
// and History policies are evaluated offline over the profiling
// harvests, ranking pages by (a) A-bit evidence alone, (b) IBS
// evidence alone, and (c) TMP's combined rank, across fast-tier
// capacity ratios 1/8 .. 1/128. Hitrate is measured against the
// simulator's ground-truth memory accesses, exactly as the paper
// computed policy results from profiling data collected on real
// hardware.
func Fig6(s *Suite) (Fig6Result, error) {
	var res Fig6Result
	for _, name := range s.Opts.workloads() {
		cp, err := s.Capture(name, ibs.Rate4x)
		if err != nil {
			return res, err
		}
		epochs := cp.Result.Epochs
		foot := footprintPages(epochs)
		type armKey struct {
			policy string
			method core.Method
			ratio  int
		}
		hit := make(map[armKey]float64)
		for _, ratio := range policy.Fig6Ratios {
			capacity := policy.CapacityForRatio(foot, ratio)
			for _, m := range core.Methods {
				for _, p := range []policy.Policy{policy.Oracle{}, policy.History{}} {
					hr := policy.EvaluateHitrate(p, epochs, m, capacity)
					pt := Fig6Point{
						Workload: name,
						Policy:   p.Name(),
						Method:   m,
						Ratio:    ratio,
						Hitrate:  hr.Hitrate(),
					}
					res.Points = append(res.Points, pt)
					hit[armKey{p.Name(), m, ratio}] = pt.Hitrate
				}
			}
		}
		// Aggregate gains: combined vs the best single method.
		for _, ratio := range policy.Fig6Ratios {
			for _, pol := range []string{"oracle", "history"} {
				combined := hit[armKey{pol, core.MethodCombined, ratio}]
				bestSingle := hit[armKey{pol, core.MethodAbit, ratio}]
				if v := hit[armKey{pol, core.MethodTrace, ratio}]; v > bestSingle {
					bestSingle = v
				}
				if bestSingle <= 0 {
					continue
				}
				gain := combined/bestSingle - 1
				if pol == "oracle" && gain > res.MaxOracleGain {
					res.MaxOracleGain = gain
				}
				if pol == "history" && gain > res.MaxHistoryGain {
					res.MaxHistoryGain = gain
				}
			}
		}
	}
	return res, nil
}

// footprintPages counts distinct pages with ground-truth memory
// accesses across a run.
func footprintPages(epochs []core.EpochStats) int {
	seen := make(map[core.PageKey]struct{})
	for _, ep := range epochs {
		for _, ps := range ep.Pages {
			if ps.True > 0 {
				seen[ps.Key] = struct{}{}
			}
		}
	}
	return len(seen)
}

// RenderFig6 draws the sweep grouped by workload and policy.
func RenderFig6(res Fig6Result) string {
	t := report.NewTable(
		"Fig. 6: Tier-1 hitrate by policy, profiling method, and capacity ratio (1-epoch horizon)",
		"workload", "policy", "method", "1/8", "1/16", "1/32", "1/64", "1/128")
	type rowKey struct {
		w, p string
		m    core.Method
	}
	byRow := make(map[rowKey]map[int]float64)
	var order []rowKey
	for _, pt := range res.Points {
		k := rowKey{pt.Workload, pt.Policy, pt.Method}
		if _, ok := byRow[k]; !ok {
			byRow[k] = make(map[int]float64)
			order = append(order, k)
		}
		byRow[k][pt.Ratio] = pt.Hitrate
	}
	for _, k := range order {
		cells := byRow[k]
		t.AddRow(k.w, k.p, k.m.String(),
			cells[8], cells[16], cells[32], cells[64], cells[128])
	}
	var b strings.Builder
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nMax combined-over-best-single gain: Oracle %.0f%% (paper: up to 70%%), History %.0f%% (paper: up to 60%%)\n",
		res.MaxOracleGain*100, res.MaxHistoryGain*100)
	return b.String()
}
