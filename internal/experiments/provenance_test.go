package experiments

import (
	"bytes"
	"os"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/policy"
	"tieredmem/internal/provenance"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/teleout"
	"tieredmem/internal/workload"
)

// provDump mirrors the tmpsim arm fan-out: several faulted placement
// arms run on a runner pool of the given width, each with a private
// flight recorder, and the serialized provenance log (submission
// order) comes back as one byte stream.
func provDump(t *testing.T, parallel int) []byte {
	t.Helper()
	spec, err := fault.ParseSpec("all=0.1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	var recorders []*provenance.Recorder
	arm := func(wname string, seed int64) runner.Job[sim.PlacementResult] {
		rec := provenance.New()
		recorders = append(recorders, rec)
		return runner.Job[sim.PlacementResult]{Name: wname, Run: func() (sim.PlacementResult, error) {
			mk := func() workload.Workload {
				return workload.MustNew(wname, workload.Config{Seed: seed, FirstPID: 100})
			}
			cfg := sim.DefaultPlacementConfig(mk(), 16384, 400_000, 8, policy.History{}, core.MethodCombined)
			cfg.Faults = fault.New(spec, seed)
			cfg.Prov = rec
			return sim.RunPlacement(cfg, mk())
		}}
	}
	jobs := []runner.Job[sim.PlacementResult]{
		arm("gups", 42),
		arm("data-caching", 42),
		arm("web-serving", 7),
	}
	if _, _, err := runner.Run(runner.Config{Workers: parallel}, jobs); err != nil {
		t.Fatalf("runner.Run(parallel=%d): %v", parallel, err)
	}
	logs := make([]provenance.Log, len(recorders))
	for i, rec := range recorders {
		logs[i] = rec.Snapshot(jobs[i].Name)
		if len(logs[i].Pages) == 0 {
			t.Fatalf("arm %s (parallel=%d) recorded no pages", jobs[i].Name, parallel)
		}
	}
	var b bytes.Buffer
	if err := provenance.WriteLog(&b, logs); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	return b.Bytes()
}

// TestProvenanceParallelByteIdentity is the concurrency half of the
// provenance determinism contract: recorders are private per arm and
// the log serializes arms in submission order, so the flight-recorder
// log written by `tmpsim -prov` must be byte-identical at -parallel 1
// and -parallel 8.
func TestProvenanceParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	seq := provDump(t, 1)
	par := provDump(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("provenance logs differ between -parallel 1 and -parallel 8: %d vs %d bytes", len(seq), len(par))
	}
	// Round-trip through the file writer used by `tmpsim -prov` and the
	// reader used by tmpwhy: parse, rewrite, and the bytes must not move.
	logs, err := provenance.ReadLog(bytes.NewReader(seq))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	path := t.TempDir() + "/prov.jsonl"
	if err := teleout.WriteProvenance(path, logs); err != nil {
		t.Fatalf("WriteProvenance: %v", err)
	}
	rewritten, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rewritten, seq) {
		t.Fatalf("parse+rewrite moved the log: %d vs %d bytes", len(rewritten), len(seq))
	}
}
