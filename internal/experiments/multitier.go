package experiments

import (
	"fmt"
	"strings"

	"tieredmem/internal/core"
	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/policy"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

// MultiTierDepths lists the chain depths the multi-tier study sweeps:
// the paper's two-tier testbed, a 3-tier DRAM/CXL/NVM chain, and a
// 4-tier chain with an SSD-class backstop.
var MultiTierDepths = []int{2, 3, 4}

// multiTierArms lists the evidence arms for one chain depth, in
// presentation order. The devprof arm needs a device tier to observe
// (DefaultChain places a CXL expander under DRAM from 3 tiers up), so
// 2-tier chains run only the host arms.
func multiTierArms(n int) []core.Method {
	if n == 2 {
		return []core.Method{core.MethodAbit, core.MethodTrace, core.MethodCombined}
	}
	return []core.Method{core.MethodAbit, core.MethodTrace, core.MethodDev, core.MethodCombined}
}

// MultiTierRow is one (workload, chain, method) placement cell: a
// History-policy run over an n-tier chain ranking on one evidence
// mechanism, scored by top-tier hitrate.
type MultiTierRow struct {
	Workload string
	Tiers    int
	// Chain is the tier-name path, e.g. "dram/cxl/nvm".
	Chain  string
	Method string
	// Hitrate is the live top-tier memory hitrate.
	Hitrate    float64
	Promotions uint64
	Demotions  uint64
	DurationNS int64
	// Quarantined counts mechanisms the run permanently disabled
	// (always zero without fault injection).
	Quarantined int
}

// chainLabel names a chain by its tier path.
func chainLabel(c mem.TierChain) string {
	names := make([]string, len(c))
	for i, s := range c {
		names[i] = s.Name
	}
	return strings.Join(names, "/")
}

// multiTierCell runs one self-contained placement simulation over an
// n-tier chain. The device-side tracker is attached exactly when the
// chain has a device tier, so MethodCombined fuses host and device
// evidence on the deep chains and degrades to the paper's two-source
// sum on the 2-tier chain.
func multiTierCell(opts Options, name string, n int, method core.Method) (MultiTierRow, error) {
	const ratio = 16
	w, err := workload.New(name, opts.workloadConfig())
	if err != nil {
		return MultiTierRow{}, err
	}
	chain, err := sim.DefaultChain(w, ratio, n)
	if err != nil {
		return MultiTierRow{}, err
	}
	period := ibs.PeriodForRate(opts.BasePeriod, ibs.Rate4x)
	cfg := sim.DefaultPlacementConfig(w, period, opts.Refs, ratio, policy.History{}, method)
	cfg.Tiers = chain
	cfg.TMP.EnableDevProf = chain.HasDevice()
	cfg.Faults = opts.faultPlane()
	res, err := sim.RunPlacement(cfg, w)
	if err != nil {
		return MultiTierRow{}, err
	}
	return MultiTierRow{
		Workload:    name,
		Tiers:       n,
		Chain:       chainLabel(chain),
		Method:      method.String(),
		Hitrate:     res.Hitrate(),
		Promotions:  res.Promotions,
		Demotions:   res.Demotions,
		DurationNS:  res.DurationNS,
		Quarantined: len(res.Quarantined),
	}, nil
}

// MultiTier compares the profiling mechanisms — A-bit, IBS, the
// device-side tracker, and the combined rank — as placement evidence
// across 2-, 3-, and 4-tier chains. Every (workload, depth, method)
// cell is an independent simulation and fans out on the runner pool;
// rows come back in (workload, depth, method) presentation order at
// any pool width.
func MultiTier(opts Options) ([]MultiTierRow, error) {
	var jobs []runner.Job[MultiTierRow]
	for _, name := range opts.workloads() {
		for _, n := range MultiTierDepths {
			for _, method := range multiTierArms(n) {
				jobs = append(jobs, runner.Job[MultiTierRow]{
					Name: fmt.Sprintf("multitier/%s/%dt/%s", name, n, method),
					Run: func() (MultiTierRow, error) {
						r, err := multiTierCell(opts, name, n, method)
						if err != nil {
							return r, fmt.Errorf("experiments: %s %d-tier %s: %w", name, n, method, err)
						}
						return r, nil
					},
				})
			}
		}
	}
	return runCells(opts, "multitier", jobs)
}

// RenderMultiTier draws the study.
func RenderMultiTier(rows []MultiTierRow) string {
	t := report.NewTable(
		"Multi-tier chains: top-tier hitrate per evidence mechanism (History policy, 1/16 top tier)",
		"workload", "chain", "method", "hitrate", "promoted", "demoted", "quarantined")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Chain, r.Method, r.Hitrate, r.Promotions, r.Demotions, r.Quarantined)
	}
	return t.Render() + "\nThe devprof arm ranks on device-side (CXL) counters alone — zero host\nsampling cost but blind to DRAM- and NVM-resident pages; the tmp arm fuses\nthem with host evidence. 2-tier chains have no device tier to observe.\n"
}
