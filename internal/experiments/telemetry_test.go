package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"tieredmem/internal/telemetry"
)

// traceDump renders a traced suite run's full telemetry exports (JSONL
// then Chrome trace) as one byte stream for equality comparison.
func traceDump(t *testing.T, parallel int) []byte {
	t.Helper()
	opts := parallelTestOptions(parallel, "gups", "data-caching")
	opts.Trace = true
	s := NewSuite(opts)
	if _, err := EpochSweep(s, []int{1, 2}); err != nil {
		t.Fatalf("EpochSweep(parallel=%d): %v", parallel, err)
	}
	runs := s.Traces()
	if len(runs) == 0 {
		t.Fatalf("traced suite (parallel=%d) captured no telemetry runs", parallel)
	}
	for _, r := range runs {
		if len(r.Tracer.Events()) == 0 {
			t.Fatalf("run %s recorded no events", r.Label)
		}
	}
	var b bytes.Buffer
	if err := telemetry.WriteJSONL(&b, runs); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var chrome bytes.Buffer
	if err := telemetry.WriteChromeTrace(&chrome, runs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(chrome.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON (parallel=%d)", parallel)
	}
	b.Write(chrome.Bytes())
	return b.Bytes()
}

// TestTelemetryParallelByteIdentity is the concurrency half of the
// telemetry determinism contract: the exported event stream from a
// traced suite must be byte-identical at -parallel 1 and -parallel 8.
// Capture tracers are private per cell and exports order runs by
// sorted cache key, so worker scheduling must not be observable.
func TestTelemetryParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	seq := traceDump(t, 1)
	par := traceDump(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("telemetry exports differ between -parallel 1 and -parallel 8: %d vs %d bytes", len(seq), len(par))
	}
}

// TestTraceOffByDefault guards the zero-overhead default: without
// Options.Trace the suite holds no tracers and Traces is empty.
func TestTraceOffByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	opts := parallelTestOptions(1, "gups")
	opts.Refs = 200_000
	s := NewSuite(opts)
	if _, err := EpochSweep(s, []int{1}); err != nil {
		t.Fatalf("EpochSweep: %v", err)
	}
	if n := len(s.Traces()); n != 0 {
		t.Fatalf("untraced suite exposes %d telemetry runs, want 0", n)
	}
}
