package experiments

import (
	"fmt"

	"tieredmem/internal/ibs"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

// OverheadRow is one workload's §VI-B profiling-overhead measurement:
// end-to-end runtime under each profiling configuration relative to an
// unprofiled run of the same reference stream.
type OverheadRow struct {
	Workload   string
	BaseNS     int64   // unprofiled duration
	AbitPct    float64 // A-bit walks every scaled second (paper: <1%)
	IBSDefPct  float64 // IBS at the default rate (paper: <2%)
	IBS4xPct   float64 // IBS at 4x (paper: <5%)
	TMPFullPct float64 // everything on, with HWPC gating
}

// overheadConfigs lists the §VI-B profiling configurations, in the
// column order of the rendered table. Each is one runner cell.
var overheadConfigs = []struct {
	name   string
	mutate func(opts Options, cfg *sim.Config)
}{
	{"base", func(opts Options, cfg *sim.Config) {
		// Disable everything: no scans, no sampling, no gating.
		cfg.TMP.Gating = false
		cfg.TMP.IBS.Period = 1 << 40
		cfg.TMP.Abit.Interval = 1 << 60
	}},
	{"abit", func(opts Options, cfg *sim.Config) {
		cfg.TMP.Gating = false
		cfg.TMP.IBS.Period = 1 << 40
	}},
	{"ibs-default", func(opts Options, cfg *sim.Config) {
		cfg.TMP.Gating = false
		cfg.TMP.Abit.Interval = 1 << 60
		cfg.TMP.IBS.Period = ibs.PeriodForRate(opts.BasePeriod, ibs.Rate1x)
	}},
	{"ibs-4x", func(opts Options, cfg *sim.Config) {
		cfg.TMP.Gating = false
		cfg.TMP.Abit.Interval = 1 << 60
		cfg.TMP.IBS.Period = ibs.PeriodForRate(opts.BasePeriod, ibs.Rate4x)
	}},
	{"tmp-full", func(opts Options, cfg *sim.Config) {
		cfg.TMP.Gating = true
		cfg.TMP.IBS.Period = ibs.PeriodForRate(opts.BasePeriod, ibs.Rate4x)
	}},
}

// Overhead measures profiling cost by running each workload once
// without any profiler and once per configuration, comparing
// end-to-end virtual durations — the paper's methodology ("we measured
// the end-to-end latency of each workload with our profiler"). Every
// (workload, configuration) pair is an independent simulation, so all
// len(workloads) x 5 cells fan out on the runner pool; rows assemble
// from the ordered results.
func Overhead(opts Options) ([]OverheadRow, error) {
	names := opts.workloads()
	jobs := make([]runner.Job[int64], 0, len(names)*len(overheadConfigs))
	for _, name := range names {
		for _, oc := range overheadConfigs {
			jobs = append(jobs, runner.Job[int64]{
				Name: "overhead/" + name + "/" + oc.name,
				Run: func() (int64, error) {
					return runDuration(opts, name, func(cfg *sim.Config) { oc.mutate(opts, cfg) })
				},
			})
		}
	}
	durations, err := runCells(opts, "overhead", jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]OverheadRow, 0, len(names))
	for i, name := range names {
		d := durations[i*len(overheadConfigs) : (i+1)*len(overheadConfigs)]
		base := d[0]
		rows = append(rows, OverheadRow{
			Workload:   name,
			BaseNS:     base,
			AbitPct:    pct(d[1], base),
			IBSDefPct:  pct(d[2], base),
			IBS4xPct:   pct(d[3], base),
			TMPFullPct: pct(d[4], base),
		})
	}
	return rows, nil
}

// runDuration executes one profiling configuration and returns the
// end-to-end virtual duration. With Options.Shards > 0 the machine is
// partitioned per core and executed on the sharded pipeline; the fused
// duration is the slowest cell — the partitioned machine's critical
// path — so the overhead ratios compare like with like.
func runDuration(opts Options, name string, mutate func(*sim.Config)) (int64, error) {
	mk := func() workload.Workload {
		return workload.MustNew(name, opts.workloadConfig())
	}
	w, err := workload.New(name, opts.workloadConfig())
	if err != nil {
		return 0, err
	}
	cfg := sim.DefaultConfig(w, opts.BasePeriod, opts.heavyRefs())
	mutate(&cfg)
	if opts.Shards > 0 {
		res, err := sim.RunSharded(sim.ShardedConfig{
			Base:      cfg,
			Shards:    opts.Shards,
			NowNS:     opts.NowNS,
			FaultSpec: opts.Faults,
			FaultSeed: opts.Seed,
		}, mk)
		if err != nil {
			return 0, err
		}
		return res.DurationNS, nil
	}
	cfg.Faults = opts.faultPlane()
	r, err := sim.New(cfg, w)
	if err != nil {
		return 0, err
	}
	res, err := r.Run(sim.Hooks{})
	if err != nil {
		return 0, err
	}
	return res.DurationNS, nil
}

func pct(with, without int64) float64 {
	if without == 0 {
		return 0
	}
	p := (float64(with)/float64(without) - 1) * 100
	if p < 0 {
		p = 0 // clock jitter below resolution
	}
	return p
}

// RenderOverhead draws the study.
func RenderOverhead(rows []OverheadRow) string {
	t := report.NewTable(
		"§VI-B: End-to-end profiling overhead (% of unprofiled runtime)",
		"workload", "abit@1s", "ibs(default)", "ibs(4x)", "tmp(full,gated)")
	for _, r := range rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.2f%%", r.AbitPct),
			fmt.Sprintf("%.2f%%", r.IBSDefPct),
			fmt.Sprintf("%.2f%%", r.IBS4xPct),
			fmt.Sprintf("%.2f%%", r.TMPFullPct))
	}
	return t.Render() + "\nPaper bounds: A-bit <1%, IBS default <2%, IBS 4x <5%.\n"
}
