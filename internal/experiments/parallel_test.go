package experiments

import (
	"sync/atomic"
	"testing"

	"tieredmem/internal/fault"
	"tieredmem/internal/runner"
)

// parallelTestOptions shrinks runs so the equivalence sweeps stay
// fast while still crossing several epochs per workload.
func parallelTestOptions(parallel int, workloads ...string) Options {
	o := DefaultOptions()
	o.Refs = 400_000
	o.Workloads = workloads
	o.Parallel = parallel
	return o
}

// TestParallelEqualsSequentialMethods is the concurrency half of the
// determinism contract (the sequential half lives in
// internal/sim/determinism_test.go): the methods experiment rendered
// at -parallel 1 and -parallel 8 from the same seed must be
// byte-for-byte identical, because every cell is a pure function of
// its seed+config and the runner reassembles rows in submission
// order.
func TestParallelEqualsSequentialMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	render := func(parallel int) string {
		rows, err := MethodsComparison(parallelTestOptions(parallel, "gups", "web-serving"))
		if err != nil {
			t.Fatalf("MethodsComparison(parallel=%d): %v", parallel, err)
		}
		return RenderMethods(rows)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("methods output differs between -parallel 1 and -parallel 8:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestParallelEqualsSequentialEpochSweep covers the Suite-backed path:
// concurrent cells deduplicate onto shared Profile calls through the
// suite cache, and the rendered sweep must not move a byte.
func TestParallelEqualsSequentialEpochSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	render := func(parallel int) string {
		s := NewSuite(parallelTestOptions(parallel, "gups", "data-caching"))
		rows, err := EpochSweep(s, []int{1, 2, 4})
		if err != nil {
			t.Fatalf("EpochSweep(parallel=%d): %v", parallel, err)
		}
		return RenderEpochSweep(rows)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("epochsweep output differs between -parallel 1 and -parallel 8:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestParallelEqualsSequentialOverhead sweeps the finest-grained cell
// decomposition (5 configurations x workloads) through both paths.
func TestParallelEqualsSequentialOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	render := func(parallel int) string {
		rows, err := Overhead(parallelTestOptions(parallel, "gups", "web-serving"))
		if err != nil {
			t.Fatalf("Overhead(parallel=%d): %v", parallel, err)
		}
		return RenderOverhead(rows)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("overhead output differs between -parallel 1 and -parallel 8:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestParallelEqualsSequentialFaulted extends the width-equivalence
// contract to chaos runs: every cell builds a private fault plane from
// the shared (spec, seed), so injection sequences — and therefore
// failed migrations, retries, and quarantines — cannot depend on pool
// width or cell scheduling order.
func TestParallelEqualsSequentialFaulted(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	spec, err := fault.ParseSpec("all=0.1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	render := func(parallel int) string {
		o := parallelTestOptions(parallel, "gups", "web-serving")
		o.Faults = spec
		res, err := Speedup(o)
		if err != nil {
			t.Fatalf("Speedup(parallel=%d): %v", parallel, err)
		}
		return RenderSpeedup(res)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("faulted speedup output differs between -parallel 1 and -parallel 8:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestParallelEqualsSequentialMultiTier extends width equivalence to
// the multi-tier cells: chains of different depths (with the device
// tracker attached on the deep ones) are scheduled arbitrarily across
// workers, yet rows land in (workload, depth, method) order with
// identical bytes.
func TestParallelEqualsSequentialMultiTier(t *testing.T) {
	if testing.Short() {
		t.Skip("placement runs are slow")
	}
	render := func(parallel int) string {
		rows, err := MultiTier(parallelTestOptions(parallel, "gups"))
		if err != nil {
			t.Fatalf("MultiTier(parallel=%d): %v", parallel, err)
		}
		return RenderMultiTier(rows)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("multitier output differs between -parallel 1 and -parallel 8:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// TestRunnerStatsSurface checks the observability hook: an experiment
// run with an injected clock reports one stat entry per cell with
// nonzero wall times, and the pool width honors Options.Parallel.
func TestRunnerStatsSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	opts := parallelTestOptions(2, "gups")
	opts.Refs = 200_000
	var tick atomic.Int64
	opts.NowNS = func() int64 { return tick.Add(1000) }
	var got []runner.Stats
	var labels []string
	opts.OnRunnerStats = func(experiment string, s runner.Stats) {
		labels = append(labels, experiment)
		got = append(got, s)
	}
	if _, err := Overhead(opts); err != nil {
		t.Fatalf("Overhead: %v", err)
	}
	if len(got) != 1 || labels[0] != "overhead" {
		t.Fatalf("stats callbacks: %v", labels)
	}
	s := got[0]
	if s.Jobs != len(overheadConfigs) {
		t.Errorf("Jobs = %d, want %d", s.Jobs, len(overheadConfigs))
	}
	if s.Workers != 2 {
		t.Errorf("Workers = %d, want 2", s.Workers)
	}
	if s.WallNS <= 0 || s.BusyNS <= 0 {
		t.Errorf("timings not filled: wall=%d busy=%d", s.WallNS, s.BusyNS)
	}
	for i, js := range s.PerJob {
		if js.Name == "" || js.WallNS <= 0 {
			t.Errorf("PerJob[%d] incomplete: %+v", i, js)
		}
	}
}
