package experiments

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/ibs"
	"tieredmem/internal/policy"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

// The bandwidth-contention study: the transactional mover under the
// admission controller, swept across per-epoch bandwidth fractions on
// a 3-tier chain. Frac 0 is the uncontrolled arm (every migration
// admitted, no budget drawn); shrinking fractions force the mover to
// defer and eventually reject migrations, trading placement agility
// for bus headroom. A chaos arm repeats the middle fraction under
// mid-copy dirty aborts and stale shadow invalidations so the study
// also shows the transaction machinery absorbing injected failures.

// BWContendFracs lists the admission fractions the study sweeps; 0
// disables the controller. One NVM->DRAM page copy prices at ~2.6% of
// a scaled epoch, so 0.25 admits a handful of migrations per epoch and
// 1.0 a few dozen — both far below the ungated arm's appetite.
var BWContendFracs = []float64{0, 0.25, 1.0}

// bwChaosSpec is the chaos arm's injection mix: mid-copy dirty aborts
// at 10%, stale shadow adoptions at 5% — the same mix the CI chaos
// matrix pins.
const bwChaosSpec = "mem.copyabort=0.1,mem.shadowstale=0.05"

// BWContendRow is one (workload, fraction, arm) cell of the study.
type BWContendRow struct {
	Workload string
	// Frac is the admission fraction (0 = uncontrolled).
	Frac float64
	// Arm is "clean" or "chaos" (the injected arm).
	Arm     string
	Hitrate float64
	// Transaction outcomes and shadow traffic.
	TxCommitted  uint64
	AbortedDirty uint64
	ShadowHits   uint64
	// Admission outcomes (promotions + demotions each).
	Admitted   uint64
	Deferred   uint64
	Rejected   uint64
	DurationNS int64
}

// bwContendCell runs one transactional placement simulation at a given
// admission fraction, optionally under the chaos injection mix.
func bwContendCell(opts Options, name string, frac float64, chaos bool) (BWContendRow, error) {
	const ratio, tiers = 16, 3
	w, err := workload.New(name, opts.workloadConfig())
	if err != nil {
		return BWContendRow{}, err
	}
	chain, err := sim.DefaultChain(w, ratio, tiers)
	if err != nil {
		return BWContendRow{}, err
	}
	period := ibs.PeriodForRate(opts.BasePeriod, ibs.Rate4x)
	cfg := sim.DefaultPlacementConfig(w, period, opts.Refs, ratio, policy.History{}, core.MethodCombined)
	cfg.Tiers = chain
	cfg.TMP.EnableDevProf = chain.HasDevice()
	cfg.TxMigration = true
	cfg.AdmissionFrac = frac
	arm := "clean"
	if chaos {
		arm = "chaos"
		spec, err := fault.ParseSpec(bwChaosSpec)
		if err != nil {
			return BWContendRow{}, err
		}
		cfg.Faults = fault.New(spec, opts.Seed)
	} else {
		cfg.Faults = opts.faultPlane()
	}
	res, err := sim.RunPlacement(cfg, w)
	if err != nil {
		return BWContendRow{}, err
	}
	return BWContendRow{
		Workload:     name,
		Frac:         frac,
		Arm:          arm,
		Hitrate:      res.Hitrate(),
		TxCommitted:  res.TxCommitted,
		AbortedDirty: res.AbortedDirty,
		ShadowHits:   res.ShadowHits,
		Admitted:     res.AdmittedPromotions + res.AdmittedDemotions,
		Deferred:     res.DeferredAdmission,
		Rejected:     res.RejectedPromotions + res.RejectedDemotions,
		DurationNS:   res.DurationNS,
	}, nil
}

// BWContend sweeps the admission controller's bandwidth fraction over
// every workload with the transactional mover on, plus one chaos arm
// per workload at the middle fraction. Every cell is an independent
// simulation and fans out on the runner pool; rows come back in
// (workload, fraction, arm) presentation order at any pool width.
func BWContend(opts Options) ([]BWContendRow, error) {
	var jobs []runner.Job[BWContendRow]
	for _, name := range opts.workloads() {
		for _, frac := range BWContendFracs {
			jobs = append(jobs, runner.Job[BWContendRow]{
				Name: fmt.Sprintf("bwcontend/%s/%.2f/clean", name, frac),
				Run: func() (BWContendRow, error) {
					r, err := bwContendCell(opts, name, frac, false)
					if err != nil {
						return r, fmt.Errorf("experiments: %s admission %.2f: %w", name, frac, err)
					}
					return r, nil
				},
			})
		}
		chaosFrac := BWContendFracs[len(BWContendFracs)/2]
		jobs = append(jobs, runner.Job[BWContendRow]{
			Name: fmt.Sprintf("bwcontend/%s/%.2f/chaos", name, chaosFrac),
			Run: func() (BWContendRow, error) {
				r, err := bwContendCell(opts, name, chaosFrac, true)
				if err != nil {
					return r, fmt.Errorf("experiments: %s chaos arm: %w", name, err)
				}
				return r, nil
			},
		})
	}
	return runCells(opts, "bwcontend", jobs)
}

// RenderBWContend draws the study.
func RenderBWContend(rows []BWContendRow) string {
	t := report.NewTable(
		"Bandwidth contention: transactional migration under admission control (History/tmp, 3-tier chain)",
		"workload", "admission", "arm", "hitrate", "committed", "aborted", "shadow_hits", "admitted", "deferred", "rejected")
	for _, r := range rows {
		adm := "off"
		if r.Frac > 0 {
			adm = fmt.Sprintf("%.2f", r.Frac)
		}
		t.AddRow(r.Workload, adm, r.Arm, r.Hitrate, r.TxCommitted, r.AbortedDirty, r.ShadowHits, r.Admitted, r.Deferred, r.Rejected)
	}
	return t.Render() + "\nAdmission 'off' runs ungated (admitted stays 0: the controller never\ndraws); smaller fractions defer migrations to later epochs and, when the\nretry queue fills, reject them. The chaos arm injects mid-copy dirty\naborts (10%) and stale shadow invalidations (5%): aborted transactions\nre-queue and the hitrate degrades gracefully rather than corrupting state.\n"
}
