package experiments

import (
	"fmt"

	"tieredmem/internal/autonuma"
	"tieredmem/internal/badgertrap"
	"tieredmem/internal/core"
	"tieredmem/internal/cpu"
	"tieredmem/internal/ibs"
	"tieredmem/internal/policy"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// MethodsRow is one (workload, profiler) cell of the methods
// comparison: the quantified version of the paper's Table I. Coverage
// is the distinct pages the profiler observed; OverheadPct is the
// end-to-end runtime increase over an unprofiled run of the same
// reference stream; OracleHitrate is the tier-1 hitrate an Oracle
// policy achieves at a 1/16 capacity using only this profiler's
// evidence — the information-quality metric.
type MethodsRow struct {
	Workload      string
	Profiler      string
	DistinctPages int
	Observations  uint64
	OverheadPct   float64
	OracleHitrate float64
}

// MethodsComparison runs each workload under TMP (gated, 4x), an
// AutoNUMA-style hint-fault balancer, and a BadgerTrap TLB-miss
// counter, and reports coverage, cost, and placement quality.
// Expected shape (Table I and §II): BadgerTrap pays a fault per TLB
// miss (ruinous on TLB-thrashing footprints) and its counts mislead on
// cache-hot pages; AutoNUMA is cheap but its windowed first-access
// evidence carries little frequency information; TMP's combined
// evidence places best without the fault bill.
func MethodsComparison(opts Options) ([]MethodsRow, error) {
	jobs := make([]runner.Job[[]MethodsRow], 0, len(opts.workloads()))
	for _, name := range opts.workloads() {
		jobs = append(jobs, runner.Job[[]MethodsRow]{
			Name: "methods/" + name,
			Run:  func() ([]MethodsRow, error) { return methodsCell(opts, name) },
		})
	}
	cells, err := runCells(opts, "methods", jobs)
	if err != nil {
		return nil, err
	}
	var rows []MethodsRow
	for _, c := range cells {
		rows = append(rows, c...)
	}
	return rows, nil
}

// methodsCell computes one workload's three profiler rows. It is
// self-contained — every run builds its own workload and machine from
// opts — so cells fan out across runner workers.
func methodsCell(opts Options, name string) ([]MethodsRow, error) {
	base, err := runDuration(opts, name, func(cfg *sim.Config) {
		cfg.TMP.Gating = false
		cfg.TMP.IBS.Period = 1 << 40
		cfg.TMP.Abit.Interval = 1 << 60
	})
	if err != nil {
		return nil, err
	}

	// TMP: full configuration.
	cp, err := Profile(opts, name, ibs.Rate4x)
	if err != nil {
		return nil, err
	}
	tmpPages := make(map[core.PageKey]struct{})
	var tmpObs uint64
	for _, ep := range cp.Result.Epochs {
		for _, ps := range ep.Pages {
			if ps.Abit > 0 || ps.Trace > 0 {
				tmpPages[ps.Key] = struct{}{}
				tmpObs += uint64(ps.Abit) + uint64(ps.Trace)
			}
		}
	}
	rows := []MethodsRow{{
		Workload:      name,
		Profiler:      "tmp",
		DistinctPages: len(tmpPages),
		Observations:  tmpObs,
		OverheadPct:   pct(cp.Result.DurationNS, base),
		OracleHitrate: oracleQuality(cp.Result.Epochs, core.MethodCombined),
	}}

	an, err := runAutonuma(opts, name)
	if err != nil {
		return nil, err
	}
	an.OverheadPct = pct(an.durationNS, base)
	an.OracleHitrate = oracleQuality(an.epochs, core.MethodAbit)
	rows = append(rows, an.MethodsRow)

	bt, err := runBadgerTrap(opts, name)
	if err != nil {
		return nil, err
	}
	bt.OverheadPct = pct(bt.durationNS, base)
	bt.OracleHitrate = oracleQuality(bt.epochs, core.MethodAbit)
	rows = append(rows, bt.MethodsRow)
	return rows, nil
}

// oracleQuality scores a profiler's evidence: the hitrate an Oracle
// achieves at a 1/16 capacity ranking only on that evidence.
func oracleQuality(epochs []core.EpochStats, m core.Method) float64 {
	foot := footprintPages(epochs)
	if foot == 0 {
		return 0
	}
	hr := policy.EvaluateHitrate(policy.Oracle{}, epochs, m, policy.CapacityForRatio(foot, 16))
	return hr.Hitrate()
}

// rawResult carries a bare-machine profiling run's outcome.
type rawResult struct {
	MethodsRow
	durationNS int64
	epochs     []core.EpochStats
}

// rawRun drives a workload through a bare machine (no TMP), invoking
// perBatch after every batch, harvesting the profiler's per-epoch
// observations each scaled second (merged with the machine's ground
// truth so hitrate evaluation works), and finishing with a summary
// row.
func rawRun(opts Options, name string, attach func(*cpu.Machine, workload.Workload) error,
	perBatch func(now int64), harvest func(epoch int) core.EpochStats,
	finish func() MethodsRow) (rawResult, error) {
	w, err := workload.New(name, opts.workloadConfig())
	if err != nil {
		return rawResult{}, err
	}
	cfg := sim.DefaultConfig(w, opts.BasePeriod, opts.Refs)
	m, err := cpu.NewMachine(cfg.CPU, cfg.Tiers)
	if err != nil {
		return rawResult{}, err
	}
	m.SetHugeHint(workload.HugeHintFor(w))
	if err := attach(m, w); err != nil {
		return rawResult{}, err
	}
	var res rawResult
	cutEpoch := func() {
		ep := harvest(len(res.epochs))
		core.AttachTruth(m.Phys, &ep)
		res.epochs = append(res.epochs, ep)
		m.Phys.ResetEpochAll()
	}
	buf := make([]trace.Ref, cfg.BatchSize)
	// Epochs are cut by executed work, not virtual time: an expensive
	// profiler (BadgerTrap) slows the machine so much that time-based
	// epochs would hold far fewer references, making per-epoch
	// prediction artificially easy and skewing the cross-method
	// hitrate comparison. Work-based horizons give every profiler
	// identical epoch contents to rank.
	epochRefs := opts.Refs / 32
	if epochRefs < 1 {
		epochRefs = 1
	}
	nextEpoch := epochRefs
	executed := 0
	for executed < opts.Refs {
		n := cfg.BatchSize
		if remain := opts.Refs - executed; remain < n {
			n = remain
		}
		batch := buf[:n]
		w.Fill(batch)
		for i := range batch {
			if _, err := m.Execute(batch[i]); err != nil {
				return res, fmt.Errorf("experiments: %s raw run: %w", name, err)
			}
		}
		executed += n
		perBatch(m.Now())
		if executed >= nextEpoch {
			cutEpoch()
			for nextEpoch <= executed {
				nextEpoch += epochRefs
			}
		}
	}
	cutEpoch()
	res.MethodsRow = finish()
	res.MethodsRow.Workload = name
	res.durationNS = m.Now()
	return res, nil
}

func runAutonuma(opts Options, name string) (rawResult, error) {
	var sc *autonuma.Scanner
	var pids []int
	var machine *cpu.Machine
	pages := make(map[core.PageKey]struct{})
	return rawRun(opts, name,
		func(m *cpu.Machine, w workload.Workload) error {
			cfg := autonuma.DefaultConfig()
			cfg.Interval = sim.ScaledSecond
			var err error
			sc, err = autonuma.New(cfg, m)
			pids = w.Processes()
			machine = m
			return err
		},
		func(now int64) {
			if cost, ran := sc.PassIfDue(now, pids); ran {
				// The kernel worker doing the PTE rewriting runs on
				// a core; its cost is end-to-end visible.
				machine.Core(0).AdvanceClock(cost)
			}
		},
		func(epoch int) core.EpochStats {
			ep := sc.HarvestEpoch(epoch)
			for _, ps := range ep.Pages {
				pages[ps.Key] = struct{}{}
			}
			return ep
		},
		func() MethodsRow {
			return MethodsRow{
				Profiler:      "autonuma",
				DistinctPages: len(pages),
				Observations:  sc.Stats().HintFaults,
			}
		})
}

func runBadgerTrap(opts Options, name string) (rawResult, error) {
	var bt *badgertrap.Profiler
	var pids []int
	var machine *cpu.Machine
	nextTrack := sim.ScaledSecond
	pages := make(map[core.PageKey]struct{})
	return rawRun(opts, name,
		func(m *cpu.Machine, w workload.Workload) error {
			var err error
			bt, err = badgertrap.New(badgertrap.DefaultConfig(), m)
			pids = w.Processes()
			machine = m
			return err
		},
		func(now int64) {
			// Re-track every scaled second so newly faulted-in pages
			// join the tracked set (Thermostat samples per interval).
			if now >= nextTrack {
				cost := bt.Track(pids)
				machine.Core(0).AdvanceClock(cost)
				for nextTrack <= now {
					nextTrack += sim.ScaledSecond
				}
			}
		},
		func(epoch int) core.EpochStats {
			ep := bt.HarvestEpoch(epoch)
			for _, ps := range ep.Pages {
				pages[ps.Key] = struct{}{}
			}
			return ep
		},
		func() MethodsRow {
			return MethodsRow{
				Profiler:      "badgertrap",
				DistinctPages: len(pages),
				Observations:  bt.Stats().Faults,
			}
		})
}

// RenderMethods draws the comparison.
func RenderMethods(rows []MethodsRow) string {
	t := report.NewTable(
		"Profiling-methods comparison (Table I quantified): coverage vs cost vs placement quality",
		"workload", "profiler", "pages", "observations", "overhead", "oracle-hitrate@1/16")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Profiler, r.DistinctPages, r.Observations,
			fmt.Sprintf("%.2f%%", r.OverheadPct), r.OracleHitrate)
	}
	return t.Render() + "\nBadgerTrap pays a fault per TLB miss; AutoNUMA's windowed first-access\nevidence carries little frequency information; TMP places best per unit cost.\n"
}
