package experiments

import (
	"tieredmem/internal/ibs"
	"tieredmem/internal/report"
)

// Fig2Row is one workload's entry in Fig. 2: the relative frequency of
// page-table-walk events that set the A bit versus the data-cache-miss
// events trace-based methods sample. The paper's takeaway: the two
// populations are the same order of magnitude, so TMP can rank pages
// by their plain sum without drowning either source out.
type Fig2Row struct {
	Workload  string
	PTWEvents uint64 // STLB misses: walks that set A bits
	CacheMiss uint64 // LLC misses: the events trace sampling draws from
	Ratio     float64
}

// Fig2 computes the PTW:cache-miss event ratio for every workload
// using the 4x-rate capture.
func Fig2(s *Suite) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, name := range s.Opts.workloads() {
		cp, err := s.Capture(name, ibs.Rate4x)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{
			Workload:  name,
			PTWEvents: cp.STLBMisses,
			CacheMiss: cp.LLCMisses,
		}
		if row.CacheMiss > 0 {
			row.Ratio = float64(row.PTWEvents) / float64(row.CacheMiss)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig2 draws the figure's data as a table.
func RenderFig2(rows []Fig2Row) string {
	t := report.NewTable(
		"Fig. 2: Ratio of PTW events (A-bit sets) to cache-miss events (trace samples)",
		"workload", "ptw_events", "cache_miss_events", "ratio")
	for _, r := range rows {
		t.AddRow(r.Workload, r.PTWEvents, r.CacheMiss, r.Ratio)
	}
	return t.Render()
}
