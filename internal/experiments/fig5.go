package experiments

import (
	"fmt"
	"sort"

	"tieredmem/internal/core"
	"tieredmem/internal/core/pageidx"
	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/report"
	"tieredmem/internal/stats"
)

// Fig5Series is one CDF: the distribution of per-page observation
// counts under one profiling view of one workload.
type Fig5Series struct {
	Workload string
	Method   string // "abit", "ibs(default)", "ibs(4x)", "ibs(8x)", "truth"
	Summary  stats.Summary
	Points   [][2]float64 // (access count, cumulative probability)
	// HotRecall is the fraction of the ground-truth hottest decile
	// that lands in this method's own hottest decile — the paper's
	// "A-bit alone classifies fewer than 10% of the pages ... as
	// hot" failure mode, quantified. 1.0 for the truth series.
	HotRecall float64
}

// Fig5 reproduces the per-page access-count CDFs: how concentrated
// each profiling method sees the heat. The paper's reading: the
// hottest pages are a small fraction of the footprint (steep CDF
// tails), A-bit counts saturate (bounded by scans), and raising the
// IBS rate shifts its CDF right without changing its shape.
func Fig5(s *Suite) ([]Fig5Series, error) {
	// Profile every (workload, rate) cell on the runner pool; the
	// series assembly below reads the warmed cache in presentation
	// order so the emitted rows and CSV points never reorder.
	if err := s.Warm("fig5", s.Opts.workloads(), Rates); err != nil {
		return nil, err
	}
	var out []Fig5Series
	for _, name := range s.Opts.workloads() {
		// A-bit counts per leaf, from the 4x capture (the A-bit view
		// does not depend on the IBS rate).
		cp4, err := s.Capture(name, ibs.Rate4x)
		if err != nil {
			return nil, err
		}
		abitCounts := newPageCounts(len(cp4.AbitEvents))
		for i := range cp4.AbitEvents {
			ev := &cp4.AbitEvents[i]
			abitCounts.add(core.PageKey{PID: ev.PID, VPN: ev.VPN}, 1)
		}

		// Ground truth from the 4x run's epochs.
		truth := newPageCounts(0)
		for _, ep := range cp4.Result.Epochs {
			for _, ps := range ep.Pages {
				if ps.True > 0 {
					truth.add(ps.Key, uint64(ps.True))
				}
			}
		}
		hotSet := topDecile(truth)

		abitSeries := seriesFromCounts(name, "abit", abitCounts)
		abitSeries.HotRecall = recall(hotSet, topDecileK(abitCounts, len(hotSet)))
		out = append(out, abitSeries)

		// IBS counts per 4 KiB page at every rate.
		for _, rate := range Rates {
			cp, err := s.Capture(name, rate)
			if err != nil {
				return nil, err
			}
			ibsCounts := newPageCounts(len(cp.IBSSamples))
			for i := range cp.IBSSamples {
				smp := &cp.IBSSamples[i]
				ibsCounts.add(core.PageKey{PID: smp.PID, VPN: mem.VPNOf(smp.VAddr)}, 1)
			}
			sr := seriesFromCounts(name, "ibs("+RateName(rate)+")", ibsCounts)
			sr.HotRecall = recall(hotSet, topDecileK(ibsCounts, len(hotSet)))
			out = append(out, sr)
		}

		truthSeries := seriesFromCounts(name, "truth", truth)
		truthSeries.HotRecall = 1
		out = append(out, truthSeries)
	}
	return out, nil
}

// pageCounts accumulates per-page observation counts as a dense
// column over pageidx interned ids — the densemap contract's
// replacement for the map[core.PageKey]uint64 accumulators this file
// used to rebuild per workload.
type pageCounts struct {
	tab    *pageidx.Table[core.PageKey]
	counts []uint64
}

// newPageCounts returns an accumulator sized for about n events.
func newPageCounts(n int) *pageCounts {
	return &pageCounts{tab: pageidx.New(n, core.PageKeyHash)}
}

// add accumulates n observations of page k.
func (pc *pageCounts) add(k core.PageKey, n uint64) {
	id := pc.tab.Intern(k)
	if int(id) == len(pc.counts) {
		pc.counts = append(pc.counts, 0)
	}
	pc.counts[id] += n
}

// len returns the number of distinct pages observed.
func (pc *pageCounts) len() int { return len(pc.counts) }

// keysSorted returns the observed pages in canonical (PID, VPN) order.
func (pc *pageCounts) keysSorted() []core.PageKey {
	keys := make([]core.PageKey, pc.len())
	for id := range keys {
		keys[id] = pc.tab.Key(uint32(id))
	}
	sort.Slice(keys, func(i, j int) bool { return core.PageKeyLess(keys[i], keys[j]) })
	return keys
}

// get returns page k's count (0 when never observed).
func (pc *pageCounts) get(k core.PageKey) uint64 {
	if id, ok := pc.tab.Lookup(k); ok {
		return pc.counts[id]
	}
	return 0
}

// topDecile returns the hottest 10% of pages (at least one) by count.
func topDecile(counts *pageCounts) map[core.PageKey]struct{} {
	return topDecileK(counts, counts.len()/10+1)
}

// topDecileK returns the k hottest pages by count (deterministic
// tie-break via core.RankLess's canonical (PID, VPN) order).
func topDecileK(counts *pageCounts, k int) map[core.PageKey]struct{} {
	type kv struct {
		k core.PageKey
		v uint64
	}
	all := make([]kv, 0, counts.len())
	for id, v := range counts.counts {
		all = append(all, kv{counts.tab.Key(uint32(id)), v})
	}
	all = core.TopKFunc(all, k, func(a, b kv) bool {
		return core.RankLess(float64(a.v), float64(b.v), false, false, a.k, b.k)
	})
	out := make(map[core.PageKey]struct{}, len(all))
	for i := range all {
		out[all[i].k] = struct{}{}
	}
	return out
}

// recall is |predicted ∩ actual| / |actual|.
func recall(actual, predicted map[core.PageKey]struct{}) float64 {
	if len(actual) == 0 {
		return 0
	}
	hit := 0
	for k := range predicted {
		if _, ok := actual[k]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(actual))
}

func seriesFromCounts(workload, method string, counts *pageCounts) Fig5Series {
	var cdf stats.CDF
	samples := make([]uint64, 0, counts.len())
	for _, key := range counts.keysSorted() {
		cdf.Add(counts.get(key))
		samples = append(samples, counts.get(key))
	}
	return Fig5Series{
		Workload: workload,
		Method:   method,
		Summary:  stats.Summarize(samples),
		Points:   cdf.Points(20),
	}
}

// RenderFig5 summarizes every CDF as quantile rows.
func RenderFig5(series []Fig5Series) string {
	t := report.NewTable(
		"Fig. 5: Per-page observation-count distributions by method and rate",
		"workload", "method", "pages", "p50", "p90", "p99", "max", "top10%share", "hot-recall")
	for _, s := range series {
		t.AddRow(s.Workload, s.Method, s.Summary.N, s.Summary.P50, s.Summary.P90,
			s.Summary.P99, s.Summary.Max, fmt.Sprintf("%.0f%%", s.Summary.GiniLikeRatio*100),
			fmt.Sprintf("%.0f%%", s.HotRecall*100))
	}
	return t.Render()
}

// Fig5CSV emits the raw CDF points for plotting.
func Fig5CSV(series []Fig5Series) string {
	var out []report.Series
	for _, s := range series {
		out = append(out, report.Series{
			Name:   s.Workload + "/" + s.Method,
			Points: s.Points,
		})
	}
	return report.SeriesCSV(out)
}
