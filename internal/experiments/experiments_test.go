package experiments

import (
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/ibs"
	"tieredmem/internal/order"
	"tieredmem/internal/policy"
)

// testOptions shrinks runs so the full analysis pipeline stays fast.
func testOptions(workloads ...string) Options {
	o := DefaultOptions()
	o.Refs = 3_000_000
	o.Workloads = workloads
	return o
}

func TestTable4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	s := NewSuite(testOptions("gups", "web-serving"))
	res, err := Table4(s)
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	t.Log("\n" + RenderTable4(res))
	cells := make(map[string]Table4Cell)
	for _, row := range res.Rows {
		cells[row.Workload] = row.ByRate[ibs.Rate4x]
	}
	// GUPS is THP-backed and random: IBS must detect far more pages
	// than the PMD-granular A bit (paper: 270555 vs 5552 at 4x).
	g := cells["gups"]
	if g.IBS <= g.Abit {
		t.Errorf("gups: IBS pages (%d) should far exceed A-bit leaves (%d)", g.IBS, g.Abit)
	}
	// Web-Serving is cache-friendly 4 KiB pages: the A bit sees the
	// whole resident set while IBS memory samples are rare (paper:
	// 25186 vs 4263 at 4x).
	w := cells["web-serving"]
	if w.Abit <= w.IBS {
		t.Errorf("web-serving: A-bit pages (%d) should exceed IBS pages (%d)", w.Abit, w.IBS)
	}
	// Rate scaling: 4x detects materially more than default; 8x adds
	// less over 4x than 4x did over default (diminishing returns).
	if res.Gain4x < 1.3 {
		t.Errorf("4x/default IBS gain %.2f too small (paper: 2.58)", res.Gain4x)
	}
	if res.Gain8x >= res.Gain4x {
		t.Errorf("8x/4x gain %.2f should be below 4x/default gain %.2f", res.Gain8x, res.Gain4x)
	}
}

func TestFig6TMPBeatsSingleMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	s := NewSuite(testOptions("gups", "web-serving", "xsbench"))
	res, err := Fig6(s)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	t.Log("\n" + RenderFig6(res))
	// The combined rank must never be materially worse than the best
	// single method for the Oracle policy, and must beat the worst
	// single method substantially somewhere.
	byArm := make(map[string]map[core.Method]float64)
	for _, pt := range res.Points {
		if pt.Policy != "oracle" {
			continue
		}
		k := pt.Workload + "/" + itoa(pt.Ratio)
		if byArm[k] == nil {
			byArm[k] = make(map[core.Method]float64)
		}
		byArm[k][pt.Method] = pt.Hitrate
	}
	for _, k := range order.SortedKeys(byArm) {
		arms := byArm[k]
		best := arms[core.MethodAbit]
		if arms[core.MethodTrace] > best {
			best = arms[core.MethodTrace]
		}
		// Tiny-capacity arms can show ~percent-level inversions from
		// tie-breaking noise; materially worse is the failure.
		if arms[core.MethodCombined] < best*0.90 {
			t.Errorf("%s: oracle combined hitrate %.3f below best single %.3f", k, arms[core.MethodCombined], best)
		}
	}
	if res.MaxOracleGain < 0.10 {
		t.Errorf("max oracle combined-over-single gain %.2f%% too small; paper reports up to 70%%", res.MaxOracleGain*100)
	}
}

func TestHitrateMonotoneInCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	s := NewSuite(testOptions("data-caching"))
	cp, err := s.Capture("data-caching", ibs.Rate4x)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	foot := footprintPages(cp.Result.Epochs)
	prev := 1.1
	for _, ratio := range policy.Fig6Ratios {
		hr := policy.EvaluateHitrate(policy.Oracle{}, cp.Result.Epochs, core.MethodCombined,
			policy.CapacityForRatio(foot, ratio))
		if hr.Hitrate() > prev+1e-9 {
			t.Errorf("hitrate at 1/%d (%.3f) exceeds larger capacity's (%.3f)", ratio, hr.Hitrate(), prev)
		}
		prev = hr.Hitrate()
	}
}

func itoa(n int) string {
	return string(rune('0'+n/100%10)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

func TestMethodsComparisonShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	opts := testOptions("data-caching")
	opts.Refs = 2_000_000
	rows, err := MethodsComparison(opts)
	if err != nil {
		t.Fatalf("MethodsComparison: %v", err)
	}
	t.Log("\n" + RenderMethods(rows))
	byProf := map[string]MethodsRow{}
	for _, r := range rows {
		byProf[r.Profiler] = r
	}
	tmp, an, bt := byProf["tmp"], byProf["autonuma"], byProf["badgertrap"]
	if tmp.DistinctPages == 0 || an.DistinctPages == 0 || bt.DistinctPages == 0 {
		t.Fatalf("a profiler saw nothing: %+v", rows)
	}
	// Fault-per-TLB-miss accounting makes BadgerTrap far more
	// expensive than TMP.
	if tmp.OverheadPct >= bt.OverheadPct {
		t.Errorf("TMP overhead %.2f%% not below BadgerTrap's %.2f%%", tmp.OverheadPct, bt.OverheadPct)
	}
	// Information quality: TMP's combined evidence must place in the
	// same band as AutoNUMA's windowed first-access evidence (both
	// are dominated by large tie groups at this capacity, so small
	// deltas are tie-break noise) — while costing only a bounded
	// amount more than AutoNUMA's near-free sampling.
	if tmp.OracleHitrate < an.OracleHitrate*0.8 {
		t.Errorf("TMP oracle hitrate %.3f far below AutoNUMA's %.3f", tmp.OracleHitrate, an.OracleHitrate)
	}
	if tmp.OverheadPct > 10 {
		t.Errorf("TMP overhead %.2f%% out of band", tmp.OverheadPct)
	}
}

func TestColocationFilterCutsWalkWork(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	opts := DefaultOptions()
	opts.Refs = 3_000_000
	res, err := Colocation(opts, 16)
	if err != nil {
		t.Fatalf("Colocation: %v", err)
	}
	t.Log("\n" + RenderColocation(res))
	if res.ProfiledPIDs >= res.TotalPIDs {
		t.Fatalf("filter excluded nothing: %d/%d", res.ProfiledPIDs, res.TotalPIDs)
	}
	if res.FilteredPTEs >= res.UnfilteredPTEs {
		t.Errorf("filtered walk work %d not below unfiltered %d", res.FilteredPTEs, res.UnfilteredPTEs)
	}
	// Detection on the busy service must not be materially harmed.
	if res.FilteredBusyPages < res.UnfilteredBusyPages*9/10 {
		t.Errorf("filtering lost busy-service coverage: %d vs %d",
			res.FilteredBusyPages, res.UnfilteredBusyPages)
	}
}

func TestFig5HotRecallShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	s := NewSuite(testOptions("data-caching", "xsbench"))
	series, err := Fig5(s)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	t.Log("\n" + RenderFig5(series))
	get := func(w, m string) Fig5Series {
		for _, sr := range series {
			if sr.Workload == w && sr.Method == m {
				return sr
			}
		}
		t.Fatalf("series %s/%s missing", w, m)
		return Fig5Series{}
	}
	if get("data-caching", "truth").HotRecall != 1 {
		t.Errorf("truth recall != 1")
	}
	// On 4 KiB-paged workloads, epoch-presence counting is a decent
	// frequency proxy: pages touched in every epoch ARE the hot ones.
	if r := get("data-caching", "abit").HotRecall; r < 0.5 {
		t.Errorf("data-caching A-bit recall %.2f; epoch presence should rank well here", r)
	}
	// On THP-backed workloads the A bit sees 2 MiB chunks: it cannot
	// localize the hot 4 KiB pages — the paper's "fewer than 10%
	// classified as hot" failure mode.
	if r := get("xsbench", "abit").HotRecall; r > 0.35 {
		t.Errorf("xsbench A-bit recall %.2f; PMD granularity should blur the ranking", r)
	}
	// Raising the IBS rate improves recall monotonically-ish.
	if get("xsbench", "ibs(8x)").HotRecall < get("xsbench", "ibs(default)").HotRecall {
		t.Errorf("IBS recall fell with the sampling rate")
	}
}

func TestRateName(t *testing.T) {
	cases := map[int]string{1: "default", 4: "4x", 8: "8x", 16: "16x"}
	for _, rate := range order.SortedKeys(cases) {
		if got := RateName(rate); got != cases[rate] {
			t.Errorf("RateName(%d) = %q, want %q", rate, got, cases[rate])
		}
	}
}

func TestCaptureBothKeying(t *testing.T) {
	cp := &Capture{
		AbitPages: map[core.PageKey]struct{}{
			{PID: 1, VPN: 0}:   {}, // huge leaf base
			{PID: 1, VPN: 512}: {},
		},
		IBSPages: map[core.PageKey]struct{}{
			{PID: 1, VPN: 0}:   {}, // coincides with the leaf base
			{PID: 1, VPN: 100}: {}, // interior subpage: no match
			{PID: 2, VPN: 0}:   {}, // different process
		},
	}
	if got := cp.Both(); got != 1 {
		t.Errorf("Both = %d, want 1", got)
	}
}

func TestHeatmapExperimentsNonEmpty(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	s := NewSuite(testOptions("gups"))
	f3, err := Fig3(s)
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	f4, err := Fig4(s)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(f3) != 1 || len(f4) != 1 {
		t.Fatalf("heatmap counts: %d, %d", len(f3), len(f4))
	}
	if f3[0].Grid.Nonzero() == 0 {
		t.Errorf("IBS heatmap empty")
	}
	if f4[0].Grid.Nonzero() == 0 {
		t.Errorf("A-bit heatmap empty")
	}
	// The A-bit map covers far more cells than the sparse IBS map on
	// a THP-backed uniform workload: each huge-leaf observation
	// spreads over its whole 2 MiB span.
	if f4[0].Grid.Nonzero() < f3[0].Grid.Nonzero() {
		t.Errorf("A-bit heatmap (%d cells) sparser than IBS (%d)",
			f4[0].Grid.Nonzero(), f3[0].Grid.Nonzero())
	}
}

func TestFig2RatiosSameOrderOfMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	s := NewSuite(testOptions("gups", "lulesh"))
	rows, err := Fig2(s)
	if err != nil {
		t.Fatalf("Fig2: %v", err)
	}
	for _, r := range rows {
		if r.Ratio < 0.1 || r.Ratio > 10 {
			t.Errorf("%s: PTW/cache-miss ratio %.3f outside one order of magnitude", r.Workload, r.Ratio)
		}
	}
}

func TestEpochSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling runs are slow")
	}
	s := NewSuite(testOptions("data-caching"))
	rows, err := EpochSweep(s, []int{1, 2, 4})
	if err != nil {
		t.Fatalf("EpochSweep: %v", err)
	}
	t.Log("\n" + RenderEpochSweep(rows))
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Epoch counts must shrink as the horizon grows; merged epochs
	// must conserve the evidence mass.
	if rows[0].Epochs <= rows[2].Epochs {
		t.Errorf("coarser epochs did not reduce epoch count: %d vs %d", rows[0].Epochs, rows[2].Epochs)
	}
}

func TestRebucketConservesMass(t *testing.T) {
	base := []core.EpochStats{
		{Epoch: 0, Pages: []core.PageStat{{Key: core.PageKey{PID: 1, VPN: 1}, Abit: 1, Trace: 2, True: 3}}},
		{Epoch: 1, Pages: []core.PageStat{{Key: core.PageKey{PID: 1, VPN: 1}, Abit: 4, Trace: 0, True: 1}}},
		{Epoch: 2, Pages: []core.PageStat{{Key: core.PageKey{PID: 1, VPN: 2}, Abit: 1, Trace: 1, True: 1}}},
	}
	out := rebucket(base, 2)
	if len(out) != 2 {
		t.Fatalf("rebucket produced %d epochs, want 2", len(out))
	}
	var abit, tr, truth uint32
	for _, ep := range out {
		for _, ps := range ep.Pages {
			abit += ps.Abit
			tr += ps.Trace
			truth += ps.True
		}
	}
	if abit != 6 || tr != 3 || truth != 5 {
		t.Errorf("mass not conserved: abit=%d trace=%d true=%d", abit, tr, truth)
	}
	// First merged epoch holds page 1's summed counts.
	if len(out[0].Pages) != 1 || out[0].Pages[0].Abit != 5 {
		t.Errorf("merge wrong: %+v", out[0].Pages)
	}
}
