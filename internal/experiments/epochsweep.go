package experiments

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/ibs"
	"tieredmem/internal/policy"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
)

// EpochSweepRow is one epoch-length arm of the sweep: the offline
// History-policy hitrate and the migration churn it induces at a 1/16
// capacity.
type EpochSweepRow struct {
	Workload string
	// EpochMultiple is the epoch length in scaled seconds: 1 is the
	// paper's choice; larger values accumulate more evidence per
	// horizon but react slower.
	EpochMultiple int
	Hitrate       float64
	// MigratedPerEpoch is the average selection churn, the paper's
	// reason for epoch-based batching in the first place.
	MigratedPerEpoch float64
	Epochs           int
}

// EpochSweep evaluates the epoch-length choice (§IV: "hotness rankings
// accumulated over a period of time — the epoch duration"): shorter
// epochs react faster but accumulate less evidence per horizon and
// churn more migrations; longer epochs smooth evidence but lag phase
// changes. The sweep re-buckets one profiling run's harvests into
// coarser horizons, so every arm ranks identical observations.
func EpochSweep(s *Suite, multiples []int) ([]EpochSweepRow, error) {
	if len(multiples) == 0 {
		multiples = []int{1, 2, 4, 8}
	}
	jobs := make([]runner.Job[[]EpochSweepRow], 0, len(s.Opts.workloads()))
	for _, name := range s.Opts.workloads() {
		jobs = append(jobs, runner.Job[[]EpochSweepRow]{
			Name: "epochsweep/" + name,
			Run:  func() ([]EpochSweepRow, error) { return epochSweepCell(s, name, multiples) },
		})
	}
	cells, err := runCells(s.Opts, "epochsweep", jobs)
	if err != nil {
		return nil, err
	}
	var rows []EpochSweepRow
	for _, c := range cells {
		rows = append(rows, c...)
	}
	return rows, nil
}

// epochSweepCell computes one workload's sweep arms. The Suite capture
// is concurrency-safe, so concurrent cells needing the same run share
// one profile.
func epochSweepCell(s *Suite, name string, multiples []int) ([]EpochSweepRow, error) {
	cp, err := s.Capture(name, ibs.Rate4x)
	if err != nil {
		return nil, err
	}
	base := cp.Result.Epochs
	foot := footprintPages(base)
	capacity := policy.CapacityForRatio(foot, 16)
	rows := make([]EpochSweepRow, 0, len(multiples))
	for _, mult := range multiples {
		epochs := rebucket(base, mult)
		hr := policy.EvaluateHitrate(policy.History{}, epochs, core.MethodCombined, capacity)
		row := EpochSweepRow{
			Workload:      name,
			EpochMultiple: mult,
			Hitrate:       hr.Hitrate(),
			Epochs:        len(epochs),
		}
		if len(epochs) > 1 {
			row.MigratedPerEpoch = float64(hr.Migrated) / float64(len(epochs)-1)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// rebucket merges groups of `div` consecutive base epochs into one
// coarser epoch (div=1 returns the input). The base harvests were cut
// at the finest horizon of interest; merging reproduces what a longer
// epoch would have accumulated.
func rebucket(base []core.EpochStats, div int) []core.EpochStats {
	if div <= 1 {
		return base
	}
	var out []core.EpochStats
	for start := 0; start < len(base); start += div {
		end := start + div
		if end > len(base) {
			end = len(base)
		}
		merged := core.SumEpochs(base[start:end])
		merged.Epoch = len(out)
		out = append(out, merged)
	}
	return out
}

// RenderEpochSweep draws the sweep in scaled epoch lengths relative to
// the paper's 1-second choice.
func RenderEpochSweep(rows []EpochSweepRow) string {
	t := report.NewTable(
		"Epoch-length sweep: History policy at 1/16 capacity",
		"workload", "epoch", "epochs", "hitrate", "migrated/epoch")
	for _, r := range rows {
		t.AddRow(r.Workload, fmt.Sprintf("%d s", r.EpochMultiple), r.Epochs,
			r.Hitrate, fmt.Sprintf("%.0f", r.MigratedPerEpoch))
	}
	return t.Render() + "\nLonger epochs accumulate more evidence per horizon (History reacts\nslower but mispredicts less per migration); the totals quantify the knee.\n"
}
