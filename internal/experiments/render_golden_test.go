package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tieredmem/internal/core"
	"tieredmem/internal/stats"
)

// update rewrites the renderer goldens instead of comparing:
//
//	go test ./internal/experiments -run Golden -update
//
// The fixtures are hand-built rows, not simulation output, so these
// tests pin the *rendering* (column layout, number formatting, captions)
// independently of simulation drift: a change to the simulator cannot
// break them, and a change to a renderer cannot hide behind one.
var update = flag.Bool("update", false, "rewrite testdata goldens")

// checkGolden compares got against testdata/<name>.golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s\n(run `go test ./internal/experiments -run Golden -update` if the change is intended)",
			name, got, string(want))
	}
}

func TestGoldenRenderMethods(t *testing.T) {
	rows := []MethodsRow{
		{Workload: "gups", Profiler: "tmp", DistinctPages: 270555, Observations: 1234567, OverheadPct: 3.21, OracleHitrate: 0.451},
		{Workload: "gups", Profiler: "autonuma", DistinctPages: 5552, Observations: 4096, OverheadPct: 0.42, OracleHitrate: 0.377},
		{Workload: "gups", Profiler: "badgertrap", DistinctPages: 260001, Observations: 9999999, OverheadPct: 212.5, OracleHitrate: 0.43},
	}
	checkGolden(t, "methods_render", RenderMethods(rows))
}

func TestGoldenRenderEpochSweep(t *testing.T) {
	rows := []EpochSweepRow{
		{Workload: "data-caching", EpochMultiple: 1, Hitrate: 0.912, MigratedPerEpoch: 150.4, Epochs: 32},
		{Workload: "data-caching", EpochMultiple: 2, Hitrate: 0.93, MigratedPerEpoch: 99.6, Epochs: 16},
		{Workload: "data-caching", EpochMultiple: 8, Hitrate: 0.951, MigratedPerEpoch: 20, Epochs: 4},
	}
	checkGolden(t, "epochsweep_render", RenderEpochSweep(rows))
}

func TestGoldenRenderOverhead(t *testing.T) {
	rows := []OverheadRow{
		{Workload: "gups", BaseNS: 1_000_000, AbitPct: 0.52, IBSDefPct: 1.3, IBS4xPct: 4.75, TMPFullPct: 2.11},
		{Workload: "lulesh", BaseNS: 2_000_000, AbitPct: 0, IBSDefPct: 0.01, IBS4xPct: 0.5, TMPFullPct: 0.25},
	}
	checkGolden(t, "overhead_render", RenderOverhead(rows))
}

func TestGoldenRenderSpeedup(t *testing.T) {
	res := SpeedupResult{
		Rows: []SpeedupRow{
			{Workload: "gups", EmulSpeedup: 1.13, SimSpeedup: 1.21, BaseHitrate: 0.55, TMPHitrate: 0.81},
			{Workload: "xsbench", EmulSpeedup: 0.997, SimSpeedup: 1.004, BaseHitrate: 0.9, TMPHitrate: 0.91},
		},
		EmulAvg: 1.04, EmulBest: 1.13, SimAvg: 1.1, SimBest: 1.21,
	}
	checkGolden(t, "speedup_render", RenderSpeedup(res))
}

func TestGoldenRenderTable4(t *testing.T) {
	res := Table4Result{
		Rows: []Table4Row{
			{Workload: "gups", ByRate: map[int]Table4Cell{
				1: {Abit: 5552, IBS: 104872, Both: 201},
				4: {Abit: 5552, IBS: 270555, Both: 255},
				8: {Abit: 5552, IBS: 301_001, Both: 260},
			}},
			{Workload: "web-serving", ByRate: map[int]Table4Cell{
				1: {Abit: 25186, IBS: 1650, Both: 1100},
				4: {Abit: 25186, IBS: 4263, Both: 2900},
				8: {Abit: 25186, IBS: 5510, Both: 3600},
			}},
		},
		Gain4x: 2.58, Gain8x: 1.14,
	}
	checkGolden(t, "table4_render", RenderTable4(res))
}

func TestGoldenRenderFig2(t *testing.T) {
	rows := []Fig2Row{
		{Workload: "gups", PTWEvents: 150000, CacheMiss: 120000, Ratio: 1.25},
		{Workload: "lulesh", PTWEvents: 9000, CacheMiss: 30000, Ratio: 0.3},
	}
	checkGolden(t, "fig2_render", RenderFig2(rows))
}

// fig5Fixture is shared by the text and CSV goldens.
func fig5Fixture() []Fig5Series {
	return []Fig5Series{
		{
			Workload:  "gups",
			Method:    "ibs(4x)",
			Summary:   stats.Summarize([]uint64{1, 1, 2, 3, 5, 8, 13, 21, 34, 55}),
			Points:    [][2]float64{{1, 0.2}, {8, 0.6}, {55, 1}},
			HotRecall: 0.42,
		},
		{
			Workload:  "gups",
			Method:    "truth",
			Summary:   stats.Summarize([]uint64{2, 2, 4, 4, 100}),
			Points:    [][2]float64{{2, 0.4}, {100, 1}},
			HotRecall: 1,
		},
	}
}

func TestGoldenRenderFig5(t *testing.T) {
	checkGolden(t, "fig5_render", RenderFig5(fig5Fixture()))
}

func TestGoldenFig5CSV(t *testing.T) {
	checkGolden(t, "fig5_csv", Fig5CSV(fig5Fixture()))
}

func TestGoldenRenderFig6(t *testing.T) {
	var res Fig6Result
	for _, ratio := range []int{8, 16, 32, 64, 128} {
		for i, m := range core.Methods {
			res.Points = append(res.Points, Fig6Point{
				Workload: "gups", Policy: "oracle", Method: m, Ratio: ratio,
				Hitrate: 0.9 - float64(ratio)/256 - float64(i)/100,
			})
		}
	}
	res.MaxOracleGain = 0.7
	res.MaxHistoryGain = 0.6
	checkGolden(t, "fig6_render", RenderFig6(res))
}

func TestGoldenRenderMultiTier(t *testing.T) {
	rows := []MultiTierRow{
		{Workload: "gups", Tiers: 2, Chain: "dram/nvm", Method: "abit", Hitrate: 0.61, Promotions: 1200, Demotions: 1100, DurationNS: 1_000_000},
		{Workload: "gups", Tiers: 2, Chain: "dram/nvm", Method: "tmp", Hitrate: 0.72, Promotions: 1350, Demotions: 1300, DurationNS: 970_000},
		{Workload: "gups", Tiers: 3, Chain: "dram/cxl/nvm", Method: "devprof", Hitrate: 0.58, Promotions: 900, Demotions: 850, DurationNS: 1_040_000},
		{Workload: "gups", Tiers: 3, Chain: "dram/cxl/nvm", Method: "tmp", Hitrate: 0.71, Promotions: 1500, Demotions: 1400, DurationNS: 985_000, Quarantined: 1},
		{Workload: "gups", Tiers: 4, Chain: "dram/cxl/nvm/ssd", Method: "tmp", Hitrate: 0.69, Promotions: 1480, Demotions: 1420, DurationNS: 990_000},
	}
	checkGolden(t, "multitier_render", RenderMultiTier(rows))
}

func TestGoldenRenderBWContend(t *testing.T) {
	rows := []BWContendRow{
		{Workload: "gups", Frac: 0, Arm: "clean", Hitrate: 0.72, TxCommitted: 2400, AbortedDirty: 0, ShadowHits: 310, Admitted: 0, Deferred: 0, Rejected: 0, DurationNS: 970_000},
		{Workload: "gups", Frac: 0.25, Arm: "clean", Hitrate: 0.66, TxCommitted: 1100, ShadowHits: 290, Admitted: 1390, Deferred: 800, Rejected: 120, DurationNS: 1_010_000},
		{Workload: "gups", Frac: 1.0, Arm: "clean", Hitrate: 0.71, TxCommitted: 2300, ShadowHits: 305, Admitted: 2605, Deferred: 90, Rejected: 0, DurationNS: 975_000},
		{Workload: "gups", Frac: 0.25, Arm: "chaos", Hitrate: 0.63, TxCommitted: 990, AbortedDirty: 130, ShadowHits: 250, Admitted: 1370, Deferred: 840, Rejected: 160, DurationNS: 1_030_000},
	}
	checkGolden(t, "bwcontend_render", RenderBWContend(rows))
}

func TestGoldenRenderColocation(t *testing.T) {
	res := ColocationResult{
		IdlerCount:     16,
		FilteredPTEs:   100_000,
		UnfilteredPTEs: 1_000_000,
		FilteredAbitNS: 50_000, UnfilteredAbitNS: 480_000,
		ProfiledPIDs: 4, TotalPIDs: 20,
		FilteredBusyPages: 9_900, UnfilteredBusyPages: 10_000,
	}
	checkGolden(t, "colocation_render", RenderColocation(res))
}

func TestGoldenRenderHeatmaps(t *testing.T) {
	h := stats.NewHeatmap(8, 4, 0, 80, 0, 4096)
	for i := int64(0); i < 8; i++ {
		h.Add(i*10, uint64(i)*512, uint64(i))
	}
	maps := []WorkloadHeatmap{{Workload: "gups", Grid: h}}
	checkGolden(t, "heatmaps_render", RenderHeatmaps("Fixture heatmaps", maps))
}
