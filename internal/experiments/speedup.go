package experiments

import (
	"fmt"
	"strings"

	"tieredmem/internal/core"
	"tieredmem/internal/emul"
	"tieredmem/internal/ibs"
	"tieredmem/internal/policy"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

// SpeedupRow is one workload's §VI-C end-to-end result: TMP-driven
// placement (History policy on the combined rank) versus the
// NUMA-like first-come-first-allocate baseline, under the BadgerTrap
// emulation cost model (10 us slow-access fault, +13 us hot page,
// 50 us migration) and under the simulator's native NVM latencies.
type SpeedupRow struct {
	Workload string
	// Emulated arm (the paper's methodology).
	EmulBaselineNS int64
	EmulTMPNS      int64
	EmulSpeedup    float64
	// Native-latency arm (simulator capability beyond the paper).
	SimBaselineNS int64
	SimTMPNS      int64
	SimSpeedup    float64
	// Hitrates of the native arm, for context.
	BaseHitrate float64
	TMPHitrate  float64
}

// SpeedupResult bundles rows with aggregates.
type SpeedupResult struct {
	Rows []SpeedupRow
	// Averages over workloads (paper: 1.04x average, 1.13x best).
	EmulAvg, EmulBest float64
	SimAvg, SimBest   float64
}

// speedupArms lists the four placement arms of one workload's row, in
// a fixed order the assembly below indexes by.
var speedupArms = []struct {
	name    string
	history bool // History policy (vs first-touch baseline)
	emul    bool // BadgerTrap emulation cost model (vs native latency)
}{
	{"emul-baseline", false, true},
	{"emul-tmp", true, true},
	{"sim-baseline", false, false},
	{"sim-tmp", true, false},
}

// speedupArm runs one self-contained placement simulation. With
// Options.Shards > 0 the arm's machine is partitioned per core and
// executed on the sharded pipeline; the fused result has the same
// shape, so row assembly is identical on both paths.
func speedupArm(opts Options, name string, history, useEmul bool) (sim.PlacementResult, error) {
	const ratio = 16
	mk := func() workload.Workload {
		return workload.MustNew(name, opts.workloadConfig())
	}
	w, err := workload.New(name, opts.workloadConfig())
	if err != nil {
		return sim.PlacementResult{}, err
	}
	var costs *emul.Costs
	if useEmul {
		c := emul.PaperCosts(0)
		costs = &c
	}
	period := ibs.PeriodForRate(opts.BasePeriod, ibs.Rate4x)
	if opts.Shards > 0 {
		cfg := sim.DefaultPlacementConfig(w, period, opts.heavyRefs(), ratio, nil, core.MethodCombined)
		cfg.EmulCosts = costs
		scfg := sim.ShardedPlacementConfig{
			Base:      cfg,
			Shards:    opts.Shards,
			NowNS:     opts.NowNS,
			FaultSpec: opts.Faults,
			FaultSeed: opts.Seed,
		}
		if history {
			scfg.MkPolicy = func() policy.Policy { return policy.History{} }
		}
		r, err := sim.RunShardedPlacement(scfg, mk)
		return r.PlacementResult, err
	}
	var p policy.Policy
	if history {
		p = policy.History{}
	}
	cfg := sim.DefaultPlacementConfig(w, period, opts.heavyRefs(), ratio, p, core.MethodCombined)
	cfg.EmulCosts = costs
	cfg.Faults = opts.faultPlane()
	return sim.RunPlacement(cfg, w)
}

// Speedup reproduces the end-to-end evaluation: a 1/16 fast:total
// capacity ratio (the paper's 4 GB fast + 60 GB slow), History policy
// on TMP's combined rank, against first-touch. Every workload
// contributes four independent arms (emulated/native x baseline/TMP);
// all 4 x len(workloads) simulations fan out on the runner pool.
func Speedup(opts Options) (SpeedupResult, error) {
	var res SpeedupResult
	names := opts.workloads()
	jobs := make([]runner.Job[sim.PlacementResult], 0, len(names)*len(speedupArms))
	for _, name := range names {
		for _, arm := range speedupArms {
			jobs = append(jobs, runner.Job[sim.PlacementResult]{
				Name: "speedup/" + name + "/" + arm.name,
				Run: func() (sim.PlacementResult, error) {
					r, err := speedupArm(opts, name, arm.history, arm.emul)
					if err != nil {
						return r, fmt.Errorf("experiments: %s %s: %w", name, arm.name, err)
					}
					return r, nil
				},
			})
		}
	}
	arms, err := runCells(opts, "speedup", jobs)
	if err != nil {
		return res, err
	}
	for i, name := range names {
		a := arms[i*len(speedupArms) : (i+1)*len(speedupArms)]
		eb, et, sb, st := a[0], a[1], a[2], a[3]
		row := SpeedupRow{Workload: name}
		row.EmulBaselineNS, row.EmulTMPNS = eb.DurationNS, et.DurationNS
		if et.DurationNS > 0 {
			row.EmulSpeedup = float64(eb.DurationNS) / float64(et.DurationNS)
		}
		row.SimBaselineNS, row.SimTMPNS = sb.DurationNS, st.DurationNS
		if st.DurationNS > 0 {
			row.SimSpeedup = float64(sb.DurationNS) / float64(st.DurationNS)
		}
		row.BaseHitrate, row.TMPHitrate = sb.Hitrate(), st.Hitrate()
		res.Rows = append(res.Rows, row)
	}
	for _, r := range res.Rows {
		res.EmulAvg += r.EmulSpeedup
		res.SimAvg += r.SimSpeedup
		if r.EmulSpeedup > res.EmulBest {
			res.EmulBest = r.EmulSpeedup
		}
		if r.SimSpeedup > res.SimBest {
			res.SimBest = r.SimSpeedup
		}
	}
	if n := float64(len(res.Rows)); n > 0 {
		res.EmulAvg /= n
		res.SimAvg /= n
	}
	return res, nil
}

// RenderSpeedup draws the study.
func RenderSpeedup(res SpeedupResult) string {
	t := report.NewTable(
		"§VI-C: End-to-end speedup of TMP+History over first-touch (1/16 fast tier)",
		"workload", "emul_speedup", "sim_speedup", "base_hitrate", "tmp_hitrate")
	for _, r := range res.Rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.3fx", r.EmulSpeedup),
			fmt.Sprintf("%.3fx", r.SimSpeedup),
			r.BaseHitrate, r.TMPHitrate)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nEmulated: avg %.3fx, best %.3fx (paper: avg 1.04x, best 1.13x). Native-latency: avg %.3fx, best %.3fx.\n",
		res.EmulAvg, res.EmulBest, res.SimAvg, res.SimBest)
	return b.String()
}
