package experiments

import (
	"fmt"
	"strings"

	"tieredmem/internal/core"
	"tieredmem/internal/emul"
	"tieredmem/internal/ibs"
	"tieredmem/internal/policy"
	"tieredmem/internal/report"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

// SpeedupRow is one workload's §VI-C end-to-end result: TMP-driven
// placement (History policy on the combined rank) versus the
// NUMA-like first-come-first-allocate baseline, under the BadgerTrap
// emulation cost model (10 us slow-access fault, +13 us hot page,
// 50 us migration) and under the simulator's native NVM latencies.
type SpeedupRow struct {
	Workload string
	// Emulated arm (the paper's methodology).
	EmulBaselineNS int64
	EmulTMPNS      int64
	EmulSpeedup    float64
	// Native-latency arm (simulator capability beyond the paper).
	SimBaselineNS int64
	SimTMPNS      int64
	SimSpeedup    float64
	// Hitrates of the native arm, for context.
	BaseHitrate float64
	TMPHitrate  float64
}

// SpeedupResult bundles rows with aggregates.
type SpeedupResult struct {
	Rows []SpeedupRow
	// Averages over workloads (paper: 1.04x average, 1.13x best).
	EmulAvg, EmulBest float64
	SimAvg, SimBest   float64
}

// Speedup reproduces the end-to-end evaluation: a 1/16 fast:total
// capacity ratio (the paper's 4 GB fast + 60 GB slow), History policy
// on TMP's combined rank, against first-touch.
func Speedup(opts Options) (SpeedupResult, error) {
	var res SpeedupResult
	const ratio = 16
	for _, name := range opts.workloads() {
		row := SpeedupRow{Workload: name}

		runArm := func(p policy.Policy, costs *emul.Costs) (sim.PlacementResult, error) {
			w, err := workload.New(name, opts.workloadConfig())
			if err != nil {
				return sim.PlacementResult{}, err
			}
			period := ibs.PeriodForRate(opts.BasePeriod, ibs.Rate4x)
			cfg := sim.DefaultPlacementConfig(w, period, opts.Refs, ratio, p, core.MethodCombined)
			cfg.EmulCosts = costs
			return sim.RunPlacement(cfg, w)
		}

		paperCosts := emul.PaperCosts(0)

		eb, err := runArm(nil, &paperCosts)
		if err != nil {
			return res, fmt.Errorf("experiments: %s emul baseline: %w", name, err)
		}
		et, err := runArm(policy.History{}, &paperCosts)
		if err != nil {
			return res, fmt.Errorf("experiments: %s emul tmp: %w", name, err)
		}
		row.EmulBaselineNS, row.EmulTMPNS = eb.DurationNS, et.DurationNS
		if et.DurationNS > 0 {
			row.EmulSpeedup = float64(eb.DurationNS) / float64(et.DurationNS)
		}

		sb, err := runArm(nil, nil)
		if err != nil {
			return res, fmt.Errorf("experiments: %s sim baseline: %w", name, err)
		}
		st, err := runArm(policy.History{}, nil)
		if err != nil {
			return res, fmt.Errorf("experiments: %s sim tmp: %w", name, err)
		}
		row.SimBaselineNS, row.SimTMPNS = sb.DurationNS, st.DurationNS
		if st.DurationNS > 0 {
			row.SimSpeedup = float64(sb.DurationNS) / float64(st.DurationNS)
		}
		row.BaseHitrate, row.TMPHitrate = sb.Hitrate(), st.Hitrate()

		res.Rows = append(res.Rows, row)
	}
	for _, r := range res.Rows {
		res.EmulAvg += r.EmulSpeedup
		res.SimAvg += r.SimSpeedup
		if r.EmulSpeedup > res.EmulBest {
			res.EmulBest = r.EmulSpeedup
		}
		if r.SimSpeedup > res.SimBest {
			res.SimBest = r.SimSpeedup
		}
	}
	if n := float64(len(res.Rows)); n > 0 {
		res.EmulAvg /= n
		res.SimAvg /= n
	}
	return res, nil
}

// RenderSpeedup draws the study.
func RenderSpeedup(res SpeedupResult) string {
	t := report.NewTable(
		"§VI-C: End-to-end speedup of TMP+History over first-touch (1/16 fast tier)",
		"workload", "emul_speedup", "sim_speedup", "base_hitrate", "tmp_hitrate")
	for _, r := range res.Rows {
		t.AddRow(r.Workload,
			fmt.Sprintf("%.3fx", r.EmulSpeedup),
			fmt.Sprintf("%.3fx", r.SimSpeedup),
			r.BaseHitrate, r.TMPHitrate)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nEmulated: avg %.3fx, best %.3fx (paper: avg 1.04x, best 1.13x). Native-latency: avg %.3fx, best %.3fx.\n",
		res.EmulAvg, res.EmulBest, res.SimAvg, res.SimBest)
	return b.String()
}
