package experiments

import (
	"fmt"

	"tieredmem/internal/ibs"
	"tieredmem/internal/report"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/workload"
)

// ColocationResult measures the TMP daemon's process filter (§III-B4,
// second optimization: profile only processes with >=5% CPU or >=10%
// memory, re-evaluated every second) in the consolidation setting it
// was designed for: one busy service sharing a machine with a crowd of
// near-idle memory hogs.
type ColocationResult struct {
	IdlerCount int
	// A-bit walk work with the filter on and off.
	FilteredPTEs   uint64
	UnfilteredPTEs uint64
	// A-bit overhead (virtual ns charged) with the filter on and off.
	FilteredAbitNS   int64
	UnfilteredAbitNS int64
	// ProfiledPIDs is how many of the processes passed the filter.
	ProfiledPIDs int
	TotalPIDs    int
	// Detection on the busy service must be unharmed by filtering.
	FilteredBusyPages   int
	UnfilteredBusyPages int
}

// Colocation runs a data-caching service weighted 64:1 against
// idlerCount idle 4 MiB-heap processes, once with the resource filter
// active and once profiling everything, and compares A-bit walk work.
func Colocation(opts Options, idlerCount int) (ColocationResult, error) {
	res := ColocationResult{IdlerCount: idlerCount}

	build := func() (workload.Workload, core0UsageFunc, error) {
		busy := workload.MustNew("data-caching", workload.Config{Seed: opts.Seed, FirstPID: 100, ScaleShift: opts.ScaleShift})
		idle := workload.NewIdlers(workload.Config{Seed: opts.Seed, FirstPID: 500, ScaleShift: opts.ScaleShift}, idlerCount, 4<<20)
		w, err := workload.CombineWeighted([]workload.Workload{busy, idle}, []int{64, 1})
		if err != nil {
			return nil, nil, err
		}
		busyPIDs := map[int]bool{}
		for _, pid := range busy.Processes() {
			busyPIDs[pid] = true
		}
		nBusy := float64(len(busy.Processes()))
		total := float64(w.FootprintBytes())
		usage := func(pid int) (float64, float64) {
			if busyPIDs[pid] {
				// The busy service splits ~98% of the CPU.
				return 0.98 / nBusy, float64(busy.FootprintBytes()) / total / nBusy
			}
			// Idlers: negligible CPU, a few MiB each.
			return 0.001, float64(4<<20) / total
		}
		return w, usage, nil
	}

	// colocationArm is everything one arm's simulation yields; arms
	// are self-contained (each builds its own combined workload), so
	// the filtered and unfiltered runs fan out as two runner cells.
	type colocationArm struct {
		ptes         uint64
		abitNS       int64
		profiledPIDs int
		totalPIDs    int
		busyPages    int
	}

	busyPages := func(r sim.Result) int {
		pages := map[[2]uint64]struct{}{}
		for _, ep := range r.Epochs {
			for _, ps := range ep.Pages {
				if ps.Key.PID < 500 && (ps.Abit > 0 || ps.Trace > 0) {
					pages[[2]uint64{uint64(ps.Key.PID), uint64(ps.Key.VPN)}] = struct{}{}
				}
			}
		}
		return len(pages)
	}

	run := func(filtered bool) (colocationArm, error) {
		var arm colocationArm
		w, usage, err := build()
		if err != nil {
			return arm, err
		}
		cfg := sim.DefaultConfig(w, ibs.PeriodForRate(opts.BasePeriod, ibs.Rate4x), opts.Refs)
		cfg.TMP.Gating = opts.Gating
		cfg.Faults = opts.faultPlane()
		if filtered {
			cfg.Usage = usage
		}
		r, err := sim.New(cfg, w)
		if err != nil {
			return arm, err
		}
		out, err := r.Run(sim.Hooks{})
		if err != nil {
			return arm, err
		}
		arm.ptes = r.Profiler.Abit.Stats().PTEsVisited
		arm.abitNS = out.AbitOverheadNS
		arm.profiledPIDs = len(r.Profiler.Profiled())
		arm.totalPIDs = len(r.Workload.Processes())
		arm.busyPages = busyPages(out)
		return arm, nil
	}

	arms, err := runCells(opts, "colocation", []runner.Job[colocationArm]{
		{Name: "colocation/filtered", Run: func() (colocationArm, error) {
			arm, err := run(true)
			if err != nil {
				return arm, fmt.Errorf("experiments: colocation filtered arm: %w", err)
			}
			return arm, nil
		}},
		{Name: "colocation/unfiltered", Run: func() (colocationArm, error) {
			arm, err := run(false)
			if err != nil {
				return arm, fmt.Errorf("experiments: colocation unfiltered arm: %w", err)
			}
			return arm, nil
		}},
	})
	if err != nil {
		return res, err
	}
	f, u := arms[0], arms[1]
	res.FilteredPTEs = f.ptes
	res.FilteredAbitNS = f.abitNS
	res.ProfiledPIDs = f.profiledPIDs
	res.TotalPIDs = f.totalPIDs
	res.FilteredBusyPages = f.busyPages
	res.UnfilteredPTEs = u.ptes
	res.UnfilteredAbitNS = u.abitNS
	res.UnfilteredBusyPages = u.busyPages
	return res, nil
}

// core0UsageFunc is the daemon's usage callback type (alias to avoid
// importing core here just for the signature).
type core0UsageFunc = func(pid int) (float64, float64)

// RenderColocation draws the study.
func RenderColocation(res ColocationResult) string {
	t := report.NewTable(
		fmt.Sprintf("Process-filter study: data-caching + %d idle 4 MiB heaps", res.IdlerCount),
		"arm", "profiled_pids", "abit_ptes_walked", "abit_overhead_us", "busy_pages_seen")
	t.AddRow("filtered", fmt.Sprintf("%d/%d", res.ProfiledPIDs, res.TotalPIDs),
		res.FilteredPTEs, res.FilteredAbitNS/1000, res.FilteredBusyPages)
	t.AddRow("unfiltered", fmt.Sprintf("%d/%d", res.TotalPIDs, res.TotalPIDs),
		res.UnfilteredPTEs, res.UnfilteredAbitNS/1000, res.UnfilteredBusyPages)
	savings := 0.0
	if res.UnfilteredPTEs > 0 {
		savings = (1 - float64(res.FilteredPTEs)/float64(res.UnfilteredPTEs)) * 100
	}
	return t.Render() + fmt.Sprintf("\nFilter cuts A-bit walk work by %.0f%% while detection on the busy service is preserved.\n", savings)
}
