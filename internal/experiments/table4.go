package experiments

import (
	"fmt"
	"strings"

	"tieredmem/internal/report"
)

// Table4Cell is one workload x rate measurement of Table IV: the
// count of pages captured by each profiling method over a run, plus
// the overlap.
type Table4Cell struct {
	Abit int // leaf PTEs observed with A set (a huge leaf counts once)
	IBS  int // distinct 4 KiB pages sampled
	Both int
}

// Table4Row is one workload's three-rate sweep.
type Table4Row struct {
	Workload string
	ByRate   map[int]Table4Cell // keyed by rate multiplier (1, 4, 8)
}

// Table4Result bundles the rows with the §VI-A rate-gain aggregates.
type Table4Result struct {
	Rows []Table4Row
	// Gain4x is the aggregate IBS page-detection gain of the 4x rate
	// over the default (the paper reports 2.58x).
	Gain4x float64
	// Gain8x is the aggregate gain of 8x over 4x (the paper reports
	// under 1.4x).
	Gain8x float64
}

// Table4 reproduces Table IV: pages captured by A-bit and IBS
// profiling at the default, 4x, and 8x sampling rates. All
// len(workloads) x 3 profiling cells run on the runner pool first;
// the assembly below then reads the warmed suite cache in
// presentation order, so the rendered table is byte-identical to the
// sequential path.
func Table4(s *Suite) (Table4Result, error) {
	var res Table4Result
	if err := s.Warm("table4", s.Opts.workloads(), Rates); err != nil {
		return res, err
	}
	var ibsTotal [3]int
	for _, name := range s.Opts.workloads() {
		row := Table4Row{Workload: name, ByRate: make(map[int]Table4Cell, len(Rates))}
		for i, rate := range Rates {
			cp, err := s.Capture(name, rate)
			if err != nil {
				return res, err
			}
			cell := Table4Cell{
				Abit: len(cp.AbitPages),
				IBS:  len(cp.IBSPages),
				Both: cp.Both(),
			}
			row.ByRate[rate] = cell
			ibsTotal[i] += cell.IBS
		}
		res.Rows = append(res.Rows, row)
	}
	if ibsTotal[0] > 0 {
		res.Gain4x = float64(ibsTotal[1]) / float64(ibsTotal[0])
	}
	if ibsTotal[1] > 0 {
		res.Gain8x = float64(ibsTotal[2]) / float64(ibsTotal[1])
	}
	return res, nil
}

// RenderTable4 draws the table in the paper's layout.
func RenderTable4(res Table4Result) string {
	t := report.NewTable(
		"Table IV: Count of pages captured by A-bit and IBS profiling per sampling rate",
		"workload",
		"abit(def)", "ibs(def)", "both(def)",
		"abit(4x)", "ibs(4x)", "both(4x)",
		"abit(8x)", "ibs(8x)", "both(8x)")
	for _, row := range res.Rows {
		d, f, e := row.ByRate[1], row.ByRate[4], row.ByRate[8]
		t.AddRow(row.Workload,
			d.Abit, d.IBS, d.Both,
			f.Abit, f.IBS, f.Both,
			e.Abit, e.IBS, e.Both)
	}
	var b strings.Builder
	b.WriteString(t.Render())
	fmt.Fprintf(&b, "\nAggregate IBS detection gain: 4x/default = %.2fx (paper: 2.58x), 8x/4x = %.2fx (paper: <1.4x)\n",
		res.Gain4x, res.Gain8x)
	return b.String()
}
