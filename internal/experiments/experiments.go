// Package experiments implements the paper's evaluation: one function
// per table and figure (Fig. 2, Table IV, Fig. 3, Fig. 4, Fig. 5,
// Fig. 6, the §VI-B overhead study, and the §VI-C end-to-end
// speedups), each returning structured results plus renderers that
// print the same rows and series the paper reports. cmd/tmpbench and
// the root bench_test.go drive these.
package experiments

import (
	"fmt"
	"sync"

	"tieredmem/internal/core"
	"tieredmem/internal/fault"
	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/order"
	"tieredmem/internal/pmu"
	"tieredmem/internal/runner"
	"tieredmem/internal/sim"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// Options scopes an experiment run.
type Options struct {
	// Seed drives every workload generator.
	Seed int64
	// ScaleShift shrinks workload footprints (see workload.Config).
	ScaleShift int
	// Refs is the per-workload reference count.
	Refs int
	// BasePeriod is the op period of the paper's "default" IBS
	// sampling rate, scaled for laptop-size streams; 4x rate divides
	// it by 4, 8x by 8. (The paper's hardware default is 262144.)
	BasePeriod int
	// Gating enables HWPC-driven profiler on/off control.
	Gating bool
	// Workloads selects Table III names; nil means all eight.
	Workloads []string
	// Parallel bounds how many of an experiment's independent
	// (workload, profiler, config) cells run concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 restores the historical sequential
	// path. Every cell is a pure function of its seed+config and rows
	// are reassembled in submission order, so rendered output is
	// byte-identical at any setting (see TestParallelEqualsSequential).
	Parallel int
	// NowNS is an optional monotonic clock for runner stats. The
	// simulator's time is virtual cycles and internal/ code must not
	// read the wall clock (tmplint wallclock), so mains inject one.
	NowNS func() int64
	// OnRunnerStats, when set, receives each experiment's worker-pool
	// stats (per-job wall time, queue delay, pool speedup) after its
	// cells complete.
	OnRunnerStats func(experiment string, s runner.Stats)
	// Trace attaches a private telemetry tracer to every profiling run.
	// Telemetry is inert (results are byte-identical either way); the
	// recorded streams come back via Capture.Telemetry / Suite.Traces.
	Trace bool
	// Faults is the suite-wide fault-injection spec (tmpbench
	// -faults); the zero value injects nothing. Every cell derives a
	// private plane from (Faults, Seed), so cells stay pure functions
	// of their config and parallel == sequential still holds under
	// injection.
	Faults fault.Spec
	// Shards, when > 0, routes the heavy experiment families (speedup,
	// overhead) through the intra-cell sharded pipeline with this
	// worker-pool width (the tmpbench -shards flag): each cell's
	// simulated machine is partitioned per core and executed on
	// runner.ShardGroup. 0 keeps the legacy single-goroutine cell.
	// Sharded cells model per-core partitioned machines, so their
	// absolute numbers differ from -shards 0 runs; output stays a pure
	// function of (seed, config) at any width (see sim.RunSharded).
	Shards int
	// HeavyRefs, when > 0, overrides Refs for the heavy experiment
	// families only (speedup, overhead): tmpbench raises those toward
	// the 100M-ref regime by default while -quick — and every test
	// that uses DefaultOptions — keeps the seed-budget Refs.
	HeavyRefs int
}

// heavyRefs is the per-workload reference count for the heavy
// experiment families.
func (o Options) heavyRefs() int {
	if o.HeavyRefs > 0 {
		return o.HeavyRefs
	}
	return o.Refs
}

// faultPlane derives one cell's private fault plane; nil (inert) when
// the spec is zero. The sim layer attaches telemetry counters when the
// cell is traced.
func (o Options) faultPlane() *fault.Plane {
	if o.Faults.Zero() {
		return nil
	}
	return fault.New(o.Faults, o.Seed)
}

// DefaultOptions returns the laptop-scale defaults used by tests and
// cmd/tmpbench.
func DefaultOptions() Options {
	return Options{
		Seed:       42,
		ScaleShift: 0,
		Refs:       6_000_000,
		BasePeriod: 16384,
		Gating:     true,
	}
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Names
}

func (o Options) workloadConfig() workload.Config {
	return workload.Config{Seed: o.Seed, ScaleShift: o.ScaleShift, FirstPID: 100}
}

// Rates are the sampling-rate multipliers Table IV sweeps.
var Rates = []int{ibs.Rate1x, ibs.Rate4x, ibs.Rate8x}

// RateName names a rate multiplier the way the paper does.
func RateName(rate int) string {
	switch rate {
	case 1:
		return "default"
	case 4:
		return "4x"
	case 8:
		return "8x"
	default:
		return fmt.Sprintf("%dx", rate)
	}
}

// AbitEvent is one A-bit observation (a leaf PTE seen with A set).
type AbitEvent struct {
	Now  int64
	PID  int
	VPN  mem.VPN
	PFN  mem.PFN // base frame of the leaf
	Huge bool
}

// Capture is everything one profiling run yields for the analyses.
type Capture struct {
	Workload string
	Rate     int
	Result   sim.Result

	// Detection sets. A-bit keys are leaf-granular (a huge leaf is
	// keyed by its base VPN: the compound head, as in Linux's struct
	// page accounting); IBS keys are exact 4 KiB pages.
	AbitPages map[core.PageKey]struct{}
	IBSPages  map[core.PageKey]struct{}

	// Event streams for the heatmaps.
	AbitEvents []AbitEvent
	IBSSamples []trace.Sample

	// Machine-wide PMU sums (Fig. 2).
	STLBMisses uint64
	LLCMisses  uint64

	// Physical address-space bound for heatmap axes.
	PhysBytes uint64

	// Telemetry is the run's private tracer when Options.Trace was set
	// (nil otherwise). Private per capture: parallel cells never share
	// a tracer, which is what keeps exported streams byte-identical at
	// any pool width.
	Telemetry *telemetry.Tracer
}

// Profile runs TMP over one workload at a sampling rate and captures
// detection sets, event streams, and counters.
func Profile(opts Options, name string, rate int) (*Capture, error) {
	w, err := workload.New(name, opts.workloadConfig())
	if err != nil {
		return nil, err
	}
	period := ibs.PeriodForRate(opts.BasePeriod, rate)
	cfg := sim.DefaultConfig(w, period, opts.Refs)
	cfg.TMP.Gating = opts.Gating
	if opts.Trace {
		cfg.Tracer = telemetry.New()
	}
	cfg.Faults = opts.faultPlane()
	r, err := sim.New(cfg, w)
	if err != nil {
		return nil, err
	}

	cp := &Capture{
		Workload:  name,
		Rate:      rate,
		AbitPages: make(map[core.PageKey]struct{}),
		IBSPages:  make(map[core.PageKey]struct{}),
		PhysBytes: uint64(r.Machine.Phys.TotalFrames()) << mem.PageShift,
		Telemetry: cfg.Tracer,
	}
	r.Profiler.Abit.SetLeafObserver(func(now int64, pid int, vpn mem.VPN, pfn mem.PFN, huge bool) {
		cp.AbitPages[core.PageKey{PID: pid, VPN: vpn}] = struct{}{}
		cp.AbitEvents = append(cp.AbitEvents, AbitEvent{Now: now, PID: pid, VPN: vpn, PFN: pfn, Huge: huge})
	})
	r.Profiler.SetSampleObserver(func(s trace.Sample) {
		cp.IBSPages[core.PageKey{PID: s.PID, VPN: mem.VPNOf(s.VAddr)}] = struct{}{}
		cp.IBSSamples = append(cp.IBSSamples, s)
	})

	cp.Result, err = r.Run(sim.Hooks{})
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling %s at %s: %w", name, RateName(rate), err)
	}
	for _, c := range r.Machine.Cores() {
		cp.STLBMisses += c.PMU.Raw(pmu.EvSTLBMiss)
		cp.LLCMisses += c.PMU.Raw(pmu.EvLLCMiss)
	}
	return cp, nil
}

// Both counts pages detected by both methods: IBS 4 KiB keys that
// coincide with an A-bit leaf key. For THP-backed pages only the head
// subpage can coincide, which is why the overlap collapses for the HPC
// workloads, as in the paper's Table IV.
func (c *Capture) Both() int {
	n := 0
	for k := range c.IBSPages {
		if _, ok := c.AbitPages[k]; ok {
			n++
		}
	}
	return n
}

// Suite caches captures so the several analyses that share a
// configuration (Figs. 2-6 all reuse the 4x run) profile each workload
// once. It is safe for concurrent use: parallel cell jobs that need
// the same (workload, rate) deduplicate onto one Profile call, and
// because Profile is a pure function of (Opts, name, rate) the cached
// capture is identical no matter which worker computed it.
type Suite struct {
	Opts Options

	mu       sync.Mutex
	captures map[string]*suiteEntry
}

// suiteEntry memoizes one Profile call.
type suiteEntry struct {
	once sync.Once
	cp   *Capture
	err  error
}

// NewSuite builds an empty suite.
func NewSuite(opts Options) *Suite {
	return &Suite{Opts: opts, captures: make(map[string]*suiteEntry)}
}

// Capture returns the cached capture for (workload, rate), profiling
// on first use.
func (s *Suite) Capture(name string, rate int) (*Capture, error) {
	key := fmt.Sprintf("%s@%d", name, rate)
	s.mu.Lock()
	e, ok := s.captures[key]
	if !ok {
		e = &suiteEntry{}
		s.captures[key] = e
	}
	s.mu.Unlock()
	// The profiling run happens outside the suite lock so independent
	// captures proceed in parallel; once.Do makes racing callers for
	// the same cell share one run.
	e.once.Do(func() { e.cp, e.err = Profile(s.Opts, name, rate) })
	return e.cp, e.err
}

// Captures returns every successfully profiled capture in sorted
// cache-key order — a deterministic order no matter which workers
// profiled which cells.
func (s *Suite) Captures() []*Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Capture
	for _, key := range order.SortedKeys(s.captures) {
		if e := s.captures[key]; e.cp != nil {
			out = append(out, e.cp)
		}
	}
	return out
}

// Label names a capture the way exports do.
func (c *Capture) Label() string {
	return fmt.Sprintf("%s@%s", c.Workload, RateName(c.Rate))
}

// Traces returns every cached capture's telemetry stream, labeled
// "workload@rate" in Captures order, so exports built from it are
// byte-identical at any Parallel setting.
func (s *Suite) Traces() []telemetry.Labeled {
	var out []telemetry.Labeled
	for _, cp := range s.Captures() {
		if cp.Telemetry == nil {
			continue
		}
		out = append(out, telemetry.Labeled{Label: cp.Label(), Tracer: cp.Telemetry})
	}
	return out
}

// Warm profiles every (workload, rate) cell on the worker pool, so a
// following analysis loop — which must visit captures in presentation
// order to render deterministic rows — finds them all cached. This is
// how the Suite-backed experiments (Table IV, Fig. 5, the epoch
// sweep) parallelize without reordering a single output byte.
func (s *Suite) Warm(experiment string, names []string, rates []int) error {
	jobs := make([]runner.Job[struct{}], 0, len(names)*len(rates))
	for _, name := range names {
		for _, rate := range rates {
			jobs = append(jobs, runner.Job[struct{}]{
				Name: fmt.Sprintf("%s/%s@%s", experiment, name, RateName(rate)),
				Run: func() (struct{}, error) {
					_, err := s.Capture(name, rate)
					return struct{}{}, err
				},
			})
		}
	}
	_, err := runCells(s.Opts, experiment, jobs)
	return err
}

// runCells fans an experiment's independent cell jobs out on the
// bounded worker pool and reassembles results in submission order.
func runCells[T any](opts Options, experiment string, jobs []runner.Job[T]) ([]T, error) {
	out, st, err := runner.Run(runner.Config{Workers: opts.Parallel, NowNS: opts.NowNS}, jobs)
	if opts.OnRunnerStats != nil {
		opts.OnRunnerStats(experiment, st)
	}
	return out, err
}
