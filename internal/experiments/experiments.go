// Package experiments implements the paper's evaluation: one function
// per table and figure (Fig. 2, Table IV, Fig. 3, Fig. 4, Fig. 5,
// Fig. 6, the §VI-B overhead study, and the §VI-C end-to-end
// speedups), each returning structured results plus renderers that
// print the same rows and series the paper reports. cmd/tmpbench and
// the root bench_test.go drive these.
package experiments

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/pmu"
	"tieredmem/internal/sim"
	"tieredmem/internal/trace"
	"tieredmem/internal/workload"
)

// Options scopes an experiment run.
type Options struct {
	// Seed drives every workload generator.
	Seed int64
	// ScaleShift shrinks workload footprints (see workload.Config).
	ScaleShift int
	// Refs is the per-workload reference count.
	Refs int
	// BasePeriod is the op period of the paper's "default" IBS
	// sampling rate, scaled for laptop-size streams; 4x rate divides
	// it by 4, 8x by 8. (The paper's hardware default is 262144.)
	BasePeriod int
	// Gating enables HWPC-driven profiler on/off control.
	Gating bool
	// Workloads selects Table III names; nil means all eight.
	Workloads []string
}

// DefaultOptions returns the laptop-scale defaults used by tests and
// cmd/tmpbench.
func DefaultOptions() Options {
	return Options{
		Seed:       42,
		ScaleShift: 0,
		Refs:       6_000_000,
		BasePeriod: 16384,
		Gating:     true,
	}
}

func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workload.Names
}

func (o Options) workloadConfig() workload.Config {
	return workload.Config{Seed: o.Seed, ScaleShift: o.ScaleShift, FirstPID: 100}
}

// Rates are the sampling-rate multipliers Table IV sweeps.
var Rates = []int{ibs.Rate1x, ibs.Rate4x, ibs.Rate8x}

// RateName names a rate multiplier the way the paper does.
func RateName(rate int) string {
	switch rate {
	case 1:
		return "default"
	case 4:
		return "4x"
	case 8:
		return "8x"
	default:
		return fmt.Sprintf("%dx", rate)
	}
}

// AbitEvent is one A-bit observation (a leaf PTE seen with A set).
type AbitEvent struct {
	Now  int64
	PID  int
	VPN  mem.VPN
	PFN  mem.PFN // base frame of the leaf
	Huge bool
}

// Capture is everything one profiling run yields for the analyses.
type Capture struct {
	Workload string
	Rate     int
	Result   sim.Result

	// Detection sets. A-bit keys are leaf-granular (a huge leaf is
	// keyed by its base VPN: the compound head, as in Linux's struct
	// page accounting); IBS keys are exact 4 KiB pages.
	AbitPages map[core.PageKey]struct{}
	IBSPages  map[core.PageKey]struct{}

	// Event streams for the heatmaps.
	AbitEvents []AbitEvent
	IBSSamples []trace.Sample

	// Machine-wide PMU sums (Fig. 2).
	STLBMisses uint64
	LLCMisses  uint64

	// Physical address-space bound for heatmap axes.
	PhysBytes uint64
}

// Profile runs TMP over one workload at a sampling rate and captures
// detection sets, event streams, and counters.
func Profile(opts Options, name string, rate int) (*Capture, error) {
	w, err := workload.New(name, opts.workloadConfig())
	if err != nil {
		return nil, err
	}
	period := ibs.PeriodForRate(opts.BasePeriod, rate)
	cfg := sim.DefaultConfig(w, period, opts.Refs)
	cfg.TMP.Gating = opts.Gating
	r, err := sim.New(cfg, w)
	if err != nil {
		return nil, err
	}

	cp := &Capture{
		Workload:  name,
		Rate:      rate,
		AbitPages: make(map[core.PageKey]struct{}),
		IBSPages:  make(map[core.PageKey]struct{}),
		PhysBytes: uint64(r.Machine.Phys.TotalFrames()) << mem.PageShift,
	}
	r.Profiler.Abit.SetLeafObserver(func(now int64, pid int, vpn mem.VPN, pfn mem.PFN, huge bool) {
		cp.AbitPages[core.PageKey{PID: pid, VPN: vpn}] = struct{}{}
		cp.AbitEvents = append(cp.AbitEvents, AbitEvent{Now: now, PID: pid, VPN: vpn, PFN: pfn, Huge: huge})
	})
	r.Profiler.SetSampleObserver(func(s trace.Sample) {
		cp.IBSPages[core.PageKey{PID: s.PID, VPN: mem.VPNOf(s.VAddr)}] = struct{}{}
		cp.IBSSamples = append(cp.IBSSamples, s)
	})

	cp.Result, err = r.Run(sim.Hooks{})
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling %s at %s: %w", name, RateName(rate), err)
	}
	for _, c := range r.Machine.Cores() {
		cp.STLBMisses += c.PMU.Raw(pmu.EvSTLBMiss)
		cp.LLCMisses += c.PMU.Raw(pmu.EvLLCMiss)
	}
	return cp, nil
}

// Both counts pages detected by both methods: IBS 4 KiB keys that
// coincide with an A-bit leaf key. For THP-backed pages only the head
// subpage can coincide, which is why the overlap collapses for the HPC
// workloads, as in the paper's Table IV.
func (c *Capture) Both() int {
	n := 0
	for k := range c.IBSPages {
		if _, ok := c.AbitPages[k]; ok {
			n++
		}
	}
	return n
}

// Suite caches captures so the several analyses that share a
// configuration (Figs. 2-6 all reuse the 4x run) profile each workload
// once.
type Suite struct {
	Opts     Options
	captures map[string]*Capture
}

// NewSuite builds an empty suite.
func NewSuite(opts Options) *Suite {
	return &Suite{Opts: opts, captures: make(map[string]*Capture)}
}

// Capture returns the cached capture for (workload, rate), profiling
// on first use.
func (s *Suite) Capture(name string, rate int) (*Capture, error) {
	key := fmt.Sprintf("%s@%d", name, rate)
	if c, ok := s.captures[key]; ok {
		return c, nil
	}
	c, err := Profile(s.Opts, name, rate)
	if err != nil {
		return nil, err
	}
	s.captures[key] = c
	return c, nil
}
