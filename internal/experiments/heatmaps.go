package experiments

import (
	"fmt"
	"strings"

	"tieredmem/internal/ibs"
	"tieredmem/internal/mem"
	"tieredmem/internal/stats"
)

// HeatmapBins sizes the Fig. 3 / Fig. 4 grids: time bins across the
// run, physical-address bins up the page.
const (
	HeatmapTimeBins = 64
	HeatmapAddrBins = 32
)

// WorkloadHeatmap is one workload's rendered heatmap.
type WorkloadHeatmap struct {
	Workload string
	Grid     *stats.Heatmap
}

// Fig3 builds the IBS-sample heatmaps (time x physical address, 4x
// rate) — each temperature point is the number of trace samples that
// hit the page-frame bin in the interval.
func Fig3(s *Suite) ([]WorkloadHeatmap, error) {
	var out []WorkloadHeatmap
	for _, name := range s.Opts.workloads() {
		cp, err := s.Capture(name, ibs.Rate4x)
		if err != nil {
			return nil, err
		}
		h := stats.NewHeatmap(HeatmapTimeBins, HeatmapAddrBins,
			0, maxI64(cp.Result.DurationNS, 1), 0, cp.PhysBytes)
		for i := range cp.IBSSamples {
			smp := &cp.IBSSamples[i]
			h.Add(smp.Now, smp.PAddr, 1)
		}
		out = append(out, WorkloadHeatmap{Workload: name, Grid: h})
	}
	return out, nil
}

// Fig4 builds the A-bit heatmaps: each scan observation adds weight at
// the scan time over the leaf's physical span (a huge leaf spreads its
// single observation across its 2 MiB, which is all the A bit can
// say).
func Fig4(s *Suite) ([]WorkloadHeatmap, error) {
	var out []WorkloadHeatmap
	for _, name := range s.Opts.workloads() {
		cp, err := s.Capture(name, ibs.Rate4x)
		if err != nil {
			return nil, err
		}
		h := stats.NewHeatmap(HeatmapTimeBins, HeatmapAddrBins,
			0, maxI64(cp.Result.DurationNS, 1), 0, cp.PhysBytes)
		addrBin := cp.PhysBytes / HeatmapAddrBins
		if addrBin == 0 {
			addrBin = 1
		}
		for i := range cp.AbitEvents {
			ev := &cp.AbitEvents[i]
			span := uint64(mem.PageSize)
			if ev.Huge {
				span = uint64(mem.HugePages) * mem.PageSize
			}
			base := ev.PFN.PAddrOf()
			// One observation spread over the leaf's span: weight 1
			// per address bin the leaf crosses.
			for off := uint64(0); off < span; off += addrBin {
				h.Add(ev.Now, base+off, 1)
				if span <= addrBin {
					break
				}
			}
		}
		out = append(out, WorkloadHeatmap{Workload: name, Grid: h})
	}
	return out, nil
}

// RenderHeatmaps draws a set of heatmaps with captions.
func RenderHeatmaps(title string, maps []WorkloadHeatmap) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for _, m := range maps {
		fmt.Fprintf(&b, "\n[%s]  (x: time ->, y: physical address ^, max cell=%d, cells=%d)\n",
			m.Workload, m.Grid.Max(), m.Grid.Nonzero())
		b.WriteString(m.Grid.Render())
	}
	return b.String()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
