package pmu

import "testing"

func TestTrackAndCount(t *testing.T) {
	p := New(4, 1000)
	p.Track(EvLLCMiss)
	p.Add(EvLLCMiss, 5)
	p.Add(EvLLCMiss, 3)
	got, frac := p.Count(EvLLCMiss)
	if got != 8 || frac != 1 {
		t.Errorf("Count = (%d, %v), want (8, 1)", got, frac)
	}
	if p.Raw(EvLLCMiss) != 8 {
		t.Errorf("Raw = %d, want 8", p.Raw(EvLLCMiss))
	}
}

func TestUntrackedEventIgnored(t *testing.T) {
	p := New(4, 1000)
	p.Add(EvL1Miss, 100)
	if got, _ := p.Count(EvL1Miss); got != 0 {
		t.Errorf("untracked event counted: %d", got)
	}
}

func TestTrackIdempotent(t *testing.T) {
	p := New(4, 1000)
	p.Track(EvLLCMiss)
	p.Track(EvLLCMiss)
	if len(p.Tracked()) != 1 {
		t.Errorf("Tracked = %v, want one entry", p.Tracked())
	}
}

func TestNotMultiplexedWithinRegisterBudget(t *testing.T) {
	p := New(4, 1000)
	for _, e := range []Event{EvLLCMiss, EvDTLBMiss, EvRetiredLoads, EvRetiredStores} {
		p.Track(e)
	}
	if p.Multiplexed() {
		t.Errorf("4 events on 4 registers reported multiplexed")
	}
}

func TestMultiplexingLosesAndScales(t *testing.T) {
	p := New(2, 100) // 2 registers, rotate every 100ns
	events := []Event{EvLLCMiss, EvDTLBMiss, EvRetiredLoads, EvRetiredStores}
	for _, e := range events {
		p.Track(e)
	}
	if !p.Multiplexed() {
		t.Fatalf("4 events on 2 registers not multiplexed")
	}
	// Drive time forward, adding one increment per event per tick.
	now := int64(0)
	for i := 0; i < 1000; i++ {
		now += 100
		for _, e := range events {
			p.Add(e, 1)
		}
		p.Tick(now)
	}
	for _, e := range events {
		raw := p.Raw(e)
		if raw >= 1000 {
			t.Errorf("%v raw = %d; multiplexing should lose increments", e, raw)
		}
		scaled, frac := p.Count(e)
		if frac <= 0 || frac >= 1 {
			t.Errorf("%v enabled fraction = %v, want in (0,1)", e, frac)
		}
		// The perf-style estimate must be in the right ballpark
		// (within 2x of the true 1000).
		if scaled < 500 || scaled > 2000 {
			t.Errorf("%v scaled estimate = %d, want ~1000", e, scaled)
		}
	}
}

func TestTickMonotonic(t *testing.T) {
	p := New(1, 100)
	p.Track(EvLLCMiss)
	p.Tick(100)
	p.Tick(50) // time going backwards must be a no-op, not a panic
	p.Tick(200)
}

func TestEventString(t *testing.T) {
	if EvLLCMiss.String() != "llc-miss" || EvRetiredOps.String() != "retired-ops" {
		t.Errorf("event names wrong: %v %v", EvLLCMiss, EvRetiredOps)
	}
	if Event(99).String() != "event(99)" {
		t.Errorf("unknown event name: %v", Event(99))
	}
}

func TestZeroRegistersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New(0, ...) did not panic")
		}
	}()
	New(0, 100)
}
