// Package pmu models a performance monitoring unit: a fixed number of
// programmable counter registers, a larger event taxonomy, and
// perf-style time-division multiplexing when more events are requested
// than registers exist. Multiplexed counts are scaled by enabled-time,
// reproducing the verbosity loss the paper lists as the HWPC
// disadvantage in Table I.
package pmu

import (
	"fmt"
	"sort"
)

// Event identifies a countable hardware event.
type Event int

// The event taxonomy used by the simulator. Real PMUs expose hundreds
// of events; these are the ones the paper's TMP consumes.
const (
	EvRetiredLoads Event = iota
	EvRetiredStores
	EvL1Miss
	EvL2Miss
	EvLLCMiss
	EvDTLBMiss
	EvSTLBMiss // misses past the last TLB level (page walks)
	EvPageWalkCycles
	EvRetiredOps
	numEvents
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EvRetiredLoads:
		return "retired-loads"
	case EvRetiredStores:
		return "retired-stores"
	case EvL1Miss:
		return "l1-miss"
	case EvL2Miss:
		return "l2-miss"
	case EvLLCMiss:
		return "llc-miss"
	case EvDTLBMiss:
		return "dtlb-miss"
	case EvSTLBMiss:
		return "stlb-miss"
	case EvPageWalkCycles:
		return "pagewalk-cycles"
	case EvRetiredOps:
		return "retired-ops"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// NumEvents is the size of the event taxonomy.
const NumEvents = int(numEvents)

// slot is one tracked event's bookkeeping.
type slot struct {
	event     Event
	raw       uint64 // increments observed while resident on a register
	enabled   int64  // virtual ns the event held a register
	requested int64  // virtual ns since the event was programmed
}

// PMU is one core's monitoring unit.
type PMU struct {
	registers int
	slots     []slot
	index     [numEvents]int // event -> slot position, -1 if untracked
	rrStart   int            // round-robin rotation cursor
	lastRot   int64          // virtual time of last rotation
	quantum   int64          // rotation quantum in virtual ns
}

// New builds a PMU with the given number of counter registers (a
// Zen-2-class core has 6) and a multiplexing quantum in virtual ns
// (perf uses ~1 ms by default).
func New(registers int, quantum int64) *PMU {
	if registers <= 0 {
		panic("pmu: register count must be positive")
	}
	if quantum <= 0 {
		quantum = 1_000_000
	}
	p := &PMU{registers: registers, quantum: quantum}
	for i := range p.index {
		p.index[i] = -1
	}
	return p
}

// Registers returns the number of physical counter registers.
func (p *PMU) Registers() int { return p.registers }

// Track programs an event; tracking more events than registers engages
// multiplexing. Tracking an already-tracked event is a no-op.
func (p *PMU) Track(e Event) {
	if p.index[e] >= 0 {
		return
	}
	p.index[e] = len(p.slots)
	p.slots = append(p.slots, slot{event: e})
}

// Multiplexed reports whether more events are programmed than
// registers exist.
func (p *PMU) Multiplexed() bool { return len(p.slots) > p.registers }

// resident reports whether the slot currently holds a register under
// the round-robin rotation.
func (p *PMU) resident(slotIdx int) bool {
	n := len(p.slots)
	if n <= p.registers {
		return true
	}
	off := (slotIdx - p.rrStart + n) % n
	return off < p.registers
}

// Tick advances multiplexing bookkeeping to virtual time now and
// rotates the register assignment when the quantum has elapsed.
func (p *PMU) Tick(now int64) {
	if len(p.slots) == 0 {
		p.lastRot = now
		return
	}
	elapsed := now - p.lastRot
	if elapsed <= 0 {
		return
	}
	for i := range p.slots {
		p.slots[i].requested += elapsed
		if p.resident(i) {
			p.slots[i].enabled += elapsed
		}
	}
	p.lastRot = now
	if p.Multiplexed() && elapsed >= 0 {
		// Rotate once per quantum boundary crossing.
		p.rrStart = (p.rrStart + 1) % len(p.slots)
	}
}

// Add records increments for an event; lost when the event is not
// resident on a register (that is the multiplexing cost).
func (p *PMU) Add(e Event, n uint64) {
	idx := p.index[e]
	if idx < 0 {
		return
	}
	if p.resident(idx) {
		p.slots[idx].raw += n
	}
}

// Count returns the perf-style scaled estimate for an event:
// raw * requested/enabled. The second result is the fraction of time
// the event actually held a register (1.0 when not multiplexed).
func (p *PMU) Count(e Event) (uint64, float64) {
	idx := p.index[e]
	if idx < 0 {
		return 0, 0
	}
	s := p.slots[idx]
	if s.enabled == 0 {
		if s.requested == 0 {
			return s.raw, 1
		}
		return 0, 0
	}
	frac := float64(s.enabled) / float64(s.requested)
	scaled := uint64(float64(s.raw) / frac)
	return scaled, frac
}

// Raw returns the unscaled register value for an event.
func (p *PMU) Raw(e Event) uint64 {
	idx := p.index[e]
	if idx < 0 {
		return 0
	}
	return p.slots[idx].raw
}

// Tracked returns the programmed events in a stable order.
func (p *PMU) Tracked() []Event {
	out := make([]Event, 0, len(p.slots))
	for _, s := range p.slots {
		out = append(out, s.event)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
