package trace_test

import (
	"bytes"
	"fmt"

	"tieredmem/internal/trace"
)

// ExampleWriter demonstrates the binary trace pipeline: capture
// samples once, replay them through any analysis later.
func ExampleWriter() {
	var buf bytes.Buffer
	w, _ := trace.NewWriter(&buf)
	w.Write(trace.Sample{Now: 100, PID: 7, VAddr: 0x1000, Source: trace.SrcTier2})
	w.Write(trace.Sample{Now: 200, PID: 7, VAddr: 0x2000, Source: trace.SrcTier1})
	w.Flush()

	r, _ := trace.NewReader(bytes.NewReader(buf.Bytes()))
	samples, _ := r.ReadAll()
	for _, s := range samples {
		fmt.Printf("t=%d pid=%d vaddr=%#x src=%v\n", s.Now, s.PID, s.VAddr, s.Source)
	}
	// Output:
	// t=100 pid=7 vaddr=0x1000 src=tier2
	// t=200 pid=7 vaddr=0x2000 src=tier1
}

// ExampleRing shows the threshold-interrupt semantics the sampling
// hardware uses.
func ExampleRing() {
	var drained int
	r := trace.NewRing(8, 3, func(ring *trace.Ring) {
		drained += len(ring.Drain(nil))
	})
	for i := 0; i < 7; i++ {
		r.Push(trace.Sample{Now: int64(i)})
	}
	fmt.Printf("drained=%d pending=%d\n", drained, r.Len())
	// Output: drained=6 pending=1
}
