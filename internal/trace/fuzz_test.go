package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReaderRobustness feeds arbitrary bytes to the trace reader: it
// must never panic, only return errors or valid samples.
func FuzzReaderRobustness(f *testing.F) {
	// Seed with a valid single-sample stream and a few corruptions.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	w.Write(Sample{Now: 1, PID: 2, VAddr: 3, PAddr: 4, Kind: Store, Source: SrcTier2})
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x50, 0x4d, 0x54}) // magic only, wrong order
	f.Add(append(append([]byte{}, valid...), 0xff, 0xfe))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
	})
}

// FuzzRoundtrip checks encode/decode is the identity for arbitrary
// sample field values.
func FuzzRoundtrip(f *testing.F) {
	f.Add(int64(0), 0, 0, uint64(0), uint64(0), uint64(0), uint8(0), uint8(0), false, int64(0))
	f.Add(int64(-5), 63, 1<<14, ^uint64(0), uint64(1)<<47, uint64(123), uint8(2), uint8(4), true, int64(1)<<40)
	f.Fuzz(func(t *testing.T, now int64, cpuID, pid int, ip, vaddr, paddr uint64,
		kind, source uint8, tlbMiss bool, latency int64) {
		in := Sample{
			Now:     now,
			CPU:     int(int32(cpuID)),
			PID:     int(int32(pid)),
			IP:      ip,
			VAddr:   vaddr,
			PAddr:   paddr,
			Kind:    Kind(kind),
			Source:  DataSource(source),
			TLBMiss: tlbMiss,
			Latency: latency,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if out != in {
			t.Fatalf("roundtrip mismatch:\n in %+v\nout %+v", in, out)
		}
	})
}
