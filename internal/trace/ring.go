package trace

// Ring is a fixed-capacity ring buffer of Samples modeling the
// in-memory sample area that IBS/PEBS/LWP hardware fills. When the
// occupancy crosses a configurable threshold the ring invokes an
// "interrupt" callback, mirroring LWP's threshold interrupt and the
// PEBS buffer-overflow PMI. If the producer outruns the consumer the
// oldest samples are dropped and counted, exactly like a real sampling
// buffer overrun.
type Ring struct {
	buf       []Sample
	head      int // next write position
	size      int // live entries
	threshold int
	onIRQ     func(*Ring)
	dropped   uint64
	pushed    uint64
}

// NewRing returns a ring with the given capacity. threshold is the
// occupancy at which onIRQ fires (0 disables the interrupt); onIRQ may
// be nil.
func NewRing(capacity, threshold int, onIRQ func(*Ring)) *Ring {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &Ring{
		buf:       make([]Sample, capacity),
		threshold: threshold,
		onIRQ:     onIRQ,
	}
}

// Push appends a sample, dropping the oldest entry if the ring is
// full, and fires the interrupt callback when the threshold is
// reached.
func (r *Ring) Push(s Sample) {
	if r.size == len(r.buf) {
		// Overwrite the oldest entry.
		r.dropped++
		r.size--
	}
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
	r.size++
	r.pushed++
	if r.onIRQ != nil && r.threshold > 0 && r.size >= r.threshold {
		r.onIRQ(r)
	}
}

// Drain removes and returns all buffered samples in arrival order,
// appending to dst to let callers reuse storage.
func (r *Ring) Drain(dst []Sample) []Sample {
	start := r.head - r.size
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.size; i++ {
		dst = append(dst, r.buf[(start+i)%len(r.buf)])
	}
	r.size = 0
	return dst
}

// Len returns the number of buffered samples.
func (r *Ring) Len() int { return r.size }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Dropped returns the number of samples lost to overruns.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Pushed returns the total number of samples ever pushed.
func (r *Ring) Pushed() uint64 { return r.pushed }
