package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"tieredmem/internal/order"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Load:         "load",
		Store:        "store",
		PrefetchFill: "prefetch",
		Kind(9):      "kind(9)",
	}
	for _, k := range order.SortedKeys(cases) {
		if got := k.String(); got != cases[k] {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, cases[k])
		}
	}
}

func TestDataSourceString(t *testing.T) {
	cases := map[DataSource]string{
		SrcL1:          "l1",
		SrcL2:          "l2",
		SrcLLC:         "llc",
		SrcTier1:       "tier1",
		SrcTier2:       "tier2",
		DataSource(99): "src(99)",
	}
	for _, s := range order.SortedKeys(cases) {
		if got := s.String(); got != cases[s] {
			t.Errorf("DataSource(%d).String() = %q, want %q", s, got, cases[s])
		}
	}
}

func TestDataSourceIsMemory(t *testing.T) {
	for _, s := range []DataSource{SrcL1, SrcL2, SrcLLC} {
		if s.IsMemory() {
			t.Errorf("%v.IsMemory() = true, want false", s)
		}
	}
	for _, s := range []DataSource{SrcTier1, SrcTier2} {
		if !s.IsMemory() {
			t.Errorf("%v.IsMemory() = false, want true", s)
		}
	}
}

func TestSampleFromOutcome(t *testing.T) {
	o := &Outcome{
		Ref:     Ref{PID: 7, IP: 0x400100, VAddr: 0xdeadbeef, Kind: Store},
		PAddr:   0x1234000,
		Now:     42,
		CPU:     3,
		Source:  SrcTier2,
		TLBMiss: true,
		Latency: 350,
	}
	s := SampleFromOutcome(o)
	if s.PID != 7 || s.IP != 0x400100 || s.VAddr != 0xdeadbeef || s.Kind != Store {
		t.Errorf("ref fields not copied: %+v", s)
	}
	if s.PAddr != 0x1234000 || s.Now != 42 || s.CPU != 3 || s.Source != SrcTier2 || !s.TLBMiss || s.Latency != 350 {
		t.Errorf("outcome fields not copied: %+v", s)
	}
}

func TestRingPushDrain(t *testing.T) {
	r := NewRing(8, 0, nil)
	for i := 0; i < 5; i++ {
		r.Push(Sample{Now: int64(i)})
	}
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	out := r.Drain(nil)
	if len(out) != 5 {
		t.Fatalf("drained %d, want 5", len(out))
	}
	for i, s := range out {
		if s.Now != int64(i) {
			t.Errorf("out[%d].Now = %d, want %d (arrival order)", i, s.Now, i)
		}
	}
	if r.Len() != 0 {
		t.Errorf("Len after drain = %d, want 0", r.Len())
	}
}

func TestRingOverrunDropsOldest(t *testing.T) {
	r := NewRing(4, 0, nil)
	for i := 0; i < 6; i++ {
		r.Push(Sample{Now: int64(i)})
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	out := r.Drain(nil)
	if len(out) != 4 {
		t.Fatalf("drained %d, want 4", len(out))
	}
	if out[0].Now != 2 || out[3].Now != 5 {
		t.Errorf("kept wrong window: first=%d last=%d, want 2 and 5", out[0].Now, out[3].Now)
	}
}

func TestRingThresholdInterrupt(t *testing.T) {
	fired := 0
	var r *Ring
	r = NewRing(16, 4, func(got *Ring) {
		fired++
		if got != r {
			t.Errorf("IRQ delivered wrong ring")
		}
		got.Drain(nil)
	})
	for i := 0; i < 12; i++ {
		r.Push(Sample{})
	}
	if fired != 3 {
		t.Errorf("IRQ fired %d times, want 3 (every 4 pushes)", fired)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0 with a draining IRQ", r.Dropped())
	}
}

func TestRingZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewRing(0, ...) did not panic")
		}
	}()
	NewRing(0, 0, nil)
}

func TestRingWraparoundOrder(t *testing.T) {
	// Property: after arbitrary push/drain interleavings, Drain
	// returns samples in arrival order and never invents samples.
	f := func(ops []uint8) bool {
		r := NewRing(8, 0, nil)
		next := int64(0)
		expect := []int64{}
		for _, op := range ops {
			if op%3 == 0 && len(expect) > 0 {
				out := r.Drain(nil)
				for i, s := range out {
					if s.Now != expect[i] {
						return false
					}
				}
				expect = expect[:0]
				continue
			}
			r.Push(Sample{Now: next})
			expect = append(expect, next)
			next++
			if len(expect) > 8 {
				expect = expect[len(expect)-8:]
			}
		}
		out := r.Drain(nil)
		if len(out) != len(expect) {
			return false
		}
		for i, s := range out {
			if s.Now != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	var want []Sample
	for i := 0; i < 100; i++ {
		s := Sample{
			Now:     rng.Int63(),
			CPU:     rng.Intn(64),
			PID:     rng.Intn(1 << 15),
			IP:      rng.Uint64(),
			VAddr:   rng.Uint64(),
			PAddr:   rng.Uint64(),
			Kind:    Kind(rng.Intn(3)),
			Source:  DataSource(rng.Intn(5)),
			TLBMiss: rng.Intn(2) == 1,
			Latency: rng.Int63n(1 << 40),
		}
		if err := w.Write(s); err != nil {
			t.Fatalf("Write: %v", err)
		}
		want = append(want, s)
	}
	if w.Count() != 100 {
		t.Errorf("Count = %d, want 100", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Errorf("truncated header accepted")
	}
}

func TestDecodeTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Sample{Now: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Errorf("truncated record read err = %v, want a real error", err)
	}
}
