// Package trace defines the memory-reference record types that flow
// between the workload generators, the simulated machine, and the
// profiling mechanisms, together with binary trace encoding and ring
// buffers used by the sampling engines.
package trace

import "fmt"

// Kind classifies a memory reference.
type Kind uint8

const (
	// Load is a demand load.
	Load Kind = iota
	// Store is a demand store.
	Store
	// PrefetchFill is a fill initiated by the hardware prefetcher. It
	// is not a demand access: the paper's TMP deliberately excludes
	// prefetcher fills from profiling because serving them from fast
	// memory does not shorten the critical path.
	PrefetchFill
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case PrefetchFill:
		return "prefetch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Ref is one memory reference as produced by a workload generator. The
// address is virtual; the simulated machine translates it.
type Ref struct {
	PID   int    // owning process
	IP    uint64 // instruction pointer issuing the access
	VAddr uint64 // virtual byte address
	Kind  Kind
}

// DataSource reports where a demand access was ultimately served from.
// It mirrors the northbridge/data-source field of an IBS record.
type DataSource uint8

const (
	SrcL1 DataSource = iota
	SrcL2
	SrcLLC
	SrcTier1 // fast memory (DRAM)
	SrcTier2 // slow memory (NVM)
)

// String returns a short human-readable name for the data source.
func (s DataSource) String() string {
	switch s {
	case SrcL1:
		return "l1"
	case SrcL2:
		return "l2"
	case SrcLLC:
		return "llc"
	case SrcTier1:
		return "tier1"
	case SrcTier2:
		return "tier2"
	default:
		return fmt.Sprintf("src(%d)", uint8(s))
	}
}

// IsMemory reports whether the access was served by actual memory
// (either tier) rather than a cache level.
func (s DataSource) IsMemory() bool { return s == SrcTier1 || s == SrcTier2 }

// Outcome is the machine's view of a completed reference: everything a
// trace-based sampler (IBS/PEBS) could capture about it, plus fields
// the simulator itself needs for ground truth.
type Outcome struct {
	Ref
	PAddr    uint64     // translated physical byte address
	Now      int64      // virtual time (ns) at retirement
	CPU      int        // core that executed the access
	Source   DataSource // where the data came from
	TLBMiss  bool       // address translation missed all TLB levels
	Latency  int64      // ns charged to this access
	PageWalk bool       // a page-table walk was performed
	// PrefetchHit marks a demand access served by a line the
	// prefetcher staged; TMP discounts these (§III-A).
	PrefetchHit bool
	// DirtySet marks a store whose page walk transitioned the PTE
	// D bit from 0 to 1 — the event Intel's Page-Modification
	// Logging records (§II-B).
	DirtySet bool
}

// Sample is the record an IBS/PEBS-style engine stores for a tagged
// access: timestamp, CPU, PID, instruction pointer, virtual and
// physical data addresses, access type and cache/TLB statistics, as
// listed in the paper's §III-B1.
type Sample struct {
	Now     int64
	CPU     int
	PID     int
	IP      uint64
	VAddr   uint64
	PAddr   uint64
	Kind    Kind
	Source  DataSource
	TLBMiss bool
	Latency int64
}

// SampleFromOutcome builds the sampler-visible record for a completed
// access.
func SampleFromOutcome(o *Outcome) Sample {
	return Sample{
		Now:     o.Now,
		CPU:     o.CPU,
		PID:     o.PID,
		IP:      o.IP,
		VAddr:   o.VAddr,
		PAddr:   o.PAddr,
		Kind:    o.Kind,
		Source:  o.Source,
		TLBMiss: o.TLBMiss,
		Latency: o.Latency,
	}
}
