package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format: a fixed magic header followed by fixed-width
// little-endian sample records. The format lets profiling runs be
// captured once and replayed through the analysis pipeline (heatmaps,
// CDFs, policies) without re-simulating.

const (
	traceMagic   = uint32(0x544d5031) // "TMP1"
	sampleCoding = 8 + 4 + 4 + 8 + 8 + 8 + 1 + 1 + 1 + 8
)

// ErrBadMagic is returned when a trace stream does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic; not a TMP trace stream")

// Writer serializes samples to an io.Writer.
type Writer struct {
	w       *bufio.Writer
	scratch [sampleCoding]byte
	count   uint64
}

// NewWriter writes the stream header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], traceMagic)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one sample record.
func (tw *Writer) Write(s Sample) error {
	b := tw.scratch[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(s.Now))
	binary.LittleEndian.PutUint32(b[8:], uint32(s.CPU))
	binary.LittleEndian.PutUint32(b[12:], uint32(s.PID))
	binary.LittleEndian.PutUint64(b[16:], s.IP)
	binary.LittleEndian.PutUint64(b[24:], s.VAddr)
	binary.LittleEndian.PutUint64(b[32:], s.PAddr)
	b[40] = byte(s.Kind)
	b[41] = byte(s.Source)
	if s.TLBMiss {
		b[42] = 1
	} else {
		b[42] = 0
	}
	binary.LittleEndian.PutUint64(b[43:], uint64(s.Latency))
	if _, err := tw.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing sample: %w", err)
	}
	tw.count++
	return nil
}

// Flush pushes buffered bytes to the underlying writer.
func (tw *Writer) Flush() error { return tw.w.Flush() }

// Count returns the number of samples written so far.
func (tw *Writer) Count() uint64 { return tw.count }

// Reader deserializes samples from an io.Reader.
type Reader struct {
	r       *bufio.Reader
	scratch [sampleCoding]byte
}

// NewReader validates the stream header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[:]) != traceMagic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Read returns the next sample, or io.EOF at end of stream.
func (tr *Reader) Read() (Sample, error) {
	b := tr.scratch[:]
	if _, err := io.ReadFull(tr.r, b); err != nil {
		if err == io.EOF {
			return Sample{}, io.EOF
		}
		return Sample{}, fmt.Errorf("trace: reading sample: %w", err)
	}
	s := Sample{
		Now:     int64(binary.LittleEndian.Uint64(b[0:])),
		CPU:     int(int32(binary.LittleEndian.Uint32(b[8:]))),
		PID:     int(int32(binary.LittleEndian.Uint32(b[12:]))),
		IP:      binary.LittleEndian.Uint64(b[16:]),
		VAddr:   binary.LittleEndian.Uint64(b[24:]),
		PAddr:   binary.LittleEndian.Uint64(b[32:]),
		Kind:    Kind(b[40]),
		Source:  DataSource(b[41]),
		TLBMiss: b[42] != 0,
		Latency: int64(binary.LittleEndian.Uint64(b[43:])),
	}
	return s, nil
}

// ReadAll drains the stream into a slice.
func (tr *Reader) ReadAll() ([]Sample, error) {
	var out []Sample
	for {
		s, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}
