package telemetry

import (
	"strings"

	"tieredmem/internal/report"
)

// Attribution aggregates a run's recorded events into per-subsystem
// virtual-time rows: event counts and span-duration sums from the
// event stream, plus any "<sub>/..._ns" counters that subsystems
// maintain for costs charged outside span events. durationNS and
// cores form the core-time denominator (pass 0 cores when unknown; the
// share column then renders n/a).
func (t *Tracer) Attribution(durationNS int64, cores int) []report.AttributionRow {
	if t == nil {
		return nil
	}
	var events [numSubsystems]uint64
	var spanNS [numSubsystems]int64
	for i := range t.events {
		e := &t.events[i]
		events[e.Sub]++
		spanNS[e.Sub] += e.Dur
	}
	// Fold in explicit virtual-time counters for subsystems whose
	// costs are not span-shaped (e.g. mem has no spans at all). A
	// subsystem with span events keeps the span sum — its _ns counters
	// mirror the same charges and must not double-count.
	var counterNS [numSubsystems]int64
	for _, cv := range t.reg.Totals() {
		if !strings.HasSuffix(cv.Name, "_ns") {
			continue
		}
		sub, ok := subsystemOfCounter(cv.Name)
		if !ok {
			continue
		}
		counterNS[sub] += int64(cv.Value)
	}
	denom := float64(durationNS) * float64(cores)
	var rows []report.AttributionRow
	for s := Subsystem(0); s < numSubsystems; s++ {
		ns := spanNS[s]
		if ns == 0 {
			ns = counterNS[s]
		}
		if events[s] == 0 && ns == 0 {
			continue
		}
		share := -1.0
		if denom > 0 {
			share = float64(ns) / denom
		}
		rows = append(rows, report.AttributionRow{
			Subsystem: s.String(),
			Events:    events[s],
			VirtualNS: ns,
			Share:     share,
		})
	}
	return rows
}

// subsystemOfCounter maps a counter's "<sub>/" prefix to its
// subsystem.
func subsystemOfCounter(name string) (Subsystem, bool) {
	prefix, _, ok := strings.Cut(name, "/")
	if !ok {
		return 0, false
	}
	for s := Subsystem(0); s < numSubsystems; s++ {
		if s.String() == prefix {
			return s, true
		}
	}
	return 0, false
}
