package telemetry

import "tieredmem/internal/order"

// Counter is one monotonically increasing telemetry counter. The nil
// Counter is a valid no-op (handed out by a nil Registry), so emit
// sites cache handles once and Add unconditionally. Counter names
// follow "<subsystem>/<metric>[_ns]": the prefix is the attribution
// subsystem, and the _ns suffix marks virtual-time counters.
type Counter struct {
	name string
	v    uint64
	// lastCut is the value at the previous epoch cut; cutEpoch uses it
	// to derive per-epoch deltas.
	lastCut uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// AddNS increments a virtual-time counter, ignoring negative costs.
func (c *Counter) AddNS(ns int64) {
	if c == nil || ns <= 0 {
		return
	}
	c.v += uint64(ns)
}

// Set overwrites the counter with an absolute value; engines that
// already keep cumulative stats sync them in at emit points instead of
// double-counting.
func (c *Counter) Set(v uint64) {
	if c == nil {
		return
	}
	c.v = v
}

// Value returns the counter's cumulative value.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Registry is a set of named counters with stable, sorted iteration —
// a map walk through it can never reintroduce the nondeterminism the
// maprange analyzer exists to catch. The zero value is ready to use;
// a nil *Registry hands out nil Counters so disabled telemetry costs
// nothing.
type Registry struct {
	counters map[string]*Counter
	// hists holds the log2-bucket distribution metrics (histogram.go);
	// same naming convention, same sorted-iteration rule.
	hists map[string]*Histogram
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Names returns all registered counter names in ascending order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	return order.SortedKeys(r.counters)
}

// Sorted returns all counters in ascending name order.
func (r *Registry) Sorted() []*Counter {
	if r == nil {
		return nil
	}
	out := make([]*Counter, 0, len(r.counters))
	for _, name := range order.SortedKeys(r.counters) {
		out = append(out, r.counters[name])
	}
	return out
}

// CounterValue is one (name, value) pair in a snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}

// EpochCounters is the per-epoch counter aggregation: every counter's
// delta across one epoch, sorted by name, zero deltas omitted.
type EpochCounters struct {
	Epoch int
	Now   int64 // virtual time of the cut
	// Deltas holds each counter's increase during the epoch.
	Deltas []CounterValue
}

// cutEpoch snapshots every counter's delta since the previous cut.
func (r *Registry) cutEpoch(epoch int, now int64) EpochCounters {
	ec := EpochCounters{Epoch: epoch, Now: now}
	for _, name := range order.SortedKeys(r.counters) {
		c := r.counters[name]
		if d := c.v - c.lastCut; d != 0 {
			ec.Deltas = append(ec.Deltas, CounterValue{Name: name, Value: d})
			c.lastCut = c.v
		}
	}
	return ec
}

// Totals returns every counter's cumulative value, sorted by name,
// zeros omitted.
func (r *Registry) Totals() []CounterValue {
	if r == nil {
		return nil
	}
	out := make([]CounterValue, 0, len(r.counters))
	for _, name := range order.SortedKeys(r.counters) {
		if v := r.counters[name].v; v != 0 {
			out = append(out, CounterValue{Name: name, Value: v})
		}
	}
	return out
}
