package telemetry

import (
	"math/bits"

	"tieredmem/internal/order"
	"tieredmem/internal/report"
)

// numHistBuckets covers every uint64: bucket 0 holds the exact value
// 0, bucket b (1..64) holds values in [2^(b-1), 2^b-1].
const numHistBuckets = 65

// Histogram is a deterministic log2-bucket distribution: integer
// bucket boundaries, exact observation counts, and percentiles
// computed by an integer bucket walk — no floats anywhere, so two runs
// that observe the same value sequence render byte-identical
// distributions regardless of order. The nil Histogram is a valid
// no-op (handed out by a nil Registry), mirroring Counter.
//
// A value v lands in bucket bits.Len64(v): bucket 0 is exactly 0,
// bucket b covers [2^(b-1), 2^b-1]. A reported percentile is the
// upper bound of the bucket holding that rank (clamped to the exact
// observed maximum), so percentiles are conservative to within one
// power of two — enough to spot a pathological tail, cheap enough to
// keep on every run.
type Histogram struct {
	name    string
	buckets [numHistBuckets]uint64
	count   uint64
	max     uint64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	if v > h.max {
		h.max = v
	}
}

// ObserveN records one value n times (n = 0 is a no-op).
func (h *Histogram) ObserveN(v uint64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.buckets[bits.Len64(v)] += n
	h.count += n
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Max returns the exact largest observed value (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Bucket returns the exact observation count in bucket b.
func (h *Histogram) Bucket(b int) uint64 {
	if h == nil || b < 0 || b >= numHistBuckets {
		return 0
	}
	return h.buckets[b]
}

// bucketUpper is the largest value bucket b can hold.
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(b) - 1
}

// Percentile returns the p-th percentile (p in 1..100) as the upper
// bound of the bucket containing the ceil(count*p/100)-th smallest
// observation, clamped to the exact observed maximum. Empty
// histograms report 0.
func (h *Histogram) Percentile(p int) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if p < 1 {
		p = 1
	}
	if p > 100 {
		p = 100
	}
	// rank = ceil(count * p / 100), in pure integer arithmetic.
	rank := (h.count*uint64(p) + 99) / 100
	var seen uint64
	for b := 0; b < numHistBuckets; b++ {
		seen += h.buckets[b]
		if seen >= rank {
			if u := bucketUpper(b); u < h.max {
				return u
			}
			return h.max
		}
	}
	return h.max
}

// Histogram returns the named histogram, creating it on first use.
// Names follow the same "<subsystem>/<metric>" convention as counters.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// HistNames returns all registered histogram names in ascending order.
func (r *Registry) HistNames() []string {
	if r == nil {
		return nil
	}
	return order.SortedKeys(r.hists)
}

// Histograms returns all registered histograms in ascending name
// order.
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	out := make([]*Histogram, 0, len(r.hists))
	for _, name := range order.SortedKeys(r.hists) {
		out = append(out, r.hists[name])
	}
	return out
}

// Histogram is shorthand for Registry().Histogram(name).
func (t *Tracer) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	return t.reg.Histogram(name)
}

// Distributions renders every histogram with at least one observation
// as a report row, sorted by name. Registered-but-empty histograms are
// skipped so an inert run (handles wired, nothing observed) exports no
// distribution bytes at all.
func (t *Tracer) Distributions() []report.DistRow {
	if t == nil {
		return nil
	}
	var rows []report.DistRow
	for _, h := range t.reg.Histograms() {
		if h.Count() == 0 {
			continue
		}
		rows = append(rows, report.DistRow{
			Name:  h.Name(),
			Count: h.Count(),
			P50:   h.Percentile(50),
			P90:   h.Percentile(90),
			P99:   h.Percentile(99),
			Max:   h.Max(),
		})
	}
	return rows
}
