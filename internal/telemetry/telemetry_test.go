package telemetry

import (
	"bytes"
	"testing"
)

// TestNilTracerNoOps pins the disabled state: every method on a nil
// tracer, registry, and counter is callable and allocation-free, which
// is what lets engines wire emit sites unconditionally.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.CutEpoch(10, 1)
		tr.EmitDaemonTick(10, 5)
		tr.EmitAbitScan(10, 5, 1, 1, 0)
		tr.EmitIBSDrain(10, 5, 1, 0)
		tr.EmitGate(10, "llc_miss", true, 1, 2, 2000)
		tr.EmitMigration(10, 1, 0x1000, true)
		tr.EmitShootdown(10, 5, 1)
		tr.EmitFilter(10, 1, 1)
		c := tr.Counter("x/y")
		c.Add(1)
		c.AddNS(5)
		c.Set(9)
		_ = c.Value()
		_ = tr.Registry().Counter("z/w")
		_ = tr.Events()
		_ = tr.EpochCuts()
		h := tr.Histogram("x/y_hist")
		h.Observe(7)
		h.ObserveN(3, 4)
		_ = h.Count()
		_ = h.Max()
		_ = h.Percentile(50)
		_ = tr.Registry().Histogram("z/w_hist")
		_ = tr.Distributions()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f times per op; the disabled state must be free", allocs)
	}
}

// TestNilTracerExportsEmpty checks that exports of nil tracers still
// produce well-formed output instead of panicking.
func TestNilTracerExportsEmpty(t *testing.T) {
	runs := []Labeled{{Label: "empty", Tracer: nil}}
	var b bytes.Buffer
	if err := WriteJSONL(&b, runs); err != nil {
		t.Fatalf("WriteJSONL(nil tracer): %v", err)
	}
	b.Reset()
	if err := WriteChromeTrace(&b, runs); err != nil {
		t.Fatalf("WriteChromeTrace(nil tracer): %v", err)
	}
}

// TestCutEpochDeltas pins the per-epoch counter aggregation: deltas
// are since the previous cut, zero deltas are omitted, and names come
// out sorted.
func TestCutEpochDeltas(t *testing.T) {
	tr := New()
	a := tr.Counter("b/one")
	b := tr.Counter("a/two")
	a.Add(5)
	b.Add(3)
	tr.CutEpoch(100, 1)
	a.Add(2)
	tr.CutEpoch(200, 1)

	cuts := tr.EpochCuts()
	if len(cuts) != 2 {
		t.Fatalf("EpochCuts = %d, want 2", len(cuts))
	}
	first := cuts[0]
	if first.Epoch != 0 || first.Now != 100 {
		t.Errorf("first cut = epoch %d now %d, want 0/100", first.Epoch, first.Now)
	}
	if len(first.Deltas) != 2 || first.Deltas[0].Name != "a/two" || first.Deltas[0].Value != 3 ||
		first.Deltas[1].Name != "b/one" || first.Deltas[1].Value != 5 {
		t.Errorf("first deltas = %+v, want sorted a/two=3, b/one=5", first.Deltas)
	}
	second := cuts[1]
	if len(second.Deltas) != 1 || second.Deltas[0].Name != "b/one" || second.Deltas[0].Value != 2 {
		t.Errorf("second deltas = %+v, want only b/one=2", second.Deltas)
	}
}

// TestEventsCarryEpoch checks that emitted events are stamped with the
// epoch being collected when they fire.
func TestEventsCarryEpoch(t *testing.T) {
	tr := New()
	tr.EmitDaemonTick(10, 1)
	tr.CutEpoch(100, 0)
	tr.EmitDaemonTick(110, 1)

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].Epoch != 0 || evs[1].Epoch != 0 || evs[2].Epoch != 1 {
		t.Errorf("epochs = %d,%d,%d, want 0,0,1", evs[0].Epoch, evs[1].Epoch, evs[2].Epoch)
	}
}

// TestCounterReuse pins create-on-first-use semantics: the same name
// returns the same counter.
func TestCounterReuse(t *testing.T) {
	tr := New()
	c1 := tr.Counter("mem/alloc_frames")
	c1.Add(4)
	c2 := tr.Counter("mem/alloc_frames")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	if c2.Value() != 4 {
		t.Fatalf("Value = %d, want 4", c2.Value())
	}
	names := tr.Registry().Names()
	if len(names) != 1 || names[0] != "mem/alloc_frames" {
		t.Fatalf("Names = %v", names)
	}
}

// TestAttributionSubsystemFallback checks the counter fallback: a
// subsystem with no span events (mem) is attributed its _ns counters,
// while span-emitting subsystems keep the span sum.
func TestAttributionSubsystemFallback(t *testing.T) {
	tr := New()
	tr.Counter("mem/compact_ns").AddNS(300)
	tr.EmitAbitScan(10, 400, 1, 1, 0)
	// Mirror counter for the same charge must not double-count.
	tr.Counter("abit/overhead_ns").AddNS(400)

	rows := tr.Attribution(1_000, 1)
	var memNS, abitNS int64
	for _, r := range rows {
		switch r.Subsystem {
		case "mem":
			memNS = r.VirtualNS
		case "abit":
			abitNS = r.VirtualNS
		}
	}
	if memNS != 300 {
		t.Errorf("mem attributed %d ns, want 300 (counter fallback)", memNS)
	}
	if abitNS != 400 {
		t.Errorf("abit attributed %d ns, want 400 (span sum, not span+counter)", abitNS)
	}
}
