// Package telemetry is the simulator's deterministic observability
// layer: a structured event bus, a counter registry with stable sorted
// iteration, and exporters (JSONL event log, Chrome trace_viewer JSON,
// per-subsystem virtual-time attribution) that make a run's internal
// decisions — HWPC gate toggles, A-bit scans, IBS drains and drops,
// page migrations, epoch cuts — visible without changing a single
// output byte of the run itself.
//
// Two contracts govern everything here:
//
//  1. Telemetry is provably inert. A nil *Tracer is the disabled
//     state; every emit method and counter operation on nil is a
//     no-op that performs zero allocations, and an enabled tracer
//     only records — it never advances a virtual clock, never touches
//     simulator state, and never perturbs iteration order. Same seed
//     ⇒ byte-identical ranks and reports with telemetry on or off
//     (machine-checked by TestTelemetryInert).
//
//  2. Telemetry is deterministic. Events are stamped with *virtual*
//     time only (the tmplint telemetry analyzer rejects wall-clock
//     values flowing into this package), each run owns a private
//     tracer, and merged exports order runs by submission order or
//     sorted label — so the exported event stream is byte-identical
//     at -parallel 1 and -parallel 8 (TestTelemetryParallelIdentity).
//
// Wall-clock host metrics (worker-pool queue delays, real run times)
// deliberately live in a separate Registry that is never merged into
// the virtual-time stream; see runner.RecordStats.
package telemetry

// Subsystem identifies which part of the simulator emitted an event
// and owns the virtual time attributed to it.
type Subsystem uint8

const (
	// SubSim is the experiment driver (epoch horizons).
	SubSim Subsystem = iota
	// SubDaemon is the TMP profiling daemon (ticks, process filter).
	SubDaemon
	// SubAbit is the PTE A-bit scanner.
	SubAbit
	// SubIBS is the trace-sampling engine.
	SubIBS
	// SubHWPC is the performance-counter gating monitor.
	SubHWPC
	// SubMover is the page-migration engine.
	SubMover
	// SubMem is the physical-memory allocator.
	SubMem
	// SubRunner is the host-side worker pool (wall-clock registry
	// only; never part of the virtual-time stream).
	SubRunner
	// SubFault is the fault-injection plane (injection counters and
	// quarantine decisions).
	SubFault
	// SubDevProf is the device-side (CXL) hot-page tracker.
	SubDevProf

	numSubsystems
)

// String names the subsystem as used in counter prefixes and exports.
func (s Subsystem) String() string {
	switch s {
	case SubSim:
		return "sim"
	case SubDaemon:
		return "daemon"
	case SubAbit:
		return "abit"
	case SubIBS:
		return "ibs"
	case SubHWPC:
		return "hwpc"
	case SubMover:
		return "mover"
	case SubMem:
		return "mem"
	case SubRunner:
		return "runner"
	case SubFault:
		return "fault"
	case SubDevProf:
		return "devprof"
	default:
		return "sub?"
	}
}

// Kind is the event taxonomy (see OBSERVABILITY.md for field
// semantics per kind).
type Kind uint8

const (
	// KindEpochCut marks an epoch harvest. A = pages harvested.
	KindEpochCut Kind = iota
	// KindDaemonTick is one profiler-daemon pass. Dur = virtual cost.
	KindDaemonTick
	// KindAbitScan is one page-table walk. Dur = cost, A = PTEs
	// visited, B = leaf PTEs found accessed, C = huge leaves.
	KindAbitScan
	// KindIBSDrain is one ring-buffer drain. Dur = cost, A = samples
	// drained, B = samples dropped to ring overrun since last drain.
	KindIBSDrain
	// KindGate is an HWPC gate decision. Name = the PMU event driving
	// the gate, A = this window's count, B = peak window count,
	// C = threshold in basis points; Open records the new state. The
	// paper's rule: gate opens while A ≥ C/10000 × B.
	KindGate
	// KindMigration is one page move. PID/VPN identify the page,
	// Name = "promote" or "demote".
	KindMigration
	// KindShootdown is the epoch batch's TLB shootdown. Dur = cost,
	// A = pages migrated this batch.
	KindShootdown
	// KindFilter is a process-filter re-evaluation. A = PIDs passing,
	// B = PIDs registered.
	KindFilter
	// KindQuarantine marks the profiler permanently disabling one
	// monitoring mechanism whose fault rate crossed the quarantine
	// threshold. Name = the mechanism ("ibs", "abit", "hwpc",
	// "devprof"), A = failures observed, B = attempts observed.
	KindQuarantine
	// KindDevFlush is one device-tracker counter harvest. A =
	// observations folded into page descriptors, B = observations lost
	// to an injected table overflow, C = observations deferred by an
	// injected stale read. Dur is always 0: the tracker costs the host
	// nothing.
	KindDevFlush
)

// String names the kind as serialized in exports.
func (k Kind) String() string {
	switch k {
	case KindEpochCut:
		return "epoch_cut"
	case KindDaemonTick:
		return "daemon_tick"
	case KindAbitScan:
		return "abit_scan"
	case KindIBSDrain:
		return "ibs_drain"
	case KindGate:
		return "gate"
	case KindMigration:
		return "migration"
	case KindShootdown:
		return "shootdown"
	case KindFilter:
		return "filter"
	case KindQuarantine:
		return "quarantine"
	case KindDevFlush:
		return "dev_flush"
	default:
		return "kind?"
	}
}

// Event is one structured telemetry record. Now is always virtual
// nanoseconds; Dur is a virtual-time span for span-shaped events (0
// for instants). Epoch is filled automatically with the placement
// epoch being collected at emission time. The A/B/C payload scalars
// are typed by Kind (see the Kind constants); the typed Emit* methods
// are the only sanctioned way to construct events.
type Event struct {
	Now   int64
	Dur   int64
	Kind  Kind
	Sub   Subsystem
	Epoch int32
	Open  bool   // KindGate: new gate state
	PID   int32  // KindMigration
	VPN   uint64 // KindMigration
	Name  string // KindGate: PMU event; KindMigration: direction
	A     uint64
	B     uint64
	C     uint64
}

// Tracer records one run's events and counters. The zero value is not
// usable; construct with New. A nil *Tracer is the disabled state:
// every method is a zero-allocation no-op, so emit sites are wired
// unconditionally and pay one pointer test when telemetry is off.
//
// A Tracer belongs to exactly one simulation run and is not safe for
// concurrent use — parallel experiment cells each own a private
// tracer, and exports merge them deterministically (see Merge).
type Tracer struct {
	events []Event
	reg    Registry
	epoch  int32
	// epochCuts snapshots counter deltas at each epoch cut.
	epochCuts []EpochCounters
}

// New returns an enabled tracer with an empty registry.
func New() *Tracer {
	return &Tracer{}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Events returns the recorded events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Registry returns the tracer's counter registry (nil for a nil
// tracer; all Registry and Counter methods tolerate nil receivers).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return &t.reg
}

// Counter is shorthand for Registry().Counter(name).
func (t *Tracer) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	return t.reg.Counter(name)
}

// EpochCuts returns the per-epoch counter snapshots taken at each
// CutEpoch call, in epoch order.
func (t *Tracer) EpochCuts() []EpochCounters {
	if t == nil {
		return nil
	}
	return t.epochCuts
}

func (t *Tracer) emit(e Event) {
	e.Epoch = t.epoch
	t.events = append(t.events, e)
}

// CutEpoch records an epoch harvest: it emits a KindEpochCut event,
// snapshots every counter's delta since the previous cut, and advances
// the tracer's epoch index. pages is the harvest size.
func (t *Tracer) CutEpoch(now int64, pages int) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Kind: KindEpochCut, Sub: SubSim, A: uint64(pages)})
	t.epochCuts = append(t.epochCuts, t.reg.cutEpoch(int(t.epoch), now))
	t.epoch++
}

// EmitDaemonTick records one profiler-daemon pass costing cost virtual
// ns.
func (t *Tracer) EmitDaemonTick(now, cost int64) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Dur: cost, Kind: KindDaemonTick, Sub: SubDaemon})
}

// EmitAbitScan records one A-bit page-table walk.
func (t *Tracer) EmitAbitScan(now, cost int64, ptes, pages, huge int) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Dur: cost, Kind: KindAbitScan, Sub: SubAbit,
		A: uint64(ptes), B: uint64(pages), C: uint64(huge)})
}

// EmitIBSDrain records one sample-ring drain: drained samples were
// delivered to the accumulator, dropped were lost to ring overrun
// since the previous drain.
func (t *Tracer) EmitIBSDrain(now, cost int64, drained int, dropped uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Dur: cost, Kind: KindIBSDrain, Sub: SubIBS,
		A: uint64(drained), B: dropped})
}

// EmitGate records an HWPC gate open/close decision with its rate
// evidence: the window's event count, the peak window count, and the
// activity threshold in basis points (the paper's 20 % rule is 2000).
func (t *Tracer) EmitGate(now int64, name string, open bool, window, peak uint64, thresholdBps uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Kind: KindGate, Sub: SubHWPC, Name: name,
		Open: open, A: window, B: peak, C: thresholdBps})
}

// EmitMigration records one page move; promote is fast-tier-bound.
func (t *Tracer) EmitMigration(now int64, pid int, vpn uint64, promote bool) {
	if t == nil {
		return
	}
	name := "demote"
	if promote {
		name = "promote"
	}
	t.emit(Event{Now: now, Kind: KindMigration, Sub: SubMover,
		PID: int32(pid), VPN: vpn, Name: name})
}

// EmitShootdown records the batched TLB shootdown covering pages
// migrations.
func (t *Tracer) EmitShootdown(now, cost int64, pages int) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Dur: cost, Kind: KindShootdown, Sub: SubMover,
		A: uint64(pages)})
}

// EmitFilter records a process-filter re-evaluation.
func (t *Tracer) EmitFilter(now int64, profiled, registered int) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Kind: KindFilter, Sub: SubDaemon,
		A: uint64(profiled), B: uint64(registered)})
}

// EmitQuarantine records the profiler permanently disabling one
// monitoring mechanism, with the fault-rate evidence behind the
// decision.
func (t *Tracer) EmitQuarantine(now int64, mechanism string, failures, attempts uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Kind: KindQuarantine, Sub: SubFault,
		Name: mechanism, A: failures, B: attempts})
}

// EmitDevFlush records one device-tracker counter harvest: folded
// observations delivered into page descriptors, plus injected losses.
func (t *Tracer) EmitDevFlush(now int64, folded, lost, late uint64) {
	if t == nil {
		return
	}
	t.emit(Event{Now: now, Kind: KindDevFlush, Sub: SubDevProf,
		A: folded, B: lost, C: late})
}

// Labeled pairs a tracer with the name of the run that produced it,
// for multi-run exports (tmpsim's arms, tmpbench's capture cells).
type Labeled struct {
	Label  string
	Tracer *Tracer
}
