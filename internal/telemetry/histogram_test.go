package telemetry

import "testing"

// TestHistogramBuckets pins the bucket geometry: bucket 0 holds
// exactly 0, bucket b holds [2^(b-1), 2^b-1].
func TestHistogramBuckets(t *testing.T) {
	h := New().Histogram("t/buckets")
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 62, 63}, {^uint64(0), 64},
	}
	for _, c := range cases {
		h.Observe(c.v)
		if got := h.Bucket(c.bucket); got == 0 {
			t.Errorf("Observe(%d): bucket %d empty", c.v, c.bucket)
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
	if h.Max() != ^uint64(0) {
		t.Errorf("Max = %d, want max uint64", h.Max())
	}
}

// TestHistogramPercentiles pins the bucket-walk percentile: the value
// at rank ceil(count*p/100)'s bucket upper bound, clamped to the exact
// observed max.
func TestHistogramPercentiles(t *testing.T) {
	h := New().Histogram("t/pct")
	// 10 observations: nine small (value 3 → bucket 2, upper 3) and
	// one huge (value 1000 → bucket 10, upper 1023 but clamped to max
	// 1000).
	h.ObserveN(3, 9)
	h.Observe(1000)
	if got := h.Percentile(50); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	if got := h.Percentile(90); got != 3 {
		t.Errorf("p90 = %d, want 3 (rank 9 of 10 is still the small bucket)", got)
	}
	if got := h.Percentile(99); got != 1000 {
		t.Errorf("p99 = %d, want 1000 (bucket upper 1023 clamped to exact max)", got)
	}
	if got := h.Percentile(100); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}

	empty := New().Histogram("t/empty")
	if got := empty.Percentile(50); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}

	zeros := New().Histogram("t/zeros")
	zeros.ObserveN(0, 5)
	if got := zeros.Percentile(99); got != 0 {
		t.Errorf("all-zero p99 = %d, want 0", got)
	}
}

// TestHistogramOrderInvariant pins determinism: the same multiset of
// observations renders identically regardless of observation order.
func TestHistogramOrderInvariant(t *testing.T) {
	a := New().Histogram("t/a")
	b := New().Histogram("t/b")
	vals := []uint64{9, 0, 1 << 20, 3, 3, 77, 1024}
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	for _, p := range []int{50, 90, 99} {
		if a.Percentile(p) != b.Percentile(p) {
			t.Errorf("p%d differs by order: %d vs %d", p, a.Percentile(p), b.Percentile(p))
		}
	}
	if a.Max() != b.Max() || a.Count() != b.Count() {
		t.Errorf("max/count differ by order")
	}
}

// TestHistogramReuse pins create-on-first-use and sorted iteration.
func TestHistogramReuse(t *testing.T) {
	tr := New()
	h1 := tr.Histogram("mover/interarrival_ns")
	h1.Observe(5)
	h2 := tr.Histogram("mover/interarrival_ns")
	if h1 != h2 {
		t.Fatal("same name returned distinct histograms")
	}
	tr.Histogram("abit/x")
	names := tr.Registry().HistNames()
	if len(names) != 2 || names[0] != "abit/x" || names[1] != "mover/interarrival_ns" {
		t.Fatalf("HistNames = %v, want sorted", names)
	}
}

// TestAttributionSpanless is the span-less-subsystem coverage: mem
// (counters only, never spans) renders a row only when it has _ns
// time; devprof (zero-duration dev_flush events, no _ns counters)
// renders an events-only row; a subsystem with neither stays absent.
func TestAttributionSpanless(t *testing.T) {
	// mem with only non-_ns counters: no events, no virtual time ⇒ no
	// row. The registry alone must not conjure attribution.
	tr := New()
	tr.Counter("mem/alloc_frames").Add(100)
	tr.Counter("mem/free_frames").Add(40)
	for _, r := range tr.Attribution(1_000, 1) {
		if r.Subsystem == "mem" {
			t.Errorf("mem row rendered with no _ns counters and no events: %+v", r)
		}
	}

	// mem with an _ns counter: fallback row, zero events.
	tr2 := New()
	tr2.Counter("mem/alloc_frames").Add(100)
	tr2.Counter("mem/migrate_ns").AddNS(250)
	found := false
	for _, r := range tr2.Attribution(1_000, 1) {
		if r.Subsystem == "mem" {
			found = true
			if r.Events != 0 || r.VirtualNS != 250 {
				t.Errorf("mem row = %+v, want events=0 virtual_ns=250", r)
			}
		}
	}
	if !found {
		t.Error("mem _ns fallback row missing")
	}

	// devprof: zero-duration events (device observation costs the host
	// nothing), no _ns counters ⇒ row with events > 0, virtual_ns 0.
	tr3 := New()
	tr3.EmitDevFlush(500, 12, 0, 0)
	tr3.EmitDevFlush(900, 7, 1, 0)
	tr3.Counter("devprof/folded").Add(19)
	found = false
	for _, r := range tr3.Attribution(1_000, 1) {
		if r.Subsystem == "devprof" {
			found = true
			if r.Events != 2 || r.VirtualNS != 0 {
				t.Errorf("devprof row = %+v, want events=2 virtual_ns=0", r)
			}
		}
	}
	if !found {
		t.Error("devprof zero-cost row missing")
	}
}
