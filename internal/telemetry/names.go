package telemetry

import "strings"

// Name builds a counter name from dynamic parts, sanitizing each part
// into the counter alphabet (lowercase [a-z0-9_]) and joining with
// "/". It is the one sanctioned way to register a counter whose name
// depends on runtime data (a run name, a job name): the ctrname
// analyzer rejects any other non-constant registration, so every name
// in a registry is guaranteed `<subsystem>/<metric>`-shaped and
// greppable. Uppercase letters are lowered; every other out-of-
// alphabet byte becomes "_"; an empty part becomes "_".
func Name(parts ...string) string {
	clean := make([]string, len(parts))
	for i, p := range parts {
		var b strings.Builder
		b.Grow(len(p))
		for _, r := range p {
			switch {
			case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
				b.WriteRune(r)
			case r >= 'A' && r <= 'Z':
				b.WriteRune(r - 'A' + 'a')
			default:
				b.WriteByte('_')
			}
		}
		if b.Len() == 0 {
			b.WriteByte('_')
		}
		clean[i] = b.String()
	}
	return strings.Join(clean, "/")
}
