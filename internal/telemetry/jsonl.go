package telemetry

import (
	"io"
	"strconv"
	"strings"
)

// SchemaVersion stamps every exported JSONL stream (the event log's
// {"type":"run"} line and the provenance log's header) so downstream
// consumers can detect format changes. Bump it whenever a line shape
// changes incompatibly.
const SchemaVersion = 1

// WriteJSONL renders labeled traces as a JSON-Lines event log: one
// self-describing JSON object per line, fields in fixed order, so the
// byte stream is a pure function of the recorded events — the
// parallel-identity regression tests compare these bytes directly.
//
// Line shapes:
//
//	{"type":"run","schema":1,"label":"baseline"}
//	{"type":"event","kind":"abit_scan","sub":"abit","epoch":0,"now":1000,...}
//	{"type":"counters","epoch":0,"now":1000000,"values":{"abit/scans":1,...}}
//	{"type":"totals","values":{...}}
//	{"type":"hist","name":"mover/interarrival_ns","count":3,...}
//
// The run line carries SchemaVersion so downstream consumers can
// detect format changes; histogram lines follow totals, empty
// histograms omitted. Kind-specific payload fields are documented in
// OBSERVABILITY.md.
func WriteJSONL(w io.Writer, traces []Labeled) error {
	var b strings.Builder
	for _, lt := range traces {
		b.Reset()
		b.WriteString(`{"type":"run","schema":`)
		b.WriteString(strconv.Itoa(SchemaVersion))
		b.WriteString(`,"label":`)
		writeJSONString(&b, lt.Label)
		b.WriteString("}\n")
		cuts := lt.Tracer.EpochCuts()
		cutIdx := 0
		for i := range lt.Tracer.Events() {
			e := &lt.Tracer.Events()[i]
			writeEventLine(&b, e)
			// Counter snapshots ride directly after their epoch-cut
			// event so the log reads in virtual-time order.
			if e.Kind == KindEpochCut && cutIdx < len(cuts) {
				writeCountersLine(&b, "counters", cuts[cutIdx].Epoch, cuts[cutIdx].Now, cuts[cutIdx].Deltas)
				cutIdx++
			}
		}
		if totals := lt.Tracer.Registry().Totals(); len(totals) > 0 {
			b.WriteString(`{"type":"totals","values":`)
			writeValuesObject(&b, totals)
			b.WriteString("}\n")
		}
		// Distribution lines close the run. Empty histograms are
		// skipped, so a run that registered handles but observed
		// nothing exports exactly the same bytes as one with no
		// histograms at all.
		for _, h := range lt.Tracer.Registry().Histograms() {
			if h.Count() == 0 {
				continue
			}
			b.WriteString(`{"type":"hist","name":`)
			writeJSONString(&b, h.Name())
			writeUintField(&b, "count", h.Count())
			writeUintField(&b, "p50", h.Percentile(50))
			writeUintField(&b, "p90", h.Percentile(90))
			writeUintField(&b, "p99", h.Percentile(99))
			writeUintField(&b, "max", h.Max())
			b.WriteString("}\n")
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeEventLine renders one event with its kind-typed payload fields.
func writeEventLine(b *strings.Builder, e *Event) {
	b.WriteString(`{"type":"event","kind":"`)
	b.WriteString(e.Kind.String())
	b.WriteString(`","sub":"`)
	b.WriteString(e.Sub.String())
	b.WriteString(`","epoch":`)
	b.WriteString(strconv.FormatInt(int64(e.Epoch), 10))
	b.WriteString(`,"now":`)
	b.WriteString(strconv.FormatInt(e.Now, 10))
	switch e.Kind {
	case KindEpochCut:
		writeUintField(b, "pages", e.A)
	case KindDaemonTick:
		writeIntField(b, "cost_ns", e.Dur)
	case KindAbitScan:
		writeIntField(b, "cost_ns", e.Dur)
		writeUintField(b, "ptes", e.A)
		writeUintField(b, "pages", e.B)
		writeUintField(b, "huge", e.C)
	case KindIBSDrain:
		writeIntField(b, "cost_ns", e.Dur)
		writeUintField(b, "drained", e.A)
		writeUintField(b, "dropped", e.B)
	case KindGate:
		b.WriteString(`,"counter":`)
		writeJSONString(b, e.Name)
		b.WriteString(`,"open":`)
		b.WriteString(strconv.FormatBool(e.Open))
		writeUintField(b, "window", e.A)
		writeUintField(b, "peak", e.B)
		writeUintField(b, "threshold_bps", e.C)
	case KindMigration:
		writeIntField(b, "pid", int64(e.PID))
		b.WriteString(`,"vpn":"0x`)
		b.WriteString(strconv.FormatUint(e.VPN, 16))
		b.WriteString(`","dir":`)
		writeJSONString(b, e.Name)
	case KindShootdown:
		writeIntField(b, "cost_ns", e.Dur)
		writeUintField(b, "pages", e.A)
	case KindFilter:
		writeUintField(b, "profiled", e.A)
		writeUintField(b, "registered", e.B)
	case KindQuarantine:
		b.WriteString(`,"mechanism":`)
		writeJSONString(b, e.Name)
		writeUintField(b, "failures", e.A)
		writeUintField(b, "attempts", e.B)
	case KindDevFlush:
		writeUintField(b, "folded", e.A)
		writeUintField(b, "lost", e.B)
		writeUintField(b, "stale", e.C)
	}
	b.WriteString("}\n")
}

func writeCountersLine(b *strings.Builder, typ string, epoch int, now int64, vals []CounterValue) {
	b.WriteString(`{"type":"`)
	b.WriteString(typ)
	b.WriteString(`","epoch":`)
	b.WriteString(strconv.Itoa(epoch))
	b.WriteString(`,"now":`)
	b.WriteString(strconv.FormatInt(now, 10))
	b.WriteString(`,"values":`)
	writeValuesObject(b, vals)
	b.WriteString("}\n")
}

// writeValuesObject renders sorted counter values as a JSON object.
func writeValuesObject(b *strings.Builder, vals []CounterValue) {
	b.WriteByte('{')
	for i, kv := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		writeJSONString(b, kv.Name)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(kv.Value, 10))
	}
	b.WriteByte('}')
}

func writeIntField(b *strings.Builder, name string, v int64) {
	b.WriteString(`,"`)
	b.WriteString(name)
	b.WriteString(`":`)
	b.WriteString(strconv.FormatInt(v, 10))
}

func writeUintField(b *strings.Builder, name string, v uint64) {
	b.WriteString(`,"`)
	b.WriteString(name)
	b.WriteString(`":`)
	b.WriteString(strconv.FormatUint(v, 10))
}

// writeJSONString quotes s with the minimal escaping our label and
// counter names can need (quotes, backslashes, control bytes).
func writeJSONString(b *strings.Builder, s string) {
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b.WriteString(`\u00`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
}
