package telemetry

import (
	"io"
	"strconv"
	"strings"
)

// Chrome trace_viewer export: the run renders as a virtual-time
// flamegraph in chrome://tracing or Perfetto (Open trace file). Each
// labeled run becomes one "process"; each subsystem becomes one named
// "thread" track carrying its spans and instants, and per-epoch
// counter deltas become counter series.
//
// Timestamp convention: the trace_viewer "ts"/"dur" unit is
// microseconds, but all simulator time is virtual nanoseconds — the
// export writes virtual ns directly into ts, so one displayed
// microsecond reads as one virtual nanosecond. Relative layout (the
// only thing a flamegraph shows) is exact, and timestamps stay
// integers, keeping the export byte-deterministic.

// chrome thread ids per subsystem, with sort indices that pin the
// track order in the viewer.
func chromeTID(s Subsystem) int { return int(s) }

// WriteChromeTrace renders labeled traces as Chrome trace_viewer JSON.
func WriteChromeTrace(w io.Writer, traces []Labeled) error {
	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for ti, lt := range traces {
		pid := ti + 1
		emit(metaEvent(pid, "process_name", lt.Label))
		// Thread-name metadata only for subsystems that appear.
		var seen [numSubsystems]bool
		for _, e := range lt.Tracer.Events() {
			seen[e.Sub] = true
		}
		for s := Subsystem(0); s < numSubsystems; s++ {
			if seen[s] {
				emit(metaEvent2(pid, chromeTID(s), "thread_name", s.String()))
				emit(sortEvent(pid, chromeTID(s), int(s)))
			}
		}
		cuts := lt.Tracer.EpochCuts()
		cutIdx := 0
		var lastCut int64
		for i := range lt.Tracer.Events() {
			e := &lt.Tracer.Events()[i]
			switch e.Kind {
			case KindEpochCut:
				emit(spanEvent(pid, chromeTID(SubSim), "epoch "+strconv.Itoa(int(e.Epoch)),
					"epoch", lastCut, e.Now-lastCut,
					[]argKV{{"pages", e.A}}))
				lastCut = e.Now
				if cutIdx < len(cuts) {
					for _, kv := range cuts[cutIdx].Deltas {
						emit(counterEvent(pid, e.Now, kv.Name, kv.Value))
					}
					cutIdx++
				}
			case KindDaemonTick:
				emit(spanEvent(pid, chromeTID(SubDaemon), "tick", "daemon", e.Now, e.Dur, nil))
			case KindAbitScan:
				emit(spanEvent(pid, chromeTID(SubAbit), "scan", "abit", e.Now, e.Dur,
					[]argKV{{"ptes", e.A}, {"pages", e.B}, {"huge", e.C}}))
			case KindIBSDrain:
				emit(spanEvent(pid, chromeTID(SubIBS), "drain", "ibs", e.Now, e.Dur,
					[]argKV{{"drained", e.A}, {"dropped", e.B}}))
			case KindGate:
				name := "gate close " + e.Name
				if e.Open {
					name = "gate open " + e.Name
				}
				emit(instantEvent(pid, chromeTID(SubHWPC), name, "hwpc", e.Now,
					[]argKV{{"window", e.A}, {"peak", e.B}, {"threshold_bps", e.C}}))
			case KindMigration:
				emit(instantEvent(pid, chromeTID(SubMover), e.Name, "mover", e.Now,
					[]argKV{{"pid", uint64(e.PID)}, {"vpn", e.VPN}}))
			case KindShootdown:
				emit(spanEvent(pid, chromeTID(SubMover), "shootdown", "mover", e.Now, e.Dur,
					[]argKV{{"pages", e.A}}))
			case KindFilter:
				emit(instantEvent(pid, chromeTID(SubDaemon), "refilter", "daemon", e.Now,
					[]argKV{{"profiled", e.A}, {"registered", e.B}}))
			case KindQuarantine:
				emit(instantEvent(pid, chromeTID(SubFault), "quarantine "+e.Name, "fault", e.Now,
					[]argKV{{"failures", e.A}, {"attempts", e.B}}))
			case KindDevFlush:
				emit(instantEvent(pid, chromeTID(SubDevProf), "dev flush", "devprof", e.Now,
					[]argKV{{"folded", e.A}, {"lost", e.B}, {"stale", e.C}}))
			}
		}
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// argKV is one args entry; values are integers so formatting is
// byte-deterministic.
type argKV struct {
	k string
	v uint64
}

func writeArgs(b *strings.Builder, args []argKV) {
	b.WriteString(`,"args":{`)
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		writeJSONString(b, a.k)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(a.v, 10))
	}
	b.WriteByte('}')
}

func eventPrefix(b *strings.Builder, ph string, pid, tid int, name, cat string, ts int64) {
	b.WriteString(`{"ph":"`)
	b.WriteString(ph)
	b.WriteString(`","pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"tid":`)
	b.WriteString(strconv.Itoa(tid))
	b.WriteString(`,"name":`)
	writeJSONString(b, name)
	if cat != "" {
		b.WriteString(`,"cat":`)
		writeJSONString(b, cat)
	}
	b.WriteString(`,"ts":`)
	b.WriteString(strconv.FormatInt(ts, 10))
}

func spanEvent(pid, tid int, name, cat string, ts, dur int64, args []argKV) string {
	var b strings.Builder
	eventPrefix(&b, "X", pid, tid, name, cat, ts)
	b.WriteString(`,"dur":`)
	b.WriteString(strconv.FormatInt(dur, 10))
	if len(args) > 0 {
		writeArgs(&b, args)
	}
	b.WriteByte('}')
	return b.String()
}

func instantEvent(pid, tid int, name, cat string, ts int64, args []argKV) string {
	var b strings.Builder
	eventPrefix(&b, "i", pid, tid, name, cat, ts)
	b.WriteString(`,"s":"t"`)
	if len(args) > 0 {
		writeArgs(&b, args)
	}
	b.WriteByte('}')
	return b.String()
}

func counterEvent(pid int, ts int64, name string, value uint64) string {
	var b strings.Builder
	eventPrefix(&b, "C", pid, 0, name, "", ts)
	writeArgs(&b, []argKV{{"value", value}})
	b.WriteByte('}')
	return b.String()
}

func metaEvent(pid int, name, value string) string {
	var b strings.Builder
	b.WriteString(`{"ph":"M","pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"name":"`)
	b.WriteString(name)
	b.WriteString(`","args":{"name":`)
	writeJSONString(&b, value)
	b.WriteString("}}")
	return b.String()
}

func metaEvent2(pid, tid int, name, value string) string {
	var b strings.Builder
	b.WriteString(`{"ph":"M","pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"tid":`)
	b.WriteString(strconv.Itoa(tid))
	b.WriteString(`,"name":"`)
	b.WriteString(name)
	b.WriteString(`","args":{"name":`)
	writeJSONString(&b, value)
	b.WriteString("}}")
	return b.String()
}

func sortEvent(pid, tid, index int) string {
	var b strings.Builder
	b.WriteString(`{"ph":"M","pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"tid":`)
	b.WriteString(strconv.Itoa(tid))
	b.WriteString(`,"name":"thread_sort_index","args":{"sort_index":`)
	b.WriteString(strconv.Itoa(index))
	b.WriteString("}}")
	return b.String()
}
