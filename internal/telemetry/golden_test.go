package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tieredmem/internal/report"
)

// update rewrites the goldens instead of comparing against them:
//
//	go test ./internal/telemetry -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata goldens")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s\n(run `go test ./internal/telemetry -run Golden -update` if the change is intended)",
			name, got, string(want))
	}
}

// fixtureTracer replays one small deterministic run exercising every
// event kind, counter deltas across two epoch cuts, and a second
// labeled run for the multi-run export shapes.
func fixtureTracer() *Tracer {
	tr := New()
	alloc := tr.Counter("mem/alloc_frames")
	alloc.Add(128)
	tr.Counter("mem/alloc_huge").Add(2)
	tr.EmitDaemonTick(1_000, 50)
	tr.Counter("daemon/ticks").Add(1)
	tr.Counter("daemon/tick_ns").AddNS(50)
	tr.EmitAbitScan(1_500, 400, 512, 37, 2)
	tr.Counter("abit/overhead_ns").AddNS(400)
	tr.EmitIBSDrain(1_800, 120, 3, 1)
	tr.Counter("ibs/overhead_ns").AddNS(120)
	tr.EmitGate(2_000, "llc_miss", false, 10, 100, 2000)
	tr.EmitMigration(2_500, 101, 0x2000, true)
	tr.EmitShootdown(2_600, 900, 1)
	tr.Counter("mover/overhead_ns").AddNS(900)
	tr.EmitFilter(2_700, 1, 2)
	tr.CutEpoch(3_000, 5)
	alloc.Add(7)
	tr.EmitDaemonTick(3_500, 25)
	tr.EmitGate(3_600, "llc_miss", true, 90, 100, 2000)
	tr.CutEpoch(4_000, 2)
	inter := tr.Histogram("mover/interarrival_ns")
	inter.Observe(100)
	inter.Observe(500)
	inter.Observe(1_000)
	tr.Histogram("mover/residency_epochs_t0").ObserveN(3, 2)
	// Registered but never observed: must not appear in any export.
	tr.Histogram("sim/rank_churn")
	return tr
}

func fixtureRuns() []Labeled {
	second := New()
	second.Counter("mem/alloc_frames").Add(16)
	second.EmitAbitScan(700, 80, 64, 9, 0)
	second.CutEpoch(1_000, 9)
	return []Labeled{
		{Label: "gups@4x", Tracer: fixtureTracer()},
		{Label: "xsbench@4x", Tracer: second},
	}
}

func TestGoldenJSONL(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, fixtureRuns()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got := b.String()
	// Every line must be standalone valid JSON: the format contract
	// that makes the log greppable and jq-able.
	runs := 0
	for i, line := range bytes.Split(b.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			t.Errorf("line %d is not valid JSON: %s", i+1, line)
		}
		// Reader-side schema check: every run header must announce the
		// schema version a consumer should expect.
		var hdr struct {
			Type   string `json:"type"`
			Schema int    `json:"schema"`
		}
		if err := json.Unmarshal(line, &hdr); err == nil && hdr.Type == "run" {
			runs++
			if hdr.Schema != SchemaVersion {
				t.Errorf("line %d: run header schema = %d, want %d", i+1, hdr.Schema, SchemaVersion)
			}
		}
	}
	if runs != 2 {
		t.Errorf("found %d run headers, want 2", runs)
	}
	checkGolden(t, "events_jsonl", got)
}

func TestGoldenChromeTrace(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, fixtureRuns()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", b.String())
	}
	// trace_viewer / Perfetto load the traceEvents array; require the
	// documented envelope rather than trusting the golden alone.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	checkGolden(t, "chrome_trace", b.String())
}

func TestGoldenAttributionTable(t *testing.T) {
	tr := fixtureTracer()
	rows := tr.Attribution(4_000, 4)
	checkGolden(t, "attribution_table",
		report.AttributionTable("Fixture attribution", rows).Render())
}

func TestGoldenDistTable(t *testing.T) {
	rows := fixtureTracer().Distributions()
	if len(rows) == 0 {
		t.Fatal("fixture has no distributions")
	}
	for _, r := range rows {
		if r.Name == "sim/rank_churn" {
			t.Error("empty histogram rendered a distribution row")
		}
	}
	checkGolden(t, "dist_table",
		report.DistTable("Fixture distributions", rows).Render())
}

func TestGoldenAttributionNoDenominator(t *testing.T) {
	rows := fixtureTracer().Attribution(0, 0)
	checkGolden(t, "attribution_na",
		report.AttributionTable("Fixture attribution (no cores)", rows).Render())
}
