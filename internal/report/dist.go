package report

// DistRow is one histogram's distribution summary as produced by the
// telemetry layer: exact observation count, bucket-walk percentiles
// (each the upper bound of the log2 bucket holding that rank, clamped
// to the exact max), and the exact maximum. All integers — the row
// renders byte-identically on every platform.
type DistRow struct {
	Name  string
	Count uint64
	P50   uint64
	P90   uint64
	P99   uint64
	Max   uint64
}

// DistTable renders distribution metrics as an aligned table. Rows
// arrive pre-sorted by name (the registry iterates sorted), so the
// render is deterministic.
func DistTable(title string, rows []DistRow) *Table {
	t := NewTable(title, "distribution", "count", "p50", "p90", "p99", "max")
	for _, r := range rows {
		t.AddRow(r.Name, r.Count, r.P50, r.P90, r.P99, r.Max)
	}
	return t
}
