package report

import "fmt"

// AttributionRow is one subsystem's share of a run's virtual time, as
// produced by the telemetry layer: how many events it emitted, how
// much virtual time its spans covered, and that time as a fraction of
// aggregate core time. The rows arrive pre-ordered (subsystem
// presentation order), so rendering them is deterministic.
type AttributionRow struct {
	Subsystem string
	Events    uint64
	VirtualNS int64
	// Share is VirtualNS over duration × cores; negative means the
	// producer had no core-time denominator.
	Share float64
}

// AttributionTable renders per-subsystem virtual-time attribution as
// an aligned table: the "where did the run's virtual time go" view the
// overhead experiments quote per mechanism, generalized to every
// instrumented subsystem.
func AttributionTable(title string, rows []AttributionRow) *Table {
	t := NewTable(title, "subsystem", "events", "virtual_ns", "core_time_pct")
	for _, r := range rows {
		share := "n/a"
		if r.Share >= 0 {
			share = fmt.Sprintf("%.4f%%", r.Share*100)
		}
		t.AddRow(r.Subsystem, r.Events, r.VirtualNS, share)
	}
	return t
}
