// Package report renders experiment results as aligned ASCII tables
// and CSV, matching the rows and series the paper's tables and figures
// present.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable builds a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render draws the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting is not
// needed: cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is a named (x, y) sequence for figure output.
type Series struct {
	Name   string
	Points [][2]float64
}

// SeriesCSV renders several series as long-form CSV
// (series,x,y per row).
func SeriesCSV(series []Series) string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, p[0], p[1])
		}
	}
	return b.String()
}
