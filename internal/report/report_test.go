package report

import (
	"strings"
	"testing"
)

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 22)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title missing: %q", lines[0])
	}
	// Title, header, separator, and both rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5", len(lines))
	}
	valCol := strings.Index(lines[1], "value")
	if valCol < 0 {
		t.Fatalf("no value header")
	}
	if lines[4][:18] != "a-much-longer-name" {
		t.Errorf("long cell mangled: %q", lines[4])
	}
	if !strings.Contains(lines[4], "22") {
		t.Errorf("value missing: %q", lines[4])
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(0.123456)
	if !strings.Contains(tb.Render(), "0.123") {
		t.Errorf("float not formatted to 3 places:\n%s", tb.Render())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow(1, "x")
	tb.AddRow(2, "y")
	want := "a,b\n1,x\n2,y\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestSeriesCSV(t *testing.T) {
	out := SeriesCSV([]Series{
		{Name: "s1", Points: [][2]float64{{1, 0.5}, {2, 1}}},
		{Name: "s2", Points: [][2]float64{{3, 0.25}}},
	})
	want := "series,x,y\ns1,1,0.5\ns1,2,1\ns2,3,0.25\n"
	if out != want {
		t.Errorf("SeriesCSV = %q, want %q", out, want)
	}
}
