package report

// FaultRow is one named count of the fault-attribution section:
// injections per site, mover failures per reason, retry-queue
// outcomes. Kept dependency-free (plain name/value) because telemetry
// imports report, so report can import neither telemetry nor fault.
type FaultRow struct {
	Name  string
	Value uint64
}

// FaultTable renders the fault-attribution section: what the fault
// plane injected and how the response machinery absorbed it. Rows
// arrive pre-ordered (site order, then mover reasons), so rendering is
// deterministic.
func FaultTable(title string, rows []FaultRow) *Table {
	t := NewTable(title, "counter", "value")
	for _, r := range rows {
		t.AddRow(r.Name, r.Value)
	}
	return t
}
