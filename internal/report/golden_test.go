package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the goldens instead of comparing against them:
//
//	go test ./internal/report -run Golden -update
var update = flag.Bool("update", false, "rewrite testdata goldens")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s\n(run `go test ./internal/report -run Golden -update` if the change is intended)",
			name, got, string(want))
	}
}

// fixtureTable builds a table exercising alignment: mixed cell types,
// a float (formatted to 3 decimals), and ragged widths.
func fixtureTable() *Table {
	t := NewTable("Fixture: alignment and formatting",
		"workload", "pages", "hitrate", "note")
	t.AddRow("gups", 270555, 0.25, "thp-backed")
	t.AddRow("web-serving", 4263, 0.9999, "short")
	t.AddRow("x", 1, float64(2), "a-much-longer-cell-than-the-header")
	return t
}

func TestGoldenTableRender(t *testing.T) {
	checkGolden(t, "table_render", fixtureTable().Render())
}

func TestGoldenTableCSV(t *testing.T) {
	checkGolden(t, "table_csv", fixtureTable().CSV())
}

func TestGoldenSeriesCSV(t *testing.T) {
	series := []Series{
		{Name: "gups/ibs(4x)", Points: [][2]float64{{1, 0.5}, {2, 0.75}, {16, 1}}},
		{Name: "gups/truth", Points: [][2]float64{{1, 0.25}, {1024, 1}}},
		{Name: "empty", Points: nil},
	}
	checkGolden(t, "series_csv", SeriesCSV(series))
}

func TestGoldenEmptyTable(t *testing.T) {
	// Headers only, no title: the degenerate shape CSV callers use.
	checkGolden(t, "table_empty", NewTable("", "a", "bb").Render())
}
