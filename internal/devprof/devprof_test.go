package devprof

import (
	"errors"
	"testing"

	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/trace"
)

// deviceMem builds a 3-tier machine whose middle tier (cxl) is
// device-profiled, and allocates want frames in it.
func deviceMem(t *testing.T, want int) (*mem.PhysMem, []mem.PFN) {
	t.Helper()
	chain, err := mem.ParseTierChain("dram:64/cxl:64/nvm:64")
	if err != nil {
		t.Fatalf("ParseTierChain: %v", err)
	}
	phys, err := mem.NewPhysMem(chain)
	if err != nil {
		t.Fatalf("NewPhysMem: %v", err)
	}
	pfns := make([]mem.PFN, want)
	for i := range pfns {
		pfn, err := phys.AllocIn(mem.TierID(1), 1, mem.VPN(i))
		if err != nil {
			t.Fatalf("AllocIn: %v", err)
		}
		pfns[i] = pfn
	}
	return phys, pfns
}

// touch observes one access to pfn through the tracker.
func touch(tk *Tracker, pfn mem.PFN, src trace.DataSource) {
	o := trace.Outcome{PAddr: pfn.PAddrOf(), Source: src}
	tk.ObserveRetire(&o, 1)
}

func TestNewRejectsBadConfig(t *testing.T) {
	phys, _ := deviceMem(t, 1)
	if _, err := New(Config{Slots: 0}, phys); err == nil {
		t.Fatal("New with zero slots succeeded")
	}
	flat, err := mem.NewPhysMem(mem.DefaultTiers(16, 16))
	if err != nil {
		t.Fatalf("NewPhysMem: %v", err)
	}
	if _, err := New(DefaultConfig(), flat); !errors.Is(err, ErrNoDevice) {
		t.Fatalf("New on deviceless machine: err = %v, want ErrNoDevice", err)
	}
}

func TestObserveFoldsIntoDescriptors(t *testing.T) {
	phys, pfns := deviceMem(t, 3)
	tk, err := New(DefaultConfig(), phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 3 + 2 + 1 accesses across the three device frames; traffic to
	// non-device tiers and non-memory sources must be invisible.
	for i, pfn := range pfns {
		for n := 0; n <= i; n++ {
			touch(tk, pfn, trace.SrcTier2)
		}
	}
	touch(tk, 0, trace.SrcTier1)     // dram frame: not device-profiled
	touch(tk, 64+64, trace.SrcTier2) // nvm frame: not device-profiled
	touch(tk, pfns[0], trace.SrcLLC) // cache hit: never reached memory
	if got := tk.Stats().Observed; got != 6 {
		t.Fatalf("Observed = %d, want 6", got)
	}
	folded, err := tk.FlushAt(1000)
	if err != nil || folded != 6 {
		t.Fatalf("FlushAt = (%d, %v), want (6, nil)", folded, err)
	}
	for i, pfn := range pfns {
		if got := phys.Page(pfn).DevEpoch; got != uint32(i+1) {
			t.Errorf("frame %d DevEpoch = %d, want %d", pfn, got, i+1)
		}
	}
	// Flushed counters are cleared: a second flush delivers nothing
	// and descriptors keep their epoch counts.
	if folded, err := tk.FlushAt(2000); err != nil || folded != 0 {
		t.Fatalf("second FlushAt = (%d, %v), want (0, nil)", folded, err)
	}
	if got := phys.Page(pfns[2]).DevEpoch; got != 3 {
		t.Fatalf("DevEpoch after idle flush = %d, want 3", got)
	}
}

func TestDirectMappedCollision(t *testing.T) {
	phys, pfns := deviceMem(t, 5)
	tk, err := New(Config{Slots: 4}, phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// pfns[0] and pfns[4] share slot 0 of a 4-entry table; the second
	// frame's accesses drop as collisions.
	touch(tk, pfns[0], trace.SrcTier2)
	touch(tk, pfns[4], trace.SrcTier2)
	touch(tk, pfns[4], trace.SrcTier2)
	st := tk.Stats()
	if st.Observed != 3 || st.Collisions != 2 {
		t.Fatalf("Observed, Collisions = %d, %d; want 3, 2", st.Observed, st.Collisions)
	}
	if folded, err := tk.FlushAt(0); err != nil || folded != 1 {
		t.Fatalf("FlushAt = (%d, %v), want (1, nil)", folded, err)
	}
	// Post-flush the slot is free again: the colliding frame can now
	// claim it.
	touch(tk, pfns[4], trace.SrcTier2)
	if folded, _ := tk.FlushAt(0); folded != 1 {
		t.Fatalf("colliding frame did not claim freed slot")
	}
	if got := phys.Page(pfns[4]).DevEpoch; got != 1 {
		t.Fatalf("pfns[4] DevEpoch = %d, want 1", got)
	}
}

func TestVanishedFrames(t *testing.T) {
	phys, pfns := deviceMem(t, 2)
	tk, err := New(DefaultConfig(), phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	touch(tk, pfns[0], trace.SrcTier2)
	touch(tk, pfns[1], trace.SrcTier2)
	phys.Free(pfns[1])
	folded, err := tk.FlushAt(0)
	if err != nil || folded != 1 {
		t.Fatalf("FlushAt = (%d, %v), want (1, nil)", folded, err)
	}
	if got := tk.Stats().Vanished; got != 1 {
		t.Fatalf("Vanished = %d, want 1", got)
	}
}

func TestInjectedOverflowLosesBatch(t *testing.T) {
	phys, pfns := deviceMem(t, 2)
	tk, err := New(DefaultConfig(), phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec, err := fault.ParseSpec("devprof.overflow=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	plane := fault.New(spec, 7)
	tk.SetFaultPlane(plane)
	touch(tk, pfns[0], trace.SrcTier2)
	touch(tk, pfns[1], trace.SrcTier2)
	folded, err := tk.FlushAt(0)
	if !errors.Is(err, ErrOverflow) || folded != 0 {
		t.Fatalf("FlushAt = (%d, %v), want (0, ErrOverflow)", folded, err)
	}
	st := tk.Stats()
	if st.FaultOverflows != 1 || st.FaultLost != 2 || st.Folded != 0 {
		t.Fatalf("stats after overflow = %+v", st)
	}
	if got := phys.Page(pfns[0]).DevEpoch; got != 0 {
		t.Fatalf("DevEpoch after lost batch = %d, want 0", got)
	}
	if lost, attempts := st.FaultRate(); lost != 2 || attempts != 2 {
		t.Fatalf("FaultRate = (%d, %d), want (2, 2)", lost, attempts)
	}
	// An idle tracker draws nothing: the next flush must not consult
	// the plane (stream independence for quiet devices).
	draws := plane.Draws(fault.SiteDevOverflow)
	if _, err := tk.FlushAt(1); err != nil {
		t.Fatalf("idle FlushAt: %v", err)
	}
	if got := plane.Draws(fault.SiteDevOverflow); got != draws {
		t.Fatalf("idle flush drew from the fault stream: %d -> %d", draws, got)
	}
}

func TestInjectedStaleDefersDelivery(t *testing.T) {
	phys, pfns := deviceMem(t, 1)
	tk, err := New(DefaultConfig(), phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec, err := fault.ParseSpec("devprof.stale=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	tk.SetFaultPlane(fault.New(spec, 7))
	touch(tk, pfns[0], trace.SrcTier2)
	folded, err := tk.FlushAt(0)
	if !errors.Is(err, ErrStale) || folded != 0 {
		t.Fatalf("FlushAt = (%d, %v), want (0, ErrStale)", folded, err)
	}
	if got := phys.Page(pfns[0]).DevEpoch; got != 0 {
		t.Fatalf("stale flush delivered: DevEpoch = %d", got)
	}
	if st := tk.Stats(); st.FaultStale != 1 || st.FaultLate != 1 {
		t.Fatalf("stats after stale = %+v", st)
	}
	// The counts carried over: with the injection gone they arrive,
	// together with anything staged since.
	tk.SetFaultPlane(nil)
	touch(tk, pfns[0], trace.SrcTier2)
	folded, err = tk.FlushAt(1)
	if err != nil || folded != 2 {
		t.Fatalf("carry-over FlushAt = (%d, %v), want (2, nil)", folded, err)
	}
	if got := phys.Page(pfns[0]).DevEpoch; got != 2 {
		t.Fatalf("DevEpoch after carry-over = %d, want 2", got)
	}
}

func TestQuarantineIsSticky(t *testing.T) {
	phys, pfns := deviceMem(t, 1)
	tk, err := New(DefaultConfig(), phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tk.Quarantine()
	if !tk.Quarantined() {
		t.Fatal("Quarantined() = false after Quarantine()")
	}
	tk.Enable()
	touch(tk, pfns[0], trace.SrcTier2)
	if got := tk.Stats().Observed; got != 0 {
		t.Fatalf("quarantined tracker observed %d accesses", got)
	}
}

func TestTelemetryRecordsFlushes(t *testing.T) {
	phys, pfns := deviceMem(t, 1)
	tk, err := New(DefaultConfig(), phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tel := telemetry.New()
	tk.SetTracer(tel)
	touch(tk, pfns[0], trace.SrcTier2)
	touch(tk, pfns[0], trace.SrcTier2)
	if _, err := tk.FlushAt(500); err != nil {
		t.Fatalf("FlushAt: %v", err)
	}
	events := tel.Events()
	if len(events) != 1 || events[0].Kind != telemetry.KindDevFlush {
		t.Fatalf("events = %+v, want one KindDevFlush", events)
	}
	if e := events[0]; e.Now != 500 || e.A != 2 || e.B != 0 || e.C != 0 {
		t.Fatalf("flush event = %+v", e)
	}
	vals := tel.Registry().Totals()
	want := map[string]uint64{
		"devprof/observed": 2,
		"devprof/folded":   2,
		"devprof/flushes":  1,
	}
	for _, kv := range vals {
		if w, ok := want[kv.Name]; ok && kv.Value != w {
			t.Errorf("counter %s = %d, want %d", kv.Name, kv.Value, w)
		}
	}
}

func TestCountSaturates(t *testing.T) {
	phys, pfns := deviceMem(t, 1)
	tk, err := New(Config{Slots: 1}, phys)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pd := phys.Page(pfns[0])
	pd.DevEpoch = ^uint32(0) - 1
	touch(tk, pfns[0], trace.SrcTier2)
	touch(tk, pfns[0], trace.SrcTier2)
	touch(tk, pfns[0], trace.SrcTier2)
	if _, err := tk.FlushAt(0); err != nil {
		t.Fatalf("FlushAt: %v", err)
	}
	if pd.DevEpoch != ^uint32(0) {
		t.Fatalf("DevEpoch = %d, want saturation at %d", pd.DevEpoch, ^uint32(0))
	}
}
