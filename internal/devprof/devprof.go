// Package devprof implements a NeoMem-style device-side hot-page
// tracker: bounded access counters that live on a CXL memory device
// and observe the *physical* traffic landing in the device's tiers,
// with zero host-side sampling cost (arXiv 2403.18702). It is TMP's
// fourth evidence source, alongside IBS/PEBS trace sampling, PTE A-bit
// scanning, and HWPC gating.
//
// The tracker's properties mirror the hardware it models:
//
//   - It sees only accesses served by device tiers (TierSpec.Device).
//     DRAM-resident pages are invisible to it — exactly the asymmetry
//     HM-Keeper exploits: the device profiles the pages that matter
//     for promotion, and the host mechanisms cover the fast tier.
//   - Counters are physical. A counter belongs to a frame, not a
//     logical page; when the host remaps a frame between flushes the
//     staged count credits whatever page owns the frame at flush time,
//     and counts whose frame was freed are dropped (Vanished).
//   - The counter table is bounded and direct-mapped (frame modulo
//     table size, tagged). A colliding frame whose slot is held by
//     another live count is dropped and counted (Collisions) — the
//     device cannot chase overflow chains at line rate.
//   - Observation costs the host nothing. The only host-visible cost
//     is the flush at epoch cut, which the simulator treats as free
//     DMA; ObserveRetire always returns 0 virtual ns.
//
// Failure modes are fault.Sites expressed through typed sentinels:
// devprof.overflow (ErrOverflow) loses the staged batch the way a
// wrapped hot-page queue does, devprof.stale (ErrStale) makes a flush
// deliver nothing while counts carry over. The profiler's quarantine
// judges the tracker by the same lost/attempts rule as the host
// mechanisms and permanently disables it past the threshold.
package devprof

import (
	"errors"
	"fmt"

	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/telemetry"
	"tieredmem/internal/trace"
)

// Typed sentinels for the flush path: callers branch with errors.Is.
var (
	// ErrOverflow marks a flush that found the device's bounded
	// counter queue wrapped: the staged observations are lost.
	ErrOverflow = errors.New("devprof: device counter table overflowed")
	// ErrStale marks a flush that raced the device's aggregation
	// window: nothing is delivered now, the counts arrive next flush.
	ErrStale = errors.New("devprof: device flush returned stale data")
	// ErrNoDevice rejects building a tracker on a machine with no
	// device-profiled tier.
	ErrNoDevice = errors.New("devprof: no device-profiled tier")
)

// Config parameterizes the tracker.
type Config struct {
	// Slots is the counter-table size per device tier, in entries.
	// NeoMem's FPGA holds a few thousand hot-page entries; the table
	// is direct-mapped, so a working set larger than Slots degrades
	// by collision, not by failure.
	Slots int
}

// DefaultConfig matches the NeoMem prototype's scale.
func DefaultConfig() Config { return Config{Slots: 4096} }

// Stats exposes tracker counters.
type Stats struct {
	Observed   uint64 // device-tier memory accesses staged
	Folded     uint64 // observations delivered into page descriptors
	Collisions uint64 // observations dropped: slot held by another frame
	Vanished   uint64 // staged counts whose frame was freed before flush
	Flushes    uint64

	// Fault-plane injections (zero without a plane). FaultLost are
	// staged observations discarded by injected table overflows;
	// FaultLate are observations whose delivery an injected stale
	// read deferred to a later flush. The profiler's quarantine judges
	// the tracker by (FaultLost+FaultLate) / (Folded+FaultLost+FaultLate).
	FaultOverflows uint64
	FaultLost      uint64
	FaultStale     uint64
	FaultLate      uint64
}

// FaultRate returns the injected-loss fraction of the evidence stream.
func (s Stats) FaultRate() (lost, attempts uint64) {
	lost = s.FaultLost + s.FaultLate
	return lost, s.Folded + s.FaultLost + s.FaultLate
}

// slot is one direct-mapped device counter: the frame it currently
// tracks and the staged access count. count==0 means free; the tag is
// then meaningless and the next observed frame claims the slot.
type slot struct {
	pfn   mem.PFN
	count uint32
}

// Tracker is the device-side profiler bound to one machine's physical
// memory. It implements cpu.RetireObserver.
type Tracker struct {
	cfg  Config
	phys *mem.PhysMem

	// Per-device-tier direct-mapped counter tables (dense columns, in
	// tier order), plus the tier's base PFN for slot indexing.
	tierIDs []mem.TierID
	bases   []mem.PFN
	tables  [][]slot
	// device[t] reports whether tier t is device-profiled; sized to
	// the machine's tier count for a branch-free hot path.
	device []bool

	staged   uint64
	stats    Stats
	disabled bool
	// quarantined is the sticky disabled state; no Enable reverses it.
	quarantined bool

	// faults, when non-nil, can overflow the counter table and stale
	// out flushes.
	faults *fault.Plane

	// Telemetry (nil handles no-op when telemetry is off).
	tel         *telemetry.Tracer
	ctrObserved *telemetry.Counter
	ctrFolded   *telemetry.Counter
	ctrColl     *telemetry.Counter
	ctrVan      *telemetry.Counter
	ctrFlushes  *telemetry.Counter
	ctrLost     *telemetry.Counter
	ctrStale    *telemetry.Counter
}

// New builds a tracker over every device-profiled tier of the machine.
// A machine without one is a configuration error (ErrNoDevice): the
// caller should simply not construct a tracker.
func New(cfg Config, phys *mem.PhysMem) (*Tracker, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("devprof: slot count %d must be positive", cfg.Slots)
	}
	tk := &Tracker{cfg: cfg, phys: phys, device: make([]bool, phys.Tiers())}
	for t := 0; t < phys.Tiers(); t++ {
		id := mem.TierID(t)
		if !phys.TierSpecOf(id).Device {
			continue
		}
		tk.device[t] = true
		lo, _ := phys.TierRange(id)
		tk.tierIDs = append(tk.tierIDs, id)
		tk.bases = append(tk.bases, lo)
		tk.tables = append(tk.tables, make([]slot, cfg.Slots))
	}
	if len(tk.tierIDs) == 0 {
		return nil, ErrNoDevice
	}
	return tk, nil
}

// SetTracer attaches the telemetry layer: flushes emit KindDevFlush
// events and the devprof/* counters sync per flush. Record-only.
func (tk *Tracker) SetTracer(t *telemetry.Tracer) {
	tk.tel = t
	tk.ctrObserved = t.Counter("devprof/observed")
	tk.ctrFolded = t.Counter("devprof/folded")
	tk.ctrColl = t.Counter("devprof/collisions")
	tk.ctrVan = t.Counter("devprof/vanished")
	tk.ctrFlushes = t.Counter("devprof/flushes")
	tk.ctrLost = t.Counter("devprof/fault_lost")
	tk.ctrStale = t.Counter("devprof/fault_stale")
}

// SetFaultPlane attaches the fault-injection plane. nil (the default)
// injects nothing.
func (tk *Tracker) SetFaultPlane(p *fault.Plane) { tk.faults = p }

// Enable resumes tracking; a no-op once quarantined.
func (tk *Tracker) Enable() {
	if tk.quarantined {
		return
	}
	tk.disabled = false
}

// Disable pauses tracking.
func (tk *Tracker) Disable() { tk.disabled = true }

// Quarantine disables the tracker permanently: the profiler decided
// its injected-fault rate makes the device evidence corrupt.
func (tk *Tracker) Quarantine() {
	tk.quarantined = true
	tk.disabled = true
}

// Quarantined reports whether the tracker is permanently off.
func (tk *Tracker) Quarantined() bool { return tk.quarantined }

// Stats returns a copy of the tracker counters.
func (tk *Tracker) Stats() Stats { return tk.stats }

// ObserveRetire implements cpu.RetireObserver: accesses served by a
// device tier bump that frame's counter slot. Always returns 0 — the
// device does the counting, the host pays nothing.
func (tk *Tracker) ObserveRetire(o *trace.Outcome, ops int) int64 {
	if tk.disabled || !o.Source.IsMemory() {
		return 0
	}
	pfn := mem.PFNOf(o.PAddr)
	t := tk.phys.TierOf(pfn)
	if !tk.device[t] {
		return 0
	}
	tk.stats.Observed++
	// Locate the tier's table. Device tiers are few (usually one);
	// a linear scan beats any map here.
	for i, id := range tk.tierIDs {
		if id != t {
			continue
		}
		tbl := tk.tables[i]
		s := &tbl[int(pfn-tk.bases[i])%len(tbl)]
		if s.count == 0 {
			s.pfn = pfn
		}
		if s.pfn != pfn {
			tk.stats.Collisions++
			return 0
		}
		if s.count != ^uint32(0) {
			s.count++
			tk.staged++
		}
		return 0
	}
	return 0
}

// FlushAt harvests the device counters into the page descriptors
// (DevEpoch) at an epoch cut, clearing the staged counts. The error is
// nil on a clean flush, or wraps ErrOverflow / ErrStale when the fault
// plane fired; either way the tracker stays consistent and the caller
// needs no recovery beyond noting the degraded epoch.
func (tk *Tracker) FlushAt(now int64) (int, error) {
	tk.stats.Flushes++
	if tk.staged == 0 {
		// Nothing staged: no fault draw (a zero-rate or idle device
		// must leave its streams untouched), no event.
		tk.syncCounters()
		return 0, nil
	}
	if tk.faults.OverflowDevCounters() {
		lost := tk.staged
		tk.stats.FaultOverflows++
		tk.stats.FaultLost += lost
		for _, tbl := range tk.tables {
			clear(tbl)
		}
		tk.staged = 0
		tk.emit(now, 0, lost, 0)
		return 0, fmt.Errorf("devprof: hot-page queue wrapped, %d staged observations lost: %w", lost, ErrOverflow)
	}
	if tk.faults.StaleDevFlush() {
		late := tk.staged
		tk.stats.FaultStale++
		tk.stats.FaultLate += late
		tk.emit(now, 0, 0, late)
		return 0, fmt.Errorf("devprof: flush raced device aggregation, %d observations deferred: %w", late, ErrStale)
	}
	folded := 0
	for i := range tk.tables {
		tbl := tk.tables[i]
		for j := range tbl {
			s := &tbl[j]
			if s.count == 0 {
				continue
			}
			pd := tk.phys.Page(s.pfn)
			if pd.Allocated() {
				// Saturating fold into the descriptor's device column.
				if sum := uint64(pd.DevEpoch) + uint64(s.count); sum < uint64(^uint32(0)) {
					pd.DevEpoch = uint32(sum)
				} else {
					pd.DevEpoch = ^uint32(0)
				}
				folded += int(s.count)
			} else {
				tk.stats.Vanished += uint64(s.count)
			}
			s.count = 0
		}
	}
	tk.stats.Folded += uint64(folded)
	tk.staged = 0
	tk.emit(now, uint64(folded), 0, 0)
	return folded, nil
}

// emit records one flush's telemetry and syncs the counters.
func (tk *Tracker) emit(now int64, folded, lost, late uint64) {
	if !tk.tel.Enabled() {
		return
	}
	tk.tel.EmitDevFlush(now, folded, lost, late)
	tk.syncCounters()
}

// syncCounters publishes the stats snapshot to the registry.
func (tk *Tracker) syncCounters() {
	if !tk.tel.Enabled() {
		return
	}
	tk.ctrObserved.Set(tk.stats.Observed)
	tk.ctrFolded.Set(tk.stats.Folded)
	tk.ctrColl.Set(tk.stats.Collisions)
	tk.ctrVan.Set(tk.stats.Vanished)
	tk.ctrFlushes.Set(tk.stats.Flushes)
	tk.ctrLost.Set(tk.stats.FaultLost)
	tk.ctrStale.Set(tk.stats.FaultStale)
}
