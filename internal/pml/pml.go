// Package pml models Intel's Page-Modification Logging (§II-B): when
// enabled, every store whose page walk sets a previously clear PTE
// D bit appends the write's physical address (4 KiB aligned) to a
// 512-entry in-memory log; a full log raises a notification so system
// software can drain it. The paper focuses on the A bit for
// performance profiling and cites PML as the automated D-bit
// collection mechanism; this package implements it as an optional
// fourth evidence source (write-path heat), which the WriteBiased
// placement policy consumes on media with asymmetric write cost.
package pml

import (
	"fmt"

	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

// LogEntries is the architectural PML log size.
const LogEntries = 512

// Config parameterizes the engine.
type Config struct {
	// LogSize overrides the 512-entry architectural log (tests use
	// smaller logs; 0 means architectural).
	LogSize int
	// DrainCost is the virtual-ns cost of the log-full notification
	// plus draining one full log (a VM-exit-class event).
	DrainCost int64
	// PerEntryCost is the hardware append cost charged per logged
	// write (tiny; the log write is a cache store).
	PerEntryCost int64
}

// DefaultConfig returns production settings.
func DefaultConfig() Config {
	return Config{LogSize: LogEntries, DrainCost: 4000, PerEntryCost: 2}
}

// Stats exposes engine counters.
type Stats struct {
	Logged     uint64 // D-bit-set events appended
	Drains     uint64 // log-full notifications
	OverheadNS int64
}

// Engine is the PML device. It implements cpu.RetireObserver.
type Engine struct {
	cfg      Config
	phys     *mem.PhysMem
	log      []uint64 // physical page addresses
	stats    Stats
	disabled bool
	// onDrain, when set, observes each drained batch.
	onDrain func(pages []uint64)
}

// New builds an engine bound to physical memory. phys may be nil if
// only raw logging is wanted.
func New(cfg Config, phys *mem.PhysMem) (*Engine, error) {
	if cfg.LogSize == 0 {
		cfg.LogSize = LogEntries
	}
	if cfg.LogSize < 1 {
		return nil, fmt.Errorf("pml: log size %d must be positive", cfg.LogSize)
	}
	return &Engine{
		cfg:  cfg,
		phys: phys,
		log:  make([]uint64, 0, cfg.LogSize),
	}, nil
}

// SetDrainObserver registers a hook that sees each drained batch of
// 4 KiB-aligned physical addresses.
func (e *Engine) SetDrainObserver(fn func(pages []uint64)) { e.onDrain = fn }

// Enable resumes logging.
func (e *Engine) Enable() { e.disabled = false }

// Disable pauses logging.
func (e *Engine) Disable() { e.disabled = true }

// Enabled reports whether logging is active.
func (e *Engine) Enabled() bool { return !e.disabled }

// ObserveRetire implements cpu.RetireObserver: log D-bit-set events.
func (e *Engine) ObserveRetire(o *trace.Outcome, ops int) int64 {
	if e.disabled || !o.DirtySet {
		return 0
	}
	e.log = append(e.log, o.PAddr&^uint64(mem.PageMask))
	e.stats.Logged++
	cost := e.cfg.PerEntryCost
	if len(e.log) == cap(e.log) {
		cost += e.drain()
	}
	e.stats.OverheadNS += cost
	return cost
}

// drain empties the log into the page descriptors (WriteEpoch) and the
// observer, returning the notification cost.
func (e *Engine) drain() int64 {
	if len(e.log) == 0 {
		return 0
	}
	e.stats.Drains++
	if e.phys != nil {
		for _, paddr := range e.log {
			pd := e.phys.PhysToPage(paddr)
			if pd.WriteEpoch != ^uint32(0) {
				pd.WriteEpoch++
			}
		}
	}
	if e.onDrain != nil {
		e.onDrain(e.log)
	}
	e.log = e.log[:0]
	return e.cfg.DrainCost
}

// Flush drains any partial log immediately (epoch horizon).
func (e *Engine) Flush() {
	cost := e.drain()
	e.stats.OverheadNS += cost
}

// Pending returns the current log occupancy.
func (e *Engine) Pending() int { return len(e.log) }

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }
