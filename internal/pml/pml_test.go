package pml

import (
	"testing"

	"tieredmem/internal/mem"
	"tieredmem/internal/trace"
)

func dirtyOutcome(paddr uint64) *trace.Outcome {
	return &trace.Outcome{
		Ref:      trace.Ref{PID: 1, Kind: trace.Store},
		PAddr:    paddr,
		DirtySet: true,
	}
}

func TestLogsOnlyDirtySetEvents(t *testing.T) {
	e, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.ObserveRetire(&trace.Outcome{Ref: trace.Ref{Kind: trace.Store}}, 3) // D already set
	e.ObserveRetire(&trace.Outcome{Ref: trace.Ref{Kind: trace.Load}}, 3)
	if e.Stats().Logged != 0 {
		t.Errorf("logged %d events without DirtySet", e.Stats().Logged)
	}
	e.ObserveRetire(dirtyOutcome(0x1234), 3)
	if e.Stats().Logged != 1 || e.Pending() != 1 {
		t.Errorf("DirtySet event not logged")
	}
}

func TestLogFullDrainsIntoDescriptors(t *testing.T) {
	phys, err := mem.NewPhysMem(mem.DefaultTiers(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	pfn, _ := phys.Alloc(mem.FastTier, 1, 0)
	cfg := Config{LogSize: 4, DrainCost: 1000, PerEntryCost: 1}
	e, _ := New(cfg, phys)
	var batches int
	e.SetDrainObserver(func(pages []uint64) {
		batches++
		if len(pages) != 4 {
			t.Errorf("drained batch of %d, want 4", len(pages))
		}
	})
	var charged int64
	for i := 0; i < 4; i++ {
		charged += e.ObserveRetire(dirtyOutcome(pfn.PAddrOf()+uint64(i)), 3)
	}
	if batches != 1 {
		t.Fatalf("drains = %d, want 1 at log-full", batches)
	}
	if phys.Page(pfn).WriteEpoch != 4 {
		t.Errorf("WriteEpoch = %d, want 4", phys.Page(pfn).WriteEpoch)
	}
	// The fourth append paid the drain notification.
	if charged < 1000 {
		t.Errorf("drain cost not charged: %d", charged)
	}
	if e.Pending() != 0 {
		t.Errorf("log not emptied")
	}
}

func TestFlushDrainsPartial(t *testing.T) {
	phys, _ := mem.NewPhysMem(mem.DefaultTiers(8, 8))
	pfn, _ := phys.Alloc(mem.FastTier, 1, 0)
	e, _ := New(DefaultConfig(), phys)
	e.ObserveRetire(dirtyOutcome(pfn.PAddrOf()), 3)
	e.Flush()
	if phys.Page(pfn).WriteEpoch != 1 {
		t.Errorf("partial flush lost the entry")
	}
	// Idempotent.
	e.Flush()
	if phys.Page(pfn).WriteEpoch != 1 {
		t.Errorf("double flush double-counted")
	}
}

func TestEnableDisable(t *testing.T) {
	e, _ := New(DefaultConfig(), nil)
	e.Disable()
	e.ObserveRetire(dirtyOutcome(0x1000), 3)
	if e.Stats().Logged != 0 {
		t.Errorf("disabled engine logged")
	}
	e.Enable()
	e.ObserveRetire(dirtyOutcome(0x1000), 3)
	if e.Stats().Logged != 1 {
		t.Errorf("re-enabled engine not logging")
	}
}

func TestAddressesPageAligned(t *testing.T) {
	e, _ := New(DefaultConfig(), nil)
	var got []uint64
	e.SetDrainObserver(func(pages []uint64) { got = append(got, pages...) })
	e.ObserveRetire(dirtyOutcome(0x12345), 3)
	e.Flush()
	if len(got) != 1 || got[0] != 0x12000 {
		t.Errorf("logged address %v, want [0x12000]", got)
	}
}

func TestBadLogSize(t *testing.T) {
	if _, err := New(Config{LogSize: -1}, nil); err == nil {
		t.Errorf("negative log size accepted")
	}
}
