package numa

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
	"tieredmem/internal/order"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func twoSocket() Topology {
	return Topology{
		Sockets:             2,
		CoresPerSocket:      1,
		RemoteFactor:        1.6,
		DRAMFramesPerSocket: 64,
		NVMFrames:           256,
	}
}

func numaMachine(t *testing.T, topo Topology, pol AllocPolicy) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = topo.Sockets * topo.CoresPerSocket
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, topo.Tiers())
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Attach(m, pol); err != nil {
		t.Fatal(err)
	}
	return m
}

func load(pid int, vaddr uint64) trace.Ref {
	return trace.Ref{PID: pid, VAddr: vaddr, Kind: trace.Load}
}

func TestValidate(t *testing.T) {
	good := twoSocket()
	if err := good.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
	bad := twoSocket()
	bad.RemoteFactor = 0.5
	if err := bad.Validate(); err == nil {
		t.Errorf("sub-1 remote factor accepted")
	}
}

func TestTiersLayout(t *testing.T) {
	topo := twoSocket()
	tiers := topo.Tiers()
	if len(tiers) != 3 {
		t.Fatalf("tiers = %d, want 2 DRAM + 1 NVM", len(tiers))
	}
	if tiers[0].Name != "dram-node0" || tiers[2].Name != "nvm-node" {
		t.Errorf("tier names wrong: %v", tiers)
	}
	if topo.NVMTier() != 2 {
		t.Errorf("NVM tier = %d", topo.NVMTier())
	}
}

func TestSocketOf(t *testing.T) {
	topo := Topology{Sockets: 2, CoresPerSocket: 3}
	cases := map[int]int{0: 0, 2: 0, 3: 1, 5: 1, 99: 1}
	for _, core := range order.SortedKeys(cases) {
		if got := topo.SocketOf(core); got != cases[core] {
			t.Errorf("SocketOf(%d) = %d, want %d", core, got, cases[core])
		}
	}
}

func TestLocalFirstAllocatesOnHomeSocket(t *testing.T) {
	topo := twoSocket()
	m := numaMachine(t, topo, LocalFirst)
	// PID 1 -> core 0 (socket 0); PID 2 -> core 1 (socket 1).
	if _, err := m.Execute(load(1, 0x1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute(load(2, 0x1000)); err != nil {
		t.Fatal(err)
	}
	pfn1, _ := m.Table(1).Frame(mem.VPNOf(0x1000))
	pfn2, _ := m.Table(2).Frame(mem.VPNOf(0x1000))
	if m.Phys.TierOf(pfn1) != 0 {
		t.Errorf("pid 1's page on tier %v, want socket 0", m.Phys.TierOf(pfn1))
	}
	if m.Phys.TierOf(pfn2) != 1 {
		t.Errorf("pid 2's page on tier %v, want socket 1", m.Phys.TierOf(pfn2))
	}
}

func TestLocalFirstSpillsRemoteThenNVM(t *testing.T) {
	topo := twoSocket()
	m := numaMachine(t, topo, LocalFirst)
	// Fill socket 0 (64 frames) from pid 1.
	for i := uint64(0); i < 64; i++ {
		if _, err := m.Execute(load(1, i*4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Next allocation spills to socket 1.
	m.Execute(load(1, 64*4096))
	pfn, _ := m.Table(1).Frame(64)
	if m.Phys.TierOf(pfn) != 1 {
		t.Fatalf("spill went to tier %v, want remote socket 1", m.Phys.TierOf(pfn))
	}
	// Fill socket 1 too, then NVM takes over.
	for i := uint64(65); i < 129; i++ {
		m.Execute(load(1, i*4096))
	}
	pfn, ok := m.Table(1).Frame(128)
	if !ok {
		t.Fatalf("page 128 unmapped")
	}
	if m.Phys.TierOf(pfn) != topo.NVMTier() {
		t.Errorf("second spill went to tier %v, want NVM", m.Phys.TierOf(pfn))
	}
}

func TestInterleaveSpreadsAcrossSockets(t *testing.T) {
	topo := twoSocket()
	m := numaMachine(t, topo, Interleave)
	counts := map[mem.TierID]int{}
	for i := uint64(0); i < 40; i++ {
		if _, err := m.Execute(load(1, i*4096)); err != nil {
			t.Fatal(err)
		}
		pfn, _ := m.Table(1).Frame(mem.VPN(i))
		counts[m.Phys.TierOf(pfn)]++
	}
	if counts[0] != 20 || counts[1] != 20 {
		t.Errorf("interleave split = %v, want 20/20", counts)
	}
}

func TestRemoteAccessChargesPremium(t *testing.T) {
	topo := twoSocket()
	m := numaMachine(t, topo, Interleave)
	// Two cold pages from pid 1 (core 0): one lands local (socket 0),
	// one remote (socket 1) under interleaving. Copy latencies out —
	// the Outcome pointer is reused per core.
	o1, _ := m.Execute(load(1, 0x0000)) // socket 0: local
	localLat := o1.Latency
	o2, _ := m.Execute(load(1, 0x1000)) // socket 1: remote
	remoteLat := o2.Latency
	if remoteLat <= localLat {
		t.Errorf("remote access (%d ns) not above local (%d ns)", remoteLat, localLat)
	}
	// The premium is the DRAM read latency scaled by RemoteFactor:
	// 80 * 0.6 = 48 extra ns.
	if remoteLat-localLat != 48 {
		t.Errorf("remote premium = %d ns, want 48", remoteLat-localLat)
	}
}

func TestLocalFirstBeatsInterleaveForPrivateWorkingSets(t *testing.T) {
	// Per-process private data: local-first keeps every access on the
	// home socket; interleave sends half of them across the fabric.
	run := func(pol AllocPolicy) int64 {
		topo := twoSocket()
		m := numaMachine(t, topo, pol)
		for round := 0; round < 50; round++ {
			for pid := 1; pid <= 2; pid++ {
				for i := uint64(0); i < 32; i++ {
					// Large strides defeat the caches via set pressure.
					if _, err := m.Execute(load(pid, i*4096)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return m.Now()
	}
	local := run(LocalFirst)
	inter := run(Interleave)
	if local >= inter {
		t.Errorf("local-first (%d ns) not faster than interleave (%d ns) on private working sets", local, inter)
	}
}

func TestAttachRejectsBadPolicy(t *testing.T) {
	topo := twoSocket()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	m, err := cpu.NewMachine(cfg, topo.Tiers())
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Attach(m, AllocPolicy(99)); err == nil {
		t.Errorf("unknown policy accepted")
	}
}
