// Package numa arranges the simulated machine as a multi-socket NUMA
// system with NVM exposed as a CPU-less node — the configuration the
// Linux community proposals the paper cites (§II-A, [11][12]) converge
// on: each socket owns a local DRAM node, NVM hangs off the system as
// a node with no CPUs, and all of it shares one physical address
// space. The paper's point stands either way: the profiling problem
// ("which pages are hot?") is identical whether the slow region is a
// remote socket or an NVM DIMM, so TMP "benefits both NUMA and tiered
// memory".
//
// The package supplies three pieces that bolt onto a cpu.Machine:
// a tier layout (one DRAM tier per socket plus the NVM tier), a
// latency adjuster that charges remote-socket DRAM its interconnect
// premium, and fault handlers implementing local-first and interleaved
// allocation.
package numa

import (
	"fmt"

	"tieredmem/internal/cpu"
	"tieredmem/internal/mem"
)

// Topology describes the socket layout.
type Topology struct {
	// Sockets is the number of CPU-ful nodes.
	Sockets int
	// CoresPerSocket partitions the machine's cores across sockets
	// (core i lives on socket i / CoresPerSocket).
	CoresPerSocket int
	// RemoteFactor multiplies DRAM latency for cross-socket accesses
	// (typical 2-hop NUMA factors are 1.4-2.1).
	RemoteFactor float64
	// DRAMFramesPerSocket sizes each socket's local memory.
	DRAMFramesPerSocket int
	// NVMFrames sizes the CPU-less node.
	NVMFrames int
}

// Validate reports configuration errors.
func (t Topology) Validate() error {
	if t.Sockets < 1 {
		return fmt.Errorf("numa: sockets %d must be positive", t.Sockets)
	}
	if t.CoresPerSocket < 1 {
		return fmt.Errorf("numa: cores per socket %d must be positive", t.CoresPerSocket)
	}
	if t.RemoteFactor < 1 {
		return fmt.Errorf("numa: remote factor %v must be >= 1", t.RemoteFactor)
	}
	if t.DRAMFramesPerSocket < 1 || t.NVMFrames < 0 {
		return fmt.Errorf("numa: frame counts invalid")
	}
	return nil
}

// Tiers builds the machine's tier layout: sockets' DRAM nodes first
// (tier i = socket i), then the CPU-less NVM node.
func (t Topology) Tiers() []mem.TierSpec {
	var specs []mem.TierSpec
	for i := 0; i < t.Sockets; i++ {
		specs = append(specs, mem.TierSpec{
			Name:         fmt.Sprintf("dram-node%d", i),
			Frames:       t.DRAMFramesPerSocket,
			ReadLatency:  80,
			WriteLatency: 80,
		})
	}
	if t.NVMFrames > 0 {
		specs = append(specs, mem.TierSpec{
			Name:         "nvm-node",
			Frames:       t.NVMFrames,
			ReadLatency:  320,
			WriteLatency: 640,
		})
	}
	return specs
}

// NVMTier returns the CPU-less node's tier ID.
func (t Topology) NVMTier() mem.TierID { return mem.TierID(t.Sockets) }

// SocketOf maps a core to its socket.
func (t Topology) SocketOf(coreID int) int {
	s := coreID / t.CoresPerSocket
	if s >= t.Sockets {
		s = t.Sockets - 1
	}
	return s
}

// Adjuster returns the latency hook: local DRAM at base cost, remote
// DRAM at RemoteFactor times base, NVM unadjusted (its tier latency
// already includes the media cost; it is equidistant in this layout).
func (t Topology) Adjuster() func(coreID int, tier mem.TierID, base int64) int64 {
	return func(coreID int, tier mem.TierID, base int64) int64 {
		if int(tier) >= t.Sockets {
			return base // NVM node
		}
		if int(tier) == t.SocketOf(coreID) {
			return base
		}
		return int64(float64(base) * t.RemoteFactor)
	}
}

// Attach configures a machine with the topology's latency adjuster and
// the given allocation policy.
func (t Topology) Attach(m *cpu.Machine, policy AllocPolicy) error {
	if err := t.Validate(); err != nil {
		return err
	}
	m.SetLatencyAdjuster(t.Adjuster())
	switch policy {
	case LocalFirst:
		m.SetFaultHandler(t.localFirstFault(m))
	case Interleave:
		m.SetFaultHandler(t.interleaveFault(m))
	default:
		return fmt.Errorf("numa: unknown allocation policy %d", policy)
	}
	return nil
}

// AllocPolicy selects the demand-allocation strategy.
type AllocPolicy int

const (
	// LocalFirst allocates on the faulting core's socket, spilling to
	// the other sockets and then NVM — Linux's default NUMA policy.
	LocalFirst AllocPolicy = iota
	// Interleave round-robins allocations across the DRAM nodes, the
	// bandwidth-oriented alternative.
	Interleave
)

// localFirstFault prefers the faulting process's socket.
func (t Topology) localFirstFault(m *cpu.Machine) cpu.FaultHandler {
	return func(pid int, vpn mem.VPN, write bool) (mem.PFN, error) {
		home := t.SocketOf(m.CoreFor(pid).ID)
		// Local node, then the other sockets, then NVM (Alloc spills
		// to every tier at or below the starting one, so start local
		// and fall back explicitly for the wrap-around sockets).
		if pfn, err := m.Phys.AllocIn(mem.TierID(home), pid, vpn); err == nil {
			return pfn, nil
		}
		for s := 0; s < t.Sockets; s++ {
			if s == home {
				continue
			}
			if pfn, err := m.Phys.AllocIn(mem.TierID(s), pid, vpn); err == nil {
				return pfn, nil
			}
		}
		return m.Phys.AllocIn(t.NVMTier(), pid, vpn)
	}
}

// interleaveFault round-robins across sockets.
func (t Topology) interleaveFault(m *cpu.Machine) cpu.FaultHandler {
	next := 0
	return func(pid int, vpn mem.VPN, write bool) (mem.PFN, error) {
		for attempt := 0; attempt < t.Sockets; attempt++ {
			s := next % t.Sockets
			next++
			if pfn, err := m.Phys.AllocIn(mem.TierID(s), pid, vpn); err == nil {
				return pfn, nil
			}
		}
		return m.Phys.AllocIn(t.NVMTier(), pid, vpn)
	}
}
