// Package order provides deterministic map-iteration helpers. Go map
// iteration order is deliberately randomized, so any loop whose effect
// depends on visit order — building a report row list, accumulating
// floats, picking migration victims — is a latent nondeterminism bug
// that breaks the simulator's same-seed-same-output contract
// (DESIGN.md §2). Routing iteration through SortedKeys (or the Func
// variants) pins a total order and is the sanctioned fix for findings
// from the tmplint maprange and floatsum analyzers.
package order

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. The returned slice
// is freshly allocated; an empty or nil map yields an empty slice.
func SortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// SortedKeysFunc returns m's keys ordered by less, for key types that
// are not cmp.Ordered (structs such as core.PageKey). less must define
// a strict weak order that distinguishes all keys, or the result is
// not fully deterministic.
func SortedKeysFunc[M ~map[K]V, K comparable, V any](m M, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}

// Sum returns the sum of m's values in ascending key order. For
// floating-point V this makes rounding deterministic across runs;
// prefer it over open-coded accumulation inside a map range.
func Sum[M ~map[K]V, K cmp.Ordered, V cmp.Ordered](m M) V {
	var total V
	for _, k := range SortedKeys(m) {
		total += m[k]
	}
	return total
}
