package order

import (
	"reflect"
	"testing"
)

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 2, "a": 1, "c": 3}
	got := SortedKeys(m)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeys = %v, want %v", got, want)
	}
	if got := SortedKeys(map[int]int(nil)); len(got) != 0 {
		t.Fatalf("SortedKeys(nil) = %v, want empty", got)
	}
}

func TestSortedKeysFunc(t *testing.T) {
	type key struct{ pid, vpn int }
	m := map[key]int{
		{2, 1}: 0, {1, 9}: 0, {1, 2}: 0,
	}
	got := SortedKeysFunc(m, func(a, b key) bool {
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.vpn < b.vpn
	})
	want := []key{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedKeysFunc = %v, want %v", got, want)
	}
}

func TestSumDeterministic(t *testing.T) {
	m := map[int]float64{}
	for i := 0; i < 200; i++ {
		m[i] = 1.0 / float64(i+3)
	}
	first := Sum(m)
	for i := 0; i < 50; i++ {
		if s := Sum(m); s != first {
			t.Fatalf("Sum varied across runs: %v != %v", s, first)
		}
	}
	if intSum := Sum(map[string]int{"a": 1, "b": 2}); intSum != 3 {
		t.Fatalf("Sum = %d, want 3", intSum)
	}
}
