package abit

import (
	"testing"

	"tieredmem/internal/cache"
	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/tlb"
	"tieredmem/internal/trace"
)

func testMachine(t *testing.T, frames int) *cpu.Machine {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 2
	cfg.PrefetchDegree = 0
	cfg.CtxSwitchNS = 0
	cfg.L1D = cache.Config{SizeBytes: 4 << 10, Ways: 2}
	cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.LLC = cache.Config{SizeBytes: 64 << 10, Ways: 4}
	cfg.L1TLB = tlb.Config{Entries: 16, Ways: 4}
	cfg.L2TLB = tlb.Config{Entries: 64, Ways: 4}
	m, err := cpu.NewMachine(cfg, mem.DefaultTiers(frames, frames))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func touch(t *testing.T, m *cpu.Machine, pid int, vaddr uint64) {
	t.Helper()
	if _, err := m.Execute(trace.Ref{PID: pid, IP: 0x400000, VAddr: vaddr, Kind: trace.Load}); err != nil {
		t.Fatal(err)
	}
}

func TestScanHarvestsAndClears(t *testing.T) {
	m := testMachine(t, 64)
	sc, err := New(DefaultConfig(), m)
	if err != nil {
		t.Fatal(err)
	}
	touch(t, m, 1, 0x1000)
	touch(t, m, 1, 0x2000)
	res := sc.Scan(0, []int{1})
	if res.PagesAccessed != 2 || res.PTEsVisited != 2 {
		t.Fatalf("scan = %+v, want 2 accessed of 2 visited", res)
	}
	// A bits cleared: a second scan with no intervening accesses
	// finds nothing.
	res2 := sc.Scan(0, []int{1})
	if res2.PagesAccessed != 0 {
		t.Errorf("second scan found %d accessed pages, want 0", res2.PagesAccessed)
	}
	// Page descriptors credited.
	pfn, _ := m.Table(1).Frame(mem.VPNOf(0x1000))
	if m.Phys.Page(pfn).AbitEpoch != 1 {
		t.Errorf("AbitEpoch = %d, want 1", m.Phys.Page(pfn).AbitEpoch)
	}
}

func TestScanOnlyListedPIDs(t *testing.T) {
	m := testMachine(t, 64)
	sc, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x1000)
	touch(t, m, 2, 0x1000)
	res := sc.Scan(0, []int{1})
	if res.PTEsVisited != 1 {
		t.Errorf("visited %d PTEs, want only pid 1's single page", res.PTEsVisited)
	}
}

func TestScanCostProportionalToPTEs(t *testing.T) {
	m := testMachine(t, 256)
	cfg := DefaultConfig()
	cfg.PerPTECost = 10
	sc, _ := New(cfg, m)
	for i := uint64(0); i < 50; i++ {
		touch(t, m, 1, i*4096)
	}
	res := sc.Scan(0, []int{1})
	if res.CostNS != 500 {
		t.Errorf("cost = %d, want 50 PTEs x 10ns", res.CostNS)
	}
}

func TestHugeLeafCountsOnceCreditsAll(t *testing.T) {
	m := testMachine(t, 4*mem.HugePages)
	m.SetHugeHint(func(pid int, vpn mem.VPN) bool { return true })
	sc, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x0) // faults in a whole huge page
	var hugeSeen bool
	sc.SetLeafObserver(func(now int64, pid int, vpn mem.VPN, pfn mem.PFN, huge bool) {
		hugeSeen = huge
	})
	res := sc.Scan(0, []int{1})
	if res.PagesAccessed != 1 || res.HugeAccessed != 1 || res.PTEsVisited != 1 {
		t.Fatalf("scan = %+v, want one huge leaf", res)
	}
	if !hugeSeen {
		t.Errorf("leaf observer not told about hugeness")
	}
	// All 512 backing descriptors credited: the A bit cannot localize
	// within the chunk.
	base, _ := m.Table(1).Frame(0)
	credited := 0
	for i := 0; i < mem.HugePages; i++ {
		if m.Phys.Page(base+mem.PFN(i)).AbitEpoch == 1 {
			credited++
		}
	}
	if credited != mem.HugePages {
		t.Errorf("credited %d subpages, want %d", credited, mem.HugePages)
	}
}

func TestScanIfDueSchedule(t *testing.T) {
	m := testMachine(t, 64)
	cfg := DefaultConfig()
	cfg.Interval = 1000
	sc, _ := New(cfg, m)
	touch(t, m, 1, 0x1000)
	if _, ran := sc.ScanIfDue(999, []int{1}); ran {
		t.Errorf("scan ran before the interval")
	}
	if _, ran := sc.ScanIfDue(1000, []int{1}); !ran {
		t.Errorf("scan did not run at the interval")
	}
	if _, ran := sc.ScanIfDue(1500, []int{1}); ran {
		t.Errorf("scan re-ran inside the same interval")
	}
	if _, ran := sc.ScanIfDue(2000, []int{1}); !ran {
		t.Errorf("scan did not run at the next interval")
	}
}

func TestDisabledScannerSkipsButKeepsSchedule(t *testing.T) {
	m := testMachine(t, 64)
	cfg := DefaultConfig()
	cfg.Interval = 1000
	sc, _ := New(cfg, m)
	touch(t, m, 1, 0x1000)
	sc.Disable()
	if _, ran := sc.ScanIfDue(1000, []int{1}); ran {
		t.Errorf("disabled scanner ran")
	}
	sc.Enable()
	if _, ran := sc.ScanIfDue(2000, []int{1}); !ran {
		t.Errorf("re-enabled scanner did not resume")
	}
}

func TestShootdownModeFlushesAndCharges(t *testing.T) {
	m := testMachine(t, 64)
	cfg := DefaultConfig()
	cfg.Shootdown = true
	sc, _ := New(cfg, m)
	touch(t, m, 1, 0x1000)
	res := sc.Scan(0, []int{1})
	// With the shootdown, the next access must walk (and re-set A)
	// immediately.
	touch(t, m, 1, 0x1000)
	pte, _ := m.Table(1).Resolve(mem.VPNOf(0x1000))
	if !pte.Accessed() {
		t.Errorf("A bit not promptly re-set after shootdown scan")
	}
	if res.CostNS <= int64(res.PTEsVisited)*cfg.PerPTECost {
		t.Errorf("shootdown cost not charged: %d", res.CostNS)
	}
}

func TestNoShootdownStaleness(t *testing.T) {
	// Without the shootdown, a TLB-resident page's A bit stays clear:
	// the paper's documented artifact, end to end through the driver.
	m := testMachine(t, 64)
	sc, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x1000)
	sc.Scan(0, []int{1})
	touch(t, m, 1, 0x1000) // TLB hit: no walk
	res := sc.Scan(0, []int{1})
	if res.PagesAccessed != 0 {
		t.Errorf("stale-TLB page reported accessed; shootdown-free semantics broken")
	}
}

func TestBadConfig(t *testing.T) {
	m := testMachine(t, 16)
	if _, err := New(Config{Interval: 0}, m); err == nil {
		t.Errorf("zero interval accepted")
	}
	if _, err := New(Config{Interval: 1, PerPTECost: -1}, m); err == nil {
		t.Errorf("negative cost accepted")
	}
}

func TestFaultAbortedScanVisitsPrefix(t *testing.T) {
	m := testMachine(t, 256)
	sc, _ := New(DefaultConfig(), m)
	const pages = 50
	for i := uint64(0); i < pages; i++ {
		touch(t, m, 1, i*4096)
	}
	spec, _ := fault.ParseSpec("abit.abort=1")
	sc.SetFaultPlane(fault.New(spec, 11))
	res := sc.Scan(0, []int{1})
	if !res.Aborted {
		t.Fatalf("rate-1 abort did not fire")
	}
	if res.PTEsVisited >= pages {
		t.Errorf("aborted scan visited all %d PTEs", res.PTEsVisited)
	}
	if sc.Stats().Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", sc.Stats().Aborts)
	}
	// A bits past the abort point survived: a clean rescan finds the
	// un-harvested remainder (and only it).
	sc.SetFaultPlane(nil)
	res2 := sc.Scan(0, []int{1})
	if got := res.PagesAccessed + res2.PagesAccessed; got != pages {
		t.Errorf("aborted + clean scans harvested %d pages, want %d", got, pages)
	}
	if res2.PagesAccessed == 0 {
		t.Errorf("abort left nothing for the rescan; abort landed after the last page")
	}
}

func TestFaultAbortDeterministic(t *testing.T) {
	spec, _ := fault.ParseSpec("abit.abort=0.5")
	run := func() []int {
		m := testMachine(t, 256)
		sc, _ := New(DefaultConfig(), m)
		for i := uint64(0); i < 40; i++ {
			touch(t, m, 1, i*4096)
		}
		sc.SetFaultPlane(fault.New(spec, 5))
		var visited []int
		for e := 0; e < 8; e++ {
			res := sc.Scan(int64(e), []int{1})
			visited = append(visited, res.PTEsVisited)
		}
		return visited
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at scan %d: %v vs %v", i, a, b)
		}
	}
}

func TestQuarantineSticky(t *testing.T) {
	m := testMachine(t, 64)
	sc, _ := New(DefaultConfig(), m)
	touch(t, m, 1, 0x1000)
	sc.Quarantine()
	if !sc.Quarantined() || sc.Enabled() {
		t.Fatalf("Quarantine did not disable")
	}
	sc.Enable() // HWPC gate reopening must not resurrect it
	if sc.Enabled() {
		t.Errorf("Enable resurrected a quarantined scanner")
	}
	if _, ran := sc.ScanIfDue(sc.Interval(), []int{1}); ran {
		t.Errorf("quarantined scanner ran")
	}
}

func TestZeroRatePlaneInertScan(t *testing.T) {
	run := func(p *fault.Plane) ScanResult {
		m := testMachine(t, 256)
		sc, _ := New(DefaultConfig(), m)
		for i := uint64(0); i < 30; i++ {
			touch(t, m, 1, i*4096)
		}
		sc.SetFaultPlane(p)
		return sc.Scan(0, []int{1})
	}
	if a, b := run(nil), run(fault.New(fault.Spec{}, 42)); a != b {
		t.Errorf("zero-rate plane perturbed the scan: %+v vs %+v", a, b)
	}
}
