// Package abit implements TMP's A-bit driver (§III-B2): a software
// mechanism that periodically walks the page tables of profiled
// processes, test-and-clears the PTE Accessed bit of every valid
// entry, and accumulates the observations in the page descriptors.
//
// Following the paper's third optimization, the driver does NOT issue
// a TLB shootdown after clearing A bits by default: on x86, clearing
// the accessed bit without a flush cannot corrupt data, and the stale
// TLB entry merely delays the next A-bit set until natural eviction.
// The simulated TLB reproduces that artifact faithfully. A
// configuration option restores the shootdown for software that
// requires it (and for the ablation benchmarks).
package abit

import (
	"fmt"

	"tieredmem/internal/cpu"
	"tieredmem/internal/fault"
	"tieredmem/internal/mem"
	"tieredmem/internal/pagetable"
	"tieredmem/internal/telemetry"
)

// Config parameterizes the driver.
type Config struct {
	// Interval is the virtual-ns period between scans (the paper
	// walks page tables every second).
	Interval int64
	// PerPTECost is the virtual-ns cost of visiting one valid PTE
	// (TestClearPageReferenced plus bookkeeping).
	PerPTECost int64
	// Shootdown, when true, flushes all TLBs after every scan (the
	// expensive configuration the paper's optimization avoids).
	Shootdown bool
}

// DefaultConfig returns the paper's production configuration: 1-second
// scans, no shootdown.
func DefaultConfig() Config {
	return Config{
		Interval:   1_000_000_000,
		PerPTECost: 20,
		Shootdown:  false,
	}
}

// Stats exposes driver counters.
type Stats struct {
	Scans         uint64
	PTEsVisited   uint64
	PagesAccessed uint64 // leaf PTEs found with A set across all scans
	HugeAccessed  uint64 // of those, 2 MiB leaves
	OverheadNS    int64

	// Aborts counts scans the fault plane cut short mid-walk. An
	// aborted scan harvests (and clears) only a prefix of the mapped
	// leaves, so its evidence under-reports every region after the
	// abort point.
	Aborts uint64
}

// FaultRate returns injected-fault failures over attempts for the
// profiler's quarantine arithmetic: aborted scans over scans run.
func (s Stats) FaultRate() (failures, attempts uint64) {
	return s.Aborts, s.Scans
}

// LeafObserver is notified of every leaf PTE found with its A bit set
// during a scan; experiment harnesses use it to build detection sets
// (Table IV) and heatmaps (Fig. 4). now is the virtual scan time; vpn
// is the leaf's base virtual page and pfn its base frame.
type LeafObserver func(now int64, pid int, vpn mem.VPN, pfn mem.PFN, huge bool)

// Scanner is the A-bit driver bound to one machine.
type Scanner struct {
	cfg      Config
	machine  *cpu.Machine
	stats    Stats
	disabled bool
	// quarantined is the sticky disabled state: once the profiler
	// parks the mechanism here, no Enable may resurrect it.
	quarantined bool
	nextScan    int64
	onLeaf      LeafObserver
	// faults, when non-nil, can abort walks partway.
	faults *fault.Plane

	// Telemetry (nil handles no-op when telemetry is off).
	tel         *telemetry.Tracer
	ctrScans    *telemetry.Counter
	ctrPTEs     *telemetry.Counter
	ctrPages    *telemetry.Counter
	ctrHuge     *telemetry.Counter
	ctrOverhead *telemetry.Counter
}

// SetTracer attaches the telemetry layer: every scan emits a
// KindAbitScan span and syncs the abit/* counters. Record-only — scan
// scheduling, costs, and results are unchanged.
func (s *Scanner) SetTracer(t *telemetry.Tracer) {
	s.tel = t
	s.ctrScans = t.Counter("abit/scans")
	s.ctrPTEs = t.Counter("abit/ptes_visited")
	s.ctrPages = t.Counter("abit/pages_accessed")
	s.ctrHuge = t.Counter("abit/huge_accessed")
	s.ctrOverhead = t.Counter("abit/overhead_ns")
}

// New builds a scanner.
func New(cfg Config, m *cpu.Machine) (*Scanner, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("abit: interval %d must be positive", cfg.Interval)
	}
	if cfg.PerPTECost < 0 {
		return nil, fmt.Errorf("abit: per-PTE cost %d must be non-negative", cfg.PerPTECost)
	}
	return &Scanner{cfg: cfg, machine: m, nextScan: cfg.Interval}, nil
}

// Enable resumes scanning (HWPC gating toggles this); a no-op once the
// scanner is quarantined.
func (s *Scanner) Enable() {
	if s.quarantined {
		return
	}
	s.disabled = false
}

// Disable pauses scanning.
func (s *Scanner) Disable() { s.disabled = true }

// Enabled reports whether scans run.
func (s *Scanner) Enabled() bool { return !s.disabled }

// Quarantine disables scanning permanently: the profiler decided this
// mechanism's fault rate makes its evidence corrupt. Unlike Disable,
// no later Enable reverses it.
func (s *Scanner) Quarantine() {
	s.quarantined = true
	s.disabled = true
}

// Quarantined reports whether the scanner is permanently off.
func (s *Scanner) Quarantined() bool { return s.quarantined }

// SetFaultPlane attaches the fault-injection plane. nil (the default)
// injects nothing.
func (s *Scanner) SetFaultPlane(p *fault.Plane) { s.faults = p }

// Due reports whether a scan is due at virtual time now.
func (s *Scanner) Due(now int64) bool { return now >= s.nextScan }

// ScanResult summarizes one scan.
type ScanResult struct {
	PTEsVisited   int
	PagesAccessed int // leaf PTEs with A set (a huge leaf counts once)
	HugeAccessed  int
	CostNS        int64
	// Aborted marks a scan the fault plane cut short: only a prefix of
	// the mapped leaves was visited (and only their A bits cleared).
	Aborted bool
}

// SetLeafObserver registers the per-leaf observation hook.
func (s *Scanner) SetLeafObserver(fn LeafObserver) { s.onLeaf = fn }

// ScanIfDue runs a scan when the interval has elapsed. pids selects
// the processes to walk (the TMP daemon's resource filter supplies
// this set; Table I: A-bit overhead is proportional to the PIDs
// covered). The returned cost has already been added to the stats; the
// caller charges it to the core running the daemon.
func (s *Scanner) ScanIfDue(now int64, pids []int) (ScanResult, bool) {
	if !s.Due(now) {
		return ScanResult{}, false
	}
	// Schedule strictly forward even if the caller checked late.
	for s.nextScan <= now {
		s.nextScan += s.cfg.Interval
	}
	if s.disabled {
		return ScanResult{}, false
	}
	return s.Scan(now, pids), true
}

// Scan walks the page tables of the given processes immediately,
// harvesting and clearing A bits — gather_a_history() in the paper.
// A 2 MiB leaf yields one observation (one PTE, one A bit): that
// observation is credited to all 512 backing frames' descriptors,
// because the A bit genuinely cannot say which 4 KiB page inside the
// huge mapping was touched. That granularity loss is real and is what
// trace-based profiling compensates for.
func (s *Scanner) Scan(now int64, pids []int) ScanResult {
	var res ScanResult
	phys := s.machine.Phys
	// budget < 0 means unlimited. When the fault plane aborts this
	// scan, the walk bails after visiting frac of the mapped leaves:
	// the cost of the visited prefix is still paid, A bits after the
	// abort point stay set (and will be re-harvested next round), and
	// every region past the abort is simply invisible this epoch.
	budget := -1
	if frac, abort := s.faults.AbortAbitScan(); abort {
		total := 0
		for _, pid := range pids {
			if table, ok := s.machine.Tables()[pid]; ok {
				total += table.Mapped()
			}
		}
		budget = int(frac * float64(total))
		res.Aborted = true
		s.stats.Aborts++
	}
	for _, pid := range pids {
		if budget == 0 {
			break
		}
		table, ok := s.machine.Tables()[pid]
		if !ok {
			continue
		}
		visited := table.WalkRange(func(vpn mem.VPN, pte *pagetable.PTE, huge bool) bool {
			if budget == 0 {
				return false
			}
			if budget > 0 {
				budget--
			}
			if !pte.Accessed() {
				return true
			}
			res.PagesAccessed++
			base := pte.PFN()
			if huge {
				res.HugeAccessed++
				for i := 0; i < mem.HugePages; i++ {
					pd := phys.Page(base + mem.PFN(i))
					if pd.AbitEpoch != ^uint32(0) {
						pd.AbitEpoch++
					}
				}
			} else {
				pd := phys.Page(base)
				if pd.AbitEpoch != ^uint32(0) {
					pd.AbitEpoch++
				}
			}
			if s.onLeaf != nil {
				s.onLeaf(now, pid, vpn, base, huge)
			}
			*pte &^= pagetable.BitAccessed
			return true
		})
		res.PTEsVisited += visited
	}
	res.CostNS = s.machine.SoftCost(int64(res.PTEsVisited) * s.cfg.PerPTECost)
	if s.cfg.Shootdown {
		res.CostNS += s.machine.FlushAllTLBs()
	}
	s.stats.Scans++
	s.stats.PTEsVisited += uint64(res.PTEsVisited)
	s.stats.PagesAccessed += uint64(res.PagesAccessed)
	s.stats.HugeAccessed += uint64(res.HugeAccessed)
	s.stats.OverheadNS += res.CostNS
	s.ctrScans.Set(s.stats.Scans)
	s.ctrPTEs.Set(s.stats.PTEsVisited)
	s.ctrPages.Set(s.stats.PagesAccessed)
	s.ctrHuge.Set(s.stats.HugeAccessed)
	s.ctrOverhead.Set(uint64(s.stats.OverheadNS))
	s.tel.EmitAbitScan(now, res.CostNS, res.PTEsVisited, res.PagesAccessed, res.HugeAccessed)
	return res
}

// Stats returns a copy of the counters.
func (s *Scanner) Stats() Stats { return s.stats }

// Interval returns the configured scan period.
func (s *Scanner) Interval() int64 { return s.cfg.Interval }
