// Package tlb models per-core translation lookaside buffers: a small
// L1 dTLB backed by a larger unified L2 (STLB), both set-associative
// with true-LRU replacement. Entries carry a dirty flag so the
// simulator reproduces the x86 behaviour the paper leans on: the A bit
// is only set by a page walk (so clearing A without a shootdown delays
// its re-set until the TLB entry is evicted), while a store through a
// clean TLB entry forces a walk to set the PTE's D bit regardless of
// TLB hit status (§II-B, [16]).
package tlb

import (
	"fmt"

	"tieredmem/internal/mem"
)

// Entry is one cached translation.
type Entry struct {
	VPN      mem.VPN
	PFN      mem.PFN
	Writable bool
	// Dirty mirrors the PTE D bit at fill time; a store through an
	// entry with Dirty=false must perform a page walk to set the PTE
	// D bit and then sets Dirty here.
	Dirty bool
	valid bool
	lru   uint64
}

// Config sizes one TLB level.
type Config struct {
	Entries int
	Ways    int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 {
		return fmt.Errorf("tlb: entries (%d) and ways (%d) must be positive", c.Entries, c.Ways)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: entries (%d) not divisible by ways (%d)", c.Entries, c.Ways)
	}
	return nil
}

// Stats counts hits and misses for one level.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// level is one set-associative TLB array.
type level struct {
	sets  [][]Entry
	mask  uint64
	stamp uint64
	stats Stats
}

func newLevel(c Config) *level {
	nsets := c.Entries / c.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("tlb: set count %d must be a power of two", nsets))
	}
	l := &level{sets: make([][]Entry, nsets), mask: uint64(nsets - 1)}
	for i := range l.sets {
		l.sets[i] = make([]Entry, c.Ways)
	}
	return l
}

func (l *level) lookup(vpn mem.VPN) *Entry {
	set := l.sets[uint64(vpn)&l.mask]
	for i := range set {
		if set[i].valid && set[i].VPN == vpn {
			l.stamp++
			set[i].lru = l.stamp
			l.stats.Hits++
			return &set[i]
		}
	}
	l.stats.Misses++
	return nil
}

// insert fills the translation, evicting the LRU way; it returns the
// evicted entry (valid=false when the victim slot was empty).
func (l *level) insert(e Entry) Entry {
	set := l.sets[uint64(e.VPN)&l.mask]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	old := set[victim]
	l.stamp++
	e.valid = true
	e.lru = l.stamp
	set[victim] = e
	return old
}

func (l *level) flushPage(vpn mem.VPN) bool {
	set := l.sets[uint64(vpn)&l.mask]
	for i := range set {
		if set[i].valid && set[i].VPN == vpn {
			set[i].valid = false
			return true
		}
	}
	return false
}

func (l *level) flushAll() {
	for _, set := range l.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// TLB is a two-level per-core translation cache.
type TLB struct {
	l1, l2 *level
	// Flushes counts full invalidations (context switches, IPI
	// shootdowns); FlushedPages counts single-page invalidations.
	Flushes      uint64
	FlushedPages uint64
}

// DefaultL1 and DefaultL2 size the TLB like a Zen-2-class core
// (64-entry L1 dTLB, 2048-entry L2 STLB).
var (
	DefaultL1 = Config{Entries: 64, Ways: 4}
	DefaultL2 = Config{Entries: 2048, Ways: 16}
)

// New builds a TLB with the given level configurations.
func New(l1, l2 Config) (*TLB, error) {
	if err := l1.Validate(); err != nil {
		return nil, err
	}
	if err := l2.Validate(); err != nil {
		return nil, err
	}
	return &TLB{l1: newLevel(l1), l2: newLevel(l2)}, nil
}

// MustNew is New for known-good configurations.
func MustNew(l1, l2 Config) *TLB {
	t, err := New(l1, l2)
	if err != nil {
		panic(err)
	}
	return t
}

// HitLevel identifies which TLB level served a translation.
type HitLevel int

const (
	// HitNone means both levels missed (a page walk follows).
	HitNone HitLevel = iota
	// HitL1 is a first-level dTLB hit (free).
	HitL1
	// HitL2 is an STLB hit (a couple of cycles).
	HitL2
)

// Lookup finds a cached translation and reports which level served
// it. On an L2 hit the entry is promoted into L1. The returned
// pointer stays valid until the next mutation and allows the core to
// update the Dirty flag in place.
func (t *TLB) Lookup(vpn mem.VPN) (*Entry, HitLevel) {
	if e := t.l1.lookup(vpn); e != nil {
		return e, HitL1
	}
	if e := t.l2.lookup(vpn); e != nil {
		promoted := t.l1.insert(*e)
		_ = promoted // L1 victims are simply dropped; L2 is inclusive here
		// Return the L1 copy so Dirty updates land in the closest level.
		l1e := t.l1.lookup(vpn)
		// The L1 lookup above counted a hit; undo the double count.
		t.l1.stats.Hits--
		return l1e, HitL2
	}
	return nil, HitNone
}

// Insert caches a translation in both levels after a page walk.
func (t *TLB) Insert(e Entry) {
	t.l2.insert(e)
	t.l1.insert(e)
}

// MarkDirty updates the dirty flag of a cached translation in both
// levels (after the walk that set the PTE D bit).
func (t *TLB) MarkDirty(vpn mem.VPN) {
	if e := t.l1.lookup(vpn); e != nil {
		e.Dirty = true
		t.l1.stats.Hits--
	}
	if e := t.l2.lookup(vpn); e != nil {
		e.Dirty = true
		t.l2.stats.Hits--
	}
}

// FlushPage invalidates one translation (invlpg).
func (t *TLB) FlushPage(vpn mem.VPN) {
	if t.l1.flushPage(vpn) || t.l2.flushPage(vpn) {
		t.FlushedPages++
	}
	// Both levels must be cleared even if only one held it.
	t.l2.flushPage(vpn)
}

// FlushAll invalidates every translation (CR3 reload / IPI shootdown).
func (t *TLB) FlushAll() {
	t.l1.flushAll()
	t.l2.flushAll()
	t.Flushes++
}

// L1Stats returns hit/miss counts for the first level.
func (t *TLB) L1Stats() Stats { return t.l1.stats }

// L2Stats returns hit/miss counts for the second level.
func (t *TLB) L2Stats() Stats { return t.l2.stats }

// Misses returns the count of accesses that missed both levels, i.e.
// the page-walk count attributable to translation.
func (t *TLB) Misses() uint64 { return t.l2.stats.Misses }
