package tlb

import (
	"testing"
	"testing/quick"

	"tieredmem/internal/mem"
)

func small() *TLB {
	return MustNew(Config{Entries: 8, Ways: 2}, Config{Entries: 32, Ways: 4})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Entries: 64, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Entries: 0, Ways: 4},
		{Entries: 64, Ways: 0},
		{Entries: 65, Ways: 4},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestNonPowerOfTwoSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("24 entries / 4 ways = 6 sets accepted")
		}
	}()
	MustNew(Config{Entries: 24, Ways: 4}, Config{Entries: 32, Ways: 4})
}

func TestInsertLookup(t *testing.T) {
	tl := small()
	if _, lvl := tl.Lookup(5); lvl != HitNone {
		t.Fatalf("empty TLB hit")
	}
	tl.Insert(Entry{VPN: 5, PFN: 50, Writable: true})
	e, lvl := tl.Lookup(5)
	if lvl != HitL1 || e.PFN != 50 || !e.Writable {
		t.Fatalf("Lookup after Insert = (%+v, %v)", e, lvl)
	}
}

func TestL2PromotionOnL1Miss(t *testing.T) {
	tl := small()
	tl.Insert(Entry{VPN: 1, PFN: 10})
	// Evict vpn 1 from tiny L1 by filling its set (same set index:
	// stride by set count = 4).
	for i := mem.VPN(5); i < 14; i += 4 {
		tl.Insert(Entry{VPN: i, PFN: mem.PFN(i * 10)})
	}
	l1miss := tl.L1Stats().Misses
	if _, lvl := tl.Lookup(1); lvl != HitL2 {
		t.Fatalf("expected an L2 hit for vpn 1, got %v", lvl)
	}
	if tl.L1Stats().Misses != l1miss+1 {
		t.Errorf("L1 miss not counted on L2 promotion")
	}
	// Second lookup should now hit L1 (promoted).
	if _, lvl := tl.Lookup(1); lvl != HitL1 {
		t.Fatalf("post-promotion lookup level = %v, want L1", lvl)
	}
}

func TestLRUReplacement(t *testing.T) {
	tl := small() // L1: 4 sets x 2 ways
	// Same set: VPNs congruent mod 4.
	tl.Insert(Entry{VPN: 0, PFN: 1})
	tl.Insert(Entry{VPN: 4, PFN: 2})
	tl.Lookup(0) // make 0 MRU
	tl.Insert(Entry{VPN: 8, PFN: 3})
	// L2 has 8 sets; 0, 4, 8 map to sets 0, 4, 0: vpn 8 evicts vpn 0
	// or 4 in L1 (vpn 4 is LRU). Both still in L2 though; check L1
	// directly via stats after flushing L2.
	// Instead verify that 0 and 8 hit while 4 was the L1 victim:
	// lookups hit either way through L2, so compare L1 hit counts.
	h0 := tl.L1Stats().Hits
	tl.Lookup(0)
	if tl.L1Stats().Hits != h0+1 {
		t.Errorf("MRU entry 0 was evicted from L1; LRU policy broken")
	}
}

func TestMarkDirty(t *testing.T) {
	tl := small()
	tl.Insert(Entry{VPN: 3, PFN: 30, Writable: true, Dirty: false})
	tl.MarkDirty(3)
	e, lvl := tl.Lookup(3)
	if lvl == HitNone || !e.Dirty {
		t.Errorf("MarkDirty not visible: %+v", e)
	}
}

func TestDirtyFlagUpdateInPlace(t *testing.T) {
	tl := small()
	tl.Insert(Entry{VPN: 3, PFN: 30})
	e, _ := tl.Lookup(3)
	e.Dirty = true
	e2, _ := tl.Lookup(3)
	if e2 == nil || !e2.Dirty {
		t.Errorf("in-place Dirty update lost (pointer aliasing broken)")
	}
}

func TestFlushPage(t *testing.T) {
	tl := small()
	tl.Insert(Entry{VPN: 7, PFN: 70})
	tl.FlushPage(7)
	if _, lvl := tl.Lookup(7); lvl != HitNone {
		t.Errorf("entry survived FlushPage")
	}
	if tl.FlushedPages != 1 {
		t.Errorf("FlushedPages = %d, want 1", tl.FlushedPages)
	}
}

func TestFlushAll(t *testing.T) {
	tl := small()
	for i := mem.VPN(0); i < 20; i++ {
		tl.Insert(Entry{VPN: i, PFN: mem.PFN(i)})
	}
	tl.FlushAll()
	for i := mem.VPN(0); i < 20; i++ {
		if _, lvl := tl.Lookup(i); lvl != HitNone {
			t.Fatalf("vpn %d survived FlushAll", i)
		}
	}
	if tl.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", tl.Flushes)
	}
}

func TestMissesCountsSTLBMisses(t *testing.T) {
	tl := small()
	tl.Lookup(1)
	tl.Lookup(2)
	tl.Insert(Entry{VPN: 1, PFN: 1})
	tl.Lookup(1)
	if tl.Misses() != 2 {
		t.Errorf("Misses = %d, want 2", tl.Misses())
	}
}

// TestInsertThenLookupAlwaysHits is a property: any freshly inserted
// translation must be found immediately.
func TestInsertThenLookupAlwaysHits(t *testing.T) {
	tl := MustNew(DefaultL1, DefaultL2)
	f := func(raw uint32) bool {
		vpn := mem.VPN(raw)
		tl.Insert(Entry{VPN: vpn, PFN: mem.PFN(raw) + 1})
		e, lvl := tl.Lookup(vpn)
		return lvl != HitNone && e.PFN == mem.PFN(raw)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
