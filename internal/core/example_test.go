package core_test

import (
	"fmt"

	"tieredmem/internal/core"
	"tieredmem/internal/mem"
)

// ExampleRankedPages shows the profiler-policy interface: a harvest is
// ranked by TMP's combined evidence, ties preferring fast-tier
// residents (migration hysteresis).
func ExampleRankedPages() {
	harvest := core.EpochStats{Pages: []core.PageStat{
		{Key: core.PageKey{PID: 1, VPN: 0x10}, Tier: mem.SlowTier, Abit: 1, Trace: 4},
		{Key: core.PageKey{PID: 1, VPN: 0x20}, Tier: mem.FastTier, Abit: 1, Trace: 0},
		{Key: core.PageKey{PID: 1, VPN: 0x30}, Tier: mem.SlowTier, Abit: 1, Trace: 0},
		{Key: core.PageKey{PID: 1, VPN: 0x40}, Tier: mem.SlowTier, Abit: 0, Trace: 0},
	}}
	for _, ps := range core.RankedPages(harvest, core.MethodCombined) {
		fmt.Printf("vpn=%#x rank=%d tier=%v\n", uint64(ps.Key.VPN), ps.Rank(core.MethodCombined), ps.Tier)
	}
	// Output:
	// vpn=0x10 rank=5 tier=slow
	// vpn=0x20 rank=1 tier=fast
	// vpn=0x30 rank=1 tier=slow
}

// ExamplePageStat_Rank shows the three ranking arms the evaluation
// compares.
func ExamplePageStat_Rank() {
	ps := core.PageStat{Abit: 2, Trace: 3}
	fmt.Println(ps.Rank(core.MethodAbit), ps.Rank(core.MethodTrace), ps.Rank(core.MethodCombined))
	// Output: 2 3 5
}
